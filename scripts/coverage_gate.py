#!/usr/bin/env python3
"""Line-coverage gate for the scheduler, simulator and ingest path.

The paper's claims live in src/sched (Figure-10 queueing scheduler) and
src/sim (discrete-event simulator), so those two directories carry a
recorded coverage floor; the rest of the tree is exercised but not gated.
On top of the directory floors, the floor file may name individual files
under "file_floors" — the batch-aggregated ingest front-end
(src/olap/ingest.cpp) is pinned at >= 90% so its shutdown/displacement
races stay exercised.

Usage (from the repo root):

  cmake -S . -B build-cov -DHOLAP_COVERAGE=ON -DHOLAP_BUILD_BENCH=OFF \\
        -DHOLAP_BUILD_EXAMPLES=OFF
  cmake --build build-cov -j && ctest --test-dir build-cov
  scripts/coverage_gate.py -p build-cov            # gate
  scripts/coverage_gate.py -p build-cov --record   # refresh the floors

Backends: ``gcovr`` when installed (CI), else raw ``gcov --json-format``
over the .gcda files (what the container has). Both produce the same
per-line counts; only the plumbing differs.

The floor file (scripts/coverage_thresholds.json) records the measured
percentage minus a 2-point slack, so compiler line-table drift does not
flake the gate while a real coverage regression still fails it.

Exit codes: 0 gate met, 1 a directory is below its floor, 2 no coverage
data / bad invocation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
THRESHOLD_FILE = REPO / "scripts" / "coverage_thresholds.json"
GATED_DIRS = ("src/sched", "src/sim")
RECORD_SLACK = 2.0  # points of headroom written below the measured value


def _repo_rel(path: str) -> str | None:
    """Map a gcov/gcovr file path to a repo-relative posix path."""
    p = pathlib.Path(path)
    if not p.is_absolute():
        p = (REPO / p).resolve()
    try:
        return p.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return None  # system or third-party header


class LineTable:
    """rel-path -> line -> max execution count across TUs."""

    def __init__(self) -> None:
        self.files: dict[str, dict[int, int]] = {}

    def add(self, rel: str, line: int, count: int) -> None:
        lines = self.files.setdefault(rel, {})
        lines[line] = max(lines.get(line, 0), count)

    def percent(self, target: str) -> tuple[float, int, int] | None:
        """Coverage of a directory prefix or of one exact file."""
        covered = total = 0
        for rel, lines in self.files.items():
            if rel != target and not rel.startswith(target + "/"):
                continue
            total += len(lines)
            covered += sum(1 for c in lines.values() if c > 0)
        if total == 0:
            return None
        return 100.0 * covered / total, covered, total


def collect_gcovr(build_dir: pathlib.Path) -> LineTable | None:
    if shutil.which("gcovr") is None:
        return None
    proc = subprocess.run(
        ["gcovr", "--root", str(REPO), "--object-directory", str(build_dir),
         "--json", "-"],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        print(f"coverage: gcovr failed, falling back to gcov:\n"
              f"{proc.stderr}", file=sys.stderr)
        return None
    table = LineTable()
    for f in json.loads(proc.stdout).get("files", []):
        rel = _repo_rel(f["file"])
        if rel is None:
            continue
        for ln in f.get("lines", []):
            table.add(rel, ln["line_number"], ln["count"])
    return table


def collect_gcov(build_dir: pathlib.Path) -> LineTable | None:
    gcda = sorted(build_dir.rglob("*.gcda"))
    if not gcda:
        return None
    table = LineTable()
    for chunk_start in range(0, len(gcda), 32):
        chunk = gcda[chunk_start:chunk_start + 32]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout",
             *[str(p) for p in chunk]],
            capture_output=True, text=True, check=False,
            cwd=build_dir)
        if proc.returncode != 0:
            print(f"coverage: gcov failed on {chunk[0].name}...:\n"
                  f"{proc.stderr}", file=sys.stderr)
            return None
        # --stdout emits one JSON document per input file, one per line.
        for doc in proc.stdout.splitlines():
            if not doc.strip():
                continue
            for f in json.loads(doc).get("files", []):
                rel = _repo_rel(f["file"])
                if rel is None:
                    continue
                for ln in f.get("lines", []):
                    table.add(rel, ln["line_number"], ln["count"])
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-p", "--build-dir", type=pathlib.Path,
                        default=REPO / "build-cov",
                        help="instrumented build tree (default: build-cov/)")
    parser.add_argument("--thresholds", type=pathlib.Path,
                        default=THRESHOLD_FILE,
                        help="recorded floor file (default: "
                             "scripts/coverage_thresholds.json)")
    parser.add_argument("--record", action="store_true",
                        help="rewrite the floor file from this run "
                             f"(measured minus {RECORD_SLACK} points)")
    args = parser.parse_args(argv)

    build_dir = args.build_dir.resolve()
    if not build_dir.exists():
        print(f"coverage: build dir {build_dir} does not exist — configure "
              "with -DHOLAP_COVERAGE=ON and run ctest first",
              file=sys.stderr)
        return 2

    table = collect_gcovr(build_dir) or collect_gcov(build_dir)
    if table is None:
        print("coverage: no .gcda counters found — run ctest in the "
              "instrumented tree first", file=sys.stderr)
        return 2

    file_floors: dict[str, float] = {}
    if args.thresholds.exists():
        file_floors = json.loads(
            args.thresholds.read_text(encoding="utf-8")).get(
                "file_floors", {})

    measured: dict[str, float] = {}
    for target in (*GATED_DIRS, *file_floors):
        stats = table.percent(target)
        if stats is None:
            print(f"coverage: no instrumented lines under {target} — was "
                  "the tree built with -DHOLAP_COVERAGE=ON?",
                  file=sys.stderr)
            return 2
        pct, covered, total = stats
        measured[target] = pct
        print(f"coverage: {target:<20} {pct:6.2f}%  "
              f"({covered}/{total} lines)")

    if args.record:
        floors = {d: round(measured[d] - RECORD_SLACK, 1)
                  for d in GATED_DIRS}
        # Directory floors track the measured value; per-file floors are
        # hand-set policy and survive a re-record unchanged.
        args.thresholds.write_text(json.dumps({
            "comment": "Line-coverage floors enforced by "
                       "scripts/coverage_gate.py; refresh with --record "
                       "after intentionally adding uncovered code.",
            "floors": floors,
            "file_floors": file_floors,
        }, indent=2) + "\n", encoding="utf-8")
        print(f"coverage: recorded floors {floors} -> {args.thresholds}")
        return 0

    if not args.thresholds.exists():
        print(f"coverage: floor file {args.thresholds} missing — run with "
              "--record once to establish it", file=sys.stderr)
        return 2
    floors = json.loads(args.thresholds.read_text(encoding="utf-8"))["floors"]

    failed = False
    for prefix, floor in {**floors, **file_floors}.items():
        pct = measured.get(prefix)
        if pct is None:
            print(f"coverage: floor recorded for {prefix} but nothing "
                  "measured there", file=sys.stderr)
            failed = True
        elif pct < floor:
            print(f"coverage: {prefix} at {pct:.2f}% is below the "
                  f"recorded floor of {floor}%", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("coverage: OK (all gated directories at or above their floors)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
