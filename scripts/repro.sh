#!/usr/bin/env bash
# One-command reproduction: build, test, and regenerate every table/figure.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
