#!/usr/bin/env python3
"""Merge BENCH_*.json outputs into one trend artifact and gate drift.

The benches (bench_multi_gpu, bench_sustained_ingest, ...) each write a
machine-readable BENCH_<name>.json next to the build. Those files are
committed, so the copy at HEAD is the accepted baseline. This script

  1. collects every BENCH_*.json under --dir (default: cwd),
  2. flattens each to dotted numeric metrics (rows become rows.N.key),
  3. diffs against the committed baseline (``git show HEAD:<file>``),
  4. writes a single merged trajectory artifact (--out bench-trend.json),
  5. exits 1 if any throughput-like metric (qps, speedup) dropped, or
     any latency-like metric (*_ms, p50/p99) rose, by more than
     --threshold (default 0.20 = 20%), or if a bench reports pass=false.

Metrics that are neither throughput- nor latency-like (row counts,
configuration echo like producers/queries) are carried in the artifact
for plotting but never gated. A bench with no committed baseline (first
run) is recorded with "baseline": null and not gated.

Usage:
  scripts/bench_trend.py                       # gate vs HEAD, cwd
  scripts/bench_trend.py --threshold 0.5       # looser gate
  scripts/bench_trend.py --out trend.json --dir build
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import pathlib
import subprocess
import sys


def flatten(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested json value, with dotted keys."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(flatten(v, f"{prefix}{i}."))
    elif isinstance(obj, bool):
        pass  # pass/verdict flags are handled separately, not as metrics
    elif isinstance(obj, (int, float)):
        out[prefix[:-1]] = float(obj)
    return out


def direction(key: str) -> str:
    """'up' = higher is better, 'down' = lower is better, '' = ungated."""
    leaf = key.rsplit(".", 1)[-1]
    if "qps" in leaf or "speedup" in leaf:
        return "up"
    if leaf.endswith("_ms") or leaf.startswith(("p50", "p99")):
        return "down"
    return ""


def baseline_blob(repo: pathlib.Path, rel: str) -> dict | None:
    """The committed version of a bench file, or None if untracked."""
    proc = subprocess.run(
        ["git", "-C", str(repo), "show", f"HEAD:{rel}"],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_bench(current: dict, base: dict | None,
               threshold: float) -> tuple[dict, list[str]]:
    """(per-metric trend record, list of regression descriptions)."""
    cur = flatten(current)
    old = flatten(base) if base is not None else {}
    metrics: dict[str, dict] = {}
    regressions: list[str] = []
    for key in sorted(cur):
        entry = {"value": cur[key]}
        dirn = direction(key)
        if dirn:
            entry["direction"] = dirn
        if key in old:
            entry["baseline"] = old[key]
            if old[key] != 0:
                ratio = cur[key] / old[key]
                entry["ratio"] = round(ratio, 4)
                if dirn == "up" and ratio < 1.0 - threshold:
                    regressions.append(
                        f"{key}: {old[key]:g} -> {cur[key]:g} "
                        f"({(1 - ratio) * 100:.1f}% drop)")
                elif dirn == "down" and ratio > 1.0 + threshold:
                    regressions.append(
                        f"{key}: {old[key]:g} -> {cur[key]:g} "
                        f"({(ratio - 1) * 100:.1f}% rise)")
        metrics[key] = entry
    if current.get("pass") is False:
        regressions.append("bench reports pass=false (its own gate)")
    return metrics, regressions


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("bench-trend.json"),
                        help="merged trajectory artifact path")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional drift that fails the gate "
                             "(default: 0.20 = 20%%)")
    args = parser.parse_args(argv)

    repo = pathlib.Path(__file__).resolve().parent.parent
    paths = sorted(glob.glob(str(args.dir / "BENCH_*.json")))
    if not paths:
        print(f"bench-trend: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 2

    benches: dict[str, dict] = {}
    all_regressions: list[str] = []
    for path in paths:
        name = pathlib.Path(path).name
        try:
            current = json.loads(pathlib.Path(path).read_text())
        except json.JSONDecodeError as e:
            print(f"bench-trend: {name}: unparseable ({e})",
                  file=sys.stderr)
            return 2
        # Baseline is the committed copy at the repo root, regardless of
        # where the fresh run wrote its file.
        base = baseline_blob(repo, name)
        metrics, regressions = diff_bench(current, base, args.threshold)
        benches[name] = {
            "bench": current.get("bench", name),
            "pass": current.get("pass"),
            "baseline": None if base is None else "HEAD",
            "metrics": metrics,
            "regressions": regressions,
        }
        all_regressions.extend(f"{name}: {r}" for r in regressions)

    head = subprocess.run(
        ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=False).stdout.strip()
    artifact = {
        "baseline_commit": head or None,
        "threshold": args.threshold,
        "benches": benches,
        "regressions": all_regressions,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n",
                        encoding="utf-8")

    gated = sum(1 for b in benches.values()
                for m in b["metrics"].values()
                if "direction" in m and "baseline" in m)
    for r in all_regressions:
        print(f"bench-trend: REGRESSION {r}", file=sys.stderr)
    if all_regressions:
        print(f"\nbench-trend: {len(all_regressions)} regression(s) "
              f"beyond {args.threshold:.0%}; artifact: {args.out}",
              file=sys.stderr)
        return 1
    print(f"bench-trend: OK ({len(benches)} bench file(s), {gated} gated "
          f"metric(s), drift < {args.threshold:.0%}; artifact: {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(run())
