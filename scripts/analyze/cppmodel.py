"""A lightweight structural model of the C++ tree for the text engine.

Not a parser: comments and literals are blanked (preserving line
numbers), then brace/paren matching recovers just enough structure for
the invariant rules — function extents, switch statements, enum
definitions. The libclang engine supersedes this when available; the
rules are written so that the constructs this model cannot see (macro
tricks, brace-initialised constructor init-lists around a function body)
do not occur in this codebase, and the fixture tests pin the behaviour
on representative shapes.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

INCLUDE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclasses.dataclass
class SourceFile:
    path: pathlib.Path
    rel: str  # root-relative posix path
    text: str  # raw contents
    stripped: str  # comments/strings blanked, same line numbering

    def line_of(self, offset: int) -> int:
        return self.stripped.count("\n", 0, offset) + 1

    def line_text(self, lineno: int) -> str:
        lines = self.stripped.splitlines()
        return lines[lineno - 1].strip() if lineno <= len(lines) else ""


class SourceTree:
    """All .hpp/.cpp files under a root, loaded and stripped once."""

    def __init__(self, root: pathlib.Path,
                 exclude: tuple[str, ...] = ()) -> None:
        self.root = root
        self._files: dict[str, SourceFile] = {}
        for ext in ("*.hpp", "*.cpp"):
            for p in sorted(root.rglob(ext)):
                rel = p.relative_to(root).as_posix()
                if any(rel.startswith(e) for e in exclude):
                    continue
                text = p.read_text(encoding="utf-8")
                self._files[rel] = SourceFile(
                    p, rel, text, strip_comments_and_strings(text))

    def files(self, *prefixes: str) -> list[SourceFile]:
        """Files whose root-relative path starts with any prefix (all
        files when no prefix is given)."""
        if not prefixes:
            return list(self._files.values())
        return [
            f for rel, f in self._files.items()
            if any(rel.startswith(p) for p in prefixes)
        ]

    def get(self, rel: str) -> SourceFile | None:
        return self._files.get(rel)


def match_brace(text: str, open_pos: int) -> int:
    """Offset of the '}' matching the '{' at open_pos (-1 if unbalanced).
    `text` must already be comment/string-stripped."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def body_start(text: str, sig_end: int) -> int:
    """Offset of the '{' opening the function body whose signature's
    closing ')' is at sig_end. Skips over constructor init-lists written
    with parentheses; stops at ';' (declaration, no body)."""
    i = sig_end + 1
    depth = 0
    while i < len(text):
        c = text[i]
        if depth == 0 and c == ";":
            return -1
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            return i
        i += 1
    return -1


@dataclasses.dataclass
class FunctionExtent:
    name: str  # unqualified member/function name
    start: int  # offset of the opening '{'
    end: int  # offset of the matching '}'


def member_extents(sf: SourceFile, class_name: str) -> list[FunctionExtent]:
    """Extents of out-of-line members ``Class::name(...) { ... }`` plus
    in-class bodies are not needed by the current rules."""
    extents = []
    for m in re.finditer(rf"\b{class_name}::(~?\w+)\s*\(", sf.stripped):
        sig_open = m.end() - 1
        depth = 0
        sig_close = -1
        for i in range(sig_open, len(sf.stripped)):
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    sig_close = i
                    break
        if sig_close == -1:
            continue
        start = body_start(sf.stripped, sig_close)
        if start == -1:
            continue
        end = match_brace(sf.stripped, start)
        if end == -1:
            continue
        extents.append(FunctionExtent(m.group(1), start, end))
    return extents


@dataclasses.dataclass
class SwitchStmt:
    cond: str  # text inside switch (...)
    body: str  # text between the braces, nested switch bodies blanked
    body_offset: int  # offset of the '{' in the file
    line: int


def find_switches(sf: SourceFile) -> list[SwitchStmt]:
    out = []
    for m in re.finditer(r"\bswitch\s*\(", sf.stripped):
        open_paren = m.end() - 1
        depth = 0
        close_paren = -1
        for i in range(open_paren, len(sf.stripped)):
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    close_paren = i
                    break
        if close_paren == -1:
            continue
        brace = sf.stripped.find("{", close_paren)
        if brace == -1:
            continue
        end = match_brace(sf.stripped, brace)
        if end == -1:
            continue
        body = sf.stripped[brace + 1:end]
        # Blank nested switches so their labels don't leak into ours.
        body = _blank_nested_switches(body)
        out.append(SwitchStmt(
            cond=sf.stripped[open_paren + 1:close_paren].strip(),
            body=body, body_offset=brace, line=sf.line_of(m.start())))
    return out


def _blank_nested_switches(body: str) -> str:
    while True:
        m = re.search(r"\bswitch\s*\(", body)
        if m is None:
            return body
        brace = body.find("{", m.start())
        if brace == -1:
            return body
        end = match_brace(body, brace)
        if end == -1:
            return body
        blanked = re.sub(r"\S", " ", body[m.start():end + 1])
        body = body[:m.start()] + blanked + body[end + 1:]


ENUM_DEF = re.compile(r"\benum\s+(?:class|struct)\s+(\w+)[^;{]*\{")


# ---------------------------------------------------------------------------
# Concurrency model: classes, function definitions, lock/call/wait events.
#
# The text engine's approximation of what the libclang engine reads from
# the AST: enough structure to build a call graph, track scoped lock
# guards, and spot blocking primitives. Known blind spots (macro-generated
# functions, template metaprogramming, type-dependent dispatch) do not
# occur in this codebase; the fixture suite pins the supported shapes.


_CONTROL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "case", "new", "delete", "throw", "alignof", "decltype",
    "static_assert", "noexcept", "operator", "assert", "defined",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
})

_QUALIFIER_WORDS = frozenset({"const", "noexcept", "override", "final",
                              "mutable", "try", "volatile"})

CLASS_DEF = re.compile(
    r"\b(enum\s+)?(?:class|struct)\s+"
    r"(?:HOLAP_\w+\s*(?:\([^()]*\))?\s+)*"
    r"(\w+)(?:\s+final)?\s*(?::[^;{]*)?\{")


@dataclasses.dataclass
class ClassExtent:
    name: str
    start: int  # offset of the opening '{'
    end: int  # offset of the matching '}'


def class_extents(sf: SourceFile) -> list[ClassExtent]:
    """Every class/struct definition in the file (incl. nested ones)."""
    out = []
    for m in CLASS_DEF.finditer(sf.stripped):
        if m.group(1):  # enum class — not a class
            continue
        brace = m.end() - 1
        end = match_brace(sf.stripped, brace)
        if end != -1:
            out.append(ClassExtent(m.group(2), brace, end))
    return out


@dataclasses.dataclass
class FunctionDef:
    cls: str | None  # owning class (lexical or the Class:: qualifier)
    name: str  # unqualified name ('~X' for destructors)
    qual: str  # 'Class::name' or bare 'name' for free functions
    params: str  # stripped text inside the signature parens
    annotations: str  # text between ')' and '{' (qualifiers, HOLAP_*)
    start: int  # offset of the opening '{'
    end: int  # offset of the matching '}'
    line: int  # line of the name token
    ret: str = ""  # return-type text (best effort; '' for constructors)


def _match_paren(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _skip_angles(text: str, i: int) -> int:
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def _qualified_class_before(text: str, pos: int) -> str | None:
    """The C in ``C::`` immediately before pos, if any."""
    m = re.search(r"(\w+)\s*::\s*$", text[:pos])
    return m.group(1) if m else None


def _body_after_signature(text: str, sig_close: int) -> tuple[int, str]:
    """Offset of the '{' starting a function body whose parameter list
    closes at sig_close, plus the qualifier/annotation text in between.
    Returns (-1, '') for declarations, expressions, and anything that is
    not a function definition."""
    i = sig_close + 1
    n = len(text)
    ann_start = i
    after_arrow = False
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c == "{":
            return i, text[ann_start:i]
        elif c in ");=,]}?":
            return -1, ""
        elif c == ":" and not after_arrow:
            if text.startswith("::", i):
                i += 2  # qualified name in a trailing return type
                continue
            # Constructor init list: ident (...)/{...} groups, then '{'.
            i += 1
            while i < n:
                while i < n and text[i].isspace():
                    i += 1
                m = re.match(r"[\w:]+(?:\s*<)?", text[i:])
                if m is None:
                    return -1, ""
                i += m.end()
                if m.group(0).endswith("<"):
                    i = _skip_angles(text, i - 1)
                while i < n and text[i].isspace():
                    i += 1
                if i >= n or text[i] not in "({":
                    return -1, ""
                close = (_match_paren(text, i) if text[i] == "("
                         else match_brace(text, i))
                if close == -1:
                    return -1, ""
                i = close + 1
                while i < n and text[i].isspace():
                    i += 1
                if i < n and text[i] == ",":
                    i += 1
                    continue
                if i < n and text[i] == "{":
                    return i, text[ann_start:i]
                return -1, ""
            return -1, ""
        elif text.startswith("->", i):
            after_arrow = True
            i += 2
        elif c == "<":
            i = _skip_angles(text, i)
        elif c == "(":
            close = _match_paren(text, i)  # noexcept(...), HOLAP_*(...)
            if close == -1:
                return -1, ""
            i = close + 1
        elif c == "&":
            i += 1
        elif c.isalnum() or c == "_":
            m = re.match(r"\w+", text[i:])
            word = m.group(0)
            if (word not in _QUALIFIER_WORDS
                    and not word.startswith("HOLAP_") and not after_arrow):
                return -1, ""
            i += m.end()
        else:
            return -1, ""
    return -1, ""


_RET_NOISE = re.compile(
    r"^(?:template\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>|static|inline|virtual|"
    r"explicit|constexpr|friend|\[\[[^\]]*\]\])\s*")


def _return_type_before(text: str, pos: int, cls: str | None) -> str:
    """Return-type text preceding the function name at pos (best effort:
    back to the previous statement/brace boundary, specifiers and the
    Class:: qualifier stripped)."""
    lo = max(text.rfind(c, 0, pos) for c in ";{}")
    head = text[lo + 1:pos].strip()
    if cls:
        head = re.sub(rf"\b{re.escape(cls)}\s*::\s*$", "", head).strip()
    while True:
        stripped = _RET_NOISE.sub("", head).strip()
        if stripped == head:
            break
        head = stripped
    return head


def function_definitions(sf: SourceFile) -> list[FunctionDef]:
    """Every function definition with a body in the file. Lambdas are not
    separate functions: their bodies stay inside the enclosing extent (a
    guard declared in a lambda is released at the lambda's brace, so the
    approximation stays scope-correct)."""
    text = sf.stripped
    classes = class_extents(sf)
    out: list[FunctionDef] = []
    last_end = -1
    for m in re.finditer(r"(~?)(\w+)\s*\(", text):
        if m.start() < last_end:
            continue  # inside the previous function body
        name = m.group(1) + m.group(2)
        if m.group(2) in _CONTROL_KEYWORDS:
            continue
        sig_open = m.end() - 1
        sig_close = _match_paren(text, sig_open)
        if sig_close == -1:
            continue
        start, annotations = _body_after_signature(text, sig_close)
        if start == -1:
            continue
        end = match_brace(text, start)
        if end == -1:
            continue
        cls = _qualified_class_before(text, m.start())
        if cls is None:
            for ce in classes:
                if ce.start < m.start() < ce.end:
                    cls = ce.name  # innermost wins (list is document order)
        qual = f"{cls}::{name}" if cls else name
        ret = "" if name.lstrip("~") == cls else _return_type_before(
            text, m.start(), cls)
        out.append(FunctionDef(
            cls=cls, name=name, qual=qual,
            params=text[sig_open + 1:sig_close], annotations=annotations,
            start=start, end=end, line=sf.line_of(m.start()), ret=ret))
        last_end = end
    return out


def _class_decl_text(sf: SourceFile, extent: ClassExtent,
                     functions: list[FunctionDef]) -> str:
    """The class body with in-class method bodies and nested classes
    blanked, so only the declarations remain."""
    body = sf.stripped[extent.start + 1:extent.end]
    base = extent.start + 1
    spans = [(f.start, f.end) for f in functions
             if extent.start < f.start and f.end < extent.end]
    spans += [(c.start, c.end) for c in class_extents(sf)
              if extent.start < c.start and c.end < extent.end]
    for s, e in spans:
        lo, hi = s - base, e + 1 - base
        body = body[:lo] + re.sub(r"[^\n]", " ", body[lo:hi]) + body[hi:]
    return body


def class_fields(sf: SourceFile, extent: ClassExtent,
                 functions: list[FunctionDef]) -> dict[str, str]:
    """name -> declared-type text for the data members of one class."""
    body = _class_decl_text(sf, extent, functions)
    fields: dict[str, str] = {}
    decl = re.compile(
        r"^\s*(?:mutable\s+|static\s+|constexpr\s+)*"
        r"((?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;]*>)?(?:\s*[&*])?)"
        r"\s+(\w+)\s*"
        r"(?:HOLAP_\w+\s*\([^()]*\)\s*)*"
        r"(?:=[^;]*|\{[^;]*\})?;", re.MULTILINE)
    for m in decl.finditer(body):
        type_text = m.group(1).strip()
        if type_text.split()[-1] in ("return", "using", "typedef"):
            continue
        fields[m.group(2)] = type_text
    return fields


def class_method_decls(sf: SourceFile, extent: ClassExtent,
                       functions: list[FunctionDef]) -> set[str]:
    """Names of member functions DECLARED (not defined) in the class body
    — the dispatch surface for the virtual/overload resolution fallback:
    a call through a base that only declares the method resolves to the
    union of known definitions elsewhere."""
    body = _class_decl_text(sf, extent, functions)
    out: set[str] = set()
    for m in re.finditer(r"(~?\w+)\s*\(", body):
        name = m.group(1)
        if name.lstrip("~") in _CONTROL_KEYWORDS:
            continue
        close = _match_paren(body, m.end() - 1)
        if close == -1:
            continue
        rest = body[close + 1:]
        semi = rest.find(";")
        if semi == -1:
            continue
        tail = rest[:semi]
        if "{" in tail or "}" in tail:
            continue
        # 'name(...) [qualifiers] ;' including '= 0;' pure virtuals.
        if re.fullmatch(
                r"(?:\s|const|noexcept|override|final|&|->|[\w:<>,*]|"
                r"\([^()]*\)|=\s*0|=\s*default|=\s*delete)*", tail):
            out.add(name)
    return out


def local_declarations(body: str) -> dict[str, str]:
    """name -> declared-type text for block-scope declarations that the
    concurrency pass can type (best effort, line anchored)."""
    out: dict[str, str] = {}
    decl = re.compile(
        r"^\s*(?:const\s+)?"
        r"(auto|[A-Za-z_][\w:]*(?:\s*<[^;=]*>)?)"
        r"\s*[&*]?\s+(\w+)\s*(=|\()", re.MULTILINE)
    for m in decl.finditer(body):
        type_text = m.group(1).strip()
        if type_text in ("return", "delete", "new", "throw", "case"):
            continue
        if type_text == "auto":
            # Propagate through the initialiser: 'auto& q = *shards_[i]'
            line_end = body.find("\n", m.end())
            rhs = body[m.end():line_end if line_end != -1 else len(body)]
            out[m.group(2)] = f"auto:{rhs.strip()}"
        else:
            out[m.group(2)] = type_text
    # Range-for bindings: 'for (const Shard& shard : shards_)'.
    range_for = re.compile(
        r"\bfor\s*\(\s*(?:const\s+)?"
        r"(auto|[A-Za-z_][\w:]*(?:\s*<[^;()]*>)?)\s*[&*]?\s+(\w+)\s*:"
        r"\s*([^)]*)\)")
    for m in range_for.finditer(body):
        if m.group(1) == "auto":
            out[m.group(2)] = f"auto:{m.group(3).strip()}[0]"
        else:
            out[m.group(2)] = m.group(1).strip()
    return out


def parameter_declarations(params: str) -> dict[str, str]:
    """name -> type text for a signature's parameters (depth-0 commas)."""
    out: dict[str, str] = {}
    depth = 0
    piece = []
    pieces: list[str] = []
    for c in params:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            pieces.append("".join(piece))
            piece = []
        else:
            piece.append(c)
    pieces.append("".join(piece))
    for p in pieces:
        m = re.match(r"\s*(.+?)[&*\s]+(\w+)\s*(?:=[^,]*)?$", p)
        if m:
            out[m.group(2)] = m.group(1).strip()
    return out


@dataclasses.dataclass
class ConcEvent:
    """One concurrency-relevant event inside a function body, in source
    order. Kinds:

      acquire  scoped guard construction; `name` is the lock id
      release  the guard's enclosing block closes; `name` matches
      call     a resolved call; `callees` lists candidate targets
      block    an intrinsically blocking primitive; `detail` says which
      wait     a condition-variable wait; `name` = cv id, `mutex` = lock
      notify   notify_one/notify_all; `name` = cv id
    """

    kind: str
    offset: int
    line: int
    name: str = ""
    callees: tuple[str, ...] = ()
    mutex: str = ""
    in_loop: bool = False
    detail: str = ""


@dataclasses.dataclass
class FunctionModel:
    qual: str
    cls: str | None
    rel: str
    line: int
    entry_held: tuple[str, ...]  # from HOLAP_REQUIRES annotations
    events: list[ConcEvent]


def normalize_lock_expr(expr: str, cls: str | None) -> str:
    """Canonical lock identity: qualified member name, instance-merged.
    'mutex_' in BlockingQueue -> 'BlockingQueue::mutex_'."""
    e = re.sub(r"\s+", "", expr).replace("this->", "")
    if cls and not e.startswith(f"{cls}::"):
        return f"{cls}::{e}"
    return e


def brace_blocks(text: str, start: int, end: int) -> list[tuple[int, int]]:
    """(open, close) offsets of every brace block within [start, end],
    including the outermost one."""
    out = []
    stack = []
    for i in range(start, end + 1):
        if text[i] == "{":
            stack.append(i)
        elif text[i] == "}" and stack:
            out.append((stack.pop(), i))
    return out


def enclosing_block_end(blocks: list[tuple[int, int]], offset: int) -> int:
    """Close offset of the innermost block containing `offset`."""
    best = -1
    best_size = None
    for open_, close in blocks:
        if open_ < offset < close:
            size = close - open_
            if best_size is None or size < best_size:
                best, best_size = close, size
    return best


def loop_body_spans(text: str, start: int, end: int) -> list[tuple[int, int]]:
    """Body extents of while/for/do loops inside [start, end]. Braced and
    braceless single-statement bodies both count; `for (;;)` and
    `while (true)` are not predicate loops and are excluded."""
    spans = []
    for m in re.finditer(r"\b(while|for)\s*\(", text[start:end]):
        open_paren = start + m.end() - 1
        close_paren = _match_paren(text, open_paren)
        if close_paren == -1 or close_paren > end:
            continue
        header = text[open_paren + 1:close_paren].strip()
        if m.group(1) == "for" and header.strip(" ;") == "":
            continue
        if m.group(1) == "while" and header in ("true", "1"):
            continue
        i = close_paren + 1
        while i < end and text[i].isspace():
            i += 1
        if i >= end:
            continue
        if text[i] == "{":
            close = match_brace(text, i)
            if close != -1:
                spans.append((i, close))
        else:
            semi = text.find(";", i)
            if semi != -1 and semi <= end:
                spans.append((i, semi))
    for m in re.finditer(r"\bdo\b\s*\{", text[start:end]):
        open_ = start + m.end() - 1
        close = match_brace(text, open_)
        if close != -1 and close <= end:
            spans.append((open_, close))
    return spans


def enum_definitions(tree: SourceTree) -> dict[str, set[str]]:
    """Map from scoped-enum name to its enumerator set, across the tree."""
    enums: dict[str, set[str]] = {}
    for sf in tree.files():
        for m in ENUM_DEF.finditer(sf.stripped):
            brace = m.end() - 1
            end = match_brace(sf.stripped, brace)
            if end == -1:
                continue
            body = sf.stripped[brace + 1:end]
            names = set()
            for part in body.split(","):
                ident = part.split("=")[0].strip()
                if re.fullmatch(r"\w+", ident):
                    names.add(ident)
            if names:
                enums[m.group(1)] = names
    return enums
