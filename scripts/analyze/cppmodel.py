"""A lightweight structural model of the C++ tree for the text engine.

Not a parser: comments and literals are blanked (preserving line
numbers), then brace/paren matching recovers just enough structure for
the invariant rules — function extents, switch statements, enum
definitions. The libclang engine supersedes this when available; the
rules are written so that the constructs this model cannot see (macro
tricks, brace-initialised constructor init-lists around a function body)
do not occur in this codebase, and the fixture tests pin the behaviour
on representative shapes.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

INCLUDE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclasses.dataclass
class SourceFile:
    path: pathlib.Path
    rel: str  # root-relative posix path
    text: str  # raw contents
    stripped: str  # comments/strings blanked, same line numbering

    def line_of(self, offset: int) -> int:
        return self.stripped.count("\n", 0, offset) + 1

    def line_text(self, lineno: int) -> str:
        lines = self.stripped.splitlines()
        return lines[lineno - 1].strip() if lineno <= len(lines) else ""


class SourceTree:
    """All .hpp/.cpp files under a root, loaded and stripped once."""

    def __init__(self, root: pathlib.Path,
                 exclude: tuple[str, ...] = ()) -> None:
        self.root = root
        self._files: dict[str, SourceFile] = {}
        for ext in ("*.hpp", "*.cpp"):
            for p in sorted(root.rglob(ext)):
                rel = p.relative_to(root).as_posix()
                if any(rel.startswith(e) for e in exclude):
                    continue
                text = p.read_text(encoding="utf-8")
                self._files[rel] = SourceFile(
                    p, rel, text, strip_comments_and_strings(text))

    def files(self, *prefixes: str) -> list[SourceFile]:
        """Files whose root-relative path starts with any prefix (all
        files when no prefix is given)."""
        if not prefixes:
            return list(self._files.values())
        return [
            f for rel, f in self._files.items()
            if any(rel.startswith(p) for p in prefixes)
        ]

    def get(self, rel: str) -> SourceFile | None:
        return self._files.get(rel)


def match_brace(text: str, open_pos: int) -> int:
    """Offset of the '}' matching the '{' at open_pos (-1 if unbalanced).
    `text` must already be comment/string-stripped."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def body_start(text: str, sig_end: int) -> int:
    """Offset of the '{' opening the function body whose signature's
    closing ')' is at sig_end. Skips over constructor init-lists written
    with parentheses; stops at ';' (declaration, no body)."""
    i = sig_end + 1
    depth = 0
    while i < len(text):
        c = text[i]
        if depth == 0 and c == ";":
            return -1
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            return i
        i += 1
    return -1


@dataclasses.dataclass
class FunctionExtent:
    name: str  # unqualified member/function name
    start: int  # offset of the opening '{'
    end: int  # offset of the matching '}'


def member_extents(sf: SourceFile, class_name: str) -> list[FunctionExtent]:
    """Extents of out-of-line members ``Class::name(...) { ... }`` plus
    in-class bodies are not needed by the current rules."""
    extents = []
    for m in re.finditer(rf"\b{class_name}::(~?\w+)\s*\(", sf.stripped):
        sig_open = m.end() - 1
        depth = 0
        sig_close = -1
        for i in range(sig_open, len(sf.stripped)):
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    sig_close = i
                    break
        if sig_close == -1:
            continue
        start = body_start(sf.stripped, sig_close)
        if start == -1:
            continue
        end = match_brace(sf.stripped, start)
        if end == -1:
            continue
        extents.append(FunctionExtent(m.group(1), start, end))
    return extents


@dataclasses.dataclass
class SwitchStmt:
    cond: str  # text inside switch (...)
    body: str  # text between the braces, nested switch bodies blanked
    body_offset: int  # offset of the '{' in the file
    line: int


def find_switches(sf: SourceFile) -> list[SwitchStmt]:
    out = []
    for m in re.finditer(r"\bswitch\s*\(", sf.stripped):
        open_paren = m.end() - 1
        depth = 0
        close_paren = -1
        for i in range(open_paren, len(sf.stripped)):
            if sf.stripped[i] == "(":
                depth += 1
            elif sf.stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    close_paren = i
                    break
        if close_paren == -1:
            continue
        brace = sf.stripped.find("{", close_paren)
        if brace == -1:
            continue
        end = match_brace(sf.stripped, brace)
        if end == -1:
            continue
        body = sf.stripped[brace + 1:end]
        # Blank nested switches so their labels don't leak into ours.
        body = _blank_nested_switches(body)
        out.append(SwitchStmt(
            cond=sf.stripped[open_paren + 1:close_paren].strip(),
            body=body, body_offset=brace, line=sf.line_of(m.start())))
    return out


def _blank_nested_switches(body: str) -> str:
    while True:
        m = re.search(r"\bswitch\s*\(", body)
        if m is None:
            return body
        brace = body.find("{", m.start())
        if brace == -1:
            return body
        end = match_brace(body, brace)
        if end == -1:
            return body
        blanked = re.sub(r"\S", " ", body[m.start():end + 1])
        body = body[:m.start()] + blanked + body[end + 1:]


ENUM_DEF = re.compile(r"\benum\s+(?:class|struct)\s+(\w+)[^;{]*\{")


def enum_definitions(tree: SourceTree) -> dict[str, set[str]]:
    """Map from scoped-enum name to its enumerator set, across the tree."""
    enums: dict[str, set[str]] = {}
    for sf in tree.files():
        for m in ENUM_DEF.finditer(sf.stripped):
            brace = m.end() - 1
            end = match_brace(sf.stripped, brace)
            if end == -1:
                continue
            body = sf.stripped[brace + 1:end]
            names = set()
            for part in body.split(","):
                ident = part.split("=")[0].strip()
                if re.fullmatch(r"\w+", ident):
                    names.add(ident)
            if names:
                enums[m.group(1)] = names
    return enums
