"""Control-flow graphs over the engine-neutral IR in cppmodel.

Two layers, shared by both analyzer engines:

1. A structured intermediate representation (SIR) of a function body —
   a tree of Seq/If/Loop/Switch/Try nodes whose leaves are `Stmt`
   records carrying canonical statement text plus a source offset/line.
   The text engine produces SIR by recursive descent over the stripped
   single-TU token stream (`parse_function`); the libclang engine
   produces the same shapes from cursors, so everything downstream of
   SIR — lowering, dataflow, rules — is engine-agnostic.

2. Lowering SIR to a CFG of basic blocks (`lower`): edges for if/else,
   loop back-edges, switch dispatch + case fallthrough, return,
   break/continue, and a conservative exception edge from every
   statement the caller marks as potentially throwing to the nearest
   enclosing catch handler (or the synthetic exception exit).

The CFG keeps two synthetic exits: `EXIT` for normal returns/fall-off
and `EXC_EXIT` for exceptional paths that leave the function.
"""
from __future__ import annotations

import dataclasses
import re
from typing import Callable

from cppmodel import match_brace, _match_paren

EXIT = -1  # synthetic normal-exit block id
EXC_EXIT = -2  # synthetic exceptional-exit block id

# ---------------------------------------------------------------------------
# SIR
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Stmt:
    text: str  # canonical statement text (condition text for cond stmts)
    offset: int  # offset into the stripped file (or -1 for synthesized)
    line: int  # 1-based source line
    kind: str  # expr|cond|return|break|continue|throw


@dataclasses.dataclass
class Seq:
    children: list  # Stmt | If | Loop | Switch | Try


@dataclasses.dataclass
class If:
    cond: Stmt
    then: Seq
    orelse: Seq | None


@dataclasses.dataclass
class Loop:
    cond: Stmt
    body: Seq
    kind: str  # while|for|rangefor|dowhile


@dataclasses.dataclass
class Switch:
    cond: Stmt
    groups: list  # list[tuple[list[str], Seq]] — labels, statements
    has_default: bool


@dataclasses.dataclass
class Try:
    body: Seq
    handlers: list  # list[Seq]


_CONTROL = ("if", "else", "while", "for", "do", "switch", "return",
            "break", "continue", "throw", "try", "case", "default")
_WORD = re.compile(r"\w+")


class _Parser:
    """Recursive-descent statement parser over stripped source text."""

    def __init__(self, text: str, line_of: Callable[[int], int]):
        self.text = text
        self.line_of = line_of

    def _skip_ws(self, i: int, end: int) -> int:
        text = self.text
        while i < end and (text[i].isspace() or text[i] == ";"):
            i += 1
        return i

    def _word_at(self, i: int) -> str:
        m = _WORD.match(self.text, i)
        return m.group(0) if m else ""

    def _stmt_end(self, i: int, end: int) -> int:
        """Offset one past the ';' terminating the simple statement at i,
        tracking nested (), {}, [] so lambdas and braced initializers do
        not end the statement early."""
        text = self.text
        depth = 0
        while i < end:
            c = text[i]
            if c in "({[":
                depth += 1
            elif c in ")}]":
                depth -= 1
            elif c == ";" and depth == 0:
                return i + 1
            i += 1
        return end

    def _make_stmt(self, start: int, stop: int, kind: str) -> Stmt:
        text = self.text[start:stop].strip().rstrip(";").strip()
        return Stmt(text=text, offset=start, line=self.line_of(start),
                    kind=kind)

    def _parse_paren(self, i: int, end: int) -> tuple[Stmt, int]:
        """Condition/header text inside the parens starting at or after i."""
        text = self.text
        open_pos = text.index("(", i, end)
        close = _match_paren(text, open_pos)
        cond = Stmt(text=text[open_pos + 1:close].strip(), offset=open_pos,
                    line=self.line_of(open_pos), kind="cond")
        return cond, close + 1

    def parse_seq(self, i: int, end: int) -> Seq:
        children: list = []
        i = self._skip_ws(i, end)
        while i < end:
            node, i = self.parse_one(i, end)
            if node is not None:
                children.append(node)
            i = self._skip_ws(i, end)
        return Seq(children)

    def _parse_body(self, i: int, end: int) -> tuple[Seq, int]:
        """A statement-or-block in a control-structure body position."""
        i = self._skip_ws(i, end)
        if i < end and self.text[i] == "{":
            close = match_brace(self.text, i)
            return self.parse_seq(i + 1, close), close + 1
        node, i = self.parse_one(i, end)
        return Seq([node] if node is not None else []), i

    def parse_one(self, i: int, end: int):
        text = self.text
        i = self._skip_ws(i, end)
        if i >= end:
            return None, end
        if text[i] == "{":
            close = match_brace(text, i)
            return self.parse_seq(i + 1, close), close + 1
        word = self._word_at(i)
        if word == "if":
            cond, j = self._parse_paren(i, end)
            then, j = self._parse_body(j, end)
            j = self._skip_ws(j, end)
            orelse = None
            if self._word_at(j) == "else":
                orelse, j = self._parse_body(j + len("else"), end)
            return If(cond, then, orelse), j
        if word in ("while", "for"):
            cond, j = self._parse_paren(i, end)
            body, j = self._parse_body(j, end)
            kind = "while" if word == "while" else (
                "rangefor" if ":" in cond.text.split(";")[0]
                and ";" not in cond.text else "for")
            return Loop(cond, body, kind), j
        if word == "do":
            body, j = self._parse_body(i + len("do"), end)
            j = self._skip_ws(j, end)
            cond, j = self._parse_paren(j, end)  # the while(...)
            j = self._skip_ws(j, end)
            return Loop(cond, body, "dowhile"), j
        if word == "switch":
            cond, j = self._parse_paren(i, end)
            j = self._skip_ws(j, end)
            close = match_brace(text, j)
            groups, has_default = self._parse_switch_body(j + 1, close)
            return Switch(cond, groups, has_default), close + 1
        if word == "try":
            j = self._skip_ws(i + len("try"), end)
            close = match_brace(text, j)
            body = self.parse_seq(j + 1, close)
            j = self._skip_ws(close + 1, end)
            handlers = []
            while self._word_at(j) == "catch":
                _, j = self._parse_paren(j, end)
                j = self._skip_ws(j, end)
                hclose = match_brace(text, j)
                handlers.append(self.parse_seq(j + 1, hclose))
                j = self._skip_ws(hclose + 1, end)
            return Try(body, handlers), j
        if word in ("return", "throw", "break", "continue"):
            stop = self._stmt_end(i, end)
            return self._make_stmt(i, stop, word), stop
        stop = self._stmt_end(i, end)
        return self._make_stmt(i, stop, "expr"), stop

    def _parse_switch_body(self, i: int, end: int):
        """Case groups: every `case X:`/`default:` run of labels followed
        by the statements up to the next label."""
        text = self.text
        groups: list = []
        has_default = False
        labels: list[str] = []
        children: list = []
        i = self._skip_ws(i, end)
        while i < end:
            word = self._word_at(i)
            if word in ("case", "default"):
                if children:
                    groups.append((labels, Seq(children)))
                    labels, children = [], []
                if word == "default":
                    has_default = True
                    labels.append("default")
                    i = text.index(":", i, end) + 1
                else:
                    colon = text.index(":", i, end)
                    while colon + 1 < end and text[colon + 1] == ":":
                        colon = text.index(":", colon + 2, end)
                    labels.append(text[i + len("case"):colon].strip())
                    i = colon + 1
                i = self._skip_ws(i, end)
                continue
            node, i = self.parse_one(i, end)
            if node is not None:
                children.append(node)
            i = self._skip_ws(i, end)
        if labels or children:
            groups.append((labels, Seq(children)))
        return groups, has_default


def parse_function(text: str, body_open: int, body_close: int,
                   line_of: Callable[[int], int]) -> Seq:
    """SIR for the function body delimited by its braces (offsets of '{'
    and the matching '}') in `text` (stripped of comments/strings)."""
    return _Parser(text, line_of).parse_seq(body_open + 1, body_close)


# ---------------------------------------------------------------------------
# Lowering to a CFG
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Block:
    bid: int
    stmts: list  # list[Stmt]
    succs: list  # list[tuple[int, str]] — (block id, edge kind)


@dataclasses.dataclass
class CFG:
    blocks: dict  # dict[int, Block]
    entry: int

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def edge_kinds(self) -> set:
        return {kind for b in self.blocks.values() for _, kind in b.succs}

    def preds(self) -> dict:
        out: dict = {bid: [] for bid in self.blocks}
        out[EXIT] = []
        out[EXC_EXIT] = []
        for b in self.blocks.values():
            for target, kind in b.succs:
                out.setdefault(target, []).append((b.bid, kind))
        return out


class _Lowerer:
    def __init__(self, throws: Callable[[Stmt], bool],
                 assume_loops_entered: bool):
        self.throws = throws
        self.assume_loops_entered = assume_loops_entered
        self.blocks: dict[int, Block] = {}
        self.next_id = 0
        # (break target, continue target) per enclosing loop/switch
        self.break_stack: list[int] = []
        self.continue_stack: list[int] = []
        self.exc_stack: list[list[int]] = []  # catch handler entries

    def new_block(self) -> int:
        bid = self.next_id
        self.next_id += 1
        self.blocks[bid] = Block(bid, [], [])
        return bid

    def edge(self, src: int, dst: int, kind: str) -> None:
        if src in (EXIT, EXC_EXIT):
            return
        self.blocks[src].succs.append((dst, kind))

    def exc_targets(self) -> list[int]:
        return self.exc_stack[-1] if self.exc_stack else [EXC_EXIT]

    def emit_stmt(self, cur: int, stmt: Stmt) -> int:
        """Append stmt to block `cur`; if it may throw it terminates the
        block with an exception edge plus a fallthrough successor."""
        self.blocks[cur].stmts.append(stmt)
        if stmt.kind == "throw":
            for target in self.exc_targets():
                self.edge(cur, target, "exc")
            return self.new_block()  # unreachable continuation
        throwing = self.throws(stmt)
        if throwing:
            for target in self.exc_targets():
                self.edge(cur, target, "exc")
        if stmt.kind == "return":
            self.edge(cur, EXIT, "return")
            return self.new_block()
        if stmt.kind == "break":
            if self.break_stack:
                self.edge(cur, self.break_stack[-1], "break")
            return self.new_block()
        if stmt.kind == "continue":
            if self.continue_stack:
                self.edge(cur, self.continue_stack[-1], "continue")
            return self.new_block()
        if throwing:
            nxt = self.new_block()
            self.edge(cur, nxt, "fall")
            return nxt
        return cur

    def lower_seq(self, seq: Seq, cur: int) -> int:
        for node in seq.children:
            cur = self.lower_node(node, cur)
        return cur

    def lower_node(self, node, cur: int) -> int:
        if isinstance(node, Stmt):
            return self.emit_stmt(cur, node)
        if isinstance(node, Seq):
            return self.lower_seq(node, cur)
        if isinstance(node, If):
            cur = self.emit_stmt(cur, node.cond)
            then_b = self.new_block()
            join = self.new_block()
            self.edge(cur, then_b, "true")
            then_end = self.lower_seq(node.then, then_b)
            self.edge(then_end, join, "fall")
            if node.orelse is not None:
                else_b = self.new_block()
                self.edge(cur, else_b, "false")
                else_end = self.lower_seq(node.orelse, else_b)
                self.edge(else_end, join, "fall")
            else:
                self.edge(cur, join, "false")
            return join
        if isinstance(node, Loop):
            return self.lower_loop(node, cur)
        if isinstance(node, Switch):
            return self.lower_switch(node, cur)
        if isinstance(node, Try):
            return self.lower_try(node, cur)
        raise TypeError(f"unknown SIR node {node!r}")

    def lower_loop(self, node: Loop, cur: int) -> int:
        after = self.new_block()
        if node.kind == "dowhile" or self.assume_loops_entered:
            # body-first shape: entry -> body -> head(cond) -> body|after
            body_b = self.new_block()
            self.edge(cur, body_b, "fall")
            head = self.new_block()
            self.break_stack.append(after)
            self.continue_stack.append(head)
            body_end = self.lower_seq(node.body, body_b)
            self.continue_stack.pop()
            self.break_stack.pop()
            self.edge(body_end, head, "fall")
            head = self.emit_stmt(head, node.cond)
            self.edge(head, body_b, "back")
            self.edge(head, after, "false")
            return after
        head = self.new_block()
        self.edge(cur, head, "fall")
        head_end = self.emit_stmt(head, node.cond)
        body_b = self.new_block()
        self.edge(head_end, body_b, "true")
        self.edge(head_end, after, "false")
        self.break_stack.append(after)
        self.continue_stack.append(head)
        body_end = self.lower_seq(node.body, body_b)
        self.continue_stack.pop()
        self.break_stack.pop()
        self.edge(body_end, head, "back")
        return after

    def lower_switch(self, node: Switch, cur: int) -> int:
        cur = self.emit_stmt(cur, node.cond)
        after = self.new_block()
        self.break_stack.append(after)
        group_entries = [self.new_block() for _ in node.groups]
        for entry in group_entries:
            self.edge(cur, entry, "case")
        if not node.has_default:
            self.edge(cur, after, "case")
        for idx, (_, seq) in enumerate(node.groups):
            end = self.lower_seq(seq, group_entries[idx])
            if idx + 1 < len(group_entries):
                self.edge(end, group_entries[idx + 1], "fall")  # fallthrough
            else:
                self.edge(end, after, "fall")
        self.break_stack.pop()
        return after

    def lower_try(self, node: Try, cur: int) -> int:
        join = self.new_block()
        handler_entries = [self.new_block() for _ in node.handlers]
        self.exc_stack.append(handler_entries or [EXC_EXIT])
        body_b = self.new_block()
        self.edge(cur, body_b, "fall")
        body_end = self.lower_seq(node.body, body_b)
        self.exc_stack.pop()
        self.edge(body_end, join, "fall")
        for idx, handler in enumerate(node.handlers):
            end = self.lower_seq(handler, handler_entries[idx])
            self.edge(end, join, "fall")
        return join


def lower(sir: Seq, throws: Callable[[Stmt], bool] | None = None,
          assume_loops_entered: bool = False) -> CFG:
    """Lower SIR to a CFG. `throws` marks statements that get a
    conservative exception edge to the nearest catch handler or the
    synthetic EXC_EXIT. `assume_loops_entered` lowers every loop in
    do-while shape (body executes at least once) — used by must-style
    analyses where a zero-trip loop would be pure noise (the loops in
    question iterate per-family vectors that are non-empty by config).
    """
    lowerer = _Lowerer(throws or (lambda stmt: False), assume_loops_entered)
    entry = lowerer.new_block()
    end = lowerer.lower_seq(sir, entry)
    lowerer.edge(end, EXIT, "fall")  # fall off the end of the body
    return CFG(blocks=lowerer.blocks, entry=entry)


def walk_stmts(sir) -> list:
    """Every Stmt in the SIR, in document order (conditions included)."""
    out: list = []

    def visit(node):
        if isinstance(node, Stmt):
            out.append(node)
        elif isinstance(node, Seq):
            for child in node.children:
                visit(child)
        elif isinstance(node, If):
            visit(node.cond)
            visit(node.then)
            if node.orelse is not None:
                visit(node.orelse)
        elif isinstance(node, Loop):
            visit(node.cond)
            visit(node.body)
        elif isinstance(node, Switch):
            visit(node.cond)
            for _, seq in node.groups:
                visit(seq)
        elif isinstance(node, Try):
            visit(node.body)
            for handler in node.handlers:
                visit(handler)

    visit(sir)
    return out


def stmts_outside_try(sir) -> list:
    """Every Stmt not protected by an enclosing try — the statements
    whose exceptions escape the function (used by may-throw summaries;
    handlers themselves are unprotected)."""
    out: list = []

    def visit(node, protected: bool):
        if isinstance(node, Stmt):
            if not protected:
                out.append(node)
        elif isinstance(node, Seq):
            for child in node.children:
                visit(child, protected)
        elif isinstance(node, If):
            visit(node.cond, protected)
            visit(node.then, protected)
            if node.orelse is not None:
                visit(node.orelse, protected)
        elif isinstance(node, Loop):
            visit(node.cond, protected)
            visit(node.body, protected)
        elif isinstance(node, Switch):
            visit(node.cond, protected)
            for _, seq in node.groups:
                visit(seq, protected)
        elif isinstance(node, Try):
            visit(node.body, True)
            for handler in node.handlers:
                visit(handler, protected)

    visit(sir, False)
    return out
