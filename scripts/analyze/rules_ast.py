"""Repo-specific invariant rules — the self-contained text/token engine.

Six rules, each encoding a design invariant of this codebase (see
DESIGN.md, "Invariants as machine-checked rules"):

  clock-ledger      Only the Figure-10 scheduler's blessed members may
                    mutate the queue-clock ledger, and every clock family
                    schedule() commits must be rolled back or corrected
                    by on_shed()/on_completed()/on_translation_completed().
  batch-ledger      Batched admission pairing: every clock family
                    schedule_batch() commits must be subtracted by
                    rollback_batch(), and serving-path call sites of
                    schedule_batch() must keep the whole-batch rollback
                    visible in the same file.
  enum-exhaustive   No `default:` labels; a switch over a scoped enum
                    must name every enumerator.
  bounded-queue     The serving path (src/olap, examples/) never
                    constructs an unbounded BlockingQueue.
  unit-escape       Public signatures in the model/scheduling planes
                    (src/perfmodel, src/sched, src/sim) do not smuggle
                    units through raw doubles, and strong units are not
                    unwrapped-then-rewrapped.
  span-lifecycle    TraceSpan is an src/obs-internal type; everything
                    else records through TraceRecorder's builder.
  retry-bound       Every retry loop in the scheduling/serving planes
                    (src/sched, src/olap) carries a compile-time-visible
                    attempt bound in its header — no `while (retry)`.
  lock-order        Interprocedural lock-order graph with cycle
                    detection: two mutexes acquired in both orders on
                    some path is a deadlock, printed with both witness
                    paths (concurrency.py; rule 8).
  blocking          Blocking primitives (BlockingQueue::pop/pop_for/push,
                    CondVar::wait, thread::join, future::get) reached
                    while a lock is held (rule 9).
  waitnotify        CondVar::wait sits in a predicate loop; notify_*
                    happens under the waiter's mutex (rule 10).

The libclang engine (libclang_engine.py) checks the same invariants from
the AST when the bindings are available; rule ids and messages match so
baselines apply to either engine.
"""

from __future__ import annotations

import pathlib
import re
import sys

try:
    from .concurrency import (CONCURRENCY_RULES, analyze_model,
                              build_text_model)
    from .cppmodel import (SourceFile, SourceTree, enum_definitions,
                           find_switches, member_extents)
    from .findings import Finding
    from .rules_dataflow import DATAFLOW_RULES
    from .rules_dataflow import run_text_rules as run_text_dataflow
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from concurrency import (CONCURRENCY_RULES, analyze_model,
                             build_text_model)
    from cppmodel import (SourceFile, SourceTree, enum_definitions,
                          find_switches, member_extents)
    from findings import Finding
    from rules_dataflow import DATAFLOW_RULES
    from rules_dataflow import run_text_rules as run_text_dataflow


class Context:
    """Lazily-built source trees shared by the rules."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = root
        self._trees: dict[str, SourceTree] = {}

    def tree(self, sub: str) -> SourceTree:
        if sub not in self._trees:
            self._trees[sub] = SourceTree(self.root / sub)
        return self._trees[sub]

    def files(self, *prefixed: str) -> list[tuple[str, SourceFile]]:
        """(repo-relative path, file) pairs for e.g. 'src/olap'."""
        out = []
        for pref in prefixed:
            top, _, rest = pref.partition("/")
            tree = self.tree(top)
            if not (self.root / top).exists():
                continue
            for sf in tree.files(rest) if rest else tree.files():
                out.append((f"{top}/{sf.rel}", sf))
        return out


# ---------------------------------------------------------------------------
# clock-ledger


LEDGER_FAMILIES = {
    "cpu_clock_": "cpu",
    "trans_clock_": "translation",
    "gpu_clocks_": "gpu",
    "dispatch_clocks_": "dispatch",
}
# clock_for() returns a reference into the cpu/gpu clocks; writing
# through it touches either family.
CLOCK_FOR_FAMILIES = ("cpu", "gpu")

SCHEDULER_FILE = "src/sched/scheduler.cpp"
SCHEDULER_CLASS = "QueueingScheduler"
# The only members allowed to mutate the ledger. schedule() and
# schedule_batch() are the committers; the three feedback hooks and
# rollback_batch() roll back or correct; clock_for is the accessor; the
# constructor sizes the vectors.
BLESSED = {
    "QueueingScheduler", "schedule", "schedule_batch", "on_completed",
    "on_shed", "on_translation_completed", "rollback_batch", "clock_for",
}
ROLLBACK_MEMBERS = ("on_shed", "on_completed", "on_translation_completed")
# Batched admission (batch-ledger rule): schedule_batch() commits a whole
# batch's clock time in one ledger write, so it needs its own
# batch-granular inverse — per-query on_shed() cannot undo a commit it
# never saw the per-query pieces of.
BATCH_COMMIT_MEMBER = "schedule_batch"
BATCH_ROLLBACK_MEMBER = "rollback_batch"
# Serving-path scopes where a schedule_batch() call site must keep its
# whole-batch rollback visible (mirrors the bounded-queue scopes; the
# simulation plane sheds through its own modeled path).
_BATCH_CALLER_SCOPES = ("src/olap", "examples")

_MUTATING_OPS = ("=", "+=", "-=")


def _skip_brackets(text: str, i: int, open_c: str, close_c: str) -> int:
    depth = 0
    while i < len(text):
        if text[i] == open_c:
            depth += 1
        elif text[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def _mutation_op_at(text: str, i: int) -> str | None:
    """The mutating operator starting at offset i, if any."""
    while i < len(text) and text[i].isspace():
        i += 1
    if text.startswith("+=", i) or text.startswith("-=", i):
        return text[i:i + 2]
    if text.startswith("=", i) and not text.startswith("==", i):
        return "="
    if text.startswith(".assign", i):
        return ".assign"
    return None


def _ledger_mutations(text: str) -> list[tuple[int, str, str]]:
    """(offset, family, op) for every write to a ledger clock."""
    out = []
    for m in re.finditer(
            r"\b(cpu_clock_|trans_clock_|gpu_clocks_|dispatch_clocks_)\b",
            text):
        i = m.end()
        while i < len(text) and text[i].isspace():
            i += 1
        if i < len(text) and text[i] == "[":
            i = _skip_brackets(text, i, "[", "]")
        op = _mutation_op_at(text, i)
        if op is not None:
            out.append((m.start(), LEDGER_FAMILIES[m.group(1)], op))
    for m in re.finditer(r"\bclock_for\s*\(", text):
        i = _skip_brackets(text, m.end() - 1, "(", ")")
        op = _mutation_op_at(text, i)
        if op is not None:
            for fam in CLOCK_FOR_FAMILIES:
                out.append((m.start(), fam, op))
    return out


def check_clock_ledger(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    scheduler: SourceFile | None = None
    for rel, sf in ctx.files("src"):
        muts = _ledger_mutations(sf.stripped)
        if rel == SCHEDULER_FILE:
            scheduler = sf
            continue
        for off, family, op in muts:
            line = sf.line_of(off)
            out.append(Finding(
                "clock-ledger", rel, line,
                f"{family} queue clock mutated outside "
                f"{SCHEDULER_FILE} — the ledger belongs to "
                f"{SCHEDULER_CLASS}",
                text=sf.line_text(line),
                fix="route the update through schedule()/on_*() feedback"))
    if scheduler is None:
        return out

    extents = member_extents(scheduler, SCHEDULER_CLASS)

    def owner(off: int) -> str | None:
        for e in extents:
            if e.start <= off <= e.end:
                return e.name
        return None

    committed: dict[str, int] = {}  # family -> offset of the commit
    rolled_back: set[str] = set()
    for off, family, op in _ledger_mutations(scheduler.stripped):
        member = owner(off)
        line = scheduler.line_of(off)
        if member is None or member not in BLESSED:
            where = member or "file scope"
            out.append(Finding(
                "clock-ledger", SCHEDULER_FILE, line,
                f"{family} queue clock mutated in {where}(); only "
                f"{sorted(BLESSED)} may touch the ledger",
                text=scheduler.line_text(line),
                fix="move the mutation into schedule() or a feedback hook"))
            continue
        if member == "schedule":
            committed.setdefault(family, off)
        elif member in ROLLBACK_MEMBERS:
            rolled_back.add(family)

    for family, off in sorted(committed.items(), key=lambda kv: kv[1]):
        if family not in rolled_back:
            line = scheduler.line_of(off)
            out.append(Finding(
                "clock-ledger", SCHEDULER_FILE, line,
                f"schedule() commits the {family} clock but no feedback "
                f"hook ({', '.join(ROLLBACK_MEMBERS)}) ever rolls it back "
                "— a shed query would inflate the clock forever",
                text=scheduler.line_text(line),
                fix=f"subtract the committed estimate in on_shed()"))
    return out


# ---------------------------------------------------------------------------
# batch-ledger


def check_batch_ledger(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    scheduler = None
    for rel, sf in ctx.files("src"):
        if rel == SCHEDULER_FILE:
            scheduler = sf
            break

    # Inside the scheduler: every clock family the batch committer writes
    # must be written by the batch rollback too, or a batch that dies
    # between admission and routing leaves its whole load on the ledger.
    if scheduler is not None:
        extents = member_extents(scheduler, SCHEDULER_CLASS)

        def owner(off: int) -> str | None:
            for e in extents:
                if e.start <= off <= e.end:
                    return e.name
            return None

        committed: dict[str, int] = {}
        rolled_back: set[str] = set()
        for off, family, op in _ledger_mutations(scheduler.stripped):
            member = owner(off)
            if member == BATCH_COMMIT_MEMBER:
                committed.setdefault(family, off)
            elif member == BATCH_ROLLBACK_MEMBER:
                rolled_back.add(family)
        for family, off in sorted(committed.items(), key=lambda kv: kv[1]):
            if family not in rolled_back:
                line = scheduler.line_of(off)
                out.append(Finding(
                    "batch-ledger", SCHEDULER_FILE, line,
                    f"{BATCH_COMMIT_MEMBER}() commits the {family} clock "
                    f"for a whole batch but {BATCH_ROLLBACK_MEMBER}() never "
                    "subtracts it — an unroutable batch would inflate the "
                    "clock forever",
                    text=scheduler.line_text(line),
                    fix=f"subtract the recorded {family} delta in "
                        f"{BATCH_ROLLBACK_MEMBER}()"))

    # At the call sites: serving-path code that admits a batch must keep
    # the whole-batch rollback visibly reachable in the same file.
    for rel, sf in ctx.files(*_BATCH_CALLER_SCOPES):
        call = re.search(rf"[.>]\s*{BATCH_COMMIT_MEMBER}\s*\(", sf.stripped)
        if call is None:
            continue
        if re.search(rf"\b{BATCH_ROLLBACK_MEMBER}\b", sf.stripped):
            continue
        line = sf.line_of(call.start())
        out.append(Finding(
            "batch-ledger", rel, line,
            f"{BATCH_COMMIT_MEMBER}() is called here but no "
            f"{BATCH_ROLLBACK_MEMBER}() path is visible in this file — "
            "a batch the executor cannot run has no batch-granular undo",
            text=sf.line_text(line),
            fix=f"roll unroutable batches back with "
                f"{BATCH_ROLLBACK_MEMBER}() (or shed per query through "
                "on_shed and say so here)"))
    return out


# ---------------------------------------------------------------------------
# enum-exhaustive


def check_enum_exhaustive(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    enums = enum_definitions(ctx.tree("src"))
    for rel, sf in ctx.files("src"):
        for sw in find_switches(sf):
            dflt = re.search(r"\bdefault\s*:", sw.body)
            if dflt:
                line = sf.line_of(sw.body_offset + 1 + dflt.start())
                out.append(Finding(
                    "enum-exhaustive", rel, line,
                    "`default:` label hides future enumerators/anchors "
                    "from the compiler and this check",
                    text=sf.line_text(line),
                    fix="name every case; for open int domains use an "
                        "if-chain with an explicit fallthrough value"))
            labels = re.findall(r"\bcase\s+((?:\w+::)*\w+)", sw.body)
            scoped = [l for l in labels if "::k" in l]
            if not scoped:
                continue
            enum_name = scoped[0].split("::")[-2]
            if enum_name not in enums:
                continue  # plain enum or out-of-tree type
            named = {l.split("::")[-1] for l in scoped}
            missing = sorted(enums[enum_name] - named)
            # With a default: the gap is already reported above (and the
            # libclang engine behaves the same way).
            if missing and not dflt:
                out.append(Finding(
                    "enum-exhaustive", rel, sw.line,
                    f"switch over {enum_name} misses "
                    f"{', '.join(missing)}",
                    text=sf.line_text(sw.line),
                    fix="add the missing case(s); never add `default:`"))
    return out


# ---------------------------------------------------------------------------
# bounded-queue


_QUEUE_SCOPES = ("src/olap", "examples")


def _angle_end(text: str, i: int) -> int:
    """i at '<'; index after the matching '>'."""
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def check_bounded_queue(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    files = ctx.files(*_QUEUE_SCOPES)
    all_text = {rel: sf.stripped for rel, sf in files}
    for rel, sf in files:
        text = sf.stripped
        for m in re.finditer(r"\bBlockingQueue\s*<", text):
            after = _angle_end(text, text.find("<", m.start()))
            # make_unique<BlockingQueue<T>>() — empty constructor args.
            before = text[:m.start()].rstrip()
            if before.endswith("<"):  # ...make_unique< BlockingQueue<T> >
                close = text[after:].lstrip()
                if close.startswith(">"):
                    paren = after + len(text[after:]) - len(close) + 1
                    rest = text[paren:].lstrip()
                    if rest.startswith("(") and rest[1:].lstrip().startswith(")"):
                        line = sf.line_of(m.start())
                        out.append(Finding(
                            "bounded-queue", rel, line,
                            "unbounded BlockingQueue on the serving path "
                            "(no capacity argument)",
                            text=sf.line_text(line),
                            fix="pass a capacity; shed or reroute on kFull"))
                continue
            # Declaration: BlockingQueue<T> name;   (or ...name{} / ())
            decl = re.match(r"\s*&?\s*(\w+)\s*([;({]?)", text[after:])
            if decl is None or decl.group(1) in ("operator",):
                continue
            name, punct = decl.group(1), decl.group(2)
            if punct in ("(", "{"):
                args_at = after + decl.end(2) - 1
                inner = text[args_at + 1:].lstrip()
                if not inner.startswith((")", "}")):
                    continue  # constructed with arguments
            elif punct != ";":
                continue  # reference/parameter or other usage
            # A member declaration is fine if some constructor init-list
            # in this file or its header/source twin passes a capacity.
            twin = (rel[:-4] + ".cpp") if rel.endswith(".hpp") \
                else (rel[:-4] + ".hpp")
            init = re.compile(rf"[:,]\s*{name}\s*[({{]\s*[^)}}\s]")
            if any(init.search(all_text.get(r, ""))
                   for r in (rel, twin)):
                continue
            line = sf.line_of(m.start())
            out.append(Finding(
                "bounded-queue", rel, line,
                f"BlockingQueue `{name}` is unbounded on the serving "
                "path (no capacity at construction)",
                text=sf.line_text(line),
                fix="construct with a capacity; shed or reroute on kFull"))
    return out


# ---------------------------------------------------------------------------
# unit-escape


_UNIT_SCOPES = ("src/perfmodel", "src/sched", "src/sim")
_UNIT_SUFFIXES = ("_s", "_sec", "_secs", "_seconds", "_ms", "_mb",
                  "_megabytes", "_mbps", "_gb", "_gbps")
_PARAM = re.compile(r"[(,]\s*(?:const\s+)?double\s+([a-z_]\w*)")
_REWRAP = re.compile(
    r"\b(Seconds|Megabytes|MbPerSec|GbPerSec)\s*\{[^{}]*\.value\(\)[^{}]*\}")


def _unit_named(name: str) -> bool:
    return name.endswith(_UNIT_SUFFIXES) or "per_s" in name


def check_unit_escape(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    for rel, sf in ctx.files(*_UNIT_SCOPES):
        if rel.endswith(".hpp"):
            for m in _PARAM.finditer(sf.stripped):
                if _unit_named(m.group(1)):
                    line = sf.line_of(m.start(1))
                    out.append(Finding(
                        "unit-escape", rel, line,
                        f"raw double parameter `{m.group(1)}` carries a "
                        "unit in its name",
                        text=sf.line_text(line),
                        fix="take Seconds/Megabytes/MbPerSec/GbPerSec "
                            "(common/units.hpp) instead"))
        for m in _REWRAP.finditer(sf.stripped):
            line = sf.line_of(m.start())
            out.append(Finding(
                "unit-escape", rel, line,
                f"unwrap-then-rewrap into {m.group(1)} defeats the "
                "dimension check",
                text=sf.line_text(line),
                fix="express the arithmetic on the strong types (the "
                    "cross-unit operators in common/units.hpp)"))
    return out


# ---------------------------------------------------------------------------
# span-lifecycle


def check_span_lifecycle(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    for rel, sf in ctx.files("src"):
        if rel.startswith("src/obs/"):
            continue
        for m in re.finditer(r"\bTraceSpan\b", sf.stripped):
            line = sf.line_of(m.start())
            out.append(Finding(
                "span-lifecycle", rel, line,
                "TraceSpan is src/obs-internal; other planes must not "
                "construct or handle spans directly",
                text=sf.line_text(line),
                fix="record via TraceRecorder::span()/span_into() and "
                    "the SpanBuilder setters"))
    return out


# ---------------------------------------------------------------------------
# retry-bound


_RETRY_SCOPES = ("src/sched", "src/olap")
_RETRY_IDENT = re.compile(r"\b\w*(?:retry|retries|attempt)\w*\b",
                          re.IGNORECASE)
# A relational comparison that is not `->`, `<<` or `>>` (the visible
# attempt bound; `<=`/`>=` match as `<`/`>` followed by `=`).
_RELATIONAL = re.compile(r"(?<![-<>])[<>](?![<>])")


def _loop_headers(text: str):
    """(offset, header) for every while/for loop condition — the trailing
    condition of a do { } while (...) is caught by the `while` branch."""
    for m in re.finditer(r"\b(?:while|for)\s*\(", text):
        open_at = text.find("(", m.start())
        end = _skip_brackets(text, open_at, "(", ")")
        yield m.start(), text[open_at + 1:end - 1]


def check_retry_bound(ctx: Context) -> list[Finding]:
    out: list[Finding] = []
    for rel, sf in ctx.files(*_RETRY_SCOPES):
        for off, header in _loop_headers(sf.stripped):
            if not _RETRY_IDENT.search(header):
                continue
            if _RELATIONAL.search(header):
                continue
            line = sf.line_of(off)
            out.append(Finding(
                "retry-bound", rel, line,
                "retry loop without a compile-time-visible attempt bound "
                "in its header",
                text=sf.line_text(line),
                fix="bound the loop on an attempt counter (e.g. "
                    "`attempt < policy.max_attempts`)"))
    return out


# ---------------------------------------------------------------------------
# lock-order / blocking / waitnotify (rules 8–10, concurrency.py)


def _concurrency_findings(ctx: Context, rule: str) -> list[Finding]:
    """Extract the concurrency model once per Context and run one rule.
    Scope: all of src/ (the concurrent core); concurrency.py exempts the
    lock primitive layer itself."""
    cached = getattr(ctx, "_concurrency", None)
    if cached is None:
        files = ctx.files("src")
        model = build_text_model(files)
        by_rel = {rel: sf for rel, sf in files}

        def line_text(rel: str, line: int) -> str:
            sf = by_rel.get(rel)
            return sf.line_text(line) if sf else ""

        cached = (model, line_text)
        ctx._concurrency = cached
    model, line_text = cached
    findings = analyze_model(model, [rule], line_text)
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings


def check_lock_order(ctx: Context) -> list[Finding]:
    return _concurrency_findings(ctx, "lock-order")


def check_blocking(ctx: Context) -> list[Finding]:
    return _concurrency_findings(ctx, "blocking")


def check_waitnotify(ctx: Context) -> list[Finding]:
    return _concurrency_findings(ctx, "waitnotify")


# ---------------------------------------------------------------------------
# definite-outcome / ledger-balance-paths / repartition-invalidation
# (rules 11–13, rules_dataflow.py — CFG + forward dataflow over cfg.py)


def _dataflow_findings(ctx: Context, rule: str) -> list[Finding]:
    findings = run_text_dataflow(ctx, [rule])
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings


def check_definite_outcome(ctx: Context) -> list[Finding]:
    return _dataflow_findings(ctx, "definite-outcome")


def check_ledger_balance_paths(ctx: Context) -> list[Finding]:
    return _dataflow_findings(ctx, "ledger-balance-paths")


def check_repartition_invalidation(ctx: Context) -> list[Finding]:
    return _dataflow_findings(ctx, "repartition-invalidation")


AST_RULES = {
    "clock-ledger": check_clock_ledger,
    "batch-ledger": check_batch_ledger,
    "enum-exhaustive": check_enum_exhaustive,
    "bounded-queue": check_bounded_queue,
    "unit-escape": check_unit_escape,
    "span-lifecycle": check_span_lifecycle,
    "retry-bound": check_retry_bound,
    "lock-order": check_lock_order,
    "blocking": check_blocking,
    "waitnotify": check_waitnotify,
    "definite-outcome": check_definite_outcome,
    "ledger-balance-paths": check_ledger_balance_paths,
    "repartition-invalidation": check_repartition_invalidation,
}

assert set(CONCURRENCY_RULES) <= set(AST_RULES)
assert set(DATAFLOW_RULES) <= set(AST_RULES)


def run_text_engine(root: pathlib.Path, rules: list[str]) -> list[Finding]:
    ctx = Context(root)
    out: list[Finding] = []
    for rule in rules:
        out.extend(AST_RULES[rule](ctx))
    return out
