"""Forward dataflow over cfg.CFG: a small gen/kill fixpoint framework.

A rule supplies three things:

- `init`: the lattice value entering the function,
- `transfer(stmt, state) -> state`: the per-statement effect (must be
  monotone over the rule's finite lattice),
- `join(states) -> state`: merge-at-join (union for may-analyses,
  intersection for must-analyses).

Optionally `edge_transfer(stmt, kind, state) -> state` refines the value
carried by a specific out-edge of the block terminated by `stmt` — how
rules encode branch facts such as "the `!x.has_value()` true-edge proves
slot x empty". Exception edges carry the state from *before* their
terminator: the throwing call's effects may not have happened yet, which
is the conservative direction for leak detection.

States are opaque to the framework; they only need `==`. `None` is the
unreached value (⊥) and never passed to transfer/join.
"""
from __future__ import annotations

import dataclasses
from typing import Callable

from cfg import CFG, EXC_EXIT, EXIT


@dataclasses.dataclass
class ExitEdge:
    bid: int  # source block
    stmt: object  # terminating Stmt, or None for fall-off-the-end
    kind: str  # edge kind ('return', 'fall', 'exc')
    state: object  # converged lattice value carried by the edge


@dataclasses.dataclass
class Result:
    block_in: dict  # block id -> converged in-state (unreached blocks absent)
    exit_edges: list  # ExitEdge per edge into EXIT
    exc_edges: list  # ExitEdge per edge into EXC_EXIT (stmt = throwing stmt)


def run_forward(cfg: CFG, init, transfer: Callable, join: Callable,
                edge_transfer: Callable | None = None) -> Result:
    block_in: dict = {cfg.entry: init}
    # edge key -> state, where key identifies (src block, succ index)
    edge_states: dict = {}

    def flow_block(bid: int):
        """States carried by each out-edge of `bid` given its in-state."""
        block = cfg.block(bid)
        state = block_in[bid]
        pre_term = state
        for stmt in block.stmts:
            pre_term = state
            state = transfer(stmt, state)
        term = block.stmts[-1] if block.stmts else None
        out = []
        for idx, (target, kind) in enumerate(block.succs):
            es = pre_term if kind == "exc" else state
            if edge_transfer is not None and term is not None:
                es = edge_transfer(term, kind, es)
            out.append((idx, target, kind, es))
        return out

    worklist = [cfg.entry]
    # generous bound: lattices here are tiny, so convergence is quick;
    # the cap only guards against a non-monotone transfer looping.
    budget = (len(cfg.blocks) + 2) * 64
    while worklist and budget > 0:
        budget -= 1
        bid = worklist.pop()
        for idx, target, kind, es in flow_block(bid):
            key = (bid, idx)
            if edge_states.get(key, "\0unset") == es:
                continue
            edge_states[key] = es
            if target in (EXIT, EXC_EXIT):
                continue
            incoming = [
                edge_states[(p, i)]
                for p in cfg.blocks
                for i, (t, _) in enumerate(cfg.block(p).succs)
                if t == target and (p, i) in edge_states
            ]
            new_in = join(incoming) if incoming else None
            if new_in is not None and block_in.get(target, None) != new_in:
                block_in[target] = new_in
                worklist.append(target)

    exit_edges: list = []
    exc_edges: list = []
    for bid, block in cfg.blocks.items():
        if bid not in block_in:
            continue  # unreachable
        for idx, (target, kind) in enumerate(block.succs):
            state = edge_states.get((bid, idx))
            if state is None:
                continue
            term = block.stmts[-1] if block.stmts else None
            if target == EXIT:
                exit_edges.append(ExitEdge(bid, term, kind, state))
            elif target == EXC_EXIT:
                exc_edges.append(ExitEdge(bid, term, kind, state))
    return Result(block_in=block_in, exit_edges=exit_edges,
                  exc_edges=exc_edges)


def replay(cfg: CFG, result: Result, visit: Callable) -> None:
    """Walk every reached block with its converged in-state, calling
    `visit(stmt, state_before) -> state_after` per statement — the hook
    where rules emit findings at the event that proves them (a second
    resolve, a use of a stale reference) with exact line information."""
    for bid in sorted(result.block_in):
        state = result.block_in[bid]
        for stmt in cfg.block(bid).stmts:
            state = visit(stmt, state)
