"""``python3 -m`` entry point (run from scripts/: ``python3 -m analyze``)."""

import sys

from .analyze import run

sys.exit(run())
