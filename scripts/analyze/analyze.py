#!/usr/bin/env python3
"""Repo-specific static analysis: hygiene lint + invariant rules.

Rule families (select with --rules; each violation prints as
``file:line: [rule] message``):

  lint   determinism, raw-new-delete, include-hygiene — the original
         scripts/lint.py rules (that script now forwards here).
  ast    clock-ledger, enum-exhaustive, bounded-queue, unit-escape,
         span-lifecycle — structural invariants of this codebase — plus
         the interprocedural concurrency rules lock-order, blocking and
         waitnotify (lock-order graph with cycle detection, blocking
         calls under a held mutex, CondVar wait/notify protocol) and the
         path-sensitive dataflow rules definite-outcome,
         ledger-balance-paths and repartition-invalidation (CFG +
         forward fixpoint over scripts/analyze/cfg.py); see DESIGN.md
         "Invariants as machine-checked rules" and "Path-sensitive
         dataflow".

``--only`` narrows whatever --rules selected to an explicit id list —
``--rules ast --only lock-order,blocking,waitnotify`` is the CI
concurrency job's invocation.

Engines for the ast family (--engine):

  text      self-contained token/brace engine, no dependencies (default
            fallback; what ctest runs).
  libclang  precise AST engine on the clang Python bindings + a
            compile_commands.json (CI installs the bindings).
  auto      libclang when importable, else text.

Usage:
  scripts/analyze/analyze.py                       # all rules, text/auto
  scripts/analyze/analyze.py --rules lint          # old lint.py behaviour
  scripts/analyze/analyze.py --rules clock-ledger,unit-escape
  scripts/analyze/analyze.py --fix-dry-run         # show suggested fixes
  scripts/analyze/analyze.py --json findings.json  # machine-readable dump
  scripts/analyze/analyze.py --format sarif > a.sarif  # SARIF 2.1.0 log

Exit codes: 0 clean (all findings baselined), 1 findings or stale
baseline entries, 2 bad invocation.

Baseline: scripts/analyze/baseline.json suppresses accepted findings by
(rule, file, line-substring). Stale entries — suppressing nothing — fail
the run so suppressions cannot accumulate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

try:
    from .findings import Baseline, Finding, to_sarif
    from .rules_ast import AST_RULES, run_text_engine
    from .rules_lint import LINT_RULES
    from . import libclang_engine
except ImportError:  # executed as a plain script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from findings import Baseline, Finding, to_sarif
    from rules_ast import AST_RULES, run_text_engine
    from rules_lint import LINT_RULES
    import libclang_engine

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"


def resolve_rules(spec: str) -> tuple[list[str], list[str]]:
    """--rules value -> (lint rule ids, ast rule ids)."""
    lint: list[str] = []
    ast: list[str] = []
    for token in spec.split(","):
        token = token.strip()
        if token == "all":
            lint = list(LINT_RULES)
            ast = list(AST_RULES)
        elif token == "lint":
            lint = list(LINT_RULES)
        elif token == "ast":
            ast = list(AST_RULES)
        elif token in LINT_RULES:
            lint.append(token)
        elif token in AST_RULES:
            ast.append(token)
        else:
            known = ", ".join(["all", "lint", "ast", *LINT_RULES,
                               *AST_RULES])
            raise SystemExit(
                f"analyze: unknown rule '{token}' (known: {known})")
    return lint, ast


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--rules", default="all",
                        help="comma list: all, lint, ast, or rule ids "
                             "(default: all)")
    parser.add_argument("--only", default=None,
                        help="restrict the selected rules to this comma "
                             "list of rule ids (applied after --rules)")
    parser.add_argument("--engine", default="text",
                        choices=("auto", "text", "libclang"),
                        help="engine for the ast rules (default: text)")
    parser.add_argument("--root", type=pathlib.Path, default=REPO,
                        help="tree to analyze (default: the repo)")
    parser.add_argument("-p", "--build-dir", type=pathlib.Path,
                        default=REPO / "build",
                        help="compile_commands.json dir for --engine "
                             "libclang (default: build/)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline file, or 'none' (default: "
                             "scripts/analyze/baseline.json; only applied "
                             "when analyzing the repo itself)")
    parser.add_argument("--json", dest="json_out",
                        help="write findings as JSON to this path "
                             "('-' = stdout)")
    parser.add_argument("--format", dest="out_format", default="text",
                        choices=("text", "sarif"),
                        help="stdout format: 'text' prints one line per "
                             "finding, 'sarif' prints a SARIF 2.1.0 log "
                             "instead (summaries move to stderr)")
    parser.add_argument("--fix-dry-run", action="store_true",
                        help="print the suggested fix next to each "
                             "violation (no files are modified); exit "
                             "code still reflects violations")
    args = parser.parse_args(argv)

    lint_rules, ast_rules = resolve_rules(args.rules)
    if args.only is not None:
        keep = {t.strip() for t in args.only.split(",") if t.strip()}
        unknown = keep - set(LINT_RULES) - set(AST_RULES)
        if unknown:
            known = ", ".join([*LINT_RULES, *AST_RULES])
            raise SystemExit("analyze: --only names unknown rule(s): "
                             + ", ".join(sorted(unknown))
                             + f" (known: {known})")
        lint_rules = [r for r in lint_rules if r in keep]
        ast_rules = [r for r in ast_rules if r in keep]
    root = args.root.resolve()

    findings: list[Finding] = []
    for rule in lint_rules:
        findings.extend(LINT_RULES[rule](root))

    engine_used = "text"
    if ast_rules:
        engine = args.engine
        if engine in ("auto", "libclang"):
            try:
                findings.extend(libclang_engine.run_libclang_engine(
                    root, ast_rules, args.build_dir.resolve()))
                engine_used = "libclang"
            except libclang_engine.EngineUnavailable as e:
                if engine == "libclang":
                    print(f"analyze: libclang engine unavailable: {e}",
                          file=sys.stderr)
                    return 2
                engine = "text"
        if engine == "text":
            findings.extend(run_text_engine(root, ast_rules))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    baseline = Baseline.empty()
    if args.baseline != "none" and root == REPO.resolve():
        baseline_path = pathlib.Path(args.baseline)
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
            baseline.restrict(set(lint_rules) | set(ast_rules))

    live = [f for f in findings if not baseline.suppresses(f)]

    if args.out_format == "sarif":
        sarif = to_sarif(live, lint_rules + ast_rules, engine_used)
        print(json.dumps(sarif, indent=2))
    else:
        for f in live:
            print(f.format())
            if args.fix_dry_run and f.fix:
                print(f"{f.path}:{f.line}: [{f.rule}] would fix: {f.fix}")

    stale = baseline.stale_entries()
    for e in stale:
        print(f"{e['path']}: [baseline] stale suppression for "
              f"{e['rule']} (matched nothing): {e['contains']!r}",
              file=sys.stderr)

    if args.json_out:
        payload = json.dumps({
            "engine": engine_used,
            "rules": lint_rules + ast_rules,
            "root": str(root),
            "findings": [f.to_json() for f in live],
            "suppressed": len(findings) - len(live),
            "stale_baseline_entries": len(stale),
            "stale_baseline": [
                {"rule": e["rule"], "path": e["path"],
                 "contains": e["contains"]} for e in stale],
        }, indent=2)
        if args.json_out == "-":
            print(payload)
        else:
            pathlib.Path(args.json_out).write_text(payload + "\n",
                                                   encoding="utf-8")

    if live or stale:
        print(f"\n{len(live)} violation(s), {len(stale)} stale baseline "
              "entr(y/ies).", file=sys.stderr)
        return 1
    suppressed = len(findings)
    suffix = f", {suppressed} baselined" if suppressed else ""
    print(f"analyze: OK ({len(lint_rules) + len(ast_rules)} rules, "
          f"engine={engine_used}{suffix})",
          file=sys.stderr if args.out_format == "sarif" else sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(run())
