"""Path-sensitive dataflow rules over the shared CFG (rules 11-13).

Three rules, each a forward dataflow problem on `cfg.lower()` graphs
(see DESIGN.md, "Path-sensitive dataflow"):

  definite-outcome (11)      Any src/olap or src/sched function that owns
                             a query promise slot (a by-value `Job` /
                             `IngestRequest`, a popped optional, or a
                             local whose promise was armed) must resolve
                             it exactly once on every path to exit,
                             including exception edges. Double-resolve
                             and leak-on-early-return are distinct
                             findings.
  ledger-balance-paths (12)  Re-expresses the rule-1/7 pairing heuristic
                             as a path fact: after a schedule()/
                             schedule_batch() clock commit, every path to
                             exit must either hand the work to a queue or
                             roll the commit back — including the
                             exception edge out of a throwing call.
                             Inside QueueingScheduler, on_shed() and
                             rollback_batch() must subtract every family
                             they ever subtract on *all* paths
                             (must-analysis, intersection join).
  repartition-invalidation (13)
                             References/iterators into DeviceCatalog /
                             partition state obtained before a call that
                             may apply() a RepartitionDecision must not
                             be used after it.

Engine neutrality: both engines produce `FunctionIR` records (the text
engine via `build_text_functions`, the libclang engine from cursors) and
feed them to `analyze_functions` — everything below FunctionIR is
engine-agnostic, so rule ids, messages, and baselines match.

May-throw policy: exception edges are seeded by explicit `throw`
statements and by calls to a curated set of throwing APIs
(`THROWING_APIS` — validation and translation entry points plus the
fault-injector hook), then propagated transitively by callee simple
name. HOLAP_REQUIRE/HOLAP_ASSERT sites are deliberately *not* seeds:
they assert programmer invariants on data the serving path has already
validated, and seeding them would drown the rules in invariant-failure
paths no recovery code is expected to handle. Statements inside a `try`
do not contribute to a function's own may-throw summary.
"""
from __future__ import annotations

import pathlib
import re
import sys

try:
    from . import cfg as C
    from . import dataflow as D
    from .cppmodel import function_definitions
    from .findings import Finding
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import cfg as C
    import dataflow as D
    from cppmodel import function_definitions
    from findings import Finding


DATAFLOW_RULES = ("definite-outcome", "ledger-balance-paths",
                  "repartition-invalidation")

# Scopes the path-sensitive rules run over (mirrors the serving-path
# scopes of rules 1/7; the simulation plane sheds through its own path).
DATAFLOW_SCOPES = ("src/olap", "src/sched")

# Types that carry a query promise by value. Owning one creates the
# resolve-exactly-once obligation of rule 11.
OWNED_TYPES = ("Job", "IngestRequest")

# Curated may-throw seeds: the validation/translation entry points the
# serving path calls on request data, plus the fault-injector's
# admission hook (which tests arm with throwing callables).
THROWING_APIS = frozenset({
    "validate_query", "translate", "translate_batch", "translate_all",
    "execute", "answer", "run_submit_hook",
})

_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def _called_names(text: str) -> set:
    return set(_CALL_RE.findall(text))


class FunctionIR:
    """One function body in engine-neutral form."""

    def __init__(self, rel: str, cls: str, name: str, line: int,
                 end_line: int, params: str, sir) -> None:
        self.rel = rel
        self.cls = cls  # enclosing class name or ""
        self.name = name  # simple name
        self.line = line
        self.end_line = end_line
        self.params = params  # raw parameter list text
        self.sir = sir  # cfg.Seq


def build_text_functions(files) -> list:
    """FunctionIR records for every definition in (rel, SourceFile)
    pairs — the text engine's half of the shared contract."""
    out = []
    for rel, sf in files:
        for fd in function_definitions(sf):
            sir = C.parse_function(sf.stripped, fd.start, fd.end,
                                   sf.line_of)
            out.append(FunctionIR(rel, fd.cls or "", fd.name, fd.line,
                                  sf.line_of(fd.end), fd.params, sir))
    return out


def may_throw_names(functions) -> set:
    """Simple names whose calls get a conservative exception edge:
    the curated APIs plus every scanned function that (outside any try)
    throws or calls something already in the set — a fixpoint over
    callee simple names."""
    throwing = set(THROWING_APIS)
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.name in throwing:
                continue
            for stmt in C.stmts_outside_try(fn.sir):
                if stmt.kind == "throw" or (_called_names(stmt.text)
                                            & throwing):
                    throwing.add(fn.name)
                    changed = True
                    break
    throwing.discard("throw_require_failure")
    return throwing


def _throws_pred(throwing: set):
    def throws(stmt) -> bool:
        if stmt.kind == "throw":
            return True
        return bool(_called_names(stmt.text) & throwing)
    return throws


def _throwing_callee(stmt, throwing: set) -> str:
    if stmt.kind == "throw":
        return "throw"
    hit = sorted(_called_names(stmt.text) & throwing)
    return hit[0] if hit else "a callee"


# ---------------------------------------------------------------------------
# Rule 11: definite-outcome
# ---------------------------------------------------------------------------
#
# Lattice per slot: subset of {I, U, R, E}.
#   I  inert     — declared, but its promise has not been armed (a default
#                  `Job job;` holds a promise nobody observes yet)
#   U  unresolved— armed: some caller holds (or will hold) the future
#   R  resolved  — set_value ran or ownership moved out (std::move)
#   E  escaped   — handed to a conditional-transfer API (try_push): the
#                  callee may or may not have consumed it, so both a
#                  later resolve and a clean exit are fine
# Join is per-slot union (may-analysis: report what can happen on SOME
# path for double-resolve, on EVERY path via edge states for leaks).

_TYPE_ALT = "|".join(OWNED_TYPES)
_PARAM_RE = re.compile(rf"^\s*({_TYPE_ALT})\s*(?:&&)?\s+(\w+)\s*$")
_DECL_RE = re.compile(rf"^({_TYPE_ALT})\s+(\w+)\s*(;|=|\{{|$)")
_OPT_DECL_RE = re.compile(
    rf"^(?:auto|std\s*::\s*optional\s*<\s*(?:{_TYPE_ALT})\s*>)"
    rf"\s+(\w+)\s*=\s*(.+)$")
_POP_RHS_RE = re.compile(r"\b(?:try_)?pop(?:_for)?\s*\(")
_COND_POP_DECL_RE = re.compile(
    r"^auto\s+(\w+)\s*=\s*.*\b(?:try_)?pop(?:_for)?\s*\(")
_RANGEFOR_BIND_RE = re.compile(
    rf"^(?:const\s+)?({_TYPE_ALT})\s*&*\s+(\w+)\s*:")
_HAS_VALUE_NEG_RE = re.compile(r"^!\s*(\w+)\s*(?:\.|->)\s*has_value\s*\(")
_HAS_VALUE_POS_RE = re.compile(r"^(\w+)\s*(?:\.|->)\s*has_value\s*\(")


def _split_params(params: str) -> list:
    depth, piece, pieces = 0, [], []
    for c in params:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            pieces.append("".join(piece))
            piece = []
        else:
            piece.append(c)
    pieces.append("".join(piece))
    return pieces


def _owned_params(params: str) -> list:
    """Names of by-value (or rvalue-ref) OWNED_TYPES parameters — the
    signatures that transfer promise ownership into the function."""
    out = []
    for piece in _split_params(params):
        m = _PARAM_RE.match(piece)
        if m:
            out.append(m.group(2))
    return out


class _SlotRules:
    """Per-function compiled regexes + static facts for rule 11."""

    def __init__(self, fn: FunctionIR):
        self.fn = fn
        texts = [s.text for s in C.walk_stmts(fn.sir)]
        body = "\n".join(texts)
        # Slots whose future is taken in this function: these are the
        # creator pattern (submit()). On an exception edge the local
        # future dies with the frame — nobody observes the unresolved
        # promise — so creators are exempt from exception-leak findings.
        self.creators = {
            m.group(1) for m in re.finditer(
                r"\b(\w+)\s*(?:\.|->)\s*promise\s*(?:\.|->)"
                r"\s*get_future\s*\(", body)}

    def set_value_re(self, name: str):
        return re.compile(rf"\b{name}\b\s*(?:\.|->)\s*promise\s*"
                          rf"(?:\.|->)\s*set_value\s*\(")

    def move_re(self, name: str):
        return re.compile(rf"std\s*::\s*move\s*\(\s*\*?\s*{name}\s*\)")

    def try_push_re(self, name: str):
        return re.compile(rf"\btry_push\s*\(\s*{name}\s*\)")

    def arm_re(self, name: str):
        # The promise becomes observable: moved in from a live request,
        # the whole object assigned/move-initialised, or get_future
        # taken. A default-constructed slot stays inert until then.
        return re.compile(
            rf"\b{name}\b\s*(?:\.|->)\s*promise\s*="
            rf"|^{name}\s*=\s*std\s*::\s*move\s*\("
            rf"|\b{name}\b\s*(?:\.|->)\s*promise\s*(?:\.|->)"
            rf"\s*get_future\s*\(")


def _r11_step(stmt, state: dict, rules: _SlotRules, sink=None):
    """Apply one statement to {name: frozenset(status)}; when `sink` is
    given (replay pass), emit double-resolve findings at the resolving
    statement."""
    text = stmt.text
    state = dict(state)

    def resolve(name: str):
        s = state[name]
        if "E" in s:
            return  # conditional-transfer API owns the contract now
        if sink is not None and "R" in s:
            definite = s == frozenset("R")
            sink(stmt, name, definite)
        state[name] = frozenset("R")

    # Range-for bindings alias container-owned elements and shadow any
    # earlier slot of the same name: stop tracking the name.
    m = _RANGEFOR_BIND_RE.match(text) if stmt.kind == "cond" else None
    if m:
        state.pop(m.group(2), None)
        return state

    # Events against already-tracked slots, oldest obligation first.
    for name in list(state):
        used = re.search(rf"\b{name}\b", text)
        if not used:
            continue
        if rules.arm_re(name).search(text) and "I" in state[name]:
            state[name] = (state[name] - {"I"}) | {"U"}
        if rules.set_value_re(name).search(text):
            resolve(name)
        elif rules.move_re(name).search(text):
            resolve(name)
        elif rules.try_push_re(name).search(text):
            state[name] = frozenset("E")

    # Declarations (gen) — after move processing so that
    # `Job fwd = std::move(*job);` resolves job before generating fwd.
    m = _DECL_RE.match(text)
    if m and stmt.kind == "expr":
        name = m.group(2)
        armed = ("std::move" in text.replace(" ", "")
                 or name in rules.creators)
        state[name] = frozenset("U" if armed else "I")
    else:
        m = _OPT_DECL_RE.match(text)
        if m and stmt.kind == "expr" and _POP_RHS_RE.search(m.group(2)):
            state[m.group(1)] = frozenset("U")
    return state


def _r11_edge(stmt, kind: str, state: dict) -> dict:
    if stmt.kind != "cond":
        return state
    text = stmt.text
    m = _COND_POP_DECL_RE.match(text)
    if m:
        state = dict(state)
        if kind in ("true", "back"):
            state[m.group(1)] = frozenset("U")  # loop iteration owns one
        else:
            state.pop(m.group(1), None)  # queue closed: no slot
        return state
    m = _HAS_VALUE_NEG_RE.match(text)
    if m and kind == "true" and m.group(1) in state:
        state = dict(state)
        state.pop(m.group(1))  # proven empty on this edge
        return state
    m = _HAS_VALUE_POS_RE.match(text)
    if m and kind == "false" and m.group(1) in state:
        state = dict(state)
        state.pop(m.group(1))
        return state
    return state


def _freeze(state: dict) -> frozenset:
    return frozenset(state.items())


def _thaw(state) -> dict:
    return dict(state)


def check_definite_outcome(functions, throwing: set, line_text) -> list:
    out: list = []
    seen: set = set()

    def emit(rel, line, message, fix):
        key = (rel, line, message)
        if key in seen:
            return
        seen.add(key)
        out.append(Finding("definite-outcome", rel, line, message,
                           text=line_text(rel, line), fix=fix))

    for fn in functions:
        rules = _SlotRules(fn)
        params = _owned_params(fn.params)
        has_locals = any(
            _DECL_RE.match(s.text) or _OPT_DECL_RE.match(s.text)
            or _COND_POP_DECL_RE.match(s.text)
            for s in C.walk_stmts(fn.sir))
        if not params and not has_locals:
            continue
        graph = C.lower(fn.sir, throws=_throws_pred(throwing))
        init = _freeze({name: frozenset("U") for name in params})

        def transfer(stmt, state):
            return _freeze(_r11_step(stmt, _thaw(state), rules))

        def edge_transfer(stmt, kind, state):
            return _freeze(_r11_edge(stmt, kind, _thaw(state)))

        def join(states):
            merged: dict = {}
            for st in states:
                for name, status in st:
                    merged[name] = merged.get(name, frozenset()) | status
            return _freeze(merged)

        result = D.run_forward(graph, init, transfer, join, edge_transfer)

        def sink(stmt, name, definite):
            how = ("is already resolved" if definite
                   else "may already be resolved")
            emit(fn.rel, stmt.line,
                 f"outcome slot '{name}' {how} when this statement "
                 f"resolves it again (double-resolve in "
                 f"{fn.name}())",
                 fix="resolve each promise exactly once per path")

        D.replay(graph, result, lambda stmt, state: _freeze(
            _r11_step(stmt, _thaw(state), rules, sink)))

        for edge in result.exit_edges:
            for name, status in sorted(_thaw(edge.state).items()):
                if "U" not in status:
                    continue
                where = ("the early-return path"
                         if edge.kind == "return" else "the path")
                line = edge.stmt.line if edge.stmt else fn.end_line
                some = "" if status == frozenset("U") else " on some path"
                emit(fn.rel, line,
                     f"outcome slot '{name}' leaks{some} on {where} "
                     f"exiting {fn.name}() here — its promise is never "
                     f"resolved",
                     fix="resolve or hand off the slot before returning")
        for edge in result.exc_edges:
            callee = _throwing_callee(edge.stmt, throwing)
            for name, status in sorted(_thaw(edge.state).items()):
                if "U" not in status or name in rules.creators:
                    continue
                emit(fn.rel, edge.stmt.line,
                     f"outcome slot '{name}' leaks from {fn.name}() if "
                     f"'{callee}' throws here — no handler resolves it",
                     fix="wrap in try/catch and resolve the promise "
                         "before rethrowing or recovering")
    return out


# ---------------------------------------------------------------------------
# Rule 12: ledger-balance-paths
# ---------------------------------------------------------------------------
#
# 12a (call sites): obligation lattice subset of {N, P1, PB, D} — no
# commit / single-query commit pending / batch commit pending /
# discharged. A receiver call to schedule() commits clock time (P1),
# schedule_batch() commits a whole batch (PB). Handing the job onward or
# rolling back discharges (D). decide() advances no clock for a
# shed-at-admission or rejected placement, so the true-edge of a
# `placement.shed_at_admission` / `.rejected` test discharges a P1
# commit (a batch commit still covers the *other* admitted queries and
# stays pending). Report paths that exit with a commit definitely
# pending, and exception edges where one may be pending.

_COMMIT_BATCH_RE = re.compile(r"[.>]\s*schedule_batch\s*\(")
_COMMIT_ONE_RE = re.compile(r"[.>]\s*schedule\s*\(")
_SHED_REJECT_EDGE_RE = re.compile(
    r"(?<![!\w])\w+\s*(?:\.|->)\s*(?:shed_at_admission|rejected)\b")
# Direct discharges: rolling the ledger back, queueing the work (route/
# enqueue — from there runtime feedback balances the clocks), running it
# inline to completion (the on_*_completed feedback hooks of the
# synchronous plane), or resolving the outcome (shed/reject paths, where
# schedule() itself never advanced the clocks). Counting set_value as a
# whole-obligation discharge over-approximates for batches that resolve
# one promise and abandon the rest — the exception/early-return leaks
# this rule exists for never resolve anything, so the blind spot is
# acceptable and documented.
_DISCHARGE_SEEDS = frozenset({
    "rollback_batch", "on_shed", "route", "enqueue", "resolve_unrun",
    "resolve_exhausted", "resolve_unadmitted", "set_value",
    "on_completed", "on_translation_completed",
})


def discharging_names(functions) -> set:
    """Seeds plus every scanned function that calls one — so helper
    wrappers (resolve_unrun calls on_shed) discharge transitively."""
    names = set(_DISCHARGE_SEEDS)
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.name in names:
                continue
            for stmt in C.walk_stmts(fn.sir):
                if _called_names(stmt.text) & names:
                    names.add(fn.name)
                    changed = True
                    break
    return names


# 12b (scheduler members): the families each all-paths rollback member
# must subtract on every path. on_shed()'s dispatch share is legitimately
# conditional (only GPU-queue sheds crossed the launch stage), so it is
# excluded there; rollback_batch() inverts a whole-batch commit and owes
# every family. clock_for() writes count as cpu+gpu, matching rule 1.
ALL_PATH_FAMILIES = {
    "on_shed": ("cpu", "gpu", "translation"),
    "rollback_batch": ("cpu", "gpu", "translation", "dispatch"),
}
_SCHEDULER_FILE = "src/sched/scheduler.cpp"
_SCHEDULER_CLASS = "QueueingScheduler"


def _ledger_mutations(text: str):
    try:
        from .rules_ast import _ledger_mutations as f
    except ImportError:
        from rules_ast import _ledger_mutations as f
    return f(text)


def check_ledger_balance_paths(functions, throwing: set,
                               line_text) -> list:
    out: list = []
    seen: set = set()

    def emit(rel, line, message, fix):
        key = (rel, line, message)
        if key in seen:
            return
        seen.add(key)
        out.append(Finding("ledger-balance-paths", rel, line, message,
                           text=line_text(rel, line), fix=fix))

    discharging = discharging_names(functions)

    # --- 12a: commit obligations at scheduler call sites -------------
    pending = {"P1", "PB"}
    for fn in functions:
        stmts = C.walk_stmts(fn.sir)
        if not any(_COMMIT_ONE_RE.search(s.text)
                   or _COMMIT_BATCH_RE.search(s.text) for s in stmts):
            continue
        graph = C.lower(fn.sir, throws=_throws_pred(throwing))

        def transfer(stmt, state):
            if _COMMIT_BATCH_RE.search(stmt.text):
                return frozenset({"PB"})
            if _COMMIT_ONE_RE.search(stmt.text):
                return frozenset({"P1"})
            if _called_names(stmt.text) & discharging:
                if state & pending:
                    return (state - pending) | {"D"}
            return state

        def edge_transfer(stmt, kind, state):
            if (stmt.kind == "cond" and kind == "true"
                    and "P1" in state
                    and _SHED_REJECT_EDGE_RE.search(stmt.text)):
                return (state - {"P1"}) | {"D"}
            return state

        def join(states):
            merged: frozenset = frozenset()
            for st in states:
                merged = merged | st
            return merged

        result = D.run_forward(graph, frozenset("N"), transfer, join,
                               edge_transfer)
        for edge in result.exit_edges:
            if edge.state and edge.state <= pending:
                line = edge.stmt.line if edge.stmt else fn.end_line
                emit(fn.rel, line,
                     f"{fn.name}() exits here with a schedule() clock "
                     f"commit neither queued nor rolled back on this "
                     f"path",
                     fix="route the job or roll the commit back before "
                         "returning")
        for edge in result.exc_edges:
            if edge.state & pending:
                callee = _throwing_callee(edge.stmt, throwing)
                emit(fn.rel, edge.stmt.line,
                     f"schedule() clock commit in {fn.name}() leaks if "
                     f"'{callee}' throws here — the ledger stays "
                     f"advanced for work that never runs",
                     fix="catch, roll back the commit (rollback_batch/"
                         "on_shed) and resolve the outcome")

    # --- 12b: all-paths family subtraction inside the scheduler ------
    for fn in functions:
        if (fn.rel != _SCHEDULER_FILE or fn.cls != _SCHEDULER_CLASS
                or fn.name not in ALL_PATH_FAMILIES):
            continue
        required = set(ALL_PATH_FAMILIES[fn.name])
        subtracted_anywhere = {
            fam for s in C.walk_stmts(fn.sir)
            for _, fam, op in _ledger_mutations(s.text) if op == "-="}
        # Families never subtracted at all belong to rules 1/7; this
        # rule owns the some-paths-but-not-all blind spot.
        required &= subtracted_anywhere
        if not required:
            continue
        graph = C.lower(fn.sir, assume_loops_entered=True)

        def transfer(stmt, state):
            fams = {fam for _, fam, op in _ledger_mutations(stmt.text)
                    if op == "-="}
            return state | frozenset(fams)

        def join(states):
            merged = None
            for st in states:
                merged = st if merged is None else (merged & st)
            return merged if merged is not None else frozenset()

        result = D.run_forward(graph, frozenset(), transfer, join)
        for edge in result.exit_edges:
            for fam in sorted(required - set(edge.state)):
                line = edge.stmt.line if edge.stmt else fn.end_line
                emit(fn.rel, line,
                     f"{fn.name}() subtracts the {fam} clock on some "
                     f"paths but not on the path exiting here — the "
                     f"ledger unbalances",
                     fix="make the family rollback unconditional or "
                         "roll back before every exit")
    return out


# ---------------------------------------------------------------------------
# Rule 13: repartition-invalidation
# ---------------------------------------------------------------------------
#
# State: {name: {'live'} | {'stale'} | both}. A reference/iterator bind
# whose initialiser reads catalog state goes live; any call that may
# apply() a RepartitionDecision marks every live binding stale; a use of
# a stale binding is the finding. Re-binding from the catalog revives.

_CATALOG_SRC_RE = re.compile(r"catalog")
_REF_BIND_RE = re.compile(
    r"^(?:const\s+)?[A-Za-z_][\w:<>,\s]*&\s*(\w+)\s*=\s*(.+)$")
_ITER_BIND_RE = re.compile(r"^auto\s+(\w+)\s*=\s*(.+)$")
_INVALIDATE_DIRECT_RE = re.compile(
    r"\bapply_repartition\s*\(|[.>]\s*apply\s*\(")


def invalidating_names(functions) -> set:
    """Functions that (transitively) may apply a RepartitionDecision."""
    names: set = set()
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.name in names:
                continue
            for stmt in C.walk_stmts(fn.sir):
                if (_INVALIDATE_DIRECT_RE.search(stmt.text)
                        or (_called_names(stmt.text) & names)):
                    names.add(fn.name)
                    changed = True
                    break
    return names


def check_repartition_invalidation(functions, throwing: set,
                                   line_text) -> list:
    out: list = []
    seen: set = set()

    def emit(rel, line, message, fix):
        key = (rel, line, message)
        if key in seen:
            return
        seen.add(key)
        out.append(Finding("repartition-invalidation", rel, line, message,
                           text=line_text(rel, line), fix=fix))

    invalidating = invalidating_names(functions)

    def invalidates(text: str) -> bool:
        return bool(_INVALIDATE_DIRECT_RE.search(text)
                    or (_called_names(text) & invalidating))

    def binds(text: str):
        m = _REF_BIND_RE.match(text)
        if m and _CATALOG_SRC_RE.search(m.group(2)):
            return m.group(1)
        m = _ITER_BIND_RE.match(text)
        if (m and _CATALOG_SRC_RE.search(m.group(2))
                and re.search(r"\.(?:begin|end|find)\s*\(", m.group(2))):
            return m.group(1)
        return None

    for fn in functions:
        stmts = C.walk_stmts(fn.sir)
        if not any(binds(s.text) for s in stmts):
            continue
        if not any(invalidates(s.text) for s in stmts):
            continue
        graph = C.lower(fn.sir, throws=_throws_pred(throwing))

        def step(stmt, state: dict, report: bool):
            text = stmt.text
            state = dict(state)
            if report:
                for name, status in sorted(state.items()):
                    if "stale" in status and re.search(
                            rf"\b{name}\b", text):
                        some = ("" if status == frozenset({"stale"})
                                else " on some path")
                        emit(fn.rel, stmt.line,
                             f"'{name}' refers to DeviceCatalog/"
                             f"partition state captured before a "
                             f"repartition apply(){some} — stale after "
                             f"the catalog changed",
                             fix="re-read the catalog after apply() "
                                 "instead of holding the reference "
                                 "across it")
            if invalidates(text):
                for name in state:
                    state[name] = frozenset({"stale"})
            bound = binds(text)
            if bound:
                state[bound] = frozenset({"live"})
            return state

        def transfer(stmt, state):
            return _freeze(step(stmt, _thaw(state), False))

        def join(states):
            merged: dict = {}
            for st in states:
                for name, status in st:
                    merged[name] = merged.get(name, frozenset()) | status
            return _freeze(merged)

        result = D.run_forward(graph, _freeze({}), transfer, join)
        D.replay(graph, result, lambda stmt, state: _freeze(
            step(stmt, _thaw(state), True)))
    return out


# ---------------------------------------------------------------------------
# Engine-neutral entry point
# ---------------------------------------------------------------------------


def analyze_functions(functions, rules, line_text) -> list:
    """Run the named dataflow rules over FunctionIR records. `line_text`
    is `(rel, line) -> str` for finding context (either engine's source
    cache)."""
    throwing = may_throw_names(functions)
    out: list = []
    if "definite-outcome" in rules:
        out.extend(check_definite_outcome(functions, throwing, line_text))
    if "ledger-balance-paths" in rules:
        out.extend(check_ledger_balance_paths(functions, throwing,
                                              line_text))
    if "repartition-invalidation" in rules:
        out.extend(check_repartition_invalidation(functions, throwing,
                                                  line_text))
    return out


def run_text_rules(ctx, rules) -> list:
    """Text-engine driver: build FunctionIR from the Context's source
    trees (cached on the Context) and analyze."""
    if not hasattr(ctx, "_dataflow"):
        files = ctx.files(*DATAFLOW_SCOPES)
        functions = build_text_functions(files)
        by_rel = {rel: sf for rel, sf in files}

        def line_text(rel: str, line: int) -> str:
            sf = by_rel.get(rel)
            return sf.line_text(line) if sf is not None else ""

        ctx._dataflow = (functions, line_text)
    functions, line_text = ctx._dataflow
    return analyze_functions(functions, rules, line_text)
