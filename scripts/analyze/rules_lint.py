"""The textual hygiene rules (the original scripts/lint.py, as a library).

Rule ids: ``determinism``, ``raw-new-delete``, ``include-hygiene``. The
behaviour is unchanged from the standalone linter; only the reporting
moved to the shared Finding type so one CLI, one baseline and one CI job
cover both rule families.
"""

from __future__ import annotations

import pathlib
import re
import sys

try:
    from .cppmodel import INCLUDE, SourceTree, strip_comments_and_strings
    from .findings import Finding
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from cppmodel import INCLUDE, SourceTree, strip_comments_and_strings
    from findings import Finding

# Determinism-critical roots: every TU here, plus everything it includes.
DETERMINISTIC_DIRS = ("sim", "sched")

# Individually pinned roots, checked even if they move out of the
# directories above: FaultInjector drives the overload/robustness tests,
# and a seeded fault scenario must replay bit-identically — every knob is
# an explicit flag, counter or gate, never a clock or a random source.
DETERMINISTIC_EXTRA_ROOTS = ("sim/fault_injector.hpp",)

# (regex, human name, suggested fix) for the determinism rule.
NONDETERMINISM = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "wall-clock read",
     "thread simulated time (Seconds) through the call instead"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "C rand()/srand()",
     "use the seeded SplitMix64 from common/rng.hpp"),
    (re.compile(r"std::random_device"),
     "std::random_device",
     "use the seeded SplitMix64 from common/rng.hpp"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "C time()",
     "thread simulated time (Seconds) through the call instead"),
]

RAW_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_(:<]")
RAW_DELETE = re.compile(r"(?<![\w_=>])delete(\s*\[\s*\])?\s+[A-Za-z_(*]")


def _project_sources(root: pathlib.Path) -> list[pathlib.Path]:
    return sorted(p for ext in ("*.hpp", "*.cpp") for p in root.rglob(ext))


def _include_closure(src: pathlib.Path,
                     roots: list[pathlib.Path]) -> set[pathlib.Path]:
    """Transitive closure of project includes, resolved against src/."""
    seen: set[pathlib.Path] = set()
    stack = list(roots)
    while stack:
        f = stack.pop()
        if f in seen or not f.exists():
            continue
        seen.add(f)
        for line in f.read_text(encoding="utf-8").splitlines():
            m = INCLUDE.match(line)
            if m and m.group(1) == '"':
                stack.append(src / m.group(2))
    return {f for f in seen if f.exists()}


def _rel(root: pathlib.Path, path: pathlib.Path) -> str:
    return path.relative_to(root).as_posix()


def check_determinism(root: pathlib.Path) -> list[Finding]:
    src = root / "src"
    out: list[Finding] = []
    roots = [
        p for d in DETERMINISTIC_DIRS for p in _project_sources(src / d)
    ]
    for rel in DETERMINISTIC_EXTRA_ROOTS:
        path = src / rel
        if path not in roots:
            if not path.exists():
                out.append(Finding(
                    "determinism", _rel(root, path), 1,
                    "pinned deterministic root is missing",
                    fix="restore the file or update "
                        "DETERMINISTIC_EXTRA_ROOTS"))
                continue
            roots.append(path)
    for f in sorted(_include_closure(src, roots)):
        text = strip_comments_and_strings(f.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), 1):
            for rx, what, fix in NONDETERMINISM:
                if rx.search(line):
                    out.append(Finding(
                        "determinism", _rel(root, f), lineno,
                        f"{what} reachable from src/sim//src/sched "
                        "(simulations must be seeded and reproducible)",
                        text=line.strip(), fix=fix))
    return out


def check_raw_new_delete(root: pathlib.Path) -> list[Finding]:
    out: list[Finding] = []
    tree = SourceTree(root / "src")
    for sf in tree.files():
        for lineno, line in enumerate(sf.stripped.splitlines(), 1):
            if RAW_NEW.search(line):
                out.append(Finding(
                    "raw-new-delete", f"src/{sf.rel}", lineno,
                    "raw `new` in src/", text=line.strip(),
                    fix="use std::make_unique / a container"))
            if RAW_DELETE.search(line):
                out.append(Finding(
                    "raw-new-delete", f"src/{sf.rel}", lineno,
                    "raw `delete` in src/", text=line.strip(),
                    fix="let std::unique_ptr own the object"))
    return out


def check_include_hygiene(root: pathlib.Path) -> list[Finding]:
    src = root / "src"
    out: list[Finding] = []
    project_header_names = {
        str(p.relative_to(src)) for p in _project_sources(src)
        if p.suffix == ".hpp"
    }
    scan_roots = [src, root / "tests", root / "bench", root / "examples"]
    # Fixture trees under *this* root violate rules on purpose; a fixture
    # tree being analyzed AS the root is scanned normally.
    fixture_prefix = (root / "tests" / "analyze" / "fixtures").as_posix()
    for scan in scan_roots:
        if not scan.exists():
            continue
        for f in _project_sources(scan):
            if f.as_posix().startswith(fixture_prefix):
                continue
            for lineno, line in enumerate(
                    f.read_text(encoding="utf-8").splitlines(), 1):
                m = INCLUDE.match(line)
                if not m:
                    continue
                style, target = m.group(1), m.group(2)
                if style == '"':
                    if target.startswith(".."):
                        out.append(Finding(
                            "include-hygiene", _rel(root, f), lineno,
                            f'relative include "{target}" escapes the '
                            "include root", text=line.strip(),
                            fix='include as "subdir/file.hpp" from src/'))
                    elif not (src / target).exists() and not (
                            f.parent / target).exists():
                        out.append(Finding(
                            "include-hygiene", _rel(root, f), lineno,
                            f'quoted include "{target}" resolves to no '
                            "file under src/", text=line.strip(),
                            fix="fix the path or add the header"))
                elif target in project_header_names:
                    out.append(Finding(
                        "include-hygiene", _rel(root, f), lineno,
                        f"project header <{target}> included with "
                        "angle brackets", text=line.strip(),
                        fix=f'use #include "{target}"'))
    return out


LINT_RULES = {
    "determinism": check_determinism,
    "raw-new-delete": check_raw_new_delete,
    "include-hygiene": check_include_hygiene,
}
