"""Interprocedural concurrency analysis shared by both engines.

The engines (text: cppmodel.py via rules_ast.py; AST: libclang_engine.py)
each extract the same intermediate representation — per-function ordered
lock/call/block/wait/notify events (cppmodel.ConcEvent) plus entry-held
sets from HOLAP_REQUIRES annotations — and this module runs the analysis:

  1. a call graph over the extracted functions, with virtual/overload
     calls resolved to the union of known definitions and unknown callees
     conservatively assumed to acquire nothing and never block;
  2. fixpoint summaries per function: the locks a call may transitively
     acquire and the blocking primitives it may transitively reach, each
     with one representative witness path;
  3. a second pass simulating each function's events against its held-set
     to build the lock-order graph and emit the findings.

Rules (ids match the CI flags and DESIGN.md):

  lock-order   two mutexes acquired in both orders on some interprocedural
               path (deadlock; both witness paths printed), or a recursive
               acquisition of the non-reentrant common::Mutex.
  blocking     BlockingQueue::pop/pop_for/push, CondVar::wait on another
               mutex, std::thread::join, or std::future::get reached while
               a lock is held.
  waitnotify   every CondVar::wait sits in a predicate loop; every
               notify_* happens in a function that touched the waiter's
               mutex, so the signalled state mutation is serialised.

Lock identity is the qualified member name (instance-merged:
'BlockingQueue::mutex_' covers every instance), which matches how the
Thread Safety annotations name capabilities — deliberately conservative
for rule 8: two instances of one class cannot alias-split a cycle away.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Callable, Iterable

try:
    from .cppmodel import (ConcEvent, FunctionDef, FunctionModel,
                           SourceFile, brace_blocks, class_extents,
                           class_fields, class_method_decls,
                           enclosing_block_end, function_definitions,
                           local_declarations, loop_body_spans,
                           normalize_lock_expr, parameter_declarations)
    from .findings import Finding
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from cppmodel import (ConcEvent, FunctionDef, FunctionModel,
                          SourceFile, brace_blocks, class_extents,
                          class_fields, class_method_decls,
                          enclosing_block_end, function_definitions,
                          local_declarations, loop_body_spans,
                          normalize_lock_expr, parameter_declarations)
    from findings import Finding

CONCURRENCY_RULES = ("lock-order", "blocking", "waitnotify")

# The lock/condvar primitive layer itself is exempt: MutexLock's body IS
# the acquire and CondVar::wait IS the wait, so analysing them would
# double-report every use site.
EXEMPT_FILES = ("src/common/mutex.hpp",)

# Method names that block by contract even when the receiver cannot be
# resolved to a known class (the conservative single-TU approximation;
# the libclang engine refines this by receiver type).
BLOCKING_QUEUE_METHODS = frozenset({"pop", "pop_for", "push"})

_WITNESS_DEPTH = 6  # representative paths stay readable


class ConcurrencyModel:
    """Functions keyed by a unique id (qualified name, '#n'-suffixed for
    overloads), plus the cv -> waiter-mutex map the wait/notify rule
    needs. Call resolution targets qualified names, so a call site fans
    out to every overload — the conservative union."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionModel] = {}
        self.by_qual: dict[str, list[str]] = {}

    def add(self, fn: FunctionModel) -> None:
        keys = self.by_qual.setdefault(fn.qual, [])
        for k in keys:
            prev = self.functions[k]
            if prev.rel == fn.rel and prev.line == fn.line:
                return  # same definition re-parsed (headers, per TU)
        key = fn.qual if not keys else f"{fn.qual}#{len(keys) + 1}"
        self.functions[key] = fn
        keys.append(key)

    def waiter_mutexes(self) -> dict[str, set[str]]:
        waiters: dict[str, set[str]] = {}
        for fn in self.functions.values():
            for ev in fn.events:
                if ev.kind == "wait" and ev.mutex:
                    waiters.setdefault(ev.name, set()).add(ev.mutex)
        return waiters


# ---------------------------------------------------------------------------
# Text-engine extraction: SourceFile list -> ConcurrencyModel


_GUARD = re.compile(
    r"\b(?:MutexLock|(?:std\s*::\s*)?"
    r"(?:lock_guard|unique_lock|scoped_lock)(?:\s*<[^;<>]*>)?)"
    r"\s+(\w+)\s*[({]([^;]*?)[)}]\s*;")
_WAIT = re.compile(r"(\w+)\s*(?:\.|->)\s*(wait|wait_until|wait_for)\s*\(")
_NOTIFY = re.compile(r"(\w+)\s*(?:\.|->)\s*notify_(?:one|all)\s*\(")
_JOIN = re.compile(r"(?:\.|->)\s*join\s*\(\s*\)")
_GET = re.compile(r"(\w+)\s*(?:\.|->)\s*get\s*\(\s*\)")
_CALL = re.compile(r"(\w+)\s*\(")
_NON_ACQUIRING_ARGS = frozenset(
    {"std::defer_lock", "std::adopt_lock", "std::try_to_lock"})
_CALL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "new", "delete", "throw", "alignof", "decltype", "static_assert",
    "noexcept", "operator", "assert", "defined", "static_cast",
    "const_cast", "reinterpret_cast", "dynamic_cast", "case", "else",
})


def _split_args(text: str) -> list[str]:
    out, piece, depth = [], [], 0
    for c in text:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(piece).strip())
            piece = []
        else:
            piece.append(c)
    tail = "".join(piece).strip()
    if tail:
        out.append(tail)
    return out


def _match_paren(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _receiver_before(text: str, pos: int) -> tuple[str, str, str]:
    """What precedes the method-name token at `pos`: ('plain', '', '') for
    a free/this call, ('qual', Class, '') for `Class::name(`, or
    ('member', base_identifier, receiver_slice) for `expr.name(` /
    `expr->name(`. The slice is the receiver text, for fallback typing."""
    j = pos - 1
    while j >= 0 and text[j].isspace():
        j -= 1
    if j >= 1 and text[j] == ":" and text[j - 1] == ":":
        m = re.search(r"(\w+)\s*::\s*$", text[:j + 1])
        return ("qual", m.group(1) if m else "", "")
    is_dot = j >= 0 and text[j] == "."
    is_arrow = j >= 1 and text[j - 1] == "-" and text[j] == ">"
    if not (is_dot or is_arrow):
        return ("plain", "", "")
    end = j + 1
    j = j - 1 if is_dot else j - 2
    # Walk the postfix receiver expression leftwards to its base.
    base = ""
    while j >= 0:
        while j >= 0 and text[j].isspace():
            j -= 1
        if j < 0:
            break
        c = text[j]
        if c in ")]":
            open_c = "(" if c == ")" else "["
            depth = 0
            while j >= 0:
                if text[j] == c:
                    depth += 1
                elif text[j] == open_c:
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
        elif c.isalnum() or c == "_":
            k = j
            while k >= 0 and (text[k].isalnum() or text[k] == "_"):
                k -= 1
            base = text[k + 1:j + 1]
            jj = k
            while jj >= 0 and text[jj].isspace():
                jj -= 1
            if jj >= 0 and (text[jj] == "."
                            or (jj >= 1 and text[jj - 1] == "-"
                                and text[jj] == ">")):
                j = jj - 1 if text[jj] == "." else jj - 2
                base = ""
                continue
            j = k
            break
        elif c in "*&":
            j -= 1
        else:
            break
    return ("member", base, text[max(j + 1, 0):end - 1])


class _TreeIndex:
    """Classes, fields, declared and defined methods, and free functions
    across the scanned files — the resolution side of the call-graph
    builder."""

    def __init__(self, files: list[tuple[str, SourceFile]]) -> None:
        self.files = files
        self.functions: list[tuple[str, SourceFile, FunctionDef]] = []
        self.class_names: set[str] = set()
        self.fields: dict[str, dict[str, str]] = {}
        self.methods: dict[str, set[str]] = {}  # cls -> defined methods
        self.declared: dict[str, set[str]] = {}  # cls -> declared-only
        self.method_classes: dict[str, set[str]] = {}  # name -> definers
        self.free_functions: set[str] = set()
        self.returns: dict[str, str] = {}  # 'C::m' -> return-type text
        self.returns_capability: dict[str, str] = {}  # 'C::m' -> member
        for rel, sf in files:
            defs = function_definitions(sf)
            for ce in class_extents(sf):
                self.class_names.add(ce.name)
                self.fields.setdefault(ce.name, {}).update(
                    class_fields(sf, ce, defs))
                self.declared.setdefault(ce.name, set()).update(
                    class_method_decls(sf, ce, defs))
            for fd in defs:
                self.functions.append((rel, sf, fd))
                if fd.cls:
                    self.methods.setdefault(fd.cls, set()).add(fd.name)
                    self.method_classes.setdefault(fd.name, set()).add(fd.cls)
                    self.returns.setdefault(fd.qual, fd.ret)
                    cap = re.search(r"HOLAP_RETURN_CAPABILITY\(([^()]*)\)",
                                    fd.annotations)
                    if cap:
                        self.returns_capability[fd.qual] = cap.group(1).strip()
                else:
                    self.free_functions.add(fd.name)

    def class_of(self, type_text: str) -> str | None:
        """The known class a (normalised) type names, by head token."""
        head = _head_of(type_text)
        if head is None:
            return None
        tail = head.rsplit("::", 1)[-1]
        return tail if tail in self.class_names else None


# --- Receiver chain typing -------------------------------------------------
#
# 'shards_[i]->push_displacing' types as: field shards_ ->
# std::vector<std::unique_ptr<BlockingQueue<T>>>, subscript-unwrap to
# unique_ptr, deref-normalise to BlockingQueue. A chain that dead-ends in
# a std:: type yields NO callees (so 'items_.size()' never unifies with
# BlockingQueue::size); a chain that cannot be typed at all falls back to
# the union of known definitions (the virtual/overload fallback).

_WRAP_SUBSCRIPT = frozenset({"std::vector", "std::deque", "std::array",
                             "std::span", "vector", "deque", "array"})
_WRAP_DEREF = frozenset({"std::unique_ptr", "std::shared_ptr",
                         "std::optional", "unique_ptr", "shared_ptr",
                         "optional"})
_DEAD = object()  # typed into a type we do not model (std::, primitive)


def _head_of(type_text: str) -> str | None:
    t = re.sub(r"\b(?:const|mutable|static|constexpr|typename)\b", " ",
               type_text)
    t = t.strip().lstrip("*&").strip()
    m = re.match(r"[\w:]+", t)
    return m.group(0) if m else None


def _template_inner(type_text: str) -> str | None:
    lt = type_text.find("<")
    if lt == -1:
        return None
    depth = 0
    for i in range(lt, len(type_text)):
        if type_text[i] == "<":
            depth += 1
        elif type_text[i] == ">":
            depth -= 1
            if depth == 0:
                return _split_args(type_text[lt + 1:i])[0]
    return None


def _deref_normalize(t: str) -> str:
    """Strip pointers and smart-pointer/optional wrappers: the type whose
    members a '->' or '.' access reaches."""
    for _ in range(4):
        head = _head_of(t)
        if head in _WRAP_DEREF:
            inner = _template_inner(t)
            if inner is None:
                return t
            t = inner
        elif t.rstrip().endswith(("*", "&")):
            t = t.rstrip()[:-1]
        else:
            return t
    return t


class _Scope:
    """Name -> type tables for one function body."""

    def __init__(self, idx: _TreeIndex, cls: str | None,
                 locals_: dict[str, str], params: dict[str, str]) -> None:
        self.idx = idx
        self.cls = cls
        self.locals = locals_
        self.params = params
        self.fields = idx.fields.get(cls, {}) if cls else {}

    def type_of_name(self, name: str) -> str | None:
        for table in (self.locals, self.params, self.fields):
            if name in table:
                return table[name]
        return None


def _split_chain(expr: str) -> list[tuple[str, str]] | None:
    """'(name, suffixes)' per component of a postfix chain, '.'/'->'
    separated at depth 0. Suffixes is the concatenation of '[', '('
    markers in access order. None if the shape is not a simple chain."""
    expr = expr.strip()
    while expr.startswith("(") and _match_paren(expr, 0) == len(expr) - 1:
        expr = expr[1:-1].strip()
    stars = 0
    while expr.startswith("*"):
        stars += 1
        expr = expr[1:].strip()
    comps: list[tuple[str, str]] = []
    i, n = 0, len(expr)
    while i < n:
        m = re.match(r"\s*(\w+)", expr[i:])
        if m is None:
            return None
        name = m.group(1)
        i += m.end()
        suffixes = ""
        while i < n:
            while i < n and expr[i].isspace():
                i += 1
            if i < n and expr[i] == "[":
                depth = 0
                while i < n:
                    if expr[i] == "[":
                        depth += 1
                    elif expr[i] == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
                suffixes += "["
            elif i < n and expr[i] == "(":
                close = _match_paren(expr, i)
                if close == -1:
                    return None
                i = close + 1
                suffixes += "("
            else:
                break
        comps.append((name, suffixes))
        while i < n and expr[i].isspace():
            i += 1
        if i >= n:
            break
        if expr.startswith("->", i):
            i += 2
        elif expr[i] == ".":
            i += 1
        else:
            return None
    if not comps:
        return None
    comps[0] = (comps[0][0], comps[0][1] + "*" * stars)
    return comps


def _type_expr(expr: str, scope: _Scope, depth: int = 0):
    """Type of a postfix expression: a type string, _DEAD (typed into a
    type we do not model), or None (cannot be typed at all)."""
    if depth > 3:
        return None
    comps = _split_chain(expr.strip().rstrip(";,"))
    if comps is None:
        return None
    t: str | None = None
    for pos, (name, suffixes) in enumerate(comps):
        if pos == 0:
            if name == "this":
                t = scope.cls or ""
                if not t:
                    return None
            else:
                t = scope.type_of_name(name)
                if t is None and "(" in suffixes and scope.cls \
                        and name in scope.idx.methods.get(scope.cls, ()):
                    t = scope.idx.returns.get(f"{scope.cls}::{name}", "")
                    suffixes = suffixes.replace("(", "", 1)
                if t is None:
                    return None
        else:
            t = _deref_normalize(t)
            cls = scope.idx.class_of(t)
            if cls is None:
                return _DEAD
            if "(" in suffixes:
                if name not in scope.idx.methods.get(cls, ()):
                    return _DEAD
                t = scope.idx.returns.get(f"{cls}::{name}", "")
                suffixes = suffixes.replace("(", "", 1)
            elif name in scope.idx.fields.get(cls, {}):
                t = scope.idx.fields[cls][name]
            else:
                return _DEAD
        if t is not None and t.startswith("auto:"):
            t = _type_expr(t[len("auto:"):], scope, depth + 1)
            if t is None or t is _DEAD:
                return t
        if not t:
            return _DEAD
        for s in suffixes:
            if s == "[":
                head = _head_of(t)
                if head in _WRAP_SUBSCRIPT:
                    inner = _template_inner(t)
                    t = inner if inner else _DEAD
                elif t.rstrip().endswith(("*", "&")):
                    t = t.rstrip()[:-1]
                else:
                    return _DEAD
            elif s == "*":
                t = _deref_normalize(t)
            elif s == "(":
                return _DEAD  # functor/extra call: not modelled
            if t is _DEAD or not t:
                return _DEAD
    return t


def _resolve_member_call(recv_slice: str, method: str,
                         scope: _Scope) -> list[str] | None:
    """Candidate callee quals for 'recv.method(...)'. None means the
    receiver was typed into a type we do not model (no callees, no
    fallback); an empty list with an untypable receiver triggers the
    union fallback at the call site."""
    idx = scope.idx
    t = _type_expr(recv_slice, scope)
    if t is _DEAD:
        return None
    if t is None:
        # Untypable receiver: the conservative union-of-definitions
        # fallback (virtual dispatch, overloads, fixture-local shapes).
        return sorted(f"{c}::{method}"
                      for c in idx.method_classes.get(method, ()))
    t = _deref_normalize(t)
    cls = idx.class_of(t)
    if cls is None:
        return None
    if method in idx.methods.get(cls, ()):
        return [f"{cls}::{method}"]
    if method in idx.declared.get(cls, ()):
        # Declared here (e.g. pure virtual), defined in subclasses: the
        # union of known definitions is the dispatch set.
        return sorted(f"{c}::{method}"
                      for c in idx.method_classes.get(method, ()))
    return None


def build_text_model(files: list[tuple[str, SourceFile]]) -> ConcurrencyModel:
    """The text engine's extractor: best-effort single-TU approximation of
    what the libclang engine reads from the AST."""
    scanned = [(rel, sf) for rel, sf in files if rel not in EXEMPT_FILES]
    idx = _TreeIndex(scanned)
    model = ConcurrencyModel()
    for rel, sf, fd in idx.functions:
        model.add(_extract_function(rel, sf, fd, idx))
    return model


def _extract_function(rel: str, sf: SourceFile, fd: FunctionDef,
                      idx: _TreeIndex) -> FunctionModel:
    text = sf.stripped
    body_lo, body_hi = fd.start, fd.end
    body = text[body_lo:body_hi + 1]
    scope = _Scope(idx, fd.cls, local_declarations(body),
                   parameter_declarations(fd.params))
    blocks = brace_blocks(text, body_lo, body_hi)
    loops = loop_body_spans(text, body_lo, body_hi)
    events: list[ConcEvent] = []
    claimed: set[int] = set()  # method-name offsets already interpreted
    guard_locks: dict[str, str] = {}  # guard var -> lock id

    def lock_id(expr: str) -> str:
        e = re.sub(r"\s+", "", expr).replace("this->", "")
        if e in guard_locks:
            return guard_locks[e]
        # Getter canonicalisation: 'stats_.mutex()' resolves through the
        # HOLAP_RETURN_CAPABILITY annotation to 'GuardedIngestStats::mutex_'.
        m = re.fullmatch(r"([\w.\[\]>()-]+?)(?:\.|->)(\w+)\(\)", e)
        if m:
            t = _type_expr(m.group(1), scope)
            cls = idx.class_of(_deref_normalize(t)) \
                if isinstance(t, str) else None
            if cls:
                cap = idx.returns_capability.get(f"{cls}::{m.group(2)}")
                if cap:
                    return normalize_lock_expr(cap, cls)
        return normalize_lock_expr(e, fd.cls)

    for m in _GUARD.finditer(body):
        off = body_lo + m.start(1)
        args = _split_args(m.group(2))
        acquired = [a for a in args
                    if re.sub(r"\s+", "", a) not in _NON_ACQUIRING_ARGS]
        if len(acquired) != len(args):
            continue  # defer/adopt: ownership unclear, stay conservative
        release_at = enclosing_block_end(blocks, off)
        for arg in acquired:
            lid = lock_id(arg)
            guard_locks[m.group(1)] = lid
            events.append(ConcEvent("acquire", off, sf.line_of(off),
                                    name=lid))
            if release_at != -1:
                events.append(ConcEvent("release", release_at,
                                        sf.line_of(release_at), name=lid))

    def cv_receiver_kind(recv: str) -> str:
        t = _type_expr(recv, scope)
        if t is None:
            return "unknown"
        if t is _DEAD:
            return "other"
        if "CondVar" in t or "condition_variable" in t:
            return "condvar"
        if "future" in t:
            return "future"
        return "other"

    for m in _WAIT.finditer(body):
        close = _match_paren(body, m.end() - 1)
        if close == -1:
            continue
        args = _split_args(body[m.end():close])
        kind = cv_receiver_kind(m.group(1))
        off = body_lo + m.start()
        claimed.add(body_lo + m.start(2))
        if kind == "future":
            events.append(ConcEvent("block", off, sf.line_of(off),
                                    detail="std::future::wait"))
            continue
        if kind == "other" or not args:
            continue
        has_predicate = (len(args) >= 2 if m.group(2) == "wait"
                         else len(args) >= 3)
        in_loop = has_predicate or any(
            lo <= off <= hi for lo, hi in loops)
        events.append(ConcEvent(
            "wait", off, sf.line_of(off),
            name=normalize_lock_expr(m.group(1), fd.cls),
            mutex=lock_id(args[0]), in_loop=in_loop))

    for m in _NOTIFY.finditer(body):
        off = body_lo + m.start()
        claimed.add(body_lo + body.index("notify", m.start(), m.end()))
        events.append(ConcEvent(
            "notify", off, sf.line_of(off),
            name=normalize_lock_expr(m.group(1), fd.cls)))

    for m in _JOIN.finditer(body):
        off = body_lo + m.start()
        claimed.add(body_lo + body.index("join", m.start(), m.end()))
        events.append(ConcEvent("block", off, sf.line_of(off),
                                detail="std::thread::join"))

    for m in _GET.finditer(body):
        recv = m.group(1)
        t = _type_expr(recv, scope)
        looks_future = (isinstance(t, str) and "future" in t) or (
            t is None and ("fut" in recv.lower()))
        if not looks_future:
            continue
        off = body_lo + m.start()
        claimed.add(body_lo + body.index("get", m.end(1), m.end()))
        events.append(ConcEvent("block", off, sf.line_of(off),
                                detail="std::future::get"))

    for m in _CALL.finditer(body):
        name = m.group(1)
        if body_lo + m.start(1) in claimed or name in _CALL_KEYWORDS:
            continue
        off = body_lo + m.start()
        kind, base, recv_slice = _receiver_before(body, m.start())
        callees: list[str] = []
        if kind == "plain":
            if fd.cls and name in idx.methods.get(fd.cls, ()):
                callees = [f"{fd.cls}::{name}"]
            elif name in idx.free_functions:
                callees = [name]
        elif kind == "qual":
            if base in idx.class_names and name in idx.methods.get(base, ()):
                callees = [f"{base}::{name}"]
        else:  # member call
            resolved = _resolve_member_call(recv_slice, name, scope)
            if resolved is None:
                continue  # receiver typed into std/unknown: not our code
            callees = resolved
            if not callees and name in BLOCKING_QUEUE_METHODS:
                # Untypable receiver with a queue-shaped method name:
                # conservative single-TU approximation for fixture code
                # that declares but does not define its queue type.
                events.append(ConcEvent(
                    "block", off, sf.line_of(off),
                    detail=f"BlockingQueue::{name} (unresolved "
                           "receiver, assumed blocking)"))
                continue
        if callees:
            events.append(ConcEvent("call", off, sf.line_of(off),
                                    name=name, callees=tuple(callees)))

    entry = tuple(sorted({
        lock_id(a)
        for m in re.finditer(r"HOLAP_REQUIRES\(([^()]*)\)", fd.annotations)
        for a in _split_args(m.group(1))}))
    events.sort(key=lambda e: (e.offset, 0 if e.kind == "release" else 1))
    return FunctionModel(qual=fd.qual, cls=fd.cls, rel=rel, line=fd.line,
                         entry_held=entry, events=events)


# ---------------------------------------------------------------------------
# Summaries: what a call may transitively acquire / block on.


def compute_summaries(model: ConcurrencyModel) -> tuple[
        dict[str, dict[str, tuple[str, ...]]],
        dict[str, dict[str, tuple[str, ...]]]]:
    """(acquires, blocks): per function, lock-or-primitive -> one witness
    path (a tuple of human-readable steps). Monotone — each key is set at
    most once — so recursion and cycles reach a fixpoint."""
    acquires: dict[str, dict[str, tuple[str, ...]]] = {
        q: {} for q in model.functions}
    blocks: dict[str, dict[str, tuple[str, ...]]] = {
        q: {} for q in model.functions}
    order = sorted(model.functions)
    changed = True
    while changed:
        changed = False
        for key in order:
            fn = model.functions[key]
            own_acq, own_blk = acquires[key], blocks[key]
            for ev in fn.events:
                here = f"{fn.qual} ({fn.rel}:{ev.line})"
                if ev.kind == "acquire" and ev.name not in own_acq:
                    own_acq[ev.name] = (f"acquires {ev.name} in {here}",)
                    changed = True
                elif ev.kind == "wait":
                    key = f"CondVar::wait on {ev.name}"
                    if key not in own_blk:
                        own_blk[key] = (f"waits on {ev.name} in {here}",)
                        changed = True
                elif ev.kind == "block" and ev.detail not in own_blk:
                    own_blk[ev.detail] = (f"{ev.detail} in {here}",)
                    changed = True
                elif ev.kind == "call":
                    step = f"calls {ev.name} in {here}"
                    for callee in ev.callees:
                        for ckey in model.by_qual.get(callee, ()):
                            if ckey == key:
                                continue
                            for lock, path in acquires[ckey].items():
                                if lock not in own_acq \
                                        and len(path) < _WITNESS_DEPTH:
                                    own_acq[lock] = (step,) + path
                                    changed = True
                            for bk, path in blocks[ckey].items():
                                if bk not in own_blk \
                                        and len(path) < _WITNESS_DEPTH:
                                    own_blk[bk] = (step,) + path
                                    changed = True
    return acquires, blocks


# ---------------------------------------------------------------------------
# The rules.


def _fmt(path: Iterable[str]) -> str:
    return " -> ".join(path)


def analyze_model(model: ConcurrencyModel, rules: Iterable[str],
                  line_text: Callable[[str, int], str]) -> list[Finding]:
    """Run the selected concurrency rules over an extracted model."""
    wanted = set(rules)
    acquires, blocks = compute_summaries(model)
    waiters = model.waiter_mutexes()
    findings: list[Finding] = []
    # edge (a, b): a held while b acquired somewhere. One witness each.
    edges: dict[tuple[str, str], tuple[str, tuple[str, ...], int]] = {}
    notifies: list[tuple[FunctionModel, ConcEvent, set[str]]] = []

    def note_edge(a: str, b: str, rel: str, line: int,
                  path: tuple[str, ...]) -> None:
        edges.setdefault((a, b), (rel, path, line))

    for fkey in sorted(model.functions):
        fn = model.functions[fkey]
        held: dict[str, tuple[str, ...]] = {
            lock: (f"enters {fn.qual} with {lock} held "
                   f"(HOLAP_REQUIRES, {fn.rel}:{fn.line})",)
            for lock in fn.entry_held}
        touched: set[str] = set(fn.entry_held)
        for ev in fn.events:
            here = f"{fn.qual} ({fn.rel}:{ev.line})"
            if ev.kind == "acquire":
                touched.add(ev.name)
                if ev.name in held:
                    if "lock-order" in wanted:
                        findings.append(Finding(
                            "lock-order", fn.rel, ev.line,
                            f"recursive acquisition of {ev.name} "
                            f"[{_fmt(held[ev.name])} -> re-acquired in "
                            f"{here}] — common::Mutex is non-reentrant, "
                            "this self-deadlocks",
                            text=line_text(fn.rel, ev.line)))
                    continue
                for h, hpath in held.items():
                    note_edge(h, ev.name, fn.rel, ev.line,
                              hpath + (f"acquires {ev.name} in {here}",))
                held[ev.name] = (f"acquires {ev.name} in {here}",)
            elif ev.kind == "release":
                held.pop(ev.name, None)
            elif ev.kind == "wait":
                touched.add(ev.mutex)
                others = [h for h in held if h != ev.mutex]
                if others and "blocking" in wanted:
                    findings.append(Finding(
                        "blocking", fn.rel, ev.line,
                        f"CondVar::wait on {ev.name} releases only "
                        f"{ev.mutex}, but {', '.join(sorted(others))} "
                        f"stay(s) held across the wait in {here} — every "
                        "contender on those locks stalls until a signal",
                        text=line_text(fn.rel, ev.line)))
                if not ev.in_loop and "waitnotify" in wanted:
                    findings.append(Finding(
                        "waitnotify", fn.rel, ev.line,
                        f"CondVar::wait on {ev.name} outside a predicate "
                        f"loop in {here} — spurious wake-ups and "
                        "missed-signal races slip through; re-check the "
                        "condition in a while loop",
                        text=line_text(fn.rel, ev.line)))
            elif ev.kind == "block":
                if held and "blocking" in wanted:
                    locks = ", ".join(sorted(held))
                    findings.append(Finding(
                        "blocking", fn.rel, ev.line,
                        f"{ev.detail} while holding {locks} in {here} — "
                        "the lock is pinned for an unbounded sleep",
                        text=line_text(fn.rel, ev.line)))
            elif ev.kind == "notify":
                notifies.append((fn, ev, touched | set(held)))
            elif ev.kind == "call":
                step = f"calls {ev.name} in {here}"
                callee_acq: dict[str, tuple[str, ...]] = {}
                callee_blk: dict[str, tuple[str, ...]] = {}
                for callee in ev.callees:
                    for ckey in model.by_qual.get(callee, ()):
                        for lock, path in acquires.get(ckey, {}).items():
                            callee_acq.setdefault(lock, (step,) + path)
                        for bk, path in blocks.get(ckey, {}).items():
                            callee_blk.setdefault(bk, (step,) + path)
                for lock, path in sorted(callee_acq.items()):
                    touched.add(lock)
                    if lock in held:
                        if "lock-order" in wanted:
                            findings.append(Finding(
                                "lock-order", fn.rel, ev.line,
                                f"recursive acquisition of {lock} "
                                f"[{_fmt(held[lock] + path)}] — "
                                "common::Mutex is non-reentrant, this "
                                "self-deadlocks",
                                text=line_text(fn.rel, ev.line)))
                        continue
                    for h, hpath in held.items():
                        note_edge(h, lock, fn.rel, ev.line, hpath + path)
                if held and callee_blk and "blocking" in wanted:
                    key = sorted(callee_blk)[0]
                    findings.append(Finding(
                        "blocking", fn.rel, ev.line,
                        f"call may block [{_fmt(callee_blk[key])}] while "
                        f"holding {', '.join(sorted(held))} — release "
                        "before blocking or use a non-blocking variant",
                        text=line_text(fn.rel, ev.line)))

    if "lock-order" in wanted:
        findings.extend(_lock_order_cycles(edges, line_text))
    if "waitnotify" in wanted:
        for fn, ev, touched in notifies:
            mutexes = waiters.get(ev.name)
            if not mutexes:
                continue  # no observed waiter: nothing to agree with
            if touched & mutexes:
                continue
            findings.append(Finding(
                "waitnotify", fn.rel, ev.line,
                f"notify on {ev.name} in {fn.qual} ({fn.rel}:{ev.line}) "
                f"without ever holding the waiter's mutex "
                f"({', '.join(sorted(mutexes))}) — the signalled state "
                "mutation is unserialised and the wake-up can be lost",
                text=line_text(fn.rel, ev.line)))
    return findings


def _lock_order_cycles(
        edges: dict[tuple[str, str], tuple[str, tuple[str, ...], int]],
        line_text: Callable[[str, int], str]) -> list[Finding]:
    findings: list[Finding] = []
    reported_nodes: set[str] = set()
    for (a, b) in sorted(edges):
        if a >= b or (b, a) not in edges:
            continue
        rel_ab, path_ab, line_ab = edges[(a, b)]
        rel_ba, path_ba, _ = edges[(b, a)]
        findings.append(Finding(
            "lock-order", rel_ab, line_ab,
            f"lock-order cycle between {a} and {b}: one path takes "
            f"{a} then {b} [{_fmt(path_ab)}], another takes {b} then "
            f"{a} [{_fmt(path_ba)} ({rel_ba})] — two threads "
            "interleaving these paths deadlock",
            text=line_text(rel_ab, line_ab)))
        reported_nodes.update((a, b))
    # Longer cycles (A->B->C->A without any pairwise inversion): report
    # one finding per strongly-connected component not already covered.
    adj: dict[str, set[str]] = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    for comp in _sccs(adj):
        if len(comp) < 2 or reported_nodes & set(comp):
            continue
        cycle = _find_cycle(adj, comp)
        steps = []
        for x, y in zip(cycle, cycle[1:]):
            _, path, _ = edges[(x, y)]
            steps.append(_fmt(path))
        rel, _, line = edges[(cycle[0], cycle[1])]
        findings.append(Finding(
            "lock-order", rel, line,
            f"lock-order cycle through {' -> '.join(cycle)}: "
            f"[{' | '.join(steps)}] — a ring of threads interleaving "
            "these paths deadlocks",
            text=line_text(rel, line)))
    return findings


def _sccs(adj: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly-connected components, iterative, sorted."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comps: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                comps.append(sorted(comp))

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)
    return comps


def _find_cycle(adj: dict[str, set[str]], comp: list[str]) -> list[str]:
    """A concrete cycle through a non-trivial SCC, as [a, b, ..., a]."""
    comp_set = set(comp)
    start = comp[0]
    path = [start]
    seen = {start}
    v = start
    while True:
        nxt = sorted(w for w in adj.get(v, ()) if w in comp_set)[0]
        if nxt == start:
            return path + [start]
        if nxt in seen:
            i = path.index(nxt)
            return path[i:] + [nxt]
        path.append(nxt)
        seen.add(nxt)
        v = nxt
