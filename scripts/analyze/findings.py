"""Finding and baseline types shared by every rule and engine."""

from __future__ import annotations

import dataclasses
import json
import pathlib


@dataclasses.dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int  # 1-based
    message: str
    text: str = ""  # the (stripped) source line, for baseline matching
    fix: str = ""  # suggested fix, shown under --fix-dry-run

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings: list, rule_ids: list, engine: str = "text") -> dict:
    """SARIF 2.1.0 log for a finished run — the format code scanners
    upload to code-review UIs. Relative artifact URIs (repo-root based),
    one result per finding, the suggested fix under properties."""
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line},
                },
            }],
        }
        if f.text:
            result["locations"][0]["physicalLocation"]["region"][
                "snippet"] = {"text": f.text}
        if f.fix:
            result["properties"] = {"fix": f.fix}
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "holap-analyze",
                "rules": [{"id": rid} for rid in rule_ids],
            }},
            "properties": {"engine": engine},
            "results": results,
        }],
    }


class Baseline:
    """Accepted findings that do not fail the build.

    Entries match on (rule, path, substring-of-line) rather than line
    numbers, so unrelated edits to a file do not invalidate the baseline.
    An entry that matches nothing is itself an error — stale suppressions
    must be deleted, not accumulated.
    """

    def __init__(self, entries: list[dict]) -> None:
        self.entries = entries
        self.hits = [0] * len(entries)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data["suppressions"]
        for e in entries:
            if not {"rule", "path", "contains", "reason"} <= set(e):
                raise ValueError(
                    f"baseline entry missing keys: {json.dumps(e)}")
        return cls(entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def restrict(self, rules: set[str]) -> None:
        """Keep only entries for rules that ran — an entry for a rule
        outside this run is neither applied nor reported stale."""
        self.entries = [e for e in self.entries if e["rule"] in rules]
        self.hits = [0] * len(self.entries)

    def suppresses(self, finding: Finding) -> bool:
        for i, e in enumerate(self.entries):
            if (e["rule"] == finding.rule and e["path"] == finding.path
                    and e["contains"] in finding.text):
                self.hits[i] += 1
                return True
        return False

    def stale_entries(self) -> list[dict]:
        return [e for e, h in zip(self.entries, self.hits) if h == 0]
