"""Repo-specific static analysis for the hybrid OLAP codebase.

Two rule families, one CLI (``analyze.py``):

* ``lint`` rules — the original textual hygiene checks (determinism
  include-closure, raw new/delete, include hygiene), ported verbatim from
  the old ``scripts/lint.py`` (now a forwarding shim).

* ``ast`` rules — invariants of this codebase's design, checked
  structurally: clock-ledger pairing in the Figure-10 scheduler, enum
  switch exhaustiveness, bounded-queue construction on the serving path,
  strong-unit escapes in the model/scheduling planes, and the TraceSpan
  lifecycle.

The ``ast`` rules run on one of two engines: a precise libclang engine
(``libclang_engine.py``, used when the ``clang`` Python bindings are
importable — CI installs them) and a self-contained text/token engine
(``rules_ast.py``) that needs nothing beyond the standard library. Both
report the same rule ids so baselines and CI wiring are engine-agnostic.
"""

__all__ = ["cppmodel", "findings", "rules_ast", "rules_lint"]
