"""AST engine for the invariant rules, on the clang Python bindings.

Preferred over the text engine when ``import clang.cindex`` succeeds and
a ``compile_commands.json`` is available (CI installs the bindings; the
default dev container does not ship them). Emits the same rule ids and
equivalent messages as rules_ast.py so baselines and golden files apply
to either engine.

Everything here is defensive: any failure — missing bindings, missing
compilation database, a TU that fails to parse — raises
EngineUnavailable and the caller falls back to the text engine rather
than silently passing.
"""

from __future__ import annotations

import json
import pathlib
import sys

try:
    from .findings import Finding
    from . import cfg as sir
    from . import concurrency
    from . import rules_ast
    from . import rules_dataflow
    from .cppmodel import ConcEvent, FunctionModel, _match_paren
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from findings import Finding
    from cppmodel import ConcEvent, FunctionModel, _match_paren
    import cfg as sir
    import concurrency
    import rules_ast
    import rules_dataflow

import re


class EngineUnavailable(RuntimeError):
    pass


def _import_cindex():
    try:
        from clang import cindex  # noqa: PLC0415
        return cindex
    except ImportError as e:
        raise EngineUnavailable(f"clang bindings not importable: {e}") from e


def _compile_args(build_dir: pathlib.Path) -> dict[str, list[str]]:
    db = build_dir / "compile_commands.json"
    if not db.exists():
        raise EngineUnavailable(f"no compilation database at {db}")
    args_by_file: dict[str, list[str]] = {}
    for entry in json.loads(db.read_text(encoding="utf-8")):
        cmd = entry.get("command", "").split() or entry.get("arguments", [])
        # Drop the compiler, the -o pair and the input file; keep flags.
        args = []
        skip = False
        for tok in cmd[1:]:
            if skip:
                skip = False
                continue
            if tok in ("-o", "-c"):
                skip = tok == "-o"
                continue
            if tok.endswith((".cpp", ".cc", ".o")):
                continue
            args.append(tok)
        args_by_file[entry["file"]] = args
    return args_by_file


def _rel(root: pathlib.Path, location) -> str | None:
    if location.file is None:
        return None
    try:
        return pathlib.Path(location.file.name).resolve() \
            .relative_to(root.resolve()).as_posix()
    except ValueError:
        return None


_GUARD_TYPES = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock")
_WAIT_NAMES = ("wait", "wait_for", "wait_until")
_REQUIRES_TOKENS = re.compile(r"HOLAP_REQUIRES\s*\(\s*([^()]*?)\s*\)")


def _extract_concurrency_tu(cindex, root: pathlib.Path, tu,
                            model) -> None:
    """Walk one TU and add a FunctionModel per function definition under
    src/, mirroring concurrency.build_text_model's event vocabulary. The
    AST resolves receivers and callees precisely (cursor.referenced), so
    the single-TU approximations of the text engine disappear; every
    extraction is per-function best-effort and never fails the engine."""
    ck = cindex.CursorKind
    fn_kinds = {ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
                ck.FUNCTION_DECL}
    cls_kinds = {ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE}

    def rel_of(cursor) -> str | None:
        return _rel(root, cursor.location)

    def member_qual(ref) -> str:
        owner = ref.semantic_parent
        if owner is not None and owner.kind in cls_kinds and owner.spelling:
            return f"{owner.spelling}::{ref.spelling}"
        return ref.spelling

    def lock_name(arg, cls: str | None) -> str:
        """The capability an expression names: the referenced member's
        qualified name when the AST resolves one, else normalised
        tokens (keeps engine-internal consistency for odd shapes)."""
        stack = [arg]
        while stack:
            c = stack.pop(0)
            if c.kind == ck.MEMBER_REF_EXPR and c.referenced is not None:
                return member_qual(c.referenced)
            if c.kind == ck.DECL_REF_EXPR and c.referenced is not None \
                    and c.referenced.kind == ck.VAR_DECL:
                return c.referenced.spelling
            stack.extend(c.get_children())
        toks = "".join(t.spelling for t in arg.get_tokens())
        return concurrency.normalize_lock_expr(toks, cls)

    def entry_held(cursor, cls: str | None) -> tuple[str, ...]:
        # HOLAP_REQUIRES expands to nothing under the gcc the tree builds
        # with, so read it lexically from the declaration tokens before
        # the body.
        body_start = None
        for c in cursor.get_children():
            if c.kind == ck.COMPOUND_STMT:
                body_start = c.extent.start.offset
        head = "".join(
            t.spelling + " " for t in cursor.get_tokens()
            if body_start is None or t.extent.start.offset < body_start)
        held = set()
        for m in _REQUIRES_TOKENS.finditer(head):
            for part in m.group(1).split(","):
                if part.strip():
                    held.add(concurrency.normalize_lock_expr(
                        part.strip(), cls))
        return tuple(sorted(held))

    def extract_function(cursor, cls: str | None, qual: str,
                         rel: str) -> FunctionModel:
        events: list[ConcEvent] = []

        def walk(node, loop_depth: int, block_end: int) -> None:
            for child in node.get_children():
                kind = child.kind
                off = child.extent.start.offset
                line = child.location.line
                in_loop = loop_depth > 0
                if kind == ck.COMPOUND_STMT:
                    walk(child, loop_depth, child.extent.end.offset)
                    continue
                if kind in (ck.WHILE_STMT, ck.FOR_STMT, ck.DO_STMT,
                            ck.CXX_FOR_RANGE_STMT):
                    walk(child, loop_depth + 1, block_end)
                    continue
                if kind == ck.VAR_DECL and any(
                        g in (child.type.spelling or "")
                        for g in _GUARD_TYPES):
                    init = [c for c in child.get_children()
                            if c.kind not in (ck.TYPE_REF,
                                              ck.NAMESPACE_REF,
                                              ck.TEMPLATE_REF)]
                    args = []
                    if init:
                        args = [c for c in init[-1].get_children()
                                if c.kind != ck.TYPE_REF]
                    toks = " ".join(
                        t.spelling for t in child.get_tokens())
                    if not any(d in toks for d in
                               ("defer_lock", "adopt_lock",
                                "try_to_lock")):
                        for arg in args[:1] or args:
                            lid = lock_name(arg, cls)
                            events.append(ConcEvent(
                                "acquire", off, line, name=lid))
                            events.append(ConcEvent(
                                "release", block_end, line, name=lid))
                    walk(child, loop_depth, block_end)
                    continue
                if kind == ck.CALL_EXPR and child.referenced is not None:
                    callee = child.referenced
                    cname = callee.spelling
                    crel = rel_of(callee)
                    recv_type = ""
                    kids = list(child.get_children())
                    if kids and kids[0].type is not None:
                        recv_type = kids[0].type.spelling or ""
                    if cname in _WAIT_NAMES and (
                            "CondVar" in recv_type
                            or "condition_variable" in recv_type):
                        args = list(child.get_arguments())
                        mutex = lock_name(args[0], cls) if args else ""
                        has_pred = (len(args) >= 2 if cname == "wait"
                                    else len(args) >= 3)
                        events.append(ConcEvent(
                            "wait", off, line,
                            name=lock_name(kids[0], cls), mutex=mutex,
                            in_loop=in_loop or has_pred))
                    elif cname in ("notify_one", "notify_all") and kids:
                        events.append(ConcEvent(
                            "notify", off, line,
                            name=lock_name(kids[0], cls)))
                    elif cname == "join" and "thread" in recv_type:
                        events.append(ConcEvent(
                            "block", off, line,
                            detail="std::thread::join"))
                    elif cname in _WAIT_NAMES + ("get",) \
                            and "future" in recv_type:
                        events.append(ConcEvent(
                            "block", off, line,
                            detail="std::future::get"))
                    elif crel is not None and crel.startswith("src/") \
                            and crel not in concurrency.EXEMPT_FILES:
                        events.append(ConcEvent(
                            "call", off, line, name=cname,
                            callees=(member_qual(callee),)))
                    walk(child, loop_depth, block_end)
                    continue
                walk(child, loop_depth, block_end)

        body_end = cursor.extent.end.offset
        walk(cursor, 0, body_end)
        events.sort(key=lambda e: (e.offset,
                                   0 if e.kind == "release" else 1))
        return FunctionModel(qual=qual, cls=cls, rel=rel,
                             line=cursor.location.line,
                             entry_held=entry_held(cursor, cls),
                             events=events)

    def scan(cursor) -> None:
        for child in cursor.get_children():
            if child.kind in fn_kinds and child.is_definition():
                rel = rel_of(child)
                if rel is None or not rel.startswith("src/") \
                        or rel in concurrency.EXEMPT_FILES:
                    continue
                parent = child.semantic_parent
                cls = parent.spelling if parent is not None \
                    and parent.kind in cls_kinds else None
                qual = f"{cls}::{child.spelling}" if cls \
                    else child.spelling
                try:
                    model.add(extract_function(child, cls, qual, rel))
                except Exception:
                    continue  # one odd function must not sink the pass
            scan(child)

    scan(tu.cursor)


def _build_sir(ck, cursor, src_text: str) -> "sir.Seq":
    """SIR for a function-body compound cursor. Statement text is the
    original source extent (not token-joined), so the shared dataflow
    regexes see exactly what the text engine sees — operator adjacency
    like `!placement.rejected` included."""
    _KIND_WORDS = ("return", "throw", "break", "continue")

    def slice_of(c) -> str:
        return src_text[c.extent.start.offset:c.extent.end.offset]

    def leaf(c) -> "sir.Stmt":
        text = slice_of(c).strip().rstrip(";").strip()
        word = re.match(r"\w+", text)
        kind = word.group(0) if word and word.group(0) in _KIND_WORDS \
            else "expr"
        return sir.Stmt(text=text, offset=c.extent.start.offset,
                        line=c.location.line, kind=kind)

    def cond_from(cursors) -> "sir.Stmt":
        first = cursors[0]
        text = " ".join(slice_of(c).strip().rstrip(";").strip()
                        for c in cursors)
        return sir.Stmt(text=text, offset=first.extent.start.offset,
                        line=first.location.line, kind="cond")

    def header_cond(c) -> "sir.Stmt":
        """for/range-for header: the text inside the parens."""
        start = c.extent.start.offset
        try:
            open_pos = src_text.index("(", start, c.extent.end.offset)
            close = _match_paren(src_text, open_pos)
            text = src_text[open_pos + 1:close].strip()
        except (ValueError, IndexError):
            text = ""
        return sir.Stmt(text=text, offset=start, line=c.location.line,
                        kind="cond")

    def as_seq(node) -> "sir.Seq":
        if isinstance(node, sir.Seq):
            return node
        return sir.Seq([node] if node is not None else [])

    def conv(c):
        kind = c.kind
        if kind == ck.COMPOUND_STMT:
            out = []
            for child in c.get_children():
                node = conv(child)
                if node is not None:
                    out.append(node)
            return sir.Seq(out)
        if kind == ck.IF_STMT:
            kids = list(c.get_children())
            if len(kids) < 2:
                return leaf(c)
            # [cond..., then] or [cond..., then, else]; if-init rare
            # enough that three children mean an else here.
            orelse = as_seq(conv(kids[-1])) if len(kids) >= 3 else None
            then = as_seq(conv(kids[-2] if orelse is not None
                               else kids[-1]))
            cond_kids = kids[:-2] if orelse is not None else kids[:-1]
            return sir.If(cond_from(cond_kids), then, orelse)
        if kind == ck.WHILE_STMT:
            kids = list(c.get_children())
            if len(kids) < 2:
                return leaf(c)
            return sir.Loop(cond_from(kids[:-1]), as_seq(conv(kids[-1])),
                            "while")
        if kind == ck.DO_STMT:
            kids = list(c.get_children())
            if len(kids) < 2:
                return leaf(c)
            return sir.Loop(cond_from(kids[1:]), as_seq(conv(kids[0])),
                            "dowhile")
        if kind == ck.FOR_STMT:
            kids = list(c.get_children())
            if not kids:
                return leaf(c)
            return sir.Loop(header_cond(c), as_seq(conv(kids[-1])),
                            "for")
        if kind == ck.CXX_FOR_RANGE_STMT:
            kids = list(c.get_children())
            if not kids:
                return leaf(c)
            return sir.Loop(header_cond(c), as_seq(conv(kids[-1])),
                            "rangefor")
        if kind == ck.SWITCH_STMT:
            kids = list(c.get_children())
            if len(kids) < 2:
                return leaf(c)
            cond = cond_from(kids[:-1])
            groups: list = []
            has_default = False
            labels: list[str] = []
            children: list = []
            body = kids[-1]
            for child in (body.get_children()
                          if body.kind == ck.COMPOUND_STMT else [body]):
                node = child
                if node.kind in (ck.CASE_STMT, ck.DEFAULT_STMT):
                    if children:
                        groups.append((labels, sir.Seq(children)))
                        labels, children = [], []
                    # Consecutive labels nest: case A: case B: stmt.
                    while node is not None and node.kind in (
                            ck.CASE_STMT, ck.DEFAULT_STMT):
                        subs = list(node.get_children())
                        if node.kind == ck.DEFAULT_STMT:
                            has_default = True
                            labels.append("default")
                            node = subs[0] if subs else None
                        else:
                            labels.append(slice_of(subs[0]).strip()
                                          if subs else "")
                            node = subs[1] if len(subs) > 1 else None
                if node is not None:
                    made = conv(node)
                    if made is not None:
                        children.append(made)
            if labels or children:
                groups.append((labels, sir.Seq(children)))
            return sir.Switch(cond, groups, has_default)
        if kind == ck.CXX_TRY_STMT:
            kids = list(c.get_children())
            if not kids:
                return leaf(c)
            handlers = []
            for h in kids[1:]:
                hkids = list(h.get_children())
                handlers.append(as_seq(conv(hkids[-1]))
                                if hkids else sir.Seq([]))
            return sir.Try(as_seq(conv(kids[0])), handlers)
        if kind == ck.NULL_STMT:
            return None
        return leaf(c)

    return as_seq(conv(cursor))


def _extract_dataflow_tu(cindex, root: pathlib.Path, tu, functions: list,
                         seen: set, src_cache: dict) -> None:
    """FunctionIR records (rules_dataflow's engine contract) for every
    definition under the dataflow scopes in one TU. Per-function
    best-effort: an odd body falls out of the pass, never the engine."""
    ck = cindex.CursorKind
    fn_kinds = {ck.CXX_METHOD, ck.CONSTRUCTOR, ck.DESTRUCTOR,
                ck.FUNCTION_DECL}
    cls_kinds = {ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE}
    scopes = tuple(rules_dataflow.DATAFLOW_SCOPES)

    def src_of(cursor) -> str | None:
        path = cursor.location.file.name if cursor.location.file else None
        if path is None:
            return None
        if path not in src_cache:
            try:
                src_cache[path] = pathlib.Path(path).read_text(
                    encoding="utf-8", errors="replace")
            except OSError:
                src_cache[path] = ""
        return src_cache[path]

    def scan(cursor) -> None:
        for child in cursor.get_children():
            if child.kind in fn_kinds and child.is_definition():
                rel = _rel(root, child.location)
                if rel is None or not rel.startswith(scopes):
                    continue
                key = (rel, child.spelling, child.location.line)
                if key in seen:
                    continue
                src_text = src_of(child)
                body = None
                for c in child.get_children():
                    if c.kind == ck.COMPOUND_STMT:
                        body = c
                if body is None or not src_text:
                    continue
                parent = child.semantic_parent
                cls = parent.spelling if parent is not None \
                    and parent.kind in cls_kinds else ""
                params = ", ".join(
                    src_text[p.extent.start.offset:p.extent.end.offset]
                    for p in child.get_arguments())
                try:
                    body_sir = _build_sir(ck, body, src_text)
                except Exception:
                    continue
                seen.add(key)
                functions.append(rules_dataflow.FunctionIR(
                    rel, cls, child.spelling, child.location.line,
                    child.extent.end.line, params, body_sir))
            scan(child)

    scan(tu.cursor)


def run_libclang_engine(root: pathlib.Path, rules: list[str],
                        build_dir: pathlib.Path) -> list[Finding]:
    cindex = _import_cindex()
    args_by_file = _compile_args(build_dir)
    try:
        index = cindex.Index.create()
    except Exception as e:  # libclang.so missing/unloadable
        raise EngineUnavailable(f"libclang unavailable: {e}") from e

    findings: list[Finding] = []
    ck = cindex.CursorKind

    def want(rel: str | None, *prefixes: str) -> bool:
        return rel is not None and rel.startswith(prefixes)

    def line_text(rel: str, line: int) -> str:
        try:
            return (root / rel).read_text(
                encoding="utf-8").splitlines()[line - 1].strip()
        except (OSError, IndexError):
            return ""

    def add(rule: str, rel: str, line: int, message: str, fix: str) -> None:
        findings.append(Finding(rule, rel, line, message,
                                text=line_text(rel, line), fix=fix))

    def enum_decl_of(type_obj):
        decl = type_obj.get_declaration()
        if decl.kind == ck.ENUM_DECL:
            return decl
        return None

    def visit(cursor, mutated_members: dict[str, set[str]],
              current_member: list[str]):
        rel = _rel(root, cursor.location)

        if cursor.kind in (ck.CXX_METHOD, ck.CONSTRUCTOR):
            parent = cursor.semantic_parent
            if parent is not None and parent.spelling == \
                    rules_ast.SCHEDULER_CLASS:
                current_member = [cursor.spelling]

        if "enum-exhaustive" in rules and cursor.kind == ck.SWITCH_STMT \
                and want(rel, "src/"):
            children = list(cursor.get_children())
            cases, has_default, named = [], False, set()
            stack = children[1:] if len(children) > 1 else []
            while stack:
                c = stack.pop()
                if c.kind == ck.SWITCH_STMT:
                    continue  # nested switch owns its own labels
                if c.kind == ck.DEFAULT_STMT:
                    has_default = True
                if c.kind == ck.CASE_STMT:
                    cases.append(c)
                    for ref in c.get_children():
                        for tok in ref.get_tokens():
                            if tok.spelling.startswith("k"):
                                named.add(tok.spelling)
                            break
                stack.extend(c.get_children())
            if has_default:
                add("enum-exhaustive", rel, cursor.location.line,
                    "`default:` label hides future enumerators/anchors "
                    "from the compiler and this check",
                    "name every case; for open int domains use an "
                    "if-chain with an explicit fallthrough value")
            cond = children[0] if children else None
            decl = enum_decl_of(cond.type) if cond is not None else None
            if decl is not None and decl.is_scoped_enum():
                enumerators = {c.spelling for c in decl.get_children()
                               if c.kind == ck.ENUM_CONSTANT_DECL}
                missing = sorted(enumerators - named)
                if missing and not has_default:
                    add("enum-exhaustive", rel, cursor.location.line,
                        f"switch over {decl.spelling} misses "
                        f"{', '.join(missing)}",
                        "add the missing case(s); never add `default:`")

        if "span-lifecycle" in rules and want(rel, "src/") \
                and not want(rel, "src/obs/"):
            if cursor.kind in (ck.TYPE_REF, ck.CXX_CONSTRUCT_EXPR,
                               ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL):
                tname = cursor.type.spelling if cursor.type else ""
                if "TraceSpan" in tname or \
                        cursor.spelling == "TraceSpan":
                    add("span-lifecycle", rel, cursor.location.line,
                        "TraceSpan is src/obs-internal; other planes must "
                        "not construct or handle spans directly",
                        "record via TraceRecorder::span()/span_into() and "
                        "the SpanBuilder setters")

        if "bounded-queue" in rules and cursor.kind == ck.CXX_CONSTRUCT_EXPR \
                and want(rel, "src/olap/", "examples/"):
            if "BlockingQueue<" in (cursor.type.spelling or "") and \
                    len(list(cursor.get_arguments())) == 0:
                add("bounded-queue", rel, cursor.location.line,
                    "unbounded BlockingQueue on the serving path "
                    "(no capacity argument)",
                    "construct with a capacity; shed or reroute on kFull")

        if "unit-escape" in rules and cursor.kind == ck.PARM_DECL \
                and want(rel, "src/perfmodel/", "src/sched/", "src/sim/"):
            if cursor.type.spelling == "double" and \
                    rules_ast._unit_named(cursor.spelling):
                add("unit-escape", rel, cursor.location.line,
                    f"raw double parameter `{cursor.spelling}` carries a "
                    "unit in its name",
                    "take Seconds/Megabytes/MbPerSec/GbPerSec "
                    "(common/units.hpp) instead")

        if "retry-bound" in rules and cursor.kind in (
                ck.WHILE_STMT, ck.FOR_STMT, ck.DO_STMT,
                ck.CXX_FOR_RANGE_STMT) and \
                want(rel, "src/sched/", "src/olap/"):
            toks = [t.spelling for t in cursor.get_tokens()]
            if cursor.kind == ck.DO_STMT:
                # The condition trails the body: tokens after the last
                # `while` keyword.
                idx = len(toks) - 1 - toks[::-1].index("while") \
                    if "while" in toks else len(toks)
                header = toks[idx:]
            else:
                depth, header = 0, []
                for t in toks:
                    header.append(t)
                    if t == "(":
                        depth += 1
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            break
            if rules_ast._RETRY_IDENT.search(" ".join(header)) and \
                    not any(t in ("<", "<=", ">", ">=") for t in header):
                add("retry-bound", rel, cursor.location.line,
                    "retry loop without a compile-time-visible attempt "
                    "bound in its header",
                    "bound the loop on an attempt counter (e.g. "
                    "`attempt < policy.max_attempts`)")

        if ("clock-ledger" in rules or "batch-ledger" in rules) \
                and cursor.kind == ck.BINARY_OPERATOR \
                and want(rel, "src/"):
            toks = [t.spelling for t in cursor.get_tokens()]
            if any(op in toks for op in ("=", "+=", "-=")):
                hit = [m for m in rules_ast.LEDGER_FAMILIES
                       if m in toks] + \
                      (["clock_for"] if "clock_for" in toks else [])
                if hit:
                    member = current_member[0] if current_member else None
                    if rel != rules_ast.SCHEDULER_FILE or \
                            member not in rules_ast.BLESSED:
                        if "clock-ledger" in rules:
                            add("clock-ledger", rel, cursor.location.line,
                                "queue clock mutated outside the blessed "
                                f"{rules_ast.SCHEDULER_CLASS} members",
                                "route the update through schedule()/on_*() "
                                "feedback")
                    elif member is not None:
                        for m in hit:
                            fams = rules_ast.CLOCK_FOR_FAMILIES \
                                if m == "clock_for" \
                                else (rules_ast.LEDGER_FAMILIES[m],)
                            for fam in fams:
                                mutated_members.setdefault(
                                    member, set()).add(fam)

        if "batch-ledger" in rules and cursor.kind in (
                ck.CALL_EXPR, ck.MEMBER_REF_EXPR) and \
                want(rel, "src/olap/", "examples/"):
            if cursor.spelling == rules_ast.BATCH_COMMIT_MEMBER:
                batch_callers.setdefault(rel, cursor.location.line)
            elif cursor.spelling == rules_ast.BATCH_ROLLBACK_MEMBER:
                batch_rollers.add(rel)

        for child in cursor.get_children():
            visit(child, mutated_members, current_member)

    mutated: dict[str, set[str]] = {}
    batch_callers: dict[str, int] = {}  # rel -> first schedule_batch line
    batch_rollers: set[str] = set()     # rels referencing rollback_batch
    conc_rules = [r for r in rules
                  if r in concurrency.CONCURRENCY_RULES]
    conc_model = concurrency.ConcurrencyModel()
    df_rules = [r for r in rules
                if r in rules_dataflow.DATAFLOW_RULES]
    df_functions: list = []
    df_seen: set = set()
    df_src_cache: dict = {}
    parsed = 0
    for path, args in args_by_file.items():
        if not path.endswith(".cpp") or "/src/" not in path.replace(
                str(root), str(root) + "/"):
            pass  # parse everything under the database; scoping is per-node
        try:
            tu = index.parse(path, args=args)
        except Exception:
            continue
        if any(d.severity >= cindex.Diagnostic.Error
               for d in tu.diagnostics):
            continue
        parsed += 1
        visit(tu.cursor, mutated, [])
        if conc_rules:
            _extract_concurrency_tu(cindex, root, tu, conc_model)
        if df_rules:
            _extract_dataflow_tu(cindex, root, tu, df_functions,
                                 df_seen, df_src_cache)
    if parsed == 0:
        raise EngineUnavailable("no translation unit parsed cleanly")

    if conc_rules:
        findings.extend(concurrency.analyze_model(
            conc_model, conc_rules, line_text))

    if df_rules:
        findings.extend(rules_dataflow.analyze_functions(
            df_functions, df_rules, line_text))

    if "clock-ledger" in rules:
        committed = mutated.get("schedule", set())
        rolled = set()
        for m in rules_ast.ROLLBACK_MEMBERS:
            rolled |= mutated.get(m, set())
        for fam in sorted(committed - rolled):
            add("clock-ledger", rules_ast.SCHEDULER_FILE, 1,
                f"schedule() commits the {fam} clock but no feedback hook "
                f"({', '.join(rules_ast.ROLLBACK_MEMBERS)}) ever rolls it "
                "back — a shed query would inflate the clock forever",
                "subtract the committed estimate in on_shed()")

    if "batch-ledger" in rules:
        committed = mutated.get(rules_ast.BATCH_COMMIT_MEMBER, set())
        rolled = mutated.get(rules_ast.BATCH_ROLLBACK_MEMBER, set())
        for fam in sorted(committed - rolled):
            add("batch-ledger", rules_ast.SCHEDULER_FILE, 1,
                f"{rules_ast.BATCH_COMMIT_MEMBER}() commits the {fam} "
                f"clock for a whole batch but "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() never subtracts it "
                "— an unroutable batch would inflate the clock forever",
                f"subtract the recorded {fam} delta in "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}()")
        for rel, line in sorted(batch_callers.items()):
            if rel in batch_rollers:
                continue
            add("batch-ledger", rel, line,
                f"{rules_ast.BATCH_COMMIT_MEMBER}() is called here but no "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() path is visible in "
                "this file — a batch the executor cannot run has no "
                "batch-granular undo",
                f"roll unroutable batches back with "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() (or shed per query "
                "through on_shed and say so here)")

    return findings
