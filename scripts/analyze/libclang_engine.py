"""AST engine for the invariant rules, on the clang Python bindings.

Preferred over the text engine when ``import clang.cindex`` succeeds and
a ``compile_commands.json`` is available (CI installs the bindings; the
default dev container does not ship them). Emits the same rule ids and
equivalent messages as rules_ast.py so baselines and golden files apply
to either engine.

Everything here is defensive: any failure — missing bindings, missing
compilation database, a TU that fails to parse — raises
EngineUnavailable and the caller falls back to the text engine rather
than silently passing.
"""

from __future__ import annotations

import json
import pathlib
import sys

try:
    from .findings import Finding
    from . import rules_ast
except ImportError:  # executed as a flat script directory
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from findings import Finding
    import rules_ast


class EngineUnavailable(RuntimeError):
    pass


def _import_cindex():
    try:
        from clang import cindex  # noqa: PLC0415
        return cindex
    except ImportError as e:
        raise EngineUnavailable(f"clang bindings not importable: {e}") from e


def _compile_args(build_dir: pathlib.Path) -> dict[str, list[str]]:
    db = build_dir / "compile_commands.json"
    if not db.exists():
        raise EngineUnavailable(f"no compilation database at {db}")
    args_by_file: dict[str, list[str]] = {}
    for entry in json.loads(db.read_text(encoding="utf-8")):
        cmd = entry.get("command", "").split() or entry.get("arguments", [])
        # Drop the compiler, the -o pair and the input file; keep flags.
        args = []
        skip = False
        for tok in cmd[1:]:
            if skip:
                skip = False
                continue
            if tok in ("-o", "-c"):
                skip = tok == "-o"
                continue
            if tok.endswith((".cpp", ".cc", ".o")):
                continue
            args.append(tok)
        args_by_file[entry["file"]] = args
    return args_by_file


def _rel(root: pathlib.Path, location) -> str | None:
    if location.file is None:
        return None
    try:
        return pathlib.Path(location.file.name).resolve() \
            .relative_to(root.resolve()).as_posix()
    except ValueError:
        return None


def run_libclang_engine(root: pathlib.Path, rules: list[str],
                        build_dir: pathlib.Path) -> list[Finding]:
    cindex = _import_cindex()
    args_by_file = _compile_args(build_dir)
    try:
        index = cindex.Index.create()
    except Exception as e:  # libclang.so missing/unloadable
        raise EngineUnavailable(f"libclang unavailable: {e}") from e

    findings: list[Finding] = []
    ck = cindex.CursorKind

    def want(rel: str | None, *prefixes: str) -> bool:
        return rel is not None and rel.startswith(prefixes)

    def line_text(rel: str, line: int) -> str:
        try:
            return (root / rel).read_text(
                encoding="utf-8").splitlines()[line - 1].strip()
        except (OSError, IndexError):
            return ""

    def add(rule: str, rel: str, line: int, message: str, fix: str) -> None:
        findings.append(Finding(rule, rel, line, message,
                                text=line_text(rel, line), fix=fix))

    def enum_decl_of(type_obj):
        decl = type_obj.get_declaration()
        if decl.kind == ck.ENUM_DECL:
            return decl
        return None

    def visit(cursor, mutated_members: dict[str, set[str]],
              current_member: list[str]):
        rel = _rel(root, cursor.location)

        if cursor.kind in (ck.CXX_METHOD, ck.CONSTRUCTOR):
            parent = cursor.semantic_parent
            if parent is not None and parent.spelling == \
                    rules_ast.SCHEDULER_CLASS:
                current_member = [cursor.spelling]

        if "enum-exhaustive" in rules and cursor.kind == ck.SWITCH_STMT \
                and want(rel, "src/"):
            children = list(cursor.get_children())
            cases, has_default, named = [], False, set()
            stack = children[1:] if len(children) > 1 else []
            while stack:
                c = stack.pop()
                if c.kind == ck.SWITCH_STMT:
                    continue  # nested switch owns its own labels
                if c.kind == ck.DEFAULT_STMT:
                    has_default = True
                if c.kind == ck.CASE_STMT:
                    cases.append(c)
                    for ref in c.get_children():
                        for tok in ref.get_tokens():
                            if tok.spelling.startswith("k"):
                                named.add(tok.spelling)
                            break
                stack.extend(c.get_children())
            if has_default:
                add("enum-exhaustive", rel, cursor.location.line,
                    "`default:` label hides future enumerators/anchors "
                    "from the compiler and this check",
                    "name every case; for open int domains use an "
                    "if-chain with an explicit fallthrough value")
            cond = children[0] if children else None
            decl = enum_decl_of(cond.type) if cond is not None else None
            if decl is not None and decl.is_scoped_enum():
                enumerators = {c.spelling for c in decl.get_children()
                               if c.kind == ck.ENUM_CONSTANT_DECL}
                missing = sorted(enumerators - named)
                if missing and not has_default:
                    add("enum-exhaustive", rel, cursor.location.line,
                        f"switch over {decl.spelling} misses "
                        f"{', '.join(missing)}",
                        "add the missing case(s); never add `default:`")

        if "span-lifecycle" in rules and want(rel, "src/") \
                and not want(rel, "src/obs/"):
            if cursor.kind in (ck.TYPE_REF, ck.CXX_CONSTRUCT_EXPR,
                               ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL):
                tname = cursor.type.spelling if cursor.type else ""
                if "TraceSpan" in tname or \
                        cursor.spelling == "TraceSpan":
                    add("span-lifecycle", rel, cursor.location.line,
                        "TraceSpan is src/obs-internal; other planes must "
                        "not construct or handle spans directly",
                        "record via TraceRecorder::span()/span_into() and "
                        "the SpanBuilder setters")

        if "bounded-queue" in rules and cursor.kind == ck.CXX_CONSTRUCT_EXPR \
                and want(rel, "src/olap/", "examples/"):
            if "BlockingQueue<" in (cursor.type.spelling or "") and \
                    len(list(cursor.get_arguments())) == 0:
                add("bounded-queue", rel, cursor.location.line,
                    "unbounded BlockingQueue on the serving path "
                    "(no capacity argument)",
                    "construct with a capacity; shed or reroute on kFull")

        if "unit-escape" in rules and cursor.kind == ck.PARM_DECL \
                and want(rel, "src/perfmodel/", "src/sched/", "src/sim/"):
            if cursor.type.spelling == "double" and \
                    rules_ast._unit_named(cursor.spelling):
                add("unit-escape", rel, cursor.location.line,
                    f"raw double parameter `{cursor.spelling}` carries a "
                    "unit in its name",
                    "take Seconds/Megabytes/MbPerSec/GbPerSec "
                    "(common/units.hpp) instead")

        if "retry-bound" in rules and cursor.kind in (
                ck.WHILE_STMT, ck.FOR_STMT, ck.DO_STMT,
                ck.CXX_FOR_RANGE_STMT) and \
                want(rel, "src/sched/", "src/olap/"):
            toks = [t.spelling for t in cursor.get_tokens()]
            if cursor.kind == ck.DO_STMT:
                # The condition trails the body: tokens after the last
                # `while` keyword.
                idx = len(toks) - 1 - toks[::-1].index("while") \
                    if "while" in toks else len(toks)
                header = toks[idx:]
            else:
                depth, header = 0, []
                for t in toks:
                    header.append(t)
                    if t == "(":
                        depth += 1
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            break
            if rules_ast._RETRY_IDENT.search(" ".join(header)) and \
                    not any(t in ("<", "<=", ">", ">=") for t in header):
                add("retry-bound", rel, cursor.location.line,
                    "retry loop without a compile-time-visible attempt "
                    "bound in its header",
                    "bound the loop on an attempt counter (e.g. "
                    "`attempt < policy.max_attempts`)")

        if ("clock-ledger" in rules or "batch-ledger" in rules) \
                and cursor.kind == ck.BINARY_OPERATOR \
                and want(rel, "src/"):
            toks = [t.spelling for t in cursor.get_tokens()]
            if any(op in toks for op in ("=", "+=", "-=")):
                hit = [m for m in rules_ast.LEDGER_FAMILIES
                       if m in toks] + \
                      (["clock_for"] if "clock_for" in toks else [])
                if hit:
                    member = current_member[0] if current_member else None
                    if rel != rules_ast.SCHEDULER_FILE or \
                            member not in rules_ast.BLESSED:
                        if "clock-ledger" in rules:
                            add("clock-ledger", rel, cursor.location.line,
                                "queue clock mutated outside the blessed "
                                f"{rules_ast.SCHEDULER_CLASS} members",
                                "route the update through schedule()/on_*() "
                                "feedback")
                    elif member is not None:
                        for m in hit:
                            fams = rules_ast.CLOCK_FOR_FAMILIES \
                                if m == "clock_for" \
                                else (rules_ast.LEDGER_FAMILIES[m],)
                            for fam in fams:
                                mutated_members.setdefault(
                                    member, set()).add(fam)

        if "batch-ledger" in rules and cursor.kind in (
                ck.CALL_EXPR, ck.MEMBER_REF_EXPR) and \
                want(rel, "src/olap/", "examples/"):
            if cursor.spelling == rules_ast.BATCH_COMMIT_MEMBER:
                batch_callers.setdefault(rel, cursor.location.line)
            elif cursor.spelling == rules_ast.BATCH_ROLLBACK_MEMBER:
                batch_rollers.add(rel)

        for child in cursor.get_children():
            visit(child, mutated_members, current_member)

    mutated: dict[str, set[str]] = {}
    batch_callers: dict[str, int] = {}  # rel -> first schedule_batch line
    batch_rollers: set[str] = set()     # rels referencing rollback_batch
    parsed = 0
    for path, args in args_by_file.items():
        if not path.endswith(".cpp") or "/src/" not in path.replace(
                str(root), str(root) + "/"):
            pass  # parse everything under the database; scoping is per-node
        try:
            tu = index.parse(path, args=args)
        except Exception:
            continue
        if any(d.severity >= cindex.Diagnostic.Error
               for d in tu.diagnostics):
            continue
        parsed += 1
        visit(tu.cursor, mutated, [])
    if parsed == 0:
        raise EngineUnavailable("no translation unit parsed cleanly")

    if "clock-ledger" in rules:
        committed = mutated.get("schedule", set())
        rolled = set()
        for m in rules_ast.ROLLBACK_MEMBERS:
            rolled |= mutated.get(m, set())
        for fam in sorted(committed - rolled):
            add("clock-ledger", rules_ast.SCHEDULER_FILE, 1,
                f"schedule() commits the {fam} clock but no feedback hook "
                f"({', '.join(rules_ast.ROLLBACK_MEMBERS)}) ever rolls it "
                "back — a shed query would inflate the clock forever",
                "subtract the committed estimate in on_shed()")

    if "batch-ledger" in rules:
        committed = mutated.get(rules_ast.BATCH_COMMIT_MEMBER, set())
        rolled = mutated.get(rules_ast.BATCH_ROLLBACK_MEMBER, set())
        for fam in sorted(committed - rolled):
            add("batch-ledger", rules_ast.SCHEDULER_FILE, 1,
                f"{rules_ast.BATCH_COMMIT_MEMBER}() commits the {fam} "
                f"clock for a whole batch but "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() never subtracts it "
                "— an unroutable batch would inflate the clock forever",
                f"subtract the recorded {fam} delta in "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}()")
        for rel, line in sorted(batch_callers.items()):
            if rel in batch_rollers:
                continue
            add("batch-ledger", rel, line,
                f"{rules_ast.BATCH_COMMIT_MEMBER}() is called here but no "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() path is visible in "
                "this file — a batch the executor cannot run has no "
                "batch-granular undo",
                f"roll unroutable batches back with "
                f"{rules_ast.BATCH_ROLLBACK_MEMBER}() (or shed per query "
                "through on_shed and say so here)")

    return findings
