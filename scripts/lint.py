#!/usr/bin/env python3
"""Forwarding shim: the lint rules moved into scripts/analyze/.

``scripts/lint.py [--fix-dry-run]`` behaves exactly as before —
determinism, raw-new-delete and include-hygiene over the same scopes,
same output format, same exit codes — by invoking the combined analyzer
with ``--rules lint``. New invariant rules and the engine selection live
in ``scripts/analyze/analyze.py``; use that CLI directly for anything
beyond the historical lint behaviour.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "analyze"))

from analyze import run  # noqa: E402

if __name__ == "__main__":
    sys.exit(run(["--rules", "lint", *sys.argv[1:]]))
