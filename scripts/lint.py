#!/usr/bin/env python3
"""Repo-specific lint: determinism, ownership, and include hygiene.

Rules (each violation prints as ``file:line: [rule] message``):

  determinism      The simulation and scheduling planes (src/sim, src/sched)
                   must be bit-reproducible: a seeded run is the experiment
                   record. No wall-clock reads (std::chrono::*_clock::now),
                   C time(), rand()/srand(), or std::random_device may be
                   reachable from them — neither directly nor through any
                   transitively included project header. Measurement planes
                   (perfmodel calibration, olap wall timing) may use the
                   clock; they are outside the reachability set.

  raw-new-delete   No raw `new` / `delete` anywhere under src/. Containers
                   and std::unique_ptr own everything; `= delete;` of
                   special members is of course allowed.

  include-hygiene  Project includes use the quoted "subdir/file.hpp" form
                   rooted at src/ (no "../" escapes, no <> for project
                   headers), and every quoted include resolves to a file
                   that exists in the tree.

Usage:
  scripts/lint.py                 # check src/ (+ tests/bench/examples for
                                  # include hygiene); exit 1 on violation
  scripts/lint.py --fix-dry-run   # additionally print the suggested fix
                                  # for each violation; same exit code

CI runs this as its own step and ctest registers it as `lint.repo_rules`,
so a violation fails both the lint job and the test suite.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Determinism-critical roots: every TU here, plus everything it includes.
DETERMINISTIC_DIRS = ("sim", "sched")

# Individually pinned roots, checked even if they move out of the
# directories above: FaultInjector drives the overload/robustness tests,
# and a seeded fault scenario must replay bit-identically — every knob is
# an explicit flag, counter or gate, never a clock or a random source.
DETERMINISTIC_EXTRA_ROOTS = ("sim/fault_injector.hpp",)

# (regex, human name, suggested fix) for the determinism rule.
NONDETERMINISM = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "wall-clock read",
     "thread simulated time (Seconds) through the call instead"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "C rand()/srand()",
     "use the seeded SplitMix64 from common/rng.hpp"),
    (re.compile(r"std::random_device"),
     "std::random_device",
     "use the seeded SplitMix64 from common/rng.hpp"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "C time()",
     "thread simulated time (Seconds) through the call instead"),
]

RAW_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_(:<]")
RAW_DELETE = re.compile(r"(?<![\w_=>])delete(\s*\[\s*\])?\s+[A-Za-z_(*]")
INCLUDE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def project_sources(root: pathlib.Path) -> list[pathlib.Path]:
    return sorted(p for ext in ("*.hpp", "*.cpp") for p in root.rglob(ext))


class Linter:
    def __init__(self, fix_dry_run: bool) -> None:
        self.fix_dry_run = fix_dry_run
        self.violations = 0

    def report(self, path: pathlib.Path, line: int, rule: str, msg: str,
               fix: str | None = None) -> None:
        self.violations += 1
        rel = path.relative_to(REPO)
        print(f"{rel}:{line}: [{rule}] {msg}")
        if self.fix_dry_run and fix:
            print(f"{rel}:{line}: [{rule}] would fix: {fix}")

    # -- determinism -----------------------------------------------------
    def include_closure(self, roots: list[pathlib.Path]) -> set[pathlib.Path]:
        """Transitive closure of project includes, resolved against src/."""
        seen: set[pathlib.Path] = set()
        stack = list(roots)
        while stack:
            f = stack.pop()
            if f in seen or not f.exists():
                continue
            seen.add(f)
            for line in f.read_text(encoding="utf-8").splitlines():
                m = INCLUDE.match(line)
                if m and m.group(1) == '"':
                    stack.append(SRC / m.group(2))
        return {f for f in seen if f.exists()}

    def check_determinism(self) -> None:
        roots = [
            p for d in DETERMINISTIC_DIRS for p in project_sources(SRC / d)
        ]
        for rel in DETERMINISTIC_EXTRA_ROOTS:
            path = SRC / rel
            if path not in roots:
                if not path.exists():
                    self.report(path, 1, "determinism",
                                "pinned deterministic root is missing",
                                "restore the file or update "
                                "DETERMINISTIC_EXTRA_ROOTS")
                    continue
                roots.append(path)
        for f in sorted(self.include_closure(roots)):
            text = strip_comments_and_strings(f.read_text(encoding="utf-8"))
            for lineno, line in enumerate(text.splitlines(), 1):
                for rx, what, fix in NONDETERMINISM:
                    if rx.search(line):
                        self.report(
                            f, lineno, "determinism",
                            f"{what} reachable from src/sim//src/sched "
                            "(simulations must be seeded and reproducible)",
                            fix)

    # -- raw new/delete --------------------------------------------------
    def check_raw_new_delete(self) -> None:
        for f in project_sources(SRC):
            text = strip_comments_and_strings(f.read_text(encoding="utf-8"))
            for lineno, line in enumerate(text.splitlines(), 1):
                if RAW_NEW.search(line):
                    self.report(f, lineno, "raw-new-delete",
                                "raw `new` in src/",
                                "use std::make_unique / a container")
                if RAW_DELETE.search(line):
                    self.report(f, lineno, "raw-new-delete",
                                "raw `delete` in src/",
                                "let std::unique_ptr own the object")

    # -- include hygiene -------------------------------------------------
    def check_include_hygiene(self) -> None:
        project_header_names = {
            str(p.relative_to(SRC)) for p in project_sources(SRC)
            if p.suffix == ".hpp"
        }
        scan_roots = [SRC, REPO / "tests", REPO / "bench", REPO / "examples"]
        for root in scan_roots:
            if not root.exists():
                continue
            for f in project_sources(root):
                for lineno, line in enumerate(
                        f.read_text(encoding="utf-8").splitlines(), 1):
                    m = INCLUDE.match(line)
                    if not m:
                        continue
                    style, target = m.group(1), m.group(2)
                    if style == '"':
                        if target.startswith(".."):
                            self.report(
                                f, lineno, "include-hygiene",
                                f'relative include "{target}" escapes the '
                                "include root",
                                'include as "subdir/file.hpp" from src/')
                        elif not (SRC / target).exists() and not (
                                f.parent / target).exists():
                            self.report(
                                f, lineno, "include-hygiene",
                                f'quoted include "{target}" resolves to no '
                                "file under src/",
                                "fix the path or add the header")
                    elif target in project_header_names:
                        self.report(
                            f, lineno, "include-hygiene",
                            f"project header <{target}> included with "
                            "angle brackets",
                            f'use #include "{target}"')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fix-dry-run", action="store_true",
        help="print the suggested fix next to each violation "
             "(no files are modified); exit code still reflects violations")
    args = parser.parse_args()

    linter = Linter(args.fix_dry_run)
    linter.check_determinism()
    linter.check_raw_new_delete()
    linter.check_include_hygiene()

    if linter.violations:
        print(f"\n{linter.violations} violation(s).", file=sys.stderr)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
