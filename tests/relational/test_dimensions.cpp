#include "relational/dimensions.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

Dimension time_dim() {
  return Dimension("time", {{"year", 4}, {"month", 48}, {"day", 1440}});
}

TEST(Dimension, BasicProperties) {
  const Dimension d = time_dim();
  EXPECT_EQ(d.name(), "time");
  EXPECT_EQ(d.level_count(), 3);
  EXPECT_EQ(d.finest_level(), 2);
  EXPECT_EQ(d.level(0).name, "year");
  EXPECT_EQ(d.level(2).cardinality, 1440u);
}

TEST(Dimension, FanoutBetweenLevels) {
  const Dimension d = time_dim();
  EXPECT_EQ(d.fanout(0, 0), 1u);
  EXPECT_EQ(d.fanout(0, 1), 12u);
  EXPECT_EQ(d.fanout(1, 2), 30u);
  EXPECT_EQ(d.fanout(0, 2), 360u);
}

TEST(Dimension, CoarsenMapsToAncestor) {
  const Dimension d = time_dim();
  // Day 0 is in month 0, year 0; day 1439 is in month 47, year 3.
  EXPECT_EQ(d.coarsen(0, 2, 0), 0);
  EXPECT_EQ(d.coarsen(1439, 2, 1), 47);
  EXPECT_EQ(d.coarsen(1439, 2, 0), 3);
  // Month 13 belongs to year 1.
  EXPECT_EQ(d.coarsen(13, 1, 0), 1);
  // Identity at the same level.
  EXPECT_EQ(d.coarsen(17, 1, 1), 17);
}

TEST(Dimension, CoarsenConsistentAcrossPaths) {
  // coarsen(fine->coarse) == coarsen(coarsen(fine->mid), mid->coarse)
  const Dimension d = time_dim();
  for (std::int32_t day = 0; day < 1440; day += 97) {
    const std::int32_t via_month = d.coarsen(d.coarsen(day, 2, 1), 1, 0);
    EXPECT_EQ(d.coarsen(day, 2, 0), via_month);
  }
}

TEST(Dimension, RejectsInvalidHierarchies) {
  EXPECT_THROW(Dimension("x", {}), InvalidArgument);
  EXPECT_THROW(Dimension("x", {{"a", 0}}), InvalidArgument);
  // Non-increasing cardinality.
  EXPECT_THROW(Dimension("x", {{"a", 8}, {"b", 8}}), InvalidArgument);
  // Non-divisible cardinality (unbalanced hierarchy).
  EXPECT_THROW(Dimension("x", {{"a", 8}, {"b", 12}}), InvalidArgument);
}

TEST(Dimension, RejectsOutOfRangeAccess) {
  const Dimension d = time_dim();
  EXPECT_THROW(d.level(3), InvalidArgument);
  EXPECT_THROW(d.fanout(1, 0), InvalidArgument);
  EXPECT_THROW(d.coarsen(1440, 2, 0), InvalidArgument);
}

TEST(PaperDimensions, MatchesSection4Configuration) {
  const auto dims = paper_model_dimensions();
  ASSERT_EQ(dims.size(), 3u);
  for (const auto& d : dims) {
    ASSERT_EQ(d.level_count(), 4);
    EXPECT_EQ(d.level(0).cardinality, 8u);
    EXPECT_EQ(d.level(3).cardinality, 1600u);
  }
}

TEST(PaperDimensions, CubeSizesMatchThePaperLadder) {
  // 8-byte cells: levels 0..3 must be ~4 KB, ~500 KB, ~512 MB, ~32 GB.
  const auto dims = paper_model_dimensions();
  auto cells = [&](int level) {
    std::size_t n = 1;
    for (const auto& d : dims) n *= d.level(level).cardinality;
    return n * 8;
  };
  EXPECT_EQ(cells(0), 4096u);                          // 4 KB
  EXPECT_EQ(cells(1), 512000u);                        // 500 KB
  EXPECT_EQ(cells(2), 512000000u);                     // ~488 MB
  EXPECT_EQ(cells(3), 32768000000u);                   // ~30.5 GB
}

}  // namespace
}  // namespace holap
