#include "relational/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable sample_table(std::size_t rows = 300) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 23;
  config.text_levels = {{1, 3}};
  return generate_fact_table(tiny_model_dimensions(), config);
}

void expect_tables_equal(const FactTable& a, const FactTable& b) {
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.schema().column_count(), b.schema().column_count());
  for (int c = 0; c < a.schema().column_count(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    EXPECT_EQ(a.schema().column(c).kind, b.schema().column(c).kind);
    EXPECT_EQ(a.schema().column(c).encoding, b.schema().column(c).encoding);
    if (a.schema().column(c).kind == ColumnKind::kMeasure) {
      for (std::size_t r = 0; r < a.row_count(); ++r) {
        ASSERT_EQ(a.measure_column(c)[r], b.measure_column(c)[r]);
      }
    } else {
      for (std::size_t r = 0; r < a.row_count(); ++r) {
        ASSERT_EQ(a.dim_column(c)[r], b.dim_column(c)[r]);
      }
    }
  }
}

TEST(BinaryIo, RoundTripIsBitExact) {
  const FactTable original = sample_table();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_fact_table(buffer, original);
  const FactTable loaded = read_fact_table(buffer);
  expect_tables_equal(original, loaded);
  // Dimension hierarchy survives too.
  EXPECT_EQ(loaded.schema().dimensions()[0].level(3).cardinality, 16u);
  EXPECT_EQ(loaded.schema().text_columns(),
            original.schema().text_columns());
}

TEST(BinaryIo, EmptyTableRoundTrips) {
  const FactTable original = sample_table(0);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_fact_table(buffer, original);
  const FactTable loaded = read_fact_table(buffer);
  EXPECT_EQ(loaded.row_count(), 0u);
}

TEST(BinaryIo, BadMagicRejected) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  buffer << "NOTAFILE" << std::string(64, '\0');
  EXPECT_THROW(read_fact_table(buffer), Error);
}

TEST(BinaryIo, TruncationRejected) {
  const FactTable original = sample_table(100);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_fact_table(buffer, original);
  const std::string whole = buffer.str();
  for (const std::size_t keep :
       {whole.size() / 4, whole.size() / 2, whole.size() - 5}) {
    std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
    cut << whole.substr(0, keep);
    EXPECT_THROW(read_fact_table(cut), Error) << "kept " << keep;
  }
}

TEST(BinaryIo, CorruptSchemaRejected) {
  const FactTable original = sample_table(10);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_fact_table(buffer, original);
  std::string bytes = buffer.str();
  // Stamp an absurd dimension count right after the magic.
  bytes[8] = '\xff';
  bytes[9] = '\xff';
  std::stringstream corrupt(std::ios::in | std::ios::out |
                            std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW(read_fact_table(corrupt), Error);
}

TEST(BinaryIo, FileRoundTrip) {
  const FactTable original = sample_table(200);
  const std::string path = "/tmp/holap_test_table.bin";
  save_fact_table(path, original);
  const FactTable loaded = load_fact_table(path);
  expect_tables_equal(original, loaded);
  std::remove(path.c_str());
  EXPECT_THROW(load_fact_table("/nonexistent/dir/table.bin"), Error);
}

}  // namespace
}  // namespace holap
