#include "relational/names.hpp"

#include <gtest/gtest.h>

#include <set>

namespace holap {
namespace {

class NamesBijectivity : public ::testing::TestWithParam<NameKind> {};

TEST_P(NamesBijectivity, FirstTenThousandAreDistinct) {
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto [it, inserted] = seen.insert(synth_name(GetParam(), i));
    EXPECT_TRUE(inserted) << "collision at i=" << i << ": " << *it;
  }
}

TEST_P(NamesBijectivity, Deterministic) {
  for (std::uint64_t i : {0ull, 1ull, 17ull, 9999ull, 123456ull}) {
    EXPECT_EQ(synth_name(GetParam(), i), synth_name(GetParam(), i));
  }
}

TEST_P(NamesBijectivity, NonEmpty) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(synth_name(GetParam(), i).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NamesBijectivity,
                         ::testing::Values(NameKind::kCity, NameKind::kStreet,
                                           NameKind::kPerson,
                                           NameKind::kBrand));

TEST(Names, KindsProduceDistinctStyles) {
  // Spot-check that kinds do not collide on the same index.
  EXPECT_NE(synth_name(NameKind::kCity, 5), synth_name(NameKind::kPerson, 5));
  EXPECT_NE(synth_name(NameKind::kBrand, 5), synth_name(NameKind::kStreet, 5));
}

TEST(Names, LargeIndicesStillDistinct) {
  std::set<std::string> seen;
  for (std::uint64_t i = 1'000'000; i < 1'002'000; ++i) {
    EXPECT_TRUE(seen.insert(synth_name(NameKind::kCity, i)).second);
  }
}

}  // namespace
}  // namespace holap
