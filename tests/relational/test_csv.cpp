#include "relational/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dict/dictionary_set.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

TEST(Csv, RoundTripPreservesAllData) {
  GeneratorConfig config;
  config.rows = 50;
  config.text_levels = {{1, 3}};
  const auto dims = tiny_model_dimensions();
  const FactTable original = generate_fact_table(dims, config);

  std::stringstream buffer;
  write_csv(buffer, original, default_text_decoder(original.schema()));

  // Import translates text cells through a fresh dictionary built on the
  // fly; because codes were assigned in first-seen order on export strings
  // that themselves decode bijectively, values must round-trip when we use
  // the canonical dictionary.
  DictionarySet dicts = DictionarySet::build_from_table(original);
  const auto encode = [&](int col, const std::string& cell) {
    return dicts.for_column(col).encode_or_add(cell);
  };
  const FactTable loaded = read_csv(buffer, original.schema(), encode);

  ASSERT_EQ(loaded.row_count(), original.row_count());
  for (int c = 0; c < original.schema().column_count(); ++c) {
    if (original.schema().column(c).kind == ColumnKind::kMeasure) {
      for (std::size_t r = 0; r < original.row_count(); ++r) {
        EXPECT_NEAR(loaded.measure_column(c)[r],
                    original.measure_column(c)[r], 1e-4);
      }
    } else {
      for (std::size_t r = 0; r < original.row_count(); ++r) {
        EXPECT_EQ(loaded.dim_column(c)[r], original.dim_column(c)[r])
            << "column " << c << " row " << r;
      }
    }
  }
}

TEST(Csv, HeaderMismatchRejected) {
  const TableSchema schema =
      make_star_schema(tiny_model_dimensions(), {"m"}, {});
  std::istringstream bad("wrong,header\n");
  const auto encode = [](int, const std::string&) { return 0; };
  EXPECT_THROW(read_csv(bad, schema, encode), InvalidArgument);
}

TEST(Csv, EmptyInputRejected) {
  const TableSchema schema =
      make_star_schema(tiny_model_dimensions(), {"m"}, {});
  std::istringstream empty("");
  const auto encode = [](int, const std::string&) { return 0; };
  EXPECT_THROW(read_csv(empty, schema, encode), InvalidArgument);
}

TEST(Csv, QuotedCellsWithCommasSurvive) {
  // Write a header + row manually exercising RFC-4180 quoting.
  const TableSchema schema = make_star_schema(
      std::vector<Dimension>{Dimension("d", {{"l", 4}})}, {"m"}, {{0, 0}});
  FactTable t(schema);
  t.append_row(std::vector<std::int32_t>{2}, std::vector<double>{1.5});
  std::stringstream buffer;
  write_csv(buffer, t, [](int, std::int32_t code) {
    return "name, with \"quotes\" #" + std::to_string(code);
  });
  const std::string out = buffer.str();
  EXPECT_NE(out.find("\"name, with \"\"quotes\"\" #2\""), std::string::npos);

  Dictionary dict;
  const auto encode = [&](int, const std::string& cell) {
    // Recover the code from the tail of the synthetic name.
    EXPECT_EQ(cell, "name, with \"quotes\" #2");
    return 2;
  };
  const FactTable loaded = read_csv(buffer, schema, encode);
  ASSERT_EQ(loaded.row_count(), 1u);
  EXPECT_EQ(loaded.dim_column(0)[0], 2);
}

}  // namespace
}  // namespace holap
