#include "relational/schema.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TableSchema tiny_schema() {
  return make_star_schema(tiny_model_dimensions(), {"sales", "qty"},
                          {{1, 3}});
}

TEST(StarSchema, ColumnLayoutMatchesFigure6) {
  const TableSchema s = tiny_schema();
  // 3 dims x 4 levels + 2 measures.
  EXPECT_EQ(s.column_count(), 14);
  EXPECT_EQ(s.dimension_count(), 3);
  // Dimension columns come first, dimension-major coarse-to-fine.
  EXPECT_EQ(s.column(0).name, "time.year");
  EXPECT_EQ(s.column(3).name, "time.hour");
  EXPECT_EQ(s.column(4).name, "geography.region");
  // Measures last.
  EXPECT_EQ(s.column(12).name, "sales");
  EXPECT_EQ(s.column(13).kind, ColumnKind::kMeasure);
}

TEST(StarSchema, DimensionColumnLookup) {
  const TableSchema s = tiny_schema();
  for (int d = 0; d < 3; ++d) {
    for (int l = 0; l < 4; ++l) {
      const int col = s.dimension_column(d, l);
      EXPECT_EQ(s.column(col).dim, d);
      EXPECT_EQ(s.column(col).level, l);
    }
  }
  EXPECT_THROW(s.dimension_column(3, 0), InvalidArgument);
  EXPECT_THROW(s.dimension_column(0, 4), InvalidArgument);
}

TEST(StarSchema, TextColumnsMarked) {
  const TableSchema s = tiny_schema();
  ASSERT_EQ(s.text_columns().size(), 1u);
  const ColumnSpec& spec = s.column(s.text_columns()[0]);
  EXPECT_EQ(spec.dim, 1);
  EXPECT_EQ(spec.level, 3);
  EXPECT_EQ(spec.encoding, ValueEncoding::kDictEncodedText);
}

TEST(StarSchema, MeasureColumnsListed) {
  const TableSchema s = tiny_schema();
  ASSERT_EQ(s.measure_columns().size(), 2u);
  EXPECT_EQ(s.column(s.measure_columns()[0]).name, "sales");
}

TEST(StarSchema, FindColumnByName) {
  const TableSchema s = tiny_schema();
  EXPECT_TRUE(s.find_column("time.day").has_value());
  EXPECT_EQ(s.find_column("nonexistent"), std::nullopt);
}

TEST(StarSchema, RowBytes) {
  // 12 dimension columns * 4 B + 2 measures * 8 B = 64 B.
  EXPECT_EQ(tiny_schema().row_bytes(), 64u);
}

TEST(TableSchema, RejectsDuplicateColumnNames) {
  auto dims = tiny_model_dimensions();
  std::vector<ColumnSpec> cols;
  ColumnSpec a;
  a.name = "dup";
  a.kind = ColumnKind::kDimensionLevel;
  a.dim = 0;
  a.level = 0;
  ColumnSpec b = a;
  b.level = 1;
  cols.push_back(a);
  cols.push_back(b);
  EXPECT_THROW(TableSchema(dims, cols), InvalidArgument);
}

TEST(TableSchema, RejectsDuplicateDimLevelColumns) {
  auto dims = tiny_model_dimensions();
  std::vector<ColumnSpec> cols;
  ColumnSpec a;
  a.name = "x";
  a.kind = ColumnKind::kDimensionLevel;
  a.dim = 0;
  a.level = 0;
  ColumnSpec b = a;
  b.name = "y";
  cols.push_back(a);
  cols.push_back(b);
  EXPECT_THROW(TableSchema(dims, cols), InvalidArgument);
}

TEST(TableSchema, RejectsDictEncodedMeasure) {
  auto dims = tiny_model_dimensions();
  ColumnSpec m;
  m.name = "m";
  m.kind = ColumnKind::kMeasure;
  m.encoding = ValueEncoding::kDictEncodedText;
  EXPECT_THROW(TableSchema(dims, {m}), InvalidArgument);
}

TEST(TableSchema, RejectsUnknownDimOrLevel) {
  auto dims = tiny_model_dimensions();
  ColumnSpec c;
  c.name = "c";
  c.kind = ColumnKind::kDimensionLevel;
  c.dim = 7;
  c.level = 0;
  EXPECT_THROW(TableSchema(dims, {c}), InvalidArgument);
}

}  // namespace
}  // namespace holap
