#include "relational/generator.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TEST(Generator, ProducesRequestedRows) {
  GeneratorConfig config;
  config.rows = 500;
  const FactTable t = generate_fact_table(tiny_model_dimensions(), config);
  EXPECT_EQ(t.row_count(), 500u);
}

TEST(Generator, Deterministic) {
  GeneratorConfig config;
  config.rows = 200;
  config.seed = 7;
  const auto dims = tiny_model_dimensions();
  const FactTable a = generate_fact_table(dims, config);
  const FactTable b = generate_fact_table(dims, config);
  for (int c = 0; c < a.schema().column_count(); ++c) {
    if (a.schema().column(c).kind == ColumnKind::kMeasure) {
      for (std::size_t r = 0; r < 200; ++r) {
        EXPECT_DOUBLE_EQ(a.measure_column(c)[r], b.measure_column(c)[r]);
      }
    } else {
      for (std::size_t r = 0; r < 200; ++r) {
        EXPECT_EQ(a.dim_column(c)[r], b.dim_column(c)[r]);
      }
    }
  }
}

TEST(Generator, SeedsChangeData) {
  GeneratorConfig a_cfg, b_cfg;
  a_cfg.rows = b_cfg.rows = 100;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const auto dims = tiny_model_dimensions();
  const FactTable a = generate_fact_table(dims, a_cfg);
  const FactTable b = generate_fact_table(dims, b_cfg);
  int diffs = 0;
  for (std::size_t r = 0; r < 100; ++r) {
    diffs += a.dim_column(3)[r] != b.dim_column(3)[r];
  }
  EXPECT_GT(diffs, 0);
}

TEST(Generator, HierarchyConsistency) {
  // For every row and dimension, the code at level l must be the coarsened
  // finest-level code — the invariant that makes per-level columns valid.
  GeneratorConfig config;
  config.rows = 1000;
  config.zipf_skew = 0.9;
  const auto dims = tiny_model_dimensions();
  const FactTable t = generate_fact_table(dims, config);
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const int fine = dims[d].finest_level();
    const auto fine_col = t.dim_level_column(static_cast<int>(d), fine);
    for (int l = 0; l < fine; ++l) {
      const auto col = t.dim_level_column(static_cast<int>(d), l);
      for (std::size_t r = 0; r < t.row_count(); ++r) {
        EXPECT_EQ(col[r], dims[d].coarsen(fine_col[r], fine, l));
      }
    }
  }
}

TEST(Generator, CodesWithinCardinality) {
  GeneratorConfig config;
  config.rows = 1000;
  const auto dims = tiny_model_dimensions();
  const FactTable t = generate_fact_table(dims, config);
  for (std::size_t d = 0; d < dims.size(); ++d) {
    for (int l = 0; l < dims[d].level_count(); ++l) {
      const auto col = t.dim_level_column(static_cast<int>(d), l);
      const auto card =
          static_cast<std::int32_t>(dims[d].level(l).cardinality);
      for (std::size_t r = 0; r < t.row_count(); ++r) {
        EXPECT_GE(col[r], 0);
        EXPECT_LT(col[r], card);
      }
    }
  }
}

TEST(Generator, ZipfSkewConcentratesPopularMembers) {
  GeneratorConfig uniform, skewed;
  uniform.rows = skewed.rows = 5000;
  skewed.zipf_skew = 1.2;
  const auto dims = tiny_model_dimensions();
  auto top_share = [&](const FactTable& t) {
    std::vector<int> counts(16, 0);
    for (std::size_t r = 0; r < t.row_count(); ++r) {
      ++counts[t.dim_level_column(0, 3)[r]];
    }
    return *std::max_element(counts.begin(), counts.end());
  };
  EXPECT_GT(top_share(generate_fact_table(dims, skewed)),
            2 * top_share(generate_fact_table(dims, uniform)));
}

TEST(Generator, MeasuresArePositive) {
  GeneratorConfig config;
  config.rows = 300;
  const FactTable t = generate_fact_table(tiny_model_dimensions(), config);
  for (int m : t.schema().measure_columns()) {
    for (std::size_t r = 0; r < t.row_count(); ++r) {
      EXPECT_GT(t.measure_column(m)[r], 0.0);
    }
  }
}

TEST(Generator, PaperModelTableShape) {
  const FactTable t = generate_paper_model_table(100, 3);
  EXPECT_EQ(t.row_count(), 100u);
  EXPECT_EQ(t.schema().column_count(), 16);  // 12 dim + 4 measures
  EXPECT_EQ(t.schema().text_columns().size(), 2u);
  EXPECT_EQ(t.schema().row_bytes(), 80u);  // 4 GB at ~50M rows, as in §IV
}

}  // namespace
}  // namespace holap
