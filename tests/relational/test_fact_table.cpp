#include "relational/fact_table.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

FactTable make_table() {
  return FactTable(
      make_star_schema(tiny_model_dimensions(), {"sales"}, {}));
}

TEST(FactTable, StartsEmpty) {
  const FactTable t = make_table();
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.size_bytes(), 0u);
}

TEST(FactTable, AppendAndReadBack) {
  FactTable t = make_table();
  const std::vector<std::int32_t> codes{0, 1, 2, 3, 1, 2, 4, 8, 0, 0, 1, 2};
  const std::vector<double> measures{42.5};
  t.append_row(codes, measures);
  ASSERT_EQ(t.row_count(), 1u);
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(t.dim_column(c)[0], codes[static_cast<std::size_t>(c)]);
  }
  EXPECT_DOUBLE_EQ(t.measure_column(12)[0], 42.5);
}

TEST(FactTable, SizeBytesCountsColumnsExactly) {
  FactTable t = make_table();
  const std::vector<std::int32_t> codes(12, 0);
  const std::vector<double> measures{1.0};
  for (int i = 0; i < 10; ++i) t.append_row(codes, measures);
  // 12 dim columns * 4 B + 1 measure * 8 B = 56 B per row.
  EXPECT_EQ(t.size_bytes(), 10u * 56u);
  EXPECT_EQ(t.schema().row_bytes(), 56u);
}

TEST(FactTable, AppendRejectsWrongArity) {
  FactTable t = make_table();
  const std::vector<std::int32_t> short_codes(3, 0);
  const std::vector<double> measures{1.0};
  EXPECT_THROW(t.append_row(short_codes, measures), InvalidArgument);
  const std::vector<std::int32_t> codes(12, 0);
  const std::vector<double> no_measures;
  EXPECT_THROW(t.append_row(codes, no_measures), InvalidArgument);
}

TEST(FactTable, DimLevelColumnConvenience) {
  FactTable t = make_table();
  std::vector<std::int32_t> codes(12, 0);
  codes[static_cast<std::size_t>(t.schema().dimension_column(1, 2))] = 5;
  t.append_row(codes, std::vector<double>{1.0});
  EXPECT_EQ(t.dim_level_column(1, 2)[0], 5);
}

TEST(FactTable, ColumnKindAccessorsEnforced) {
  FactTable t = make_table();
  EXPECT_THROW(t.dim_column(12), InvalidArgument);      // 12 is the measure
  EXPECT_THROW(t.measure_column(0), InvalidArgument);   // 0 is a dim column
}

TEST(FactTable, BulkLoadValidatesRaggedColumns) {
  FactTable t = make_table();
  t.mutable_dim_column(0).push_back(1);
  EXPECT_THROW(t.finalize_bulk_load(), InvalidArgument);
  for (int c = 1; c < 12; ++c) t.mutable_dim_column(c).push_back(1);
  t.mutable_measure_column(12).push_back(2.0);
  t.finalize_bulk_load();
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace holap
