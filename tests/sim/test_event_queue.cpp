#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace holap {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule(Seconds{3.0}, [&] { order.push_back(3); });
  eq.schedule(Seconds{1.0}, [&] { order.push_back(1); });
  eq.schedule(Seconds{2.0}, [&] { order.push_back(2); });
  eq.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), Seconds{3.0});
}

TEST(EventQueue, TiesBreakBySubmissionOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eq.schedule(Seconds{1.0}, [&, i] { order.push_back(i); });
  }
  eq.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue eq;
  std::vector<double> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(eq.now().value());
    if (fire_times.size() < 4) eq.schedule(eq.now() + Seconds{1.0}, chain);
  };
  eq.schedule(Seconds{0.5}, chain);
  eq.run_all();
  EXPECT_EQ(fire_times, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue eq;
  eq.schedule(Seconds{2.0}, [&] {
    EXPECT_THROW(eq.schedule(Seconds{1.0}, [] {}), InvalidArgument);
  });
  eq.run_all();
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.run_next());
  EXPECT_TRUE(eq.empty());
}

TEST(FifoServer, JobsRunBackToBack) {
  EventQueue eq;
  FifoServer server(&eq);
  std::vector<double> completions;
  auto record = [&](Seconds t) { completions.push_back(t.value()); };
  server.submit(Seconds{2.0}, record);
  server.submit(Seconds{3.0}, record);
  server.submit(Seconds{1.0}, record);
  eq.run_all();
  EXPECT_EQ(completions, (std::vector<double>{2.0, 5.0, 6.0}));
  EXPECT_EQ(server.jobs(), 3u);
  EXPECT_DOUBLE_EQ(server.busy_time().value(), 6.0);
}

TEST(FifoServer, IdleGapResetsStart) {
  EventQueue eq;
  FifoServer server(&eq);
  std::vector<double> completions;
  server.submit(Seconds{1.0}, [&](Seconds t) { completions.push_back(t.value()); });
  // A later arrival (scheduled at t=5) starts at 5, not at 1.
  eq.schedule(Seconds{5.0}, [&] {
    server.submit(Seconds{2.0}, [&](Seconds t) { completions.push_back(t.value()); });
  });
  eq.run_all();
  EXPECT_EQ(completions, (std::vector<double>{1.0, 7.0}));
  EXPECT_DOUBLE_EQ(server.busy_time().value(), 3.0);
}

TEST(FifoServer, ZeroServiceAllowedNegativeRejected) {
  EventQueue eq;
  FifoServer server(&eq);
  bool ran = false;
  server.submit(Seconds{0.0}, [&](Seconds) { ran = true; });
  EXPECT_THROW(server.submit(Seconds{-1.0}, [](Seconds) {}), InvalidArgument);
  eq.run_all();
  EXPECT_TRUE(ran);
}

TEST(FifoServer, TwoServersIndependent) {
  EventQueue eq;
  FifoServer a(&eq), b(&eq);
  std::vector<std::pair<char, double>> log;
  a.submit(Seconds{2.0}, [&](Seconds t) { log.emplace_back('a', t.value()); });
  b.submit(Seconds{1.0}, [&](Seconds t) { log.emplace_back('b', t.value()); });
  eq.run_all();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], std::make_pair('b', 1.0));
  EXPECT_EQ(log[1], std::make_pair('a', 2.0));
}

TEST(FifoServer, MD1MeanWaitMatchesQueueingTheory) {
  // Validate the DES core against closed-form queueing theory: an M/D/1
  // queue (Poisson arrivals, deterministic service D, one server) has
  // mean waiting time Wq = rho * D / (2 * (1 - rho)).
  constexpr double kService = 0.01;
  constexpr double kRate = 60.0;                  // rho = 0.6
  constexpr double kRho = kRate * kService;
  constexpr int kJobs = 60'000;

  EventQueue eq;
  FifoServer server(&eq);
  SplitMix64 rng(20260707);
  double arrival = 0.0;
  double total_wait = 0.0;
  for (int i = 0; i < kJobs; ++i) {
    arrival += rng.exponential(kRate);
    eq.schedule(Seconds{arrival}, [&, arrival] {
      server.submit(Seconds{kService}, [&, arrival](Seconds done) {
        total_wait += done.value() - arrival - kService;
      });
    });
  }
  eq.run_all();
  const double mean_wait = total_wait / kJobs;
  const double expected = kRho * kService / (2.0 * (1.0 - kRho));
  EXPECT_NEAR(mean_wait, expected, 0.1 * expected);
}

TEST(MultiFifoServer, SingleWorkerEquivalentToFifoServer) {
  EventQueue eq;
  FifoServer single(&eq);
  MultiFifoServer pool(&eq, 1);
  std::vector<double> a, b;
  SplitMix64 rng(5);
  for (int i = 0; i < 50; ++i) {
    const double service = rng.uniform_real(0.001, 0.02);
    single.submit(Seconds{service}, [&](Seconds t) { a.push_back(t.value()); });
    pool.submit(Seconds{service}, [&](Seconds t) { b.push_back(t.value()); });
  }
  eq.run_all();
  EXPECT_EQ(a, b);
}

TEST(MultiFifoServer, WorkersRunInParallel) {
  EventQueue eq;
  MultiFifoServer pool(&eq, 3);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    pool.submit(Seconds{1.0}, [&](Seconds t) { completions.push_back(t.value()); });
  }
  eq.run_all();
  // Three equal jobs on three workers all finish at t=1.
  EXPECT_EQ(completions, (std::vector<double>{1.0, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(pool.busy_time().value(), 3.0);
  EXPECT_EQ(pool.workers(), 3);
}

TEST(MultiFifoServer, KWorkersKeepFifoStartOrder) {
  EventQueue eq;
  MultiFifoServer pool(&eq, 2);
  std::vector<int> finish_order;
  // Job 0 long, job 1 short, job 2 short: with 2 workers, job 1 finishes
  // first, then job 2 (started on the worker job 1 freed), then job 0.
  pool.submit(Seconds{1.0}, [&](Seconds) { finish_order.push_back(0); });
  pool.submit(Seconds{0.2}, [&](Seconds) { finish_order.push_back(1); });
  pool.submit(Seconds{0.2}, [&](Seconds) { finish_order.push_back(2); });
  eq.run_all();
  EXPECT_EQ(finish_order, (std::vector<int>{1, 2, 0}));
}

}  // namespace
}  // namespace holap
