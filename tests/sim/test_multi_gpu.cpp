// Multi-device extension: per-device dispatch stages in the simulator and
// the scheduler's modeled launch clock.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace holap {
namespace {

SimResult run_gpu_only(int devices, Seconds modeled_dispatch,
                       int clients = 64) {
  ScenarioOptions o;
  o.enable_cpu = false;
  o.text_probability = 0.0;
  o.cube_levels = {0, 1, 2, 3};
  o.gpu_devices = devices;
  o.modeled_gpu_dispatch = modeled_dispatch;
  const PaperScenario s{o};
  const auto queries = s.make_workload(2000);
  const auto p = s.make_policy();
  SimConfig c;
  c.closed_clients = clients;
  c.gpu_dispatch_overhead = Seconds{0.0145};
  c.gpu_queue_device = s.gpu_queue_device_map();
  return run_simulation(*p, queries, c);
}

TEST(MultiGpu, ScenarioExpandsQueuesPerDevice) {
  ScenarioOptions o;
  o.gpu_devices = 3;
  const PaperScenario s{std::move(o)};
  EXPECT_EQ(s.effective_gpu_partitions().size(), 18u);
  const auto map = s.gpu_queue_device_map();
  ASSERT_EQ(map.size(), 18u);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[6], 1);
  EXPECT_EQ(map[17], 2);
  EXPECT_EQ(s.make_policy()->gpu_queue_count(), 18);
}

TEST(MultiGpu, DispatchAwareSchedulerScalesAcrossDevices) {
  const double one = run_gpu_only(1, Seconds{0.0145}).throughput_qps;
  const double two = run_gpu_only(2, Seconds{0.0145}).throughput_qps;
  EXPECT_GT(two, one * 1.8);
}

TEST(MultiGpu, DispatchBlindSchedulerDoesNot) {
  // The paper's dispatch-blind clocks keep stuffing the first device's
  // slow queues; extra devices buy nothing (the motivation for modeling
  // the launch stage).
  const double one = run_gpu_only(1, Seconds{0.0}).throughput_qps;
  const double two = run_gpu_only(2, Seconds{0.0}).throughput_qps;
  EXPECT_LT(two, one * 1.2);
}

TEST(MultiGpu, ModeledDispatchImprovesDeadlineAwareness) {
  // Even on one device, modeling the launch stage makes estimates honest:
  // at saturation the blind scheduler believes queues are feasible when
  // they are not.
  const SimResult blind = run_gpu_only(1, Seconds{0.0});
  const SimResult aware = run_gpu_only(1, Seconds{0.0145});
  EXPECT_GE(aware.deadline_hit_rate, blind.deadline_hit_rate);
}

TEST(MultiGpu, QueueDeviceValidation) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(10);
  auto policy = s.make_policy();
  SimConfig c;
  c.gpu_queue_device = {0, 1};  // 6 queues need 6 entries
  EXPECT_THROW(run_simulation(*policy, queries, c), InvalidArgument);

  SchedulerConfig config;
  config.gpu_queue_device = {0, 0, 0};  // 6 partitions need 6 entries
  EXPECT_THROW(FigureTenScheduler(config, s.make_estimator()),
               InvalidArgument);
}

TEST(MultiGpu, TraceCoherenceHoldsWithModeledDispatch) {
  // With the scheduler and the simulator agreeing on the launch stage and
  // a SINGLE device, completion must equal the estimate exactly. (With
  // several devices the DES's one global-FIFO-per-device dispatcher can
  // reorder relative to per-queue clocks, so exactness is single-device.)
  ScenarioOptions o;
  o.enable_cpu = false;
  o.text_probability = 0.0;
  o.cube_levels = {0, 1, 2, 3};
  o.gpu_devices = 1;
  o.modeled_gpu_dispatch = Seconds{0.0145};
  o.feedback = false;
  const PaperScenario s{o};
  const auto queries = s.make_workload(300);
  const auto p = s.make_policy();
  SimConfig c;
  c.closed_clients = 4;
  c.gpu_dispatch_overhead = Seconds{0.0145};
  c.cpu_overhead = Seconds{0.0};
  c.record_trace = true;
  c.gpu_queue_device = s.gpu_queue_device_map();
  const SimResult r = run_simulation(*p, queries, c);
  std::size_t coherent = 0;
  for (const QueryTrace& t : r.trace) {
    if (abs(t.completed - t.response_est).value() < 1e-9) ++coherent;
  }
  // The scheduler assumes dispatch in scheduling order; the DES dispatches
  // in arrival order at the stage. With few clients these coincide for
  // the overwhelming majority of queries.
  EXPECT_GT(coherent, r.trace.size() * 9 / 10);
}

}  // namespace
}  // namespace holap
