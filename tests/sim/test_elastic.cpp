// Elastic repartitioning scenarios (ctest label `elastic`): timed
// merge/split operations and the backlog-driven trigger replayed
// deterministically on the sim clock, with every query — including the
// ones drained off a repartitioned queue — resolving to a typed outcome.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace holap {
namespace {

/// Two simulated devices, each with its own {1,1,2,2,4,4} ladder and
/// dispatch stage; the catalog prices off-home transfers into T_R.
ScenarioOptions elastic_options() {
  ScenarioOptions opts;
  opts.gpu_devices = 2;
  opts.modeled_gpu_dispatch = Seconds{0.0145};
  opts.topology.enabled = true;
  opts.topology.home_device = 0;
  opts.topology.transfer_unit = Seconds{0.002};
  return opts;
}

/// Options for the timed-operation tests: no dispatch stage, no text, so
/// the 800 Q/s burst queues at the partition servers themselves and the
/// merge provably drains queued work (with the serialised dispatcher in
/// the path the backlog would sit at the dispatcher instead).
ScenarioOptions timed_options() {
  ScenarioOptions opts = elastic_options();
  opts.modeled_gpu_dispatch = Seconds{};
  opts.text_probability = 0.0;
  return opts;
}

SimConfig burst_config() {
  SimConfig config;
  // A burst well past the published hybrid rate: every queue carries
  // load when the repartitions land, so the drain hits real work.
  config.arrival_rate = 800.0;
  config.record_trace = true;
  config.gpu_dispatch_overhead = Seconds{};
  return config;
}

/// Merge device 0's narrow pair mid-burst, split it back once the tail
/// of the burst is draining.
std::vector<TimedRepartition> merge_then_split() {
  RepartitionDecision merge;
  merge.kind = RepartitionDecision::Kind::kMerge;
  merge.device = 0;
  merge.keeper = 0;
  merge.donor = 1;
  RepartitionDecision split;
  split.kind = RepartitionDecision::Kind::kSplit;
  split.device = 0;
  split.keeper = 0;
  split.donor = 1;
  return {{Seconds{0.35}, merge}, {Seconds{1.6}, split}};
}

/// Exactly one typed outcome per query, by counter precedence.
enum class Outcome : std::uint8_t { kCompleted, kExhausted, kRejected, kShed };

std::vector<Outcome> outcomes_of(const SimResult& r) {
  std::vector<Outcome> out;
  out.reserve(r.trace.size());
  for (const QueryTrace& t : r.trace) {
    if (t.completed > Seconds{}) {
      out.push_back(Outcome::kCompleted);
    } else if (t.exhausted) {
      out.push_back(Outcome::kExhausted);
    } else if (t.rejected) {
      out.push_back(Outcome::kRejected);
    } else if (t.shed) {
      out.push_back(Outcome::kShed);
    } else {
      ADD_FAILURE() << "query " << t.index << " resolved to no outcome";
    }
  }
  return out;
}

TEST(Elastic, TimedRepartitionRequiresADeviceCatalog) {
  const PaperScenario s{ScenarioOptions{}};  // no topology -> no catalog
  const auto queries = s.make_workload(10);
  auto policy = s.make_policy();
  SimConfig config;
  config.closed_clients = 4;
  config.timed_repartitions = merge_then_split();
  EXPECT_THROW(run_simulation(*policy, queries, config), InvalidArgument);
}

TEST(Elastic, TimedMergeAndSplitMidBurstResolveEveryQueryTyped) {
  const PaperScenario s{timed_options()};
  const auto queries = s.make_workload(500);
  auto policy = s.make_policy();
  SimConfig config = burst_config();
  config.gpu_queue_device = s.gpu_queue_device_map();
  config.timed_repartitions = merge_then_split();
  const SimResult r = run_simulation(*policy, queries, config);

  EXPECT_EQ(r.repartition_merges, 1u);
  EXPECT_EQ(r.repartition_splits, 1u);
  // The merge landed while the burst had queued work on the narrow pair.
  EXPECT_GT(r.repartition_drained, 0u);
  // Conservation: every query — drained and re-placed ones included —
  // resolves to exactly one typed outcome.
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                r.exhausted_retries,
            queries.size());
  const std::vector<Outcome> outcomes = outcomes_of(r);
  ASSERT_EQ(outcomes.size(), queries.size());
  std::size_t completed = 0;
  for (const Outcome o : outcomes) completed += o == Outcome::kCompleted;
  EXPECT_EQ(completed, r.completed);

  // End-of-run device gauges: both devices reported, the operations and
  // the drain attributed to device 0, and the split restored the ladder.
  ASSERT_EQ(r.devices.size(), 2u);
  EXPECT_EQ(r.devices[0].merges, 1u);
  EXPECT_EQ(r.devices[0].splits, 1u);
  EXPECT_EQ(r.devices[0].drained, r.repartition_drained);
  EXPECT_EQ(r.devices[0].active_queues, 6);
  EXPECT_EQ(r.devices[1].merges, 0u);
  EXPECT_EQ(r.devices[1].active_queues, 6);
  EXPECT_EQ(r.devices[0].total_sms, r.devices[1].total_sms);
  EXPECT_EQ(r.device_latency.size(), 2u);
}

TEST(Elastic, RepartitionScenarioIsDeterministicAcrossRuns) {
  const PaperScenario s{timed_options()};
  const auto queries = s.make_workload(500);
  auto run_once = [&]() {
    auto policy = s.make_policy();
    SimConfig config = burst_config();
    config.gpu_queue_device = s.gpu_queue_device_map();
    config.timed_repartitions = merge_then_split();
    return run_simulation(*policy, queries, config);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  EXPECT_EQ(a.repartition_merges, b.repartition_merges);
  EXPECT_EQ(a.repartition_splits, b.repartition_splits);
  EXPECT_EQ(a.repartition_drained, b.repartition_drained);
  EXPECT_EQ(a.cpu_queries, b.cpu_queries);
  EXPECT_EQ(a.gpu_queries, b.gpu_queries);
  // Not just the same counts — the same per-query outcomes.
  EXPECT_EQ(outcomes_of(a), outcomes_of(b));
  EXPECT_GT(a.repartition_drained, 0u);
}

TEST(Elastic, BacklogTriggerMergesUnderSustainedSaturation) {
  // The ElasticPartitioner trigger, not timed operations: saturate two
  // devices in a closed loop so per-queue backlog stays over the merge
  // threshold and the partitioner folds narrow siblings mid-run.
  ScenarioOptions opts = elastic_options();
  opts.elastic.enabled = true;
  opts.elastic.check_interval = Seconds{0.05};
  opts.elastic.sustain_checks = 3;
  opts.elastic.merge_backlog = Seconds{0.03};
  opts.elastic.split_backlog = Seconds{0.003};
  const PaperScenario s{opts};
  const auto queries = s.make_workload(800);
  auto policy = s.make_policy();
  ASSERT_NE(policy->elastic_policy(), nullptr);
  SimConfig config;
  config.closed_clients = 64;
  config.record_trace = true;
  config.gpu_queue_device = s.gpu_queue_device_map();
  const SimResult r = run_simulation(*policy, queries, config);

  EXPECT_GT(r.repartition_merges, 0u);
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                r.exhausted_retries,
            queries.size());
  const std::vector<Outcome> outcomes = outcomes_of(r);
  ASSERT_EQ(outcomes.size(), queries.size());
  // The gauges attribute every applied operation to some device.
  ASSERT_EQ(r.devices.size(), 2u);
  EXPECT_EQ(r.devices[0].merges + r.devices[1].merges, r.repartition_merges);
  EXPECT_EQ(r.devices[0].splits + r.devices[1].splits, r.repartition_splits);
  EXPECT_GT(r.throughput_qps, 0.0);
}

TEST(Elastic, SingleDeviceCatalogRunMatchesTheSeedBitForBit) {
  // One device, zero transfer, no repartitions: the catalog-enabled
  // scenario must reproduce the distance-blind run exactly — the
  // disabled path is unchanged by the elastic machinery.
  const auto queries = PaperScenario{ScenarioOptions{}}.make_workload(300);
  SimConfig config;
  config.closed_clients = 16;
  const PaperScenario plain{ScenarioOptions{}};
  ScenarioOptions catalogued_opts;
  catalogued_opts.topology.enabled = true;
  catalogued_opts.topology.transfer_unit = Seconds{0.01};  // home: no hop
  const PaperScenario catalogued{catalogued_opts};
  auto p1 = plain.make_policy();
  auto p2 = catalogued.make_policy();
  const SimResult a = run_simulation(*p1, queries, config);
  const SimResult b = run_simulation(*p2, queries, config);
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  EXPECT_EQ(a.cpu_queries, b.cpu_queries);
  EXPECT_EQ(a.gpu_queries, b.gpu_queries);
  EXPECT_DOUBLE_EQ(a.mean_latency.value(), b.mean_latency.value());
  // Only the gauges differ: the catalog run reports its device.
  EXPECT_TRUE(a.devices.empty());
  ASSERT_EQ(b.devices.size(), 1u);
  EXPECT_EQ(b.devices[0].active_queues, 6);
  EXPECT_EQ(b.devices[0].merges, 0u);
}

}  // namespace
}  // namespace holap
