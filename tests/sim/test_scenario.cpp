#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TEST(Scenario, DefaultsMatchSection4Configuration) {
  const PaperScenario s{ScenarioOptions{}};
  EXPECT_EQ(s.dimensions().size(), 3u);
  EXPECT_EQ(s.schema().column_count(), 16);
  EXPECT_EQ(s.gpu_total_columns(), 16);
  EXPECT_DOUBLE_EQ(s.gpu_table_mb().value(), 4096.0);
  EXPECT_EQ(s.catalog().levels(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scenario, WorkloadIsDeterministicAndValid) {
  const PaperScenario s{ScenarioOptions{}};
  const auto a = s.make_workload(50);
  const auto b = s.make_workload(50);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NO_THROW(validate_query(a[i], s.dimensions(), s.schema()));
    EXPECT_EQ(to_string(a[i], s.dimensions()),
              to_string(b[i], s.dimensions()));
  }
}

TEST(Scenario, PolicyWiredToScenario) {
  const PaperScenario s{ScenarioOptions{}};
  const auto policy = s.make_policy();
  EXPECT_STREQ(policy->name(), "figure10");
  EXPECT_EQ(policy->gpu_queue_count(), 6);
}

TEST(Scenario, TextDisabledProducesNoTranslatableQueries) {
  ScenarioOptions opts;
  opts.text_probability = 0.0;
  const PaperScenario s{std::move(opts)};
  for (const auto& q : s.make_workload(200)) {
    EXPECT_FALSE(q.needs_translation());
  }
}

TEST(Scenario, Table1LevelsRestrictResolution) {
  ScenarioOptions opts;
  opts.cube_levels = {0, 1, 2};
  opts.level_weights = {0.1, 0.2, 0.7, 0.0};
  const PaperScenario s{std::move(opts)};
  for (const auto& q : s.make_workload(200)) {
    EXPECT_LE(q.required_resolution(), 2);
    EXPECT_TRUE(s.catalog().can_answer(q));
  }
}

TEST(Scenario, EstimatorSeesScenarioCubes) {
  ScenarioOptions opts;
  opts.cube_levels = {0, 1};
  const PaperScenario s{std::move(opts)};
  const CostEstimator est = s.make_estimator();
  Query fine;
  fine.conditions.push_back({0, 3, 0, 9, {}, {}});
  fine.measures = {12};
  EXPECT_FALSE(est.estimate(fine).cpu.has_value());
  Query coarse;
  coarse.conditions.push_back({0, 1, 0, 9, {}, {}});
  coarse.measures = {12};
  EXPECT_TRUE(est.estimate(coarse).cpu.has_value());
}

}  // namespace
}  // namespace holap
