// The estimate-coherence property: under a perfect model (no noise, no
// unmodeled overheads), the scheduler's queue-clock arithmetic and the
// discrete-event simulation are two formulations of the same system — so
// every query's DES completion time must EXACTLY equal the response time
// T_R the scheduler estimated when placing it (Figure 10, step 3).
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace holap {
namespace {

SimConfig perfect_config() {
  SimConfig config;
  config.cpu_overhead = Seconds{0.0};
  config.gpu_dispatch_overhead = Seconds{0.0};
  config.service_noise = 0.0;
  config.record_trace = true;
  return config;
}

class TraceCoherence : public ::testing::TestWithParam<double> {};

TEST_P(TraceCoherence, CompletionEqualsEstimateUnderPerfectModel) {
  ScenarioOptions opts;
  opts.feedback = false;  // no-op here anyway; isolate the pure clocks
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(500);
  auto policy = s.make_policy();
  SimConfig config = perfect_config();
  config.arrival_rate = GetParam();  // 0 = closed loop
  const SimResult r = run_simulation(*policy, queries, config);
  ASSERT_EQ(r.trace.size(), queries.size());
  for (const QueryTrace& t : r.trace) {
    ASSERT_FALSE(t.rejected);
    EXPECT_NEAR(t.completed.value(), t.response_est.value(), 1e-9)
        << "query " << t.index << " queue kind " << t.queue.kind;
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, TraceCoherence,
                         ::testing::Values(0.0, 50.0, 200.0),
                         [](const auto& suite_info) {
                           return suite_info.param == 0.0
                                      ? std::string("closed")
                                      : "open" + std::to_string(static_cast<
                                                 int>(suite_info.param));
                         });

TEST(Trace, RecordsRoutingAndDeadlines) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  SimConfig config = perfect_config();
  config.closed_clients = 8;
  const SimResult r = run_simulation(*policy, queries, config);
  std::size_t cpu = 0, gpu = 0, translated = 0, met = 0;
  for (const QueryTrace& t : r.trace) {
    cpu += t.queue.kind == QueueRef::kCpu;
    gpu += t.queue.kind == QueueRef::kGpu;
    translated += t.translated;
    met += t.met_deadline;
    EXPECT_GE(t.completed, t.submitted);
  }
  EXPECT_EQ(cpu, r.cpu_queries);
  EXPECT_EQ(gpu, r.gpu_queries);
  EXPECT_EQ(translated, r.translated_queries);
  EXPECT_EQ(met, r.met_deadline);
}

TEST(Trace, DisabledByDefault) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(10);
  auto policy = s.make_policy();
  SimConfig config;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_TRUE(r.trace.empty());
}

TEST(Trace, OverheadsBreakCoherencePreciselyWhereExpected) {
  // With an unmodeled dispatch overhead, GPU queries complete LATER than
  // estimated while CPU queries stay exact — the trace localises the
  // model error to the right partition class.
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  SimConfig config = perfect_config();
  config.gpu_dispatch_overhead = Seconds{0.02};
  const SimResult r = run_simulation(*policy, queries, config);
  for (const QueryTrace& t : r.trace) {
    if (t.queue.kind == QueueRef::kGpu) {
      EXPECT_GT(t.completed.value(), t.response_est.value() - 1e-12) << t.index;
    }
  }
}

}  // namespace
}  // namespace holap
