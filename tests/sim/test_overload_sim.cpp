// Overload scenarios in the discrete-event plane: a seeded arrival burst
// far past the sustainable rate, admission control shedding the overflow
// deterministically, and FaultInjector's slow-partition multipliers.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace holap {
namespace {

ScenarioOptions overload_options() {
  ScenarioOptions opts;
  opts.admission.mode = AdmissionControl::Mode::kReject;
  opts.admission.slack_factor = 0.0;
  // Tighter than the paper's 0.25 s: the scheduler's clocks only model
  // partition service, not the serialised dispatch stage, so the modeled
  // backlog climbs slower than the real one. 0.1 s makes the estimated
  // backlog itself cross T_D within the burst.
  opts.deadline = Seconds{0.1};
  return opts;
}

SimConfig burst_config() {
  SimConfig config;
  // A sustained burst roughly 10x the published hybrid rate (~110 Q/s):
  // the backlog must grow past every deadline within a few hundred
  // arrivals, so admission control has real work to do.
  config.arrival_rate = 1100.0;
  config.record_trace = true;
  return config;
}

std::vector<std::size_t> shed_indices(const SimResult& r) {
  std::vector<std::size_t> shed;
  for (const QueryTrace& t : r.trace) {
    if (t.shed) shed.push_back(t.index);
  }
  return shed;
}

TEST(OverloadSim, BurstShedsAndEveryQueryIsAccountedFor) {
  const PaperScenario s{overload_options()};
  const auto queries = s.make_workload(800);
  auto policy = s.make_policy();
  const SimResult r = run_simulation(*policy, queries, burst_config());
  EXPECT_GT(r.shed_at_admission, 0u) << "a 10x burst must shed";
  EXPECT_GT(r.completed, 0u) << "admission must not shed everything";
  // Conservation: every query either completed, was rejected outright, or
  // was shed at admission — nothing lost, nothing double-counted.
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission, queries.size());
}

TEST(OverloadSim, ShedSetIsDeterministicAcrossRuns) {
  const PaperScenario s{overload_options()};
  const auto queries = s.make_workload(800);
  auto p1 = s.make_policy();
  auto p2 = s.make_policy();
  const SimResult a = run_simulation(*p1, queries, burst_config());
  const SimResult b = run_simulation(*p2, queries, burst_config());
  EXPECT_EQ(a.shed_at_admission, b.shed_at_admission);
  EXPECT_EQ(a.completed, b.completed);
  // Not just the same count — the same queries.
  EXPECT_EQ(shed_indices(a), shed_indices(b));
  EXPECT_GT(a.shed_at_admission, 0u);
}

TEST(OverloadSim, AdmissionKeepsLatencyBoundedUnderBurst) {
  // The point of shedding: whoever is admitted still gets a bounded
  // response, instead of everyone queueing toward infinity.
  const PaperScenario strict{overload_options()};
  ScenarioOptions open_opts;  // admission off: the paper's behaviour
  open_opts.deadline = Seconds{0.1};  // same T_D, only the gate differs
  const PaperScenario open{std::move(open_opts)};
  const auto queries = strict.make_workload(800);
  auto strict_policy = strict.make_policy();
  auto open_policy = open.make_policy();
  SimConfig config = burst_config();
  config.record_trace = false;
  const SimResult gated = run_simulation(*strict_policy, queries, config);
  const SimResult ungated = run_simulation(*open_policy, queries, config);
  EXPECT_EQ(ungated.shed_at_admission, 0u);
  // With zero slack, every admitted query was estimated to meet T_D; the
  // ungated system's tail blows far past it under the same burst.
  EXPECT_LT(gated.p99_latency, ungated.p99_latency);
  EXPECT_GT(gated.deadline_hit_rate, ungated.deadline_hit_rate);
}

TEST(OverloadSim, SlowPartitionFaultInflatesServiceTimes) {
  ScenarioOptions opts;
  opts.enable_gpu = false;  // isolate the CPU server
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(150);
  SimConfig config;
  config.closed_clients = 4;
  config.cpu_overhead = Seconds{0.0};
  config.gpu_dispatch_overhead = Seconds{0.0};

  auto clean_policy = s.make_policy();
  const SimResult clean = run_simulation(*clean_policy, queries, config);

  FaultInjector fault;
  fault.set_service_multiplier(FaultInjector::cpu_ref(), 5.0);
  config.fault = &fault;
  auto slow_policy = s.make_policy();
  const SimResult slow = run_simulation(*slow_policy, queries, config);

  EXPECT_EQ(slow.completed, clean.completed);
  // Every CPU service took 5x longer; the makespan must reflect it.
  EXPECT_GT(slow.makespan.value(), clean.makespan.value() * 4.0);
  EXPECT_NEAR(slow.partitions[0].busy.value(),
              clean.partitions[0].busy.value() * 5.0,
              clean.partitions[0].busy.value() * 0.01);
}

TEST(OverloadSim, FaultedRunsStayDeterministic) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(200);
  SimConfig config;
  config.closed_clients = 8;
  FaultInjector fault;
  fault.set_service_multiplier({QueueRef::kGpu, 0}, 3.0);
  fault.set_service_multiplier(FaultInjector::translation_ref(), 2.0);
  config.fault = &fault;
  auto p1 = s.make_policy();
  auto p2 = s.make_policy();
  const SimResult a = run_simulation(*p1, queries, config);
  const SimResult b = run_simulation(*p2, queries, config);
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  EXPECT_EQ(a.cpu_queries, b.cpu_queries);
}

}  // namespace
}  // namespace holap
