// Seeded chaos scenarios (ctest label `chaos`): partition crashes,
// slowdowns and timed recoveries replayed deterministically on the sim
// clock, with every affected query resolving to a typed outcome.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace holap {
namespace {

ScenarioOptions chaos_options() {
  ScenarioOptions opts;
  opts.fault_tolerance.enabled = true;
  // Under the 800 Q/s burst every query is far past its 250 ms deadline
  // when the crash lands; the default gate (0: retry only before the
  // deadline) would shed every faulted query. Chaos runs care about the
  // failover machinery, not the deadline, so admit late retries.
  opts.fault_tolerance.retry.deadline_slack_gate = -100.0;
  return opts;
}

SimConfig burst_config() {
  SimConfig config;
  // A burst well past the published hybrid rate: every partition class
  // carries load when the crash lands, so the fault hits real work.
  config.arrival_rate = 800.0;
  config.record_trace = true;
  return config;
}

/// Crash GPU queue 4 — the first 4-SM partition of the paper's
/// {1,1,2,2,4,4} layout — while the burst's backlog is on it, recover it
/// 0.6 s later. Timing matters: the serial dispatcher (14 ms/launch) is
/// the bottleneck at this rate, so queue 4's work crosses into its
/// partition server from ~1.25 s on; a crash at 1.4 s drains real
/// in-flight work AND fails dispatch handoffs during the down window.
void schedule_crash_and_recovery(FaultInjector& fault) {
  fault.schedule_fault({TimedFault::Kind::kCrash,
                        QueueRef{QueueRef::kGpu, 4}, Seconds{1.4}, 1.0});
  fault.schedule_fault({TimedFault::Kind::kRecover,
                        QueueRef{QueueRef::kGpu, 4}, Seconds{2.0}, 1.0});
}

/// Exactly one typed outcome per query, by counter precedence.
enum class Outcome : std::uint8_t { kCompleted, kExhausted, kRejected, kShed };

std::vector<Outcome> outcomes_of(const SimResult& r) {
  std::vector<Outcome> out;
  out.reserve(r.trace.size());
  for (const QueryTrace& t : r.trace) {
    if (t.completed > Seconds{}) {
      out.push_back(Outcome::kCompleted);
    } else if (t.exhausted) {
      out.push_back(Outcome::kExhausted);
    } else if (t.rejected) {
      out.push_back(Outcome::kRejected);
    } else if (t.shed) {
      out.push_back(Outcome::kShed);
    } else {
      ADD_FAILURE() << "query " << t.index << " resolved to no outcome";
    }
  }
  return out;
}

TEST(Chaos, GpuCrashMidBurstEveryQueryResolvesTyped) {
  const PaperScenario s{chaos_options()};
  const auto queries = s.make_workload(500);
  auto policy = s.make_policy();
  FaultInjector fault;
  schedule_crash_and_recovery(fault);
  SimConfig config = burst_config();
  config.fault = &fault;
  const SimResult r = run_simulation(*policy, queries, config);

  // The crash struck in-flight or queued work.
  EXPECT_GT(r.partition_faults, 0u);
  EXPECT_GT(r.retries, 0u);
  // Failover worked: queries completed on a later attempt.
  EXPECT_GT(r.failed_over, 0u);
  // Conservation: every query resolves to exactly one typed outcome.
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                r.exhausted_retries,
            queries.size());
  EXPECT_LE(r.failed_over, r.completed);
  const std::vector<Outcome> outcomes = outcomes_of(r);
  ASSERT_EQ(outcomes.size(), queries.size());
  std::size_t completed = 0;
  for (const Outcome o : outcomes) completed += o == Outcome::kCompleted;
  EXPECT_EQ(completed, r.completed);
  // The crashed partition recovered; its end-of-run health gauge agrees.
  const PartitionCounters& gpu4 = r.partitions[r.partitions.size() - 2];
  EXPECT_EQ(gpu4.name, "gpu4");
  EXPECT_NE(gpu4.health, "failed");
  EXPECT_GT(gpu4.failed + gpu4.retried + gpu4.failovers, 0u);
  EXPECT_GT(gpu4.breaker_transitions, 0u);
}

TEST(Chaos, CrashRecoveryScenarioIsDeterministicAcrossRuns) {
  const PaperScenario s{chaos_options()};
  const auto queries = s.make_workload(500);
  SimConfig config = burst_config();
  auto run_once = [&]() {
    auto policy = s.make_policy();
    FaultInjector fault;
    schedule_crash_and_recovery(fault);
    SimConfig c = config;
    c.fault = &fault;
    return run_simulation(*policy, queries, c);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed_over, b.failed_over);
  EXPECT_EQ(a.exhausted_retries, b.exhausted_retries);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.partition_faults, b.partition_faults);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  // Not just the same counts — the same per-query outcomes.
  EXPECT_EQ(outcomes_of(a), outcomes_of(b));
  EXPECT_GT(a.partition_faults, 0u);
}

TEST(Chaos, DeadlineRateUnderFaultStaysWithinRecordedBound) {
  // The acceptance bound for this repo: one 4-SM partition crashing
  // mid-burst (with later recovery) costs at most 0.25 of the no-fault
  // deadline-met rate.
  const PaperScenario s{chaos_options()};
  const auto queries = s.make_workload(500);
  SimConfig config = burst_config();
  config.record_trace = false;

  auto baseline_policy = s.make_policy();
  const SimResult baseline =
      run_simulation(*baseline_policy, queries, config);

  FaultInjector fault;
  schedule_crash_and_recovery(fault);
  config.fault = &fault;
  auto fault_policy = s.make_policy();
  const SimResult faulted = run_simulation(*fault_policy, queries, config);

  EXPECT_GT(baseline.deadline_hit_rate, 0.0);
  EXPECT_GE(faulted.deadline_hit_rate, baseline.deadline_hit_rate - 0.25);
  // Fault tolerance must not lose queries the baseline completes.
  EXPECT_EQ(faulted.completed + faulted.rejected + faulted.shed_at_admission +
                faulted.exhausted_retries,
            queries.size());
}

TEST(Chaos, SlowdownDegradesThePartitionWithoutFailingIt) {
  const PaperScenario s{chaos_options()};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  FaultInjector fault;
  // GPU queue 0 is the slowest class and the first the ladder tasks:
  // a 50x slowdown produces overrun streaks well past error_ratio.
  fault.schedule_fault({TimedFault::Kind::kSlowdown,
                        QueueRef{QueueRef::kGpu, 0}, Seconds{0.0}, 50.0});
  SimConfig config;
  config.closed_clients = 16;
  config.fault = &fault;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_EQ(r.completed + r.rejected, queries.size());
  const PartitionCounters& gpu0 =
      r.partitions[r.partitions.size() - static_cast<std::size_t>(
                       policy->gpu_queue_count())];
  EXPECT_EQ(gpu0.name, "gpu0");
  // Degraded, not failed: the partition kept completing, only slowly.
  EXPECT_EQ(gpu0.health, "degraded");
  EXPECT_EQ(r.partition_faults, 0u);
}

TEST(Chaos, CpuCrashFailsOverToTheGpuSide) {
  const PaperScenario s{chaos_options()};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  FaultInjector fault;
  fault.schedule_fault({TimedFault::Kind::kCrash, FaultInjector::cpu_ref(),
                        Seconds{0.1}, 1.0});
  SimConfig config = burst_config();
  config.fault = &fault;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                r.exhausted_retries,
            queries.size());
  EXPECT_GT(r.partition_faults, 0u);
  EXPECT_EQ(r.partitions[0].name, "cpu");
  EXPECT_GT(r.partitions[0].failed, 0u);
  // With no recovery event the CPU stays out of service (failed) or is
  // probing via the breaker cool-down (recovering) at run end.
  EXPECT_NE(r.partitions[0].health, "healthy");
}

TEST(Chaos, FaultToleranceDisabledStillResolvesEveryQueryTyped) {
  // The same crash with fault tolerance off: no monitor, no retries —
  // affected queries resolve kExhaustedRetries on their first failure.
  ScenarioOptions opts;  // fault_tolerance.enabled = false
  const PaperScenario s{opts};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  ASSERT_EQ(policy->health_monitor(), nullptr);
  FaultInjector fault;
  fault.schedule_fault({TimedFault::Kind::kCrash,
                        QueueRef{QueueRef::kGpu, 4}, Seconds{1.4}, 1.0});
  SimConfig config = burst_config();
  config.fault = &fault;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                r.exhausted_retries,
            queries.size());
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.failed_over, 0u);
  if (r.partition_faults > 0) {
    EXPECT_GT(r.exhausted_retries, 0u);
  }
}

TEST(Chaos, NoFaultRunsAreUnchangedByTheFaultTolerancePlumbing) {
  // FT enabled but no fault events: bit-identical to the FT-disabled run
  // (the monitor only observes; multipliers stay 1).
  const auto queries = PaperScenario{ScenarioOptions{}}.make_workload(200);
  SimConfig config;
  config.closed_clients = 8;
  const PaperScenario plain{ScenarioOptions{}};
  const PaperScenario tolerant{chaos_options()};
  auto p1 = plain.make_policy();
  auto p2 = tolerant.make_policy();
  const SimResult a = run_simulation(*p1, queries, config);
  const SimResult b = run_simulation(*p2, queries, config);
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  EXPECT_EQ(a.cpu_queries, b.cpu_queries);
  EXPECT_EQ(b.partition_faults, 0u);
  EXPECT_EQ(b.failed_over, 0u);
}

}  // namespace
}  // namespace holap
