#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace holap {
namespace {

SimConfig quiet_config() {
  SimConfig config;
  config.closed_clients = 8;
  config.cpu_overhead = Seconds{0.0};
  config.gpu_dispatch_overhead = Seconds{0.0};
  return config;
}

TEST(Simulator, CompletesEveryQueryClosedLoop) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(300);
  auto policy = s.make_policy();
  const SimResult r = run_simulation(*policy, queries, quiet_config());
  EXPECT_EQ(r.completed, 300u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.cpu_queries + r.gpu_queries, 300u);
  EXPECT_GT(r.throughput_qps, 0.0);
  EXPECT_GT(r.makespan, Seconds{});
}

TEST(Simulator, DeterministicAcrossRuns) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(200);
  auto p1 = s.make_policy();
  auto p2 = s.make_policy();
  const SimResult a = run_simulation(*p1, queries, quiet_config());
  const SimResult b = run_simulation(*p2, queries, quiet_config());
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.cpu_queries, b.cpu_queries);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
}

TEST(Simulator, OpenLoopCompletesEverything) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(200);
  auto policy = s.make_policy();
  SimConfig config = quiet_config();
  config.arrival_rate = 50.0;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_EQ(r.completed, 200u);
  // At 50 Q/s the makespan must span roughly queries/rate seconds.
  EXPECT_GT(r.makespan, Seconds{2.0});
}

TEST(Simulator, LowArrivalRateMeetsDeadlines) {
  // An almost idle system should meet essentially every deadline.
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(100);
  auto policy = s.make_policy();
  SimConfig config = quiet_config();
  config.arrival_rate = 5.0;
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_GT(r.deadline_hit_rate, 0.95);
  EXPECT_LT(r.mean_latency, Seconds{0.25});
}

TEST(Simulator, GpuDispatchOverheadCapsThroughput) {
  ScenarioOptions opts;
  opts.enable_cpu = false;  // GPU-only
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(400);
  auto policy = s.make_policy();
  SimConfig config = quiet_config();
  config.closed_clients = 32;
  config.gpu_dispatch_overhead = Seconds{0.014};
  const SimResult r = run_simulation(*policy, queries, config);
  // The serial dispatcher bounds the system near 1/0.014 = 71 Q/s.
  EXPECT_LT(r.throughput_qps, 72.0);
  EXPECT_GT(r.dispatcher_utilization, 0.8);
}

TEST(Simulator, CpuOverheadSlowsCpuOnlySystem) {
  ScenarioOptions opts;
  opts.enable_gpu = false;
  opts.gpu_partitions.clear();
  opts.cube_levels = {0, 1, 2, 3};
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(200);
  SimConfig fast = quiet_config();
  SimConfig slow = quiet_config();
  slow.cpu_overhead = Seconds{0.05};
  auto p1 = s.make_policy();
  auto p2 = s.make_policy();
  const SimResult rf = run_simulation(*p1, queries, fast);
  const SimResult rs = run_simulation(*p2, queries, slow);
  EXPECT_GT(rf.throughput_qps, rs.throughput_qps);
}

TEST(Simulator, ServiceNoiseKeepsCompletionsAndChangesTiming) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(150);
  SimConfig noisy = quiet_config();
  noisy.service_noise = 0.3;
  auto p1 = s.make_policy();
  auto p2 = s.make_policy();
  const SimResult clean = run_simulation(*p1, queries, quiet_config());
  const SimResult jittered = run_simulation(*p2, queries, noisy);
  EXPECT_EQ(jittered.completed, 150u);
  EXPECT_NE(clean.makespan, jittered.makespan);
}

TEST(Simulator, TranslationCounted) {
  ScenarioOptions opts;
  opts.text_probability = 1.0;
  opts.enable_cpu = false;  // force everything through the GPU path
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(100);
  auto policy = s.make_policy();
  const SimResult r = run_simulation(*policy, queries, quiet_config());
  EXPECT_GT(r.translated_queries, 0u);
  EXPECT_GT(r.translation_utilization, 0.0);
}

TEST(Simulator, UtilizationsBounded) {
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(200);
  auto policy = s.make_policy();
  const SimResult r = run_simulation(*policy, queries, quiet_config());
  EXPECT_GE(r.cpu_utilization, 0.0);
  EXPECT_LE(r.cpu_utilization, 1.0 + 1e-9);
  ASSERT_EQ(r.gpu_utilization.size(), 6u);
  for (double u : r.gpu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(Simulator, RejectsEmptyWorkloadAndBadConfig) {
  const PaperScenario s{ScenarioOptions{}};
  auto policy = s.make_policy();
  EXPECT_THROW(run_simulation(*policy, {}, quiet_config()),
               InvalidArgument);
  const auto queries = s.make_workload(5);
  SimConfig bad = quiet_config();
  bad.service_noise = 1.5;
  EXPECT_THROW(run_simulation(*policy, queries, bad), InvalidArgument);
  bad = quiet_config();
  bad.closed_clients = 0;
  EXPECT_THROW(run_simulation(*policy, queries, bad), InvalidArgument);
}

TEST(Simulator, RejectedQueriesDoNotStallClosedLoop) {
  // CPU-only system with level-3 queries in the mix: those are rejected
  // but the loop must still finish the rest.
  ScenarioOptions opts;
  opts.enable_gpu = false;
  opts.gpu_partitions.clear();
  opts.cube_levels = {0, 1};  // level>=2 queries unanswerable
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(200);
  auto policy = s.make_policy();
  const SimResult r = run_simulation(*policy, queries, quiet_config());
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.completed + r.rejected, 200u);
}

}  // namespace
}  // namespace holap
