// PartitionCounters: depth bookkeeping, utilization bounds, table render.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/table_printer.hpp"

namespace holap {
namespace {

TEST(PartitionCounters, DepthTracksInFlightWork) {
  PartitionCounters c{.name = "gpu0"};
  c.on_enqueue();
  c.on_enqueue();
  c.on_enqueue();
  EXPECT_EQ(c.depth, 3u);
  EXPECT_EQ(c.max_depth, 3u);
  c.on_complete(Seconds{0.010});
  c.on_complete(Seconds{0.020});
  EXPECT_EQ(c.depth, 1u);
  EXPECT_EQ(c.max_depth, 3u);  // high-water mark survives drain
  c.on_enqueue();
  EXPECT_EQ(c.depth, 2u);
  EXPECT_EQ(c.max_depth, 3u);
  EXPECT_EQ(c.enqueued, 4u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_DOUBLE_EQ(c.busy.value(), 0.030);
}

TEST(PartitionCounters, UtilizationIsBusyOverMakespan) {
  PartitionCounters c{.name = "cpu"};
  c.on_enqueue();
  c.on_complete(Seconds{0.5});
  EXPECT_DOUBLE_EQ(c.utilization(Seconds{2.0}), 0.25);
  EXPECT_DOUBLE_EQ(c.utilization(Seconds{0.0}), 0.0);  // empty run guards
  // A serial server can never exceed 100% of the span it ran within.
  EXPECT_LE(c.utilization(Seconds{0.5}), 1.0);
}

TEST(PartitionCounters, CountersTableRendersEveryPartition) {
  std::vector<PartitionCounters> counters;
  counters.push_back({.name = "cpu"});
  counters.push_back({.name = "translation"});
  counters[0].on_enqueue();
  counters[0].on_complete(Seconds{0.25});
  std::ostringstream os;
  counters_table(counters, Seconds{1.0}).print(os, "partitions");
  const std::string out = os.str();
  EXPECT_NE(out.find("cpu"), std::string::npos);
  EXPECT_NE(out.find("translation"), std::string::npos);
  EXPECT_NE(out.find("25.0%"), std::string::npos);
}

}  // namespace
}  // namespace holap
