// TraceRecorder: record order, per-query extraction, concurrent appends.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace holap {
namespace {

TraceSpan make_span(std::uint64_t id, SpanKind kind, Seconds at) {
  TraceSpan s;
  s.query_id = id;
  s.kind = kind;
  s.start = at;
  s.end = at;
  return s;
}

TEST(TraceRecorder, SnapshotPreservesRecordOrder) {
  TraceRecorder rec;
  rec.record(make_span(0, SpanKind::kEnqueue, Seconds{0.0}));
  rec.record(make_span(1, SpanKind::kEnqueue, Seconds{0.1}));
  rec.record(make_span(0, SpanKind::kExecute, Seconds{0.2}));
  rec.record(make_span(0, SpanKind::kComplete, Seconds{0.3}));
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].query_id, 0u);
  EXPECT_EQ(spans[1].query_id, 1u);
  EXPECT_EQ(spans[2].kind, SpanKind::kExecute);
  EXPECT_EQ(spans[3].kind, SpanKind::kComplete);
}

TEST(TraceRecorder, SpansForFiltersOneQueryInOrder) {
  TraceRecorder rec;
  for (int i = 0; i < 10; ++i) {
    rec.record(make_span(static_cast<std::uint64_t>(i % 2),
                         SpanKind::kEnqueue, Seconds{0.01 * i}));
  }
  const auto zero = rec.spans_for(0);
  ASSERT_EQ(zero.size(), 5u);
  for (std::size_t i = 1; i < zero.size(); ++i) {
    EXPECT_GT(zero[i].start, zero[i - 1].start);  // record order kept
  }
  EXPECT_TRUE(rec.spans_for(99).empty());
}

TEST(TraceRecorder, SizeAndClear) {
  TraceRecorder rec;
  EXPECT_TRUE(rec.empty());
  rec.record(make_span(0, SpanKind::kEnqueue, Seconds{0.0}));
  rec.record(make_span(0, SpanKind::kComplete, Seconds{1.0}));
  EXPECT_EQ(rec.size(), 2u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, ConcurrentRecordersLoseNothing) {
  // The async executor's partition workers all record into one sink.
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(make_span(static_cast<std::uint64_t>(t),
                             SpanKind::kExecute, Seconds{0.001 * i}));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(rec.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(rec.spans_for(static_cast<std::uint64_t>(t)).size(),
              static_cast<std::size_t>(kPerThread));
  }
}

TEST(SpanKind, NamesAreStableSchema) {
  // The JSONL schema documents these exact names; renaming breaks every
  // consumer of exported traces.
  EXPECT_STREQ(to_string(SpanKind::kEnqueue), "enqueue");
  EXPECT_STREQ(to_string(SpanKind::kTranslate), "translate");
  EXPECT_STREQ(to_string(SpanKind::kDispatch), "dispatch");
  EXPECT_STREQ(to_string(SpanKind::kExecute), "execute");
  EXPECT_STREQ(to_string(SpanKind::kComplete), "complete");
}

}  // namespace
}  // namespace holap
