// JSONL export: exact round-trip, schema fields, chain validation.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace holap {
namespace {

TraceSpan sample_span() {
  TraceSpan s;
  s.query_id = 42;
  s.kind = SpanKind::kExecute;
  s.start = Seconds{0.1234567890123456789};  // exercises full double precision
  s.end = Seconds{0.2};
  s.queue = {QueueRef::kGpu, 3};
  s.estimated_response = Seconds{0.19999999999};
  s.measured_response = Seconds{0.2};
  s.deadline_slack = Seconds{-0.05};
  return s;
}

TEST(Jsonl, SingleSpanRoundTripsExactly) {
  const TraceSpan s = sample_span();
  const TraceSpan back = span_from_jsonl(to_jsonl(s));
  EXPECT_EQ(back, s);  // bit-exact doubles included
}

TEST(Jsonl, StreamRoundTripPreservesOrderAndValues) {
  std::vector<TraceSpan> spans;
  for (int i = 0; i < 50; ++i) {
    TraceSpan s = sample_span();
    s.query_id = static_cast<std::uint64_t>(i);
    s.kind = static_cast<SpanKind>(i % 5);
    s.queue = i % 2 == 0 ? QueueRef{QueueRef::kCpu, 0}
                         : QueueRef{QueueRef::kGpu, i % 6};
    s.start = Seconds{1e-9 * i};
    spans.push_back(s);
  }
  std::stringstream ss;
  write_jsonl(ss, spans);
  const auto back = read_jsonl(ss);
  ASSERT_EQ(back.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(back[i], spans[i]) << "span " << i;
  }
}

TEST(Jsonl, LinesAreSelfContainedJsonObjects) {
  const std::string line = to_jsonl(sample_span());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  for (const char* field :
       {"\"query\":", "\"span\":", "\"queue\":", "\"start\":", "\"end\":",
        "\"est_response\":", "\"measured_response\":",
        "\"deadline_slack\":"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

TEST(Jsonl, MalformedLinesThrow) {
  EXPECT_THROW(span_from_jsonl("{}"), InvalidArgument);
  EXPECT_THROW(span_from_jsonl("not json"), InvalidArgument);
  EXPECT_THROW(
      span_from_jsonl(
          "{\"query\":1,\"span\":\"warp\",\"queue\":\"cpu\",\"start\":0,"
          "\"end\":0,\"est_response\":0,\"measured_response\":0,"
          "\"deadline_slack\":0}"),
      Error);  // unknown span kind
  EXPECT_THROW(
      span_from_jsonl(
          "{\"query\":1,\"span\":\"execute\",\"queue\":\"tpu0\","
          "\"start\":0,\"end\":0,\"est_response\":0,"
          "\"measured_response\":0,\"deadline_slack\":0}"),
      Error);  // unknown queue
}

TEST(Jsonl, ReadSkipsBlankLines) {
  std::stringstream ss;
  ss << to_jsonl(sample_span()) << "\n\n" << to_jsonl(sample_span())
     << "\n";
  EXPECT_EQ(read_jsonl(ss).size(), 2u);
}

std::vector<TraceSpan> chain(bool with_translate, QueueRef queue) {
  std::vector<TraceSpan> spans;
  auto push = [&](SpanKind kind) {
    TraceSpan s;
    s.query_id = 7;
    s.kind = kind;
    s.queue = queue;
    spans.push_back(s);
  };
  push(SpanKind::kEnqueue);
  if (with_translate) push(SpanKind::kTranslate);
  push(SpanKind::kDispatch);
  push(SpanKind::kExecute);
  push(SpanKind::kComplete);
  return spans;
}

TEST(SpanChain, AcceptsCanonicalChains) {
  EXPECT_TRUE(is_complete_span_chain(chain(false, {QueueRef::kCpu, 0})));
  EXPECT_TRUE(is_complete_span_chain(chain(true, {QueueRef::kGpu, 2})));
}

TEST(SpanChain, AcceptsCpuInlineTranslationAfterDispatch) {
  // On the CPU path translation happens inline after the worker picks the
  // job up, so kTranslate legitimately follows kDispatch.
  auto spans = chain(false, {QueueRef::kCpu, 0});
  TraceSpan translate;
  translate.query_id = 7;
  translate.kind = SpanKind::kTranslate;
  translate.queue = {QueueRef::kCpu, 0};
  spans.insert(spans.begin() + 2, translate);  // enqueue, dispatch, translate
  EXPECT_TRUE(is_complete_span_chain(spans));
  // ... but at most one translate per query.
  auto twice = spans;
  twice.insert(twice.begin() + 1, translate);
  EXPECT_FALSE(is_complete_span_chain(twice));
}

TEST(SpanChain, RejectsBrokenChains) {
  EXPECT_FALSE(is_complete_span_chain({}));
  auto missing_complete = chain(false, {QueueRef::kCpu, 0});
  missing_complete.pop_back();
  EXPECT_FALSE(is_complete_span_chain(missing_complete));
  auto out_of_order = chain(false, {QueueRef::kCpu, 0});
  std::swap(out_of_order[1], out_of_order[2]);  // execute before dispatch
  EXPECT_FALSE(is_complete_span_chain(out_of_order));
  auto queue_mismatch = chain(true, {QueueRef::kGpu, 1});
  queue_mismatch[3].queue = {QueueRef::kGpu, 2};
  EXPECT_FALSE(is_complete_span_chain(queue_mismatch));
  auto extra = chain(false, {QueueRef::kCpu, 0});
  extra.push_back(extra.back());  // duplicate trailing span
  EXPECT_FALSE(is_complete_span_chain(extra));
}

PartitionCounters sample_counters() {
  PartitionCounters c;
  c.name = "gpu3";
  c.enqueued = 120;
  c.completed = 97;
  c.shed = 15;
  c.depth = 8;
  c.max_depth = 31;
  c.busy = Seconds{0.1234567890123456789};  // full double precision
  return c;
}

TEST(CountersJsonl, RoundTripsExactly) {
  const PartitionCounters c = sample_counters();
  const PartitionCounters back = counters_from_jsonl(to_jsonl(c));
  EXPECT_EQ(back.name, c.name);
  EXPECT_EQ(back.enqueued, c.enqueued);
  EXPECT_EQ(back.completed, c.completed);
  EXPECT_EQ(back.shed, c.shed);
  EXPECT_EQ(back.depth, c.depth);
  EXPECT_EQ(back.max_depth, c.max_depth);
  EXPECT_EQ(back.busy.value(), c.busy.value());  // bit-exact
}

TEST(CountersJsonl, LinesAreSelfContainedJsonObjects) {
  const std::string line = to_jsonl(sample_counters());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  for (const char* field :
       {"\"partition\":", "\"enqueued\":", "\"completed\":", "\"shed\":",
        "\"depth\":", "\"max_depth\":", "\"busy\":"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

TEST(CountersJsonl, WritesOneLinePerPartition) {
  std::vector<PartitionCounters> counters(3, sample_counters());
  counters[0].name = "cpu";
  counters[1].name = "translation";
  counters[2].name = "gpu0";
  std::stringstream ss;
  write_counters_jsonl(ss, counters);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    const PartitionCounters back = counters_from_jsonl(line);
    EXPECT_EQ(back.name, counters[lines].name);
    ++lines;
  }
  EXPECT_EQ(lines, counters.size());
}

TEST(CountersJsonl, MalformedLinesThrow) {
  EXPECT_THROW(counters_from_jsonl("{}"), InvalidArgument);
  EXPECT_THROW(counters_from_jsonl("not json"), InvalidArgument);
}

}  // namespace
}  // namespace holap
