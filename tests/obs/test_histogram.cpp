// LatencyHistogram: bucket layout, percentile monotonicity, merge
// correctness, and estimate accuracy against exact percentiles.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace holap {
namespace {

TEST(LatencyHistogram, EmptyHistogramIsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), Seconds{});
  EXPECT_EQ(h.percentile(50.0), Seconds{});
  EXPECT_EQ(h.min(), Seconds{});
  EXPECT_EQ(h.max(), Seconds{});
}

TEST(LatencyHistogram, BucketLayoutIsContiguousAndMonotone) {
  // Every bucket's upper edge is the next bucket's lower edge and edges
  // grow strictly — the fixed layout any two histograms share.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(i).value(),
                     LatencyHistogram::bucket_lower(i + 1).value());
    EXPECT_LT(LatencyHistogram::bucket_lower(i),
              LatencyHistogram::bucket_upper(i));
  }
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), Seconds{});
  EXPECT_TRUE(std::isinf(LatencyHistogram::bucket_upper(
                         LatencyHistogram::kBucketCount - 1)
                         .value()));
}

TEST(LatencyHistogram, BucketIndexCoversItsValue) {
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform_real(0.0, 2000.0);
    const std::size_t b = LatencyHistogram::bucket_index(Seconds{v});
    EXPECT_GE(v, LatencyHistogram::bucket_lower(b).value());
    EXPECT_LT(v, LatencyHistogram::bucket_upper(b).value());
  }
  EXPECT_EQ(LatencyHistogram::bucket_index(Seconds{}), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(Seconds{1e12}),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogram, PercentilesAreMonotoneInP) {
  SplitMix64 rng(42);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    h.add(Seconds{rng.exponential(100.0)});  // mean 10 ms
  }
  double last = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p).value();
    EXPECT_GE(v, last) << "p=" << p;
    last = v;
  }
  EXPECT_LE(h.percentile(100.0), h.max());
  EXPECT_GE(h.percentile(0.0), h.min());
}

TEST(LatencyHistogram, PercentileEstimateWithinBucketResolution) {
  // The estimate must land within one bucket width (factor 10^(1/8)) of
  // the exact sample percentile.
  SplitMix64 rng(1234);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(50.0);
    samples.push_back(v);
    h.add(Seconds{v});
  }
  const double width = std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double est = h.percentile(p).value();
    EXPECT_LE(est, exact * width * 1.01) << "p=" << p;
    EXPECT_GE(est, exact / width / 1.01) << "p=" << p;
  }
}

TEST(LatencyHistogram, MeanAndExtremaAreExact) {
  LatencyHistogram h;
  const std::vector<double> xs = {0.001, 0.020, 0.3, 0.0005};
  double sum = 0.0;
  for (const double x : xs) {
    h.add(Seconds{x});
    sum += x;
  }
  EXPECT_DOUBLE_EQ(h.mean().value(), sum / static_cast<double>(xs.size()));
  EXPECT_DOUBLE_EQ(h.min().value(), 0.0005);
  EXPECT_DOUBLE_EQ(h.max().value(), 0.3);
}

TEST(LatencyHistogram, MergeEqualsAddingAllSamples) {
  SplitMix64 rng(9);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.exponential(200.0);
    all.add(Seconds{v});
    (i % 2 == 0 ? a : b).add(Seconds{v});
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Totals are the same sum in different association order.
  EXPECT_NEAR(a.total().value(), all.total().value(),
              1e-12 * all.total().value());
  EXPECT_DOUBLE_EQ(a.min().value(), all.min().value());
  EXPECT_DOUBLE_EQ(a.max().value(), all.max().value());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
  }
  for (const double p : {1.0, 25.0, 50.0, 95.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.percentile(p).value(), all.percentile(p).value())
        << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAndWithEmpty) {
  LatencyHistogram empty, h;
  h.add(Seconds{0.010});
  h.add(Seconds{0.030});
  LatencyHistogram target;
  target.merge(h);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min().value(), 0.010);
  target.merge(empty);  // with empty: unchanged
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.max().value(), 0.030);
}

TEST(LatencyHistogram, NegativeClampedAndOutOfRangeThrows) {
  LatencyHistogram h;
  h.add(Seconds{-1.0});  // clamps to 0
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), Seconds{});
  EXPECT_THROW(h.percentile(-1.0), InvalidArgument);
  EXPECT_THROW(h.percentile(101.0), InvalidArgument);
}

}  // namespace
}  // namespace holap
