// LatencyHistogram: bucket layout, percentile monotonicity, merge
// correctness, and estimate accuracy against exact percentiles.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/ingest_counters.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace holap {
namespace {

TEST(LatencyHistogram, EmptyHistogramIsZeroEverywhere) {
  // The documented degenerate case: EVERY statistic of an empty histogram
  // is Seconds{0} — per-device histograms of idle devices hit this.
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), Seconds{});
  EXPECT_EQ(h.min(), Seconds{});
  EXPECT_EQ(h.max(), Seconds{});
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), Seconds{}) << "p=" << p;
  }
  EXPECT_EQ(h.p50(), Seconds{});
  EXPECT_EQ(h.p99(), Seconds{});
}

TEST(LatencyHistogram, BucketLayoutIsContiguousAndMonotone) {
  // Every bucket's upper edge is the next bucket's lower edge and edges
  // grow strictly — the layout any two mergeable histograms share.
  const LatencyHistogram h;
  EXPECT_EQ(h.bucket_count(), LatencyHistogram::kBucketCount);
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_upper(i).value(),
                     h.bucket_lower(i + 1).value());
    EXPECT_LT(h.bucket_lower(i), h.bucket_upper(i));
  }
  EXPECT_EQ(h.bucket_lower(0), Seconds{});
  EXPECT_TRUE(std::isinf(h.bucket_upper(h.bucket_count() - 1).value()));
}

TEST(LatencyHistogram, BucketIndexCoversItsValue) {
  SplitMix64 rng(7);
  const LatencyHistogram h;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform_real(0.0, 2000.0);
    const std::size_t b = h.bucket_index(Seconds{v});
    EXPECT_GE(v, h.bucket_lower(b).value());
    EXPECT_LT(v, h.bucket_upper(b).value());
  }
  EXPECT_EQ(h.bucket_index(Seconds{}), 0u);
  EXPECT_EQ(h.bucket_index(Seconds{1e12}), h.bucket_count() - 1);
}

TEST(LatencyHistogram, ConfigurableResolutionKeepsEstimatesInBounds) {
  // A coarser layout still brackets the exact percentile by its (wider)
  // bucket width.
  SplitMix64 rng(11);
  LatencyHistogram h(2);
  EXPECT_EQ(h.buckets_per_decade(), 2);
  EXPECT_EQ(h.bucket_count(),
            static_cast<std::size_t>(2 * LatencyHistogram::kDecades + 1));
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.exponential(50.0);
    samples.push_back(v);
    h.add(Seconds{v});
  }
  const double width = std::pow(10.0, 1.0 / 2.0);
  const double exact = percentile(samples, 95.0);
  const double est = h.percentile(95.0).value();
  EXPECT_LE(est, exact * width * 1.01);
  EXPECT_GE(est, exact / width / 1.01);
  EXPECT_THROW(LatencyHistogram{0}, InvalidArgument);
}

TEST(LatencyHistogram, MergeOfMismatchedLayoutsThrows) {
  // Bucket-layout mismatch is an explicit error, not a silent mix of
  // incompatible buckets — and the target must stay unchanged.
  LatencyHistogram fine;  // default 8/decade
  LatencyHistogram coarse(4);
  fine.add(Seconds{0.010});
  coarse.add(Seconds{0.020});
  EXPECT_THROW(fine.merge(coarse), InvalidArgument);
  EXPECT_THROW(coarse.merge(fine), InvalidArgument);
  EXPECT_EQ(fine.count(), 1u);
  EXPECT_DOUBLE_EQ(fine.max().value(), 0.010);
  EXPECT_EQ(coarse.count(), 1u);
}

TEST(BatchSizeHistogram, MergeOfMismatchedTrackedRangesThrows) {
  BatchSizeHistogram a;      // default 64 tracked sizes
  BatchSizeHistogram b(16);  // shard configured smaller
  a.add(3);
  b.add(3);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_EQ(a.batches(), 1u);  // target unchanged by the failed merge
  BatchSizeHistogram c(16);
  c.add(20);  // past the tracked range: pooled in overflow
  b.merge(c);
  EXPECT_EQ(b.batches(), 2u);
  EXPECT_EQ(b.count(3), 1u);
  EXPECT_EQ(b.count(20), 1u);
  EXPECT_EQ(b.max_size(), 20u);
  EXPECT_THROW(BatchSizeHistogram{0}, InvalidArgument);
  // Empty histogram: the amortisation gauge is a defined 0.
  EXPECT_DOUBLE_EQ(BatchSizeHistogram{}.mean_size(), 0.0);
}

TEST(LatencyHistogram, PercentilesAreMonotoneInP) {
  SplitMix64 rng(42);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    h.add(Seconds{rng.exponential(100.0)});  // mean 10 ms
  }
  double last = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p).value();
    EXPECT_GE(v, last) << "p=" << p;
    last = v;
  }
  EXPECT_LE(h.percentile(100.0), h.max());
  EXPECT_GE(h.percentile(0.0), h.min());
}

TEST(LatencyHistogram, PercentileEstimateWithinBucketResolution) {
  // The estimate must land within one bucket width (factor 10^(1/8)) of
  // the exact sample percentile.
  SplitMix64 rng(1234);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(50.0);
    samples.push_back(v);
    h.add(Seconds{v});
  }
  const double width = std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double est = h.percentile(p).value();
    EXPECT_LE(est, exact * width * 1.01) << "p=" << p;
    EXPECT_GE(est, exact / width / 1.01) << "p=" << p;
  }
}

TEST(LatencyHistogram, MeanAndExtremaAreExact) {
  LatencyHistogram h;
  const std::vector<double> xs = {0.001, 0.020, 0.3, 0.0005};
  double sum = 0.0;
  for (const double x : xs) {
    h.add(Seconds{x});
    sum += x;
  }
  EXPECT_DOUBLE_EQ(h.mean().value(), sum / static_cast<double>(xs.size()));
  EXPECT_DOUBLE_EQ(h.min().value(), 0.0005);
  EXPECT_DOUBLE_EQ(h.max().value(), 0.3);
}

TEST(LatencyHistogram, MergeEqualsAddingAllSamples) {
  SplitMix64 rng(9);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.exponential(200.0);
    all.add(Seconds{v});
    (i % 2 == 0 ? a : b).add(Seconds{v});
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Totals are the same sum in different association order.
  EXPECT_NEAR(a.total().value(), all.total().value(),
              1e-12 * all.total().value());
  EXPECT_DOUBLE_EQ(a.min().value(), all.min().value());
  EXPECT_DOUBLE_EQ(a.max().value(), all.max().value());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
  }
  for (const double p : {1.0, 25.0, 50.0, 95.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.percentile(p).value(), all.percentile(p).value())
        << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAndWithEmpty) {
  LatencyHistogram empty, h;
  h.add(Seconds{0.010});
  h.add(Seconds{0.030});
  LatencyHistogram target;
  target.merge(h);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min().value(), 0.010);
  target.merge(empty);  // with empty: unchanged
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.max().value(), 0.030);
}

TEST(LatencyHistogram, NegativeClampedAndOutOfRangeThrows) {
  LatencyHistogram h;
  h.add(Seconds{-1.0});  // clamps to 0
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), Seconds{});
  EXPECT_THROW(h.percentile(-1.0), InvalidArgument);
  EXPECT_THROW(h.percentile(101.0), InvalidArgument);
}

}  // namespace
}  // namespace holap
