#include "query/workload.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

struct Fixture {
  std::vector<Dimension> dims = tiny_model_dimensions();
  TableSchema schema =
      make_star_schema(tiny_model_dimensions(), {"m0", "m1"}, {{1, 3}});
};

TEST(Workload, AllGeneratedQueriesValidate) {
  Fixture f;
  WorkloadConfig config;
  config.seed = 5;
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(500)) {
    EXPECT_NO_THROW(validate_query(q, f.dims, f.schema));
  }
}

TEST(Workload, DeterministicForSeed) {
  Fixture f;
  WorkloadConfig config;
  config.seed = 11;
  QueryGenerator a(f.dims, f.schema, config);
  QueryGenerator b(f.dims, f.schema, config);
  for (int i = 0; i < 100; ++i) {
    const Query qa = a.next();
    const Query qb = b.next();
    EXPECT_EQ(to_string(qa, f.dims), to_string(qb, f.dims));
  }
}

TEST(Workload, TextProbabilityZeroMeansNoTranslation) {
  Fixture f;
  WorkloadConfig config;
  config.text_probability = 0.0;
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(300)) {
    EXPECT_EQ(q.text_conditions(), 0);
  }
}

TEST(Workload, TextProbabilityOneMakesTextConditionsOnTextColumns) {
  Fixture f;
  WorkloadConfig config;
  config.text_probability = 1.0;
  config.level_weights = {0, 0, 0, 1};  // force finest level
  config.condition_probability = 1.0;
  QueryGenerator gen(f.dims, f.schema, config);
  int text = 0;
  for (const Query& q : gen.batch(200)) text += q.text_conditions();
  // Dimension 1 level 3 is the text column; one condition per query on it.
  EXPECT_EQ(text, 200);
}

TEST(Workload, LevelWeightsRestrictResolutions) {
  Fixture f;
  WorkloadConfig config;
  config.level_weights = {1, 1, 1, 0};  // never level 3
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(300)) {
    EXPECT_LE(q.required_resolution(), 2);
  }
}

TEST(Workload, LevelWeightsMustMatchLevelCount) {
  Fixture f;
  WorkloadConfig config;
  config.level_weights = {1, 1};  // dims have 4 levels
  QueryGenerator gen(f.dims, f.schema, config);
  EXPECT_THROW(gen.next(), InvalidArgument);
}

TEST(Workload, SelectivityBoundsRangeWidth) {
  Fixture f;
  WorkloadConfig config;
  config.mean_selectivity = 0.1;
  config.text_probability = 0.0;
  config.level_weights = {0, 0, 0, 1};
  config.condition_probability = 1.0;
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(300)) {
    for (const auto& c : q.conditions) {
      // Selectivity drawn from (0, 0.2]; level-3 cardinality is 16.
      EXPECT_LE(c.to - c.from + 1, 4);
    }
  }
}

TEST(Workload, MeasureCountWithinBounds) {
  Fixture f;
  WorkloadConfig config;
  config.min_measures = 1;
  config.max_measures = 2;
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(200)) {
    EXPECT_GE(q.measures.size(), 1u);
    EXPECT_LE(q.measures.size(), 2u);
    // Measures must be distinct.
    if (q.measures.size() == 2) {
      EXPECT_NE(q.measures[0], q.measures[1]);
    }
  }
}

TEST(Workload, AlwaysAtLeastOneCondition) {
  Fixture f;
  WorkloadConfig config;
  config.condition_probability = 0.0;
  QueryGenerator gen(f.dims, f.schema, config);
  for (const Query& q : gen.batch(50)) {
    EXPECT_GE(q.conditions.size(), 1u);
  }
}

TEST(Workload, RejectsInvalidConfig) {
  Fixture f;
  WorkloadConfig bad;
  bad.mean_selectivity = 0.0;
  EXPECT_THROW(QueryGenerator(f.dims, f.schema, bad), InvalidArgument);
  bad = {};
  bad.text_probability = 1.5;
  EXPECT_THROW(QueryGenerator(f.dims, f.schema, bad), InvalidArgument);
  bad = {};
  bad.min_measures = 3;
  bad.max_measures = 1;
  EXPECT_THROW(QueryGenerator(f.dims, f.schema, bad), InvalidArgument);
}

}  // namespace
}  // namespace holap
