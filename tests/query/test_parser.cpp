#include "query/parser.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TableSchema schema() {
  return make_star_schema(tiny_model_dimensions(), {"sales", "qty"},
                          {{1, 3}, {2, 3}});
}

TEST(Parser, SimpleSum) {
  const TableSchema s = schema();
  const Query q = parse_query("sum(sales) where time.month in [1, 3]", s);
  EXPECT_EQ(q.op, AggOp::kSum);
  ASSERT_EQ(q.measures.size(), 1u);
  EXPECT_EQ(s.column(q.measures[0]).name, "sales");
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_EQ(q.conditions[0].dim, 0);
  EXPECT_EQ(q.conditions[0].level, 1);
  EXPECT_EQ(q.conditions[0].from, 1);
  EXPECT_EQ(q.conditions[0].to, 3);
}

TEST(Parser, MultipleMeasuresAndConditions) {
  const Query q = parse_query(
      "avg(sales, qty) where time.year in [0, 1] and product.class in "
      "[2, 3]",
      schema());
  EXPECT_EQ(q.op, AggOp::kAvg);
  EXPECT_EQ(q.measures.size(), 2u);
  EXPECT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[1].dim, 2);
  EXPECT_EQ(q.conditions[1].level, 1);
}

TEST(Parser, CountWithoutMeasures) {
  const Query q = parse_query("count() where geography.region in [0, 1]",
                              schema());
  EXPECT_EQ(q.op, AggOp::kCount);
  EXPECT_TRUE(q.measures.empty());
}

TEST(Parser, TextConditionsWithBothQuoteStyles) {
  const Query q = parse_query(
      "sum(sales) where geography.store in {\"Marlowick\", 'Den \"x\"'}",
      schema());
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_TRUE(q.conditions[0].is_text());
  EXPECT_EQ(q.conditions[0].text_values,
            (std::vector<std::string>{"Marlowick", "Den \"x\""}));
  EXPECT_TRUE(q.needs_translation());
}

TEST(Parser, WhitespaceInsensitive) {
  const Query a = parse_query("sum(sales)where time.day in[2,5]", schema());
  const Query b = parse_query(
      "  sum ( sales )   where   time.day   in [ 2 , 5 ]  ", schema());
  EXPECT_EQ(a.conditions[0].from, b.conditions[0].from);
  EXPECT_EQ(a.conditions[0].to, b.conditions[0].to);
}

TEST(Parser, MinMaxOperators) {
  EXPECT_EQ(parse_query("min(sales)", schema()).op, AggOp::kMin);
  EXPECT_EQ(parse_query("max(qty)", schema()).op, AggOp::kMax);
}

TEST(Parser, NoWhereClause) {
  const Query q = parse_query("sum(sales)", schema());
  EXPECT_TRUE(q.conditions.empty());
}

struct BadCase {
  const char* text;
  const char* reason;
};

class ParserErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrors, RejectedWithPosition) {
  try {
    parse_query(GetParam().text, schema());
    FAIL() << "expected ParseError for: " << GetParam().text << " ("
           << GetParam().reason << ")";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("parse error at position"),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadCase{"", "empty input"},
        BadCase{"frobnicate(sales)", "unknown operator"},
        BadCase{"sum(nonexistent)", "unknown measure"},
        BadCase{"sum(time)", "dimension column as measure"},
        BadCase{"sum(sales", "missing paren"},
        BadCase{"sum(sales) where bogus.month in [0,1]",
                "unknown dimension"},
        BadCase{"sum(sales) where time.bogus in [0,1]", "unknown level"},
        BadCase{"sum(sales) where time.month in [0,99]",
                "range beyond cardinality"},
        BadCase{"sum(sales) where time.month in [3,1]", "inverted range"},
        BadCase{"sum(sales) where time.month in {\"text\"}",
                "strings on a non-text column"},
        BadCase{"sum(sales) where time.month in [a,b]", "non-integer"},
        BadCase{"sum(sales) where time.month in [0,1] garbage",
                "trailing input"},
        BadCase{"sum(sales) where geography.store in {\"unterminated",
                "unterminated string"},
        BadCase{"count(sales) where", "dangling where"},
        BadCase{"sum() where time.month in [0,1]",
                "sum without measures"}),
    [](const auto& suite_info) {
      std::string name = suite_info.param.reason;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Parser, RoundTripWithToString) {
  // Parsed queries render back through to_string coherently.
  const TableSchema s = schema();
  const Query q = parse_query(
      "sum(sales) where time.month in [1, 2] and geography.store in "
      "{\"Marlowick\"}",
      s);
  const std::string rendered = to_string(q, s.dimensions());
  EXPECT_NE(rendered.find("time.month in [1, 2]"), std::string::npos);
  EXPECT_NE(rendered.find("\"Marlowick\""), std::string::npos);
}

}  // namespace
}  // namespace holap
