#include "query/query_builder.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TableSchema schema() {
  return make_star_schema(tiny_model_dimensions(), {"sales", "qty"},
                          {{1, 3}});
}

TEST(QueryBuilder, FluentConstruction) {
  const TableSchema s = schema();
  const Query q = QueryBuilder(s)
                      .sum({"sales", "qty"})
                      .where("time", "month", 1, 3)
                      .where_equals("product", "category", 1)
                      .build();
  EXPECT_EQ(q.op, AggOp::kSum);
  EXPECT_EQ(q.measures.size(), 2u);
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[0].dim, 0);
  EXPECT_EQ(q.conditions[0].level, 1);
  EXPECT_EQ(q.conditions[1].from, 1);
  EXPECT_EQ(q.conditions[1].to, 1);
}

TEST(QueryBuilder, TextConditionMarksTranslationNeed) {
  const TableSchema s = schema();
  const Query q = QueryBuilder(s)
                      .count()
                      .where_text("geography", "store", {"A", "B"})
                      .build();
  EXPECT_EQ(q.op, AggOp::kCount);
  EXPECT_TRUE(q.needs_translation());
  EXPECT_EQ(q.conditions[0].text_values.size(), 2u);
}

TEST(QueryBuilder, AllOperators) {
  const TableSchema s = schema();
  EXPECT_EQ(QueryBuilder(s).avg({"sales"}).build().op, AggOp::kAvg);
  EXPECT_EQ(QueryBuilder(s).min({"sales"}).build().op, AggOp::kMin);
  EXPECT_EQ(QueryBuilder(s).max({"qty"}).build().op, AggOp::kMax);
}

TEST(QueryBuilder, NameResolutionErrors) {
  const TableSchema s = schema();
  EXPECT_THROW(QueryBuilder(s).sum({"nope"}), InvalidArgument);
  EXPECT_THROW(QueryBuilder(s).sum({"time.year"}), InvalidArgument);
  QueryBuilder b(s);
  b.sum({"sales"});
  EXPECT_THROW(b.where("bogus", "month", 0, 1), InvalidArgument);
  EXPECT_THROW(b.where("time", "bogus", 0, 1), InvalidArgument);
  EXPECT_THROW(b.where_text("time", "month", {"x"}), InvalidArgument);
  EXPECT_THROW(b.where_text("geography", "store", {}), InvalidArgument);
}

TEST(QueryBuilder, BuildValidates) {
  const TableSchema s = schema();
  QueryBuilder b(s);
  b.sum({"sales"}).where("time", "month", 0, 99);  // beyond cardinality
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(QueryBuilder, ReusableAfterBuild) {
  const TableSchema s = schema();
  QueryBuilder b(s);
  b.sum({"sales"}).where("time", "year", 0, 1);
  const Query first = b.build();
  b.where("product", "class", 0, 2);
  const Query second = b.build();
  EXPECT_EQ(first.conditions.size(), 1u);
  EXPECT_EQ(second.conditions.size(), 2u);
}

}  // namespace
}  // namespace holap
