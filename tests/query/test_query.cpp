#include "query/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }
TableSchema schema() {
  return make_star_schema(dims(), {"m0", "m1"}, {{1, 3}});
}

Query simple_query() {
  Query q;
  q.conditions.push_back({0, 1, 1, 2, {}, {}});
  q.conditions.push_back({1, 2, 0, 3, {}, {}});
  q.measures = {12};  // m0
  q.op = AggOp::kSum;
  return q;
}

TEST(Query, RequiredResolutionIsMaxConditionLevel) {
  Query q = simple_query();
  EXPECT_EQ(q.required_resolution(), 2);
  q.conditions.push_back({2, 3, 0, 0, {}, {}});
  EXPECT_EQ(q.required_resolution(), 3);
}

TEST(Query, RequiredResolutionZeroWithoutConditions) {
  Query q;
  q.measures = {12};
  EXPECT_EQ(q.required_resolution(), 0);
}

TEST(Query, GpuColumnsAccessedCountsConditionsAndMeasures) {
  // Eq. (12): filtration conditions + data columns.
  Query q = simple_query();
  EXPECT_EQ(q.gpu_columns_accessed(), 3);
  q.measures.push_back(13);
  EXPECT_EQ(q.gpu_columns_accessed(), 4);
}

TEST(Query, TextConditionsCounted) {
  Query q = simple_query();
  EXPECT_EQ(q.text_conditions(), 0);
  Condition text;
  text.dim = 1;
  text.level = 3;
  text.text_values = {"Marlowick", "Denborough"};
  q.conditions.push_back(text);
  EXPECT_EQ(q.text_conditions(), 1);
  EXPECT_TRUE(q.needs_translation());
}

TEST(Query, TranslationSatisfiedWhenCodesFilled) {
  Condition text;
  text.dim = 1;
  text.level = 3;
  text.text_values = {"a", "b"};
  EXPECT_TRUE(text.needs_translation());
  text.codes = {4, 7};
  EXPECT_FALSE(text.needs_translation());
  EXPECT_TRUE(text.is_text());
}

TEST(ValidateQuery, AcceptsWellFormed) {
  EXPECT_NO_THROW(validate_query(simple_query(), dims(), schema()));
}

TEST(ValidateQuery, RejectsUnknownDimension) {
  Query q = simple_query();
  q.conditions[0].dim = 9;
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(ValidateQuery, RejectsUnknownLevel) {
  Query q = simple_query();
  q.conditions[0].level = 4;
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(ValidateQuery, RejectsRangeOutsideCardinality) {
  Query q = simple_query();
  q.conditions[0].to = 99;  // level-1 cardinality is 4
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
  q = simple_query();
  q.conditions[0].from = 3;
  q.conditions[0].to = 1;
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(ValidateQuery, RejectsNonMeasureAggregation) {
  Query q = simple_query();
  q.measures = {0};  // a dimension column
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(ValidateQuery, CountNeedsNoMeasure) {
  Query q = simple_query();
  q.measures.clear();
  q.op = AggOp::kCount;
  EXPECT_NO_THROW(validate_query(q, dims(), schema()));
  q.op = AggOp::kSum;
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(ValidateQuery, RejectsEntirelyEmptyQuery) {
  Query q;
  EXPECT_THROW(validate_query(q, dims(), schema()), InvalidArgument);
}

TEST(SubcubeBytes, FullCubeWithoutConditions) {
  // Eq. (3): dimensions without conditions contribute their full extent.
  Query q;
  q.measures = {12};
  // Level-0 cube is 2x2x2 cells.
  EXPECT_EQ(subcube_bytes(q, dims(), 0, 8), 8u * 8u);
}

TEST(SubcubeBytes, RangeConditionNarrowsOneDimension) {
  Query q;
  q.measures = {12};
  q.conditions.push_back({0, 1, 1, 2, {}, {}});  // 2 of 4 members at level 1
  // Cube level 1: 4x4x4 cells; condition narrows dim 0 to 2 -> 2*4*4.
  EXPECT_EQ(subcube_bytes(q, dims(), 1, 8), 2u * 4u * 4u * 8u);
}

TEST(SubcubeBytes, CoarserConditionWidensByFanout) {
  Query q;
  q.measures = {12};
  q.conditions.push_back({0, 0, 0, 0, {}, {}});  // 1 of 2 members at level 0
  // On a level-2 cube (8 per dim), fanout 0->2 is 4: width 4 of 8.
  EXPECT_EQ(subcube_bytes(q, dims(), 2, 8), 4u * 8u * 8u * 8u);
}

TEST(SubcubeBytes, TextConditionUsesValueCount) {
  Query q;
  q.measures = {12};
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"a", "b"};
  q.conditions.push_back(c);
  // Level-3 cube: 16 per dim; 2 values at level 3 -> width 2.
  EXPECT_EQ(subcube_bytes(q, dims(), 3, 8), 16u * 2u * 16u * 8u);
}

TEST(SubcubeBytes, RejectsTooCoarseCube) {
  Query q = simple_query();  // requires level 2
  EXPECT_THROW(subcube_bytes(q, dims(), 1, 8), InvalidArgument);
}

TEST(SubcubeBytes, MultipleConditionsSameDimensionUseNarrowest) {
  Query q;
  q.measures = {12};
  q.conditions.push_back({0, 1, 0, 3, {}, {}});  // full extent at level 1
  q.conditions.push_back({0, 2, 2, 3, {}, {}});  // 2 of 8 at level 2
  EXPECT_EQ(subcube_bytes(q, dims(), 2, 8), 2u * 8u * 8u * 8u);
}


TEST(Query, DistinctColumnsDeduplicateWhileEq12CountsConditions) {
  Query q = simple_query();           // conditions on (0,1) and (1,2)
  q.conditions.push_back({0, 1, 0, 0, {}, {}});  // same column as the first
  q.measures = {12, 13};
  // Eq. (12): 3 conditions + 2 measures = 5 (paper semantics).
  EXPECT_EQ(q.gpu_columns_accessed(), 5);
  // Distinct: two dimension columns + two measures = 4.
  const auto cols = distinct_columns_accessed(q, schema());
  EXPECT_EQ(cols.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
  EXPECT_TRUE(std::count(cols.begin(), cols.end(), 12) == 1);
}

TEST(QueryToString, MentionsOperatorDimensionsAndRanges) {
  const std::string s = to_string(simple_query(), dims());
  EXPECT_NE(s.find("sum"), std::string::npos);
  EXPECT_NE(s.find("time"), std::string::npos);
  EXPECT_NE(s.find("[1, 2]"), std::string::npos);
}

TEST(AggOpNames, AllDistinct) {
  EXPECT_STREQ(to_string(AggOp::kSum), "sum");
  EXPECT_STREQ(to_string(AggOp::kCount), "count");
  EXPECT_STREQ(to_string(AggOp::kMin), "min");
  EXPECT_STREQ(to_string(AggOp::kMax), "max");
  EXPECT_STREQ(to_string(AggOp::kAvg), "avg");
}

}  // namespace
}  // namespace holap
