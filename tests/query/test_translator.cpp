#include "query/translator.hpp"

#include <gtest/gtest.h>

#include "relational/generator.hpp"

namespace holap {
namespace {

struct Fixture {
  FactTable table;
  DictionarySet dicts;

  Fixture()
      : table([] {
          GeneratorConfig config;
          config.rows = 300;
          config.text_levels = {{1, 3}};
          return generate_fact_table(tiny_model_dimensions(), config);
        }()),
        dicts(DictionarySet::build_from_table(table)) {}
};

Query text_query(const std::vector<std::string>& values) {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = values;
  q.conditions.push_back(c);
  q.measures = {12};
  return q;
}

TEST(Translator, FillsCodesForKnownStrings) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  const Dictionary& dict = f.dicts.for_column(col);

  Query q = text_query({dict.decode(3), dict.decode(7)});
  ASSERT_TRUE(q.needs_translation());
  const TranslationReport report = tr.translate(q);
  EXPECT_FALSE(q.needs_translation());
  EXPECT_TRUE(report.all_found);
  EXPECT_EQ(report.parameters_translated, 2);
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{3, 7}));
}

TEST(Translator, AbsentStringsYieldMinusOne) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  Query q = text_query({"definitely not a member"});
  const TranslationReport report = tr.translate(q);
  EXPECT_FALSE(report.all_found);
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{-1}));
}

TEST(Translator, ReportsEntriesScannedForLinearModel) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts, DictSearch::kLinearScan);
  const int col = f.table.schema().dimension_column(1, 3);
  const std::size_t dict_len = f.dicts.for_column(col).size();
  Query q = text_query({"a", "b", "c"});
  const TranslationReport report = tr.translate(q);
  // Eq. (18): one full dictionary per parameter in the upper bound.
  EXPECT_EQ(report.dictionary_entries_scanned, 3 * dict_len);
}

TEST(Translator, IdempotentOnTranslatedQueries) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  Query q = text_query({f.dicts.for_column(col).decode(1)});
  tr.translate(q);
  const auto codes = q.conditions[0].codes;
  const TranslationReport second = tr.translate(q);
  EXPECT_EQ(second.parameters_translated, 0);
  EXPECT_EQ(q.conditions[0].codes, codes);
}

TEST(Translator, NonTextQueriesUntouched) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  Query q;
  q.conditions.push_back({0, 1, 0, 1, {}, {}});
  q.measures = {12};
  const TranslationReport report = tr.translate(q);
  EXPECT_EQ(report.parameters_translated, 0);
  EXPECT_TRUE(report.all_found);
}

TEST(Translator, RejectsTextOnNonTextColumn) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  Query q;
  Condition c;
  c.dim = 0;  // time dimension has no text columns
  c.level = 3;
  c.text_values = {"whatever"};
  q.conditions.push_back(c);
  EXPECT_THROW(tr.translate(q), InvalidArgument);
}

TEST(Translator, DictionaryLengthsPerParameter) {
  Fixture f;
  const Translator tr(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  const std::size_t len = f.dicts.for_column(col).size();
  const Query q = text_query({"x", "y"});
  const auto lengths = tr.dictionary_lengths(q);
  EXPECT_EQ(lengths, (std::vector<std::size_t>{len, len}));
}

TEST(Translator, HashedAndLinearProduceSameCodes) {
  Fixture f;
  const Translator linear(f.table.schema(), f.dicts,
                          DictSearch::kLinearScan);
  const Translator hashed(f.table.schema(), f.dicts, DictSearch::kHashed);
  const int col = f.table.schema().dimension_column(1, 3);
  const Dictionary& dict = f.dicts.for_column(col);
  Query a = text_query({dict.decode(2), "missing", dict.decode(9)});
  Query b = a;
  linear.translate(a);
  hashed.translate(b);
  EXPECT_EQ(a.conditions[0].codes, b.conditions[0].codes);
}

}  // namespace
}  // namespace holap
