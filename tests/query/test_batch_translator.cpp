#include "query/batch_translator.hpp"

#include <gtest/gtest.h>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

struct Fixture {
  FactTable table;
  DictionarySet dicts;

  Fixture()
      : table([] {
          GeneratorConfig config;
          config.rows = 500;
          config.seed = 3;
          config.text_levels = {{1, 3}, {2, 3}};
          return generate_fact_table(tiny_model_dimensions(), config);
        }()),
        dicts(DictionarySet::build_from_table(table)) {}
};

TEST(BatchTranslator, ProducesSameCodesAsPerParameterTranslator) {
  Fixture f;
  const Translator reference(f.table.schema(), f.dicts);
  const BatchTranslator batch(f.table.schema(), f.dicts);
  WorkloadConfig wl;
  wl.seed = 91;
  wl.text_probability = 1.0;
  wl.max_text_values = 4;
  QueryGenerator gen(f.table.schema().dimensions(), f.table.schema(), wl);
  for (int i = 0; i < 50; ++i) {
    Query a = gen.next();
    Query b = a;
    reference.translate(a);
    batch.translate(b);
    ASSERT_EQ(a.conditions.size(), b.conditions.size());
    for (std::size_t c = 0; c < a.conditions.size(); ++c) {
      EXPECT_EQ(a.conditions[c].codes, b.conditions[c].codes)
          << "query " << i << " condition " << c;
    }
  }
}

TEST(BatchTranslator, AbsentStringsGetMinusOne) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {f.dicts.for_column(col).decode(2), "nope",
                   f.dicts.for_column(col).decode(5)};
  q.conditions.push_back(c);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_FALSE(report.all_found);
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{2, -1, 5}));
}

TEST(BatchTranslator, ScansEachColumnOnceRegardlessOfParameterCount) {
  // The whole point of the batch algorithm: eq. (18) becomes per-column.
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  const std::size_t dict_len = f.dicts.for_column(col).size();
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  for (int i = 0; i < 8; ++i) {
    c.text_values.push_back(f.dicts.for_column(col).decode(i));
  }
  q.conditions.push_back(c);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.parameters_translated, 8);
  EXPECT_EQ(report.dictionary_entries_scanned, dict_len);  // one pass!
}

TEST(BatchTranslator, TwoColumnsScanTwoDictionaries) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int geo = f.table.schema().dimension_column(1, 3);
  const int prod = f.table.schema().dimension_column(2, 3);
  Query q;
  Condition a;
  a.dim = 1;
  a.level = 3;
  a.text_values = {f.dicts.for_column(geo).decode(1)};
  Condition b;
  b.dim = 2;
  b.level = 3;
  b.text_values = {f.dicts.for_column(prod).decode(4), "missing"};
  q.conditions.push_back(a);
  q.conditions.push_back(b);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.dictionary_entries_scanned,
            f.dicts.for_column(geo).size() + f.dicts.for_column(prod).size());
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{1}));
  EXPECT_EQ(q.conditions[1].codes, (std::vector<std::int32_t>{4, -1}));
}

TEST(BatchTranslator, UniqueDictionaryLengthsPerColumn) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int geo = f.table.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"a", "b", "c"};
  q.conditions.push_back(c);
  const auto lengths = batch.unique_dictionary_lengths(q);
  EXPECT_EQ(lengths,
            (std::vector<std::size_t>{f.dicts.for_column(geo).size()}));
}

TEST(BatchTranslator, NoTextIsNoOp) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  Query q;
  q.conditions.push_back({0, 1, 0, 1, {}, {}});
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.parameters_translated, 0);
  EXPECT_EQ(report.dictionary_entries_scanned, 0u);
  EXPECT_TRUE(report.all_found);
}

TEST(TranslateAll, EmptyBatchIsANoOpWithCleanReport) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const TranslationReport report = batch.translate_all({});
  EXPECT_EQ(report.parameters_translated, 0);
  EXPECT_EQ(report.dictionary_entries_scanned, 0u);
  EXPECT_TRUE(report.all_found);
}

TEST(TranslateAll, NullEntriesAreSkipped) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {f.dicts.for_column(col).decode(3)};
  q.conditions.push_back(c);
  q.measures = {12};
  std::vector<Query*> ptrs = {nullptr, &q, nullptr};
  const TranslationReport report = batch.translate_all(ptrs);
  EXPECT_EQ(report.parameters_translated, 1);
  EXPECT_TRUE(report.all_found);
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{3}));
}

TEST(TranslateAll, SingleQueryBatchMatchesPerQueryTranslate) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  WorkloadConfig wl;
  wl.seed = 14;
  wl.text_probability = 1.0;
  wl.max_text_values = 3;
  QueryGenerator gen(f.table.schema().dimensions(), f.table.schema(), wl);
  for (int i = 0; i < 20; ++i) {
    Query a = gen.next();
    Query b = a;
    const TranslationReport ra = batch.translate(a);
    Query* pb = &b;
    const TranslationReport rb = batch.translate_all({&pb, 1});
    EXPECT_EQ(ra.parameters_translated, rb.parameters_translated);
    EXPECT_EQ(ra.dictionary_entries_scanned, rb.dictionary_entries_scanned);
    ASSERT_EQ(a.conditions.size(), b.conditions.size());
    for (std::size_t c = 0; c < a.conditions.size(); ++c) {
      EXPECT_EQ(a.conditions[c].codes, b.conditions[c].codes);
    }
  }
}

TEST(TranslateAll, WholeBatchMatchesPerQueryTranslateExactly) {
  // The decision-equivalence property on the translation side: one
  // amortised pass over the batch produces bit-identical codes to
  // translating each query alone.
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  WorkloadConfig wl;
  wl.seed = 77;
  wl.text_probability = 0.8;  // mix in untranslated queries too
  wl.max_text_values = 4;
  QueryGenerator gen(f.table.schema().dimensions(), f.table.schema(), wl);
  std::vector<Query> serial;
  std::vector<Query> batched;
  for (int i = 0; i < 40; ++i) {
    serial.push_back(gen.next());
    batched.push_back(serial.back());
  }
  for (Query& q : serial) batch.translate(q);
  std::vector<Query*> ptrs;
  for (Query& q : batched) ptrs.push_back(&q);
  batch.translate_all(ptrs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].conditions.size(), batched[i].conditions.size());
    for (std::size_t c = 0; c < serial[i].conditions.size(); ++c) {
      EXPECT_EQ(serial[i].conditions[c].codes,
                batched[i].conditions[c].codes)
          << "query " << i << " condition " << c;
    }
  }
}

TEST(TranslateAll, DuplicateTextKeysAcrossTheBatchAllResolve) {
  // Two queries asking for the SAME string (plus one repeating it within
  // a single condition) — the automaton reports every pattern index per
  // dictionary hit, so duplicates must each get the code.
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  const std::string key = f.dicts.for_column(col).decode(7);
  Query a;
  Condition ca;
  ca.dim = 1;
  ca.level = 3;
  ca.text_values = {key, key};  // duplicate within one condition
  a.conditions.push_back(ca);
  a.measures = {12};
  Query b;
  Condition cb;
  cb.dim = 1;
  cb.level = 3;
  cb.text_values = {key};  // duplicate across queries
  b.conditions.push_back(cb);
  b.measures = {12};
  std::vector<Query*> ptrs = {&a, &b};
  const TranslationReport report = batch.translate_all(ptrs);
  EXPECT_TRUE(report.all_found);
  EXPECT_EQ(report.parameters_translated, 3);
  // Still exactly ONE pass of the shared dictionary.
  EXPECT_EQ(report.dictionary_entries_scanned,
            f.dicts.for_column(col).size());
  EXPECT_EQ(a.conditions[0].codes, (std::vector<std::int32_t>{7, 7}));
  EXPECT_EQ(b.conditions[0].codes, (std::vector<std::int32_t>{7}));
}

TEST(TranslateAll, BatchSharingAColumnScansItsDictionaryOnce) {
  // k queries over one column: the amortisation the front-end buys.
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  std::vector<Query> queries(6);
  std::vector<Query*> ptrs;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Condition c;
    c.dim = 1;
    c.level = 3;
    c.text_values = {
        f.dicts.for_column(col).decode(static_cast<std::int32_t>(i))};
    queries[i].conditions.push_back(c);
    queries[i].measures = {12};
    ptrs.push_back(&queries[i]);
  }
  const TranslationReport report = batch.translate_all(ptrs);
  EXPECT_TRUE(report.all_found);
  EXPECT_EQ(report.parameters_translated, 6);
  EXPECT_EQ(report.dictionary_entries_scanned,
            f.dicts.for_column(col).size());  // one pass for all six
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].conditions[0].codes,
              (std::vector<std::int32_t>{static_cast<std::int32_t>(i)}));
  }
}

TEST(TranslateAll, BatchSpanningMultipleDictionariesScansEachOnce) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int geo = f.table.schema().dimension_column(1, 3);
  const int prod = f.table.schema().dimension_column(2, 3);
  // Query A touches geo, query B touches prod, query C touches both.
  Query a;
  {
    Condition c;
    c.dim = 1;
    c.level = 3;
    c.text_values = {f.dicts.for_column(geo).decode(0)};
    a.conditions.push_back(c);
    a.measures = {12};
  }
  Query b;
  {
    Condition c;
    c.dim = 2;
    c.level = 3;
    c.text_values = {f.dicts.for_column(prod).decode(1), "missing"};
    b.conditions.push_back(c);
    b.measures = {12};
  }
  Query c;
  {
    Condition g;
    g.dim = 1;
    g.level = 3;
    g.text_values = {f.dicts.for_column(geo).decode(2)};
    Condition p;
    p.dim = 2;
    p.level = 3;
    p.text_values = {f.dicts.for_column(prod).decode(3)};
    c.conditions.push_back(g);
    c.conditions.push_back(p);
    c.measures = {12};
  }
  std::vector<Query*> ptrs = {&a, &b, &c};
  const TranslationReport report = batch.translate_all(ptrs);
  EXPECT_FALSE(report.all_found);  // "missing" stays -1
  EXPECT_EQ(report.parameters_translated, 5);
  EXPECT_EQ(report.dictionary_entries_scanned,
            f.dicts.for_column(geo).size() + f.dicts.for_column(prod).size());
  EXPECT_EQ(a.conditions[0].codes, (std::vector<std::int32_t>{0}));
  EXPECT_EQ(b.conditions[0].codes, (std::vector<std::int32_t>{1, -1}));
  EXPECT_EQ(c.conditions[0].codes, (std::vector<std::int32_t>{2}));
  EXPECT_EQ(c.conditions[1].codes, (std::vector<std::int32_t>{3}));
}

}  // namespace
}  // namespace holap
