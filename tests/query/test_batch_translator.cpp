#include "query/batch_translator.hpp"

#include <gtest/gtest.h>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

struct Fixture {
  FactTable table;
  DictionarySet dicts;

  Fixture()
      : table([] {
          GeneratorConfig config;
          config.rows = 500;
          config.seed = 3;
          config.text_levels = {{1, 3}, {2, 3}};
          return generate_fact_table(tiny_model_dimensions(), config);
        }()),
        dicts(DictionarySet::build_from_table(table)) {}
};

TEST(BatchTranslator, ProducesSameCodesAsPerParameterTranslator) {
  Fixture f;
  const Translator reference(f.table.schema(), f.dicts);
  const BatchTranslator batch(f.table.schema(), f.dicts);
  WorkloadConfig wl;
  wl.seed = 91;
  wl.text_probability = 1.0;
  wl.max_text_values = 4;
  QueryGenerator gen(f.table.schema().dimensions(), f.table.schema(), wl);
  for (int i = 0; i < 50; ++i) {
    Query a = gen.next();
    Query b = a;
    reference.translate(a);
    batch.translate(b);
    ASSERT_EQ(a.conditions.size(), b.conditions.size());
    for (std::size_t c = 0; c < a.conditions.size(); ++c) {
      EXPECT_EQ(a.conditions[c].codes, b.conditions[c].codes)
          << "query " << i << " condition " << c;
    }
  }
}

TEST(BatchTranslator, AbsentStringsGetMinusOne) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {f.dicts.for_column(col).decode(2), "nope",
                   f.dicts.for_column(col).decode(5)};
  q.conditions.push_back(c);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_FALSE(report.all_found);
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{2, -1, 5}));
}

TEST(BatchTranslator, ScansEachColumnOnceRegardlessOfParameterCount) {
  // The whole point of the batch algorithm: eq. (18) becomes per-column.
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int col = f.table.schema().dimension_column(1, 3);
  const std::size_t dict_len = f.dicts.for_column(col).size();
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  for (int i = 0; i < 8; ++i) {
    c.text_values.push_back(f.dicts.for_column(col).decode(i));
  }
  q.conditions.push_back(c);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.parameters_translated, 8);
  EXPECT_EQ(report.dictionary_entries_scanned, dict_len);  // one pass!
}

TEST(BatchTranslator, TwoColumnsScanTwoDictionaries) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int geo = f.table.schema().dimension_column(1, 3);
  const int prod = f.table.schema().dimension_column(2, 3);
  Query q;
  Condition a;
  a.dim = 1;
  a.level = 3;
  a.text_values = {f.dicts.for_column(geo).decode(1)};
  Condition b;
  b.dim = 2;
  b.level = 3;
  b.text_values = {f.dicts.for_column(prod).decode(4), "missing"};
  q.conditions.push_back(a);
  q.conditions.push_back(b);
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.dictionary_entries_scanned,
            f.dicts.for_column(geo).size() + f.dicts.for_column(prod).size());
  EXPECT_EQ(q.conditions[0].codes, (std::vector<std::int32_t>{1}));
  EXPECT_EQ(q.conditions[1].codes, (std::vector<std::int32_t>{4, -1}));
}

TEST(BatchTranslator, UniqueDictionaryLengthsPerColumn) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  const int geo = f.table.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"a", "b", "c"};
  q.conditions.push_back(c);
  const auto lengths = batch.unique_dictionary_lengths(q);
  EXPECT_EQ(lengths,
            (std::vector<std::size_t>{f.dicts.for_column(geo).size()}));
}

TEST(BatchTranslator, NoTextIsNoOp) {
  Fixture f;
  const BatchTranslator batch(f.table.schema(), f.dicts);
  Query q;
  q.conditions.push_back({0, 1, 0, 1, {}, {}});
  q.measures = {12};
  const TranslationReport report = batch.translate(q);
  EXPECT_EQ(report.parameters_translated, 0);
  EXPECT_EQ(report.dictionary_entries_scanned, 0u);
  EXPECT_TRUE(report.all_found);
}

}  // namespace
}  // namespace holap
