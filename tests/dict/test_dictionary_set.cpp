#include "dict/dictionary_set.hpp"

#include <gtest/gtest.h>

#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable table_with_text() {
  GeneratorConfig config;
  config.rows = 400;
  config.text_levels = {{1, 3}, {2, 2}};
  return generate_fact_table(tiny_model_dimensions(), config);
}

TEST(DictionarySet, BuildsOneDictionaryPerTextColumn) {
  const FactTable t = table_with_text();
  const DictionarySet set = DictionarySet::build_from_table(t);
  EXPECT_EQ(set.column_count(), 2u);
  for (int col : t.schema().text_columns()) {
    EXPECT_TRUE(set.has_column(col));
  }
}

TEST(DictionarySet, DictionaryCodeEqualsMemberCode) {
  // The core invariant of §III-F: a stored code decodes to the canonical
  // member string, and encoding that string returns the same code.
  const FactTable t = table_with_text();
  const DictionarySet set = DictionarySet::build_from_table(t);
  for (int col : t.schema().text_columns()) {
    const Dictionary& dict = set.for_column(col);
    const auto codes = t.dim_column(col);
    for (std::size_t r = 0; r < t.row_count(); r += 17) {
      const std::string& s = dict.decode(codes[r]);
      EXPECT_EQ(dict.find(s, DictSearch::kHashed), codes[r]);
    }
  }
}

TEST(DictionarySet, DictionaryCoversCodePrefix) {
  const FactTable t = table_with_text();
  const DictionarySet set = DictionarySet::build_from_table(t);
  for (int col : t.schema().text_columns()) {
    const auto codes = t.dim_column(col);
    const auto max_code = *std::max_element(codes.begin(), codes.end());
    EXPECT_EQ(set.for_column(col).size(),
              static_cast<std::size_t>(max_code) + 1);
  }
}

TEST(DictionarySet, PerColumnDictionariesAreIndependent) {
  // §III-F's design point: "a smaller dictionary for each text column …
  // rather than one large dictionary for all text columns".
  const FactTable t = table_with_text();
  DictionarySet set = DictionarySet::build_from_table(t);
  const auto cols = set.columns();
  ASSERT_EQ(cols.size(), 2u);
  // Adding to one dictionary does not affect the other.
  const std::size_t before = set.for_column(cols[1]).size();
  set.for_column(cols[0]).encode_or_add("brand new string");
  EXPECT_EQ(set.for_column(cols[1]).size(), before);
}

TEST(DictionarySet, MissingColumnThrows) {
  DictionarySet set;
  EXPECT_THROW(set.for_column(3), InvalidArgument);
}

TEST(DictionarySet, NoTextColumnsYieldsEmptySet) {
  GeneratorConfig config;
  config.rows = 10;
  const FactTable t =
      generate_fact_table(tiny_model_dimensions(), config);
  const DictionarySet set = DictionarySet::build_from_table(t);
  EXPECT_EQ(set.column_count(), 0u);
  EXPECT_EQ(set.memory_bytes(), 0u);
}

TEST(DictionarySet, MemoryAggregatesAcrossColumns) {
  const FactTable t = table_with_text();
  const DictionarySet set = DictionarySet::build_from_table(t);
  std::size_t sum = 0;
  for (int col : set.columns()) sum += set.for_column(col).memory_bytes();
  EXPECT_EQ(set.memory_bytes(), sum);
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace holap
