#include "dict/dictionary.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "relational/names.hpp"

namespace holap {
namespace {

TEST(Dictionary, EncodeAssignsDenseCodes) {
  Dictionary d;
  EXPECT_EQ(d.encode_or_add("alpha"), 0);
  EXPECT_EQ(d.encode_or_add("beta"), 1);
  EXPECT_EQ(d.encode_or_add("gamma"), 2);
  EXPECT_EQ(d.size(), 3u);
}

TEST(Dictionary, EncodeIsIdempotent) {
  Dictionary d;
  d.encode_or_add("alpha");
  d.encode_or_add("beta");
  EXPECT_EQ(d.encode_or_add("alpha"), 0);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dictionary, DecodeRoundTrips) {
  Dictionary d;
  for (std::uint64_t i = 0; i < 500; ++i) {
    d.encode_or_add(synth_name(NameKind::kCity, i));
  }
  for (std::int32_t code = 0; code < 500; ++code) {
    EXPECT_EQ(d.decode(code),
              synth_name(NameKind::kCity, static_cast<std::uint64_t>(code)));
  }
}

TEST(Dictionary, DecodeRejectsOutOfRange) {
  Dictionary d;
  d.encode_or_add("only");
  EXPECT_THROW(d.decode(-1), InvalidArgument);
  EXPECT_THROW(d.decode(1), InvalidArgument);
}

class DictionarySearch : public ::testing::TestWithParam<DictSearch> {};

TEST_P(DictionarySearch, FindsPresentStrings) {
  Dictionary d;
  for (std::uint64_t i = 0; i < 200; ++i) {
    d.encode_or_add(synth_name(NameKind::kPerson, i));
  }
  for (std::uint64_t i = 0; i < 200; i += 13) {
    const auto code = d.find(synth_name(NameKind::kPerson, i), GetParam());
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, static_cast<std::int32_t>(i));
  }
}

TEST_P(DictionarySearch, AbsentStringsReturnNullopt) {
  Dictionary d;
  d.encode_or_add("present");
  EXPECT_EQ(d.find("absent", GetParam()), std::nullopt);
}

TEST_P(DictionarySearch, StrategiesAgree) {
  Dictionary d;
  for (std::uint64_t i = 0; i < 300; ++i) {
    d.encode_or_add(synth_name(NameKind::kBrand, i));
  }
  for (std::uint64_t i = 0; i < 300; i += 7) {
    const auto s = synth_name(NameKind::kBrand, i);
    EXPECT_EQ(d.find(s, DictSearch::kLinearScan),
              d.find(s, DictSearch::kHashed));
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, DictionarySearch,
                         ::testing::Values(DictSearch::kLinearScan,
                                           DictSearch::kHashed));

TEST(Dictionary, ContainsUsesHashedPath) {
  Dictionary d;
  d.encode_or_add("x");
  EXPECT_TRUE(d.contains("x"));
  EXPECT_FALSE(d.contains("y"));
}

TEST(Dictionary, MemoryGrowsWithContent) {
  Dictionary small, large;
  small.encode_or_add("a");
  for (std::uint64_t i = 0; i < 1000; ++i) {
    large.encode_or_add(synth_name(NameKind::kCity, i));
  }
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(Dictionary, IndexViewsSurviveHeavyGrowth) {
  // Regression: the hashed index keys are string_views into the stored
  // strings. Short keys sit in the string objects themselves (SSO), so if
  // the backing container relocated its elements while growing, every
  // previously-indexed view would dangle — a bug ASan catches the moment
  // the index is probed after enough growth. The store must therefore
  // have stable element addresses (std::deque, never std::vector).
  Dictionary d;
  constexpr std::uint64_t kKeys = 4096;  // far past any growth threshold
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    // "k0".."k4095": all well inside SSO capacity.
    d.encode_or_add("k" + std::to_string(i));
  }
  ASSERT_EQ(d.size(), kKeys);
  // Probe every key through the hashed index: each lookup hashes and
  // compares the stored view, so a dangling view cannot go unnoticed.
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto code = d.find(key, DictSearch::kHashed);
    ASSERT_TRUE(code.has_value()) << key;
    EXPECT_EQ(*code, static_cast<std::int32_t>(i));
    EXPECT_EQ(d.decode(*code), key);
  }
  // Growth after probing must not invalidate earlier entries either.
  for (std::uint64_t i = kKeys; i < 2 * kKeys; ++i) {
    d.encode_or_add("k" + std::to_string(i));
  }
  EXPECT_EQ(d.find("k0", DictSearch::kHashed), 0);
  EXPECT_EQ(d.find("k" + std::to_string(kKeys - 1), DictSearch::kHashed),
            static_cast<std::int32_t>(kKeys - 1));
}

TEST(Dictionary, EmptyDictionaryBehaviour) {
  Dictionary d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.find("anything", DictSearch::kLinearScan), std::nullopt);
  EXPECT_EQ(d.find("anything", DictSearch::kHashed), std::nullopt);
}

}  // namespace
}  // namespace holap
