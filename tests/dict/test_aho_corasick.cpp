#include "dict/aho_corasick.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "relational/names.hpp"

namespace holap {
namespace {

std::vector<std::string_view> views(const std::vector<std::string>& ss) {
  return {ss.begin(), ss.end()};
}

TEST(AhoCorasick, FindsAllOccurrences) {
  const std::vector<std::string> patterns{"he", "she", "his", "hers"};
  const AhoCorasick ac(views(patterns));
  const auto hits = ac.match("ushers");
  // "ushers": she@4, he@4, hers@6.
  ASSERT_EQ(hits.size(), 3u);
  std::set<std::pair<std::size_t, std::size_t>> got;
  for (const auto& h : hits) got.insert({h.pattern, h.end});
  EXPECT_TRUE(got.contains({1, 4}));  // she
  EXPECT_TRUE(got.contains({0, 4}));  // he
  EXPECT_TRUE(got.contains({3, 6}));  // hers
}

TEST(AhoCorasick, OverlappingAndNestedPatterns) {
  const std::vector<std::string> patterns{"a", "aa", "aaa"};
  const AhoCorasick ac(views(patterns));
  const auto hits = ac.match("aaaa");
  // a x4, aa x3, aaa x2 = 9 occurrences.
  EXPECT_EQ(hits.size(), 9u);
}

TEST(AhoCorasick, NoMatches) {
  const std::vector<std::string> patterns{"xyz"};
  const AhoCorasick ac(views(patterns));
  EXPECT_TRUE(ac.match("abcabcabc").empty());
}

TEST(AhoCorasick, MatchAgainstNaiveOracleOnRandomText) {
  SplitMix64 rng(4242);
  std::vector<std::string> patterns;
  for (int i = 0; i < 12; ++i) {
    std::string p;
    const int len = static_cast<int>(rng.uniform_int(1, 4));
    for (int j = 0; j < len; ++j) {
      p += static_cast<char>('a' + rng.uniform(3));
    }
    patterns.push_back(std::move(p));
  }
  const AhoCorasick ac(views(patterns));
  for (int trial = 0; trial < 20; ++trial) {
    std::string text;
    for (int j = 0; j < 60; ++j) {
      text += static_cast<char>('a' + rng.uniform(3));
    }
    std::multiset<std::pair<std::size_t, std::size_t>> expected;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      for (std::size_t pos = 0;
           (pos = text.find(patterns[p], pos)) != std::string::npos; ++pos) {
        expected.insert({p, pos + patterns[p].size()});
      }
    }
    std::multiset<std::pair<std::size_t, std::size_t>> got;
    for (const auto& h : ac.match(text)) got.insert({h.pattern, h.end});
    EXPECT_EQ(got, expected) << "trial " << trial << " text " << text;
  }
}

TEST(AhoCorasick, MatchExactIdentifiesWholeStringOnly) {
  const std::vector<std::string> patterns{"Marlo", "Marlowick",
                                          "wick", "Denborough"};
  const AhoCorasick ac(views(patterns));
  const auto hits = ac.match_exact("Marlowick");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);  // only the full-length pattern
  EXPECT_TRUE(ac.match_exact("Marlow").empty());
  EXPECT_TRUE(ac.match_exact("").empty());
  EXPECT_EQ(ac.match_exact("Denborough"),
            (std::vector<std::size_t>{3}));
}

TEST(AhoCorasick, DuplicatePatternsBothReported) {
  const std::vector<std::string> patterns{"same", "same"};
  const AhoCorasick ac(views(patterns));
  auto hits = ac.match_exact("same");
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));
}

TEST(AhoCorasick, EmptyPatternRejected) {
  const std::vector<std::string> patterns{""};
  EXPECT_THROW(AhoCorasick(views(patterns)), InvalidArgument);
}

TEST(AhoCorasick, NoPatternsIsLegalAndMatchesNothing) {
  const AhoCorasick ac({});
  EXPECT_TRUE(ac.match("anything").empty());
  EXPECT_TRUE(ac.match_exact("anything").empty());
}

TEST(AhoCorasick, ScanStreamsMatchesInOrder) {
  const std::vector<std::string> patterns{"ab", "b"};
  const AhoCorasick ac(views(patterns));
  std::vector<std::size_t> ends;
  ac.scan("abab", [&](std::size_t, std::size_t end) {
    ends.push_back(end);
  });
  EXPECT_TRUE(std::is_sorted(ends.begin(), ends.end()));
  EXPECT_EQ(ends.size(), 4u);  // ab@2, b@2, ab@4, b@4
}

TEST(AhoCorasick, SyntheticNameDictionarySweep) {
  // Exactly the translation use case: patterns are query parameters,
  // texts are dictionary entries.
  std::vector<std::string> params;
  for (std::uint64_t i : {3ull, 999ull, 5000ull}) {
    params.push_back(synth_name(NameKind::kCity, i));
  }
  const AhoCorasick ac(views(params));
  int found = 0;
  for (std::uint64_t i = 0; i < 6000; ++i) {
    const auto hits = ac.match_exact(synth_name(NameKind::kCity, i));
    if (!hits.empty()) {
      ++found;
      EXPECT_EQ(params[hits[0]], synth_name(NameKind::kCity, i));
    }
  }
  EXPECT_EQ(found, 3);
}

}  // namespace
}  // namespace holap
