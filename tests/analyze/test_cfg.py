#!/usr/bin/env python3
"""Unit tests for the SIR parser and CFG lowering in scripts/analyze/cfg
plus the forward-dataflow fixpoint in dataflow.py. These pin the block
and edge shapes every path-sensitive rule depends on: if/else joins,
loop back-edges (both normal and assume-loops-entered form), switch
dispatch with fallthrough, early returns, break/continue, and the
conservative exception edges into catch handlers or EXC_EXIT. Everything
runs on in-memory sources, no fixture tree needed."""

from __future__ import annotations

import pathlib
import sys
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "scripts" / "analyze"))

import cfg  # noqa: E402
import dataflow  # noqa: E402
from cfg import EXC_EXIT, EXIT, If, Loop, Seq, Stmt, Switch, Try  # noqa: E402


def parse(body: str) -> Seq:
    """SIR for a braced function body given as plain source text."""
    text = "void f() " + body
    open_pos = text.index("{")

    def line_of(offset: int) -> int:
        return text.count("\n", 0, offset) + 1

    from cppmodel import match_brace
    return cfg.parse_function(text, open_pos, match_brace(text, open_pos),
                              line_of)


def edges(graph: cfg.CFG) -> set:
    """Every (src, dst, kind) edge of the CFG."""
    return {(b.bid, dst, kind)
            for b in graph.blocks.values() for dst, kind in b.succs}


def edges_into(graph: cfg.CFG, target: int) -> list:
    return [(b.bid, kind)
            for b in graph.blocks.values() for dst, kind in b.succs
            if dst == target]


def stmt_block(graph: cfg.CFG, needle: str) -> cfg.Block:
    """The unique block containing a statement whose text has `needle`."""
    hits = [b for b in graph.blocks.values()
            if any(needle in s.text for s in b.stmts)]
    assert len(hits) == 1, f"{needle!r} in {len(hits)} blocks"
    return hits[0]


class ParserShapes(unittest.TestCase):
    def test_if_else_and_leaf_kinds(self):
        sir = parse("{ int x = 0; if (x > 0) { return; } else { x = 1; } }")
        self.assertEqual([type(n) for n in sir.children], [Stmt, If])
        node = sir.children[1]
        self.assertEqual(node.cond.text, "x > 0")
        self.assertEqual(node.then.children[0].kind, "return")
        self.assertEqual(node.orelse.children[0].kind, "expr")

    def test_unbraced_bodies_and_line_numbers(self):
        sir = parse("{\n  if (a)\n    return;\n  b();\n}")
        node = sir.children[0]
        self.assertEqual(node.then.children[0].line, 3)
        self.assertIsNone(node.orelse)
        self.assertEqual(sir.children[1].line, 4)

    def test_loop_kinds(self):
        sir = parse("{ while (a) {} for (int i = 0; i < n; ++i) {} "
                    "for (auto& x : xs) {} do { a(); } while (b); }")
        kinds = [n.kind for n in sir.children if isinstance(n, Loop)]
        self.assertEqual(kinds, ["while", "for", "rangefor", "dowhile"])

    def test_switch_groups_and_default(self):
        sir = parse("{ switch (k) { case A: case B: a(); break; "
                    "default: b(); } }")
        node = sir.children[0]
        self.assertIsInstance(node, Switch)
        self.assertTrue(node.has_default)
        self.assertEqual([labels for labels, _ in node.groups],
                         [["A", "B"], ["default"]])

    def test_try_with_two_handlers(self):
        sir = parse("{ try { a(); } catch (const X& e) { b(); } "
                    "catch (...) { c(); } }")
        node = sir.children[0]
        self.assertIsInstance(node, Try)
        self.assertEqual(len(node.handlers), 2)
        self.assertEqual(node.body.children[0].text, "a()")

    def test_lambda_semicolons_do_not_split_statement(self):
        sir = parse("{ run([] { x(); y(); }); z(); }")
        self.assertEqual(len(sir.children), 2)
        self.assertIn("x(); y();", sir.children[0].text)

    def test_walk_and_outside_try(self):
        sir = parse("{ a(); try { b(); } catch (...) { c(); } d(); }")
        self.assertEqual([s.text for s in cfg.walk_stmts(sir)],
                         ["a()", "b()", "c()", "d()"])
        # b() is protected; the handler body and everything else is not.
        self.assertEqual([s.text for s in cfg.stmts_outside_try(sir)],
                         ["a()", "c()", "d()"])


class LoweringShapes(unittest.TestCase):
    def test_if_else_joins(self):
        g = cfg.lower(parse("{ if (p) { a(); } else { b(); } c(); }"))
        cond = stmt_block(g, "p")
        then_b = stmt_block(g, "a()")
        else_b = stmt_block(g, "b()")
        join = stmt_block(g, "c()")
        e = edges(g)
        self.assertIn((cond.bid, then_b.bid, "true"), e)
        self.assertIn((cond.bid, else_b.bid, "false"), e)
        self.assertIn((then_b.bid, join.bid, "fall"), e)
        self.assertIn((else_b.bid, join.bid, "fall"), e)
        self.assertIn((join.bid, EXIT, "fall"), e)

    def test_if_without_else_falls_to_join(self):
        g = cfg.lower(parse("{ if (p) { a(); } c(); }"))
        cond = stmt_block(g, "p")
        join = stmt_block(g, "c()")
        self.assertIn((cond.bid, join.bid, "false"), edges(g))

    def test_while_head_true_false_and_back_edge(self):
        g = cfg.lower(parse("{ while (p) { a(); } c(); }"))
        head = stmt_block(g, "p")
        body = stmt_block(g, "a()")
        after = stmt_block(g, "c()")
        e = edges(g)
        self.assertIn((head.bid, body.bid, "true"), e)
        self.assertIn((head.bid, after.bid, "false"), e)
        self.assertIn((body.bid, head.bid, "back"), e)

    def test_assume_loops_entered_is_body_first(self):
        g = cfg.lower(parse("{ while (p) { a(); } c(); }"),
                      assume_loops_entered=True)
        head = stmt_block(g, "p")
        body = stmt_block(g, "a()")
        e = edges(g)
        # Body precedes the condition: body falls into the head, the head
        # loops back — there is no edge that skips the body entirely.
        self.assertIn((body.bid, head.bid, "fall"), e)
        self.assertIn((head.bid, body.bid, "back"), e)
        self.assertNotIn((head.bid, body.bid, "true"), e)
        into_body = {kind for src, kind in edges_into(g, body.bid)}
        self.assertEqual(into_body, {"fall", "back"})

    def test_dowhile_is_body_first_without_the_flag(self):
        g = cfg.lower(parse("{ do { a(); } while (p); c(); }"))
        head = stmt_block(g, "p")
        body = stmt_block(g, "a()")
        self.assertIn((head.bid, body.bid, "back"), edges(g))
        self.assertIn((body.bid, head.bid, "fall"), edges(g))

    def test_break_and_continue_edges(self):
        g = cfg.lower(parse(
            "{ while (p) { if (q) break; if (r) continue; a(); } c(); }"))
        head = stmt_block(g, "p")
        after = stmt_block(g, "c()")
        brk = stmt_block(g, "break")
        cont = stmt_block(g, "continue")
        e = edges(g)
        self.assertIn((brk.bid, after.bid, "break"), e)
        self.assertIn((cont.bid, head.bid, "continue"), e)

    def test_switch_dispatch_fallthrough_and_no_default_bypass(self):
        g = cfg.lower(parse("{ switch (sel) { case A: a(); case B: b(); "
                            "break; } c(); }"))
        disp = stmt_block(g, "sel")
        a_b = stmt_block(g, "a()")
        b_b = stmt_block(g, "b()")
        after = stmt_block(g, "c()")
        e = edges(g)
        self.assertIn((disp.bid, a_b.bid, "case"), e)
        self.assertIn((disp.bid, b_b.bid, "case"), e)
        self.assertIn((a_b.bid, b_b.bid, "fall"), e)  # fallthrough A -> B
        # No default: the dispatch can bypass every group.
        self.assertIn((disp.bid, after.bid, "case"), e)

    def test_early_return_reaches_exit(self):
        g = cfg.lower(parse("{ if (p) { return; } a(); }"))
        ret = stmt_block(g, "return")
        self.assertIn((ret.bid, EXIT, "return"), edges(g))

    def test_throwing_stmt_gets_exc_edge_to_exc_exit(self):
        g = cfg.lower(parse("{ a(); risky(); b(); }"),
                      throws=lambda s: "risky" in s.text)
        risky = stmt_block(g, "risky")
        e = edges(g)
        self.assertIn((risky.bid, EXC_EXIT, "exc"), e)
        # The throwing call still falls through on the normal path.
        after = stmt_block(g, "b()")
        self.assertIn((risky.bid, after.bid, "fall"), e)

    def test_exc_edge_lands_in_nearest_catch_handler(self):
        g = cfg.lower(parse("{ try { risky(); } catch (...) { h(); } "
                            "c(); }"), throws=lambda s: "risky" in s.text)
        risky = stmt_block(g, "risky")
        handler = stmt_block(g, "h()")
        join = stmt_block(g, "c()")
        e = edges(g)
        self.assertIn((risky.bid, handler.bid, "exc"), e)
        self.assertNotIn((risky.bid, EXC_EXIT, "exc"), e)
        self.assertIn((handler.bid, join.bid, "fall"), e)

    def test_explicit_throw_terminates_the_block(self):
        g = cfg.lower(parse("{ if (p) { throw X{}; } a(); }"))
        thr = stmt_block(g, "throw")
        self.assertIn((thr.bid, EXC_EXIT, "exc"), edges(g))
        # A throw never falls through to the statement after it.
        kinds = {kind for _, kind in thr.succs}
        self.assertEqual(kinds, {"exc"})


class ForwardDataflow(unittest.TestCase):
    """The fixpoint framework on a tiny assigned-names analysis."""

    @staticmethod
    def analysis(body: str, **lower_kwargs):
        g = cfg.lower(parse(body), **lower_kwargs)

        def transfer(stmt, state):
            if "=" in stmt.text and stmt.kind == "expr":
                return state | {stmt.text.split("=")[0].strip()}
            return state

        return g, dataflow.run_forward(
            g, init=frozenset(), transfer=transfer,
            join=lambda states: frozenset().union(*states))

    def test_branches_union_at_the_join(self):
        _, res = self.analysis("{ if (p) { x = 1; } else { y = 2; } "
                               "return; }")
        (exit_edge,) = [e for e in res.exit_edges if e.kind == "return"]
        self.assertEqual(exit_edge.state, {"x", "y"})

    def test_loop_body_facts_reach_the_exit(self):
        _, res = self.analysis("{ while (p) { x = 1; } return; }")
        (exit_edge,) = [e for e in res.exit_edges if e.kind == "return"]
        # May-analysis: the zero-trip path keeps the empty set, the
        # through-body path adds x; union survives the back-edge fixpoint.
        self.assertEqual(exit_edge.state, {"x"})

    def test_exc_edge_carries_pre_terminator_state(self):
        g = cfg.lower(parse("{ x = 1; risky(); return; }"),
                      throws=lambda s: "risky" in s.text)

        def transfer(stmt, state):
            if stmt.text.startswith("x ="):
                return state | {"x"}
            if "risky" in stmt.text:
                return state | {"risky-ran"}
            return state

        res = dataflow.run_forward(
            g, init=frozenset(), transfer=transfer,
            join=lambda states: frozenset().union(*states))
        (exc,) = res.exc_edges
        self.assertEqual(exc.state, {"x"})  # not {'x', 'risky-ran'}
        (ret,) = [e for e in res.exit_edges if e.kind == "return"]
        self.assertEqual(ret.state, {"x", "risky-ran"})

    def test_edge_transfer_refines_one_branch(self):
        g = cfg.lower(parse("{ if (!x) { a(); } b(); return; }"))

        def edge_transfer(stmt, kind, state):
            if stmt.kind == "cond" and stmt.text == "!x" and kind == "true":
                return state - {"x"}
            return state

        res = dataflow.run_forward(
            g, init=frozenset({"x"}), transfer=lambda s, st: st,
            join=lambda states: frozenset().union(*states),
            edge_transfer=edge_transfer)
        then_b = stmt_block(g, "a()")
        self.assertEqual(res.block_in[then_b.bid], frozenset())
        # The join below sees both branches again.
        join_b = stmt_block(g, "b()")
        self.assertEqual(res.block_in[join_b.bid], {"x"})

    def test_replay_visits_with_converged_in_state(self):
        g, res = self.analysis("{ x = 1; if (p) { y = 2; } z(); return; }")
        seen = {}

        def visit(stmt, state):
            seen[stmt.text] = state
            if "=" in stmt.text and stmt.kind == "expr":
                return state | {stmt.text.split("=")[0].strip()}
            return state

        dataflow.replay(g, res, visit)
        self.assertEqual(seen["x = 1"], frozenset())
        self.assertEqual(seen["y = 2"], {"x"})
        self.assertEqual(seen["z()"], {"x", "y"})


if __name__ == "__main__":
    unittest.main()
