#!/usr/bin/env python3
"""Golden tests for scripts/analyze/: every must-flag fixture is flagged
at the expected location, the must-pass fixtures stay silent, rule
selection works, and the lint shim keeps its contract."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
ANALYZE = REPO / "scripts" / "analyze" / "analyze.py"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_findings.json"


def run_analyze(*args: str) -> tuple[int, dict, str]:
    """(exit code, parsed --json payload, stdout+stderr)."""
    with tempfile.NamedTemporaryFile(suffix=".json", mode="r") as out:
        proc = subprocess.run(
            [sys.executable, str(ANALYZE), "--json", out.name, *args],
            capture_output=True, text=True, cwd=REPO, check=False)
        payload = json.loads(pathlib.Path(out.name).read_text() or "{}")
    return proc.returncode, payload, proc.stdout + proc.stderr


class MustFlagFixtures(unittest.TestCase):
    def test_findings_match_golden(self):
        code, payload, output = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none")
        self.assertEqual(code, 1, output)
        got = [{"rule": f["rule"], "path": f["path"], "line": f["line"]}
               for f in payload["findings"]]
        want = json.loads(GOLDEN.read_text())["findings"]
        self.assertEqual(got, want)

    def test_every_rule_fires(self):
        _, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none")
        fired = {f["rule"] for f in payload["findings"]}
        self.assertEqual(fired, {
            "determinism", "raw-new-delete", "include-hygiene",
            "clock-ledger", "batch-ledger", "enum-exhaustive",
            "bounded-queue", "unit-escape", "span-lifecycle",
            "retry-bound", "lock-order", "blocking", "waitnotify",
            "definite-outcome", "ledger-balance-paths",
            "repartition-invalidation",
        })

    def test_abba_deadlock_prints_both_witness_paths(self):
        _, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none",
            "--rules", "lock-order")
        cycles = [f for f in payload["findings"]
                  if "lock-order cycle" in f["message"]]
        self.assertEqual(len(cycles), 1)
        msg = cycles[0]["message"]
        # Both orders appear, and each witness is interprocedural: the
        # acquiring function differs from the one making the call.
        self.assertIn("RouteTable::health_mutex_ then "
                      "RouteTable::routing_mutex_", msg)
        self.assertIn("RouteTable::routing_mutex_ then "
                      "RouteTable::health_mutex_", msg)
        self.assertIn("calls touch_routing in RouteTable::rebalance", msg)
        self.assertIn("calls touch_health in RouteTable::route", msg)

    def test_blocking_flags_queue_pop_join_and_future_get(self):
        _, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none",
            "--rules", "blocking")
        in_aggregator = [f["message"] for f in payload["findings"]
                         if f["path"] == "src/olap/aggregator.cpp"]
        self.assertEqual(len(in_aggregator), 3)
        joined = "\n".join(in_aggregator)
        self.assertIn("BlockingQueue::pop", joined)
        self.assertIn("std::thread::join", joined)
        self.assertIn("std::future::get", joined)

    def test_waitnotify_flags_naked_wait_and_unserialised_notify(self):
        _, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none",
            "--rules", "waitnotify")
        msgs = [f["message"] for f in payload["findings"]]
        self.assertTrue(any("outside a predicate loop" in m for m in msgs))
        self.assertTrue(any("without ever holding the waiter's mutex" in m
                            for m in msgs))

    def test_rule_selection_restricts_output(self):
        code, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none",
            "--rules", "clock-ledger")
        self.assertEqual(code, 1)
        rules = {f["rule"] for f in payload["findings"]}
        self.assertEqual(rules, {"clock-ledger"})

    def test_ledger_pairing_names_the_unrolled_family(self):
        _, payload, _ = run_analyze(
            "--root", str(FIXTURES / "must_flag"), "--baseline", "none",
            "--rules", "clock-ledger")
        pairing = [f for f in payload["findings"]
                   if "ever rolls it back" in f["message"]]
        self.assertEqual(len(pairing), 1)
        self.assertIn("dispatch", pairing[0]["message"])


class MustPassFixtures(unittest.TestCase):
    def test_clean(self):
        code, payload, output = run_analyze(
            "--root", str(FIXTURES / "must_pass"), "--baseline", "none")
        self.assertEqual(code, 0, output)
        self.assertEqual(payload["findings"], [])


class RepoIsClean(unittest.TestCase):
    def test_all_rules_with_baseline(self):
        code, payload, output = run_analyze()
        self.assertEqual(code, 0, output)
        self.assertEqual(payload["findings"], [])
        # The baseline must be live, not a graveyard of stale entries.
        self.assertEqual(payload["stale_baseline_entries"], 0)


class LintShim(unittest.TestCase):
    def test_forwards_to_lint_rules(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "lint.py")],
            capture_output=True, text=True, cwd=REPO, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_fix_dry_run_flag_still_accepted(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "lint.py"),
             "--fix-dry-run"],
            capture_output=True, text=True, cwd=REPO, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
