// Fixture: catalog access around repartition apply() that must pass —
// reads re-issued after the apply, or completed strictly before it.
namespace holap {

int Elastic::rebalance(const RepartitionDecision& d) {
  scheduler_->apply_repartition(d);
  const DevicePartition& part = catalog_->device(d.keeper);
  return part.sm_share;
}

int Elastic::width_before(const RepartitionDecision& d) {
  const DevicePartition& part = catalog_->device(d.keeper);
  const int width = part.sm_share;  // read completes before apply()
  scheduler_->apply_repartition(d);
  return width;
}

}  // namespace holap
