// Fixture: a bounded member queue whose capacity comes from the
// constructor init-list in exec.cpp.
#pragma once

#include <memory>
#include <vector>

namespace holap {

class Exec {
 public:
  explicit Exec(std::size_t capacity);

 private:
  BlockingQueue<int> queue_;
  std::vector<std::unique_ptr<BlockingQueue<int>>> gpu_queues_;
};

void drain(BlockingQueue<int>& queue);

}  // namespace holap
