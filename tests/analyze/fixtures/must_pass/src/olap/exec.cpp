// Fixture: bounded constructions the rule must accept.
#include "olap/exec.hpp"

namespace holap {

Exec::Exec(std::size_t capacity) : queue_(capacity) {
  gpu_queues_.push_back(std::make_unique<BlockingQueue<int>>(capacity));
}

void drain(BlockingQueue<int>& queue) {
  BlockingQueue<int> scratch(4);
  while (auto item = queue.pop()) scratch.push(*item);
}

void Exec::admit(std::vector<Query> batch) {
  auto placed = scheduler_->schedule_batch(batch, now_);
  if (down_) {
    scheduler_->rollback_batch(placed);  // batch-granular undo on shutdown
    return;
  }
  route(placed);
}

}  // namespace holap
