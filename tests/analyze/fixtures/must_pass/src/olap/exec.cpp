// Fixture: bounded constructions the rule must accept.
#include "olap/exec.hpp"

namespace holap {

Exec::Exec(std::size_t capacity) : queue_(capacity) {
  gpu_queues_.push_back(std::make_unique<BlockingQueue<int>>(capacity));
}

void drain(BlockingQueue<int>& queue) {
  BlockingQueue<int> scratch(4);
  while (auto item = queue.pop()) scratch.push(*item);
}

}  // namespace holap
