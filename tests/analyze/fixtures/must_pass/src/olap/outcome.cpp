// Fixture: path-sensitive outcome/ledger shapes the rules must accept —
// every path resolves exactly once, exception edges land in handlers
// that resolve, a try_push transfer is conditional, an empty optional
// carries no obligation, and clock commits discharge on all paths.
#include <future>
#include <utility>

namespace holap {

// All paths resolve exactly once.
void Outcome::resolve_unrun(Job job, ExecutionOutcome outcome) {
  ExecutionReport report;
  report.outcome = outcome;
  if (outcome == ExecutionOutcome::kRejected) ++rejected_;
  job.promise.set_value(std::move(report));
}

// The worker catches data-dependent failures and resolves typed.
void Outcome::worker() {
  while (auto job = queue_.pop()) {
    try {
      system_->translate(job->query);
      finish(std::move(*job));
    } catch (const std::exception&) {
      resolve_unrun(std::move(*job), ExecutionOutcome::kFailed);
    }
  }
}

// Conditional transfer: try_push may keep or return the job — after the
// handoff both a resolving branch and a clean exit are fine.
void Outcome::enqueue(Job job) {
  if (queue_.try_push(job)) return;
  resolve_unrun(std::move(job), ExecutionOutcome::kShedInQueue);
}

// An empty optional is not an obligation: the has_value() guard kills
// the slot on the early-return edge.
void Outcome::aggregate() {
  auto first = queue_.pop_for(timeout_);
  if (!first.has_value()) return;
  route(std::move(*first));
}

// The commit discharges on every path, including the exception edge
// (decide() stages nothing for a rejected placement, so that early
// return owes the ledger nothing).
std::future<ExecutionReport> Outcome::submit(Query q) {
  Job job;
  job.query = std::move(q);
  std::future<ExecutionReport> future = job.promise.get_future();
  job.placement = scheduler_->schedule(job.query, now_);
  if (job.placement.rejected) {
    ExecutionReport report;
    report.outcome = ExecutionOutcome::kRejected;
    job.promise.set_value(std::move(report));
    return future;
  }
  try {
    fault_->run_submit_hook();
  } catch (const std::exception&) {
    resolve_unrun(std::move(job), ExecutionOutcome::kFailed);
    return future;
  }
  route(std::move(job));
  return future;
}

}  // namespace holap
