// Fixture: exhaustive switch (no default), an int if-chain with an
// explicit fallthrough, and an int switch without a default label.
#include "query/kinds.hpp"

namespace holap {

const char* name(Color c) {
  switch (c) {
    case Color::kRed:
      return "red";
    case Color::kGreen:
      return "green";
    case Color::kBlue:
      return "blue";
  }
  return "unknown";
}

int cheap_rank(int dim) {
  if (dim == 1) return 10;
  if (dim == 2) return 20;
  return 0;
}

int named_rank(int dim) {
  switch (dim) {
    case 1:
      return 10;
    case 2:
      return 20;
  }
  return 0;
}

}  // namespace holap
