// Fixture: scoped enum handled exhaustively.
#pragma once

namespace holap {

enum class Color {
  kRed,
  kGreen,
  kBlue,
};

const char* name(Color c);
int cheap_rank(int dim);

}  // namespace holap
