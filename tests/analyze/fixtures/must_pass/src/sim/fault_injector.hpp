// Fixture stub: the pinned deterministic root must exist in the tree.
#pragma once

namespace holap {
struct FaultInjector {};
}  // namespace holap
