// Fixture: unit arithmetic without escapes.
#include "perfmodel/model.hpp"

namespace holap {

Seconds TinyModel::seconds(Megabytes sc_mb) const {
  const Seconds t = sc_mb / MbPerSec{1024.0};
  const double raw = t.value();  // unwrap at an I/O boundary is fine
  return t + Seconds{0.5} * raw;
}

double TinyModel::scale(double fraction) const { return fraction * 2.0; }

}  // namespace holap
