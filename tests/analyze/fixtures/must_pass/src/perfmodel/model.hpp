// Fixture: signatures the unit-escape rule must accept — strong types
// may carry unit-suffixed names; raw doubles may not carry units.
#pragma once

namespace holap {

class TinyModel {
 public:
  Seconds seconds(Megabytes sc_mb) const;
  double scale(double fraction) const;
};

}  // namespace holap
