// Fixture: TraceSpan handled inside src/obs — the one place it may be.
namespace holap {

void record_locally() {
  TraceSpan span;
  span.query_id = 1;
  (void)span;
}

}  // namespace holap
