// Fixture: a correctly paired clock ledger — every family schedule()
// commits is rolled back or corrected by a feedback hook, reads in
// unblessed members are fine, and comparisons are not mutations.
namespace holap {

Seconds& QueueingScheduler::clock_for(QueueRef ref) {
  if (ref.kind == QueueRef::kCpu) return cpu_clock_;
  return gpu_clocks_[static_cast<std::size_t>(ref.index)];
}

Placement QueueingScheduler::schedule(const Query& q, Seconds now) {
  trans_clock_ = now + est_;
  dispatch_clocks_[0] += kDispatch;
  clock_for(ref_) = now + est_;
  return {};
}

void QueueingScheduler::on_completed(QueueRef ref, Seconds est,
                                     Seconds actual) {
  clock_for(ref) += actual - est;
}

void QueueingScheduler::on_shed(QueueRef ref, Seconds est, Seconds trans) {
  clock_for(ref) -= est;
  trans_clock_ -= trans;
  dispatch_clocks_[0] -= kDispatch;
}

void QueueingScheduler::on_translation_completed(Seconds est,
                                                 Seconds actual) {
  trans_clock_ += actual - est;
}

Seconds QueueingScheduler::gpu_clock(int queue) const {
  return gpu_clocks_[static_cast<std::size_t>(queue)];  // read-only access
}

bool QueueingScheduler::idle() const {
  return cpu_clock_ == Seconds{};  // comparison, not assignment
}

BatchPlacement QueueingScheduler::schedule_batch(std::span<const Query> batch,
                                                 Seconds now) {
  trans_clock_ += est_;
  dispatch_clocks_[0] += kDispatch;
  clock_for(ref_) = now + est_;
  return {};
}

void QueueingScheduler::rollback_batch(const BatchPlacement& placed) {
  // Every family the batch committer writes has its batch-granular
  // inverse here.
  trans_clock_ -= est_;
  dispatch_clocks_[0] -= kDispatch;
  clock_for(ref_) -= est_;
}

}  // namespace holap
