// Fixture: disciplined two-lock code — every interprocedural path takes
// table_mutex_ before stats_mutex_ (one direction, no cycle), and the
// helper that expects a caller-held lock says so with HOLAP_REQUIRES
// instead of re-acquiring.
namespace holap {

class OrderedTable {
 public:
  void update() {
    MutexLock table(table_mutex_);
    MutexLock stats(stats_mutex_);
    bump_locked();
  }

  void publish() {
    MutexLock table(table_mutex_);
    refresh_stats();  // same order as update(): table before stats
  }

 private:
  void bump_locked() HOLAP_REQUIRES(stats_mutex_) { ++revision_; }

  void refresh_stats() {
    MutexLock stats(stats_mutex_);
    ++revision_;
  }

  Mutex table_mutex_;
  Mutex stats_mutex_;
  int revision_ = 0;
};

}  // namespace holap
