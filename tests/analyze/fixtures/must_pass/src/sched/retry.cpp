// Fixture: correctly bounded retry loops — the attempt counter is
// compared against a limit right in the loop header.
namespace holap {

bool run_with_retries(int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (step()) return true;
  }
  int remaining_retries = 3;
  while (remaining_retries > 0) {
    --remaining_retries;
  }
  return false;
}

}  // namespace holap
