// Fixture: the full wait/notify protocol done right — waits sit in a
// predicate loop (or pass the predicate to wait directly), the notifier
// mutates the signalled state under the waiter's mutex, and nothing
// else is held across the wait.
namespace holap {

class Channel {
 public:
  void send() {
    MutexLock lock(mutex_);
    pending_ += 1;
    ready_.notify_one();  // state mutated under the waiter's mutex
  }

  int recv() {
    MutexLock lock(mutex_);
    while (pending_ == 0) {
      ready_.wait(lock);  // predicate re-checked after every wake-up
    }
    pending_ -= 1;
    return pending_;
  }

  void drain() {
    MutexLock lock(mutex_);
    ready_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  Mutex mutex_;
  CondVar ready_;
  int pending_ = 0;
};

}  // namespace holap
