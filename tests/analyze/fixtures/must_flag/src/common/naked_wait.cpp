// Fixture: condition-variable protocol violations — receive() waits with
// no predicate loop (spurious wake-ups and missed signals slip through),
// deliver() mutates the signalled state and notifies without ever
// holding the waiter's mutex, and receive_all() keeps an unrelated lock
// held across the wait.
namespace holap {

class Mailbox {
 public:
  void deliver();
  void receive();
  void receive_all();

 private:
  Mutex mutex_;
  Mutex pause_mutex_;
  CondVar ready_;
  bool has_mail_ = false;
};

void Mailbox::receive() {
  MutexLock lock(mutex_);
  ready_.wait(lock);  // no predicate loop around the wait
}

void Mailbox::deliver() {
  has_mail_ = true;    // signalled state mutated outside mutex_
  ready_.notify_one();  // notify without the waiter's mutex
}

void Mailbox::receive_all() {
  MutexLock pause(pause_mutex_);
  MutexLock lock(mutex_);
  while (!has_mail_) {
    ready_.wait(lock);  // pause_mutex_ stays held across the wait
  }
}

}  // namespace holap
