// Fixture: a ledger clock mutated outside the scheduler's own TU.
namespace holap {

void poke_translation_backlog() {
  trans_clock_ -= Seconds{1.0};  // the ledger belongs to QueueingScheduler
}

}  // namespace holap
