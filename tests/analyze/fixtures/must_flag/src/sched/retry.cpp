// Fixture: retry loops without a compile-time-visible attempt bound —
// the scheduling/serving planes must never spin on a bare flag.
namespace holap {

void drain_with_retries() {
  bool retry = true;
  while (retry) {  // unbounded: no attempt counter in the header
    retry = step();
  }
  do {
    poke();
  } while (should_retry());  // unbounded: condition is a bare predicate
}

}  // namespace holap
