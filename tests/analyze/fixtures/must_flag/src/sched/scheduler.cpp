// Fixture: clock-ledger violations. A miniature QueueingScheduler whose
// schedule() commits the dispatch clock without any rollback (the exact
// bug class the rule exists for), plus a mutation in an unblessed member.
namespace holap {

Seconds& QueueingScheduler::clock_for(QueueRef ref) {
  if (ref.kind == QueueRef::kCpu) return cpu_clock_;
  return gpu_clocks_[static_cast<std::size_t>(ref.index)];
}

Placement QueueingScheduler::schedule(const Query& q, Seconds now) {
  trans_clock_ = now + est_;          // commit: translation
  dispatch_clocks_[0] += kDispatch;   // commit: dispatch (never rolled back)
  clock_for(ref_) = now + est_;       // commit: cpu/gpu
  return {};
}

void QueueingScheduler::on_shed(QueueRef ref, Seconds est) {
  clock_for(ref) -= est;   // rollback: cpu/gpu
  if (est == Seconds{}) return;  // skips the translation share below
  trans_clock_ -= est;     // rollback: translation — dispatch is missing
}

void QueueingScheduler::reset_for_tests() {
  cpu_clock_ = Seconds{};  // unblessed member touching the ledger
}

BatchPlacement QueueingScheduler::schedule_batch(std::span<const Query> batch,
                                                 Seconds now) {
  trans_clock_ += est_;            // commit: translation
  cpu_clock_ = now + est_;         // commit: cpu
  gpu_clocks_[0] += est_;          // commit: gpu (no batch-granular undo)
  return {};
}

void QueueingScheduler::rollback_batch(const BatchPlacement& placed) {
  trans_clock_ -= est_;   // rollback: translation
  cpu_clock_ -= est_;     // rollback: cpu — gpu is missing
}

}  // namespace holap
