// Fixture: interprocedural ABBA deadlock — route() takes routing_mutex_
// and reaches health_mutex_ through touch_health(); rebalance() takes
// health_mutex_ and reaches routing_mutex_ through touch_routing().
// Neither function acquires both locks directly: only the call graph
// sees the cycle. refresh() re-acquires routing_mutex_ through a helper
// (common::Mutex is non-reentrant, so that self-deadlocks).
namespace holap {

class RouteTable {
 public:
  void route();
  void rebalance();
  void refresh();

 private:
  void touch_health();
  void touch_routing();
  Mutex routing_mutex_;
  Mutex health_mutex_;
  int generation_ = 0;
};

void RouteTable::touch_health() {
  MutexLock lock(health_mutex_);
  ++generation_;
}

void RouteTable::touch_routing() {
  MutexLock lock(routing_mutex_);
  ++generation_;
}

void RouteTable::route() {
  MutexLock lock(routing_mutex_);
  touch_health();  // routing_mutex_ -> health_mutex_
}

void RouteTable::rebalance() {
  MutexLock lock(health_mutex_);
  touch_routing();  // health_mutex_ -> routing_mutex_: the inversion
}

void RouteTable::refresh() {
  MutexLock lock(routing_mutex_);
  touch_routing();  // re-acquires routing_mutex_ via the helper
}

}  // namespace holap
