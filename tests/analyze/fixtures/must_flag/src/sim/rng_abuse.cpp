// Fixture: determinism violation — an unseeded entropy source in the
// simulation plane.
#include <random>

namespace holap {

int weird_seed() {
  std::random_device rd;  // seeded runs must replay bit-identically
  return static_cast<int>(rd());
}

}  // namespace holap
