// Fixture: a scoped enum for the exhaustiveness rule.
#pragma once

namespace holap {

enum class Color {
  kRed,
  kGreen,
  kBlue,
};

const char* name(Color c);
int rank(Color c);

}  // namespace holap
