// Fixture: enum-exhaustive violations — a default: label and a switch
// that silently misses an enumerator.
#include "query/kinds.hpp"

namespace holap {

const char* name(Color c) {
  switch (c) {
    case Color::kRed:
      return "red";
    case Color::kGreen:
      return "green";
    default:  // hides kBlue and every future enumerator
      return "?";
  }
}

int rank(Color c) {
  switch (c) {
    case Color::kRed:
      return 0;
    case Color::kGreen:
      return 1;  // kBlue is missing and nothing says so
  }
  return 2;
}

}  // namespace holap
