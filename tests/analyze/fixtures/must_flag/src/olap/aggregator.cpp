// Fixture: aggregator-shaped blocking-under-lock — the drain path parks
// the thread inside BlockingQueue::pop while still holding the stats
// mutex, stop() joins the worker under the same lock, and the flush
// path waits on a future under it. Every submitter contending on
// stats_mutex_ stalls until the queue happens to produce an item.
namespace holap {

void Aggregator::drain_shard(int shard) {
  MutexLock lock(stats_mutex_);
  Query q = queue_->pop();  // pop can park with stats_mutex_ held
  apply(q, shard);
}

void Aggregator::stop() {
  MutexLock lock(stats_mutex_);
  worker_.join();  // join under stats_mutex_
}

int Aggregator::flush_result() {
  MutexLock lock(stats_mutex_);
  return result_future_.get();  // future::get under stats_mutex_
}

}  // namespace holap
