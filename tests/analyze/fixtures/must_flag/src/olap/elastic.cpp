// Fixture: repartition-invalidation. A reference into the device
// catalog survives an apply() and is read afterwards — apply_repartition
// drains, rewrites widths and re-places, so the binding is stale.
namespace holap {

int Elastic::rebalance(const RepartitionDecision& d) {
  const DevicePartition& part = catalog_->device(d.keeper);
  scheduler_->apply_repartition(d);
  return part.sm_share;  // stale: apply() rewrote the catalog entry
}

}  // namespace holap
