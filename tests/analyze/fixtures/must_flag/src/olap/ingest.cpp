// Fixture: batch-ledger violation at the call site — serving-path code
// admits a whole batch through schedule_batch() but no rollback_batch()
// path is visible anywhere in this file, so a batch the executor cannot
// run (shutdown between commit and routing) has no batch-granular undo.
#include <vector>

namespace holap {

void Ingest::admit(std::vector<Query> batch) {
  auto placed = scheduler_->schedule_batch(batch, now_);
  route(placed);  // shutdown here would leave the batch on the ledger
}

}  // namespace holap
