// Fixture: bounded-queue violations — unbounded construction on the
// serving path, and a span handled outside src/obs.
#include <memory>

namespace holap {

void serve() {
  BlockingQueue<int> backlog;  // no capacity: unbounded backlog
  auto overflow = std::make_unique<BlockingQueue<int>>();  // ditto
  backlog.push(1);
  overflow->close();
}

void emit_span() {
  TraceSpan span;  // spans are recorded via TraceRecorder, never built here
  (void)span;
}

}  // namespace holap
