// Fixture: path-sensitive outcome/ledger violations. A promise slot
// leaked on an early return, leaked across an exception edge, resolved
// twice (definitely and on-some-path), and a schedule() clock commit
// abandoned both on a gated return and on a throwing call.
#include <future>
#include <utility>

namespace holap {

// Early-return leak: the rejected path exits without resolving.
void Outcome::resolve_unrun(Job job, ExecutionOutcome outcome) {
  if (outcome == ExecutionOutcome::kRejected) {
    ++rejected_;
    return;  // job.promise never resolves on this path
  }
  ExecutionReport report;
  report.outcome = outcome;
  job.promise.set_value(std::move(report));
}

// Definite double-resolve: straight-line second set_value.
void Outcome::resolve_twice(Job job) {
  ExecutionReport report;
  job.promise.set_value(std::move(report));
  job.promise.set_value(std::move(report));
}

// May-double-resolve: the shed branch resolves, then the tail resolves
// again — double on the branch path, fine on the other.
void Outcome::resolve_shed(Job job) {
  ExecutionReport report;
  if (shed_) {
    job.promise.set_value(std::move(report));
  }
  job.promise.set_value(std::move(report));
}

// Exception-edge leak: translate() throws on bad text parameters and
// the popped job's promise dies with the worker thread.
void Outcome::worker() {
  while (auto job = queue_.pop()) {
    system_->translate(job->query);
    finish(std::move(*job));
  }
}

// Commit leaked on a path: the hook can throw after schedule()
// committed, and the gated branch returns without routing or rollback.
std::future<ExecutionReport> Outcome::submit(Query q) {
  Job job;
  job.query = std::move(q);
  std::future<ExecutionReport> future = job.promise.get_future();
  job.placement = scheduler_->schedule(job.query, now_);
  fault_->run_submit_hook();
  if (paused_) {
    return future;  // schedule() commit neither queued nor rolled back
  }
  route(std::move(job));
  return future;
}

}  // namespace holap
