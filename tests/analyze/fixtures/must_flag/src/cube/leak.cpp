// Fixture: raw-new-delete violations.
namespace holap {

int* make_leak() {
  int* p = new int(7);  // containers / unique_ptr own everything
  delete p;             // and nothing deletes by hand
  return nullptr;
}

}  // namespace holap
