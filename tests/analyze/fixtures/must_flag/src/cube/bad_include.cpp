// Fixture: include-hygiene violations.
#include "nope/missing.hpp"
#include <query/kinds.hpp>

namespace holap {
void unused() {}
}  // namespace holap
