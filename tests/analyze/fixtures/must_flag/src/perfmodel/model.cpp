// Fixture: unit-escape violation — unwrap-then-rewrap.
#include "perfmodel/model.hpp"

namespace holap {

Seconds TinyModel::seconds(double sc_mb, double gb_per_s) const {
  const Seconds base{sc_mb / gb_per_s / 1024.0};
  return Seconds{base.value() * 2.0};  // defeats the dimension check
}

}  // namespace holap
