// Fixture: unit-escape violations — raw doubles whose names carry units.
#pragma once

namespace holap {

class TinyModel {
 public:
  Seconds seconds(double sc_mb, double gb_per_s) const;
};

}  // namespace holap
