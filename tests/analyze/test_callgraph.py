#!/usr/bin/env python3
"""Unit tests for the call-graph builder behind the concurrency rules:
receiver typing, virtual/overload resolution fallbacks, recursion
cutoff, and unknown-callee conservatism. Everything runs on in-memory
sources, no fixture tree needed."""

from __future__ import annotations

import pathlib
import sys
import unittest

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "scripts" / "analyze"))

from cppmodel import SourceFile, strip_comments_and_strings  # noqa: E402
from concurrency import (analyze_model, build_text_model,  # noqa: E402
                         compute_summaries)


def src(rel: str, text: str) -> tuple[str, SourceFile]:
    return rel, SourceFile(pathlib.Path(rel), rel, text,
                           strip_comments_and_strings(text))


def model_of(*files: tuple[str, str]):
    return build_text_model([src(rel, text) for rel, text in files])


def run_rules(model, rules=("lock-order", "blocking", "waitnotify")):
    return analyze_model(model, rules, lambda rel, line: "")


class ReceiverTyping(unittest.TestCase):
    def test_member_chain_through_container_and_smart_pointer(self):
        model = model_of(("src/a.cpp", """
            class Worker {
             public:
              void grab() { MutexLock lock(mutex_); }
             private:
              Mutex mutex_;
            };
            class Pool {
             public:
              void tick() { workers_[0]->grab(); }
             private:
              std::vector<std::unique_ptr<Worker>> workers_;
            };
        """))
        acq, _ = compute_summaries(model)
        self.assertIn("Worker::mutex_", acq["Pool::tick"])

    def test_std_typed_receiver_is_a_dead_end_not_a_fallback(self):
        # items_.size() must not unify with an unrelated Queue::size()
        # that takes a lock — the receiver types into std::deque, which
        # the model does not own, so the chain yields no callees.
        model = model_of(("src/a.cpp", """
            class Queue {
             public:
              int size() { MutexLock lock(mutex_); return n_; }
             private:
              Mutex mutex_;
              int n_ = 0;
            };
            class Buffer {
             public:
              int depth() { return items_.size(); }
             private:
              std::deque<int> items_;
            };
        """))
        acq, _ = compute_summaries(model)
        self.assertEqual(acq["Buffer::depth"], {})


class VirtualAndOverloadFallbacks(unittest.TestCase):
    def test_declared_only_method_resolves_to_union_of_definers(self):
        # Admitter::admit is declared but never defined (pure virtual
        # shape): a call through the base must fan out to every known
        # definition of admit.
        model = model_of(("src/a.cpp", """
            class Admitter {
             public:
              virtual bool admit(int n) = 0;
            };
            class LockedAdmitter {
             public:
              bool admit(int n) { MutexLock lock(mutex_); return n > 0; }
             private:
              Mutex mutex_;
            };
            class Gate {
             public:
              bool check() { return admitter_->admit(1); }
             private:
              std::unique_ptr<Admitter> admitter_;
            };
        """))
        acq, _ = compute_summaries(model)
        self.assertIn("LockedAdmitter::mutex_", acq["Gate::check"])

    def test_untypable_receiver_falls_back_to_union(self):
        # free() sees an extern object it cannot type; the union of
        # known definitions of refresh() is the conservative answer.
        model = model_of(("src/a.cpp", """
            class Registry {
             public:
              void refresh() { MutexLock lock(mutex_); }
             private:
              Mutex mutex_;
            };
            void poke() { live_registry->refresh(); }
        """))
        acq, _ = compute_summaries(model)
        self.assertIn("Registry::mutex_", acq["poke"])

    def test_overloads_all_contribute(self):
        # Two submit() overloads: a call by name reaches both, so the
        # lock only one of them takes still propagates.
        model = model_of(("src/a.cpp", """
            class Front {
             public:
              void submit(int q) { submit(q, 0); }
              void submit(int q, int shard) { MutexLock lock(mutex_); }
             private:
              Mutex mutex_;
            };
            void drive(Front& f) { f.submit(7); }
        """))
        acq, _ = compute_summaries(model)
        self.assertIn("Front::mutex_", acq["drive"])
        self.assertEqual(len(model.by_qual["Front::submit"]), 2)


class RecursionCutoff(unittest.TestCase):
    def test_direct_recursion_reaches_fixpoint(self):
        model = model_of(("src/a.cpp", """
            class Walker {
             public:
              void descend(int n) {
                MutexLock lock(mutex_);
                if (n > 0) descend(n - 1);
              }
             private:
              Mutex mutex_;
            };
        """))
        acq, _ = compute_summaries(model)  # must terminate
        self.assertIn("Walker::mutex_", acq["Walker::descend"])
        # And the self-call under the held lock is a recursive
        # acquisition finding, not an infinite loop.
        findings = run_rules(model, ["lock-order"])
        self.assertEqual(len(findings), 1)
        self.assertIn("recursive acquisition", findings[0].message)

    def test_mutual_recursion_reaches_fixpoint(self):
        model = model_of(("src/a.cpp", """
            class PingPong {
             public:
              void ping(int n) { if (n > 0) pong(n - 1); }
              void pong(int n) {
                MutexLock lock(mutex_);
                if (n > 1) ping(n - 1);
              }
             private:
              Mutex mutex_;
            };
        """))
        acq, _ = compute_summaries(model)
        self.assertIn("PingPong::mutex_", acq["PingPong::ping"])

    def test_witness_paths_stay_bounded_on_deep_chains(self):
        calls = "\n".join(
            f"void f{i}() {{ f{i + 1}(); }}" for i in range(12))
        model = model_of(("src/a.cpp", f"""
            class Leaf {{
             public:
              void grab() {{ MutexLock lock(mutex_); }}
             private:
              Mutex mutex_;
            }};
            void f12() {{ leaf->grab(); }}
            {calls}
        """))
        acq, _ = compute_summaries(model)
        # The deep callers above the cutoff simply stop accumulating a
        # witness; nothing blows up and the near callers keep theirs.
        self.assertIn("Leaf::mutex_", acq["f12"])
        for q, locks in acq.items():
            for path in locks.values():
                self.assertLessEqual(len(path), 6, (q, path))


class UnknownCalleeConservatism(unittest.TestCase):
    def test_unknown_callee_acquires_nothing(self):
        model = model_of(("src/a.cpp", """
            class Caller {
             public:
              void go() { external_helper(42); }
            };
        """))
        acq, blk = compute_summaries(model)
        self.assertEqual(acq["Caller::go"], {})
        self.assertEqual(blk["Caller::go"], {})

    def test_unresolved_queue_method_assumed_blocking(self):
        # queue_ has no visible type and nothing in the tree defines
        # pop(): the single-TU approximation must still treat it as a
        # blocking queue operation when a lock is held.
        model = model_of(("src/a.cpp", """
            class Drainer {
             public:
              void drain() {
                MutexLock lock(stats_mutex_);
                queue_->pop();
              }
             private:
              Mutex stats_mutex_;
            };
        """))
        findings = run_rules(model, ["blocking"])
        self.assertEqual(len(findings), 1)
        self.assertIn("BlockingQueue::pop", findings[0].message)

    def test_resolved_non_blocking_method_is_not_assumed_blocking(self):
        # Same shape, but push resolves to a real non-blocking method:
        # no intrinsic assumption, no finding.
        model = model_of(("src/a.cpp", """
            class Ring {
             public:
              bool push(int v) { n_ += v; return true; }
             private:
              int n_ = 0;
            };
            class Writer {
             public:
              void put() {
                MutexLock lock(mutex_);
                ring_.push(1);
              }
             private:
              Mutex mutex_;
              Ring ring_;
            };
        """))
        findings = run_rules(model, ["blocking"])
        self.assertEqual(findings, [])


class InterproceduralFindings(unittest.TestCase):
    def test_abba_cycle_across_helpers(self):
        model = model_of(("src/a.cpp", """
            class Table {
             public:
              void forward() { MutexLock a(a_); take_b(); }
              void backward() { MutexLock b(b_); take_a(); }
             private:
              void take_a() { MutexLock a(a_); }
              void take_b() { MutexLock b(b_); }
              Mutex a_;
              Mutex b_;
            };
        """))
        findings = run_rules(model, ["lock-order"])
        self.assertEqual(len(findings), 1)
        self.assertIn("lock-order cycle", findings[0].message)
        self.assertIn("Table::a_", findings[0].message)
        self.assertIn("Table::b_", findings[0].message)

    def test_requires_annotation_seeds_entry_held(self):
        # A helper annotated HOLAP_REQUIRES(m_) that then blocks is a
        # finding even though the acquisition happens in its caller.
        model = model_of(("src/a.cpp", """
            class Guarded {
             public:
              void locked_drain() HOLAP_REQUIRES(m_) {
                worker_.join();
              }
             private:
              Mutex m_;
            };
        """))
        findings = run_rules(model, ["blocking"])
        self.assertEqual(len(findings), 1)
        self.assertIn("std::thread::join", findings[0].message)
        self.assertIn("while holding Guarded::m_", findings[0].message)


if __name__ == "__main__":
    unittest.main()
