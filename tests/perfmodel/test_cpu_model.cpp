#include "perfmodel/cpu_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace holap {
namespace {

TEST(CpuModel, Paper4tMatchesEquation7) {
  const CpuPerfModel m = CpuPerfModel::paper_4t();
  // Range A: 1e-4 * SC^0.9341.
  EXPECT_NEAR(m.seconds(Megabytes{100.0}).value(), 1e-4 * std::pow(100.0, 0.9341), 1e-12);
  // Range B: 5e-5 * SC + 0.0096.
  EXPECT_NEAR(m.seconds(Megabytes{1024.0}).value(), 5e-5 * 1024.0 + 0.0096, 1e-12);
}

TEST(CpuModel, Paper8tMatchesEquation10) {
  const CpuPerfModel m = CpuPerfModel::paper_8t();
  EXPECT_NEAR(m.seconds(Megabytes{64.0}).value(), 6e-5 * std::pow(64.0, 0.984), 1e-12);
  EXPECT_NEAR(m.seconds(Megabytes{8192.0}).value(), 4e-5 * 8192.0 + 0.0146, 1e-12);
}

TEST(CpuModel, SplitAt512MB) {
  const CpuPerfModel m = CpuPerfModel::paper_4t();
  EXPECT_EQ(m.split_mb(), Megabytes{512.0});
  // Just below the split uses Range A; at/above uses Range B.
  EXPECT_NEAR(m.seconds(Megabytes{511.9}).value(), 1e-4 * std::pow(511.9, 0.9341), 1e-12);
  EXPECT_NEAR(m.seconds(Megabytes{512.0}).value(), 5e-5 * 512.0 + 0.0096, 1e-12);
}

TEST(CpuModel, EightThreadsFasterThanFourAtLargeSizes) {
  const CpuPerfModel m4 = CpuPerfModel::paper_4t();
  const CpuPerfModel m8 = CpuPerfModel::paper_8t();
  for (double sc : {1024.0, 4096.0, 32768.0}) {
    EXPECT_LT(m8.seconds(Megabytes{sc}).value(), m4.seconds(Megabytes{sc}).value());
  }
}

TEST(CpuModel, MonotoneInSize) {
  for (const CpuPerfModel& m :
       {CpuPerfModel::paper_4t(), CpuPerfModel::paper_8t(),
        CpuPerfModel::bandwidth_model(GbPerSec{1.0})}) {
    double prev = 0.0;
    for (double sc = 1.0; sc < 40000.0; sc *= 2.0) {
      const double t = m.seconds(Megabytes{sc}).value();
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
}

TEST(CpuModel, ZeroSizeCostsNothing) {
  EXPECT_EQ(CpuPerfModel::paper_4t().seconds(Megabytes{0.0}).value(), 0.0);
  EXPECT_THROW(CpuPerfModel::paper_4t().seconds(Megabytes{-1.0}).value(), InvalidArgument);
}

TEST(CpuModel, BandwidthModelStreamsAtConfiguredRate) {
  const CpuPerfModel m =
      CpuPerfModel::bandwidth_model(GbPerSec{1.0}, Seconds{0.0});
  // 1 GB/s: 1024 MB takes 1 s.
  EXPECT_NEAR(m.seconds(Megabytes{1024.0}).value(), 1.0, 1e-9);
  EXPECT_NEAR(m.gb_per_second(Megabytes{2048.0}).value(), 1.0, 1e-6);
}

TEST(CpuModel, ImpliedBandwidthMatchesFigure3Regime) {
  // §III-D: the parallel engine reaches 15-20+ GB/s for cubes >= 128 MB.
  const CpuPerfModel m8 = CpuPerfModel::paper_8t();
  const GbPerSec bw = m8.gb_per_second(Megabytes{1024.0});
  EXPECT_GT(bw, GbPerSec{15.0});
  EXPECT_LT(bw, GbPerSec{30.0});
}

TEST(CpuModel, PaperForThreadsAnchors) {
  EXPECT_NEAR(CpuPerfModel::paper_for_threads(4).seconds(Megabytes{100.0}).value(),
              CpuPerfModel::paper_4t().seconds(Megabytes{100.0}).value(), 1e-15);
  EXPECT_NEAR(CpuPerfModel::paper_for_threads(8).seconds(Megabytes{100.0}).value(),
              CpuPerfModel::paper_8t().seconds(Megabytes{100.0}).value(), 1e-15);
  // 1 thread: the original ~1 GB/s engine.
  EXPECT_NEAR(
      CpuPerfModel::paper_for_threads(1).gb_per_second(Megabytes{4096.0})
          .value(),
      1.0, 0.05);
  EXPECT_THROW(CpuPerfModel::paper_for_threads(0), InvalidArgument);
}

TEST(CpuModel, InterpolatedThreadCountsBetweenAnchors) {
  // Monotone improvement with threads at a large size.
  double prev = CpuPerfModel::paper_for_threads(1).seconds(Megabytes{4096.0}).value();
  for (int t = 2; t <= 8; ++t) {
    const double cur = CpuPerfModel::paper_for_threads(t).seconds(Megabytes{4096.0}).value();
    EXPECT_LT(cur, prev) << "threads " << t;
    prev = cur;
  }
}

TEST(CpuModelFit, RecoversPaperCoefficientsFromSyntheticSamples) {
  const CpuPerfModel truth = CpuPerfModel::paper_4t();
  std::vector<double> xs, ys;
  for (double sc = 1.0; sc <= 32768.0; sc *= 2.0) {
    xs.push_back(sc);
    ys.push_back(truth.seconds(Megabytes{sc}).value());
  }
  const CpuPerfModel fitted = CpuPerfModel::fit(xs, ys);
  for (double sc : {3.0, 100.0, 511.0, 600.0, 20000.0}) {
    EXPECT_NEAR(fitted.seconds(Megabytes{sc}).value(), truth.seconds(Megabytes{sc}).value(),
                0.02 * truth.seconds(Megabytes{sc}).value())
        << "sc=" << sc;
  }
}

TEST(CpuModelFit, RangeAOnlySamplesExtendContinuously) {
  const CpuPerfModel truth = CpuPerfModel::paper_8t();
  std::vector<double> xs, ys;
  for (double sc = 1.0; sc <= 256.0; sc *= 2.0) {
    xs.push_back(sc);
    ys.push_back(truth.seconds(Megabytes{sc}).value());
  }
  const CpuPerfModel fitted = CpuPerfModel::fit(xs, ys);
  // Range A reproduced...
  EXPECT_NEAR(fitted.seconds(Megabytes{100.0}).value(), truth.seconds(Megabytes{100.0}).value(),
              0.01 * truth.seconds(Megabytes{100.0}).value());
  // ...and Range B extrapolates continuously (no jump at the split).
  EXPECT_NEAR(fitted.seconds(Megabytes{512.0}).value(), fitted.seconds(Megabytes{511.999}).value(), 1e-6);
  double prev = fitted.seconds(Megabytes{512.0}).value();
  for (double sc = 1024.0; sc <= 8192.0; sc *= 2.0) {
    EXPECT_GT(fitted.seconds(Megabytes{sc}).value(), prev);
    prev = fitted.seconds(Megabytes{sc}).value();
  }
}

TEST(CpuModelFit, RangeBOnlySamplesExtendContinuously) {
  const CpuPerfModel truth = CpuPerfModel::paper_8t();
  std::vector<double> xs, ys;
  for (double sc = 1024.0; sc <= 32768.0; sc *= 2.0) {
    xs.push_back(sc);
    ys.push_back(truth.seconds(Megabytes{sc}).value());
  }
  const CpuPerfModel fitted = CpuPerfModel::fit(xs, ys);
  EXPECT_NEAR(fitted.seconds(Megabytes{2048.0}).value(), truth.seconds(Megabytes{2048.0}).value(),
              0.01 * truth.seconds(Megabytes{2048.0}).value());
  EXPECT_GT(fitted.seconds(Megabytes{100.0}).value(), 0.0);
}

TEST(CpuModelFit, RejectsInsufficientSamples) {
  const std::vector<double> xs{100.0}, ys{0.01};
  EXPECT_THROW(CpuPerfModel::fit(xs, ys), InvalidArgument);
}

}  // namespace
}  // namespace holap
