// Piecewise continuity of the eq.-(4) CPU model at the 512 MB Range-A /
// Range-B crossover. The published coefficient pairs (eqs. 7 and 10) were
// fitted independently per range, so they meet only approximately — a few
// percent of mismatch is the paper's own fitting residue, but a LARGE gap
// would mean a transcription error in the preset coefficients. Models the
// library constructs itself (bandwidth_model, fit() with single-side
// coverage) must be continuous to machine precision.
#include "perfmodel/cpu_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace holap {
namespace {

// Relative jump |t(split) - t(split-eps)| / t(split).
double relative_jump_at_split(const CpuPerfModel& m) {
  const double split = m.split_mb().value();
  const double below = m.seconds(Megabytes{std::nextafter(split, 0.0)}).value();
  const double at = m.seconds(Megabytes{split}).value();
  return std::abs(at - below) / at;
}

TEST(CpuModelContinuity, PaperPresetsNearlyMeetAt512MB) {
  // eq. 7:  1e-4*512^0.9341 = 0.03390.. vs 5e-5*512 + 0.0096 = 0.03520..
  // eq. 10: 6e-5*512^0.984  = 0.02787.. vs 4e-5*512 + 0.0146 = 0.03508..
  // Published residue is ~4% (4T) and ~20% (8T); alert on anything worse.
  EXPECT_LT(relative_jump_at_split(CpuPerfModel::paper_4t()), 0.10);
  EXPECT_LT(relative_jump_at_split(CpuPerfModel::paper_8t()), 0.30);
  // Both ranges evaluate to the same order of magnitude either way.
  for (const CpuPerfModel& m :
       {CpuPerfModel::paper_4t(), CpuPerfModel::paper_8t()}) {
    const double below = m.seconds(Megabytes{511.0}).value();
    const double above = m.seconds(Megabytes{513.0}).value();
    EXPECT_GT(above, 0.5 * below);
    EXPECT_LT(above, 2.0 * below);
  }
}

TEST(CpuModelContinuity, InterpolatedThreadCountsStayBounded) {
  // paper_for_threads() mixes the anchors; mixing must not amplify the
  // crossover jump beyond what the anchors themselves carry.
  for (int threads = 1; threads <= 8; ++threads) {
    EXPECT_LT(relative_jump_at_split(CpuPerfModel::paper_for_threads(threads)),
              0.30)
        << "threads=" << threads;
  }
}

TEST(CpuModelContinuity, BandwidthModelIsExactlyContinuous) {
  for (const double gb : {1.0, 5.5, 24.4}) {
    const CpuPerfModel m = CpuPerfModel::bandwidth_model(GbPerSec{gb});
    const double below =
        m.seconds(Megabytes{std::nextafter(m.split_mb().value(), 0.0)}).value();
    const double at = m.seconds(m.split_mb()).value();
    // The only difference is Range B's fixed overhead intercept.
    EXPECT_NEAR(at - below, 0.002, 1e-9) << "gb=" << gb;
    const CpuPerfModel flat =
        CpuPerfModel::bandwidth_model(GbPerSec{gb}, Seconds{0.0});
    EXPECT_NEAR(relative_jump_at_split(flat), 0.0, 1e-12) << "gb=" << gb;
  }
}

TEST(CpuModelContinuity, FitSingleSideInheritanceIsContinuous) {
  // fit() with coverage on only one side of 512 MB constructs the other
  // side by continuation — value-continuous by construction, eps-exact.
  const CpuPerfModel truth = CpuPerfModel::paper_8t();
  std::vector<double> ax, ay, bx, by;
  for (double sc = 2.0; sc <= 256.0; sc *= 2.0) {
    ax.push_back(sc);
    ay.push_back(truth.seconds(Megabytes{sc}).value());
  }
  for (double sc = 1024.0; sc <= 32768.0; sc *= 2.0) {
    bx.push_back(sc);
    by.push_back(truth.seconds(Megabytes{sc}).value());
  }
  for (const CpuPerfModel& fitted :
       {CpuPerfModel::fit(ax, ay), CpuPerfModel::fit(bx, by)}) {
    EXPECT_LT(relative_jump_at_split(fitted), 1e-9);
  }
}

TEST(CpuModelContinuity, CustomSplitMovesTheCrossover) {
  // The crossover is a parameter, not a constant baked into seconds().
  const CpuPerfModel m({1e-4, 1.0, 1.0}, {1e-4, 0.0, 1.0}, Megabytes{128.0});
  EXPECT_EQ(m.split_mb(), Megabytes{128.0});
  // With identical laws either side, every point is continuous.
  EXPECT_NEAR(relative_jump_at_split(m), 0.0, 1e-12);
  EXPECT_NEAR(m.seconds(Megabytes{127.9}).value(), 1e-4 * 127.9, 1e-12);
  EXPECT_NEAR(m.seconds(Megabytes{128.1}).value(), 1e-4 * 128.1, 1e-12);
}

}  // namespace
}  // namespace holap
