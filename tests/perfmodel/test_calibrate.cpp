#include "perfmodel/calibrate.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace holap {
namespace {

TEST(CalibrateCpu, ProducesOrderedSamplesAndUsableModel) {
  CpuCalibrationConfig config;
  config.sizes_mb = {Megabytes{1}, Megabytes{2}, Megabytes{4}, Megabytes{8}};
  config.threads = 0;
  config.repetitions = 2;
  const CpuCalibrationResult result = calibrate_cpu(config);
  ASSERT_EQ(result.samples.size(), 4u);
  ASSERT_EQ(result.bandwidth_gbps.size(), 4u);
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    EXPECT_GT(result.samples[i].seconds, Seconds{});
    EXPECT_GT(result.bandwidth_gbps[i], 0.0);
    if (i) {
      EXPECT_GT(result.samples[i].x, result.samples[i - 1].x);
    }
  }
  // The fitted model must predict within the measured ballpark.
  const double mid = result.model.seconds(Megabytes{4.0}).value();
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);  // 4 MB can never take a second on any host
}

TEST(CalibrateCpu, TimeRoughlyScalesWithSize) {
  CpuCalibrationConfig config;
  config.sizes_mb = {Megabytes{2}, Megabytes{32}};
  config.repetitions = 3;
  const CpuCalibrationResult result = calibrate_cpu(config);
  // 16x the data should take clearly more time (allowing generous noise).
  EXPECT_GT(result.samples[1].seconds, 3.0 * result.samples[0].seconds);
}

TEST(CalibrateCpu, ParallelConfigRuns) {
  CpuCalibrationConfig config;
  config.sizes_mb = {Megabytes{1}, Megabytes{4}};
  config.threads = 4;
  config.repetitions = 1;
  const CpuCalibrationResult result = calibrate_cpu(config);
  EXPECT_EQ(result.samples.size(), 2u);
  for (const auto& s : result.samples) EXPECT_GT(s.seconds, Seconds{});
}

TEST(CalibrateCpu, RejectsBadConfig) {
  CpuCalibrationConfig config;
  config.sizes_mb = {};
  EXPECT_THROW(calibrate_cpu(config), InvalidArgument);
  config.sizes_mb = {Megabytes{8}, Megabytes{4}};  // not ascending
  EXPECT_THROW(calibrate_cpu(config), InvalidArgument);
  config.sizes_mb = {Megabytes{1}};
  config.repetitions = 0;
  EXPECT_THROW(calibrate_cpu(config), InvalidArgument);
}

TEST(CalibrateDict, LinearGrowthAndPositiveSlope) {
  DictCalibrationConfig config;
  config.lengths = {1'000, 10'000, 100'000};
  config.searches = 20;
  const DictCalibrationResult result = calibrate_dict(config);
  ASSERT_EQ(result.samples.size(), 3u);
  // 100x the dictionary should cost at least 20x the time (linear scan).
  EXPECT_GT(result.samples[2].seconds, 20.0 * result.samples[0].seconds);
  EXPECT_GT(result.model.seconds_per_entry(), 0.0);
  // Sanity: per-entry cost under a microsecond on any modern host.
  EXPECT_LT(result.model.seconds_per_entry(), 1e-6);
}

TEST(CalibrateDict, RejectsBadConfig) {
  DictCalibrationConfig config;
  config.lengths = {};
  EXPECT_THROW(calibrate_dict(config), InvalidArgument);
  config.lengths = {10};
  config.searches = 0;
  EXPECT_THROW(calibrate_dict(config), InvalidArgument);
}

}  // namespace
}  // namespace holap
