#include "perfmodel/gpu_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace holap {
namespace {

TEST(GpuModel, PublishedConstantsEquation14And15) {
  const GpuPerfModel m1 = GpuPerfModel::paper_c2070(1);
  EXPECT_DOUBLE_EQ(m1.a(), 0.003);
  EXPECT_DOUBLE_EQ(m1.b(), 0.0258);
  const GpuPerfModel m2 = GpuPerfModel::paper_c2070(2);
  EXPECT_DOUBLE_EQ(m2.a(), 0.0015);
  EXPECT_DOUBLE_EQ(m2.b(), 0.013);
  const GpuPerfModel m4 = GpuPerfModel::paper_c2070(4);
  EXPECT_DOUBLE_EQ(m4.a(), 0.0008);
  EXPECT_DOUBLE_EQ(m4.b(), 0.0065);
  const GpuPerfModel m14 = GpuPerfModel::paper_c2070(14);
  EXPECT_DOUBLE_EQ(m14.a(), 0.00021);
  EXPECT_DOUBLE_EQ(m14.b(), 0.0020);
}

TEST(GpuModel, LinearInColumnFraction) {
  const GpuPerfModel m = GpuPerfModel::paper_c2070(2);
  EXPECT_DOUBLE_EQ(m.seconds(0.0).value(), 0.013);
  EXPECT_DOUBLE_EQ(m.seconds(1.0).value(), 0.0145);
  EXPECT_DOUBLE_EQ(m.seconds(0.5).value(), 0.013 + 0.00075);
}

TEST(GpuModel, FractionOutOfRangeRejected) {
  const GpuPerfModel m = GpuPerfModel::paper_c2070(1);
  EXPECT_THROW(m.seconds(-0.1).value(), InvalidArgument);
  EXPECT_THROW(m.seconds(1.1).value(), InvalidArgument);
}

TEST(GpuModel, MoreSMsAreFaster) {
  double prev = GpuPerfModel::paper_c2070(1).seconds(0.5).value();
  for (int sms : {2, 3, 4, 7, 14}) {
    const double cur = GpuPerfModel::paper_c2070(sms).seconds(0.5).value();
    EXPECT_LT(cur, prev) << sms << " SMs";
    prev = cur;
  }
}

TEST(GpuModel, UnpublishedSizesFollowInverseScaling) {
  // The published rows scale almost exactly as 1/n; interpolated sizes
  // must sit between their published neighbours.
  const double t2 = GpuPerfModel::paper_c2070(2).seconds(0.5).value();
  const double t3 = GpuPerfModel::paper_c2070(3).seconds(0.5).value();
  const double t4 = GpuPerfModel::paper_c2070(4).seconds(0.5).value();
  EXPECT_LT(t3, t2);
  EXPECT_GT(t3, t4);
}

TEST(GpuModel, InvalidPartitionSizesRejected) {
  EXPECT_THROW(GpuPerfModel::paper_c2070(0), InvalidArgument);
  EXPECT_THROW(GpuPerfModel::paper_c2070(15), InvalidArgument);
}

TEST(GpuModel, TableSizeScalesBothCoefficients) {
  // Half the table, half the scan time (the scan streams whole columns).
  const GpuPerfModel base = GpuPerfModel::paper_c2070(4);
  const GpuPerfModel half = GpuPerfModel::paper_c2070_scaled(4, Megabytes{2048.0});
  EXPECT_NEAR(half.seconds(0.6).value(), base.seconds(0.6).value() / 2.0, 1e-12);
  const GpuPerfModel same = GpuPerfModel::paper_c2070_scaled(4, Megabytes{4096.0});
  EXPECT_DOUBLE_EQ(same.seconds(0.3).value(), base.seconds(0.3).value());
}

TEST(GpuModelFit, RecoversCoefficients) {
  const GpuPerfModel truth = GpuPerfModel::paper_c2070(2);
  std::vector<double> xs, ys;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    xs.push_back(f);
    ys.push_back(truth.seconds(f).value());
  }
  const GpuPerfModel fitted = GpuPerfModel::fit(xs, ys);
  EXPECT_NEAR(fitted.a(), truth.a(), 1e-9);
  EXPECT_NEAR(fitted.b(), truth.b(), 1e-9);
}

}  // namespace
}  // namespace holap
