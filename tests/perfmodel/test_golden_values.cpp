// Bit-exact goldens for the published CPU cost model (eqs. 7 and 10).
//
// These values were captured (as hexfloats, so the doubles round-trip
// exactly) from the model when `Seconds`/`Megabytes` were still plain
// double aliases. The strong-typed wrappers must reproduce them bit for
// bit: every Quantity operation is defined as the corresponding IEEE
// double operation, so the retype is purely a compile-time change. Any
// drift here means an arithmetic path was reordered, not just retyped.
#include <gtest/gtest.h>

#include "perfmodel/cpu_model.hpp"

namespace holap {
namespace {

struct Golden {
  double size_mb;
  double paper_4t_seconds;  // eq. 7 family (4-thread published law)
  double paper_8t_seconds;  // eq. 10 family (8-thread published law)
};

// Sizes straddle both power-law regimes and the 512 MB crossover itself
// (511/512/513), where a reordered branch would show first.
constexpr Golden kGoldens[] = {
    {0x1p-2, 0x1.cb8d950c1135bp-16, 0x1.014d74dea0464p-16},
    {0x1p+0, 0x1.a36e2eb1c432dp-14, 0x1.f75104d551d69p-15},
    {0x1.ep+2, 0x1.585267ea1e6a4p-11, 0x1.c8e3c8d89f592p-12},
    {0x1p+6, 0x1.3ee249bef24cdp-8, 0x1.d6ea2b73dc6f7p-9},
    {0x1.9p+6, 0x1.e3d0cfc5047f3p-8, 0x1.6d48d18077306p-8},
    {0x1.ffp+8, 0x1.158a4af24dc5p-5, 0x1.c6a11540f1927p-6},
    {0x1p+9, 0x1.205bc01a36e2fp-5, 0x1.1f601797cc3ap-5},
    {0x1.008p+9, 0x1.20c49ba5e354p-5, 0x1.1fb3fa6defc7ap-5},
    {0x1p+10, 0x1.f212d77318fc5p-5, 0x1.c725c3dee7819p-5},
    {0x1p+12, 0x1.b71758e219653p-3, 0x1.6d71f36262cbbp-3},
    {0x1p+14, 0x1.a858793dd97f7p-1, 0x1.5704ff43419e3p-1},
};

TEST(CpuModelGoldens, Equation7And10OutputsAreBitIdentical) {
  const CpuPerfModel m4 = CpuPerfModel::paper_4t();
  const CpuPerfModel m8 = CpuPerfModel::paper_8t();
  for (const Golden& g : kGoldens) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: zero ULPs of tolerance.
    EXPECT_EQ(m4.seconds(Megabytes{g.size_mb}).value(), g.paper_4t_seconds)
        << "paper_4t at " << g.size_mb << " MB";
    EXPECT_EQ(m8.seconds(Megabytes{g.size_mb}).value(), g.paper_8t_seconds)
        << "paper_8t at " << g.size_mb << " MB";
  }
}

}  // namespace
}  // namespace holap
