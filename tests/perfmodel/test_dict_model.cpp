#include "perfmodel/dict_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace holap {
namespace {

TEST(DictModel, PaperConstantEquation17) {
  const DictPerfModel m = DictPerfModel::paper();
  EXPECT_DOUBLE_EQ(m.seconds_per_entry(), 0.0138e-6);
  // A 1M-entry dictionary costs 13.8 ms per search.
  EXPECT_NEAR(m.search_seconds(1'000'000).value(), 0.0138, 1e-9);
}

TEST(DictModel, LinearInLength) {
  const DictPerfModel m = DictPerfModel::paper();
  EXPECT_DOUBLE_EQ(m.search_seconds(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(m.search_seconds(2000).value(),
                   2.0 * m.search_seconds(1000).value());
}

TEST(DictModel, TranslationSumsOverParameters) {
  // Eq. (18): the upper bound sums P_DICT over every text parameter.
  const DictPerfModel m = DictPerfModel::paper();
  const std::vector<std::size_t> lengths{1000, 5000, 1000};
  EXPECT_NEAR(m.translation_seconds(lengths).value(),
              (m.search_seconds(1000) * 2.0 + m.search_seconds(5000)).value(),
              1e-15);
  EXPECT_EQ(m.translation_seconds({}), Seconds{});
}

TEST(DictModel, FitRecoversSlope) {
  const std::vector<double> lengths{1e3, 1e4, 1e5, 1e6};
  std::vector<double> times;
  for (double l : lengths) times.push_back(0.02e-6 * l);
  const DictPerfModel fitted = DictPerfModel::fit(lengths, times);
  EXPECT_NEAR(fitted.seconds_per_entry(), 0.02e-6, 1e-12);
}

TEST(DictModel, RejectsNonPositiveSlope) {
  EXPECT_THROW(DictPerfModel(0.0), InvalidArgument);
  EXPECT_THROW(DictPerfModel(-1e-9), InvalidArgument);
}

}  // namespace
}  // namespace holap
