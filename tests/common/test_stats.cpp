#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace holap {
namespace {

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{42};
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 42.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  const std::vector<double> xs{1};
  EXPECT_THROW(percentile(xs, -1), InvalidArgument);
  EXPECT_THROW(percentile(xs, 101), InvalidArgument);
}

TEST(FitLinear, RecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x + 1.25);
  const FitResult f = fit_linear(xs, ys);
  EXPECT_NEAR(f.a, 2.5, 1e-12);
  EXPECT_NEAR(f.b, 1.25, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLinear, NoisyDataStillClose) {
  SplitMix64 rng(77);
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0 + rng.uniform_real(-0.5, 0.5));
  }
  const FitResult f = fit_linear(xs, ys);
  EXPECT_NEAR(f.a, 3.0, 0.05);
  EXPECT_NEAR(f.b, 7.0, 1.0);
  EXPECT_GT(f.r2, 0.999);
}

TEST(FitLinear, RejectsDegenerateInput) {
  const std::vector<double> one{1}, same{2, 2}, ys{3, 4};
  EXPECT_THROW(fit_linear(one, one), InvalidArgument);
  EXPECT_THROW(fit_linear(same, ys), InvalidArgument);
}

TEST(FitLinearOrigin, RecoversSlope) {
  const std::vector<double> xs{1, 2, 4};
  const std::vector<double> ys{0.5, 1.0, 2.0};
  const FitResult f = fit_linear_origin(xs, ys);
  EXPECT_NEAR(f.a, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f.b, 0.0);
}

TEST(FitPowerLaw, RecoversExactPowerLaw) {
  // The paper's eq. (5) coefficients: y = 1e-4 * x^0.9341.
  std::vector<double> xs, ys;
  for (double x : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    xs.push_back(x);
    ys.push_back(1e-4 * std::pow(x, 0.9341));
  }
  const FitResult f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.a, 1e-4, 1e-9);
  EXPECT_NEAR(f.b, 0.9341, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  const std::vector<double> xs{1, -2}, ys{1, 2};
  EXPECT_THROW(fit_power_law(xs, ys), InvalidArgument);
}

TEST(EvalHelpers, MatchClosedForms) {
  const FitResult lin{2.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(eval_linear(lin, 5.0), 13.0);
  const FitResult pw{2.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(eval_power_law(pw, 16.0), 8.0);
}

TEST(RunningStats, MatchesBatchSummary) {
  SplitMix64 rng(99);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(rs.count(), s.count);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(4.0);
  EXPECT_EQ(rs.mean(), 4.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace holap
