#include "common/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace holap {
namespace {

TEST(TablePrinter, RendersHeaderRuleAndRows) {
  TablePrinter t({"threads", "rate [Q/s]"});
  t.add_row({"1", "12"});
  t.add_row({"8", "110"});
  std::ostringstream os;
  t.print(os, "Table 1");
  const std::string out = os.str();
  EXPECT_NE(out.find("Table 1"), std::string::npos);
  EXPECT_NE(out.find("threads"), std::string::npos);
  EXPECT_NE(out.find("110"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), InvalidArgument);
}

TEST(TablePrinter, FixedAndScientificFormatting) {
  EXPECT_EQ(TablePrinter::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fixed(2.0, 0), "2");
  const std::string sci = TablePrinter::scientific(0.000138, 3);
  EXPECT_NE(sci.find("1.380e-04"), std::string::npos);
}

TEST(TablePrinter, HumanBytes) {
  EXPECT_EQ(TablePrinter::human_bytes(512.0), "512.0 B");
  EXPECT_EQ(TablePrinter::human_bytes(4.0 * 1024), "4.0 KB");
  EXPECT_EQ(TablePrinter::human_bytes(512.0 * 1024 * 1024), "512.0 MB");
  EXPECT_EQ(TablePrinter::human_bytes(32.0 * 1024 * 1024 * 1024), "32.0 GB");
}

}  // namespace
}  // namespace holap
