#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace holap {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, ForkProducesIndependentStreams) {
  SplitMix64 master(7);
  SplitMix64 s1(master.fork(1)), s2(master.fork(2));
  int same = 0;
  for (int i = 0; i < 100; ++i) same += s1.next() == s2.next();
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, UniformStaysInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(SplitMix64, UniformRejectsZero) {
  SplitMix64 rng(3);
  EXPECT_THROW(rng.uniform(0), InvalidArgument);
}

TEST(SplitMix64, UniformIntCoversInclusiveRange) {
  SplitMix64 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values should appear
}

TEST(SplitMix64, Uniform01InHalfOpenUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, Uniform01MeanNearHalf) {
  SplitMix64 rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, ExponentialMeanMatchesRate) {
  SplitMix64 rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(SplitMix64, ExponentialRejectsNonPositiveRate) {
  SplitMix64 rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

TEST(SplitMix64, BernoulliExtremes) {
  SplitMix64 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Zipf, UnskewedIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  SplitMix64 rng(23);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.2);
  SplitMix64 rng(29);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler zipf(7, 0.9);
  SplitMix64 rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 7u);
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace holap
