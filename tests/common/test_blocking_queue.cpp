#include "common/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>

namespace holap {
namespace {

TEST(BlockingQueue, FifoOrderSingleThread) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BlockingQueue, CloseWakesConsumersWithNullopt) {
  BlockingQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    const auto item = q.pop();
    got_nullopt = !item.has_value();
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt);
}

TEST(BlockingQueue, CloseDrainsRemainingItemsFirst) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, PushAfterCloseRejected) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(7));
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (const auto item = q.pop()) {
        const std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  // Join producers (the first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)]
      .join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(BlockingQueue, MoveOnlyPayloads) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(42));
  const auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 42);
}

TEST(BoundedQueue, ZeroCapacityMeansUnbounded) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.capacity(), 0u);
  int item = 1;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(q.try_push(item), QueuePush::kAccepted);
  }
  EXPECT_EQ(q.size(), 10'000u);
}

TEST(BoundedQueue, TryPushFailsFastAtCapacityAndKeepsTheItem) {
  BlockingQueue<std::unique_ptr<int>> q(2);
  auto a = std::make_unique<int>(1), b = std::make_unique<int>(2);
  EXPECT_EQ(q.try_push(a), QueuePush::kAccepted);
  EXPECT_EQ(q.try_push(b), QueuePush::kAccepted);
  auto c = std::make_unique<int>(3);
  EXPECT_EQ(q.try_push(c), QueuePush::kFull);
  // kFull must leave the item with the caller so it can be shed/reported.
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 3);
  // A pop frees a slot and the same item now goes through.
  (void)q.pop();
  EXPECT_EQ(q.try_push(c), QueuePush::kAccepted);
  EXPECT_EQ(c, nullptr);
}

TEST(BoundedQueue, TryPushAfterCloseKeepsTheItem) {
  BlockingQueue<std::unique_ptr<int>> q(4);
  q.close();
  auto item = std::make_unique<int>(9);
  EXPECT_EQ(q.try_push(item), QueuePush::kClosed);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 9);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks until the consumer makes room
    second_pushed = true;
  });
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseWakesProducerBlockedOnSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> push_rejected{false};
  std::thread producer([&] { push_rejected = !q.push(2); });
  q.close();
  producer.join();
  EXPECT_TRUE(push_rejected);
  // The item that was already in flight still drains.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, PopForTimesOutOnEmptyOpenQueue) {
  BlockingQueue<int> q;
  const auto item = q.pop_for(std::chrono::milliseconds{5});
  EXPECT_EQ(item, std::nullopt);
  EXPECT_FALSE(q.closed());  // timeout, not shutdown
}

TEST(BlockingQueue, PopForReturnsAvailableItemImmediately) {
  BlockingQueue<int> q;
  q.push(11);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{0}), 11);
}

TEST(BlockingQueue, CloseWakesPopForWaiterBeforeItsTimeout) {
  // The shutdown-during-retry race: a worker parked in a timed pop must
  // observe close() immediately (nullopt + closed()), not sleep out its
  // timeout and delay the drain.
  BlockingQueue<int> q;
  std::atomic<bool> saw_shutdown{false};
  const auto start = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    const auto item = q.pop_for(std::chrono::seconds{60});
    saw_shutdown = !item.has_value() && q.closed();
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(saw_shutdown);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds{30});
}

TEST(BlockingQueue, PushWakesPopForWaiterWithTheItem) {
  BlockingQueue<int> q;
  std::atomic<int> received{-1};
  std::thread consumer([&] {
    const auto item = q.pop_for(std::chrono::seconds{60});
    received = item.value_or(-1);
  });
  q.push(7);
  consumer.join();
  EXPECT_EQ(received, 7);
  EXPECT_FALSE(q.closed());
}

TEST(BlockingQueue, PopForSeesClosedAndDrained) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{5}), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, CloseWithParkedTimedConsumersDrainsThenWakesAll) {
  // The aggregator-shard shutdown shape: several consumers parked in
  // pop_for, items still buffered when close() lands. Every buffered item
  // must be handed out (drain-then-nullopt), every consumer must wake
  // well before its timeout, and nullopt must ONLY appear once the queue
  // is empty — a consumer that sees nullopt+closed() may safely conclude
  // there is nothing left to flush.
  BlockingQueue<int> q;
  constexpr int kConsumers = 3;
  std::mutex seen_mutex;
  std::vector<int> seen;
  std::atomic<int> woke{0};
  std::atomic<bool> nullopt_while_nonempty{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = q.pop_for(std::chrono::seconds{60});
        if (!item.has_value()) {
          if (q.size() != 0) nullopt_while_nonempty = true;
          ++woke;
          return;
        }
        const std::lock_guard lock(seen_mutex);
        seen.push_back(*item);
      }
    });
  }
  for (int i = 0; i < 10; ++i) q.push(i);
  const auto start = std::chrono::steady_clock::now();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds{30});
  EXPECT_EQ(woke.load(), kConsumers);
  EXPECT_FALSE(nullopt_while_nonempty.load());
  EXPECT_EQ(seen.size(), 10u);  // nothing lost between close and drain
}

TEST(BlockingQueue, PopForNulloptWithClosedMeansEmptyNotTimeout) {
  // Mid-batch close: a consumer holding a partial batch distinguishes
  // "timed out, keep batching" from "closed, flush and exit" via
  // closed(). A closed queue must FIRST hand out its buffered items;
  // nullopt+closed() therefore certifies the queue is empty, which is
  // what lets the aggregator flush its batch and exit without stranding
  // (and hence never resolving) a buffered request.
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{1}), 1);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{1}), 2);
  const auto done = q.pop_for(std::chrono::milliseconds{1});
  EXPECT_EQ(done, std::nullopt);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, PopForWithExpiredDeadlineStillDrainsBufferedItems) {
  // A zero/negative remaining-time pop_for (the aggregator computes
  // remaining = deadline - now, which can go non-positive under load)
  // must still return an available item rather than reporting a timeout
  // past a non-empty queue.
  BlockingQueue<int> q;
  q.push(42);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{-5}), 42);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds{-5}), std::nullopt);
  EXPECT_FALSE(q.closed());
}

// Ranking for push_displacing tests: smaller value = less feasible.
constexpr auto kSmallerIsWorse = [](const int& a, const int& b) {
  return a < b;
};

TEST(DisplacingQueue, PushesWithoutDisplacingWhileSpaceRemains) {
  BlockingQueue<int> q(2);
  const auto [status, displaced] = q.push_displacing(5, kSmallerIsWorse);
  EXPECT_EQ(status, QueuePush::kAccepted);
  EXPECT_EQ(displaced, std::nullopt);
  EXPECT_EQ(q.size(), 1u);
}

TEST(DisplacingQueue, EvictsTheWorstQueuedItemWhenFull) {
  BlockingQueue<int> q(3);
  int a = 4, b = 2, c = 7;
  q.try_push(a);
  q.try_push(b);
  q.try_push(c);
  const auto [status, displaced] = q.push_displacing(6, kSmallerIsWorse);
  EXPECT_EQ(status, QueuePush::kAccepted);
  EXPECT_EQ(displaced, 2);  // the least-feasible queued item made room
  // FIFO order of the survivors is preserved; the arrival joins the tail.
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), 6);
}

TEST(DisplacingQueue, ArrivalWorseThanAllQueuedBouncesBack) {
  BlockingQueue<int> q(2);
  int a = 5, b = 8;
  q.try_push(a);
  q.try_push(b);
  const auto [status, displaced] = q.push_displacing(3, kSmallerIsWorse);
  EXPECT_EQ(status, QueuePush::kFull);
  EXPECT_EQ(displaced, 3);  // the arrival itself comes back to the caller
  EXPECT_EQ(q.size(), 2u);
}

TEST(DisplacingQueue, QueuedItemsWinTies) {
  // The arrival must be STRICTLY better to displace: on a tie the queued
  // item keeps its slot, so back-to-back equal jobs don't churn the queue.
  BlockingQueue<int> q(1);
  int queued = 5;
  q.try_push(queued);
  const auto [status, displaced] = q.push_displacing(5, kSmallerIsWorse);
  EXPECT_EQ(status, QueuePush::kFull);
  EXPECT_EQ(displaced, 5);
  EXPECT_EQ(q.pop(), 5);
}

TEST(DisplacingQueue, ClosedQueueReturnsTheArrival) {
  BlockingQueue<int> q(2);
  q.close();
  const auto [status, displaced] = q.push_displacing(1, kSmallerIsWorse);
  EXPECT_EQ(status, QueuePush::kClosed);
  EXPECT_EQ(displaced, 1);
}

TEST(DisplacingQueue, UnboundedQueueNeverDisplaces) {
  BlockingQueue<int> q;  // capacity 0
  for (int i = 0; i < 100; ++i) {
    const auto [status, displaced] = q.push_displacing(i, kSmallerIsWorse);
    ASSERT_EQ(status, QueuePush::kAccepted);
    ASSERT_EQ(displaced, std::nullopt);
  }
  EXPECT_EQ(q.size(), 100u);
}

}  // namespace
}  // namespace holap
