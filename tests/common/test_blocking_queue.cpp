#include "common/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace holap {
namespace {

TEST(BlockingQueue, FifoOrderSingleThread) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BlockingQueue, CloseWakesConsumersWithNullopt) {
  BlockingQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    const auto item = q.pop();
    got_nullopt = !item.has_value();
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt);
}

TEST(BlockingQueue, CloseDrainsRemainingItemsFirst) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, PushAfterCloseRejected) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(7));
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (const auto item = q.pop()) {
        const std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  // Join producers (the first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)]
      .join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(BlockingQueue, MoveOnlyPayloads) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(42));
  const auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 42);
}

}  // namespace
}  // namespace holap
