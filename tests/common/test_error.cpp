#include "common/error.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(HOLAP_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(HOLAP_REQUIRE(false, "always fails"), InvalidArgument);
}

TEST(Error, RequireMessageContainsExpressionAndContext) {
  try {
    HOLAP_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected a throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw CapacityError("full"), Error);
  EXPECT_THROW(throw InvalidArgument("bad"), Error);
  EXPECT_THROW(throw Error("generic"), std::runtime_error);
}

}  // namespace
}  // namespace holap
