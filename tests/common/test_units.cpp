// Strong-typed units: dimensional safety (compile-time), arithmetic
// exactness (every wrapper op must be the underlying IEEE double op),
// and the cross-unit operations of the cost model.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

namespace holap {
namespace {

// ---------------------------------------------------------------------
// Compile-time dimensional safety. Each `requires` probe asks whether the
// expression would compile; mixing units must not. The build-level twin of
// these checks is tests/compile_fail/ (a ctest entry proves a whole TU
// mixing units fails to build).

template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
template <class A, class B>
concept Subtractable = requires(A a, B b) { a - b; };
template <class A, class B>
concept Comparable = requires(A a, B b) { a < b; };
template <class A, class B>
concept Multipliable = requires(A a, B b) { a * b; };

static_assert(Addable<Seconds, Seconds>);
static_assert(!Addable<Seconds, Megabytes>);
static_assert(!Addable<Megabytes, Seconds>);
static_assert(!Addable<Seconds, double>);
static_assert(!Addable<double, Seconds>);

static_assert(Subtractable<Megabytes, Megabytes>);
static_assert(!Subtractable<Megabytes, Seconds>);

static_assert(Comparable<Seconds, Seconds>);
static_assert(!Comparable<Seconds, Megabytes>);
static_assert(!Comparable<Seconds, double>);

// Seconds * Seconds would be seconds^2 — not a unit we model.
static_assert(!Multipliable<Seconds, Seconds>);
static_assert(Multipliable<Seconds, double>);
static_assert(Multipliable<MbPerSec, Seconds>);

// No implicit conversions in either direction: a raw double entering or
// leaving a dimensioned quantity must be spelled out.
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<Seconds, double>);
static_assert(std::is_constructible_v<Seconds, double>);

// The wrappers stay trivially copyable doubles: passing them by value is
// exactly as cheap as the aliases they replaced.
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(sizeof(Seconds) == sizeof(double));

// ---------------------------------------------------------------------
// Arithmetic is the underlying double op, bit for bit.

TEST(Units, SameUnitArithmeticMatchesRawDoubles) {
  const double a = 0.1, b = 0.2;  // 0.1 + 0.2 != 0.3: exactness matters
  EXPECT_EQ((Seconds{a} + Seconds{b}).value(), a + b);
  EXPECT_EQ((Seconds{a} - Seconds{b}).value(), a - b);
  EXPECT_EQ((Seconds{a} * 3.0).value(), a * 3.0);
  EXPECT_EQ((3.0 * Seconds{a}).value(), 3.0 * a);
  EXPECT_EQ((Seconds{a} / 7.0).value(), a / 7.0);
  EXPECT_EQ(Seconds{a} / Seconds{b}, a / b);  // ratio is dimensionless
}

TEST(Units, CompoundAssignmentMatchesRawDoubles) {
  double raw = 1.5;
  Seconds s{1.5};
  raw += 0.25;
  s += Seconds{0.25};
  EXPECT_EQ(s.value(), raw);
  raw *= 1.1;
  s *= 1.1;
  EXPECT_EQ(s.value(), raw);
  raw /= 3.0;
  s /= 3.0;
  EXPECT_EQ(s.value(), raw);
  raw -= 0.125;
  s -= Seconds{0.125};
  EXPECT_EQ(s.value(), raw);
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_EQ(Seconds{}.value(), 0.0);
  EXPECT_EQ(Megabytes{}.value(), 0.0);
  EXPECT_EQ(MbPerSec{}.value(), 0.0);
}

TEST(Units, ComparisonsAndNegation) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Megabytes{4.0}, Megabytes{4.0});
  EXPECT_EQ((-Seconds{3.0}).value(), -3.0);
}

TEST(Units, AdlAbsMinMax) {
  EXPECT_EQ(abs(Seconds{-0.5}), Seconds{0.5});
  EXPECT_EQ(abs(Seconds{0.5}), Seconds{0.5});
  EXPECT_EQ(min(Megabytes{1.0}, Megabytes{2.0}), Megabytes{1.0});
  EXPECT_EQ(max(Megabytes{1.0}, Megabytes{2.0}), Megabytes{2.0});
}

// ---------------------------------------------------------------------
// The cross-unit operations used by the cost model (eqs. 5-18).

TEST(Units, SizeOverRateIsTime) {
  const Seconds t = Megabytes{1024.0} / MbPerSec{512.0};
  EXPECT_EQ(t.value(), 1024.0 / 512.0);
}

TEST(Units, SizeOverTimeIsRate) {
  const MbPerSec r = Megabytes{100.0} / Seconds{4.0};
  EXPECT_EQ(r.value(), 25.0);
}

TEST(Units, RateTimesTimeIsSizeBothOrders) {
  EXPECT_EQ((MbPerSec{3.0} * Seconds{2.0}).value(), 6.0);
  EXPECT_EQ((Seconds{2.0} * MbPerSec{3.0}).value(), 6.0);
}

TEST(Units, GbPerSecIsItsOwnDimension) {
  static_assert(!Addable<GbPerSec, MbPerSec>);
  static_assert(!Comparable<GbPerSec, MbPerSec>);
  static_assert(Addable<GbPerSec, GbPerSec>);
  EXPECT_LT(GbPerSec{1.0}, GbPerSec{19.5});
}

TEST(Units, GbPerSecConversionsAreExact) {
  // 1024 is a power of two: the scaling is exact, so round-trips are too.
  EXPECT_EQ(to_mb_per_sec(GbPerSec{1.0}).value(), 1024.0);
  EXPECT_EQ(to_gb_per_sec(MbPerSec{512.0}).value(), 0.5);
  const GbPerSec odd{19.47};
  EXPECT_EQ(to_gb_per_sec(to_mb_per_sec(odd)), odd);
  const MbPerSec back{3.14159};
  EXPECT_EQ(to_mb_per_sec(to_gb_per_sec(back)), back);
}

TEST(Units, ByteConversionsRoundTrip) {
  EXPECT_EQ(bytes_to_mb(kMiB).value(), 1.0);
  EXPECT_EQ(bytes_to_mb(512 * kKiB).value(), 0.5);
  EXPECT_EQ(mb_to_bytes(Megabytes{2.0}), 2 * kMiB);
  EXPECT_EQ(mb_to_bytes(bytes_to_mb(40 * kMiB)), 40 * kMiB);
}

TEST(Units, StreamingPrintsBareMagnitude) {
  std::ostringstream os;
  os << Seconds{0.25} << " " << Megabytes{7.0};
  EXPECT_EQ(os.str(), "0.25 7");
}

}  // namespace
}  // namespace holap
