#include "gpusim/gpu_device.hpp"

#include <gtest/gtest.h>

#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows = 500) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 77;
  return generate_fact_table(tiny_model_dimensions(), config);
}

TEST(DeviceSpec, TeslaC2070Preset) {
  const DeviceSpec spec = DeviceSpec::tesla_c2070();
  EXPECT_EQ(spec.sm_count, 14);
  EXPECT_EQ(spec.memory_bytes, std::size_t{6} * kGiB);
  EXPECT_DOUBLE_EQ(spec.bandwidth_gbps, 144.0);
}

TEST(GpuDevice, UploadAccountsMemoryExactly) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  EXPECT_FALSE(dev.has_table());
  EXPECT_EQ(dev.memory_used(), 0u);
  const FactTable t = make_table();
  dev.upload_table(t);
  EXPECT_TRUE(dev.has_table());
  EXPECT_EQ(dev.memory_used(), t.size_bytes());
  EXPECT_EQ(dev.memory_free(),
            DeviceSpec::tesla_c2070().memory_bytes - t.size_bytes());
}

TEST(GpuDevice, UploadBeyondCapacityThrows) {
  DeviceSpec tiny = DeviceSpec::tesla_c2070();
  tiny.memory_bytes = 1024;  // 1 KB device
  GpuDevice dev(tiny);
  EXPECT_THROW(dev.upload_table(make_table(1000)), CapacityError);
  EXPECT_FALSE(dev.has_table());
}

TEST(GpuDevice, DefaultUnpartitioned) {
  const GpuDevice dev(DeviceSpec::tesla_c2070());
  EXPECT_EQ(dev.partitions(), (std::vector<int>{14}));
}

TEST(GpuDevice, PaperPartitioningAccepted) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.set_partitions({1, 1, 2, 2, 4, 4});
  EXPECT_EQ(dev.partition_count(), 6);
}

TEST(GpuDevice, PartitioningValidated) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  EXPECT_THROW(dev.set_partitions({}), InvalidArgument);
  EXPECT_THROW(dev.set_partitions({0, 2}), InvalidArgument);
  EXPECT_THROW(dev.set_partitions({8, 8}), InvalidArgument);  // > 14 SMs
}

TEST(GpuDevice, ExecuteAnswersAndModelsTime) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  const FactTable t = make_table();
  dev.upload_table(t);
  dev.set_partitions({1, 1, 2, 2, 4, 4});

  Query q;
  q.conditions.push_back({0, 1, 0, 2, {}, {}});
  q.measures = {12};
  const GpuExecution exec = dev.execute(3, q);
  EXPECT_EQ(exec.columns_accessed, 2);
  EXPECT_NEAR(exec.column_fraction, 2.0 / 16.0, 1e-12);
  // Partition 3 has 2 SMs; model scaled to the (tiny) table size.
  const auto model = dev.partition_model(2);
  EXPECT_NEAR(exec.modeled_seconds.value(),
              model.seconds(exec.column_fraction).value(),
              1e-15);
  EXPECT_GT(exec.modeled_seconds, Seconds{});
}

TEST(GpuDevice, BiggerPartitionsModelFaster) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table());
  dev.set_partitions({1, 2, 4});
  Query q;
  q.conditions.push_back({0, 0, 0, 1, {}, {}});
  q.measures = {12};
  const double t1 = dev.execute(0, q).modeled_seconds.value();
  const double t2 = dev.execute(1, q).modeled_seconds.value();
  const double t4 = dev.execute(2, q).modeled_seconds.value();
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
}

TEST(GpuDevice, PartitionsAnswerIdentically) {
  // §III-G: "any partition can answer any query".
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table());
  dev.set_partitions({1, 1, 2, 2, 4, 4});
  Query q;
  q.conditions.push_back({1, 2, 1, 5, {}, {}});
  q.measures = {13};
  const QueryAnswer first = dev.execute(0, q).answer;
  for (int p = 1; p < 6; ++p) {
    const QueryAnswer other = dev.execute(p, q).answer;
    EXPECT_NEAR(other.value, first.value, 1e-9);
    EXPECT_EQ(other.row_count, first.row_count);
  }
}

TEST(GpuDevice, ExecuteValidatesPartitionIndex) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table(10));
  Query q;
  q.measures = {12};
  EXPECT_THROW(dev.execute(5, q), InvalidArgument);  // only 1 partition
}

TEST(GpuDevice, ExecuteWithoutTableThrows) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  Query q;
  q.measures = {12};
  EXPECT_THROW(dev.execute(0, q), InvalidArgument);
}


TEST(GpuDevice, MultipleTablesCoexist) {
  // §III-G: "all partitions have access to ... all fact tables".
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table(300), "sales");
  dev.upload_table(make_table(200), "returns");
  EXPECT_TRUE(dev.has_table("sales"));
  EXPECT_TRUE(dev.has_table("returns"));
  EXPECT_FALSE(dev.has_table("facts"));
  EXPECT_EQ(dev.table_names(), (std::vector<std::string>{"returns",
                                                         "sales"}));
  EXPECT_EQ(dev.memory_used(), dev.table("sales").size_bytes() +
                                   dev.table("returns").size_bytes());
  // Queries address either table explicitly; answers reflect the table.
  Query q;
  q.measures = {12};
  const QueryAnswer a = dev.execute(0, q, "sales").answer;
  const QueryAnswer b = dev.execute(0, q, "returns").answer;
  EXPECT_EQ(a.row_count, 300.0);
  EXPECT_EQ(b.row_count, 200.0);
}

TEST(GpuDevice, DuplicateNameAndMissingTableRejected) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table(10), "t");
  EXPECT_THROW(dev.upload_table(make_table(10), "t"), InvalidArgument);
  EXPECT_THROW(dev.table("missing"), InvalidArgument);
  Query q;
  q.measures = {12};
  EXPECT_THROW(dev.execute(0, q, "missing"), InvalidArgument);
}

TEST(GpuDevice, DropTableFreesMemory) {
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table(100), "t");
  const std::size_t used = dev.memory_used();
  EXPECT_GT(used, 0u);
  dev.drop_table("t");
  EXPECT_EQ(dev.memory_used(), 0u);
  EXPECT_THROW(dev.drop_table("t"), InvalidArgument);
}

TEST(GpuDevice, CapacityAccountsAcrossTables) {
  DeviceSpec small = DeviceSpec::tesla_c2070();
  const FactTable t = make_table(100);
  small.memory_bytes = t.size_bytes() + t.size_bytes() / 2;
  GpuDevice dev(small);
  dev.upload_table(t, "first");
  EXPECT_THROW(dev.upload_table(t, "second"), CapacityError);
  dev.drop_table("first");
  EXPECT_NO_THROW(dev.upload_table(t, "second"));
}


TEST(GpuDevice, ModeledTimesRecoverPublishedCoefficients) {
  // Drive the functional device across column counts and fit eq. (14)
  // from its modeled times — the calibration loop a new device would use.
  GpuDevice dev(DeviceSpec::tesla_c2070());
  dev.upload_table(make_table(200));
  dev.set_partitions({2});
  std::vector<double> fractions, seconds;
  for (int extra = 0; extra < 8; ++extra) {
    Query q;
    q.conditions.push_back({0, 0, 0, 1, {}, {}});
    for (int e = 0; e < extra; ++e) {
      q.conditions.push_back({e % 3, 1 + e / 3, 0, 0, {}, {}});
    }
    q.measures = {12};
    const GpuExecution exec = dev.execute(0, q);
    fractions.push_back(exec.column_fraction);
    seconds.push_back(exec.modeled_seconds.value());
  }
  const GpuPerfModel fit = GpuPerfModel::fit(fractions, seconds);
  const GpuPerfModel truth = dev.partition_model(2);
  EXPECT_NEAR(fit.a(), truth.a(), 1e-9);
  EXPECT_NEAR(fit.b(), truth.b(), 1e-9);
}

TEST(GpuDevice, OnDeviceCubeBuildMatchesHostBuilder) {
  // §III-A task (1): building the cube from the device-resident table.
  GpuDevice dev(DeviceSpec::tesla_c2070());
  const FactTable t = make_table(600);
  dev.upload_table(t);
  const auto [cube, seconds] =
      dev.build_cube_on_device(2, CubeBasis::kSum, 12);
  const DenseCube host = build_cube(t, 2, CubeBasis::kSum, 12, 0);
  ASSERT_EQ(cube.cell_count(), host.cell_count());
  for (std::size_t i = 0; i < cube.cell_count(); ++i) {
    EXPECT_DOUBLE_EQ(cube.cell(i), host.cell(i));
  }
  EXPECT_GT(seconds, Seconds{});
  // A C2070 streams this tiny table in well under a second.
  EXPECT_LT(seconds, Seconds{0.1});
}

}  // namespace
}  // namespace holap
