#include "gpusim/scan.hpp"

#include <gtest/gtest.h>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows = 800) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 55;
  config.text_levels = {{1, 3}};
  return generate_fact_table(tiny_model_dimensions(), config);
}

Query range_query(AggOp op = AggOp::kSum) {
  Query q;
  q.conditions.push_back({0, 2, 1, 4, {}, {}});
  q.conditions.push_back({2, 1, 0, 2, {}, {}});
  q.measures = {12};
  q.op = op;
  return q;
}

double oracle(const FactTable& t, const Query& q) {
  double sum = 0.0, count = 0.0;
  double lo = 1e300, hi = -1e300;
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    bool match = true;
    for (const auto& c : q.conditions) {
      const auto v = t.dim_level_column(c.dim, c.level)[r];
      if (c.is_text()) {
        match = match && std::find(c.codes.begin(), c.codes.end(), v) !=
                             c.codes.end();
      } else {
        match = match && v >= c.from && v <= c.to;
      }
    }
    if (!match) continue;
    count += 1.0;
    for (int m : q.measures) {
      const double v = t.measure_column(m)[r];
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  switch (q.op) {
    case AggOp::kSum:
      return sum;
    case AggOp::kCount:
      return count;
    case AggOp::kAvg:
      return count > 0 ? sum / count : 0.0;
    case AggOp::kMin:
      return lo;
    case AggOp::kMax:
      return hi;
  }
  return 0.0;
}

class ScanStripes : public ::testing::TestWithParam<int> {};

TEST_P(ScanStripes, MatchesOracleForAllOperators) {
  const FactTable t = make_table();
  for (const AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kAvg,
                         AggOp::kMin, AggOp::kMax}) {
    Query q = range_query(op);
    if (op == AggOp::kCount) q.measures.clear();
    const ScanResult r = gpu_scan(t, q, GetParam());
    EXPECT_NEAR(r.answer.value, oracle(t, q), 1e-9)
        << "op=" << to_string(op) << " stripes=" << GetParam();
    EXPECT_EQ(r.rows_scanned, t.row_count());
  }
}

TEST_P(ScanStripes, StripeCountNeverChangesAnswers) {
  const FactTable t = make_table();
  const Query q = range_query();
  const ScanResult base = gpu_scan(t, q, 1);
  const ScanResult striped = gpu_scan(t, q, GetParam());
  EXPECT_NEAR(striped.answer.value, base.answer.value, 1e-9);
  EXPECT_EQ(striped.answer.row_count, base.answer.row_count);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, ScanStripes,
                         ::testing::Values(1, 2, 4, 7, 14));

TEST(Scan, TranslatedTextConditionFilters) {
  const FactTable t = make_table();
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"a", "b"};
  c.codes = {3, 11};
  q.conditions.push_back(c);
  q.measures = {13};
  const ScanResult r = gpu_scan(t, q, 4);
  EXPECT_NEAR(r.answer.value, oracle(t, q), 1e-9);
}

TEST(Scan, UntranslatedQueryRejected) {
  // The invariant the translation partition exists to preserve.
  const FactTable t = make_table();
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"pending"};
  q.conditions.push_back(c);
  q.measures = {12};
  EXPECT_THROW(gpu_scan(t, q, 4), InvalidArgument);
}

TEST(Scan, AbsentCodeMatchesNothing) {
  const FactTable t = make_table();
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"ghost"};
  c.codes = {-1};
  q.conditions.push_back(c);
  q.measures = {12};
  const ScanResult r = gpu_scan(t, q, 2);
  EXPECT_TRUE(r.answer.empty());
  EXPECT_EQ(r.answer.value, 0.0);
}

TEST(Scan, ColumnsAccessedMatchesEquation12) {
  const FactTable t = make_table();
  Query q = range_query();
  q.measures = {12, 13};
  const ScanResult r = gpu_scan(t, q, 1);
  EXPECT_EQ(r.columns_accessed, 4);  // 2 conditions + 2 measures
}

TEST(Scan, EmptyTable) {
  const FactTable t = make_table(0);
  Query q = range_query();
  const ScanResult r = gpu_scan(t, q, 4);
  EXPECT_TRUE(r.answer.empty());
}

TEST(Scan, NoConditionsAggregatesEverything) {
  const FactTable t = make_table(100);
  Query q;
  q.measures = {12};
  const ScanResult r = gpu_scan(t, q, 3);
  double total = 0.0;
  for (const double v : t.measure_column(12)) total += v;
  EXPECT_NEAR(r.answer.value, total, 1e-9);
  EXPECT_EQ(r.answer.row_count, 100.0);
}

TEST(Scan, RejectsInvalidStripes) {
  const FactTable t = make_table(10);
  EXPECT_THROW(gpu_scan(t, range_query(), 0), InvalidArgument);
}

}  // namespace
}  // namespace holap
