// MUST NOT COMPILE. Adding a duration to a size is dimensionally
// meaningless; the strong-typed units in common/units.hpp only define
// same-unit sums. The `compile_fail.units_mixed_add` ctest entry builds
// this file and asserts the build FAILS — if it ever succeeds, the units
// have silently decayed back into interchangeable doubles.
#include "common/units.hpp"

int main() {
  const holap::Seconds t{1.0};
  const holap::Megabytes size{2.0};
  const auto nonsense = t + size;  // dimensional error: s + MB
  return static_cast<int>(nonsense.value());
}
