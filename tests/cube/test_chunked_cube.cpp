#include "cube/chunked_cube.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "cube/builder.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }

// A mostly-empty cube: few rows scattered over the finest level.
DenseCube sparse_cube(std::size_t rows, CubeBasis basis = CubeBasis::kSum) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 77;
  const FactTable table = generate_fact_table(dims(), config);
  return build_cube(table, 3, basis,
                    basis == CubeBasis::kCount ? -1 : 12, 0);
}

CubeRegion random_region(SplitMix64& rng, const DenseCube& cube) {
  CubeRegion region;
  for (int d = 0; d < cube.dim_count(); ++d) {
    const auto card = static_cast<std::int32_t>(cube.cardinality(d));
    std::vector<Interval> ivs;
    const int n = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<std::int32_t>(rng.uniform_int(0, card - 1));
      const auto hi = static_cast<std::int32_t>(rng.uniform_int(lo, card - 1));
      ivs.push_back({lo, hi});
    }
    region.dims.push_back(normalize_intervals(std::move(ivs)));
  }
  return region;
}

class ChunkSides : public ::testing::TestWithParam<int> {};

TEST_P(ChunkSides, RoundTripPreservesEveryCell) {
  const DenseCube dense = sparse_cube(200);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, GetParam());
  const DenseCube back = chunked.to_dense(dims());
  ASSERT_EQ(back.cell_count(), dense.cell_count());
  for (std::size_t i = 0; i < dense.cell_count(); ++i) {
    EXPECT_EQ(back.cell(i), dense.cell(i)) << "cell " << i;
  }
}

TEST_P(ChunkSides, AggregationMatchesDense) {
  const DenseCube dense = sparse_cube(400);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, GetParam());
  SplitMix64 rng(31 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const CubeRegion region = random_region(rng, dense);
    const AggregateResult expected = aggregate_region(dense, region, 0);
    const AggregateResult got = chunked.aggregate(region);
    EXPECT_NEAR(got.value, expected.value, 1e-9)
        << "side=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(got.cells_scanned, expected.cells_scanned);
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, ChunkSides, ::testing::Values(1, 3, 4, 16),
                         [](const auto& suite_info) {
                           return "side" + std::to_string(suite_info.param);
                         });

TEST(ChunkedCube, SparseDataCompressesHard) {
  // 200 rows scattered over 4096 cells: nearly every chunk is sparse.
  const DenseCube dense = sparse_cube(200);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 4);
  EXPECT_LT(chunked.stored_value_count(), dense.cell_count() / 4);
  EXPECT_LT(chunked.size_bytes(), dense.size_bytes());
  EXPECT_GT(chunked.sparse_chunk_count(), 0u);
  EXPECT_EQ(chunked.cell_count(), dense.cell_count());
}

TEST(ChunkedCube, DenseDataStaysDense) {
  // Saturate the cube so fills exceed the 40% threshold everywhere.
  const DenseCube dense = sparse_cube(100'000);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 4);
  EXPECT_EQ(chunked.sparse_chunk_count(), 0u);
  EXPECT_EQ(chunked.stored_value_count(), dense.cell_count());
}

TEST(ChunkedCube, ThresholdControlsCompression) {
  const DenseCube dense = sparse_cube(2000);
  const ChunkedCube never = ChunkedCube::from_dense(dense, 4, 0.0);
  const ChunkedCube always = ChunkedCube::from_dense(dense, 4, 1.0);
  EXPECT_EQ(never.sparse_chunk_count(), 0u);
  // With threshold 1.0 every non-full chunk compresses.
  EXPECT_GT(always.sparse_chunk_count(), 0u);
  EXPECT_LE(always.stored_value_count(), never.stored_value_count());
}

TEST(ChunkedCube, CellAccessMatchesDense) {
  const DenseCube dense = sparse_cube(600);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 5);
  SplitMix64 rng(9);
  std::vector<std::int32_t> coords(3);
  for (int trial = 0; trial < 200; ++trial) {
    for (int d = 0; d < 3; ++d) {
      coords[static_cast<std::size_t>(d)] = static_cast<std::int32_t>(
          rng.uniform(dense.cardinality(d)));
    }
    EXPECT_EQ(chunked.cell(coords), dense.cell(dense.linear_index(coords)));
  }
}

TEST(ChunkedCube, MinMaxBasisHandlesInfIdentity) {
  const DenseCube dense = sparse_cube(150, CubeBasis::kMin);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 4);
  // Empty cells (inf) must not be stored.
  EXPECT_LT(chunked.stored_value_count(), dense.cell_count());
  CubeRegion full;
  for (int d = 0; d < 3; ++d) {
    full.dims.push_back(
        {{0, static_cast<std::int32_t>(dense.cardinality(d)) - 1}});
  }
  EXPECT_EQ(chunked.aggregate(full).value,
            aggregate_region(dense, full, 0).value);
}

TEST(ChunkedCube, EmptyRegionAndValidation) {
  const DenseCube dense = sparse_cube(50);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 4);
  CubeRegion empty;
  empty.dims = {{}, {{0, 1}}, {{0, 1}}};
  EXPECT_EQ(chunked.aggregate(empty).value, 0.0);
  CubeRegion bad;
  bad.dims = {{{0, 99}}, {{0, 1}}, {{0, 1}}};
  EXPECT_THROW(chunked.aggregate(bad), InvalidArgument);
  EXPECT_THROW(ChunkedCube::from_dense(dense, 0), InvalidArgument);
}

TEST(ChunkedCube, NonDividingChunkSide) {
  // Cardinality 16 with chunk side 5 leaves ragged edge chunks.
  const DenseCube dense = sparse_cube(300);
  const ChunkedCube chunked = ChunkedCube::from_dense(dense, 5);
  EXPECT_EQ(chunked.chunk_count(), 4u * 4u * 4u);  // ceil(16/5) = 4 per dim
  const DenseCube back = chunked.to_dense(dims());
  for (std::size_t i = 0; i < dense.cell_count(); ++i) {
    ASSERT_EQ(back.cell(i), dense.cell(i)) << "cell " << i;
  }
}

}  // namespace
}  // namespace holap
