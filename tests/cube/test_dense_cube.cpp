#include "cube/dense_cube.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }

TEST(DenseCube, AllocatesFullExtent) {
  const DenseCube cube(dims(), 1, CubeBasis::kSum, 0);
  EXPECT_EQ(cube.cell_count(), 4u * 4u * 4u);
  EXPECT_EQ(cube.size_bytes(), 64u * 8u);
  EXPECT_EQ(cube.dim_count(), 3);
  EXPECT_EQ(cube.cardinality(0), 4u);
}

TEST(DenseCube, LastDimensionContiguous) {
  const DenseCube cube(dims(), 1, CubeBasis::kSum, 0);
  EXPECT_EQ(cube.stride(2), 1u);
  EXPECT_EQ(cube.stride(1), 4u);
  EXPECT_EQ(cube.stride(0), 16u);
}

TEST(DenseCube, LinearIndexMatchesStrides) {
  const DenseCube cube(dims(), 1, CubeBasis::kSum, 0);
  const std::vector<std::int32_t> coords{2, 1, 3};
  EXPECT_EQ(cube.linear_index(coords), 2u * 16u + 1u * 4u + 3u);
}

TEST(DenseCube, LinearIndexValidatesBounds) {
  const DenseCube cube(dims(), 1, CubeBasis::kSum, 0);
  const std::vector<std::int32_t> bad{4, 0, 0};
  EXPECT_THROW(cube.linear_index(bad), InvalidArgument);
  const std::vector<std::int32_t> wrong_arity{0, 0};
  EXPECT_THROW(cube.linear_index(wrong_arity), InvalidArgument);
}

TEST(DenseCube, IdentityFillPerBasis) {
  const DenseCube sum(dims(), 0, CubeBasis::kSum, 0);
  EXPECT_EQ(sum.cell(0), 0.0);
  const DenseCube cnt(dims(), 0, CubeBasis::kCount, -1);
  EXPECT_EQ(cnt.cell(0), 0.0);
  const DenseCube mn(dims(), 0, CubeBasis::kMin, 0);
  EXPECT_TRUE(std::isinf(mn.cell(0)));
  EXPECT_GT(mn.cell(0), 0.0);
  const DenseCube mx(dims(), 0, CubeBasis::kMax, 0);
  EXPECT_TRUE(std::isinf(mx.cell(0)));
  EXPECT_LT(mx.cell(0), 0.0);
}

TEST(DenseCube, BasisMeasureInvariants) {
  EXPECT_THROW(DenseCube(dims(), 0, CubeBasis::kCount, 0), InvalidArgument);
  EXPECT_THROW(DenseCube(dims(), 0, CubeBasis::kSum, -1), InvalidArgument);
  EXPECT_THROW(DenseCube(dims(), 9, CubeBasis::kSum, 0), InvalidArgument);
}

TEST(BasisAlgebra, CombineSemantics) {
  EXPECT_EQ(basis_combine(CubeBasis::kSum, 2.0, 3.0), 5.0);
  EXPECT_EQ(basis_combine(CubeBasis::kCount, 2.0, 3.0), 5.0);
  EXPECT_EQ(basis_combine(CubeBasis::kMin, 2.0, 3.0), 2.0);
  EXPECT_EQ(basis_combine(CubeBasis::kMax, 2.0, 3.0), 3.0);
}

TEST(BasisAlgebra, IdentityIsNeutral) {
  for (const CubeBasis b : {CubeBasis::kSum, CubeBasis::kCount,
                            CubeBasis::kMin, CubeBasis::kMax}) {
    EXPECT_EQ(basis_combine(b, basis_identity(b), 7.0), 7.0);
    EXPECT_EQ(basis_combine(b, 7.0, basis_identity(b)), 7.0);
  }
}

TEST(CubeBytes, MatchesPaperLadder) {
  const auto paper = paper_model_dimensions();
  EXPECT_EQ(cube_bytes(paper, 0), 4u * 1024u);
  EXPECT_EQ(cube_bytes(paper, 1), 500u * 1024u);
  EXPECT_EQ(cube_bytes(paper, 2), 512'000'000u);
  EXPECT_EQ(cube_bytes(paper, 3), 32'768'000'000u);
}

TEST(CubeBasisNames, Distinct) {
  EXPECT_STREQ(to_string(CubeBasis::kSum), "sum");
  EXPECT_STREQ(to_string(CubeBasis::kCount), "count");
  EXPECT_STREQ(to_string(CubeBasis::kMin), "min");
  EXPECT_STREQ(to_string(CubeBasis::kMax), "max");
}

}  // namespace
}  // namespace holap
