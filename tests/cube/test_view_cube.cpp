#include "cube/view_cube.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cube/builder.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows = 1000) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 13;
  config.zipf_skew = 0.6;
  return generate_fact_table(tiny_model_dimensions(), config);
}

void expect_views_equal(const ViewCube& a, const ViewCube& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    if (std::isinf(b.cells()[i])) {
      EXPECT_EQ(a.cells()[i], b.cells()[i]) << "cell " << i;
    } else {
      EXPECT_NEAR(a.cells()[i], b.cells()[i], 1e-9) << "cell " << i;
    }
  }
}

TEST(ViewCube, UniformViewMatchesDenseCube) {
  // A uniform-level view must equal the DenseCube builder's output.
  const FactTable table = make_table();
  const ViewCube view =
      build_view(table, ViewId{{2, 2, 2}}, CubeBasis::kSum, 12);
  const DenseCube dense = build_cube(table, 2, CubeBasis::kSum, 12, 0);
  ASSERT_EQ(view.cell_count(), dense.cell_count());
  for (std::size_t i = 0; i < dense.cell_count(); ++i) {
    EXPECT_NEAR(view.cells()[i], dense.cell(i), 1e-9);
  }
}

TEST(ViewCube, CollapsedDimensionsAggregateOut) {
  const FactTable table = make_table(500);
  const ViewCube apex = build_view(table, apex_view(
                                       table.schema().dimensions()),
                                   CubeBasis::kSum, 12);
  EXPECT_EQ(apex.cell_count(), 1u);
  double expected = 0.0;
  for (const double v : table.measure_column(12)) expected += v;
  EXPECT_NEAR(apex.cells()[0], expected, 1e-9);
}

TEST(ViewCube, MixedLevelsGroupCorrectly) {
  // geo collapsed, time at level 1, product at level 0: verify one cell
  // against a direct row scan.
  const FactTable table = make_table(800);
  const ViewId id{{1, ViewId::kCollapsed, 0}};
  const ViewCube view = build_view(table, id, CubeBasis::kSum, 13);
  double expected = 0.0;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    if (table.dim_level_column(0, 1)[r] == 2 &&
        table.dim_level_column(2, 0)[r] == 1) {
      expected += table.measure_column(13)[r];
    }
  }
  const std::vector<std::int32_t> coords{2, 0, 1};
  EXPECT_NEAR(view.cells()[view.linear_index(coords)], expected, 1e-9);
}

struct RollupCase {
  ViewId parent;
  ViewId child;
};

class ViewRollups : public ::testing::TestWithParam<RollupCase> {};

TEST_P(ViewRollups, RollupEqualsDirectBuild) {
  const FactTable table = make_table(1200);
  const auto& dims = table.schema().dimensions();
  for (const CubeBasis basis :
       {CubeBasis::kSum, CubeBasis::kCount, CubeBasis::kMax}) {
    const int measure = basis == CubeBasis::kCount ? -1 : 12;
    const ViewCube parent =
        build_view(table, GetParam().parent, basis, measure);
    const ViewCube rolled = rollup_view(parent, dims, GetParam().child);
    const ViewCube direct =
        build_view(table, GetParam().child, basis, measure);
    expect_views_equal(rolled, direct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ViewRollups,
    ::testing::Values(
        RollupCase{{{3, 3, 3}}, {{1, 2, 0}}},
        RollupCase{{{3, 3, 3}}, {{ViewId::kCollapsed, 3, 3}}},
        RollupCase{{{2, 3, 1}}, {{0, ViewId::kCollapsed, 1}}},
        RollupCase{{{3, 3, 3}},
                   {{ViewId::kCollapsed, ViewId::kCollapsed,
                     ViewId::kCollapsed}}},
        RollupCase{{{1, ViewId::kCollapsed, 2}},
                   {{0, ViewId::kCollapsed, ViewId::kCollapsed}}}),
    [](const auto& suite_info) {
      std::string name = "case";
      for (const int l : suite_info.param.child.levels) {
        name += l == ViewId::kCollapsed ? "A" : std::to_string(l);
      }
      return name;
    });

TEST(ViewCube, RollupRejectsUnderivableChild) {
  const FactTable table = make_table(50);
  const auto& dims = table.schema().dimensions();
  const ViewCube parent =
      build_view(table, ViewId{{1, 1, 1}}, CubeBasis::kSum, 12);
  // Finer than the parent: not derivable.
  EXPECT_THROW(rollup_view(parent, dims, ViewId{{2, 1, 1}}),
               InvalidArgument);
  // Collapsing a dimension, by contrast, is always derivable.
  EXPECT_NO_THROW(rollup_view(parent, dims,
                              ViewId{{1, 1, ViewId::kCollapsed}}));
}

TEST(ExecutePlan, FullLatticeMatchesDirectBuilds) {
  const FactTable table = make_table(600);
  const auto& dims = table.schema().dimensions();
  const auto views = enumerate_lattice(dims);
  const MaterializationPlan plan =
      plan_smallest_parent(dims, views, table.row_count());
  const auto cubes = execute_plan(table, plan, CubeBasis::kSum, 12);
  ASSERT_EQ(cubes.size(), plan.steps.size());
  // Every cube preserves the grand total (sum basis invariant) ...
  double grand = 0.0;
  for (const double v : table.measure_column(12)) grand += v;
  for (const auto& cube : cubes) {
    EXPECT_NEAR(cube.combined_total(), grand, 1e-6);
  }
  // ... and a sample of views matches a direct fact-table build.
  for (const std::size_t i : {std::size_t{0}, cubes.size() / 2,
                              cubes.size() - 1}) {
    const ViewCube direct =
        build_view(table, plan.steps[i].view, CubeBasis::kSum, 12);
    expect_views_equal(cubes[i], direct);
  }
}

}  // namespace
}  // namespace holap
