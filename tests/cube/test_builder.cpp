#include "cube/builder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows, std::uint64_t seed = 1) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = seed;
  config.zipf_skew = 0.7;
  return generate_fact_table(tiny_model_dimensions(), config);
}

// Row-by-row oracle.
DenseCube oracle_cube(const FactTable& table, int level, CubeBasis basis,
                      int measure) {
  const auto& dims = table.schema().dimensions();
  DenseCube cube(dims, level, basis, measure);
  std::vector<std::int32_t> coords(dims.size());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      coords[d] = table.dim_level_column(static_cast<int>(d), level)[r];
    }
    const std::size_t idx = cube.linear_index(coords);
    const double v =
        basis == CubeBasis::kCount ? 1.0 : table.measure_column(measure)[r];
    cube.cell(idx) = basis_combine(basis, cube.cell(idx), v);
  }
  return cube;
}

void expect_cubes_equal(const DenseCube& a, const DenseCube& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    if (std::isinf(b.cell(i))) {
      // Empty min/max cells hold the ±inf identity.
      EXPECT_EQ(a.cell(i), b.cell(i)) << "cell " << i;
    } else {
      EXPECT_NEAR(a.cell(i), b.cell(i), 1e-9) << "cell " << i;
    }
  }
}

struct Case {
  CubeBasis basis;
  int level;
  int threads;
};

class BuilderMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(BuilderMatrix, MatchesRowOracle) {
  const auto [basis, level, threads] = GetParam();
  const FactTable table = make_table(1500);
  const int measure = basis == CubeBasis::kCount
                          ? -1
                          : table.schema().measure_columns()[0];
  const DenseCube built = build_cube(table, level, basis, measure, threads);
  const DenseCube expected = oracle_cube(table, level, basis, measure);
  expect_cubes_equal(built, expected);
}

INSTANTIATE_TEST_SUITE_P(
    BasesLevelsThreads, BuilderMatrix,
    ::testing::Values(Case{CubeBasis::kSum, 0, 0}, Case{CubeBasis::kSum, 3, 0},
                      Case{CubeBasis::kSum, 2, 4}, Case{CubeBasis::kSum, 3, 8},
                      Case{CubeBasis::kCount, 1, 0},
                      Case{CubeBasis::kCount, 3, 4},
                      Case{CubeBasis::kMin, 2, 0}, Case{CubeBasis::kMin, 3, 4},
                      Case{CubeBasis::kMax, 0, 4},
                      Case{CubeBasis::kMax, 3, 0}),
    [](const auto& suite_info) {
      return std::string(to_string(suite_info.param.basis)) + "_l" +
             std::to_string(suite_info.param.level) + "_t" +
             std::to_string(suite_info.param.threads);
    });

TEST(Builder, CountCubeTotalsRowCount) {
  const FactTable table = make_table(800);
  const DenseCube cube = build_cube(table, 2, CubeBasis::kCount, -1, 4);
  double total = 0.0;
  for (const double c : cube.cells()) total += c;
  EXPECT_DOUBLE_EQ(total, 800.0);
}

TEST(Builder, SumCubeTotalsColumnSum) {
  const FactTable table = make_table(600);
  const int m = table.schema().measure_columns()[1];
  const DenseCube cube = build_cube(table, 1, CubeBasis::kSum, m, 0);
  double cube_total = 0.0;
  for (const double c : cube.cells()) cube_total += c;
  double col_total = 0.0;
  for (const double v : table.measure_column(m)) col_total += v;
  EXPECT_NEAR(cube_total, col_total, 1e-6);
}

TEST(Builder, EmptyTableGivesIdentityCube) {
  const FactTable table = make_table(0);
  const DenseCube cube = build_cube(table, 1, CubeBasis::kSum, 12, 4);
  for (const double c : cube.cells()) EXPECT_EQ(c, 0.0);
}

TEST(Builder, SequentialAndParallelBuildsAgree) {
  const FactTable table = make_table(2000, 9);
  const int m = table.schema().measure_columns()[0];
  const DenseCube seq = build_cube(table, 3, CubeBasis::kSum, m, 0);
  for (int threads : {1, 2, 4, 8}) {
    const DenseCube par = build_cube(table, 3, CubeBasis::kSum, m, threads);
    expect_cubes_equal(par, seq);
  }
}

}  // namespace
}  // namespace holap
