#include "cube/region.hpp"

#include <gtest/gtest.h>

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }

TEST(Intervals, NormalizeMergesOverlapsAndAdjacency) {
  const auto out =
      normalize_intervals({{5, 7}, {0, 2}, {3, 4}, {6, 9}});
  // {0,2}+{3,4} adjacent -> {0,4}; {5,7}+{6,9} overlap -> {5,9};
  // {0,4}+{5,9} adjacent -> {0,9}.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Interval{0, 9}));
}

TEST(Intervals, NormalizeKeepsDisjoint) {
  const auto out = normalize_intervals({{8, 9}, {0, 1}, {4, 5}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Interval{0, 1}));
  EXPECT_EQ(out[2], (Interval{8, 9}));
}

TEST(Intervals, NormalizeRejectsInverted) {
  EXPECT_THROW(normalize_intervals({{3, 1}}), InvalidArgument);
}

TEST(Intervals, IntersectBasics) {
  const auto out = intersect_intervals({{0, 5}, {8, 12}}, {{4, 9}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Interval{4, 5}));
  EXPECT_EQ(out[1], (Interval{8, 9}));
}

TEST(Intervals, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(intersect_intervals({{0, 2}}, {{5, 9}}).empty());
}

TEST(CubeRegion, CellCountMultipliesWidths) {
  CubeRegion region;
  region.dims = {{{0, 1}}, {{0, 3}}, {{0, 0}, {2, 3}}};
  EXPECT_EQ(region.cell_count(), 2u * 4u * 3u);
  EXPECT_FALSE(region.empty());
}

TEST(CubeRegion, EmptyWhenAnyDimensionEmpty) {
  CubeRegion region;
  region.dims = {{{0, 1}}, {}, {{0, 3}}};
  EXPECT_TRUE(region.empty());
  EXPECT_EQ(region.cell_count(), 0u);
}

TEST(RegionForQuery, UnconditionedDimensionsCoverFullExtent) {
  Query q;
  q.measures = {12};
  const CubeRegion region = region_for_query(q, dims(), 1);
  ASSERT_EQ(region.dims.size(), 3u);
  for (const auto& d : region.dims) {
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0], (Interval{0, 3}));
  }
}

TEST(RegionForQuery, SameLevelRangePassesThrough) {
  Query q;
  q.conditions.push_back({0, 1, 1, 2, {}, {}});
  const CubeRegion region = region_for_query(q, dims(), 1);
  EXPECT_EQ(region.dims[0], (std::vector<Interval>{{1, 2}}));
}

TEST(RegionForQuery, CoarserConditionWidensByFanout) {
  Query q;
  q.conditions.push_back({0, 0, 1, 1, {}, {}});  // member 1 of 2 at level 0
  const CubeRegion region = region_for_query(q, dims(), 2);
  // Level-2 cardinality 8, fanout 4: member 1 covers [4, 7].
  EXPECT_EQ(region.dims[0], (std::vector<Interval>{{4, 7}}));
}

TEST(RegionForQuery, TranslatedTextConditionBecomesIntervals) {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 2;
  c.text_values = {"a", "b", "c"};
  c.codes = {1, 6, -1};  // one string was absent
  q.conditions.push_back(c);
  const CubeRegion region = region_for_query(q, dims(), 3);
  // Fanout level 2 -> 3 is 2: codes 1 and 6 map to [2,3] and [12,13].
  EXPECT_EQ(region.dims[1],
            (std::vector<Interval>{{2, 3}, {12, 13}}));
}

TEST(RegionForQuery, AdjacentTextCodesMerge) {
  Query q;
  Condition c;
  c.dim = 0;
  c.level = 3;
  c.text_values = {"a", "b"};
  c.codes = {4, 5};
  q.conditions.push_back(c);
  const CubeRegion region = region_for_query(q, dims(), 3);
  EXPECT_EQ(region.dims[0], (std::vector<Interval>{{4, 5}}));
}

TEST(RegionForQuery, MultipleConditionsIntersectWithinDimension) {
  Query q;
  q.conditions.push_back({0, 2, 0, 5, {}, {}});
  q.conditions.push_back({0, 2, 3, 7, {}, {}});
  const CubeRegion region = region_for_query(q, dims(), 2);
  EXPECT_EQ(region.dims[0], (std::vector<Interval>{{3, 5}}));
}

TEST(RegionForQuery, ContradictoryConditionsYieldEmptyRegion) {
  Query q;
  q.conditions.push_back({0, 2, 0, 1, {}, {}});
  q.conditions.push_back({0, 2, 5, 7, {}, {}});
  const CubeRegion region = region_for_query(q, dims(), 2);
  EXPECT_TRUE(region.empty());
}

TEST(RegionForQuery, RejectsTooCoarseCube) {
  Query q;
  q.conditions.push_back({0, 3, 0, 1, {}, {}});
  EXPECT_THROW(region_for_query(q, dims(), 2), InvalidArgument);
}

TEST(RegionForQuery, RejectsUntranslatedText) {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"pending"};
  q.conditions.push_back(c);
  EXPECT_THROW(region_for_query(q, dims(), 3), InvalidArgument);
}

TEST(RegionForQuery, AllCodesAbsentYieldsEmpty) {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"x"};
  c.codes = {-1};
  q.conditions.push_back(c);
  const CubeRegion region = region_for_query(q, dims(), 3);
  EXPECT_TRUE(region.empty());
}

}  // namespace
}  // namespace holap
