#include "cube/lattice.hpp"

#include <gtest/gtest.h>

#include <set>

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }

TEST(ViewId, DerivabilityRules) {
  // time.month x geo.(all) x product.day-ish shapes.
  const ViewId fine{{3, 3, 3}};
  const ViewId mid{{1, 3, 2}};
  const ViewId collapsed{{1, ViewId::kCollapsed, 2}};
  EXPECT_TRUE(mid.derivable_from(fine));
  EXPECT_TRUE(collapsed.derivable_from(fine));
  EXPECT_TRUE(collapsed.derivable_from(mid));
  EXPECT_FALSE(fine.derivable_from(mid));
  // A collapsed dimension in the parent cannot be resurrected.
  EXPECT_FALSE(mid.derivable_from(collapsed));
  // Every view derives from itself (useful degenerate case).
  EXPECT_TRUE(mid.derivable_from(mid));
}

TEST(ViewId, CellsMultiplyNonCollapsedCardinalities) {
  // tiny dims: cardinalities 2/4/8/16 per level.
  EXPECT_EQ((ViewId{{3, 3, 3}}.cells(dims())), 16u * 16u * 16u);
  EXPECT_EQ((ViewId{{0, ViewId::kCollapsed, 2}}.cells(dims())), 2u * 8u);
  EXPECT_EQ(apex_view(dims()).cells(dims()), 1u);
}

TEST(ViewId, Rendering) {
  const std::string s = ViewId{{1, ViewId::kCollapsed, 3}}.to_string(dims());
  EXPECT_NE(s.find("time.month"), std::string::npos);
  EXPECT_NE(s.find("geography.(all)"), std::string::npos);
  EXPECT_NE(s.find("product.item"), std::string::npos);
}

TEST(Lattice, EnumerationCountsAndUniqueness) {
  const auto views = enumerate_lattice(dims());
  // (4 levels + collapsed)^3 = 125 views.
  EXPECT_EQ(views.size(), 125u);
  std::set<std::vector<int>> distinct;
  for (const auto& v : views) distinct.insert(v.levels);
  EXPECT_EQ(distinct.size(), 125u);
  // Sorted coarse-to-fine: first is the apex, last the base cuboid.
  EXPECT_EQ(views.front(), apex_view(dims()));
  EXPECT_EQ(views.back(), base_view(dims()));
}

TEST(Lattice, EverythingDerivesFromBase) {
  const ViewId base = base_view(dims());
  for (const auto& view : enumerate_lattice(dims())) {
    EXPECT_TRUE(view.derivable_from(base));
  }
}

TEST(ValidateView, RejectsBadShapes) {
  EXPECT_THROW(validate_view(ViewId{{0, 0}}, dims()), InvalidArgument);
  EXPECT_THROW(validate_view(ViewId{{0, 0, 4}}, dims()), InvalidArgument);
  EXPECT_THROW(validate_view(ViewId{{0, 0, -2}}, dims()), InvalidArgument);
}

TEST(SmallestParent, PlanIsTopologicalAndDerivable) {
  const auto views = enumerate_lattice(dims());
  const MaterializationPlan plan =
      plan_smallest_parent(dims(), views, 100'000);
  ASSERT_EQ(plan.steps.size(), views.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const auto& step = plan.steps[i];
    if (!step.parent.has_value()) continue;
    EXPECT_LT(*step.parent, i);  // parents precede children
    EXPECT_TRUE(step.view.derivable_from(plan.steps[*step.parent].view));
    EXPECT_EQ(step.scan_cost, plan.steps[*step.parent].view.cells(dims()));
  }
}

TEST(SmallestParent, ParentIsTheSmallestPossible) {
  const auto views = enumerate_lattice(dims());
  const MaterializationPlan plan =
      plan_smallest_parent(dims(), views, 1'000'000'000);
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const auto& step = plan.steps[i];
    if (!step.parent.has_value()) continue;
    // No earlier step that subsumes this view may be smaller.
    for (std::size_t p = 0; p < plan.steps.size(); ++p) {
      if (p == i || !step.view.derivable_from(plan.steps[p].view)) continue;
      if (plan.steps[p].view == step.view) continue;
      EXPECT_GE(plan.steps[p].view.cells(dims()), step.scan_cost)
          << "step " << i << " missed a smaller parent " << p;
    }
  }
}

TEST(SmallestParent, OnlyBaseScansTheFactTable) {
  const auto views = enumerate_lattice(dims());
  const MaterializationPlan plan =
      plan_smallest_parent(dims(), views, 1'000'000);
  int fact_scans = 0;
  for (const auto& step : plan.steps) fact_scans += !step.parent.has_value();
  EXPECT_EQ(fact_scans, 1);  // the base cuboid only
  EXPECT_FALSE(plan.steps.front().parent.has_value());
  EXPECT_EQ(plan.steps.front().view, base_view(dims()));
}

TEST(SmallestParent, FactTablePreferredWhenSmaller) {
  // A minuscule fact table beats any materialized parent.
  const std::vector<ViewId> views{base_view(dims()),
                                  ViewId{{2, 2, 2}}};
  const MaterializationPlan plan = plan_smallest_parent(dims(), views, 10);
  for (const auto& step : plan.steps) {
    EXPECT_FALSE(step.parent.has_value());
    EXPECT_EQ(step.scan_cost, 10u);
  }
}

TEST(SmallestParent, BeatsNaiveOnTheFullLattice) {
  const auto views = enumerate_lattice(dims());
  const std::size_t rows = 1'000'000;
  const MaterializationPlan smart =
      plan_smallest_parent(dims(), views, rows);
  const MaterializationPlan naive = plan_naive(dims(), views, rows);
  EXPECT_LT(smart.total_cost, naive.total_cost / 20);
}

TEST(SmallestParent, RejectsDuplicatesAndBadViews) {
  std::vector<ViewId> dup{base_view(dims()), base_view(dims())};
  EXPECT_THROW(plan_smallest_parent(dims(), dup, 10), InvalidArgument);
  std::vector<ViewId> bad{ViewId{{9, 0, 0}}};
  EXPECT_THROW(plan_smallest_parent(dims(), bad, 10), InvalidArgument);
}

}  // namespace
}  // namespace holap
