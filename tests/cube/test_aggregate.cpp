#include "cube/aggregate.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace holap {
namespace {

std::vector<Dimension> dims() { return tiny_model_dimensions(); }

DenseCube filled_cube(int level, CubeBasis basis, std::uint64_t seed) {
  DenseCube cube(dims(), level, basis, basis == CubeBasis::kCount ? -1 : 0);
  SplitMix64 rng(seed);
  for (auto& c : cube.cells()) c = rng.uniform_real(0.5, 2.0);
  return cube;
}

// Brute-force oracle: visit every cell, test region membership per dim.
double oracle(const DenseCube& cube, const CubeRegion& region) {
  double acc = basis_identity(cube.basis());
  std::vector<std::int32_t> coords(static_cast<std::size_t>(cube.dim_count()));
  const std::size_t total = cube.cell_count();
  for (std::size_t i = 0; i < total; ++i) {
    std::size_t rest = i;
    bool inside = true;
    for (int d = cube.dim_count() - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      coords[du] = static_cast<std::int32_t>(rest % cube.cardinality(d));
      rest /= cube.cardinality(d);
      bool in_dim = false;
      for (const auto& iv : region.dims[du]) {
        in_dim = in_dim || (coords[du] >= iv.lo && coords[du] <= iv.hi);
      }
      inside = inside && in_dim;
    }
    if (inside) acc = basis_combine(cube.basis(), acc, cube.cell(i));
  }
  return acc;
}

CubeRegion random_region(SplitMix64& rng, int level) {
  CubeRegion region;
  const auto ds = dims();
  for (const auto& dim : ds) {
    const auto card = static_cast<std::int32_t>(dim.level(level).cardinality);
    std::vector<Interval> ivs;
    const int n = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < n; ++i) {
      const auto lo = static_cast<std::int32_t>(rng.uniform_int(0, card - 1));
      const auto hi = static_cast<std::int32_t>(rng.uniform_int(lo, card - 1));
      ivs.push_back({lo, hi});
    }
    region.dims.push_back(normalize_intervals(std::move(ivs)));
  }
  return region;
}

struct Case {
  CubeBasis basis;
  int threads;
};

class AggregateMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(AggregateMatrix, MatchesBruteForceOracleOnRandomRegions) {
  const auto [basis, threads] = GetParam();
  const DenseCube cube = filled_cube(2, basis, 1234);
  SplitMix64 rng(99 + static_cast<std::uint64_t>(threads));
  for (int trial = 0; trial < 25; ++trial) {
    const CubeRegion region = random_region(rng, 2);
    const AggregateResult got = aggregate_region(cube, region, threads);
    EXPECT_NEAR(got.value, oracle(cube, region), 1e-9)
        << "basis=" << to_string(basis) << " trial=" << trial;
    EXPECT_EQ(got.cells_scanned, region.cell_count());
    EXPECT_EQ(got.bytes_scanned, region.cell_count() * 8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndThreads, AggregateMatrix,
    ::testing::Values(Case{CubeBasis::kSum, 0}, Case{CubeBasis::kSum, 1},
                      Case{CubeBasis::kSum, 4}, Case{CubeBasis::kSum, 8},
                      Case{CubeBasis::kCount, 0}, Case{CubeBasis::kCount, 4},
                      Case{CubeBasis::kMin, 0}, Case{CubeBasis::kMin, 4},
                      Case{CubeBasis::kMax, 0}, Case{CubeBasis::kMax, 8}),
    [](const auto& suite_info) {
      return std::string(to_string(suite_info.param.basis)) + "_t" +
             std::to_string(suite_info.param.threads);
    });

TEST(Aggregate, SequentialAndParallelAgreeExactlyForSum) {
  // Same association order (per-offset runs), so exact equality holds.
  const DenseCube cube = filled_cube(3, CubeBasis::kSum, 5);
  SplitMix64 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const CubeRegion region = random_region(rng, 3);
    const double seq = aggregate_region(cube, region, 0).value;
    for (int threads : {1, 2, 4, 8}) {
      EXPECT_NEAR(aggregate_region(cube, region, threads).value, seq, 1e-9);
    }
  }
}

TEST(Aggregate, FullCubeEqualsTotalSum) {
  const DenseCube cube = filled_cube(1, CubeBasis::kSum, 21);
  double total = 0.0;
  for (const double c : cube.cells()) total += c;
  CubeRegion full;
  for (int d = 0; d < 3; ++d) {
    full.dims.push_back(
        {{0, static_cast<std::int32_t>(cube.cardinality(d)) - 1}});
  }
  EXPECT_NEAR(aggregate_region(cube, full, 0).value, total, 1e-9);
  EXPECT_EQ(aggregate_region(cube, full, 0).cells_scanned, cube.cell_count());
}

TEST(Aggregate, EmptyRegionReturnsIdentity) {
  const DenseCube cube = filled_cube(1, CubeBasis::kSum, 3);
  CubeRegion empty;
  empty.dims = {{}, {{0, 1}}, {{0, 1}}};
  const AggregateResult r = aggregate_region(cube, empty, 4);
  EXPECT_EQ(r.value, 0.0);
  EXPECT_EQ(r.cells_scanned, 0u);
}

TEST(Aggregate, SingleCellRegion) {
  DenseCube cube(dims(), 1, CubeBasis::kSum, 0);
  const std::vector<std::int32_t> coords{2, 3, 1};
  cube.cell(cube.linear_index(coords)) = 42.0;
  CubeRegion region;
  region.dims = {{{2, 2}}, {{3, 3}}, {{1, 1}}};
  EXPECT_EQ(aggregate_region(cube, region, 0).value, 42.0);
  EXPECT_EQ(aggregate_region(cube, region, 0).cells_scanned, 1u);
}

TEST(Aggregate, RejectsRegionBeyondBounds) {
  const DenseCube cube = filled_cube(1, CubeBasis::kSum, 3);
  CubeRegion bad;
  bad.dims = {{{0, 4}}, {{0, 3}}, {{0, 3}}};  // level-1 card is 4
  EXPECT_THROW(aggregate_region(cube, bad, 0), InvalidArgument);
}

TEST(Aggregate, RejectsArityMismatch) {
  const DenseCube cube = filled_cube(1, CubeBasis::kSum, 3);
  CubeRegion bad;
  bad.dims = {{{0, 1}}, {{0, 1}}};
  EXPECT_THROW(aggregate_region(cube, bad, 0), InvalidArgument);
}

}  // namespace
}  // namespace holap
