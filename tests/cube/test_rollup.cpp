#include "cube/rollup.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cube/builder.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 31;
  return generate_fact_table(tiny_model_dimensions(), config);
}

struct Case {
  CubeBasis basis;
  int threads;
};

class RollupMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(RollupMatrix, RollupEqualsDirectBuildAtCoarseLevel) {
  // The "smallest parent" correctness property: rolling the level-3 cube
  // down to any coarser level must equal building that level from the
  // fact table directly.
  const auto [basis, threads] = GetParam();
  const FactTable table = make_table(1200);
  const auto& dims = table.schema().dimensions();
  const int measure =
      basis == CubeBasis::kCount ? -1 : table.schema().measure_columns()[0];
  const DenseCube fine = build_cube(table, 3, basis, measure, 0);
  for (int coarse = 0; coarse < 3; ++coarse) {
    const DenseCube rolled = rollup(fine, dims, coarse, threads);
    const DenseCube direct = build_cube(table, coarse, basis, measure, 0);
    ASSERT_EQ(rolled.cell_count(), direct.cell_count());
    for (std::size_t i = 0; i < rolled.cell_count(); ++i) {
      if (std::isinf(direct.cell(i))) {
        EXPECT_EQ(rolled.cell(i), direct.cell(i))
            << "level " << coarse << " cell " << i;
      } else {
        EXPECT_NEAR(rolled.cell(i), direct.cell(i), 1e-9)
            << "level " << coarse << " cell " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndThreads, RollupMatrix,
    ::testing::Values(Case{CubeBasis::kSum, 0}, Case{CubeBasis::kSum, 4},
                      Case{CubeBasis::kCount, 0}, Case{CubeBasis::kCount, 8},
                      Case{CubeBasis::kMin, 0}, Case{CubeBasis::kMin, 4},
                      Case{CubeBasis::kMax, 0}, Case{CubeBasis::kMax, 4}),
    [](const auto& suite_info) {
      return std::string(to_string(suite_info.param.basis)) + "_t" +
             std::to_string(suite_info.param.threads);
    });

TEST(Rollup, SameLevelIsCopy) {
  const FactTable table = make_table(300);
  const auto& dims = table.schema().dimensions();
  const DenseCube fine = build_cube(table, 2, CubeBasis::kSum, 12, 0);
  const DenseCube same = rollup(fine, dims, 2, 0);
  ASSERT_EQ(same.cell_count(), fine.cell_count());
  for (std::size_t i = 0; i < fine.cell_count(); ++i) {
    EXPECT_EQ(same.cell(i), fine.cell(i));
  }
}

TEST(Rollup, PreservesGrandTotalForSum) {
  const FactTable table = make_table(900);
  const auto& dims = table.schema().dimensions();
  const DenseCube fine = build_cube(table, 3, CubeBasis::kSum, 12, 0);
  const DenseCube coarse = rollup(fine, dims, 0, 4);
  auto total = [](const DenseCube& c) {
    double t = 0.0;
    for (const double v : c.cells()) t += v;
    return t;
  };
  EXPECT_NEAR(total(fine), total(coarse), 1e-6);
}

TEST(Rollup, RejectsFinerTarget) {
  const FactTable table = make_table(10);
  const auto& dims = table.schema().dimensions();
  const DenseCube coarse = build_cube(table, 1, CubeBasis::kSum, 12, 0);
  EXPECT_THROW(rollup(coarse, dims, 2, 0), InvalidArgument);
}

TEST(Rollup, ChainedRollupsEqualDirect) {
  // 3 -> 2 -> 0 must equal 3 -> 0 (associativity through the hierarchy).
  const FactTable table = make_table(700);
  const auto& dims = table.schema().dimensions();
  const DenseCube fine = build_cube(table, 3, CubeBasis::kMax, 13, 0);
  const DenseCube two_step = rollup(rollup(fine, dims, 2, 0), dims, 0, 0);
  const DenseCube one_step = rollup(fine, dims, 0, 0);
  for (std::size_t i = 0; i < one_step.cell_count(); ++i) {
    EXPECT_EQ(two_step.cell(i), one_step.cell(i));
  }
}

}  // namespace
}  // namespace holap
