#include "cube/cube_set.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

FactTable make_table(std::size_t rows = 1000) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = 17;
  return generate_fact_table(tiny_model_dimensions(), config);
}

CubeSet full_ladder(const FactTable& table, bool minmax = false) {
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 3, 4, minmax);
  for (int level : {2, 1, 0}) cubes.add_level_by_rollup(level, 4);
  return cubes;
}

Query range_query(int dim, int level, std::int32_t from, std::int32_t to,
                  AggOp op = AggOp::kSum, std::vector<int> measures = {12}) {
  Query q;
  q.conditions.push_back({dim, level, from, to, {}, {}});
  q.measures = std::move(measures);
  q.op = op;
  return q;
}

// Fact-table scan oracle for sum over one measure.
double oracle_sum(const FactTable& t, const Query& q) {
  double sum = 0.0;
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    bool match = true;
    for (const auto& c : q.conditions) {
      const auto v = t.dim_level_column(c.dim, c.level)[r];
      match = match && v >= c.from && v <= c.to;
    }
    if (!match) continue;
    for (int m : q.measures) sum += t.measure_column(m)[r];
  }
  return sum;
}

TEST(CubeSet, LevelsTrackAdditions) {
  const FactTable table = make_table();
  const CubeSet cubes = full_ladder(table);
  EXPECT_EQ(cubes.levels(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(cubes.has_level(2));
  EXPECT_FALSE(cubes.has_level(4));
}

TEST(CubeSet, LowestLevelSelection) {
  // §III-C: answer on the lowest-resolution cube that suffices.
  const FactTable table = make_table();
  const CubeSet cubes = full_ladder(table);
  EXPECT_EQ(cubes.lowest_level_for(range_query(0, 0, 0, 1)), 0);
  EXPECT_EQ(cubes.lowest_level_for(range_query(0, 2, 0, 3)), 2);
  EXPECT_EQ(cubes.lowest_level_for(range_query(0, 3, 0, 3)), 3);
}

TEST(CubeSet, PartialLadderFallsUpward) {
  const FactTable table = make_table();
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 2, 0);
  // Level-0 query must use the level-2 cube (no coarser one exists).
  EXPECT_EQ(cubes.lowest_level_for(range_query(0, 0, 0, 1)), 2);
  // Level-3 query cannot be answered at all.
  EXPECT_EQ(cubes.lowest_level_for(range_query(0, 3, 0, 1)), std::nullopt);
  EXPECT_FALSE(cubes.can_answer(range_query(0, 3, 0, 1)));
}

TEST(CubeSet, SumMatchesFactTableOracle) {
  const FactTable table = make_table(1500);
  const CubeSet cubes = full_ladder(table);
  WorkloadConfig wl;
  wl.text_probability = 0.0;
  wl.seed = 23;
  QueryGenerator gen(table.schema().dimensions(), table.schema(), wl);
  for (int i = 0; i < 40; ++i) {
    Query q = gen.next();
    q.op = AggOp::kSum;
    if (q.measures.empty()) q.measures = {12};
    const QueryAnswer a = cubes.answer(q, 4);
    EXPECT_NEAR(a.value, oracle_sum(table, q), 1e-6) << "query " << i;
  }
}

TEST(CubeSet, AnswerOnCoarseAndFineCubesAgree) {
  // The same coarse query answered on any sufficient level must agree —
  // the consistency property of the Figure-1 ladder.
  const FactTable table = make_table();
  const CubeSet full = full_ladder(table);
  CubeSet only_fine(table.schema().dimensions());
  only_fine.add_level_from_table(table, 3, 0);
  const Query q = range_query(1, 1, 1, 2);
  EXPECT_NEAR(full.answer(q, 0).value, only_fine.answer(q, 0).value, 1e-9);
  EXPECT_EQ(full.answer(q, 0).row_count, only_fine.answer(q, 0).row_count);
}

TEST(CubeSet, CountAvgMinMax) {
  const FactTable table = make_table(400);
  const CubeSet cubes = full_ladder(table, /*minmax=*/true);
  const Query count_q = range_query(0, 1, 0, 3, AggOp::kCount, {});
  const QueryAnswer count = cubes.answer(count_q, 0);
  EXPECT_DOUBLE_EQ(count.value, 400.0);  // full extent matches all rows

  Query avg_q = range_query(2, 1, 0, 1, AggOp::kAvg);
  const QueryAnswer avg = cubes.answer(avg_q, 0);
  Query sum_q = avg_q;
  sum_q.op = AggOp::kSum;
  const QueryAnswer sum = cubes.answer(sum_q, 0);
  EXPECT_NEAR(avg.value, sum.value / sum.row_count, 1e-9);

  // Min/max against a direct row scan.
  Query min_q = range_query(0, 2, 2, 5, AggOp::kMin);
  Query max_q = min_q;
  max_q.op = AggOp::kMax;
  double lo = 1e300, hi = -1e300;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    const auto v = table.dim_level_column(0, 2)[r];
    if (v < 2 || v > 5) continue;
    lo = std::min(lo, table.measure_column(12)[r]);
    hi = std::max(hi, table.measure_column(12)[r]);
  }
  EXPECT_DOUBLE_EQ(cubes.answer(min_q, 0).value, lo);
  EXPECT_DOUBLE_EQ(cubes.answer(max_q, 0).value, hi);
}

TEST(CubeSet, MinMaxUnavailableWithoutBasisCubes) {
  const FactTable table = make_table(100);
  const CubeSet cubes = full_ladder(table, /*minmax=*/false);
  const Query q = range_query(0, 1, 0, 1, AggOp::kMin);
  EXPECT_FALSE(cubes.can_answer(q));
  EXPECT_THROW(cubes.answer(q, 0), InvalidArgument);
}

TEST(CubeSet, EmptyRegionAnswer) {
  const FactTable table = make_table(100);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 1, 0);
  Query q = range_query(0, 1, 0, 0);
  // Force a contradiction: two disjoint ranges on the same dimension.
  q.conditions.push_back({0, 1, 3, 3, {}, {}});
  const QueryAnswer a = cubes.answer(q, 0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.value, 0.0);
}

TEST(CubeSet, AnswerBytesCountsBases) {
  const FactTable table = make_table(100);
  const CubeSet cubes = full_ladder(table);
  const Query sum_q = range_query(0, 0, 0, 0);
  // Sum query touches the count cube + one sum cube at level 0: the
  // sub-cube is 1x2x2 cells of 8 bytes in each.
  EXPECT_EQ(cubes.answer_bytes(sum_q), 2u * (1u * 2u * 2u * 8u));
  Query count_q = range_query(0, 0, 0, 0, AggOp::kCount, {});
  EXPECT_EQ(cubes.answer_bytes(count_q), 1u * 2u * 2u * 8u);
}

TEST(CubeSet, TotalBytesSumsAllCubes) {
  const FactTable table = make_table(100);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 1, 0);  // count + 4 sum cubes of 64 cells
  EXPECT_EQ(cubes.total_bytes(), 5u * 64u * 8u);
}

TEST(CubeSet, DuplicateCubeRejected) {
  const FactTable table = make_table(50);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 1, 0);
  EXPECT_THROW(cubes.add_cube(build_cube(table, 1, CubeBasis::kCount, -1, 0)),
               InvalidArgument);
}

TEST(CubeSet, RollupWithoutParentRejected) {
  const FactTable table = make_table(50);
  CubeSet cubes(table.schema().dimensions());
  EXPECT_THROW(cubes.add_level_by_rollup(0, 0), InvalidArgument);
}

TEST(CubeSet, TranslatedTextQueryAnswered) {
  GeneratorConfig config;
  config.rows = 500;
  config.seed = 41;
  config.text_levels = {{1, 3}};
  const FactTable table =
      generate_fact_table(tiny_model_dimensions(), config);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 3, 0);

  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"member 2", "member 9"};
  c.codes = {2, 9};  // as the Translator would fill
  q.conditions.push_back(c);
  q.measures = {12};
  const QueryAnswer a = cubes.answer(q, 0);

  double expected = 0.0;
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    const auto v = table.dim_level_column(1, 3)[r];
    if (v == 2 || v == 9) expected += table.measure_column(12)[r];
  }
  EXPECT_NEAR(a.value, expected, 1e-9);
}

TEST(CubeSet, CompressedLevelsAnswerIdentically) {
  // compress_level swaps storage, never answers: every operator and a
  // random workload must agree bit-for-bit with the dense ladder.
  const FactTable table = make_table(600);
  CubeSet dense = full_ladder(table, /*minmax=*/true);
  CubeSet compressed = full_ladder(table, /*minmax=*/true);
  for (int level : {2, 3}) compressed.compress_level(level, 4);
  EXPECT_TRUE(compressed.level_compressed(3));
  EXPECT_FALSE(compressed.level_compressed(0));
  EXPECT_LT(compressed.total_bytes(), dense.total_bytes());

  WorkloadConfig wl;
  wl.text_probability = 0.0;
  wl.seed = 77;
  QueryGenerator gen(table.schema().dimensions(), table.schema(), wl);
  for (int i = 0; i < 30; ++i) {
    Query q = gen.next();
    const QueryAnswer a = dense.answer(q, 0);
    const QueryAnswer b = compressed.answer(q, 2);
    // Chunk-order summation associates differently; equality is to FP
    // accumulation tolerance, not bitwise.
    EXPECT_NEAR(a.value, b.value, 1e-7 * (1.0 + std::abs(a.value)))
        << "query " << i;
    EXPECT_EQ(a.row_count, b.row_count);
  }
}

TEST(CubeSet, RollupFromCompressedParent) {
  const FactTable table = make_table(400);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 3, 0);
  cubes.compress_level(3, 4);
  cubes.add_level_by_rollup(1, 0);  // must decompress transparently
  Query q = range_query(0, 1, 0, 2);
  CubeSet reference(table.schema().dimensions());
  reference.add_level_from_table(table, 1, 0);
  EXPECT_NEAR(cubes.answer(q, 0).value, reference.answer(q, 0).value, 1e-6);
}

TEST(CubeSet, CompressMissingLevelThrows) {
  const FactTable table = make_table(50);
  CubeSet cubes(table.schema().dimensions());
  cubes.add_level_from_table(table, 1, 0);
  EXPECT_THROW(cubes.compress_level(3), InvalidArgument);
}

}  // namespace
}  // namespace holap
