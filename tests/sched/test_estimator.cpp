#include "sched/estimator.hpp"

#include <gtest/gtest.h>

#include "sched/catalog.hpp"

namespace holap {
namespace {

struct Fixture {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  VirtualTranslationModel translation{schema, 1.0};

  CostEstimator estimator(int threads = 8) const {
    return make_paper_estimator({1, 1, 2, 2, 4, 4}, threads, Megabytes{4096.0}, 16,
                                &catalog, &translation);
  }
};

Query level_query(int level, std::int32_t from, std::int32_t to) {
  Query q;
  q.conditions.push_back({0, level, from, to, {}, {}});
  q.measures = {12};
  return q;
}

TEST(Estimator, CpuEstimateUsesPaperModel) {
  Fixture f;
  const CostEstimator est = f.estimator(8);
  const Query q = level_query(2, 0, 199);  // half of level 2 in dim 0
  const CostEstimate e = est.estimate(q);
  ASSERT_TRUE(e.cpu.has_value());
  EXPECT_NEAR(e.cpu->value(),
              CpuPerfModel::paper_8t().seconds(e.subcube_mb).value(), 1e-15);
  EXPECT_GT(e.subcube_mb, Megabytes{});
}

TEST(Estimator, CpuAbsentWhenNoCubeCovers) {
  Fixture f;
  VirtualCubeCatalog small(f.dims, {0, 1});
  const CostEstimator est = make_paper_estimator(
      {1, 1, 2, 2, 4, 4}, 8, Megabytes{4096.0}, 16, &small, &f.translation);
  const CostEstimate e = est.estimate(level_query(3, 0, 10));
  EXPECT_FALSE(e.cpu.has_value());
}

TEST(Estimator, GpuEstimatesPerQueueFollowEquation14) {
  Fixture f;
  const CostEstimator est = f.estimator();
  const Query q = level_query(1, 0, 9);
  const CostEstimate e = est.estimate(q);
  ASSERT_EQ(e.gpu.size(), 6u);
  // Column fraction: 1 condition + 1 measure of 16 columns.
  EXPECT_NEAR(e.column_fraction, 2.0 / 16.0, 1e-12);
  EXPECT_NEAR(e.gpu[0].value(),
              GpuPerfModel::paper_c2070(1).seconds(e.column_fraction).value(),
              1e-15);
  EXPECT_NEAR(e.gpu[5].value(),
              GpuPerfModel::paper_c2070(4).seconds(e.column_fraction).value(),
              1e-15);
  // Queue pairs share a model class: the paper's j = ceil(i/2) mapping.
  EXPECT_DOUBLE_EQ(e.gpu[0].value(), e.gpu[1].value());
  EXPECT_DOUBLE_EQ(e.gpu[2].value(), e.gpu[3].value());
  EXPECT_DOUBLE_EQ(e.gpu[4].value(), e.gpu[5].value());
  EXPECT_GT(e.gpu[0], e.gpu[2]);
  EXPECT_GT(e.gpu[2], e.gpu[4]);
}

TEST(Estimator, TranslationTimeFollowsEquation18) {
  Fixture f;
  const CostEstimator est = f.estimator();
  Query q = level_query(1, 0, 3);
  Condition text;
  text.dim = 1;
  text.level = 3;
  text.text_values = {"a", "b", "c"};
  q.conditions.push_back(text);
  const CostEstimate e = est.estimate(q);
  EXPECT_TRUE(e.needs_translation);
  EXPECT_NEAR(e.translation.value(), 3 * 0.0138e-6 * 1600.0, 1e-12);
}

TEST(Estimator, NoTextMeansNoTranslation) {
  Fixture f;
  const CostEstimate e = f.estimator().estimate(level_query(0, 0, 1));
  EXPECT_FALSE(e.needs_translation);
  EXPECT_EQ(e.translation, Seconds{});
}

TEST(Estimator, ColumnFractionCapsAtOne) {
  Fixture f;
  const CostEstimator est = make_paper_estimator(
      {1}, 8, Megabytes{4096.0}, 2 /* tiny C_TOTAL */, &f.catalog, &f.translation);
  Query q = level_query(1, 0, 3);
  q.conditions.push_back({1, 1, 0, 3, {}, {}});
  q.measures = {12, 13};
  const CostEstimate e = est.estimate(q);
  EXPECT_DOUBLE_EQ(e.column_fraction, 1.0);
}

TEST(Estimator, MoreColumnsCostMoreOnGpu) {
  Fixture f;
  const CostEstimator est = f.estimator();
  Query narrow = level_query(1, 0, 3);
  Query wide = narrow;
  wide.conditions.push_back({1, 1, 0, 3, {}, {}});
  wide.conditions.push_back({2, 1, 0, 3, {}, {}});
  wide.measures = {12, 13, 14};
  EXPECT_GT(est.estimate(wide).gpu[0], est.estimate(narrow).gpu[0]);
}


TEST(Estimator, TranslationCostingModes) {
  Fixture f;
  CostEstimator est = f.estimator();
  Query q = level_query(1, 0, 3);
  Condition a;
  a.dim = 1;
  a.level = 3;
  a.text_values = {"x", "y"};          // two params, one column
  Condition b;
  b.dim = 2;
  b.level = 3;
  b.text_values = {"z"};               // one param, second column
  q.conditions.push_back(a);
  q.conditions.push_back(b);

  // Paper semantics: one full scan per parameter (3 scans of 1600).
  const double per_param = est.estimate(q).translation.value();
  EXPECT_NEAR(per_param, 3 * 0.0138e-6 * 1600.0, 1e-12);

  // Batch: one pass per DISTINCT column (2 scans of 1600).
  est.set_translation_costing(TranslationCosting::kBatchPerColumn);
  EXPECT_NEAR(est.estimate(q).translation.value(),
              2 * 0.0138e-6 * 1600.0, 1e-12);

  // Hashed: a constant per parameter, independent of dictionary size.
  est.set_translation_costing(TranslationCosting::kHashed, Seconds{1e-7});
  EXPECT_NEAR(est.estimate(q).translation.value(), 3e-7, 1e-15);

  EXPECT_THROW(est.set_translation_costing(TranslationCosting::kHashed, Seconds{0.0}),
               InvalidArgument);
}

TEST(Estimator, ValidatesConstruction) {
  Fixture f;
  EXPECT_THROW(make_paper_estimator({1}, 8, Megabytes{4096.0}, 16, nullptr,
                                    &f.translation),
               InvalidArgument);
  EXPECT_THROW(make_paper_estimator({1}, 8, Megabytes{4096.0}, 16, &f.catalog, nullptr),
               InvalidArgument);
  EXPECT_THROW(make_paper_estimator({1}, 8, Megabytes{4096.0}, 0, &f.catalog,
                                    &f.translation),
               InvalidArgument);
}

}  // namespace
}  // namespace holap
