// Admission control, the deadline boundary, and the shed/translation
// feedback paths of the queueing scheduler — the overload-robustness
// surface added on top of Figure 10.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "sched/catalog.hpp"

namespace holap {
namespace {

struct Fixture {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  /// Ladder without the 32 GB cube: level-3 queries become GPU-only.
  VirtualCubeCatalog catalog_no32{paper_model_dimensions(), {0, 1, 2}};
  VirtualTranslationModel translation{schema, 1000.0};

  SchedulerConfig config;

  Fixture() { config.deadline = Seconds{0.25}; }

  FigureTenScheduler scheduler() const {
    return FigureTenScheduler(
        config, make_paper_estimator(config.gpu_partitions, 8,
                                     Megabytes{4096.0}, 16, &catalog,
                                     &translation));
  }

  FigureTenScheduler scheduler_no32() const {
    return FigureTenScheduler(
        config, make_paper_estimator(config.gpu_partitions, 8,
                                     Megabytes{4096.0}, 16, &catalog_no32,
                                     &translation));
  }
};

Query cheap_cpu_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.conditions.push_back({1, 0, 0, 0, {}, {}});
  q.conditions.push_back({2, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

Query expensive_cpu_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

Query text_query() {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"Marlowick"};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

// --- deadline boundary ----------------------------------------------------

TEST(DeadlineBoundary, ResponseExactlyOnDeadlineIsMet) {
  // The paper's feasible set is T_R <= T_D. Measure the exact response a
  // query gets from empty queues, then make the deadline exactly that:
  // identical double arithmetic on both sides, so equality is exact.
  Fixture probe;
  const Placement measured =
      probe.scheduler().schedule(cheap_cpu_query(), Seconds{});
  ASSERT_FALSE(measured.rejected);

  Fixture f;
  f.config.deadline = measured.response_est;
  const Placement p = f.scheduler().schedule(cheap_cpu_query(), Seconds{});
  EXPECT_EQ(p.response_est, measured.response_est);
  EXPECT_TRUE(p.before_deadline)
      << "T_R == T_D must count as met (boundary is inclusive)";
}

TEST(DeadlineBoundary, BoundaryQueryAdmittedUnderZeroSlack) {
  // The same boundary case must also pass a zero-slack admission gate:
  // admit while T_R <= T_D.
  Fixture probe;
  const Placement measured =
      probe.scheduler().schedule(cheap_cpu_query(), Seconds{});

  Fixture f;
  f.config.deadline = measured.response_est;
  f.config.admission.mode = AdmissionControl::Mode::kReject;
  f.config.admission.slack_factor = 0.0;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(cheap_cpu_query(), Seconds{});
  EXPECT_FALSE(p.shed_at_admission);
  EXPECT_TRUE(p.before_deadline);
  EXPECT_EQ(sched.counters().shed_at_admission, 0u);
}

// --- admission control ----------------------------------------------------

TEST(Admission, InfeasibleQueryShedWithoutTouchingClocks) {
  Fixture f;
  f.config.deadline = Seconds{1e-6};  // nothing can meet this
  f.config.admission.mode = AdmissionControl::Mode::kReject;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
  EXPECT_TRUE(p.shed_at_admission);
  EXPECT_FALSE(p.rejected);
  EXPECT_FALSE(p.before_deadline);
  // The shed carries the best candidate's estimates for the report...
  EXPECT_GT(p.processing_est, Seconds{});
  EXPECT_GT(p.response_est, Seconds{});
  // ...but commits nothing: no clock advanced, no phantom load.
  EXPECT_EQ(sched.cpu_clock(), Seconds{});
  EXPECT_EQ(sched.translation_clock(), Seconds{});
  for (int i = 0; i < sched.gpu_queue_count(); ++i) {
    EXPECT_EQ(sched.gpu_clock(i), Seconds{});
  }
  EXPECT_EQ(sched.counters().shed_at_admission, 1u);
  EXPECT_EQ(sched.counters().scheduled, 0u);
}

TEST(Admission, SlackFactorToleratesBoundedLateness) {
  // A deadline the query misses: zero slack sheds it, a slack factor big
  // enough that T_D + slack*T_C covers T_R admits it (step 6 placement).
  Fixture strict;
  strict.config.deadline = Seconds{1e-6};
  strict.config.admission.mode = AdmissionControl::Mode::kReject;
  strict.config.admission.slack_factor = 0.0;
  const Placement shed =
      strict.scheduler().schedule(expensive_cpu_query(), Seconds{});
  EXPECT_TRUE(shed.shed_at_admission);

  Fixture lax;
  lax.config.deadline = Seconds{1e-6};
  lax.config.admission.mode = AdmissionControl::Mode::kReject;
  lax.config.admission.slack_factor =
      2.0 * shed.response_est.value() / 1e-6;
  const Placement admitted =
      lax.scheduler().schedule(expensive_cpu_query(), Seconds{});
  EXPECT_FALSE(admitted.shed_at_admission);
  EXPECT_FALSE(admitted.before_deadline);  // still late, just tolerated
}

TEST(Admission, DisabledModeNeverSheds) {
  // kNone keeps the paper's behaviour: step 6 places even hopeless work.
  Fixture f;
  f.config.deadline = Seconds{1e-6};
  auto sched = f.scheduler();
  for (int i = 0; i < 20; ++i) {
    const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
    EXPECT_FALSE(p.shed_at_admission);
    EXPECT_FALSE(p.rejected);
  }
  EXPECT_EQ(sched.counters().shed_at_admission, 0u);
  EXPECT_EQ(sched.counters().scheduled, 20u);
}

TEST(Admission, RecoversOnceBacklogDrains) {
  // Overload sheds; feedback-driven drain (queries finishing early) makes
  // later arrivals admissible again.
  Fixture f;
  f.config.admission.mode = AdmissionControl::Mode::kReject;
  auto sched = f.scheduler();
  // Pile on work until the scheduler starts shedding.
  int placed = 0;
  while (sched.counters().shed_at_admission == 0 && placed < 10000) {
    sched.schedule(expensive_cpu_query(), Seconds{});
    ++placed;
  }
  ASSERT_GT(sched.counters().shed_at_admission, 0u);
  // Arrive much later, after every queue has long drained.
  const Placement p =
      sched.schedule(expensive_cpu_query(), Seconds{1e6});
  EXPECT_FALSE(p.shed_at_admission);
  EXPECT_TRUE(p.before_deadline);
}

TEST(Admission, NegativeSlackFactorThrows) {
  Fixture f;
  f.config.admission.slack_factor = -0.1;
  EXPECT_THROW(f.scheduler(), InvalidArgument);
}

TEST(Admission, DecisionsDeterministicAcrossInstances) {
  // Two schedulers built from the same config replay the same admission
  // decisions for the same arrival sequence — the property the seeded
  // overload scenarios rely on.
  Fixture f;
  f.config.deadline = Seconds{0.02};
  f.config.admission.mode = AdmissionControl::Mode::kReject;
  f.config.admission.slack_factor = 0.25;
  auto a = f.scheduler_no32();
  auto b = f.scheduler_no32();
  const std::vector<Query> sequence = {
      expensive_cpu_query(), text_query(),     cheap_cpu_query(),
      expensive_cpu_query(), expensive_cpu_query(), text_query(),
      cheap_cpu_query(),     expensive_cpu_query()};
  for (int round = 0; round < 40; ++round) {
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const Seconds now{0.001 * static_cast<double>(i + 8u * round)};
      const Placement pa = a.schedule(sequence[i], now);
      const Placement pb = b.schedule(sequence[i], now);
      ASSERT_EQ(pa.shed_at_admission, pb.shed_at_admission)
          << "round " << round << " query " << i;
      ASSERT_EQ(pa.queue.kind, pb.queue.kind);
      ASSERT_EQ(pa.queue.index, pb.queue.index);
      ASSERT_EQ(pa.response_est, pb.response_est);
    }
  }
  EXPECT_EQ(a.counters().shed_at_admission,
            b.counters().shed_at_admission);
  EXPECT_GT(a.counters().shed_at_admission, 0u);  // the gate actually bit
  EXPECT_GT(a.counters().scheduled, 0u);          // and let work through
}

// --- shed feedback (clock rollback) --------------------------------------

TEST(ShedFeedback, RollsProcessingOutOfTheQueueClock) {
  Fixture f;
  auto sched = f.scheduler();
  const Placement p1 = sched.schedule(cheap_cpu_query(), Seconds{});
  const Placement p2 = sched.schedule(cheap_cpu_query(), Seconds{});
  const Seconds before = sched.cpu_clock();
  sched.on_shed(p2.queue, p2.processing_est, Seconds{});
  EXPECT_NEAR(sched.cpu_clock().value(),
              (before - p2.processing_est).value(), 1e-15);
  EXPECT_NEAR(sched.cpu_clock().value(), p1.response_est.value(), 1e-15);
  EXPECT_EQ(sched.counters().shed_in_queue, 1u);
}

TEST(ShedFeedback, RollsPendingTranslationOutOfTheTranslationClock) {
  Fixture f;
  auto sched = f.scheduler_no32();
  const Placement p = sched.schedule(text_query(), Seconds{});
  ASSERT_TRUE(p.translate);
  const Seconds gpu_before = sched.gpu_clock(p.queue.index);
  const Seconds trans_before = sched.translation_clock();
  sched.on_shed(p.queue, p.processing_est, p.translation_est);
  EXPECT_NEAR(sched.gpu_clock(p.queue.index).value(),
              (gpu_before - p.processing_est).value(), 1e-15);
  EXPECT_NEAR(sched.translation_clock().value(),
              (trans_before - p.translation_est).value(), 1e-15);
}

TEST(ShedFeedback, RollbackIsIndependentOfTheFeedbackFlag) {
  // schedule() advances clocks unconditionally, so the rollback must be
  // unconditional too — even with §III-G feedback disabled.
  Fixture f;
  f.config.feedback = false;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(cheap_cpu_query(), Seconds{});
  sched.on_shed(p.queue, p.processing_est, Seconds{});
  EXPECT_NEAR(sched.cpu_clock().value(), 0.0, 1e-15);
}

TEST(ShedFeedback, RollsDispatchShareOutOfTheDeviceClock) {
  // With the modeled launch stage on, schedule() commits the device's
  // dispatch clock as well; a shed must return that share too, or every
  // shed GPU query permanently inflates the device's launch backlog. The
  // dispatch clocks are internal, so prove the rollback by equivalence:
  // after schedule -> shed, the next placement must match what a fresh
  // scheduler produces — bit for bit, same arithmetic on both sides.
  Fixture f;
  f.config.modeled_gpu_dispatch = Seconds{0.004};
  auto sched = f.scheduler();
  const Placement shed = sched.schedule(expensive_cpu_query(), Seconds{});
  ASSERT_EQ(shed.queue.kind, QueueRef::kGpu);
  sched.on_shed(shed.queue, shed.processing_est, Seconds{});
  const Placement after = sched.schedule(expensive_cpu_query(), Seconds{});

  auto fresh = f.scheduler();
  const Placement expected =
      fresh.schedule(expensive_cpu_query(), Seconds{});
  EXPECT_EQ(after.queue, expected.queue);
  EXPECT_EQ(after.response_est, expected.response_est);
  EXPECT_EQ(after.processing_est, expected.processing_est);
}

// --- translation feedback -------------------------------------------------

TEST(TranslationFeedback, MeasuredOverrunShiftsTranslationClock) {
  Fixture f;
  auto sched = f.scheduler_no32();
  const Placement p = sched.schedule(text_query(), Seconds{});
  ASSERT_TRUE(p.translate);
  const Seconds before = sched.translation_clock();
  sched.on_translation_completed(p.translation_est,
                                 p.translation_est + Seconds{0.010});
  EXPECT_NEAR(sched.translation_clock().value(), before.value() + 0.010,
              1e-12);
  // Under-run pulls it back.
  sched.on_translation_completed(Seconds{0.005}, Seconds{0.001});
  EXPECT_NEAR(sched.translation_clock().value(),
              before.value() + 0.010 - 0.004, 1e-12);
  EXPECT_EQ(sched.counters().translation_feedback_events, 2u);
}

TEST(TranslationFeedback, DisabledFeedbackCountsButDoesNotShift) {
  Fixture f;
  f.config.feedback = false;
  auto sched = f.scheduler_no32();
  sched.schedule(text_query(), Seconds{});
  const Seconds before = sched.translation_clock();
  sched.on_translation_completed(Seconds{0.001}, Seconds{0.5});
  EXPECT_EQ(sched.translation_clock(), before);
  EXPECT_EQ(sched.counters().translation_feedback_events, 1u);
}

}  // namespace
}  // namespace holap
