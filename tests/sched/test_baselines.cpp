#include "sched/baselines.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sched/catalog.hpp"

namespace holap {
namespace {

struct Fixture {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema = make_star_schema(paper_model_dimensions(),
                                        {"m0", "m1", "m2", "m3"},
                                        {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  VirtualTranslationModel translation{schema, 1.0};
  SchedulerConfig config;

  CostEstimator estimator() const {
    return make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                &catalog, &translation);
  }
  std::unique_ptr<SchedulerPolicy> policy(const std::string& name) const {
    return make_policy(name, config, estimator());
  }
};

Query cheap_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.conditions.push_back({1, 0, 0, 0, {}, {}});
  q.conditions.push_back({2, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

Query gpu_heavy_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

TEST(Met, AlwaysPicksMinimalExecutionTimeIgnoringLoad) {
  Fixture f;
  auto met = f.policy("MET");
  // Cheap query: CPU is fastest. MET keeps hammering the same partition
  // regardless of its backlog — the policy's defining flaw.
  std::set<int> kinds;
  for (int i = 0; i < 50; ++i) {
    const Placement p = met->schedule(cheap_query(), Seconds{});
    kinds.insert(p.queue.kind == QueueRef::kCpu ? -1 : p.queue.index);
  }
  EXPECT_EQ(kinds.size(), 1u);
  EXPECT_TRUE(kinds.contains(-1));
}

TEST(Met, GpuHeavyQueryGoesToFastestPartition) {
  Fixture f;
  auto met = f.policy("MET");
  const Placement p = met->schedule(gpu_heavy_query(), Seconds{});
  ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_GE(p.queue.index, 4);  // a 4-SM queue
}

TEST(Mct, SpreadsLoadAcrossEquivalentQueues) {
  Fixture f;
  auto mct = f.policy("MCT");
  std::set<int> used;
  for (int i = 0; i < 12; ++i) {
    const Placement p = mct->schedule(gpu_heavy_query(), Seconds{});
    ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
    used.insert(p.queue.index);
  }
  // Completion-time awareness must engage more than one queue.
  EXPECT_GT(used.size(), 1u);
}

TEST(Mct, PicksEarliestCompletion) {
  Fixture f;
  auto mct = f.policy("MCT");
  const Placement first = mct->schedule(gpu_heavy_query(), Seconds{});
  const Placement second = mct->schedule(gpu_heavy_query(), Seconds{});
  // Two equal queries: the second must not queue behind the first when an
  // equally fast empty queue exists.
  EXPECT_NE(first.queue.index, second.queue.index);
}

TEST(RoundRobin, CyclesThroughCandidates) {
  Fixture f;
  auto rr = f.policy("round-robin");
  std::vector<int> order;
  for (int i = 0; i < 14; ++i) {
    const Placement p = rr->schedule(cheap_query(), Seconds{});
    order.push_back(p.queue.kind == QueueRef::kCpu ? -1 : p.queue.index);
  }
  // 7 candidates (CPU + 6 GPU queues): a full cycle repeats.
  std::set<int> first_cycle(order.begin(), order.begin() + 7);
  EXPECT_EQ(first_cycle.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(order[i], order[i + 7]);
}

TEST(RoundRobin, SkipsCpuWhenItCannotAnswer) {
  Fixture f;
  VirtualCubeCatalog small(f.dims, {0});
  auto rr = make_policy("round-robin", f.config,
                        make_paper_estimator(f.config.gpu_partitions, 8,
                                             Megabytes{4096.0}, 16, &small,
                                             &f.translation));
  for (int i = 0; i < 12; ++i) {
    const Placement p = rr->schedule(gpu_heavy_query(), Seconds{});
    EXPECT_EQ(p.queue.kind, QueueRef::kGpu);
  }
}

TEST(PolicyFactory, KnownNamesAndUnknownRejected) {
  Fixture f;
  for (const char* name : {"figure10", "MET", "MCT", "round-robin"}) {
    const auto p = f.policy(name);
    EXPECT_STREQ(p->name(), name);
    EXPECT_EQ(p->gpu_queue_count(), 6);
    EXPECT_DOUBLE_EQ(p->deadline().value(), f.config.deadline.value());
  }
  EXPECT_THROW(f.policy("nonsense"), InvalidArgument);
}

TEST(Policies, AllPlaceEveryQuerySomewhere) {
  Fixture f;
  for (const char* name : {"figure10", "MET", "MCT", "round-robin"}) {
    auto policy = f.policy(name);
    for (int i = 0; i < 30; ++i) {
      const Placement p = policy->schedule(
          i % 2 ? cheap_query() : gpu_heavy_query(), Seconds{0.01 * i});
      EXPECT_FALSE(p.rejected) << name;
    }
  }
}

}  // namespace
}  // namespace holap
