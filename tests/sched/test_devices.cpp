// The elastic multi-GPU device catalog (sched/devices.hpp): topology
// validation, transfer pricing, merge/split planning and application, the
// deterministic ElasticPartitioner trigger, and the catalog's integration
// with the Figure-10 scheduler (candidate gating, the transfer term in
// T_R, repartition application and ledger-safe draining).
#include "sched/devices.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/catalog.hpp"
#include "sched/scheduler.hpp"

namespace holap {
namespace {

DeviceTopology two_device_topology(Seconds transfer_unit = Seconds{0.01}) {
  DeviceTopology t;
  t.enabled = true;
  t.home_device = 0;
  t.transfer_unit = transfer_unit;
  return t;
}

/// Two devices, each carrying the narrow half of a partition ladder.
DeviceCatalog two_device_catalog(Seconds transfer_unit = Seconds{0.01}) {
  return DeviceCatalog(two_device_topology(transfer_unit), {1, 1, 2, 1, 1, 2},
                       {0, 0, 0, 1, 1, 1});
}

TEST(DeviceCatalog, ConstructionValidatesItsInputs) {
  EXPECT_THROW(DeviceCatalog(two_device_topology(), {}, {}), InvalidArgument);
  EXPECT_THROW(DeviceCatalog(two_device_topology(), {1, 1}, {0}),
               InvalidArgument);
  EXPECT_THROW(DeviceCatalog(two_device_topology(), {1, 0}, {0, 0}),
               InvalidArgument);
  EXPECT_THROW(DeviceCatalog(two_device_topology(), {1, 1}, {0, -1}),
               InvalidArgument);
  DeviceTopology bad_home = two_device_topology();
  bad_home.home_device = 7;
  EXPECT_THROW(DeviceCatalog(bad_home, {1, 1}, {0, 1}), InvalidArgument);
  DeviceTopology bad_unit = two_device_topology(Seconds{-0.01});
  EXPECT_THROW(DeviceCatalog(bad_unit, {1, 1}, {0, 1}), InvalidArgument);
  DeviceTopology bad_rows = two_device_topology();
  bad_rows.distance = {{0.0, 1.0}};  // one row for two devices
  EXPECT_THROW(DeviceCatalog(bad_rows, {1, 1}, {0, 1}), InvalidArgument);
  DeviceTopology not_square = two_device_topology();
  not_square.distance = {{0.0}, {1.0, 0.0}};
  EXPECT_THROW(DeviceCatalog(not_square, {1, 1}, {0, 1}), InvalidArgument);
  DeviceTopology negative_hop = two_device_topology();
  negative_hop.distance = {{0.0, -1.0}, {1.0, 0.0}};
  EXPECT_THROW(DeviceCatalog(negative_hop, {1, 1}, {0, 1}), InvalidArgument);
}

TEST(DeviceCatalog, MapsQueuesToDevicesAndDefaultsSingleHopDistances) {
  const DeviceCatalog c = two_device_catalog();
  EXPECT_EQ(c.device_count(), 2);
  EXPECT_EQ(c.queue_count(), 6);
  EXPECT_EQ(c.device_of(0), 0);
  EXPECT_EQ(c.device_of(5), 1);
  EXPECT_THROW(c.device_of(6), InvalidArgument);
  EXPECT_EQ(c.queues_on(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.queues_on(1), (std::vector<int>{3, 4, 5}));
  // No matrix given: 0 on the diagonal, 1 between distinct devices.
  EXPECT_DOUBLE_EQ(c.distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.distance(0, 1), 1.0);
  EXPECT_THROW(c.distance(0, 2), InvalidArgument);
  // Home-device queues transfer for free; the far device pays one hop.
  EXPECT_DOUBLE_EQ(c.transfer_seconds(1).value(), 0.0);
  EXPECT_DOUBLE_EQ(c.transfer_seconds(4).value(), 0.01);
  EXPECT_EQ(c.configured_width(2), 2);
}

TEST(DeviceCatalog, ExplicitDistanceMatrixScalesTransfer) {
  DeviceTopology t = two_device_topology(Seconds{0.004});
  t.distance = {{0.0, 2.5}, {2.5, 0.0}};
  const DeviceCatalog c(t, {1, 1}, {0, 1});
  EXPECT_DOUBLE_EQ(c.distance(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(c.transfer_seconds(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(c.transfer_seconds(1).value(), 0.01);
}

TEST(DeviceCatalog, MergeFoldsNarrowestSiblingsAndSplitWalksBack) {
  DeviceCatalog c = two_device_catalog();
  // Device 0 carries {1,1,2}: the two 1-SM queues merge first.
  const auto plan = c.plan_merge(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->kind, RepartitionDecision::Kind::kMerge);
  EXPECT_EQ(plan->keeper, 0);
  EXPECT_EQ(plan->donor, 1);
  EXPECT_EQ(plan->keeper_width, 2);

  const RepartitionDecision applied = c.apply(*plan);
  EXPECT_EQ(applied.keeper_width, 2);
  EXPECT_EQ(c.width(0), 2);
  EXPECT_EQ(c.width(1), 0);
  EXPECT_FALSE(c.active(1));
  EXPECT_EQ(c.active_queues_on(0), 2);
  EXPECT_EQ(c.merges(), 1u);

  // The second merge folds the two remaining 2-SM queues.
  const auto second = c.plan_merge(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->keeper, 0);
  EXPECT_EQ(second->donor, 2);
  c.apply(*second);
  EXPECT_EQ(c.width(0), 4);
  EXPECT_EQ(c.active_queues_on(0), 1);
  // Fully merged: nothing left to fold.
  EXPECT_FALSE(c.plan_merge(0).has_value());

  // Splits undo the merges newest-first, back to the configured ladder.
  const auto undo = c.plan_split(0);
  ASSERT_TRUE(undo.has_value());
  EXPECT_EQ(undo->kind, RepartitionDecision::Kind::kSplit);
  EXPECT_EQ(undo->donor, 2);
  EXPECT_EQ(undo->donor_width, 2);
  c.apply(*undo);
  EXPECT_EQ(c.width(0), 2);
  EXPECT_EQ(c.width(2), 2);
  const auto undo2 = c.plan_split(0);
  ASSERT_TRUE(undo2.has_value());
  EXPECT_EQ(undo2->donor, 1);
  c.apply(*undo2);
  EXPECT_EQ(c.width(0), 1);
  EXPECT_EQ(c.width(1), 1);
  EXPECT_EQ(c.splits(), 2u);
  // Back at the configured ladder: nothing to split.
  EXPECT_FALSE(c.plan_split(0).has_value());
  // The other device never repartitioned.
  EXPECT_EQ(c.active_queues_on(1), 3);
}

TEST(DeviceCatalog, ApplyRejectsNonConservingOrInvalidOperations) {
  DeviceCatalog c = two_device_catalog();
  RepartitionDecision d;
  d.kind = RepartitionDecision::Kind::kMerge;
  d.device = 0;
  d.keeper = 0;
  d.donor = 0;  // keeper == donor
  EXPECT_THROW(c.apply(d), InvalidArgument);
  d.donor = 3;  // lives on device 1
  EXPECT_THROW(c.apply(d), InvalidArgument);
  d.donor = 1;
  d.keeper_width = 7;  // 1 + 1 != 7
  EXPECT_THROW(c.apply(d), InvalidArgument);
  d.keeper_width = 0;  // derive
  c.apply(d);
  // Merging an inactive donor again must fail.
  EXPECT_THROW(c.apply(d), InvalidArgument);
  // A split whose donor is still active must fail.
  RepartitionDecision s;
  s.kind = RepartitionDecision::Kind::kSplit;
  s.device = 0;
  s.keeper = 0;
  s.donor = 2;
  EXPECT_THROW(c.apply(s), InvalidArgument);
  // A split returning more SMs than the keeper holds must fail.
  s.donor = 1;
  s.donor_width = 5;
  EXPECT_THROW(c.apply(s), InvalidArgument);
}

TEST(ElasticPartitioner, ValidatesPolicyAndCatalog) {
  const DeviceCatalog c = two_device_catalog();
  EXPECT_THROW(ElasticPartitioner(ElasticPolicy{}, nullptr), InvalidArgument);
  ElasticPolicy bad_interval;
  bad_interval.check_interval = Seconds{};
  EXPECT_THROW(ElasticPartitioner(bad_interval, &c), InvalidArgument);
  ElasticPolicy bad_sustain;
  bad_sustain.sustain_checks = 0;
  EXPECT_THROW(ElasticPartitioner(bad_sustain, &c), InvalidArgument);
  ElasticPolicy bad_cooldown;
  bad_cooldown.cooldown_checks = -1;
  EXPECT_THROW(ElasticPartitioner(bad_cooldown, &c), InvalidArgument);
  ElasticPolicy inverted;
  inverted.merge_backlog = Seconds{0.01};
  inverted.split_backlog = Seconds{0.02};
  EXPECT_THROW(ElasticPartitioner(inverted, &c), InvalidArgument);
}

ElasticPolicy quick_policy() {
  ElasticPolicy p;
  p.enabled = true;
  p.sustain_checks = 2;
  p.cooldown_checks = 1;
  p.merge_backlog = Seconds{0.5};
  p.split_backlog = Seconds{0.05};
  return p;
}

TEST(ElasticPartitioner, MergeNeedsASustainedStreakAndRespectsCooldown) {
  DeviceCatalog c = two_device_catalog();
  ElasticPartitioner p(quick_policy(), &c);
  const std::vector<Seconds> heavy(6, Seconds{1.0});
  const std::vector<bool> healthy(6, true);

  EXPECT_THROW(p.evaluate({Seconds{1.0}}, {true}), InvalidArgument);

  // One heavy sample is not a sustained signal.
  EXPECT_FALSE(p.evaluate(heavy, healthy).has_value());
  // The second consecutive sample fires a merge, device 0 first.
  const auto d = p.evaluate(heavy, healthy);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, RepartitionDecision::Kind::kMerge);
  EXPECT_EQ(d->device, 0);
  c.apply(*d);
  p.on_applied(*d);
  // Device 0 cools down, so the next sustained sample fires on device 1
  // (its streak was already at the threshold).
  const auto d2 = p.evaluate(heavy, healthy);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->device, 1);
  c.apply(*d2);
  p.on_applied(*d2);
  // A mid-band sample resets both streaks.
  const std::vector<Seconds> mid(6, Seconds{0.2});
  EXPECT_FALSE(p.evaluate(mid, healthy).has_value());
  EXPECT_FALSE(p.evaluate(heavy, healthy).has_value());
}

TEST(ElasticPartitioner, UnhealthySiblingsBlockMergesUntilRearmed) {
  DeviceCatalog c = two_device_catalog();
  ElasticPartitioner p(quick_policy(), &c);
  const std::vector<Seconds> heavy(6, Seconds{1.0});
  std::vector<bool> healthy(6, true);
  healthy[1] = false;  // the would-be donor on device 0 is degraded

  EXPECT_FALSE(p.evaluate(heavy, healthy).has_value());
  // Device 1 is all-healthy, so the sustained streak fires there; device
  // 0's gated merge re-arms instead of firing into a sick partition.
  const auto d = p.evaluate(heavy, healthy);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->device, 1);
  c.apply(*d);
  p.on_applied(*d);
  // Once the sibling heals, device 0 merges after a fresh full streak.
  healthy[1] = true;
  EXPECT_FALSE(p.evaluate(heavy, healthy).has_value());
  const auto d0 = p.evaluate(heavy, healthy);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->device, 0);
}

TEST(ElasticPartitioner, SustainedIdlenessSplitsMergedPartitions) {
  DeviceCatalog c = two_device_catalog();
  ElasticPolicy policy = quick_policy();
  policy.cooldown_checks = 0;
  ElasticPartitioner p(policy, &c);
  const auto merge = c.plan_merge(0);
  ASSERT_TRUE(merge.has_value());
  c.apply(*merge);

  const std::vector<Seconds> idle(6, Seconds{});
  const std::vector<bool> healthy(6, true);
  EXPECT_FALSE(p.evaluate(idle, healthy).has_value());
  const auto split = p.evaluate(idle, healthy);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->kind, RepartitionDecision::Kind::kSplit);
  EXPECT_EQ(split->device, 0);
  c.apply(*split);
  p.on_applied(*split);
  EXPECT_THROW(p.on_applied(RepartitionDecision{.device = 9}),
               InvalidArgument);
  // At the configured ladder idleness has nothing left to split.
  EXPECT_FALSE(p.evaluate(idle, healthy).has_value());
  EXPECT_FALSE(p.evaluate(idle, healthy).has_value());
}

// ---- Scheduler integration -------------------------------------------

struct SchedFixture {
  VirtualCubeCatalog cubes{paper_model_dimensions(), {0, 1, 2, 3}};
  VirtualTranslationModel translation{
      make_star_schema(paper_model_dimensions(), {"m0", "m1", "m2", "m3"},
                       {{1, 3}, {2, 3}}),
      1000.0};

  SchedulerConfig config;

  SchedFixture() {
    config.deadline = Seconds{0.25};
    config.gpu_partitions = {1, 1, 2, 1, 1, 2};
    config.gpu_queue_device = {0, 0, 0, 1, 1, 1};
  }

  CostEstimator estimator() const {
    return make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0},
                                16, &cubes, &translation);
  }

  FigureTenScheduler scheduler() const {
    return FigureTenScheduler(config, estimator());
  }
};

// Needs level 3 on dimension 0; small extent, so cheap everywhere.
Query gpu_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 99, {}, {}});
  q.measures = {12};
  return q;
}

// Full-extent level 3: the expensive shape that loads GPU queue clocks.
Query heavy_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

TEST(SchedulerDevices, ElasticWithoutTopologyIsRejected) {
  SchedFixture f;
  f.config.elastic.enabled = true;
  EXPECT_THROW(f.scheduler(), InvalidArgument);
}

TEST(SchedulerDevices, TopologyRequiresGpuPartitions) {
  SchedFixture f;
  f.config.enable_gpu = false;
  f.config.topology = two_device_topology();
  EXPECT_THROW(f.scheduler(), InvalidArgument);
}

TEST(SchedulerDevices, TransferTermPricesOffHomePlacementExactly) {
  SchedFixture f;
  f.config.enable_cpu = false;
  auto plain = f.scheduler();
  f.config.topology = two_device_topology(Seconds{0.05});
  auto priced = f.scheduler();
  ASSERT_NE(priced.device_catalog(), nullptr);
  EXPECT_EQ(priced.device_catalog()->device_count(), 2);
  EXPECT_EQ(plain.device_catalog(), nullptr);

  // The estimator contract: the transfer term adds exactly
  // transfer_unit * distance * column_fraction to an off-home queue's
  // processing estimate and nothing to a home queue's.
  CostEstimator est = f.estimator();
  const CostEstimate before = est.estimate(gpu_query());
  est.set_gpu_transfer(4, Seconds{0.05});
  const CostEstimate after = est.estimate(gpu_query());
  ASSERT_GT(before.column_fraction, 0.0);
  EXPECT_DOUBLE_EQ(est.gpu_transfer(4).value(), 0.05);
  EXPECT_DOUBLE_EQ(after.gpu[4].value(),
                   before.gpu[4].value() + 0.05 * before.column_fraction);
  EXPECT_DOUBLE_EQ(after.gpu[0].value(), before.gpu[0].value());

  // Placement view: the distance-blind scheduler starts at configured
  // queue 0; under the catalog the transfer term makes device 1's 1-SM
  // queues the slowest candidates, so Figure 10's slowest-feasible-first
  // rule picks the off-home device while it remains feasible — and its
  // committed estimate carries exactly the transfer term.
  const Placement a = plain.schedule(gpu_query(), Seconds{});
  const Placement b = priced.schedule(gpu_query(), Seconds{});
  ASSERT_EQ(a.queue.kind, QueueRef::kGpu);
  EXPECT_EQ(a.queue.index, 0);
  ASSERT_EQ(b.queue.kind, QueueRef::kGpu);
  EXPECT_EQ(priced.device_catalog()->device_of(b.queue.index), 1);
  EXPECT_DOUBLE_EQ(b.processing_est.value(),
                   a.processing_est.value() + 0.05 * before.column_fraction);
}

TEST(SchedulerDevices, RepartitionRetiresTheDonorFromTheCandidateSet) {
  SchedFixture f;
  f.config.enable_cpu = false;
  f.config.topology = two_device_topology(Seconds{});
  auto sched = f.scheduler();
  ASSERT_NE(sched.device_catalog(), nullptr);

  RepartitionDecision d;
  d.kind = RepartitionDecision::Kind::kMerge;
  d.device = 0;
  d.keeper = 0;
  d.donor = 1;
  const RepartitionDecision applied = sched.apply_repartition(d);
  EXPECT_EQ(applied.keeper_width, 2);
  EXPECT_EQ(sched.counters().repartition_merges, 1u);
  EXPECT_FALSE(sched.device_catalog()->active(1));

  // Queue 1 never receives another placement while inactive.
  for (int i = 0; i < 40; ++i) {
    const Placement p = sched.schedule(heavy_query(), Seconds{});
    ASSERT_FALSE(p.rejected);
    ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
    EXPECT_NE(p.queue.index, 1);
  }
  EXPECT_EQ(sched.gpu_clock(1), Seconds{});

  RepartitionDecision s;
  s.kind = RepartitionDecision::Kind::kSplit;
  s.device = 0;
  s.keeper = 0;
  s.donor = 1;
  sched.apply_repartition(s);
  EXPECT_EQ(sched.counters().repartition_splits, 1u);
  EXPECT_TRUE(sched.device_catalog()->active(1));
}

TEST(SchedulerDevices, CatalogFreeSchedulerRejectsRepartitionCalls) {
  SchedFixture f;
  auto sched = f.scheduler();  // no topology -> no catalog
  EXPECT_EQ(sched.elastic_policy(), nullptr);
  EXPECT_FALSE(sched.evaluate_repartition(Seconds{}).has_value());
  EXPECT_THROW(sched.apply_repartition(RepartitionDecision{}),
               InvalidArgument);
}

TEST(SchedulerDevices, DrainThroughOnShedBalancesTheLedgerExactly) {
  SchedFixture f;
  f.config.enable_cpu = false;
  f.config.topology = two_device_topology(Seconds{0.002});
  auto sched = f.scheduler();

  // Load the queues, remembering each placement's committed estimates.
  std::vector<Placement> placements;
  for (int i = 0; i < 30; ++i) {
    placements.push_back(sched.schedule(heavy_query(), Seconds{}));
    ASSERT_FALSE(placements.back().rejected);
  }
  double committed = 0.0;
  for (int q = 0; q < 6; ++q) committed += sched.gpu_clock(q).value();
  ASSERT_GT(committed, 0.0);

  // Drain every queue exactly as the simulator/executor do before a
  // repartition: shed each queued placement back through on_shed().
  for (const Placement& p : placements) {
    sched.on_shed(p.queue, p.processing_est,
                  p.translate ? p.translation_est : Seconds{});
  }
  // Every clock returned to zero to machine precision — nothing lost,
  // nothing double-counted.
  for (int q = 0; q < 6; ++q) {
    EXPECT_NEAR(sched.gpu_clock(q).value(), 0.0, 1e-12) << "queue " << q;
  }

  // With the queues empty the merge applies cleanly and re-scheduled
  // work lands on live queues only.
  RepartitionDecision d;
  d.kind = RepartitionDecision::Kind::kMerge;
  d.device = 0;
  d.keeper = 0;
  d.donor = 1;
  sched.apply_repartition(d);
  const Placement re = sched.schedule(heavy_query(), Seconds{});
  ASSERT_FALSE(re.rejected);
  EXPECT_NE(re.queue.index, 1);
}

TEST(SchedulerDevices, EvaluateRepartitionReadsBacklogFromTheClocks) {
  SchedFixture f;
  f.config.enable_cpu = false;
  f.config.topology = two_device_topology(Seconds{});
  f.config.elastic.enabled = true;
  f.config.elastic.sustain_checks = 2;
  f.config.elastic.merge_backlog = Seconds{0.0005};
  f.config.elastic.split_backlog = Seconds{0.00001};
  auto sched = f.scheduler();
  ASSERT_NE(sched.elastic_policy(), nullptr);
  EXPECT_EQ(sched.elastic_policy()->sustain_checks, 2);

  // Pile enough work onto the queues that the mean backlog per active
  // queue passes the merge threshold, then evaluate twice to satisfy
  // the sustain requirement.
  for (int i = 0; i < 60; ++i) {
    ASSERT_FALSE(sched.schedule(heavy_query(), Seconds{}).rejected);
  }
  EXPECT_FALSE(sched.evaluate_repartition(Seconds{}).has_value());
  const auto d = sched.evaluate_repartition(Seconds{});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, RepartitionDecision::Kind::kMerge);
  // Backlog clamps at zero for a `now` past every clock: far in the
  // future the same ledger reads as idle, so no merge fires.
  EXPECT_FALSE(sched.evaluate_repartition(Seconds{1000.0}).has_value());
}

TEST(SchedulerDevices, SingleDeviceCatalogIsBitIdenticalToTheSeed) {
  // One device holding the paper's {1,1,2,2,4,4} ladder: every transfer
  // is zero and the configured order is already slowest-first, so the
  // catalog-enabled scheduler must place bit-for-bit like the seed.
  SchedFixture f;
  f.config.gpu_partitions = {1, 1, 2, 2, 4, 4};
  f.config.gpu_queue_device.clear();
  auto seed = f.scheduler();
  f.config.topology = two_device_topology(Seconds{0.01});
  auto catalogued = f.scheduler();
  ASSERT_NE(catalogued.device_catalog(), nullptr);
  EXPECT_EQ(catalogued.device_catalog()->device_count(), 1);
  for (int i = 0; i < 50; ++i) {
    const Seconds now{0.001 * i};
    const Query q = (i % 3 == 0) ? gpu_query() : heavy_query();
    const Placement a = seed.schedule(q, now);
    const Placement b = catalogued.schedule(q, now);
    ASSERT_EQ(a.queue.kind, b.queue.kind);
    ASSERT_EQ(a.queue.index, b.queue.index);
    ASSERT_DOUBLE_EQ(a.processing_est.value(), b.processing_est.value());
    ASSERT_DOUBLE_EQ(a.response_est.value(), b.response_est.value());
  }
  EXPECT_DOUBLE_EQ(seed.gpu_clock(0).value(),
                   catalogued.gpu_clock(0).value());
  EXPECT_DOUBLE_EQ(seed.cpu_clock().value(), catalogued.cpu_clock().value());
}

}  // namespace
}  // namespace holap
