#include "sched/catalog.hpp"

#include <gtest/gtest.h>

#include "cube/dense_cube.hpp"

namespace holap {
namespace {

std::vector<Dimension> dims() { return paper_model_dimensions(); }

Query level_query(int level, std::int32_t from = 0, std::int32_t to = 0) {
  Query q;
  q.conditions.push_back({0, level, from, to, {}, {}});
  q.measures = {12};
  return q;
}

TEST(VirtualCatalog, LowestLevelSelection) {
  const VirtualCubeCatalog cat(dims(), {0, 1, 2});
  EXPECT_EQ(cat.lowest_level_for(level_query(0)), 0);
  EXPECT_EQ(cat.lowest_level_for(level_query(1)), 1);
  EXPECT_EQ(cat.lowest_level_for(level_query(3)), std::nullopt);
  EXPECT_TRUE(cat.can_answer(level_query(2)));
  EXPECT_FALSE(cat.can_answer(level_query(3)));
}

TEST(VirtualCatalog, LevelsDeduplicatedAndSorted) {
  const VirtualCubeCatalog cat(dims(), {2, 0, 2, 1});
  EXPECT_EQ(cat.levels(), (std::vector<int>{0, 1, 2}));
}

TEST(VirtualCatalog, AnswerMbMatchesSubcubeBytes) {
  const VirtualCubeCatalog cat(dims(), {0, 1, 2, 3});
  const Query q = level_query(2, 0, 99);  // 100 of 400 members at level 2
  const double expected_bytes =
      static_cast<double>(subcube_bytes(q, dims(), 2, 8));
  EXPECT_NEAR(cat.answer_mb(q).value(), expected_bytes / (1024.0 * 1024.0),
              1e-9);
}

TEST(VirtualCatalog, ThirtyTwoGigabyteCubeIsJustANumber) {
  // The whole point of the virtual plane: Table 2's 32 GB cube without
  // allocating it. A full-extent level-3 query touches the entire cube.
  const VirtualCubeCatalog cat(dims(), {3});
  const Query q = level_query(3, 0, 1599);
  EXPECT_NEAR(cat.answer_mb(q).value(), 32768.0 * 0.953674, 40.0);  // ~31.25 GiB
  EXPECT_EQ(cat.total_bytes(), 32'768'000'000u);
}

TEST(VirtualCatalog, AnswerMbThrowsWhenUnanswerable) {
  const VirtualCubeCatalog cat(dims(), {0});
  EXPECT_THROW(cat.answer_mb(level_query(2)), InvalidArgument);
}

TEST(VirtualCatalog, RejectsInvalidLevels) {
  EXPECT_THROW(VirtualCubeCatalog(dims(), {4}), InvalidArgument);
  EXPECT_THROW(VirtualCubeCatalog({}, {0}), InvalidArgument);
}

TEST(VirtualTranslation, LengthsForTextConditions) {
  const TableSchema schema =
      make_star_schema(dims(), {"m"}, {{1, 3}, {2, 3}});
  const VirtualTranslationModel model(schema, 1.0);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"a", "b"};
  q.conditions.push_back(c);
  // Level-3 cardinality is 1600; two parameters.
  EXPECT_EQ(model.dictionary_lengths(q),
            (std::vector<std::size_t>{1600, 1600}));
}

TEST(VirtualTranslation, MultiplierScalesLengths) {
  const TableSchema schema = make_star_schema(dims(), {"m"}, {{1, 3}});
  const VirtualTranslationModel model(schema, 250.0);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"x"};
  q.conditions.push_back(c);
  EXPECT_EQ(model.dictionary_lengths(q),
            (std::vector<std::size_t>{400'000}));
}

TEST(VirtualTranslation, NonTextQueriesEmpty) {
  const TableSchema schema = make_star_schema(dims(), {"m"}, {{1, 3}});
  const VirtualTranslationModel model(schema);
  EXPECT_TRUE(model.dictionary_lengths(level_query(2)).empty());
}

TEST(VirtualTranslation, RejectsNonPositiveMultiplier) {
  const TableSchema schema = make_star_schema(dims(), {"m"}, {});
  EXPECT_THROW(VirtualTranslationModel(schema, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace holap
