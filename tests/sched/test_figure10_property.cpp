// Property test for the Figure-10 placement rule: whenever at least one
// partition could still answer within the deadline (P_BD non-empty), the
// scheduler must place the query on a feasible partition — step 6's
// best-effort fallback is ONLY legal when P_BD is empty.
//
// An independent oracle recomputes every partition's response time from
// the scheduler's exposed queue clocks and the same cost estimator, so
// the test never trusts the code path it is checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "query/workload.hpp"
#include "sched/catalog.hpp"
#include "sched/scheduler.hpp"

namespace holap {
namespace {

struct PropertyWorld {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2}};
  VirtualTranslationModel translation{schema, 400.0};
  SchedulerConfig config;
  WorkloadConfig workload;

  explicit PropertyWorld(std::uint64_t seed) {
    SplitMix64 rng(seed);
    // Deadlines spanning "everything feasible" to "almost nothing is":
    // the property only bites when feasibility is actually contested.
    config.deadline = Seconds{rng.uniform_real(0.005, 0.2)};
    config.feedback = rng.bernoulli(0.5);
    // Keep dispatch unmodeled so the oracle can be rebuilt from the
    // exposed cpu/translation/gpu clocks alone.
    config.modeled_gpu_dispatch = Seconds{0.0};
    workload.seed = rng.next();
    workload.text_probability = rng.uniform_real(0.0, 1.0);
    workload.mean_selectivity = rng.uniform_real(0.05, 0.9);
  }

  CostEstimator estimator() const {
    return make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                &catalog, &translation);
  }
};

struct OracleResponse {
  QueueRef ref;
  Seconds response{};
  bool feasible = false;
};

// Step-3 responses recomputed from the scheduler's public clocks.
std::vector<OracleResponse> oracle_responses(const QueueingScheduler& sched,
                                             const CostEstimate& est,
                                             Seconds now, Seconds deadline) {
  std::vector<OracleResponse> out;
  if (sched.config().enable_cpu && est.cpu.has_value()) {
    OracleResponse r;
    r.ref = {QueueRef::kCpu, 0};
    r.response = std::max(sched.cpu_clock(), now) + *est.cpu;
    r.feasible = (deadline - r.response).value() > 0.0;
    out.push_back(r);
  }
  if (sched.config().enable_gpu) {
    const Seconds trans_done =
        est.needs_translation
            ? max(sched.translation_clock(), now) + est.translation
            : Seconds{};
    for (int g = 0; g < sched.gpu_queue_count(); ++g) {
      OracleResponse r;
      r.ref = {QueueRef::kGpu, g};
      Seconds ready = std::max(sched.gpu_clock(g), now);
      if (est.needs_translation) ready = std::max(ready, trans_done);
      r.response = ready + est.gpu[static_cast<std::size_t>(g)];
      r.feasible = (deadline - r.response).value() > 0.0;
      out.push_back(r);
    }
  }
  return out;
}

class FigureTenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FigureTenProperty, NeverMissesWhenAFeasiblePartitionExists) {
  const std::uint64_t seed = GetParam();
  PropertyWorld world(seed);
  FigureTenScheduler sched(world.config, world.estimator());
  const CostEstimator oracle_est = world.estimator();
  QueryGenerator gen(world.dims, world.schema, world.workload);

  SplitMix64 arrivals(seed * 31 + 7);
  Seconds now{};
  int contested = 0;  // steps where feasibility was neither all nor none
  for (int i = 0; i < 200; ++i) {
    now += Seconds{arrivals.exponential(150.0)};
    const Query q = gen.next();
    const CostEstimate est = oracle_est.estimate(q);
    const Seconds deadline = now + world.config.deadline;
    const auto oracle = oracle_responses(sched, est, now, deadline);

    const Placement p = sched.schedule(q, now);
    ASSERT_FALSE(p.rejected);  // CPU+GPU enabled: always placeable

    const auto chosen = std::find_if(
        oracle.begin(), oracle.end(),
        [&](const OracleResponse& r) { return r.ref == p.queue; });
    ASSERT_NE(chosen, oracle.end());
    EXPECT_NEAR(chosen->response.value(), p.response_est.value(), 1e-9);

    const bool any_feasible = std::any_of(
        oracle.begin(), oracle.end(),
        [](const OracleResponse& r) { return r.feasible; });
    const bool all_feasible = std::all_of(
        oracle.begin(), oracle.end(),
        [](const OracleResponse& r) { return r.feasible; });
    if (any_feasible && !all_feasible) ++contested;

    // THE property: a feasible partition exists => the placement is
    // feasible. (p.before_deadline must agree with the oracle too.)
    EXPECT_EQ(p.before_deadline, chosen->feasible) << "query " << i;
    if (any_feasible) {
      EXPECT_TRUE(p.before_deadline)
          << "query " << i << ": placed on a missing partition while a "
          << "feasible one existed (T_D=" << deadline << ")";
    } else {
      // Step 6: among an all-miss field, the pick minimises |T_D - T_R|.
      for (const auto& r : oracle) {
        EXPECT_LE(abs(deadline - chosen->response).value(),
                  abs(deadline - r.response).value() + 1e-9)
            << "query " << i;
      }
    }

    // Perturb the clocks the way real completions do, so later queries
    // see contended queues (with feedback on, clocks shift both ways).
    if (i % 3 == 0) {
      const double skew = arrivals.uniform_real(0.5, 1.5);
      sched.on_completed(p.queue, p.processing_est,
                         p.processing_est * skew);
    }
  }
  // The sweep must actually exercise contested feasibility, not just
  // trivially-feasible or trivially-hopeless regimes.
  if (world.config.deadline < Seconds{0.1}) {
    EXPECT_GT(contested, 0) << "deadline=" << world.config.deadline;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FigureTenProperty,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

}  // namespace
}  // namespace holap
