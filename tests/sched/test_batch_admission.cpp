// The batched-admission contract of SchedulerPolicy::schedule_batch:
//
//   1. DECISION EQUIVALENCE — a batch decided under one lock/one ledger
//      commit places every query bit-identically to N serial schedule()
//      calls in the same order, and leaves bit-identical clocks behind.
//      This is the property that makes the ingestion front-end safe: the
//      aggregation is an amortisation, never a policy change.
//   2. ROLLBACK EXACTNESS — rollback_batch() restores the clock ledger
//      bit-identically to its pre-batch state (batch-granular rollback),
//      including batches whose commits jumped over idle gaps.
//   3. The ledger is committed ONCE per batch (counters), and placements
//      that never committed (admission shed, rejected) contribute nothing
//      to the recorded deltas.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "query/workload.hpp"
#include "sched/baselines.hpp"
#include "sched/catalog.hpp"

namespace holap {
namespace {

struct BatchWorld {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog;
  VirtualTranslationModel translation;
  SchedulerConfig config;
  WorkloadConfig workload;

  explicit BatchWorld(std::uint64_t seed)
      : catalog(paper_model_dimensions(), {0, 1, 2}),
        translation(schema, 400.0) {
    SplitMix64 rng(seed);
    config.deadline = Seconds{rng.uniform_real(0.02, 0.3)};
    config.feedback = rng.bernoulli(0.5);
    if (rng.bernoulli(0.5)) {
      config.modeled_gpu_dispatch = Seconds{rng.uniform_real(0.001, 0.02)};
    }
    if (rng.bernoulli(0.4)) {
      config.admission.mode = AdmissionControl::Mode::kReject;
      config.admission.slack_factor = rng.uniform_real(0.0, 0.5);
    }
    workload.seed = rng.next();
    workload.text_probability = rng.uniform_real(0.2, 1.0);
  }

  CostEstimator estimator() const {
    return make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0},
                                16, &catalog, &translation);
  }

  std::unique_ptr<SchedulerPolicy> make(const char* name) const {
    return make_policy(name, config, estimator());
  }

  std::vector<Query> batch_of(std::size_t n) {
    QueryGenerator gen(dims, schema, workload);
    std::vector<Query> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
    return out;
  }
};

void expect_same_placement(const Placement& a, const Placement& b,
                           std::size_t i) {
  EXPECT_EQ(a.rejected, b.rejected) << "query " << i;
  EXPECT_EQ(a.shed_at_admission, b.shed_at_admission) << "query " << i;
  EXPECT_EQ(a.queue, b.queue) << "query " << i;
  EXPECT_EQ(a.translate, b.translate) << "query " << i;
  // Bit-identical, not approximately equal: the staged path must run the
  // exact same double arithmetic as the serial path.
  EXPECT_EQ(a.processing_est.value(), b.processing_est.value())
      << "query " << i;
  EXPECT_EQ(a.translation_est.value(), b.translation_est.value())
      << "query " << i;
  EXPECT_EQ(a.response_est.value(), b.response_est.value()) << "query " << i;
  EXPECT_EQ(a.before_deadline, b.before_deadline) << "query " << i;
}

struct ClockSnapshot {
  Seconds cpu{};
  Seconds translation{};
  std::vector<Seconds> gpu;

  static ClockSnapshot of(const QueueingScheduler& s) {
    ClockSnapshot snap;
    snap.cpu = s.cpu_clock();
    snap.translation = s.translation_clock();
    for (int g = 0; g < s.gpu_queue_count(); ++g) {
      snap.gpu.push_back(s.gpu_clock(g));
    }
    return snap;
  }

  void expect_equals(const ClockSnapshot& other) const {
    EXPECT_EQ(cpu.value(), other.cpu.value());
    EXPECT_EQ(translation.value(), other.translation.value());
    ASSERT_EQ(gpu.size(), other.gpu.size());
    for (std::size_t g = 0; g < gpu.size(); ++g) {
      EXPECT_EQ(gpu[g].value(), other.gpu[g].value()) << "gpu queue " << g;
    }
  }

  /// Rollback restores to within rounding, not bit-exactly: the ledger
  /// stores `committed = staged` and `delta = staged - before`, and
  /// `committed - delta` re-rounds once — when an idle-gap jump makes
  /// `committed` much larger than `before`, the residue is an ulp of the
  /// COMMITTED magnitude, not of `before`. The honest contract is
  /// therefore absolute error at ledger scale (clocks are O(seconds);
  /// 1e-12 s is nine orders below any modeled cost). Exact equality is
  /// reserved for the serial-equivalence checks, where both sides run
  /// the SAME arithmetic.
  void expect_restores(const ClockSnapshot& other) const {
    EXPECT_NEAR(cpu.value(), other.cpu.value(), 1e-12);
    EXPECT_NEAR(translation.value(), other.translation.value(), 1e-12);
    ASSERT_EQ(gpu.size(), other.gpu.size());
    for (std::size_t g = 0; g < gpu.size(); ++g) {
      EXPECT_NEAR(gpu[g].value(), other.gpu[g].value(), 1e-12)
          << "gpu queue " << g;
    }
  }
};

class BatchAdmissionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchAdmissionProperty, BatchedChooseIsDecisionEquivalentToSerial) {
  BatchWorld world(GetParam());
  auto serial_policy = world.make("figure10");
  auto batched_policy = world.make("figure10");
  auto* serial = dynamic_cast<QueueingScheduler*>(serial_policy.get());
  auto* batched = dynamic_cast<QueueingScheduler*>(batched_policy.get());
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(batched, nullptr);

  // Interleave batches with completion/shed feedback so equivalence holds
  // from every reachable ledger state, not just the empty one.
  SplitMix64 rng(GetParam() * 31 + 7);
  Seconds now{};
  for (int round = 0; round < 8; ++round) {
    now += Seconds{rng.uniform_real(0.001, 0.05)};
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const std::vector<Query> batch = world.batch_of(n);

    std::vector<Placement> reference;
    reference.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      reference.push_back(
          serial->schedule(batch[i], now, round * 1000 + i));
    }
    const BatchPlacement placed =
        batched->schedule_batch(batch, now, round * 1000);

    ASSERT_EQ(placed.placements.size(), n);
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect_same_placement(reference[i], placed.placements[i], i);
      if (!placed.placements[i].rejected &&
          !placed.placements[i].shed_at_admission) {
        ++admitted;
      }
    }
    EXPECT_EQ(placed.admitted, admitted);
    ClockSnapshot::of(*serial).expect_equals(ClockSnapshot::of(*batched));

    // Mirror some feedback into both schedulers.
    for (std::size_t i = 0; i < n; ++i) {
      const Placement& p = placed.placements[i];
      if (p.rejected || p.shed_at_admission) continue;
      const double roll = rng.uniform_real(0.0, 1.0);
      if (roll < 0.3) {
        const Seconds actual = p.processing_est * rng.uniform_real(0.5, 1.5);
        serial->on_completed(p.queue, p.processing_est, actual);
        batched->on_completed(p.queue, p.processing_est, actual);
      } else if (roll < 0.4) {
        const Seconds pending = p.translate ? p.translation_est : Seconds{};
        serial->on_shed(p.queue, p.processing_est, pending);
        batched->on_shed(p.queue, p.processing_est, pending);
      }
    }
    ClockSnapshot::of(*serial).expect_equals(ClockSnapshot::of(*batched));
  }
}

TEST_P(BatchAdmissionProperty, RollbackBatchRestoresTheLedger) {
  BatchWorld world(GetParam());
  auto policy = world.make("figure10");
  auto* scheduler = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(scheduler, nullptr);

  SplitMix64 rng(GetParam() * 101 + 3);
  Seconds now{};
  for (int round = 0; round < 8; ++round) {
    // Vary the pre-batch state: commit some load that stays.
    now += Seconds{rng.uniform_real(0.0, 0.1)};
    for (const Query& warm : world.batch_of(3)) {
      (void)scheduler->schedule(warm, now);
    }
    const ClockSnapshot before = ClockSnapshot::of(*scheduler);

    // `now` jumps past the committed load on some rounds, so the staged
    // commits include max(clock, now) idle-gap jumps — the rollback must
    // subtract the recorded deltas, not re-derive estimates.
    now += Seconds{rng.uniform_real(0.0, 0.5)};
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 16));
    const BatchPlacement placed =
        scheduler->schedule_batch(world.batch_of(n), now);
    scheduler->rollback_batch(placed);

    ClockSnapshot::of(*scheduler).expect_restores(before);
  }
  EXPECT_EQ(scheduler->counters().batch_rollbacks, 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchAdmissionProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull, 9ull, 10ull));

TEST(BatchAdmission, EmptyBatchCommitsNothing) {
  BatchWorld world(5);
  auto policy = world.make("figure10");
  auto* scheduler = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(scheduler, nullptr);
  const ClockSnapshot before = ClockSnapshot::of(*scheduler);
  const BatchPlacement placed =
      scheduler->schedule_batch({}, Seconds{1.0});
  EXPECT_TRUE(placed.placements.empty());
  EXPECT_EQ(placed.admitted, 0u);
  ClockSnapshot::of(*scheduler).expect_equals(before);
  // An empty flush never reaches the scheduler in production, but the
  // rollback of its (all-zero) deltas must still be harmless.
  scheduler->rollback_batch(placed);
  ClockSnapshot::of(*scheduler).expect_equals(before);
}

TEST(BatchAdmission, LedgerCommitsOncePerBatch) {
  BatchWorld world(6);
  auto policy = world.make("figure10");
  auto* scheduler = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(scheduler, nullptr);
  (void)scheduler->schedule_batch(world.batch_of(7), Seconds{0.01});
  (void)scheduler->schedule_batch(world.batch_of(5), Seconds{0.02});
  EXPECT_EQ(scheduler->counters().batch_commits, 2u);
  EXPECT_EQ(scheduler->counters().batched_queries, 12u);
  EXPECT_EQ(scheduler->counters().batch_rollbacks, 0u);
}

TEST(BatchAdmission, ShedAtAdmissionContributesNoDeltas) {
  // An admission mode strict enough to shed everything: slack 0 and a
  // deadline no partition can meet.
  BatchWorld world(7);
  world.config.admission.mode = AdmissionControl::Mode::kReject;
  world.config.admission.slack_factor = 0.0;
  world.config.deadline = Seconds{1e-9};
  auto policy = world.make("figure10");
  auto* scheduler = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(scheduler, nullptr);
  const ClockSnapshot before = ClockSnapshot::of(*scheduler);
  const BatchPlacement placed =
      scheduler->schedule_batch(world.batch_of(10), Seconds{0.5});
  EXPECT_EQ(placed.admitted, 0u);
  for (const Placement& p : placed.placements) {
    EXPECT_TRUE(p.shed_at_admission || p.rejected);
  }
  EXPECT_EQ(placed.cpu_delta.value(), 0.0);
  EXPECT_EQ(placed.trans_delta.value(), 0.0);
  for (const Seconds d : placed.gpu_deltas) EXPECT_EQ(d.value(), 0.0);
  for (const Seconds d : placed.dispatch_deltas) EXPECT_EQ(d.value(), 0.0);
  ClockSnapshot::of(*scheduler).expect_equals(before);
}

TEST(BatchAdmission, PerQueryHintsAreHonoured) {
  // hint[i].translation_cached must suppress the translation charge for
  // exactly query i — same behaviour as the serial hint path.
  BatchWorld world(8);
  world.workload.text_probability = 1.0;
  auto batched_policy = world.make("figure10");
  auto serial_policy = world.make("figure10");
  auto* batched = dynamic_cast<QueueingScheduler*>(batched_policy.get());
  auto* serial = dynamic_cast<QueueingScheduler*>(serial_policy.get());
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(serial, nullptr);

  const std::vector<Query> batch = world.batch_of(6);
  std::vector<ScheduleHints> hints(batch.size());
  for (std::size_t i = 0; i < hints.size(); ++i) {
    hints[i].translation_cached = (i % 2 == 0);
  }
  std::vector<Placement> reference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    reference.push_back(serial->schedule(batch[i], Seconds{0.01}, i,
                                         hints[i]));
  }
  const BatchPlacement placed =
      batched->schedule_batch(batch, Seconds{0.01}, 0, hints);
  ASSERT_EQ(placed.placements.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_placement(reference[i], placed.placements[i], i);
    if (placed.placements[i].queue.kind == QueueRef::kGpu &&
        hints[i].translation_cached) {
      EXPECT_FALSE(placed.placements[i].translate) << "query " << i;
    }
  }
  ClockSnapshot::of(*serial).expect_equals(ClockSnapshot::of(*batched));
}

TEST(BatchAdmission, BaselinePoliciesInheritTheSerialLoopEquivalence) {
  // The base-class schedule_batch IS the serial loop; this pins the
  // contract for every policy that doesn't override it.
  for (const char* name : {"MCT", "MET", "round-robin"}) {
    BatchWorld world(9);
    auto serial_policy = world.make(name);
    auto batched_policy = world.make(name);
    const std::vector<Query> batch = world.batch_of(12);
    std::vector<Placement> reference;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      reference.push_back(serial_policy->schedule(batch[i], Seconds{0.02}));
    }
    const BatchPlacement placed =
        batched_policy->schedule_batch(batch, Seconds{0.02});
    ASSERT_EQ(placed.placements.size(), batch.size()) << name;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_same_placement(reference[i], placed.placements[i], i);
    }
  }
}

// The repo's own policies all route through QueueingScheduler's staged
// override, so the SchedulerPolicy base defaults — the serial loop every
// EXTERNAL policy inherits — need a direct subclass to be exercised at
// all. This stub implements only the pure virtuals and decides from a
// call counter: i%4 == 1 rejected, == 2 shed at admission, == 3 GPU,
// else CPU with a translation leg.
class BareStubPolicy : public SchedulerPolicy {
 public:
  Placement schedule(const Query&, Seconds now, std::uint64_t = 0,
                     ScheduleHints hints = {}) override {
    Placement p;
    const std::size_t i = calls++;
    if (i % 4 == 1) {
      p.rejected = true;
      return p;
    }
    if (i % 4 == 2) {
      p.shed_at_admission = true;
      return p;
    }
    p.queue = (i % 4 == 3) ? QueueRef{QueueRef::kGpu, 0}
                           : QueueRef{QueueRef::kCpu, 0};
    p.translate = !hints.translation_cached && i % 4 == 0;
    p.processing_est = Seconds{0.010};
    p.translation_est = p.translate ? Seconds{0.002} : Seconds{};
    p.response_est = now + p.processing_est;
    p.before_deadline = true;
    clock += p.processing_est;
    return p;
  }
  void on_completed(QueueRef, Seconds, Seconds) override {}
  Seconds deadline() const override { return Seconds{1.0}; }
  int gpu_queue_count() const override { return 1; }
  const char* name() const override { return "bare-stub"; }

  std::size_t calls = 0;
  Seconds clock{};
};

struct ShedCall {
  QueueRef queue;
  Seconds processing{};
  Seconds pending_translation{};
};

class ShedRecordingPolicy final : public BareStubPolicy {
 public:
  void on_shed(QueueRef ref, Seconds processing_est,
               Seconds pending_translation_est) override {
    sheds.push_back({ref, processing_est, pending_translation_est});
  }

  std::vector<ShedCall> sheds;
};

TEST(BatchAdmission, BaseDefaultBatchIsTheSerialScheduleLoop) {
  BareStubPolicy serial;
  BareStubPolicy batched;
  const std::vector<Query> batch(8);
  std::vector<Placement> reference;
  for (const Query& q : batch) {
    reference.push_back(serial.schedule(q, Seconds{0.05}));
  }
  const BatchPlacement placed = batched.schedule_batch(batch, Seconds{0.05});
  ASSERT_EQ(placed.placements.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_placement(reference[i], placed.placements[i], i);
  }
  // 8 queries through i%4: two rejected, two admission-shed, four admitted.
  EXPECT_EQ(placed.admitted, 4u);
  EXPECT_EQ(batched.clock.value(), serial.clock.value());
}

TEST(BatchAdmission, BaseDefaultBatchForwardsPerQueryHints) {
  BareStubPolicy policy;
  const std::vector<Query> batch(4);
  std::vector<ScheduleHints> hints(batch.size());
  hints[0].translation_cached = true;  // i%4==0: the translating slot
  const BatchPlacement placed =
      policy.schedule_batch(batch, Seconds{}, 0, hints);
  ASSERT_EQ(placed.placements.size(), 4u);
  EXPECT_FALSE(placed.placements[0].translate);
  EXPECT_THROW(policy.schedule_batch(batch, Seconds{}, 0,
                                     std::span<const ScheduleHints>(
                                         hints.data(), hints.size() - 1)),
               Error);
}

TEST(BatchAdmission, BaseDefaultRollbackShedsEachAdmittedPlacement) {
  ShedRecordingPolicy policy;
  const std::vector<Query> batch(8);
  const BatchPlacement placed = policy.schedule_batch(batch, Seconds{});
  policy.rollback_batch(placed);
  // Only the admitted placements (i%4 == 0 or 3) committed clock time; the
  // rejected and admission-shed ones must not reach on_shed().
  ASSERT_EQ(policy.sheds.size(), 4u);
  for (std::size_t i = 0; i < policy.sheds.size(); ++i) {
    const ShedCall& call = policy.sheds[i];
    EXPECT_EQ(call.processing.value(), 0.010) << "shed " << i;
    // Translation is only pending for placements that scheduled one.
    const bool translating = i % 2 == 0;  // admitted order: 0, 3, 4, 7
    EXPECT_EQ(call.queue.kind,
              translating ? QueueRef::kCpu : QueueRef::kGpu)
        << "shed " << i;
    EXPECT_EQ(call.pending_translation.value(), translating ? 0.002 : 0.0)
        << "shed " << i;
  }
}

TEST(BatchAdmission, BaseFeedbackDefaultsAreInertNoOps) {
  // The optional hooks default to no-ops an external policy may keep; the
  // base class must not require them for batch admission to function.
  BareStubPolicy policy;
  policy.schedule_batch(std::vector<Query>(4), Seconds{});
  const double clock_after_batch = policy.clock.value();
  policy.set_trace_recorder(nullptr);
  policy.on_shed(QueueRef{QueueRef::kCpu, 0}, Seconds{0.010}, Seconds{});
  policy.on_translation_completed(Seconds{0.002}, Seconds{0.003});
  EXPECT_EQ(policy.health_monitor(), nullptr);
  EXPECT_EQ(policy.retry_policy(), nullptr);
  EXPECT_EQ(policy.clock.value(), clock_after_batch);
}

TEST(BatchAdmission, SerialScheduleIsUnchangedByTheStagedRefactor) {
  // Regression guard for the staged-ledger refactor itself: two identical
  // schedulers, one driven via schedule(), the other via size-1 batches,
  // agree bit-for-bit — so serial callers see no behaviour change.
  BatchWorld world(10);
  auto serial_policy = world.make("figure10");
  auto batched_policy = world.make("figure10");
  auto* serial = dynamic_cast<QueueingScheduler*>(serial_policy.get());
  auto* batched = dynamic_cast<QueueingScheduler*>(batched_policy.get());
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(batched, nullptr);
  Seconds now{};
  SplitMix64 rng(1234);
  for (const Query& q : world.batch_of(60)) {
    now += Seconds{rng.uniform_real(0.0, 0.01)};
    const Placement a = serial->schedule(q, now);
    const BatchPlacement b = batched->schedule_batch({&q, 1}, now);
    ASSERT_EQ(b.placements.size(), 1u);
    expect_same_placement(a, b.placements[0], 0);
    ClockSnapshot::of(*serial).expect_equals(ClockSnapshot::of(*batched));
  }
}

}  // namespace
}  // namespace holap
