// Behavioural tests of the Figure-10 algorithm, driven through a fully
// controlled virtual scenario so every branch of steps 3–6 is exercised
// deterministically.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "sched/catalog.hpp"

namespace holap {
namespace {

struct Fixture {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  /// Ladder without the 32 GB cube: level-3 queries become GPU-only.
  VirtualCubeCatalog catalog_no32{paper_model_dimensions(), {0, 1, 2}};
  VirtualTranslationModel translation{schema, 1000.0};

  SchedulerConfig config;

  Fixture() {
    config.deadline = Seconds{0.25};
  }

  FigureTenScheduler scheduler() const {
    return FigureTenScheduler(
        config, make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                     &catalog, &translation));
  }

  FigureTenScheduler scheduler_no32() const {
    return FigureTenScheduler(
        config, make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                     &catalog_no32, &translation));
  }
};

// A tiny coarse query: microseconds on the CPU, far cheaper than any GPU
// partition's fixed cost.
Query cheap_cpu_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.conditions.push_back({1, 0, 0, 0, {}, {}});
  q.conditions.push_back({2, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

// A fine full-extent query: level 3, whole 32 GB cube -> seconds on the
// CPU, milliseconds on the GPU.
Query expensive_cpu_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

// Needs level 3 but no level-3 cube exists -> CPU cannot answer.
Query gpu_only_query(const Fixture&) {
  Query q;
  q.conditions.push_back({0, 3, 0, 99, {}, {}});
  q.measures = {12};
  return q;
}

Query text_query() {
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {"Marlowick"};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});  // force expensive CPU
  q.measures = {12};
  return q;
}

TEST(Figure10, CheapQueriesPreferTheCpu) {
  // Step 5 first branch: CPU in P_BD and T_CPU < T_GPU3.
  Fixture f;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(cheap_cpu_query(), Seconds{});
  EXPECT_FALSE(p.rejected);
  EXPECT_EQ(p.queue.kind, QueueRef::kCpu);
  EXPECT_TRUE(p.before_deadline);
  EXPECT_FALSE(p.translate);
  EXPECT_GT(sched.cpu_clock(), Seconds{});
}

TEST(Figure10, ExpensiveQueriesGoToTheSlowestFeasibleGpuQueue) {
  // Step 5 ELSE branch: iterate slow -> fast, take the first feasible.
  Fixture f;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
  EXPECT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_EQ(p.queue.index, 0);  // empty queues: the slowest is feasible
  EXPECT_TRUE(p.before_deadline);
  EXPECT_NEAR(sched.gpu_clock(0).value(), p.response_est.value(), 1e-15);
  EXPECT_EQ(sched.gpu_clock(1), Seconds{});
}

TEST(Figure10, BackloggedSlowQueuesPushWorkDownTheLadder) {
  // Fill queue 0 until it can no longer meet deadlines; the scheduler must
  // move to queue 1, then 2, ...
  Fixture f;
  auto sched = f.scheduler();
  std::vector<int> used;
  for (int i = 0; i < 24; ++i) {
    const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
    ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
    used.push_back(p.queue.index);
  }
  // Queue indices must be non-decreasing while feasibility erodes.
  for (std::size_t i = 1; i < used.size(); ++i) {
    EXPECT_GE(used[i], used[i - 1]);
  }
  EXPECT_GT(used.back(), 0);  // the ladder was actually descended
}

TEST(Figure10, CpuChosenWhenOnlyFeasiblePartition) {
  // P_BD = {CPU} but T_CPU >= T_GPU3: the pseudocode's fall-through case;
  // we take the CPU (the only way to meet the deadline).
  Fixture f;
  auto sched = f.scheduler_no32();
  // Choke every GPU queue beyond the deadline with GPU-only queries
  // (level 3 is not pre-computed in this scheduler's catalog).
  for (int i = 0; i < 200; ++i) {
    const Placement choke = sched.schedule(gpu_only_query(f), Seconds{});
    ASSERT_EQ(choke.queue.kind, QueueRef::kGpu);
  }
  // A mid-size query: CPU slower than a free 4-SM partition would be, but
  // all GPU queues are now hopeless and the CPU is idle.
  Query q;
  q.conditions.push_back({0, 2, 0, 399, {}, {}});
  q.conditions.push_back({1, 2, 0, 79, {}, {}});
  q.measures = {12};
  const Placement p = sched.schedule(q, Seconds{});
  EXPECT_EQ(p.queue.kind, QueueRef::kCpu);
  EXPECT_TRUE(p.before_deadline);
}

TEST(Figure10, Step6PicksFastestResponseWhenDeadlineUnreachable) {
  Fixture f;
  f.config.deadline = Seconds{1e-6};  // nothing can meet this
  auto sched = f.scheduler();
  const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
  EXPECT_FALSE(p.before_deadline);
  EXPECT_FALSE(p.rejected);
  // min |T_D - T_R| with all responses late = fastest responder: a 4-SM
  // queue (GPU), never the saturated CPU for this query.
  EXPECT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_GE(p.queue.index, 4);
}

TEST(Figure10, UnanswerableQueryRejectedWhenGpuDisabled) {
  Fixture f;
  f.config.enable_gpu = false;
  f.config.gpu_partitions.clear();
  FigureTenScheduler sched(
      f.config, make_paper_estimator({}, 8, Megabytes{4096.0}, 16, &f.catalog_no32,
                                     &f.translation));
  const Placement p = sched.schedule(gpu_only_query(f), Seconds{});
  EXPECT_TRUE(p.rejected);
}

TEST(Figure10, TextQueryToGpuEnqueuesTranslation) {
  // Use the no-32GB ladder so the level-3 text query is GPU-only.
  Fixture f;
  auto sched = f.scheduler_no32();
  const Placement p = sched.schedule(text_query(), Seconds{});
  ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_TRUE(p.translate);
  EXPECT_GT(p.translation_est, Seconds{});
  EXPECT_GT(sched.translation_clock(), Seconds{});
  // Response includes the translation stall: T_R >= T_TRANS + T_GPU.
  EXPECT_GE(p.response_est.value(),
            (p.translation_est + p.processing_est).value() - 1e-12);
}

TEST(Figure10, TextQueryToCpuSkipsTranslationQueue) {
  // Translation "is necessary only for the GPU side of the system".
  Fixture f;
  auto sched = f.scheduler();
  Query q = cheap_cpu_query();
  Condition c;
  c.dim = 2;
  c.level = 3;
  c.text_values = {"Nortek #1"};
  q.conditions.push_back(c);
  const Placement p = sched.schedule(q, Seconds{});
  ASSERT_EQ(p.queue.kind, QueueRef::kCpu);
  EXPECT_FALSE(p.translate);
  EXPECT_EQ(sched.translation_clock(), Seconds{});
}

TEST(Figure10, TranslationQueueSerializesAcrossQueries) {
  Fixture f;
  auto sched = f.scheduler_no32();
  const Placement p1 = sched.schedule(text_query(), Seconds{});
  const Seconds trans_after_one = sched.translation_clock();
  const Placement p2 = sched.schedule(text_query(), Seconds{});
  EXPECT_NEAR(sched.translation_clock().value(),
              (trans_after_one + p2.translation_est).value(), 1e-12);
  // The second query's GPU start waits for its own translation.
  EXPECT_GE(p2.response_est.value(), sched.translation_clock().value() - 1e-12);
  (void)p1;
}

TEST(Figure10, QueueClocksAdvanceByProcessingEstimates) {
  Fixture f;
  auto sched = f.scheduler();
  const Placement p1 = sched.schedule(cheap_cpu_query(), Seconds{});
  const Placement p2 = sched.schedule(cheap_cpu_query(), Seconds{});
  EXPECT_NEAR(sched.cpu_clock().value(),
              (p1.processing_est + p2.processing_est).value(), 1e-12);
  EXPECT_NEAR(p2.response_est.value(),
              (p1.response_est + p2.processing_est).value(), 1e-12);
}

TEST(Figure10, ArrivalTimeFloorsQueueClocks) {
  Fixture f;
  auto sched = f.scheduler();
  sched.schedule(cheap_cpu_query(), Seconds{});
  // Arrive long after the queue drained: response starts at `now`.
  const Placement p = sched.schedule(cheap_cpu_query(), Seconds{100.0});
  EXPECT_NEAR(p.response_est.value(), 100.0 + p.processing_est.value(), 1e-12);
}

TEST(Figure10, FeedbackShiftsQueueClock) {
  Fixture f;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(cheap_cpu_query(), Seconds{});
  const Seconds before = sched.cpu_clock();
  sched.on_completed({QueueRef::kCpu, 0}, p.processing_est,
                     p.processing_est + Seconds{0.010});
  EXPECT_NEAR(sched.cpu_clock().value(), before.value() + 0.010, 1e-12);
  // Under-run pulls the clock back.
  sched.on_completed({QueueRef::kCpu, 0}, Seconds{0.005}, Seconds{0.001});
  EXPECT_NEAR(sched.cpu_clock().value(), before.value() + 0.010 - 0.004,
              1e-12);
}

TEST(Figure10, FeedbackDisabledLeavesClocksUntouched) {
  Fixture f;
  f.config.feedback = false;
  auto sched = f.scheduler();
  sched.schedule(cheap_cpu_query(), Seconds{});
  const Seconds before = sched.cpu_clock();
  sched.on_completed({QueueRef::kCpu, 0}, Seconds{0.001}, Seconds{0.5});
  EXPECT_EQ(sched.cpu_clock(), before);
}

TEST(Figure10, FastestFeasibleAblationFlipsQueueOrder) {
  Fixture f;
  f.config.prefer_fastest_feasible_gpu = true;
  auto sched = f.scheduler();
  const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
  ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_EQ(p.queue.index, 5);  // last feasible = fastest class
}

TEST(Figure10, ConfigValidation) {
  Fixture f;
  f.config.deadline = Seconds{0.0};
  EXPECT_THROW(f.scheduler(), InvalidArgument);
  f = Fixture();
  f.config.enable_cpu = false;
  f.config.enable_gpu = false;
  EXPECT_THROW(f.scheduler(), InvalidArgument);
  f = Fixture();
  // Estimator models must match the configured partition queues.
  EXPECT_THROW(FigureTenScheduler(
                   f.config, make_paper_estimator({1, 2}, 8, Megabytes{4096.0}, 16,
                                                  &f.catalog, &f.translation)),
               InvalidArgument);
}

TEST(Figure10, GpuDisabledRoutesEverythingAnswerableToCpu) {
  Fixture f;
  f.config.enable_gpu = false;
  f.config.gpu_partitions.clear();
  FigureTenScheduler sched(
      f.config, make_paper_estimator({}, 8, Megabytes{4096.0}, 16, &f.catalog,
                                     &f.translation));
  for (int i = 0; i < 10; ++i) {
    const Placement p = sched.schedule(expensive_cpu_query(), Seconds{});
    EXPECT_EQ(p.queue.kind, QueueRef::kCpu);
  }
}

TEST(Figure10, CpuDisabledRoutesEverythingToGpu) {
  Fixture f;
  f.config.enable_cpu = false;
  auto sched = f.scheduler();
  for (int i = 0; i < 10; ++i) {
    const Placement p = sched.schedule(cheap_cpu_query(), Seconds{});
    EXPECT_EQ(p.queue.kind, QueueRef::kGpu);
  }
}

}  // namespace
}  // namespace holap
