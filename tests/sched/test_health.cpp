// Partition fault tolerance: the circuit breaker, the health state
// machine, estimator degradation, and the scheduler's candidate gate.
#include "sched/health.hpp"

#include <gtest/gtest.h>

#include "sched/catalog.hpp"
#include "sched/scheduler.hpp"

namespace holap {
namespace {

HealthPolicy tight_policy() {
  HealthPolicy p;
  p.degrade_streak = 2;
  p.restore_streak = 2;
  p.breaker_window = 4;
  p.breaker_failures = 2;
  p.breaker_cooldown = Seconds{1.0};
  p.half_open_successes = 2;
  return p;
}

TEST(CircuitBreaker, OpensAtFailureThresholdInWindow) {
  CircuitBreaker b(tight_policy());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.record_failure(Seconds{0.1});
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.record_failure(Seconds{0.2});
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.transitions(), 1u);
}

TEST(CircuitBreaker, SuccessesKeepFailuresBelowThreshold) {
  // Window 4, threshold 2: a failure rate of one in four keeps every
  // sliding window below the threshold — the breaker never trips.
  CircuitBreaker b(tight_policy());
  for (int i = 0; i < 8; ++i) {
    b.record_failure(Seconds{0.1 * (i + 1)});
    for (int s = 0; s < 3; ++s) b.record_success();
    ASSERT_EQ(b.state(), CircuitBreaker::State::kClosed) << "round " << i;
  }
  EXPECT_EQ(b.transitions(), 0u);
}

TEST(CircuitBreaker, CooldownOpensProbeThenSuccessesClose) {
  CircuitBreaker b(tight_policy());
  b.trip(Seconds{1.0});
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.refresh(Seconds{1.5}));  // cool-down not elapsed
  EXPECT_TRUE(b.refresh(Seconds{2.0}));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  b.record_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  b.record_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenFailureReopensWithFreshCooldown) {
  CircuitBreaker b(tight_policy());
  b.trip(Seconds{0.0});
  ASSERT_TRUE(b.refresh(Seconds{1.0}));
  b.record_failure(Seconds{1.2});  // probe failed
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.refresh(Seconds{2.0}));  // cool-down restarted at 1.2
  EXPECT_TRUE(b.refresh(Seconds{2.2}));
}

TEST(HealthMonitor, OverrunStreakDegradesGoodStreakRestores) {
  PartitionHealthMonitor m(2, tight_policy());
  const QueueRef gpu0{QueueRef::kGpu, 0};
  // Overruns: actual far past estimated * error_ratio + error_slack.
  m.on_measured(gpu0, Seconds{0.01}, Seconds{0.5});
  EXPECT_EQ(m.health(gpu0), PartitionHealth::kHealthy);
  m.on_measured(gpu0, Seconds{0.01}, Seconds{0.5});
  EXPECT_EQ(m.health(gpu0), PartitionHealth::kDegraded);
  EXPECT_DOUBLE_EQ(m.multiplier(gpu0), tight_policy().degraded_multiplier);
  // The other partitions are untouched.
  EXPECT_EQ(m.health({QueueRef::kGpu, 1}), PartitionHealth::kHealthy);
  EXPECT_EQ(m.health({QueueRef::kCpu, 0}), PartitionHealth::kHealthy);
  // Good completions restore.
  m.on_measured(gpu0, Seconds{0.01}, Seconds{0.01});
  m.on_measured(gpu0, Seconds{0.01}, Seconds{0.01});
  EXPECT_EQ(m.health(gpu0), PartitionHealth::kHealthy);
  EXPECT_DOUBLE_EQ(m.multiplier(gpu0), 1.0);
}

TEST(HealthMonitor, ErrorSlackAbsorbsConstantOverheadOnFastQueries) {
  // 1 ms estimated, 15 ms actual: a huge ratio, but within the absolute
  // slack (20 ms default-ish; tight_policy keeps the default 0.02).
  PartitionHealthMonitor m(1, tight_policy());
  const QueueRef gpu0{QueueRef::kGpu, 0};
  for (int i = 0; i < 10; ++i) {
    m.on_measured(gpu0, Seconds{0.001}, Seconds{0.015});
  }
  EXPECT_EQ(m.health(gpu0), PartitionHealth::kHealthy);
}

TEST(HealthMonitor, CrashFailsThenCooldownProbesThenSuccessesRecover) {
  PartitionHealthMonitor m(2, tight_policy());
  const QueueRef gpu1{QueueRef::kGpu, 1};
  m.on_crash(gpu1, Seconds{5.0});
  EXPECT_EQ(m.health(gpu1), PartitionHealth::kFailed);
  EXPECT_FALSE(m.schedulable(gpu1, Seconds{5.5}));
  EXPECT_EQ(m.fault_count(gpu1), 1u);
  // Cool-down (1 s) elapses: schedulable() promotes to kRecovering.
  EXPECT_TRUE(m.schedulable(gpu1, Seconds{6.0}));
  EXPECT_EQ(m.health(gpu1), PartitionHealth::kRecovering);
  EXPECT_DOUBLE_EQ(m.multiplier(gpu1), tight_policy().degraded_multiplier);
  // half_open_successes good completions close the breaker.
  m.on_measured(gpu1, Seconds{0.01}, Seconds{0.01});
  m.on_measured(gpu1, Seconds{0.01}, Seconds{0.01});
  EXPECT_EQ(m.health(gpu1), PartitionHealth::kHealthy);
  EXPECT_GE(m.breaker_transitions(gpu1), 3u);  // closed->open->half->closed
}

TEST(HealthMonitor, ExplicitRecoverySkipsTheCooldown) {
  PartitionHealthMonitor m(1, tight_policy());
  const QueueRef gpu0{QueueRef::kGpu, 0};
  m.on_crash(gpu0, Seconds{10.0});
  m.on_recovered(gpu0, Seconds{10.1});
  EXPECT_EQ(m.health(gpu0), PartitionHealth::kRecovering);
  EXPECT_TRUE(m.schedulable(gpu0, Seconds{10.1}));
}

TEST(HealthMonitor, FaultStreakOpensBreakerLikeACrash) {
  PartitionHealthMonitor m(1, tight_policy());
  const QueueRef cpu{QueueRef::kCpu, 0};
  m.on_fault(cpu, Seconds{0.1});
  EXPECT_EQ(m.health(cpu), PartitionHealth::kHealthy);
  m.on_fault(cpu, Seconds{0.2});  // breaker_failures = 2
  EXPECT_EQ(m.health(cpu), PartitionHealth::kFailed);
  EXPECT_FALSE(m.schedulable(cpu, Seconds{0.3}));
}

// ---------------------------------------------------------------------------
// Estimator degradation

struct EstimatorFixture {
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  VirtualTranslationModel translation{schema, 1000.0};

  CostEstimator estimator() const {
    return make_paper_estimator({1, 1, 2, 2, 4, 4}, 8, Megabytes{4096.0}, 16,
                                &catalog, &translation);
  }
};

Query mid_query() {
  Query q;
  q.conditions.push_back({0, 2, 0, 399, {}, {}});
  q.conditions.push_back({1, 2, 0, 79, {}, {}});
  q.measures = {12};
  return q;
}

TEST(EstimatorDegradation, EstimateIsMonotoneInTheMultiplier) {
  // Property: for every partition, estimate() is non-decreasing in the
  // degradation multiplier, and other partitions are unaffected.
  EstimatorFixture f;
  auto est = f.estimator();
  const Query q = mid_query();
  const CostEstimate base = est.estimate(q);
  ASSERT_TRUE(base.cpu.has_value());
  const std::vector<double> multipliers = {1.0, 1.25, 2.0, 4.0, 16.0};
  for (int queue = 0; queue < est.gpu_queue_count(); ++queue) {
    const QueueRef ref{QueueRef::kGpu, queue};
    Seconds prev{};
    for (double mult : multipliers) {
      est.set_degradation(ref, mult);
      const CostEstimate e = est.estimate(q);
      EXPECT_GE(e.gpu[static_cast<std::size_t>(queue)].value(),
                prev.value());
      EXPECT_NEAR(e.gpu[static_cast<std::size_t>(queue)].value(),
                  base.gpu[static_cast<std::size_t>(queue)].value() * mult,
                  1e-12);
      // Untouched partitions keep their base estimates.
      EXPECT_NEAR(e.cpu->value(), base.cpu->value(), 1e-15);
      const int other = (queue + 1) % est.gpu_queue_count();
      EXPECT_NEAR(e.gpu[static_cast<std::size_t>(other)].value(),
                  base.gpu[static_cast<std::size_t>(other)].value(), 1e-15);
      prev = e.gpu[static_cast<std::size_t>(queue)];
    }
    est.set_degradation(ref, 1.0);
  }
  // CPU degradation mirrors the GPU behaviour.
  est.set_degradation({QueueRef::kCpu, 0}, 3.0);
  const CostEstimate e = est.estimate(q);
  EXPECT_NEAR(e.cpu->value(), base.cpu->value() * 3.0, 1e-12);
}

TEST(EstimatorDegradation, InvalidMultiplierThrows) {
  EstimatorFixture f;
  auto est = f.estimator();
  EXPECT_THROW(est.set_degradation({QueueRef::kGpu, 0}, 0.5),
               InvalidArgument);
  EXPECT_THROW(est.set_degradation({QueueRef::kGpu, 99}, 2.0),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Scheduler integration: the candidate gate and ledger balance

/// Records every candidate set choose() is offered; places on the first.
class RecordingScheduler final : public QueueingScheduler {
 public:
  using QueueingScheduler::QueueingScheduler;
  const char* name() const override { return "recording"; }

  mutable std::vector<std::vector<QueueRef>> candidate_sets;

 protected:
  std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds /*deadline*/) const override {
    std::vector<QueueRef> refs;
    refs.reserve(candidates.size());
    for (const PartitionResponse& c : candidates) refs.push_back(c.ref);
    candidate_sets.push_back(std::move(refs));
    return candidates.front().ref;
  }
};

struct SchedFixture {
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog{paper_model_dimensions(), {0, 1, 2, 3}};
  VirtualTranslationModel translation{schema, 1000.0};
  SchedulerConfig config;

  SchedFixture() {
    config.deadline = Seconds{0.25};
    config.fault_tolerance.enabled = true;
    config.fault_tolerance.health = tight_policy();
  }

  template <typename Sched = FigureTenScheduler>
  Sched scheduler() const {
    return Sched(config,
                 make_paper_estimator(config.gpu_partitions, 8,
                                      Megabytes{4096.0}, 16, &catalog,
                                      &translation));
  }
};

Query expensive_query() {
  Query q;
  q.conditions.push_back({0, 3, 0, 1599, {}, {}});
  q.measures = {12};
  return q;
}

TEST(FaultTolerantScheduler, DisabledConfigExposesNoMonitor) {
  SchedFixture f;
  f.config.fault_tolerance.enabled = false;
  auto sched = f.scheduler();
  EXPECT_EQ(sched.health_monitor(), nullptr);
  EXPECT_EQ(sched.retry_policy(), nullptr);
}

TEST(FaultTolerantScheduler, EnabledConfigExposesMonitorAndPolicy) {
  SchedFixture f;
  auto sched = f.scheduler();
  ASSERT_NE(sched.health_monitor(), nullptr);
  EXPECT_EQ(sched.health_monitor()->gpu_queue_count(), 6);
  ASSERT_NE(sched.retry_policy(), nullptr);
  EXPECT_EQ(sched.retry_policy()->max_attempts,
            f.config.fault_tolerance.retry.max_attempts);
}

TEST(FaultTolerantScheduler, FailedPartitionsNeverReachChoose) {
  SchedFixture f;
  auto sched = f.scheduler<RecordingScheduler>();
  PartitionHealthMonitor* monitor = sched.health_monitor();
  ASSERT_NE(monitor, nullptr);
  monitor->on_crash({QueueRef::kGpu, 0}, Seconds{0.0});
  monitor->on_crash({QueueRef::kCpu, 0}, Seconds{0.0});
  for (int i = 0; i < 8; ++i) {
    const Placement p = sched.schedule(expensive_query(), Seconds{0.1});
    EXPECT_FALSE(p.rejected);
  }
  ASSERT_FALSE(sched.candidate_sets.empty());
  for (const auto& set : sched.candidate_sets) {
    ASSERT_FALSE(set.empty());
    for (const QueueRef& ref : set) {
      EXPECT_FALSE(ref.kind == QueueRef::kGpu && ref.index == 0);
      EXPECT_NE(ref.kind, QueueRef::kCpu);
    }
  }
}

TEST(FaultTolerantScheduler, AllPartitionsFailedRejectsInsteadOfPlacing) {
  SchedFixture f;
  auto sched = f.scheduler();
  PartitionHealthMonitor* monitor = sched.health_monitor();
  monitor->on_crash({QueueRef::kCpu, 0}, Seconds{0.0});
  for (int i = 0; i < 6; ++i) {
    monitor->on_crash({QueueRef::kGpu, i}, Seconds{0.0});
  }
  const Placement p = sched.schedule(expensive_query(), Seconds{0.1});
  EXPECT_TRUE(p.rejected);
  // The ledger stays untouched for a rejected query.
  EXPECT_EQ(sched.cpu_clock(), Seconds{});
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sched.gpu_clock(i), Seconds{});
}

TEST(FaultTolerantScheduler, CooldownRestoresCrashedPartition) {
  SchedFixture f;
  auto sched = f.scheduler<RecordingScheduler>();
  sched.health_monitor()->on_crash({QueueRef::kGpu, 0}, Seconds{0.0});
  // Past the 1 s cool-down the partition probes (kRecovering) and is a
  // candidate again.
  sched.schedule(expensive_query(), Seconds{2.0});
  bool saw_gpu0 = false;
  for (const QueueRef& ref : sched.candidate_sets.back()) {
    saw_gpu0 |= ref.kind == QueueRef::kGpu && ref.index == 0;
  }
  EXPECT_TRUE(saw_gpu0);
  EXPECT_EQ(sched.health_monitor()->health({QueueRef::kGpu, 0}),
            PartitionHealth::kRecovering);
}

TEST(FaultTolerantScheduler, DegradedPartitionSchedulableAtInflatedCost) {
  SchedFixture f;
  auto sched = f.scheduler();
  // Degrade GPU queue 0 (the slowest class) via overrun streaks.
  PartitionHealthMonitor* monitor = sched.health_monitor();
  monitor->on_measured({QueueRef::kGpu, 0}, Seconds{0.01}, Seconds{1.0});
  monitor->on_measured({QueueRef::kGpu, 0}, Seconds{0.01}, Seconds{1.0});
  ASSERT_EQ(monitor->health({QueueRef::kGpu, 0}), PartitionHealth::kDegraded);
  // An expensive query normally lands on queue 0 (slowest feasible); the
  // inflated estimate must still be an honest commitment on the ledger.
  const Placement p = sched.schedule(expensive_query(), Seconds{});
  ASSERT_EQ(p.queue.kind, QueueRef::kGpu);
  EXPECT_NEAR(sched.gpu_clock(p.queue.index).value(),
              p.processing_est.value(), 1e-12);
}

TEST(FaultTolerantScheduler, LedgerBalancesAfterFaultDrain) {
  // Schedule a batch with fault tolerance on, crash a partition, then
  // drain everything through on_shed: every clock returns to zero —
  // exactly the state of a fresh scheduler.
  SchedFixture f;
  auto sched = f.scheduler();
  struct Committed {
    QueueRef ref;
    Seconds processing;
    Seconds translation;
  };
  std::vector<Committed> committed;
  for (int i = 0; i < 12; ++i) {
    const Placement p = sched.schedule(expensive_query(), Seconds{});
    ASSERT_FALSE(p.rejected);
    committed.push_back({p.queue, p.processing_est,
                         p.translate ? p.translation_est : Seconds{}});
  }
  sched.health_monitor()->on_crash({QueueRef::kGpu, 0}, Seconds{0.0});
  for (const Committed& c : committed) {
    sched.on_shed(c.ref, c.processing, c.translation);
  }
  EXPECT_NEAR(sched.cpu_clock().value(), 0.0, 1e-9);
  EXPECT_NEAR(sched.translation_clock().value(), 0.0, 1e-9);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(sched.gpu_clock(i).value(), 0.0, 1e-9) << "queue " << i;
  }
}

TEST(RetryBackoff, DoublesUnclampedThenSaturatesAtTheCap) {
  RetryPolicy retry;
  retry.backoff_base = Seconds{0.01};
  // Small attempt counts follow the unclamped doubling series exactly.
  EXPECT_DOUBLE_EQ(retry.backoff_for(1).value(), 0.01);
  EXPECT_DOUBLE_EQ(retry.backoff_for(2).value(), 0.02);
  EXPECT_DOUBLE_EQ(retry.backoff_for(3).value(), 0.04);
  EXPECT_DOUBLE_EQ(retry.backoff_for(5).value(), 0.16);
  // At the cap (16 doublings by default) the exponent saturates: attempt
  // 17 is the first clamped one and every later attempt owes the same.
  const double ceiling = 0.01 * 65536.0;  // base * 2^16
  EXPECT_DOUBLE_EQ(retry.backoff_for(17).value(), ceiling);
  EXPECT_DOUBLE_EQ(retry.backoff_for(18).value(), ceiling);
  EXPECT_DOUBLE_EQ(retry.backoff_for(1000).value(), ceiling);
  // A tighter cap clamps earlier but leaves the pre-cap series alone.
  retry.max_backoff_doublings = 2;
  EXPECT_DOUBLE_EQ(retry.backoff_for(2).value(), 0.02);
  EXPECT_DOUBLE_EQ(retry.backoff_for(3).value(), 0.04);
  EXPECT_DOUBLE_EQ(retry.backoff_for(4).value(), 0.04);
  // A zero cap disables the doubling entirely.
  retry.max_backoff_doublings = 0;
  EXPECT_DOUBLE_EQ(retry.backoff_for(9).value(), 0.01);
  // Misuse is rejected, not silently absorbed.
  EXPECT_THROW(retry.backoff_for(0), InvalidArgument);
  retry.max_backoff_doublings = -1;
  EXPECT_THROW(retry.backoff_for(1), InvalidArgument);
}

TEST(HealthToString, CoversEveryState) {
  EXPECT_STREQ(to_string(PartitionHealth::kHealthy), "healthy");
  EXPECT_STREQ(to_string(PartitionHealth::kDegraded), "degraded");
  EXPECT_STREQ(to_string(PartitionHealth::kFailed), "failed");
  EXPECT_STREQ(to_string(PartitionHealth::kRecovering), "recovering");
}

}  // namespace
}  // namespace holap
