// Randomised property sweep over the scheduling machinery: many random
// (config, workload) pairs, each checked against invariants that must hold
// for EVERY policy and load:
//   - placements always name a real, enabled partition;
//   - queue clocks never run backwards;
//   - response estimates are never before the query's arrival, and always
//     at least the processing estimate away;
//   - before_deadline flags are consistent with T_D;
//   - the translation queue engages exactly for GPU-bound text queries.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "query/workload.hpp"
#include "sched/baselines.hpp"
#include "sched/catalog.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace holap {
namespace {

struct FuzzWorld {
  std::vector<Dimension> dims = paper_model_dimensions();
  TableSchema schema =
      make_star_schema(paper_model_dimensions(),
                       {"m0", "m1", "m2", "m3"}, {{1, 3}, {2, 3}});
  VirtualCubeCatalog catalog;
  VirtualTranslationModel translation;
  SchedulerConfig config;
  WorkloadConfig workload;

  explicit FuzzWorld(std::uint64_t seed)
      : catalog(paper_model_dimensions(), pick_levels(seed)),
        translation(schema, 1.0 + static_cast<double>(seed % 7) * 300.0) {
    SplitMix64 rng(seed);
    // Random but valid partitioning of <= 14 SMs.
    config.gpu_partitions.clear();
    int budget = 14;
    while (budget > 0 && config.gpu_partitions.size() < 8) {
      const int sms = static_cast<int>(
          rng.uniform_int(1, std::min<std::int64_t>(4, budget)));
      config.gpu_partitions.push_back(sms);
      budget -= sms;
      if (rng.bernoulli(0.25)) break;
    }
    config.deadline = Seconds{rng.uniform_real(0.01, 0.5)};
    config.enable_cpu = rng.bernoulli(0.8);
    config.enable_gpu = !config.enable_cpu || rng.bernoulli(0.8);
    if (!config.enable_gpu) config.gpu_partitions.clear();
    config.feedback = rng.bernoulli(0.5);
    config.prefer_fastest_feasible_gpu = rng.bernoulli(0.2);
    if (rng.bernoulli(0.3)) {
      config.modeled_gpu_dispatch = Seconds{rng.uniform_real(0.001, 0.02)};
    }

    workload.seed = rng.next();
    workload.text_probability = rng.uniform_real(0.0, 1.0);
    workload.mean_selectivity = rng.uniform_real(0.05, 0.9);
  }

  static std::vector<int> pick_levels(std::uint64_t seed) {
    SplitMix64 rng(seed * 77 + 1);
    std::vector<int> levels;
    for (int l = 0; l < 4; ++l) {
      if (rng.bernoulli(0.6)) levels.push_back(l);
    }
    if (levels.empty()) levels.push_back(1);
    return levels;
  }

  CostEstimator estimator() const {
    return make_paper_estimator(config.gpu_partitions, 8, Megabytes{4096.0}, 16,
                                &catalog, &translation);
  }
};

class SchedulerFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 const char*>> {};

TEST_P(SchedulerFuzz, InvariantsHoldOnRandomWorkloads) {
  const auto [seed, policy_name] = GetParam();
  FuzzWorld world(seed);
  auto policy = make_policy(policy_name, world.config, world.estimator());
  QueryGenerator gen(world.dims, world.schema, world.workload);

  SplitMix64 arrivals(seed + 5);
  Seconds now{};
  Seconds prev_cpu{}, prev_trans{};
  std::vector<Seconds> prev_gpu(world.config.gpu_partitions.size(), Seconds{});
  auto* queueing = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(queueing, nullptr);

  for (int i = 0; i < 120; ++i) {
    now += Seconds{arrivals.exponential(100.0)};
    const Query q = gen.next();
    const Placement p = policy->schedule(q, now);

    if (p.rejected) {
      // Rejection is only legal when the GPU is off and no cube covers.
      EXPECT_FALSE(world.config.enable_gpu);
      EXPECT_FALSE(world.catalog.can_answer(q));
      continue;
    }
    // Placement names an enabled partition.
    if (p.queue.kind == QueueRef::kCpu) {
      EXPECT_TRUE(world.config.enable_cpu);
      EXPECT_TRUE(world.catalog.can_answer(q));
      EXPECT_FALSE(p.translate);  // translation is GPU-side only
    } else {
      EXPECT_TRUE(world.config.enable_gpu);
      EXPECT_GE(p.queue.index, 0);
      EXPECT_LT(p.queue.index,
                static_cast<int>(world.config.gpu_partitions.size()));
      EXPECT_EQ(p.translate, q.needs_translation());
    }
    // Response geometry.
    EXPECT_GE(p.processing_est, Seconds{});
    EXPECT_GE(p.response_est.value(),
              (now + p.processing_est).value() - 1e-12);
    EXPECT_EQ(p.before_deadline,
              (now + world.config.deadline - p.response_est).value() > 0.0);

    // Clocks never run backwards.
    EXPECT_GE(queueing->cpu_clock().value(), prev_cpu.value() - 1e-12);
    EXPECT_GE(queueing->translation_clock().value(),
              prev_trans.value() - 1e-12);
    prev_cpu = queueing->cpu_clock();
    prev_trans = queueing->translation_clock();
    for (std::size_t g = 0; g < prev_gpu.size(); ++g) {
      const Seconds clock = queueing->gpu_clock(static_cast<int>(g));
      EXPECT_GE(clock.value(), prev_gpu[g].value() - 1e-12)
          << "gpu queue " << g;
      prev_gpu[g] = clock;
    }

    // Positive-error feedback must never rewind a clock either.
    if (i % 7 == 0) {
      policy->on_completed(p.queue, p.processing_est,
                           p.processing_est * 1.1);
      EXPECT_GE(queueing->cpu_clock().value(), prev_cpu.value() - 1e-12);
      prev_cpu = queueing->cpu_clock();
      for (std::size_t g = 0; g < prev_gpu.size(); ++g) {
        prev_gpu[g] = std::min(prev_gpu[g],
                               queueing->gpu_clock(static_cast<int>(g)));
      }
    }
  }
}

TEST_P(SchedulerFuzz, BatchedAdmissionKeepsInvariantsAndBalancesTheLedger) {
  // The batched twin of the sweep above: random batch sizes (including 0
  // and 1) through schedule_batch, the same per-placement geometry, plus
  // the batch-only invariants — clocks advance monotonically across a
  // commit, and rollback_batch returns every clock family to its
  // pre-batch value (the clock-ledger balance the analyzer's batch-ledger
  // rule guards structurally).
  const auto [seed, policy_name] = GetParam();
  FuzzWorld world(seed);
  SplitMix64 knobs(seed * 13 + 2);
  if (knobs.bernoulli(0.4)) {
    // Admission control in the mix: shed placements must stay delta-free.
    world.config.admission.mode = AdmissionControl::Mode::kReject;
    world.config.admission.slack_factor = knobs.uniform_real(0.0, 0.5);
  }
  auto policy = make_policy(policy_name, world.config, world.estimator());
  auto* queueing = dynamic_cast<QueueingScheduler*>(policy.get());
  ASSERT_NE(queueing, nullptr);
  QueryGenerator gen(world.dims, world.schema, world.workload);

  const auto snapshot = [&] {
    std::vector<double> clocks{queueing->cpu_clock().value(),
                               queueing->translation_clock().value()};
    for (int g = 0; g < queueing->gpu_queue_count(); ++g) {
      clocks.push_back(queueing->gpu_clock(g).value());
    }
    return clocks;
  };

  SplitMix64 arrivals(seed + 11);
  Seconds now{};
  std::uint64_t next_id = 0;
  std::size_t rollbacks = 0;
  for (int round = 0; round < 40; ++round) {
    now += Seconds{arrivals.exponential(60.0)};
    const auto n = static_cast<std::size_t>(arrivals.uniform_int(0, 12));
    const std::vector<Query> batch = gen.batch(n);
    const std::vector<double> before = snapshot();

    const BatchPlacement placed = policy->schedule_batch(batch, now, next_id);
    next_id += n;
    ASSERT_EQ(placed.placements.size(), n);

    std::size_t admitted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Placement& p = placed.placements[i];
      if (p.rejected) {
        EXPECT_FALSE(world.config.enable_gpu);
        EXPECT_FALSE(world.catalog.can_answer(batch[i]));
        continue;
      }
      if (p.shed_at_admission) {
        EXPECT_EQ(world.config.admission.mode,
                  AdmissionControl::Mode::kReject);
        continue;
      }
      ++admitted;
      if (p.queue.kind == QueueRef::kCpu) {
        EXPECT_TRUE(world.config.enable_cpu);
        EXPECT_FALSE(p.translate);
      } else {
        EXPECT_TRUE(world.config.enable_gpu);
        EXPECT_GE(p.queue.index, 0);
        EXPECT_LT(p.queue.index,
                  static_cast<int>(world.config.gpu_partitions.size()));
        EXPECT_EQ(p.translate, batch[i].needs_translation());
      }
      EXPECT_GE(p.processing_est, Seconds{});
      EXPECT_GE(p.response_est.value(),
                (now + p.processing_est).value() - 1e-12);
      EXPECT_EQ(p.before_deadline,
                (now + world.config.deadline - p.response_est).value() > 0.0);
    }
    EXPECT_EQ(placed.admitted, admitted);

    // A commit only ever ADDS load: no clock runs backwards.
    const std::vector<double> after = snapshot();
    for (std::size_t c = 0; c < before.size(); ++c) {
      EXPECT_GE(after[c], before[c] - 1e-12) << "clock " << c;
    }

    if (arrivals.bernoulli(0.35)) {
      policy->rollback_batch(placed);
      ++rollbacks;
      const std::vector<double> restored = snapshot();
      for (std::size_t c = 0; c < before.size(); ++c) {
        EXPECT_NEAR(restored[c], before[c], 1e-9) << "clock " << c;
      }
    } else if (admitted > 0 && arrivals.bernoulli(0.5)) {
      // Interleave completion feedback so later batches stage from
      // feedback-corrected clocks, like the live executor does.
      for (const Placement& p : placed.placements) {
        if (p.rejected || p.shed_at_admission) continue;
        policy->on_completed(p.queue, p.processing_est,
                             p.processing_est *
                                 arrivals.uniform_real(0.5, 1.5));
        break;
      }
    }
  }
  EXPECT_EQ(queueing->counters().batch_rollbacks, rollbacks);
  EXPECT_EQ(queueing->counters().batch_commits, 40u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, SchedulerFuzz,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                         6ull, 7ull, 8ull),
                       ::testing::Values("figure10", "MCT", "MET",
                                         "round-robin")),
    [](const auto& suite_info) {
      return std::string(std::get<1>(suite_info.param)) == "round-robin"
                 ? "rr_s" + std::to_string(std::get<0>(suite_info.param))
                 : std::string(std::get<1>(suite_info.param)) + "_s" +
                       std::to_string(std::get<0>(suite_info.param));
    });

// Batched ingest under a partition crash, on the deterministic sim clock:
// randomized batch shapes must not cost a single typed resolution, and a
// seeded run must replay bit-identically.
TEST(BatchedIngestFuzz, CrashUnderBatchedAdmissionResolvesEveryQueryTyped) {
  ScenarioOptions opts;
  opts.fault_tolerance.enabled = true;
  opts.fault_tolerance.retry.deadline_slack_gate = -100.0;
  const PaperScenario s{opts};
  const auto queries = s.make_workload(300);

  for (const std::size_t batch : {std::size_t{2}, std::size_t{5},
                                  std::size_t{9}}) {
    auto run_once = [&] {
      auto policy = s.make_policy();
      FaultInjector fault;
      fault.schedule_fault({TimedFault::Kind::kCrash,
                            QueueRef{QueueRef::kGpu, 4}, Seconds{1.0}, 1.0});
      fault.schedule_fault({TimedFault::Kind::kRecover,
                            QueueRef{QueueRef::kGpu, 4}, Seconds{1.6}, 1.0});
      SimConfig config;
      config.arrival_rate = 600.0;
      config.ingest_batch = batch;
      config.ingest_flush_timeout = Seconds{0.004};
      config.record_trace = true;
      config.fault = &fault;
      return run_simulation(*policy, queries, config);
    };
    const SimResult r = run_once();
    // Conservation: every query resolves to exactly one typed outcome,
    // crash or no crash, whatever the batch boundaries were.
    EXPECT_EQ(r.completed + r.rejected + r.shed_at_admission +
                  r.exhausted_retries,
              queries.size())
        << "batch " << batch;
    EXPECT_GT(r.partition_faults, 0u) << "batch " << batch;
    for (const QueryTrace& t : r.trace) {
      const int resolutions = (t.completed > Seconds{} ? 1 : 0) +
                              (t.exhausted ? 1 : 0) + (t.rejected ? 1 : 0) +
                              (t.shed ? 1 : 0);
      EXPECT_EQ(resolutions, 1) << "query " << t.index << " batch " << batch;
      // Placement-time feasibility bookkeeping survives batching: the
      // recorded slack is exactly T_D − T_R for the recorded estimate.
      if (t.completed > Seconds{} || t.exhausted) {
        EXPECT_NEAR(t.slack_est.value(),
                    (t.submitted + s.options().deadline - t.response_est)
                        .value(),
                    1e-9)
            << "query " << t.index;
      }
    }
    // Determinism: flush events ride the sim clock, so a rerun replays
    // the exact same batches, faults and outcomes.
    const SimResult again = run_once();
    EXPECT_DOUBLE_EQ(r.makespan.value(), again.makespan.value());
    EXPECT_EQ(r.completed, again.completed);
    EXPECT_EQ(r.failed_over, again.failed_over);
    EXPECT_EQ(r.exhausted_retries, again.exhausted_retries);
    EXPECT_EQ(r.retries, again.retries);
    EXPECT_EQ(r.partition_faults, again.partition_faults);
    EXPECT_EQ(r.met_deadline, again.met_deadline);
  }
}

}  // namespace
}  // namespace holap
