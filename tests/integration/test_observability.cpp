// End-to-end observability: a simulated workload must leave behind a
// complete, internally consistent trace — one full lifecycle chain per
// completed query, counters that reconcile with SimResult, a histogram
// holding exactly the completed latencies, and a JSONL export that
// round-trips bit-exactly. All of it deterministic on the sim clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "obs/export.hpp"
#include "sim/scenario.hpp"

namespace holap {
namespace {

// Coarse cubes only + all-text conditions: fine queries MUST take the GPU
// path and cross the translation queue, so every span kind appears.
ScenarioOptions traced_options() {
  ScenarioOptions opts;
  opts.cube_levels = {0, 1};
  opts.text_probability = 1.0;
  opts.workload_seed = 4242;
  return opts;
}

struct TracedRun {
  SimResult result;
  std::vector<TraceSpan> spans;
};

TracedRun run_traced(std::size_t n_queries) {
  const PaperScenario scenario{traced_options()};
  const auto queries = scenario.make_workload(n_queries);
  auto policy = scenario.make_policy();
  TraceRecorder recorder;
  SimConfig config;
  config.closed_clients = 8;
  config.recorder = &recorder;
  TracedRun run;
  run.result = run_simulation(*policy, queries, config);
  run.spans = recorder.snapshot();
  return run;
}

TEST(Observability, EveryCompletedQueryHasAFullSpanChain) {
  const TracedRun run = run_traced(300);
  ASSERT_EQ(run.result.completed, 300u);
  ASSERT_EQ(run.result.rejected, 0u);
  // The workload must actually exercise both paths and translation.
  EXPECT_GT(run.result.cpu_queries, 0u);
  EXPECT_GT(run.result.gpu_queries, 0u);
  EXPECT_GT(run.result.translated_queries, 0u);

  std::map<std::uint64_t, std::vector<TraceSpan>> by_query;
  for (const TraceSpan& s : run.spans) by_query[s.query_id].push_back(s);
  ASSERT_EQ(by_query.size(), 300u);

  std::size_t translated_chains = 0;
  for (const auto& [id, chain] : by_query) {
    EXPECT_TRUE(is_complete_span_chain(chain)) << "query " << id;
    EXPECT_EQ(chain.front().kind, SpanKind::kEnqueue);
    EXPECT_EQ(chain.back().kind, SpanKind::kComplete);
    // Stage times are causally ordered on the sim clock and every span is
    // inside the run.
    Seconds prev_end{};
    for (const TraceSpan& s : chain) {
      EXPECT_LE(s.start, s.end) << "query " << id;
      EXPECT_GE(s.start.value(), prev_end.value() - 1e-12) << "query " << id;
      EXPECT_LE(s.end.value(), run.result.makespan.value() + 1e-9)
          << "query " << id;
      prev_end = std::max(prev_end, s.end);
    }
    // The terminal span carries the feedback signal: measured completion
    // and the realised deadline slack.
    const TraceSpan& done = chain.back();
    EXPECT_DOUBLE_EQ(done.end.value(), done.measured_response.value());
    EXPECT_GT(done.estimated_response, Seconds{});
    if (chain.size() == 5) {
      EXPECT_EQ(chain[1].kind, SpanKind::kTranslate);
      EXPECT_EQ(chain.front().queue.kind, QueueRef::kGpu);
      ++translated_chains;
    }
  }
  EXPECT_EQ(translated_chains, run.result.translated_queries);
}

TEST(Observability, CountersAndHistogramReconcileWithSimResult) {
  const TracedRun run = run_traced(250);
  const SimResult& r = run.result;

  // Histogram holds exactly the completed latencies.
  EXPECT_EQ(r.latency_histogram.count(), r.completed);
  EXPECT_NEAR(r.latency_histogram.mean().value(), r.mean_latency.value(),
              1e-9);
  EXPECT_LE(r.p50_latency, r.p95_latency);
  EXPECT_LE(r.p95_latency, r.p99_latency);
  // p50/p99 report exact sample percentiles; the histogram's estimate
  // must agree within one log-spaced bucket (factor 10^(1/8)).
  const double width = std::pow(10.0, 1.0 / 8.0) * 1.01;
  EXPECT_LE(r.latency_histogram.percentile(50.0), r.p50_latency * width);
  EXPECT_GE(r.latency_histogram.percentile(50.0), r.p50_latency / width);

  // Fixed partition order: cpu, translation, dispatch0, gpu0..gpu5.
  ASSERT_EQ(r.partitions.size(), 3u + r.gpu_utilization.size());
  EXPECT_EQ(r.partitions[0].name, "cpu");
  EXPECT_EQ(r.partitions[1].name, "translation");
  EXPECT_EQ(r.partitions[2].name, "dispatch0");

  // Stage counters reconcile with the aggregate result...
  EXPECT_EQ(r.partitions[0].completed, r.cpu_queries);
  EXPECT_EQ(r.partitions[1].completed, r.translated_queries);
  EXPECT_EQ(r.partitions[2].completed, r.gpu_queries);
  std::size_t gpu_completed = 0;
  for (std::size_t i = 3; i < r.partitions.size(); ++i) {
    EXPECT_EQ(r.partitions[i].name,
              "gpu" + std::to_string(i - 3));
    gpu_completed += r.partitions[i].completed;
  }
  EXPECT_EQ(gpu_completed, r.gpu_queries);

  for (const PartitionCounters& c : r.partitions) {
    // ...every stage drained, never exceeded its serial capacity, and
    // utilization agrees with the simulator's own accounting.
    EXPECT_EQ(c.depth, 0u) << c.name;
    EXPECT_EQ(c.enqueued, c.completed) << c.name;
    EXPECT_GE(c.max_depth, c.completed > 0 ? 1u : 0u) << c.name;
    EXPECT_LE(c.utilization(r.makespan), 1.0 + 1e-9) << c.name;
  }
  EXPECT_NEAR(r.partitions[0].utilization(r.makespan), r.cpu_utilization,
              1e-9);
  EXPECT_NEAR(r.partitions[1].utilization(r.makespan),
              r.translation_utilization, 1e-9);
  for (std::size_t g = 0; g < r.gpu_utilization.size(); ++g) {
    EXPECT_NEAR(r.partitions[3 + g].utilization(r.makespan),
                r.gpu_utilization[g], 1e-9)
        << "gpu" << g;
  }
}

TEST(Observability, JsonlExportRoundTripsTheWholeTrace) {
  const TracedRun run = run_traced(120);
  std::stringstream ss;
  write_jsonl(ss, run.spans);
  const std::vector<TraceSpan> back = read_jsonl(ss);
  ASSERT_EQ(back.size(), run.spans.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], run.spans[i]) << "span " << i;  // bit-exact
  }
  // The summary renders from the same artefacts without touching the sim.
  std::ostringstream os;
  print_trace_summary(os, back, run.result.latency_histogram,
                      run.result.partitions, run.result.makespan);
  EXPECT_NE(os.str().find("complete"), std::string::npos);
  EXPECT_NE(os.str().find("cpu"), std::string::npos);
}

TEST(Observability, TraceIsDeterministicAcrossRuns) {
  // Same queries + same config → the identical span stream, because every
  // timestamp comes from the sim clock, never the wall clock.
  const TracedRun a = run_traced(150);
  const TracedRun b = run_traced(150);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i], b.spans[i]) << "span " << i;
  }
  EXPECT_EQ(a.result.makespan, b.result.makespan);
}

TEST(Observability, HistogramAndCountersPopulateWithoutRecorder) {
  const PaperScenario scenario{traced_options()};
  const auto queries = scenario.make_workload(50);
  auto policy = scenario.make_policy();
  SimConfig config;
  config.closed_clients = 8;  // no recorder attached
  const SimResult r = run_simulation(*policy, queries, config);
  EXPECT_EQ(r.completed, 50u);
  // The histogram and counters still populate — they are part of the
  // result, not the optional trace.
  EXPECT_EQ(r.latency_histogram.count(), 50u);
  EXPECT_FALSE(r.partitions.empty());
}

}  // namespace
}  // namespace holap
