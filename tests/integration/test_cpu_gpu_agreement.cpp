// The cross-engine correctness property: for any translated query, the CPU
// cube engine (pre-aggregated cells, any resolution, any thread count) and
// the simulated GPU table scan (raw rows, any stripe count) must produce
// identical answers. This is the invariant that makes hybrid scheduling
// transparent to the user.
#include <gtest/gtest.h>

#include "cube/cube_set.hpp"
#include "gpusim/scan.hpp"
#include "query/translator.hpp"
#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

struct System {
  FactTable table;
  DictionarySet dicts;
  CubeSet cubes;
  Translator translator;

  explicit System(std::size_t rows, std::uint64_t seed)
      : table([&] {
          GeneratorConfig config;
          config.rows = rows;
          config.seed = seed;
          config.zipf_skew = 0.8;
          config.text_levels = {{1, 3}, {2, 3}};
          return generate_fact_table(tiny_model_dimensions(), config);
        }()),
        dicts(DictionarySet::build_from_table(table)),
        cubes(table.schema().dimensions()),
        translator(table.schema(), dicts) {
    cubes.add_level_from_table(table, 3, 4, /*with_minmax=*/true);
    for (int level : {2, 1, 0}) cubes.add_level_by_rollup(level, 4);
  }
};

class AgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AgreementSweep, RandomWorkloadAgreesAcrossEngines) {
  System sys(1200, GetParam());
  WorkloadConfig wl;
  wl.seed = GetParam() * 31 + 7;
  wl.text_probability = 0.5;
  QueryGenerator gen(sys.table.schema().dimensions(), sys.table.schema(),
                     wl);
  for (int i = 0; i < 30; ++i) {
    Query q = gen.next();
    sys.translator.translate(q);
    const QueryAnswer cpu = sys.cubes.answer(q, 4);
    const QueryAnswer gpu = gpu_scan(sys.table, q, 7).answer;
    EXPECT_NEAR(cpu.value, gpu.value, 1e-6) << "query " << i;
    EXPECT_EQ(cpu.row_count, gpu.row_count) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Agreement, AllOperatorsAgree) {
  System sys(900, 42);
  for (const AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kAvg,
                         AggOp::kMin, AggOp::kMax}) {
    Query q;
    q.conditions.push_back({0, 2, 1, 5, {}, {}});
    q.conditions.push_back({1, 1, 0, 2, {}, {}});
    q.op = op;
    if (op != AggOp::kCount) q.measures = {12};
    const QueryAnswer cpu = sys.cubes.answer(q, 0);
    const QueryAnswer gpu = gpu_scan(sys.table, q, 4).answer;
    EXPECT_NEAR(cpu.value, gpu.value, 1e-6) << to_string(op);
    EXPECT_EQ(cpu.row_count, gpu.row_count);
  }
}

TEST(Agreement, TextQueriesAgreeAfterTranslation) {
  System sys(1000, 9);
  const int col = sys.table.schema().dimension_column(1, 3);
  const Dictionary& dict = sys.dicts.for_column(col);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {dict.decode(0), dict.decode(5), "absent string"};
  q.conditions.push_back(c);
  q.measures = {13};
  sys.translator.translate(q);
  const QueryAnswer cpu = sys.cubes.answer(q, 2);
  const QueryAnswer gpu = gpu_scan(sys.table, q, 14).answer;
  EXPECT_NEAR(cpu.value, gpu.value, 1e-9);
  EXPECT_EQ(cpu.row_count, gpu.row_count);
}

TEST(Agreement, ResolutionChoiceNeverChangesTheAnswer) {
  // Answer the same coarse query forcing each cube level in turn.
  System sys(800, 13);
  Query q;
  q.conditions.push_back({2, 0, 1, 1, {}, {}});
  q.measures = {12};
  const QueryAnswer reference = gpu_scan(sys.table, q, 1).answer;
  for (int level = 0; level <= 3; ++level) {
    CubeSet single(sys.table.schema().dimensions());
    single.add_level_from_table(sys.table, level, 0);
    const QueryAnswer a = single.answer(q, 0);
    EXPECT_NEAR(a.value, reference.value, 1e-6) << "level " << level;
    EXPECT_EQ(a.row_count, reference.row_count);
  }
}

}  // namespace
}  // namespace holap
