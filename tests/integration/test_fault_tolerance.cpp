// Partition fault tolerance on the real executor: the crash-during-
// dequeue race (worker parked mid-pop while the partition goes down),
// GPU<->CPU failover, retry-budget exhaustion and the shutdown race —
// every path must resolve the promise with a typed outcome.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "olap/async_executor.hpp"
#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

HybridOlapSystem make_system(bool fault_tolerance,
                             std::vector<int> gpu_partitions = {1, 1, 2, 2,
                                                                4, 4}) {
  GeneratorConfig gen;
  gen.rows = 400;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  config.gpu_partitions = std::move(gpu_partitions);
  config.fault_tolerance.enabled = fault_tolerance;
  // These tests park workers for wall-clock milliseconds before releasing
  // the fault; a non-negative slack gate would shed the retry for losing
  // its deadline to the park, which is not what is under test here.
  config.fault_tolerance.retry.deadline_slack_gate = -1000.0;
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

Query cheap_numeric_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

/// The partition the scheduler placed the (only) submitted query on,
/// recovered from the intake counters. Slot 0 = cpu, 1 = translation
/// (skipped: not a processing partition), 2 + i = gpu queue i.
std::optional<QueueRef> placed_partition(const AsyncHybridExecutor& ex) {
  const std::vector<PartitionCounters> counters = ex.partition_counters();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i == 1 || counters[i].enqueued == 0) continue;
    if (i == 0) return QueueRef{QueueRef::kCpu, 0};
    return QueueRef{QueueRef::kGpu, static_cast<int>(i - 2)};
  }
  return std::nullopt;
}

/// Spin until `injector` reports at least one worker parked at the gate —
/// the job has been dequeued and the worker is mid-pop.
void wait_for_parked_worker(const FaultInjector& injector) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (injector.workers_waiting() < 1 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(injector.workers_waiting(), 1);
}

TEST(FaultTolerance, CrashWhileWorkerParkedMidPopFailsOver) {
  HybridOlapSystem system = make_system(true);
  AsyncHybridExecutor executor(system);
  FaultInjector injector;
  executor.set_fault_injector(&injector);

  // Park the worker after it dequeues the job, then take its partition
  // down while it is parked: the down-check after the gate must see the
  // fault and fail the job over instead of executing on a dead partition.
  injector.hold_workers();
  const Query q = cheap_numeric_query();
  auto future = executor.submit(q);
  const std::optional<QueueRef> placed = placed_partition(executor);
  ASSERT_TRUE(placed.has_value());
  wait_for_parked_worker(injector);
  injector.set_partition_down(*placed, true);
  injector.release_workers();

  const ExecutionReport report = future.get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kFailedOver);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_FALSE(report.queue == *placed);
  const QueryAnswer oracle = system.answer_on_gpu(q);
  EXPECT_NEAR(report.answer.value, oracle.value, 1e-6);
  EXPECT_EQ(report.answer.row_count, oracle.row_count);

  EXPECT_EQ(executor.partition_failures(), 1u);
  EXPECT_EQ(executor.retries(), 1u);
  EXPECT_EQ(executor.failed_over(), 1u);
  EXPECT_EQ(executor.exhausted_retries(), 0u);
  // The crashed partition's gauges recorded the fault and the breaker trip.
  executor.shutdown();
  const std::vector<PartitionCounters> counters =
      executor.partition_counters();
  const std::size_t slot =
      placed->kind == QueueRef::kCpu
          ? 0
          : 2 + static_cast<std::size_t>(placed->index);
  EXPECT_EQ(counters[slot].failed, 1u);
  EXPECT_EQ(counters[slot].retried, 1u);
  EXPECT_EQ(counters[slot].health, "failed");
  EXPECT_GT(counters[slot].breaker_transitions, 0u);
}

TEST(FaultTolerance, DisabledFaultToleranceExhaustsOnFirstFault) {
  HybridOlapSystem system = make_system(false);
  AsyncHybridExecutor executor(system);
  FaultInjector injector;
  executor.set_fault_injector(&injector);

  injector.hold_workers();
  auto future = executor.submit(cheap_numeric_query());
  const std::optional<QueueRef> placed = placed_partition(executor);
  ASSERT_TRUE(placed.has_value());
  wait_for_parked_worker(injector);
  injector.set_partition_down(*placed, true);
  injector.release_workers();

  const ExecutionReport report = future.get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kExhaustedRetries);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(executor.partition_failures(), 1u);
  EXPECT_EQ(executor.retries(), 0u);
  EXPECT_EQ(executor.exhausted_retries(), 1u);
  EXPECT_EQ(executor.failed_over(), 0u);
}

TEST(FaultTolerance, RepeatedCrashesExhaustTheRetryBudget) {
  // Two processing partitions only (cpu + one 4-SM gpu queue), both down:
  // attempt 1 fails on the placement, attempt 2 fails over to the other
  // partition and fails there too, attempt 3's re-schedule finds no live
  // candidate — the default budget of 3 is spent and the job resolves
  // kExhaustedRetries, never an abandoned promise.
  HybridOlapSystem system = make_system(true, {4});
  AsyncHybridExecutor executor(system);
  FaultInjector injector;
  executor.set_fault_injector(&injector);

  injector.hold_workers();
  auto future = executor.submit(cheap_numeric_query());
  wait_for_parked_worker(injector);
  injector.set_partition_down({QueueRef::kCpu, 0}, true);
  injector.set_partition_down({QueueRef::kGpu, 0}, true);
  injector.release_workers();

  const ExecutionReport report = future.get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kExhaustedRetries);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(executor.exhausted_retries(), 1u);
  EXPECT_GE(executor.partition_failures(), 2u);
  EXPECT_EQ(executor.failed_over(), 0u);
  EXPECT_EQ(executor.completed(), 0u);
}

TEST(FaultTolerance, FailoverNeverRepeatsTranslation) {
  // A translated GPU-only text job that fails over re-schedules with
  // translation_cached: the text is already integers, so however many
  // placements the retry burns through, the translation partition sees
  // the query exactly once. Two equal 4-SM queues, both down up front —
  // the job translates, fails on its placement, fails over to the other
  // queue (routed directly, no second translation pass), fails there too
  // and exhausts its budget. Fully deterministic: no gates, no timing.
  HybridOlapSystem system = make_system(true, {4, 4});
  AsyncHybridExecutor executor(system);
  FaultInjector injector;
  executor.set_fault_injector(&injector);
  injector.set_partition_down({QueueRef::kGpu, 0}, true);
  injector.set_partition_down({QueueRef::kGpu, 1}, true);

  const int col = system.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {system.dictionaries().for_column(col).decode(1)};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 15, {}, {}});  // GPU-only resolution
  q.measures = {12};

  const ExecutionReport report = executor.submit(q).get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kExhaustedRetries);
  EXPECT_TRUE(report.translated);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(executor.partition_failures(), 2u);
  EXPECT_EQ(executor.retries(), 2u);
  EXPECT_EQ(executor.exhausted_retries(), 1u);
  executor.shutdown();
  // One translation pass total: every failover kept the integers.
  const std::vector<PartitionCounters> counters =
      executor.partition_counters();
  EXPECT_EQ(counters[1].enqueued, 1u);
  EXPECT_EQ(counters[1].completed, 1u);
  EXPECT_EQ(counters[2].failed + counters[3].failed, 2u);
}

TEST(FaultTolerance, ShutdownDuringRetryStillResolvesTyped) {
  // A worker discovers its partition down while a concurrent shutdown is
  // closing queues: whatever the retry lands on — a live partition, a
  // closed queue, an exhausted budget — the promise resolves typed.
  HybridOlapSystem system = make_system(true);
  std::future<ExecutionReport> future;
  FaultInjector injector;
  Query q = cheap_numeric_query();
  {
    AsyncHybridExecutor executor(system);
    executor.set_fault_injector(&injector);
    injector.hold_workers();
    future = executor.submit(q);
    const std::optional<QueueRef> placed = placed_partition(executor);
    ASSERT_TRUE(placed.has_value());
    wait_for_parked_worker(injector);
    injector.set_partition_down(*placed, true);
    std::thread closer([&executor] { executor.shutdown(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    injector.release_workers();
    closer.join();
  }
  const ExecutionReport report = future.get();
  EXPECT_TRUE(report.outcome == ExecutionOutcome::kFailedOver ||
              report.outcome == ExecutionOutcome::kExhaustedRetries ||
              report.outcome == ExecutionOutcome::kFailed)
      << "outcome: " << to_string(report.outcome);
  if (report.outcome == ExecutionOutcome::kFailedOver) {
    const QueryAnswer oracle = system.answer_on_gpu(q);
    EXPECT_NEAR(report.answer.value, oracle.value, 1e-6);
  }
}

}  // namespace
}  // namespace holap
