// Sustained-ingest integration: ShardedIngestFrontEnd feeding the async
// executor's batched admission path, end to end.
//
// One invariant rules every scenario: a submitted promise ALWAYS resolves
// with a typed ExecutionOutcome — under multi-producer storms, shard-full
// displacement, flush-timeout races, and shutdown mid-batch — and every
// completed answer matches the serial reference. The GateAdmitter stub
// makes the front-end's own mechanics (displacement rank, flush reasons,
// shard affinity) deterministic by parking the admit() consumer; the
// real-executor scenarios then prove the same contracts hold with actual
// scheduling, translation and partition workers behind the batches.
#include "olap/ingest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "olap/async_executor.hpp"
#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

HybridOlapSystem make_system(std::size_t rows = 800) {
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

Query cheap_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

/// BatchAdmitter stub that can park the calling aggregator at the admit()
/// door, so tests control exactly when a shard's consumer drains it.
/// Resolves every promise kCompleted — the contract the real executor
/// also honours.
class GateAdmitter : public BatchAdmitter {
 public:
  void admit(std::vector<IngestRequest> batch) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++batches_;
      queries_ += batch.size();
      arrived_.notify_all();
      while (held_) gate_.wait(lock);
    }
    for (IngestRequest& request : batch) {
      ExecutionReport report;
      report.outcome = ExecutionOutcome::kCompleted;
      request.promise.set_value(std::move(report));
    }
  }

  void hold() {
    std::lock_guard<std::mutex> lock(mutex_);
    held_ = true;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      held_ = false;
    }
    gate_.notify_all();
  }
  /// Block until `n` admit() calls have STARTED (parked calls count).
  void wait_for_batches(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (batches_ < n) arrived_.wait(lock);
  }
  std::size_t batches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return batches_;
  }
  std::size_t queries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queries_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::condition_variable gate_;
  bool held_ = false;
  std::size_t batches_ = 0;
  std::size_t queries_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic front-end mechanics (GateAdmitter).
// ---------------------------------------------------------------------------

TEST(ShardedIngest, ShardFullDisplacementResolvesVictimsTypedImmediately) {
  GateAdmitter gate;
  gate.hold();
  IngestConfig config;
  config.shards = 1;
  config.batch_capacity = 1;        // every pop flushes: the consumer parks
  config.flush_timeout = Seconds{10.0};
  config.shard_queue_capacity = 2;  // displacement territory
  ShardedIngestFrontEnd front_end(gate, config);

  // The probe opens a batch and parks its aggregator inside admit(); the
  // shard queue is now empty with its only consumer wedged.
  auto probe = front_end.submit(cheap_query());
  gate.wait_for_batches(1);

  auto f1 = front_end.submit(cheap_query());
  auto f2 = front_end.submit(cheap_query());
  // Queue [f1, f2] is at capacity. Each further arrival displaces the
  // OLDEST queued request — nearest its deadline, least slack left — and
  // the victim resolves typed without waiting for any flush.
  auto f3 = front_end.submit(cheap_query());
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f1.get().outcome, ExecutionOutcome::kShedAtAdmission);
  auto f4 = front_end.submit(cheap_query());
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f2.get().outcome, ExecutionOutcome::kShedAtAdmission);

  gate.release();
  front_end.shutdown();
  EXPECT_EQ(probe.get().outcome, ExecutionOutcome::kCompleted);
  EXPECT_EQ(f3.get().outcome, ExecutionOutcome::kCompleted);
  EXPECT_EQ(f4.get().outcome, ExecutionOutcome::kCompleted);

  const IngestStats stats = front_end.stats();
  EXPECT_EQ(stats.submitted, 5u);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].enqueued, 5u);  // every arrival was accepted...
  EXPECT_EQ(stats.shards[0].displaced, 2u);  // ...two were later evicted
  EXPECT_EQ(stats.shards[0].bounced, 0u);
  EXPECT_EQ(stats.shards[0].depth, 0u);
  EXPECT_EQ(stats.shards[0].max_depth, 2u);
  // batch_capacity 1: every flush is a capacity flush of a single request.
  EXPECT_EQ(stats.flushes, 3u);
  EXPECT_EQ(stats.flush_by_capacity, 3u);
  EXPECT_EQ(stats.immediate, 3u);
  EXPECT_EQ(stats.aggregated, 0u);
  EXPECT_EQ(stats.batch_sizes.batches(), 3u);
  EXPECT_EQ(stats.batch_sizes.max_size(), 1u);
}

TEST(ShardedIngest, FlushTimeoutFlushesAPartialBatch) {
  GateAdmitter gate;
  IngestConfig config;
  config.shards = 1;
  config.batch_capacity = 100;  // never fills: only the timer can flush
  config.flush_timeout = Seconds{0.005};
  ShardedIngestFrontEnd front_end(gate, config);

  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(front_end.submit(cheap_query()));
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, ExecutionOutcome::kCompleted);
  }

  const IngestStats stats = front_end.stats();
  // Capacity was unreachable and nothing closed, so every flush that
  // resolved those futures aged out on the timer.
  EXPECT_GE(stats.flush_by_timeout, 1u);
  EXPECT_EQ(stats.flush_by_capacity, 0u);
  EXPECT_EQ(stats.flush_on_close, 0u);
  EXPECT_EQ(stats.immediate + stats.aggregated, 3u);
  front_end.shutdown();
}

TEST(ShardedIngest, CloseRacingTheFlushTimerStrandsNothing) {
  // Requests parked behind a 10-second flush timer, then an immediate
  // shutdown: the close must beat the timer, drain the shard, and flush
  // everything as close-reason batches. No request may ride out the timer
  // against a dead queue, and none may resolve untyped.
  GateAdmitter gate;
  IngestConfig config;
  config.shards = 1;
  config.batch_capacity = 100;
  config.flush_timeout = Seconds{10.0};
  ShardedIngestFrontEnd front_end(gate, config);

  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(front_end.submit(cheap_query()));
  front_end.shutdown();  // must return promptly — close() wakes pop_for

  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get().outcome, ExecutionOutcome::kCompleted);
  }
  const IngestStats stats = front_end.stats();
  EXPECT_GE(stats.flush_on_close, 1u);
  EXPECT_EQ(stats.flush_by_timeout, 0u);
  EXPECT_EQ(stats.flush_by_capacity, 0u);
  EXPECT_EQ(stats.immediate + stats.aggregated, 4u);
  EXPECT_EQ(stats.shards[0].depth, 0u);
}

TEST(ShardedIngest, PerSourceAffinityAndRoundRobinLandOnTheNamedShards) {
  GateAdmitter gate;
  IngestConfig config;
  config.shards = 3;
  config.batch_capacity = 1;
  ShardedIngestFrontEnd front_end(gate, config);
  ASSERT_EQ(front_end.shard_count(), 3);

  std::vector<std::future<ExecutionReport>> futures;
  // Affinity: one chatty source pinned to shard 2, a second on shard 0.
  for (int i = 0; i < 5; ++i) {
    futures.push_back(front_end.submit(cheap_query(), 2));
  }
  for (int i = 0; i < 2; ++i) {
    futures.push_back(front_end.submit(cheap_query(), 0));
  }
  // Round-robin: six unpinned submissions spread two per shard.
  for (int i = 0; i < 6; ++i) futures.push_back(front_end.submit(cheap_query()));
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, ExecutionOutcome::kCompleted);
  }

  EXPECT_THROW(front_end.submit(cheap_query(), 3), InvalidArgument);
  EXPECT_THROW(front_end.submit(cheap_query(), -1), InvalidArgument);

  const IngestStats stats = front_end.stats();
  ASSERT_EQ(stats.shards.size(), 3u);
  EXPECT_EQ(stats.shards[0].name, "shard0");
  EXPECT_EQ(stats.shards[0].enqueued, 4u);  // 2 pinned + 2 round-robin
  EXPECT_EQ(stats.shards[1].enqueued, 2u);
  EXPECT_EQ(stats.shards[2].enqueued, 7u);  // 5 pinned + 2 round-robin

  front_end.shutdown();
  EXPECT_THROW(front_end.submit(cheap_query()), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The real pipeline: front-end → AsyncHybridExecutor::admit() → partitions.
// ---------------------------------------------------------------------------

TEST(ShardedIngest, MultiProducerStormEveryFutureTypedAndAnswersCorrect) {
  HybridOlapSystem system = make_system();
  AsyncHybridExecutor executor(system);
  IngestConfig config;
  config.shards = 3;
  config.batch_capacity = 8;
  config.flush_timeout = Seconds{0.001};
  config.shard_queue_capacity = 64;
  ShardedIngestFrontEnd front_end(executor, config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::array<std::vector<std::pair<Query, std::future<ExecutionReport>>>,
             kThreads>
      submitted;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      WorkloadConfig wl;
      wl.seed = 500 + static_cast<std::uint64_t>(t);
      wl.text_probability = 0.4;
      QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
      for (int i = 0; i < kPerThread; ++i) {
        Query q = gen.next();
        auto future = front_end.submit(q);
        submitted[static_cast<std::size_t>(t)].emplace_back(std::move(q),
                                                            std::move(future));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  std::size_t completed = 0;
  std::size_t shed = 0;
  for (auto& thread_batch : submitted) {
    for (auto& [query, future] : thread_batch) {
      const ExecutionReport report = future.get();
      switch (report.outcome) {
        case ExecutionOutcome::kCompleted:
        case ExecutionOutcome::kFailedOver: {
          ++completed;
          const QueryAnswer oracle = system.answer_on_gpu(query);
          EXPECT_NEAR(report.answer.value, oracle.value, 1e-6);
          EXPECT_EQ(report.answer.row_count, oracle.row_count);
          break;
        }
        case ExecutionOutcome::kShedAtAdmission:
          ++shed;
          break;
        default:
          FAIL() << "unexpected outcome " << to_string(report.outcome);
      }
    }
  }
  front_end.shutdown();
  executor.shutdown();

  constexpr std::size_t kTotal =
      static_cast<std::size_t>(kThreads) * kPerThread;
  EXPECT_EQ(completed + shed, kTotal);
  EXPECT_EQ(executor.completed(), completed);

  // Counter coherence: every submission is accounted exactly once — it
  // either flushed to admit() or was shed at the intake door.
  const IngestStats stats = front_end.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  std::size_t enqueued = 0;
  std::size_t displaced = 0;
  std::size_t bounced = 0;
  for (const IngestShardCounters& shard : stats.shards) {
    enqueued += shard.enqueued;
    displaced += shard.displaced;
    bounced += shard.bounced;
    EXPECT_EQ(shard.depth, 0u) << shard.name;
    EXPECT_LE(shard.max_depth, config.shard_queue_capacity) << shard.name;
  }
  EXPECT_EQ(enqueued + bounced, kTotal);
  EXPECT_EQ(displaced + bounced, shed);
  EXPECT_EQ(stats.immediate + stats.aggregated, kTotal - shed);
  EXPECT_EQ(stats.batch_sizes.queries(), kTotal - shed);
  EXPECT_EQ(stats.batch_sizes.batches(), stats.flushes);
  EXPECT_EQ(stats.flush_by_capacity + stats.flush_by_timeout +
                stats.flush_on_close,
            stats.flushes);
  EXPECT_LE(stats.batch_sizes.max_size(), config.batch_capacity);

  // The batched path actually ran: the scheduler committed whole batches.
  const auto* scheduler =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(scheduler, nullptr);
  EXPECT_GE(scheduler->counters().batch_commits, 1u);
  EXPECT_EQ(scheduler->counters().batched_queries, kTotal - shed);
}

TEST(ShardedIngest, ExecutorShutdownMidBatchRollsBackAndResolvesFailed) {
  // The FaultInjector submit hook fires inside admit() AFTER the batch is
  // scheduled and committed, and shuts the executor down right there: the
  // batch must roll back as ONE unit (rollback_batch) and every one of
  // its promises must resolve kFailed — typed, never abandoned.
  HybridOlapSystem system = make_system(400);
  AsyncHybridExecutor executor(system);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  fault.set_submit_hook([&executor] { executor.shutdown(); });

  IngestConfig config;
  config.shards = 1;
  config.batch_capacity = 4;  // the 4th submission triggers the flush
  config.flush_timeout = Seconds{10.0};
  ShardedIngestFrontEnd front_end(executor, config);

  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(front_end.submit(cheap_query()));
  for (auto& future : futures) {
    EXPECT_EQ(future.get().outcome, ExecutionOutcome::kFailed);
  }
  front_end.shutdown();

  const auto* scheduler =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(scheduler, nullptr);
  EXPECT_GE(scheduler->counters().batch_rollbacks, 1u);
  // The rollback restored the ledger: nothing is left charged on any clock.
  EXPECT_EQ(scheduler->cpu_clock().value(), 0.0);
  EXPECT_EQ(scheduler->translation_clock().value(), 0.0);
  for (int q = 0; q < scheduler->gpu_queue_count(); ++q) {
    EXPECT_EQ(scheduler->gpu_clock(q).value(), 0.0) << "gpu queue " << q;
  }
  EXPECT_EQ(executor.completed(), 0u);
}

TEST(ShardedIngest, SubmitBatchReturnsFuturesInSubmissionOrder) {
  // Executor-level batched admission without the front-end: futures come
  // back positionally aligned with the input batch, and the whole batch
  // costs one ledger commit.
  HybridOlapSystem system = make_system();
  WorkloadConfig wl;
  wl.seed = 91;
  wl.text_probability = 0.5;
  QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
  const std::vector<Query> queries = gen.batch(12);

  AsyncHybridExecutor executor(system);
  std::vector<std::future<ExecutionReport>> futures =
      executor.submit_batch(queries);
  ASSERT_EQ(futures.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ExecutionReport report = futures[i].get();
    ASSERT_EQ(report.outcome, ExecutionOutcome::kCompleted) << "query " << i;
    const QueryAnswer oracle = system.answer_on_gpu(queries[i]);
    EXPECT_NEAR(report.answer.value, oracle.value, 1e-6) << "query " << i;
    EXPECT_EQ(report.answer.row_count, oracle.row_count) << "query " << i;
  }
  executor.shutdown();

  const auto* scheduler =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(scheduler, nullptr);
  EXPECT_EQ(scheduler->counters().batch_commits, 1u);
  EXPECT_EQ(scheduler->counters().batched_queries, queries.size());
  EXPECT_THROW(executor.submit_batch({cheap_query()}), InvalidArgument);
}

TEST(ShardedIngest, SeededStormIsDeterministicInOutcomeTotals) {
  // Two independent runs of the same seeded storm: thread interleaving
  // (and therefore batching and placement) may vary, but the workload is
  // identical, so every query must complete in both runs with the same
  // answer. Placement only picks WHERE a query runs, never WHAT it
  // returns — 1e-6 absorbs CPU-vs-GPU summation-order drift. Bit-exact
  // rerun equivalence lives in the pure-scheduler property tests, where
  // no wall clock participates.
  auto run = [] {
    HybridOlapSystem system = make_system(400);
    AsyncHybridExecutor executor(system);
    IngestConfig config;
    config.shards = 2;
    config.batch_capacity = 6;
    config.flush_timeout = Seconds{0.001};
    ShardedIngestFrontEnd front_end(executor, config);

    WorkloadConfig wl;
    wl.seed = 1234;
    wl.text_probability = 0.5;
    QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
    std::vector<std::pair<Query, std::future<ExecutionReport>>> submitted;
    for (int i = 0; i < 40; ++i) {
      Query q = gen.next();
      auto future = front_end.submit(q);
      submitted.emplace_back(std::move(q), std::move(future));
    }
    std::vector<double> answers;
    for (auto& [query, future] : submitted) {
      const ExecutionReport report = future.get();
      EXPECT_EQ(report.outcome, ExecutionOutcome::kCompleted);
      answers.push_back(report.answer.value);
    }
    front_end.shutdown();
    executor.shutdown();
    return answers;
  };
  const std::vector<double> first = run();
  const std::vector<double> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(first[i], second[i], 1e-6) << "query " << i;
  }
}

}  // namespace
}  // namespace holap
