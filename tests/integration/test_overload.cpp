// Overload robustness of the async executor: bounded intake queues,
// typed shed/reject/failed resolutions, deterministic fault injection,
// and the feedback paths (shed rollback, translation clock correction).
//
// Every scenario here follows one invariant: a submitted promise ALWAYS
// resolves with a typed ExecutionOutcome — under full queues, injected
// faults, displacement, and shutdown races — never hangs, never asserts.
#include "olap/async_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/export.hpp"
#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

HybridOlapSystem make_system(std::size_t rows = 800) {
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

/// CPU-only system: every query lands in the one CPU intake queue, which
/// makes backlog construction and shed accounting exact.
HybridOlapSystem make_cpu_system() {
  GeneratorConfig gen;
  gen.rows = 600;
  gen.seed = 7;
  gen.text_levels = {{1, 2}};  // level-2 text: CPU-answerable (cube exists)
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  config.enable_gpu = false;
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

Query cheap_query() {
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.measures = {12};
  return q;
}

/// Same shape, ~100x the processing estimate of cheap_query(): a full
/// level-2 scan. Displacement ranks by estimated slack, so the gap
/// between the two estimates is what makes eviction deterministic.
Query bulk_query() {
  Query q;
  q.conditions.push_back({0, 2, 0, 7, {}, {}});
  q.measures = {12};
  return q;
}

/// Park the (single) CPU worker at the fault gate with one probe job, so
/// subsequent submissions build queue state deterministically.
void park_cpu_worker(AsyncHybridExecutor& executor, FaultInjector& fault) {
  fault.hold_workers();
  executor.submit(cheap_query());
  while (fault.workers_waiting() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Overload, BoundedQueueShedsNewestTyped) {
  HybridOlapSystem system = make_cpu_system();
  AsyncExecutorConfig config;
  config.queue_capacity = 2;
  config.overflow = AsyncExecutorConfig::OverflowPolicy::kRejectNewest;
  AsyncHybridExecutor executor(system, config);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  park_cpu_worker(executor, fault);

  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(executor.submit(cheap_query()));
  fault.release_workers();

  // Capacity 2 with the worker parked on the probe: exactly the first two
  // burst submissions fit; the remaining four shed, typed, at the door.
  for (int i = 0; i < 6; ++i) {
    const ExecutionReport report = futures[static_cast<std::size_t>(i)].get();
    if (i < 2) {
      EXPECT_EQ(report.outcome, ExecutionOutcome::kCompleted) << i;
      EXPECT_FALSE(report.answer.empty()) << i;
    } else {
      EXPECT_EQ(report.outcome, ExecutionOutcome::kShedAtAdmission) << i;
      EXPECT_EQ(report.queue.kind, QueueRef::kCpu) << i;
    }
  }
  executor.shutdown();
  EXPECT_EQ(executor.completed(), 3u);  // probe + two accepted
  EXPECT_EQ(executor.shed(), 4u);

  const auto counters = executor.partition_counters();
  ASSERT_FALSE(counters.empty());
  EXPECT_EQ(counters[0].name, "cpu");
  EXPECT_EQ(counters[0].enqueued, 3u);
  EXPECT_EQ(counters[0].completed, 3u);
  EXPECT_EQ(counters[0].shed, 4u);
  EXPECT_EQ(counters[0].depth, 0u);
  EXPECT_EQ(counters[0].max_depth, 3u);  // parked probe + two queued
}

TEST(Overload, ShedSetIsDeterministicAcrossRuns) {
  // The whole scenario is driven by explicit gates and counters, so two
  // independent runs must shed exactly the same submissions.
  auto run = [] {
    HybridOlapSystem system = make_cpu_system();
    AsyncExecutorConfig config;
    config.queue_capacity = 2;
    AsyncHybridExecutor executor(system, config);
    FaultInjector fault;
    executor.set_fault_injector(&fault);
    park_cpu_worker(executor, fault);
    std::vector<std::future<ExecutionReport>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(executor.submit(cheap_query()));
    }
    fault.release_workers();
    std::vector<ExecutionOutcome> outcomes;
    outcomes.reserve(futures.size());
    for (auto& f : futures) outcomes.push_back(f.get().outcome);
    return outcomes;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(std::count(first.begin(), first.end(),
                       ExecutionOutcome::kShedAtAdmission),
            6);  // 8 submitted, capacity 2
}

TEST(Overload, LeastFeasibleDisplacementEvictsQueuedJob) {
  HybridOlapSystem system = make_cpu_system();
  AsyncExecutorConfig config;
  config.queue_capacity = 2;
  config.overflow = AsyncExecutorConfig::OverflowPolicy::kShedLeastFeasible;
  AsyncHybridExecutor executor(system, config);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  park_cpu_worker(executor, fault);

  auto queued1 = executor.submit(bulk_query());
  auto queued2 = executor.submit(bulk_query());
  // Once wall-clock time has moved past the tiny backlog, the scheduler's
  // T_R clamps to now + processing for every job, so each job's deadline
  // slack is exactly T_C − its own processing estimate: timing-independent.
  // A cheap late arrival therefore has strictly more slack than either
  // queued bulk scan, and must displace one of them.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto late = executor.submit(cheap_query());
  fault.release_workers();

  // Exactly one of the two backlogged jobs is evicted (which one depends
  // on the sub-microsecond submission gap between them); the late arrival
  // itself must be accepted and complete.
  const ExecutionOutcome q1 = queued1.get().outcome;
  const ExecutionOutcome q2 = queued2.get().outcome;
  EXPECT_TRUE((q1 == ExecutionOutcome::kCompleted &&
               q2 == ExecutionOutcome::kShedInQueue) ||
              (q1 == ExecutionOutcome::kShedInQueue &&
               q2 == ExecutionOutcome::kCompleted))
      << "queued1=" << to_string(q1) << " queued2=" << to_string(q2);
  EXPECT_EQ(late.get().outcome, ExecutionOutcome::kCompleted);
  executor.shutdown();
  EXPECT_EQ(executor.shed(), 1u);
  const auto counters = executor.partition_counters();
  EXPECT_EQ(counters[0].shed, 1u);
  EXPECT_EQ(counters[0].completed, 3u);  // probe, queued1, late
}

TEST(Overload, ShedRollsTheSchedulerClockBack) {
  HybridOlapSystem system = make_cpu_system();
  AsyncExecutorConfig config;
  config.queue_capacity = 1;
  AsyncHybridExecutor executor(system, config);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  park_cpu_worker(executor, fault);

  auto accepted = executor.submit(cheap_query());
  std::vector<std::future<ExecutionReport>> shed;
  for (int i = 0; i < 5; ++i) shed.push_back(executor.submit(cheap_query()));
  fault.release_workers();
  for (auto& f : shed) {
    EXPECT_EQ(f.get().outcome, ExecutionOutcome::kShedAtAdmission);
  }
  EXPECT_EQ(accepted.get().outcome, ExecutionOutcome::kCompleted);
  executor.shutdown();

  const auto* sched =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(sched, nullptr);
  // Every shed rolled its processing estimate back out of the CPU clock:
  // the clock reflects only the two queries that actually ran (plus their
  // measured-vs-estimated feedback), not the five phantom placements.
  EXPECT_EQ(sched->counters().shed_in_queue, 5u);
  const Seconds clock = sched->cpu_clock();
  Seconds executed{};
  for (const auto& c : executor.partition_counters()) executed += c.busy;
  EXPECT_LT(clock.value(), executed.value() + 1.0)
      << "clock still carries phantom load from shed placements";
}

TEST(Overload, ForcedQueueFullShedsEvenWhenEmpty) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);  // unbounded: only the fault bites
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  fault.force_queue_full(true);
  EXPECT_EQ(executor.submit(cheap_query()).get().outcome,
            ExecutionOutcome::kShedAtAdmission);
  fault.force_queue_full(false);
  EXPECT_EQ(executor.submit(cheap_query()).get().outcome,
            ExecutionOutcome::kCompleted);
}

TEST(Overload, PushBudgetShedsEverythingPastIt) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  fault.fail_pushes_after(2);
  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(executor.submit(cheap_query()));
  std::size_t completed = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    const ExecutionOutcome outcome = f.get().outcome;
    if (outcome == ExecutionOutcome::kCompleted) ++completed;
    if (outcome == ExecutionOutcome::kShedAtAdmission) ++shed;
  }
  EXPECT_EQ(completed, 2u);
  EXPECT_EQ(shed, 3u);
}

TEST(Overload, ShutdownRaceResolvesTypedNotAbandoned) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  // Close the executor inside submit(), between the scheduling decision
  // and the enqueue — the exact race the old code turned into an
  // abandoned promise.
  fault.set_submit_hook([&executor] { executor.shutdown(); });
  auto future = executor.submit(cheap_query());
  const ExecutionReport report = future.get();  // must not hang
  EXPECT_EQ(report.outcome, ExecutionOutcome::kFailed);
  // Once shutdown has been observed, later submissions throw immediately.
  EXPECT_THROW(executor.submit(cheap_query()), InvalidArgument);
}

TEST(Overload, AdmissionControlShedsThroughTheExecutor) {
  GeneratorConfig gen;
  gen.rows = 600;
  gen.seed = 7;
  gen.text_levels = {{1, 2}};
  HybridSystemConfig sys_config;
  sys_config.cpu_threads = 2;
  sys_config.cube_levels = {0, 1, 2};
  sys_config.enable_gpu = false;
  sys_config.deadline = Seconds{1e-9};  // nothing is feasible
  sys_config.admission.mode = AdmissionControl::Mode::kReject;
  HybridOlapSystem system(
      generate_fact_table(tiny_model_dimensions(), gen), sys_config);
  AsyncHybridExecutor executor(system);
  const ExecutionReport report = executor.submit(cheap_query()).get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kShedAtAdmission);
  EXPECT_FALSE(report.rejected);
  EXPECT_EQ(executor.shed(), 1u);
  EXPECT_EQ(executor.completed(), 0u);
  const auto* sched =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->counters().shed_at_admission, 1u);
  EXPECT_EQ(sched->cpu_clock(), Seconds{});  // nothing was committed
}

TEST(Overload, CpuInlineTranslationIsTimedAndTraced) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  TraceRecorder recorder;
  executor.set_trace_recorder(&recorder);

  const int col = system.schema().dimension_column(1, 2);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 2;
  c.text_values = {system.dictionaries().for_column(col).decode(1)};
  q.conditions.push_back(c);
  q.measures = {12};
  const ExecutionReport report = executor.submit(q).get();
  executor.shutdown();

  EXPECT_EQ(report.outcome, ExecutionOutcome::kCompleted);
  EXPECT_EQ(report.queue.kind, QueueRef::kCpu);
  // The CPU path translates inline, and that work is measured, not lost.
  EXPECT_GT(report.translation_time, Seconds{});

  const auto spans = recorder.spans_for(0);
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_TRUE(is_complete_span_chain(spans));
  // CPU chain order: the translate span sits AFTER dispatch (the worker
  // translates once it picks the job up), unlike the GPU path.
  EXPECT_EQ(spans[1].kind, SpanKind::kDispatch);
  EXPECT_EQ(spans[2].kind, SpanKind::kTranslate);
}

TEST(Overload, TranslationFeedbackReachesTheScheduler) {
  HybridOlapSystem system = make_system();
  AsyncHybridExecutor executor(system);
  const int col = system.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {system.dictionaries().for_column(col).decode(1)};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 15, {}, {}});  // GPU-only resolution
  q.measures = {12};
  const ExecutionReport report = executor.submit(q).get();
  executor.shutdown();
  EXPECT_TRUE(report.translated);
  const auto* sched =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(sched, nullptr);
  // The measured translation time flowed back into the translation clock
  // (satellite of §III-G: Q_TRANS self-corrects like every other queue).
  EXPECT_EQ(sched->counters().translation_feedback_events, 1u);
}

TEST(Overload, MixedBurstAlwaysResolvesTyped) {
  // Belt-and-braces sweep: a concurrent burst against tiny queues with a
  // real workload generator; we don't predict outcomes, only that every
  // single promise resolves with a typed outcome and nothing leaks.
  HybridOlapSystem system = make_system();
  AsyncExecutorConfig config;
  config.queue_capacity = 3;
  config.overflow = AsyncExecutorConfig::OverflowPolicy::kShedLeastFeasible;
  AsyncHybridExecutor executor(system, config);
  WorkloadConfig wl;
  wl.seed = 21;
  wl.text_probability = 0.4;
  QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 120; ++i) futures.push_back(executor.submit(gen.next()));
  std::size_t completed = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    switch (f.get().outcome) {
      case ExecutionOutcome::kCompleted:
        ++completed;
        break;
      case ExecutionOutcome::kShedAtAdmission:
      case ExecutionOutcome::kShedInQueue:
        ++shed;
        break;
      case ExecutionOutcome::kRejected:
      case ExecutionOutcome::kFailed:
      case ExecutionOutcome::kFailedOver:
      case ExecutionOutcome::kExhaustedRetries:
        break;
    }
  }
  executor.shutdown();
  EXPECT_EQ(completed, executor.completed());
  EXPECT_EQ(shed, executor.shed());
  EXPECT_EQ(completed + shed, 120u);  // nothing rejected or failed here
}

TEST(Overload, ThrowingSubmitHookResolvesFailedAndRollsBack) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  // A hook that throws models a crash between schedule()'s clock commit
  // and the enqueue: the caller's future must still settle and the
  // commit must come back off the ledger.
  fault.set_submit_hook(
      [] { throw std::runtime_error("crash in the race window"); });
  const ExecutionReport report = executor.submit(cheap_query()).get();
  EXPECT_EQ(report.outcome, ExecutionOutcome::kFailed);
  const auto* sched =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(sched, nullptr);
  // on_shed() ran: the commit is off the ledger (the exact arithmetic
  // is pinned by tests/sched/test_scheduler.cpp; the clock keeps only
  // the idle advance to `now`, so exact-zero is not assertable here).
  EXPECT_EQ(sched->counters().shed_in_queue, 1u);
  // The executor keeps serving once the fault clears.
  fault.set_submit_hook({});
  EXPECT_EQ(executor.submit(cheap_query()).get().outcome,
            ExecutionOutcome::kCompleted);
}

TEST(Overload, ThrowingSubmitHookFailsWholeBatchTyped) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  FaultInjector fault;
  executor.set_fault_injector(&fault);
  fault.set_submit_hook(
      [] { throw std::runtime_error("crash mid-admission"); });
  std::vector<Query> batch(4, cheap_query());
  auto futures = executor.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 4u);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().outcome, ExecutionOutcome::kFailed);
  }
  const auto* sched =
      dynamic_cast<const QueueingScheduler*>(&system.scheduler());
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->cpu_clock(), Seconds{});  // one rollback_batch undid it
  fault.set_submit_hook({});
  EXPECT_EQ(executor.submit(cheap_query()).get().outcome,
            ExecutionOutcome::kCompleted);
}

TEST(Overload, TextParametersOnANonTextColumnRejectedAtAdmission) {
  HybridOlapSystem system = make_cpu_system();
  AsyncHybridExecutor executor(system);
  Query q;
  // Dimension 0 level 0 is a plain integer column in this schema: text
  // parameters against it can never translate, so admission must refuse
  // the query while there is still a caller to throw to — past this
  // point it would detonate on a worker thread with no handler.
  q.conditions.push_back({0, 0, 0, 0, {"no-such-member"}, {}});
  q.measures = {12};
  EXPECT_THROW(executor.submit(q), InvalidArgument);
  // The batch front-end has no caller to throw to: it resolves typed.
  std::vector<Query> batch{q};
  auto futures = executor.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 1u);
  EXPECT_EQ(futures[0].get().outcome, ExecutionOutcome::kRejected);
}

}  // namespace
}  // namespace holap
