#include "olap/hybrid_system.hpp"

#include <gtest/gtest.h>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

HybridOlapSystem make_system(HybridSystemConfig config = {},
                             std::size_t rows = 1000) {
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 3;
  gen.text_levels = {{1, 3}};
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), std::move(config));
}

TEST(HybridSystem, ConstructionBuildsEverything) {
  const HybridOlapSystem sys = make_system();
  EXPECT_EQ(sys.table().row_count(), 1000u);
  EXPECT_EQ(sys.cubes().levels(), (std::vector<int>{0, 1}));
  EXPECT_EQ(sys.dictionaries().column_count(), 1u);
  EXPECT_TRUE(sys.device().has_table());
  EXPECT_EQ(sys.device().partition_count(), 6);
  EXPECT_STREQ(sys.scheduler().name(), "figure10");
}

TEST(HybridSystem, ExecuteAnswersMatchReferenceEngines) {
  HybridOlapSystem sys = make_system();
  WorkloadConfig wl;
  wl.seed = 77;
  QueryGenerator gen(sys.schema().dimensions(), sys.schema(), wl);
  for (int i = 0; i < 25; ++i) {
    const Query q = gen.next();
    const ExecutionReport report = sys.execute(q);
    ASSERT_FALSE(report.rejected);
    const QueryAnswer reference = sys.answer_on_gpu(q);
    EXPECT_NEAR(report.answer.value, reference.value, 1e-6) << "query " << i;
    EXPECT_EQ(report.answer.row_count, reference.row_count);
  }
}

TEST(HybridSystem, FineQueriesRouteToGpu) {
  // Cube ladder stops at level 1; level-3 queries must use the GPU.
  HybridOlapSystem sys = make_system();
  Query q;
  q.conditions.push_back({0, 3, 0, 7, {}, {}});
  q.measures = {12};
  const ExecutionReport report = sys.execute(q);
  EXPECT_EQ(report.queue.kind, QueueRef::kGpu);
}

TEST(HybridSystem, CoarseQueriesRouteToCpu) {
  HybridOlapSystem sys = make_system();
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.conditions.push_back({1, 0, 0, 0, {}, {}});
  q.measures = {12};
  const ExecutionReport report = sys.execute(q);
  EXPECT_EQ(report.queue.kind, QueueRef::kCpu);
  EXPECT_GT(report.measured_processing, Seconds{});
}

TEST(HybridSystem, TextQueryOnGpuPathGetsTranslated) {
  HybridOlapSystem sys = make_system();
  const int col = sys.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {sys.dictionaries().for_column(col).decode(2)};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 15, {}, {}});  // force fine resolution
  q.measures = {12};
  const ExecutionReport report = sys.execute(q);
  EXPECT_EQ(report.queue.kind, QueueRef::kGpu);
  EXPECT_TRUE(report.translated);
  EXPECT_FALSE(report.answer.empty());
  // Cross-check against the CPU oracle (build a fine cube on demand).
  const QueryAnswer reference = sys.answer_on_gpu(q);
  EXPECT_NEAR(report.answer.value, reference.value, 1e-9);
}

TEST(HybridSystem, RejectedWhenNoResourceFits) {
  HybridSystemConfig config;
  config.gpu_partitions = {1};
  config.cube_levels = {0};
  config.policy = "figure10";
  // Disable the GPU by partition config? The system always has a GPU; use
  // a level the cube cannot answer and verify it still executes via GPU.
  HybridOlapSystem sys = make_system(std::move(config));
  Query q;
  q.conditions.push_back({0, 3, 0, 3, {}, {}});
  q.measures = {12};
  const ExecutionReport report = sys.execute(q);
  EXPECT_FALSE(report.rejected);
  EXPECT_EQ(report.queue.kind, QueueRef::kGpu);
}

TEST(HybridSystem, MinMaxRequiresConfiguredCubes) {
  HybridSystemConfig with;
  with.minmax_cubes = true;
  HybridOlapSystem sys = make_system(std::move(with), 400);
  Query q;
  q.conditions.push_back({0, 1, 0, 2, {}, {}});
  q.measures = {12};
  q.op = AggOp::kMin;
  const ExecutionReport report = sys.execute(q);
  EXPECT_FALSE(report.rejected);
  const QueryAnswer reference = sys.answer_on_gpu(q);
  EXPECT_NEAR(report.answer.value, reference.value, 1e-9);
}

TEST(HybridSystem, AlternativePoliciesWork) {
  for (const char* policy : {"MET", "MCT", "round-robin"}) {
    HybridSystemConfig config;
    config.policy = policy;
    HybridOlapSystem sys = make_system(std::move(config), 300);
    Query q;
    q.conditions.push_back({0, 1, 0, 1, {}, {}});
    q.measures = {12};
    const ExecutionReport report = sys.execute(q);
    EXPECT_FALSE(report.rejected) << policy;
    const QueryAnswer reference = sys.answer_on_gpu(q);
    EXPECT_NEAR(report.answer.value, reference.value, 1e-6) << policy;
  }
}


TEST(HybridSystem, GpuDisabledCpuOnlyDeployment) {
  HybridSystemConfig config;
  config.enable_gpu = false;
  config.cube_levels = {0, 1};
  HybridOlapSystem sys = make_system(std::move(config), 400);
  EXPECT_FALSE(sys.device().has_table());
  // Cube-covered query runs on the CPU partition as usual.
  Query coarse;
  coarse.conditions.push_back({0, 1, 0, 2, {}, {}});
  coarse.measures = {12};
  const ExecutionReport r1 = sys.execute(coarse);
  EXPECT_EQ(r1.queue.kind, QueueRef::kCpu);
  EXPECT_FALSE(r1.via_table_scan);
  // Finer than any cube: the hybrid fallback scans the relational table.
  Query fine;
  fine.conditions.push_back({0, 3, 0, 7, {}, {}});
  fine.measures = {12};
  const ExecutionReport r2 = sys.execute(fine);
  EXPECT_FALSE(r2.rejected);
  EXPECT_TRUE(r2.via_table_scan);
  EXPECT_NEAR(r2.answer.value, sys.answer_on_gpu(fine).value, 1e-9);
}

TEST(HybridSystem, FallbackDisabledYieldsRejection) {
  HybridSystemConfig config;
  config.enable_gpu = false;
  config.cube_levels = {0};
  config.cpu_table_scan_fallback = false;
  HybridOlapSystem sys = make_system(std::move(config), 100);
  Query fine;
  fine.conditions.push_back({2, 3, 0, 3, {}, {}});
  fine.measures = {12};
  const ExecutionReport r = sys.execute(fine);
  EXPECT_TRUE(r.rejected);
  EXPECT_TRUE(r.answer.empty());
}

TEST(HybridSystem, FallbackTranslatesTextQueries) {
  HybridSystemConfig config;
  config.enable_gpu = false;
  config.cube_levels = {0};
  HybridOlapSystem sys = make_system(std::move(config), 500);
  const int col = sys.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {sys.dictionaries().for_column(col).decode(4)};
  q.conditions.push_back(c);
  q.measures = {13};
  const ExecutionReport r = sys.execute(q);
  EXPECT_TRUE(r.via_table_scan);
  EXPECT_NEAR(r.answer.value, sys.answer_on_gpu(q).value, 1e-9);
}


TEST(HybridSystem, TranslationAlgorithmsAgreeEndToEnd) {
  for (const auto algorithm :
       {HybridSystemConfig::TranslationAlgorithm::kLinearScan,
        HybridSystemConfig::TranslationAlgorithm::kHashed,
        HybridSystemConfig::TranslationAlgorithm::kBatchAhoCorasick}) {
    HybridSystemConfig config;
    config.translation = algorithm;
    HybridOlapSystem sys = make_system(std::move(config), 400);
    const int col = sys.schema().dimension_column(1, 3);
    Query q;
    Condition c;
    c.dim = 1;
    c.level = 3;
    c.text_values = {sys.dictionaries().for_column(col).decode(3),
                     sys.dictionaries().for_column(col).decode(8)};
    q.conditions.push_back(c);
    q.conditions.push_back({0, 3, 0, 15, {}, {}});
    q.measures = {12};
    const ExecutionReport r = sys.execute(q);
    ASSERT_FALSE(r.rejected);
    EXPECT_NEAR(r.answer.value, sys.answer_on_gpu(q).value, 1e-9)
        << static_cast<int>(algorithm);
  }
}

TEST(HybridSystem, InvalidQueryRejectedUpfront) {
  HybridOlapSystem sys = make_system({}, 100);
  Query bad;
  bad.conditions.push_back({0, 9, 0, 0, {}, {}});
  bad.measures = {12};
  EXPECT_THROW(sys.execute(bad), InvalidArgument);
}

TEST(HybridSystem, SequentialCpuConfigWorks) {
  HybridSystemConfig config;
  config.cpu_threads = 0;
  HybridOlapSystem sys = make_system(std::move(config), 200);
  Query q;
  q.conditions.push_back({1, 1, 0, 3, {}, {}});
  q.measures = {13};
  const ExecutionReport report = sys.execute(q);
  EXPECT_FALSE(report.rejected);
  EXPECT_NEAR(report.answer.value, sys.answer_on_gpu(q).value, 1e-6);
}

}  // namespace
}  // namespace holap
