// End-to-end pipeline properties that span modules: scheduler decisions
// against the simulator, estimation-vs-actual coherence, and the paper's
// headline qualitative behaviours in miniature.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace holap {
namespace {

SimConfig paper_overheads() {
  SimConfig config;
  config.closed_clients = 16;
  return config;  // defaults carry the calibrated overheads
}

TEST(Pipeline, HybridBeatsCpuOnlyAndGpuOnly) {
  // The paper's core claim in miniature: the hybrid system outperforms
  // either resource alone on a mixed workload.
  ScenarioOptions hybrid_opts;
  const PaperScenario hybrid{std::move(hybrid_opts)};
  ScenarioOptions cpu_opts;
  cpu_opts.enable_gpu = false;
  cpu_opts.gpu_partitions.clear();
  const PaperScenario cpu_only{std::move(cpu_opts)};
  ScenarioOptions gpu_opts;
  gpu_opts.enable_cpu = false;
  const PaperScenario gpu_only{std::move(gpu_opts)};

  const auto queries = hybrid.make_workload(1500);
  auto hp = hybrid.make_policy();
  auto cp = cpu_only.make_policy();
  auto gp = gpu_only.make_policy();
  const double hybrid_qps =
      run_simulation(*hp, queries, paper_overheads()).throughput_qps;
  const double cpu_qps =
      run_simulation(*cp, queries, paper_overheads()).throughput_qps;
  const double gpu_qps =
      run_simulation(*gp, queries, paper_overheads()).throughput_qps;

  EXPECT_GT(hybrid_qps, cpu_qps);
  EXPECT_GT(hybrid_qps, gpu_qps);
}

TEST(Pipeline, MoreCpuThreadsMoreThroughput) {
  const auto qps_for = [](int threads) {
    ScenarioOptions opts;
    opts.cpu_threads = threads;
    const PaperScenario s{std::move(opts)};
    const auto queries = s.make_workload(1200);
    auto policy = s.make_policy();
    return run_simulation(*policy, queries, paper_overheads())
        .throughput_qps;
  };
  const double seq = qps_for(1);
  const double four = qps_for(4);
  const double eight = qps_for(8);
  EXPECT_GT(four, seq);
  EXPECT_GE(eight, four * 0.98);  // 8T >= 4T within noise
  // Table 3 shape: parallel hybrid is ~2x+ the sequential hybrid.
  EXPECT_GT(eight / seq, 1.5);
}

TEST(Pipeline, TranslationCostsTheGpuSideAFewPercent) {
  const auto gpu_qps = [](double text_probability) {
    ScenarioOptions opts;
    opts.enable_cpu = false;
    opts.text_probability = text_probability;
    const PaperScenario s{std::move(opts)};
    const auto queries = s.make_workload(1200);
    auto policy = s.make_policy();
    return run_simulation(*policy, queries, paper_overheads())
        .throughput_qps;
  };
  const double with_text = gpu_qps(0.5);
  const double without = gpu_qps(0.0);
  EXPECT_LT(with_text, without);
  // §IV: "the translation typically slows down the system by ~7%".
  const double slowdown = 1.0 - with_text / without;
  EXPECT_GT(slowdown, 0.005);
  EXPECT_LT(slowdown, 0.25);
}

TEST(Pipeline, Figure10BeatsLoadBlindMetAtHighGpuLoad) {
  // MET ignores queue load: every GPU-bound query lands on the single
  // minimum-execution-time partition, so its capacity is one 4-SM queue.
  // Figure 10 spreads across the whole ladder. The gap shows once the
  // arrival rate exceeds one queue's capacity — isolate it by removing
  // the serialising dispatcher overhead (a driver artefact, not a
  // scheduling property). §II-D: MET "works well on systems with small
  // workloads" — and only there.
  ScenarioOptions opts;
  opts.enable_cpu = false;  // GPU-only sharpens the contrast
  opts.text_probability = 0.0;
  const PaperScenario s{std::move(opts)};
  const auto queries = s.make_workload(2000);
  auto fig10 = s.make_policy("figure10");
  auto met = s.make_policy("MET");
  SimConfig config;
  config.arrival_rate = 250.0;
  config.gpu_dispatch_overhead = Seconds{0.0};
  const SimResult r10 = run_simulation(*fig10, queries, config);
  const SimResult rmet = run_simulation(*met, queries, config);
  EXPECT_GT(r10.throughput_qps, rmet.throughput_qps * 1.2);
  EXPECT_GT(r10.deadline_hit_rate, rmet.deadline_hit_rate);
}

TEST(Pipeline, EstimationBasedPoliciesCrushRoundRobin) {
  // The deeper point of §III-G: what matters is scheduling FROM THE
  // PERFORMANCE MODELS. Estimation-free round-robin sends coarse queries
  // to the GPU and fine ones to slow partitions, collapsing throughput.
  const PaperScenario s{ScenarioOptions{}};
  const auto queries = s.make_workload(1500);
  auto fig10 = s.make_policy("figure10");
  auto rr = s.make_policy("round-robin");
  SimConfig config;
  config.arrival_rate = 100.0;
  const SimResult r10 = run_simulation(*fig10, queries, config);
  const SimResult rrr = run_simulation(*rr, queries, config);
  EXPECT_GT(r10.throughput_qps, rrr.throughput_qps * 1.5);
  EXPECT_GT(r10.deadline_hit_rate, rrr.deadline_hit_rate + 0.3);
}

TEST(Pipeline, FeedbackAbsorbsAsymmetricMiscalibration) {
  // One partition class runs far slower than its model. Without feedback
  // the scheduler keeps trusting the stale model; with feedback the queue
  // clocks learn the truth and steer work away.
  const auto hit_rate = [](bool feedback) {
    ScenarioOptions opts;
    opts.enable_cpu = false;
    opts.text_probability = 0.0;
    opts.feedback = feedback;
    const PaperScenario s{std::move(opts)};
    const auto queries = s.make_workload(1500);
    auto policy = s.make_policy();
    SimConfig config;
    config.arrival_rate = 220.0;
    config.gpu_dispatch_overhead = Seconds{0.0};
    config.gpu_queue_bias = {4.0, 4.0, 4.0, 4.0, 1.0, 1.0};
    return run_simulation(*policy, queries, config).deadline_hit_rate;
  };
  EXPECT_GT(hit_rate(true), hit_rate(false));
}

TEST(Pipeline, DeadlineTightnessTradesHitRate) {
  const auto hit_rate = [](Seconds deadline) {
    ScenarioOptions opts;
    opts.deadline = deadline;
    const PaperScenario s{std::move(opts)};
    const auto queries = s.make_workload(800);
    auto policy = s.make_policy();
    return run_simulation(*policy, queries, paper_overheads())
        .deadline_hit_rate;
  };
  EXPECT_GE(hit_rate(Seconds{1.0}), hit_rate(Seconds{0.05}));
}

}  // namespace
}  // namespace holap
