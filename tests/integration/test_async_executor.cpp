#include "olap/async_executor.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "query/workload.hpp"
#include "relational/generator.hpp"

namespace holap {
namespace {

HybridOlapSystem make_system(std::size_t rows = 800) {
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

TEST(AsyncExecutor, AllSubmissionsCompleteWithCorrectAnswers) {
  HybridOlapSystem system = make_system();
  WorkloadConfig wl;
  wl.seed = 44;
  wl.text_probability = 0.4;
  QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
  const auto queries = gen.batch(60);

  AsyncHybridExecutor executor(system);
  std::vector<std::future<ExecutionReport>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) futures.push_back(executor.submit(q));

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ExecutionReport report = futures[i].get();
    ASSERT_FALSE(report.rejected) << "query " << i;
    const QueryAnswer oracle = system.answer_on_gpu(queries[i]);
    EXPECT_NEAR(report.answer.value, oracle.value, 1e-6) << "query " << i;
    EXPECT_EQ(report.answer.row_count, oracle.row_count) << "query " << i;
  }
  executor.shutdown();
  EXPECT_EQ(executor.completed(), queries.size());
}

TEST(AsyncExecutor, ConcurrentProducers) {
  HybridOlapSystem system = make_system();
  AsyncHybridExecutor executor(system);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> producers;
  std::array<std::vector<std::pair<Query, std::future<ExecutionReport>>>,
             kThreads>
      submitted;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      WorkloadConfig wl;
      wl.seed = 100 + static_cast<std::uint64_t>(t);
      wl.text_probability = 0.3;
      QueryGenerator gen(system.schema().dimensions(), system.schema(),
                         wl);
      for (int i = 0; i < kPerThread; ++i) {
        Query q = gen.next();
        auto future = executor.submit(q);
        submitted[static_cast<std::size_t>(t)].emplace_back(
            std::move(q), std::move(future));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  for (auto& thread_batch : submitted) {
    for (auto& [query, future] : thread_batch) {
      const ExecutionReport report = future.get();
      ASSERT_FALSE(report.rejected);
      const QueryAnswer oracle = system.answer_on_gpu(query);
      EXPECT_NEAR(report.answer.value, oracle.value, 1e-6);
    }
  }
  EXPECT_EQ(executor.completed(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(AsyncExecutor, TextQueriesTranslatedBeforeGpuExecution) {
  HybridOlapSystem system = make_system();
  AsyncHybridExecutor executor(system);
  const int col = system.schema().dimension_column(1, 3);
  Query q;
  Condition c;
  c.dim = 1;
  c.level = 3;
  c.text_values = {system.dictionaries().for_column(col).decode(1)};
  q.conditions.push_back(c);
  q.conditions.push_back({0, 3, 0, 15, {}, {}});  // GPU-only resolution
  q.measures = {12};
  const ExecutionReport report = executor.submit(q).get();
  EXPECT_EQ(report.queue.kind, QueueRef::kGpu);
  EXPECT_TRUE(report.translated);
  EXPECT_FALSE(report.answer.empty());
}

TEST(AsyncExecutor, SubmitAfterShutdownThrows) {
  HybridOlapSystem system = make_system(100);
  AsyncHybridExecutor executor(system);
  executor.shutdown();
  Query q;
  q.conditions.push_back({0, 0, 0, 0, {}, {}});
  q.measures = {12};
  EXPECT_THROW(executor.submit(q), InvalidArgument);
}

TEST(AsyncExecutor, ShutdownDrainsInFlightWork) {
  HybridOlapSystem system = make_system();
  std::vector<std::future<ExecutionReport>> futures;
  {
    AsyncHybridExecutor executor(system);
    WorkloadConfig wl;
    wl.seed = 9;
    QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
    for (int i = 0; i < 30; ++i) futures.push_back(executor.submit(gen.next()));
    // Destructor shuts down; queued work must still complete.
  }
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().rejected);
  }
}

TEST(AsyncExecutor, InvalidQueriesRejectedSynchronously) {
  HybridOlapSystem system = make_system(100);
  AsyncHybridExecutor executor(system);
  Query bad;
  bad.conditions.push_back({0, 9, 0, 0, {}, {}});
  bad.measures = {12};
  EXPECT_THROW(executor.submit(bad), InvalidArgument);
}

/// make_system with the device catalog enabled: one device owning the
/// {1,1,2,2,4,4} ladder (home device, so no transfer is ever priced) —
/// what the executor's repartition() path needs.
HybridOlapSystem make_catalog_system(std::size_t rows = 800) {
  GeneratorConfig gen;
  gen.rows = rows;
  gen.seed = 5;
  gen.text_levels = {{1, 3}};
  HybridSystemConfig config;
  config.cpu_threads = 2;
  config.cube_levels = {0, 1, 2};
  config.topology.enabled = true;
  config.topology.transfer_unit = Seconds{0.01};
  return HybridOlapSystem(
      generate_fact_table(tiny_model_dimensions(), gen), config);
}

/// Spin until `injector` reports at least one worker parked at the gate.
void wait_for_parked_worker(const FaultInjector& injector) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (injector.workers_waiting() < 1 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(injector.workers_waiting(), 1);
}

RepartitionDecision narrow_pair(RepartitionDecision::Kind kind) {
  RepartitionDecision d;
  d.kind = kind;
  d.device = 0;
  d.keeper = 0;
  d.donor = 1;
  return d;
}

TEST(AsyncExecutor, RepartitionWithoutACatalogThrows) {
  HybridOlapSystem system = make_system(100);
  AsyncHybridExecutor executor(system);
  EXPECT_THROW(
      executor.repartition(narrow_pair(RepartitionDecision::Kind::kMerge)),
      InvalidArgument);
  EXPECT_EQ(executor.repartition_merges(), 0u);
}

TEST(AsyncExecutor, RepartitionMidStreamDrainsAndKeepsAnswersCorrect) {
  HybridOlapSystem system = make_catalog_system();
  AsyncHybridExecutor executor(system);
  FaultInjector injector;
  executor.set_fault_injector(&injector);

  // Park every worker at the gate so the burst backs up in the intake
  // queues: the slowest-feasible-first rule stacks the GPU-bound work on
  // the narrow pair, which the merge must then drain and re-place.
  injector.hold_workers();
  WorkloadConfig wl;
  wl.seed = 77;
  wl.text_probability = 0.3;
  QueryGenerator gen(system.schema().dimensions(), system.schema(), wl);
  std::vector<Query> queries;
  std::vector<std::future<ExecutionReport>> futures;
  for (int i = 0; i < 80; ++i) {
    queries.push_back(gen.next());
    futures.push_back(executor.submit(queries.back()));
  }
  wait_for_parked_worker(injector);

  const RepartitionDecision applied =
      executor.repartition(narrow_pair(RepartitionDecision::Kind::kMerge));
  EXPECT_EQ(applied.keeper_width, 2);  // donor's SM folded into the keeper
  EXPECT_EQ(applied.donor_width, 0);
  EXPECT_EQ(executor.repartition_merges(), 1u);
  // With all workers parked, anything queued past the narrow pair's two
  // in-worker jobs was drained and re-placed against the merged widths.
  EXPECT_GT(executor.repartition_drained(), 0u);
  injector.release_workers();

  // Split the pair back apart while the drained work is still resolving;
  // the donor returns to its configured 1-SM width.
  const RepartitionDecision restored =
      executor.repartition(narrow_pair(RepartitionDecision::Kind::kSplit));
  EXPECT_EQ(restored.keeper_width, 1);
  EXPECT_EQ(restored.donor_width, 1);
  EXPECT_EQ(executor.repartition_splits(), 1u);

  // Conservation: no query was lost or duplicated by either drain — every
  // future resolves completed with the oracle's answer.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ExecutionReport report = futures[i].get();
    ASSERT_EQ(report.outcome, ExecutionOutcome::kCompleted) << "query " << i;
    const QueryAnswer oracle = system.answer_on_gpu(queries[i]);
    EXPECT_NEAR(report.answer.value, oracle.value, 1e-6) << "query " << i;
    EXPECT_EQ(report.answer.row_count, oracle.row_count) << "query " << i;
  }
  executor.shutdown();
  EXPECT_EQ(executor.completed(), queries.size());
  EXPECT_EQ(executor.shed(), 0u);
}

}  // namespace
}  // namespace holap
