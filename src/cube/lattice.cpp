#include "cube/lattice.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace holap {

bool ViewId::derivable_from(const ViewId& parent) const {
  if (levels.size() != parent.levels.size()) return false;
  for (std::size_t d = 0; d < levels.size(); ++d) {
    if (levels[d] == kCollapsed) continue;          // anything rolls up
    if (parent.levels[d] == kCollapsed) return false;  // lost the dimension
    if (parent.levels[d] < levels[d]) return false;    // parent too coarse
  }
  return true;
}

std::size_t ViewId::cells(const std::vector<Dimension>& dims) const {
  std::size_t n = 1;
  for (std::size_t d = 0; d < levels.size(); ++d) {
    if (levels[d] == kCollapsed) continue;
    n *= dims[d].level(levels[d]).cardinality;
  }
  return n;
}

std::string ViewId::to_string(const std::vector<Dimension>& dims) const {
  std::ostringstream os;
  for (std::size_t d = 0; d < levels.size(); ++d) {
    if (d) os << " x ";
    os << dims[d].name() << '.';
    if (levels[d] == kCollapsed) {
      os << "(all)";
    } else {
      os << dims[d].level(levels[d]).name;
    }
  }
  return os.str();
}

void validate_view(const ViewId& view, const std::vector<Dimension>& dims) {
  HOLAP_REQUIRE(view.levels.size() == dims.size(),
                "view arity must match dimension count");
  for (std::size_t d = 0; d < dims.size(); ++d) {
    HOLAP_REQUIRE(view.levels[d] == ViewId::kCollapsed ||
                      (view.levels[d] >= 0 &&
                       view.levels[d] < dims[d].level_count()),
                  "view level out of range for dimension");
  }
}

ViewId base_view(const std::vector<Dimension>& dims) {
  ViewId view;
  for (const auto& dim : dims) view.levels.push_back(dim.finest_level());
  return view;
}

ViewId apex_view(const std::vector<Dimension>& dims) {
  ViewId view;
  view.levels.assign(dims.size(), ViewId::kCollapsed);
  return view;
}

std::vector<ViewId> enumerate_lattice(const std::vector<Dimension>& dims) {
  HOLAP_REQUIRE(!dims.empty(), "lattice requires dimensions");
  std::vector<ViewId> views;
  ViewId current;
  current.levels.assign(dims.size(), ViewId::kCollapsed);
  for (;;) {
    views.push_back(current);
    // Odometer over {kCollapsed, 0, ..., L_d - 1} per dimension.
    int d = static_cast<int>(dims.size()) - 1;
    for (; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      if (current.levels[du] + 1 < dims[du].level_count()) {
        ++current.levels[du];
        break;
      }
      current.levels[du] = ViewId::kCollapsed;
    }
    if (d < 0) break;
  }
  // Coarse first: ascending cell count, then lexicographic for stability.
  std::sort(views.begin(), views.end(),
            [&](const ViewId& a, const ViewId& b) {
              const std::size_t ca = a.cells(dims), cb = b.cells(dims);
              if (ca != cb) return ca < cb;
              return a.levels < b.levels;
            });
  return views;
}

MaterializationPlan plan_smallest_parent(const std::vector<Dimension>& dims,
                                         std::vector<ViewId> views,
                                         std::size_t fact_rows) {
  for (const auto& view : views) validate_view(view, dims);
  for (std::size_t i = 0; i < views.size(); ++i) {
    for (std::size_t j = i + 1; j < views.size(); ++j) {
      HOLAP_REQUIRE(!(views[i] == views[j]), "duplicate view in request");
    }
  }
  // Fine-to-coarse processing order makes every potential parent appear
  // before its children; ties broken for determinism.
  std::sort(views.begin(), views.end(),
            [&](const ViewId& a, const ViewId& b) {
              const std::size_t ca = a.cells(dims), cb = b.cells(dims);
              if (ca != cb) return ca > cb;
              return a.levels < b.levels;
            });

  MaterializationPlan plan;
  for (const auto& view : views) {
    MaterializationStep step;
    step.view = view;
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (std::size_t p = 0; p < plan.steps.size(); ++p) {
      if (!view.derivable_from(plan.steps[p].view)) continue;
      const std::size_t cost = plan.steps[p].view.cells(dims);
      if (cost < best) {
        best = cost;
        step.parent = p;
      }
    }
    // The fact table is always a legal parent; prefer it when smaller
    // (it never is in practice for coarse views, but stay principled).
    if (!step.parent.has_value() || fact_rows < best) {
      step.parent = std::nullopt;
      best = fact_rows;
    }
    step.scan_cost = best;
    plan.total_cost += best;
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

MaterializationPlan plan_naive(const std::vector<Dimension>& dims,
                               std::vector<ViewId> views,
                               std::size_t fact_rows) {
  for (const auto& view : views) validate_view(view, dims);
  MaterializationPlan plan;
  for (auto& view : views) {
    MaterializationStep step;
    step.view = std::move(view);
    step.parent = std::nullopt;
    step.scan_cost = fact_rows;
    plan.total_cost += fact_rows;
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace holap
