#include "cube/cube_set.hpp"

#include <algorithm>

namespace holap {
namespace {

std::size_t bytes_of(const std::variant<DenseCube, ChunkedCube>& cube) {
  return std::visit([](const auto& c) { return c.size_bytes(); }, cube);
}

}  // namespace

CubeSet::CubeSet(std::vector<Dimension> dims) : dims_(std::move(dims)) {
  HOLAP_REQUIRE(!dims_.empty(), "cube set requires dimensions");
}

void CubeSet::add_level_from_table(const FactTable& table, int level,
                                   int threads, bool with_minmax) {
  const auto& measures = table.schema().measure_columns();
  add_cube(build_cube(table, level, CubeBasis::kCount, -1, threads));
  for (int m : measures) {
    add_cube(build_cube(table, level, CubeBasis::kSum, m, threads));
    if (with_minmax) {
      add_cube(build_cube(table, level, CubeBasis::kMin, m, threads));
      add_cube(build_cube(table, level, CubeBasis::kMax, m, threads));
    }
  }
}

void CubeSet::add_level_by_rollup(int level, int threads) {
  // Smallest parent: the lowest materialised level above the target.
  const auto parent = std::find_if(
      levels_.begin(), levels_.end(),
      [level](const auto& kv) { return kv.first > level; });
  HOLAP_REQUIRE(parent != levels_.end(), "no finer level to roll up from");
  std::vector<DenseCube> rolled;
  rolled.reserve(parent->second.size());
  for (const auto& [key, cube] : parent->second) {
    if (const auto* dense = std::get_if<DenseCube>(&cube)) {
      rolled.push_back(rollup(*dense, dims_, level, threads));
    } else {
      // Compressed parent: decompress transiently for the roll-up.
      rolled.push_back(rollup(
          std::get<ChunkedCube>(cube).to_dense(dims_), dims_, level,
          threads));
    }
  }
  for (auto& cube : rolled) add_cube(std::move(cube));
}

void CubeSet::add_cube(DenseCube cube) {
  const BasisKey key{cube.basis(), cube.measure()};
  auto& level = levels_[cube.level()];
  HOLAP_REQUIRE(!level.contains(key),
                "cube for this (level, basis, measure) already present");
  level.emplace(key, std::move(cube));
}

void CubeSet::compress_level(int level, int chunk_side, double threshold) {
  const auto it = levels_.find(level);
  HOLAP_REQUIRE(it != levels_.end(), "level not materialised");
  for (auto& [key, cube] : it->second) {
    if (const auto* dense = std::get_if<DenseCube>(&cube)) {
      cube = ChunkedCube::from_dense(*dense, chunk_side, threshold);
    }
  }
}

bool CubeSet::level_compressed(int level) const {
  const auto it = levels_.find(level);
  if (it == levels_.end()) return false;
  for (const auto& [key, cube] : it->second) {
    if (std::holds_alternative<ChunkedCube>(cube)) return true;
  }
  return false;
}

std::vector<int> CubeSet::levels() const {
  std::vector<int> out;
  out.reserve(levels_.size());
  for (const auto& [level, cubes] : levels_) out.push_back(level);
  return out;
}

bool CubeSet::has_level(int level) const { return levels_.contains(level); }

const CubeSet::AnyCube* CubeSet::find_cube(int level, CubeBasis basis,
                                           int measure) const {
  const auto lit = levels_.find(level);
  if (lit == levels_.end()) return nullptr;
  const auto cit = lit->second.find({basis, measure});
  return cit == lit->second.end() ? nullptr : &cit->second;
}

double CubeSet::aggregate_cube(const AnyCube& cube, const CubeRegion& region,
                               int threads) const {
  if (const auto* dense = std::get_if<DenseCube>(&cube)) {
    return aggregate_region(*dense, region, threads).value;
  }
  return std::get<ChunkedCube>(cube).aggregate(region).value;
}

std::vector<CubeSet::BasisKey> CubeSet::required_bases(const Query& q) const {
  std::vector<BasisKey> keys;
  keys.emplace_back(CubeBasis::kCount, -1);  // row count always computed
  switch (q.op) {
    case AggOp::kCount:
      break;
    case AggOp::kSum:
    case AggOp::kAvg:
      for (int m : q.measures) keys.emplace_back(CubeBasis::kSum, m);
      break;
    case AggOp::kMin:
      for (int m : q.measures) keys.emplace_back(CubeBasis::kMin, m);
      break;
    case AggOp::kMax:
      for (int m : q.measures) keys.emplace_back(CubeBasis::kMax, m);
      break;
  }
  return keys;
}

bool CubeSet::level_supports(int level, const Query& q) const {
  for (const auto& [basis, measure] : required_bases(q)) {
    if (find_cube(level, basis, measure) == nullptr) return false;
  }
  return true;
}

std::optional<int> CubeSet::lowest_level_for(const Query& q) const {
  const int required = q.required_resolution();
  for (const auto& [level, cubes] : levels_) {  // map: ascending levels
    if (level < required) continue;
    if (level_supports(level, q)) return level;
  }
  return std::nullopt;
}

std::size_t CubeSet::answer_bytes(const Query& q) const {
  const auto level = lowest_level_for(q);
  HOLAP_REQUIRE(level.has_value(), "cube set cannot answer this query");
  const std::size_t per_cube =
      subcube_bytes(q, dims_, *level, sizeof(double));
  return per_cube * required_bases(q).size();
}

QueryAnswer CubeSet::answer(const Query& q, int threads) const {
  const auto level = lowest_level_for(q);
  HOLAP_REQUIRE(level.has_value(), "cube set cannot answer this query");
  const CubeRegion region = region_for_query(q, dims_, *level);

  QueryAnswer answer;
  answer.row_count = aggregate_cube(
      *find_cube(*level, CubeBasis::kCount, -1), region, threads);

  switch (q.op) {
    case AggOp::kCount:
      answer.value = answer.row_count;
      break;
    case AggOp::kSum:
    case AggOp::kAvg: {
      double sum = 0.0;
      for (int m : q.measures) {
        sum += aggregate_cube(*find_cube(*level, CubeBasis::kSum, m),
                              region, threads);
      }
      answer.value = q.op == AggOp::kSum
                         ? sum
                         : (answer.row_count > 0.0 ? sum / answer.row_count
                                                   : 0.0);
      break;
    }
    case AggOp::kMin: {
      double v = basis_identity(CubeBasis::kMin);
      for (int m : q.measures) {
        v = std::min(v, aggregate_cube(*find_cube(*level, CubeBasis::kMin,
                                                  m),
                                       region, threads));
      }
      answer.value = v;
      break;
    }
    case AggOp::kMax: {
      double v = basis_identity(CubeBasis::kMax);
      for (int m : q.measures) {
        v = std::max(v, aggregate_cube(*find_cube(*level, CubeBasis::kMax,
                                                  m),
                                       region, threads));
      }
      answer.value = v;
      break;
    }
  }
  return answer;
}

std::size_t CubeSet::total_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [level, cubes] : levels_) {
    for (const auto& [key, cube] : cubes) bytes += bytes_of(cube);
  }
  return bytes;
}

}  // namespace holap
