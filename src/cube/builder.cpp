#include "cube/builder.hpp"

#include <omp.h>

#include "common/omp_sync.hpp"

namespace holap {
namespace {

/// Per-thread private cubes stay attractive up to this many cells
/// (32 MB of doubles per thread).
constexpr std::size_t kPrivatizationCells = std::size_t{1} << 22;

struct RowAddresser {
  std::vector<std::span<const std::int32_t>> level_cols;
  std::vector<std::size_t> strides;

  std::size_t cell_of(std::size_t row) const {
    std::size_t idx = 0;
    for (std::size_t d = 0; d < level_cols.size(); ++d) {
      idx += static_cast<std::size_t>(level_cols[d][row]) * strides[d];
    }
    return idx;
  }
};

RowAddresser make_addresser(const FactTable& table, const DenseCube& cube,
                            int level) {
  RowAddresser addr;
  const auto& dims = table.schema().dimensions();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    addr.level_cols.push_back(
        table.dim_level_column(static_cast<int>(d), level));
    addr.strides.push_back(cube.stride(static_cast<int>(d)));
  }
  return addr;
}

double row_value(const FactTable& table, CubeBasis basis, int measure,
                 std::size_t row) {
  if (basis == CubeBasis::kCount) return 1.0;
  return table.measure_column(measure)[row];
}

void scatter_sequential(const FactTable& table, DenseCube& cube,
                        const RowAddresser& addr) {
  const std::size_t rows = table.row_count();
  const CubeBasis basis = cube.basis();
  double* cells = cube.cells().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t idx = addr.cell_of(r);
    cells[idx] = basis_combine(basis, cells[idx],
                               row_value(table, basis, cube.measure(), r));
  }
}

void scatter_private_cubes(const FactTable& table, DenseCube& cube,
                           const RowAddresser& addr, int threads) {
  const std::size_t rows = table.row_count();
  const CubeBasis basis = cube.basis();
  const std::size_t n_cells = cube.cell_count();
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(threads));
  // Invariant: both regions are race-free under OpenMP's fork/exit
  // barriers (thread-private partials, disjoint static merge ranges);
  // OmpRegionSync only surfaces those edges to TSan, including the
  // worker-to-worker edge between region one's writes to `partials` and
  // region two's reads (see common/omp_sync.hpp).
  OmpRegionSync scatter_sync;
  scatter_sync.publish();
#pragma omp parallel num_threads(threads)
  {
    scatter_sync.acquire_published();
    const int tid = omp_get_thread_num();
    auto& local = partials[static_cast<std::size_t>(tid)];
    local.assign(n_cells, basis_identity(basis));
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
      const auto row = static_cast<std::size_t>(r);
      const std::size_t idx = addr.cell_of(row);
      local[idx] = basis_combine(basis, local[idx],
                                 row_value(table, basis, cube.measure(), row));
    }
    scatter_sync.arrive();
  }
  scatter_sync.complete();
  double* cells = cube.cells().data();
  OmpRegionSync merge_sync;
  merge_sync.publish();
#pragma omp parallel num_threads(threads)
  {
    merge_sync.acquire_published();
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n_cells);
         ++i) {
      double v = cells[i];
      for (const auto& local : partials) {
        v = basis_combine(basis, v, local[static_cast<std::size_t>(i)]);
      }
      cells[i] = v;
    }
    merge_sync.arrive();
  }
  merge_sync.complete();
}

void scatter_atomic(const FactTable& table, DenseCube& cube,
                    const RowAddresser& addr, int threads) {
  const std::size_t rows = table.row_count();
  double* cells = cube.cells().data();
  const int measure = cube.measure();
  const bool count = cube.basis() == CubeBasis::kCount;
  // Invariant: cell updates are `omp atomic` (TSan-visible); the region's
  // barriers order the table/cube against the workers, surfaced via
  // OmpRegionSync (see common/omp_sync.hpp).
  OmpRegionSync sync;
  sync.publish();
#pragma omp parallel num_threads(threads)
  {
    sync.acquire_published();
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
      const auto row = static_cast<std::size_t>(r);
      const std::size_t idx = addr.cell_of(row);
      const double v = count ? 1.0 : table.measure_column(measure)[row];
#pragma omp atomic
      cells[idx] += v;
    }
    sync.arrive();
  }
  sync.complete();
}

}  // namespace

DenseCube build_cube(const FactTable& table, int level, CubeBasis basis,
                     int measure, int threads) {
  const auto& dims = table.schema().dimensions();
  DenseCube cube(dims, level, basis, measure);
  const RowAddresser addr = make_addresser(table, cube, level);

  if (threads <= 0) {
    scatter_sequential(table, cube, addr);
  } else if (cube.cell_count() <= kPrivatizationCells) {
    scatter_private_cubes(table, cube, addr, threads);
  } else if (basis == CubeBasis::kSum || basis == CubeBasis::kCount) {
    scatter_atomic(table, cube, addr, threads);
  } else {
    // No portable atomic FP min/max; large min/max cubes build sequentially.
    scatter_sequential(table, cube, addr);
  }
  return cube;
}

}  // namespace holap
