// Sub-cube regions: the "area of limited search" of Figure 2.
//
// A query restricted to a cube becomes, per dimension, a set of disjoint
// inclusive member-code intervals at the cube's level. Range conditions at
// a coarser level widen by the hierarchy fanout; text conditions become one
// interval per translated code; several conditions on one dimension
// intersect. The aggregation kernels walk a region's cartesian product of
// intervals, streaming contiguous runs along the last dimension.
#pragma once

#include <cstdint>
#include <vector>

#include "cube/dense_cube.hpp"
#include "query/query.hpp"

namespace holap {

/// Inclusive member-code interval [lo, hi].
struct Interval {
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Sorted, disjoint, non-adjacent interval set. Normalisation merges
/// overlapping/adjacent intervals so cell runs are maximal.
std::vector<Interval> normalize_intervals(std::vector<Interval> intervals);

/// Intersection of two normalised interval sets.
std::vector<Interval> intersect_intervals(const std::vector<Interval>& a,
                                          const std::vector<Interval>& b);

/// Per-dimension interval sets describing a sub-cube.
struct CubeRegion {
  std::vector<std::vector<Interval>> dims;

  bool empty() const;
  /// Number of cells in the region (product over dims of covered widths).
  std::size_t cell_count() const;
};

/// Region of `q` on a uniform-resolution cube at `cube_level`.
///
/// Preconditions: cube_level >= q.required_resolution(); every text
/// condition already translated (codes filled). Untranslated queries must
/// go through the Translator first — this mirrors the system rule that
/// translation precedes processing.
CubeRegion region_for_query(const Query& q,
                            const std::vector<Dimension>& dims,
                            int cube_level);

}  // namespace holap
