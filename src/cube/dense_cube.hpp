// Dense MOLAP cube storage.
//
// A DenseCube is an N-dimensional dense array of 8-byte cells at one
// uniform hierarchy level ("resolution" in the paper's terms), holding one
// aggregation basis over one measure:
//
//   kSum   — per-cell sum of the measure over the rows mapping to the cell
//   kCount — per-cell row count (measure-independent)
//   kMin / kMax — per-cell extremum of the measure
//
// Storage is row-major with the LAST dimension contiguous, so a sub-cube
// scan streams cache-line-aligned runs — this is the array-based layout of
// Zhao, Deshpande & Naughton [20] (in-memory, so their chunk-offset disk
// compression is unnecessary) and is what makes cube processing
// memory-bandwidth-bound (§III-B), the property the paper's CPU
// performance model rests on.
//
// Empty cells hold the basis identity (0 for sum/count, ±inf for min/max),
// so aggregation over any region needs no occupancy mask.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "relational/dimensions.hpp"

namespace holap {

enum class CubeBasis : std::uint8_t { kSum, kCount, kMin, kMax };

const char* to_string(CubeBasis basis);

/// Identity value for a basis (what empty cells hold).
double basis_identity(CubeBasis basis);

/// Combine two partial aggregates of the same basis.
double basis_combine(CubeBasis basis, double a, double b);

/// Size in bytes of a uniform-resolution cube over `dims` at `level` with
/// `cell_bytes` per cell — eq. (3)'s capacity math without allocating.
std::size_t cube_bytes(const std::vector<Dimension>& dims, int level,
                       std::size_t cell_bytes = sizeof(double));

class DenseCube {
 public:
  /// Allocates (and identity-fills) the full dense array. `measure` is the
  /// schema column the basis aggregates (-1 for kCount).
  DenseCube(const std::vector<Dimension>& dims, int level, CubeBasis basis,
            int measure);

  int level() const { return level_; }
  CubeBasis basis() const { return basis_; }
  int measure() const { return measure_; }
  int dim_count() const { return static_cast<int>(cards_.size()); }

  /// Member count of dimension d at this cube's level.
  std::uint32_t cardinality(int d) const;

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t size_bytes() const { return cells_.size() * sizeof(double); }

  /// Linear index of a cell from per-dimension member codes.
  std::size_t linear_index(std::span<const std::int32_t> coords) const;

  double& cell(std::size_t linear) { return cells_[linear]; }
  double cell(std::size_t linear) const { return cells_[linear]; }
  std::span<double> cells() { return cells_; }
  std::span<const double> cells() const { return cells_; }

  /// Stride (in cells) of dimension d in the linear layout.
  std::size_t stride(int d) const;

 private:
  int level_;
  CubeBasis basis_;
  int measure_;
  std::vector<std::uint32_t> cards_;
  std::vector<std::size_t> strides_;
  std::vector<double> cells_;
};

}  // namespace holap
