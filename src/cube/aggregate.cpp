#include "cube/aggregate.hpp"

#include <omp.h>

#include <algorithm>

#include "common/omp_sync.hpp"

namespace holap {
namespace {

// Accumulate one contiguous run of cells. Specialised per basis so the
// inner loop is a tight vectorisable stream.
template <CubeBasis B>
inline void accumulate_run(const double* p, std::size_t n, double& acc) {
  if constexpr (B == CubeBasis::kSum || B == CubeBasis::kCount) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += p[i];
    acc += s;
  } else if constexpr (B == CubeBasis::kMin) {
    double m = acc;
    for (std::size_t i = 0; i < n; ++i) m = std::min(m, p[i]);
    acc = m;
  } else {
    double m = acc;
    for (std::size_t i = 0; i < n; ++i) m = std::max(m, p[i]);
    acc = m;
  }
}

// Enumerate base offsets over dimensions [d, ndims-1): the cartesian
// product of all but the last dimension's intervals.
void build_outer_offsets(const DenseCube& cube, const CubeRegion& region,
                         int d, std::size_t acc,
                         std::vector<std::size_t>& out) {
  if (d == cube.dim_count() - 1) {
    out.push_back(acc);
    return;
  }
  const std::size_t stride = cube.stride(d);
  for (const Interval& iv : region.dims[static_cast<std::size_t>(d)]) {
    for (std::int32_t i = iv.lo; i <= iv.hi; ++i) {
      build_outer_offsets(cube, region, d + 1,
                          acc + static_cast<std::size_t>(i) * stride, out);
    }
  }
}

template <CubeBasis B>
AggregateResult scan(const DenseCube& cube, const CubeRegion& region,
                     int threads) {
  AggregateResult result;
  result.value = basis_identity(B);

  std::vector<std::size_t> offsets;
  build_outer_offsets(cube, region, 0, 0, offsets);
  const auto& inner = region.dims.back();
  std::size_t inner_cells = 0;
  for (const Interval& iv : inner) {
    inner_cells += static_cast<std::size_t>(iv.hi - iv.lo + 1);
  }
  result.cells_scanned = offsets.size() * inner_cells;
  result.bytes_scanned = result.cells_scanned * sizeof(double);
  const double* cells = cube.cells().data();

  if (threads <= 0) {
    double acc = basis_identity(B);
    for (const std::size_t base : offsets) {
      for (const Interval& iv : inner) {
        accumulate_run<B>(cells + base + static_cast<std::size_t>(iv.lo),
                          static_cast<std::size_t>(iv.hi - iv.lo + 1), acc);
      }
    }
    result.value = acc;
    return result;
  }

  std::vector<double> partial(static_cast<std::size_t>(threads),
                              basis_identity(B));
  // Invariant: `offsets`/`partial` are ordered with the workers by the
  // region's fork and exit barrier; OmpRegionSync only makes those edges
  // visible to TSan (see common/omp_sync.hpp).
  OmpRegionSync sync;
  sync.publish();
#pragma omp parallel num_threads(threads)
  {
    sync.acquire_published();
    const int tid = omp_get_thread_num();
    double acc = basis_identity(B);
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t o = 0;
         o < static_cast<std::ptrdiff_t>(offsets.size()); ++o) {
      const std::size_t base = offsets[static_cast<std::size_t>(o)];
      for (const Interval& iv : inner) {
        accumulate_run<B>(cells + base + static_cast<std::size_t>(iv.lo),
                          static_cast<std::size_t>(iv.hi - iv.lo + 1), acc);
      }
    }
    partial[static_cast<std::size_t>(tid)] = acc;
    sync.arrive();
  }
  sync.complete();
  double acc = basis_identity(B);
  for (double p : partial) acc = basis_combine(B, acc, p);
  result.value = acc;
  return result;
}

}  // namespace

AggregateResult aggregate_region(const DenseCube& cube,
                                 const CubeRegion& region, int threads) {
  HOLAP_REQUIRE(static_cast<int>(region.dims.size()) == cube.dim_count(),
                "region arity must match cube dimensionality");
  if (region.empty()) {
    AggregateResult r;
    r.value = basis_identity(cube.basis());
    return r;
  }
  for (int d = 0; d < cube.dim_count(); ++d) {
    const auto& ivs = region.dims[static_cast<std::size_t>(d)];
    HOLAP_REQUIRE(ivs.front().lo >= 0 &&
                      static_cast<std::uint32_t>(ivs.back().hi) <
                          cube.cardinality(d),
                  "region exceeds cube bounds");
  }
  switch (cube.basis()) {
    case CubeBasis::kSum:
      return scan<CubeBasis::kSum>(cube, region, threads);
    case CubeBasis::kCount:
      return scan<CubeBasis::kCount>(cube, region, threads);
    case CubeBasis::kMin:
      return scan<CubeBasis::kMin>(cube, region, threads);
    case CubeBasis::kMax:
      return scan<CubeBasis::kMax>(cube, region, threads);
  }
  return {};
}

}  // namespace holap
