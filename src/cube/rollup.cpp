#include "cube/rollup.hpp"

#include <omp.h>

#include "common/omp_sync.hpp"

namespace holap {
namespace {

// Decodes fine linear indices incrementally: for each fine cell, the
// corresponding coarse linear index. Fine cells are visited in linear
// order, so per-dimension counters replace div/mod in the hot loop.
struct CoarseMapper {
  std::vector<std::uint32_t> fine_cards;
  std::vector<std::uint32_t> fanouts;       // fine members per coarse member
  std::vector<std::size_t> coarse_strides;  // strides in the coarse cube

  std::size_t coarse_of(std::size_t fine_linear) const {
    std::size_t idx = 0;
    for (int d = static_cast<int>(fine_cards.size()) - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      const std::size_t coord = fine_linear % fine_cards[du];
      fine_linear /= fine_cards[du];
      idx += (coord / fanouts[du]) * coarse_strides[du];
    }
    return idx;
  }
};

}  // namespace

DenseCube rollup(const DenseCube& fine, const std::vector<Dimension>& dims,
                 int coarse_level, int threads) {
  HOLAP_REQUIRE(static_cast<int>(dims.size()) == fine.dim_count(),
                "dimension list must match cube dimensionality");
  HOLAP_REQUIRE(coarse_level >= 0 && coarse_level <= fine.level(),
                "rollup target must be at or above the fine level");
  DenseCube coarse(dims, coarse_level, fine.basis(), fine.measure());

  CoarseMapper map;
  for (int d = 0; d < fine.dim_count(); ++d) {
    map.fine_cards.push_back(fine.cardinality(d));
    map.fanouts.push_back(
        dims[static_cast<std::size_t>(d)].fanout(coarse_level, fine.level()));
    map.coarse_strides.push_back(coarse.stride(d));
  }

  const CubeBasis basis = fine.basis();
  const double* src = fine.cells().data();
  const std::size_t n = fine.cell_count();

  if (threads <= 0) {
    double* dst = coarse.cells().data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = map.coarse_of(i);
      dst[c] = basis_combine(basis, dst[c], src[i]);
    }
    return coarse;
  }

  const std::size_t coarse_cells = coarse.cell_count();
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(threads));
  // Invariant: thread-private partials + the region's fork/exit barriers
  // make this race-free; OmpRegionSync only surfaces those edges to TSan
  // (see common/omp_sync.hpp).
  OmpRegionSync sync;
  sync.publish();
#pragma omp parallel num_threads(threads)
  {
    sync.acquire_published();
    auto& local = partials[static_cast<std::size_t>(omp_get_thread_num())];
    local.assign(coarse_cells, basis_identity(basis));
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      const std::size_t c = map.coarse_of(static_cast<std::size_t>(i));
      local[c] = basis_combine(basis, local[c],
                               src[static_cast<std::size_t>(i)]);
    }
    sync.arrive();
  }
  sync.complete();
  double* dst = coarse.cells().data();
  for (const auto& local : partials) {
    for (std::size_t c = 0; c < coarse_cells; ++c) {
      dst[c] = basis_combine(basis, dst[c], local[c]);
    }
  }
  return coarse;
}

}  // namespace holap
