#include "cube/view_cube.hpp"

namespace holap {

ViewCube::ViewCube(const std::vector<Dimension>& dims, ViewId view,
                   CubeBasis basis, int measure)
    : view_(std::move(view)), basis_(basis), measure_(measure) {
  validate_view(view_, dims);
  HOLAP_REQUIRE(basis != CubeBasis::kCount || measure == -1,
                "count basis takes no measure");
  HOLAP_REQUIRE(basis == CubeBasis::kCount || measure >= 0,
                "sum/min/max basis requires a measure column");
  for (std::size_t d = 0; d < dims.size(); ++d) {
    cards_.push_back(view_.levels[d] == ViewId::kCollapsed
                         ? 1u
                         : dims[d].level(view_.levels[d]).cardinality);
  }
  strides_.assign(cards_.size(), 1);
  for (int d = static_cast<int>(cards_.size()) - 2; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    strides_[du] = strides_[du + 1] * cards_[du + 1];
  }
  cells_.assign(strides_[0] * cards_[0], basis_identity(basis));
}

std::size_t ViewCube::linear_index(
    std::span<const std::int32_t> coords) const {
  HOLAP_REQUIRE(coords.size() == cards_.size(),
                "coordinate arity must match dimension count");
  std::size_t idx = 0;
  for (std::size_t d = 0; d < cards_.size(); ++d) {
    if (cards_[d] == 1) continue;  // collapsed: any code maps to slot 0
    HOLAP_REQUIRE(coords[d] >= 0 &&
                      static_cast<std::uint32_t>(coords[d]) < cards_[d],
                  "view coordinate out of range");
    idx += static_cast<std::size_t>(coords[d]) * strides_[d];
  }
  return idx;
}

double ViewCube::combined_total() const {
  double acc = basis_identity(basis_);
  for (const double c : cells_) acc = basis_combine(basis_, acc, c);
  return acc;
}

ViewCube build_view(const FactTable& table, const ViewId& view,
                    CubeBasis basis, int measure) {
  const auto& dims = table.schema().dimensions();
  ViewCube cube(dims, view, basis, measure);
  // Bind the column of each non-collapsed dimension at the view's level.
  std::vector<std::span<const std::int32_t>> columns(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (view.levels[d] == ViewId::kCollapsed) continue;
    columns[d] = table.dim_level_column(static_cast<int>(d), view.levels[d]);
  }
  std::vector<std::int32_t> coords(dims.size(), 0);
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    for (std::size_t d = 0; d < dims.size(); ++d) {
      coords[d] = columns[d].empty() ? 0 : columns[d][r];
    }
    const std::size_t idx = cube.linear_index(coords);
    const double v =
        basis == CubeBasis::kCount ? 1.0 : table.measure_column(measure)[r];
    cube.cells()[idx] = basis_combine(basis, cube.cells()[idx], v);
  }
  return cube;
}

ViewCube rollup_view(const ViewCube& parent,
                     const std::vector<Dimension>& dims,
                     const ViewId& child) {
  HOLAP_REQUIRE(child.derivable_from(parent.view()),
                "child view is not derivable from this parent");
  ViewCube cube(dims, child, parent.basis(), parent.measure());
  // Per dimension: how a parent coordinate maps to a child coordinate.
  const std::size_t n = dims.size();
  std::vector<std::uint32_t> fanout(n, 1);   // parent members per child
  std::vector<bool> collapse(n, false);
  for (std::size_t d = 0; d < n; ++d) {
    const int pl = parent.view().levels[d];
    const int cl = child.levels[d];
    if (cl == ViewId::kCollapsed) {
      collapse[d] = true;
    } else {
      fanout[d] = dims[d].fanout(cl, pl);
    }
  }
  // Walk the parent's cells in linear order with an incremental odometer.
  std::vector<std::int32_t> pcoords(n, 0);
  std::vector<std::int32_t> ccoords(n, 0);
  const auto parent_card = [&](std::size_t d) {
    const int pl = parent.view().levels[d];
    return pl == ViewId::kCollapsed ? 1u : dims[d].level(pl).cardinality;
  };
  for (std::size_t i = 0; i < parent.cell_count(); ++i) {
    for (std::size_t d = 0; d < n; ++d) {
      ccoords[d] = collapse[d]
                       ? 0
                       : pcoords[d] / static_cast<std::int32_t>(fanout[d]);
    }
    const std::size_t idx = cube.linear_index(ccoords);
    cube.cells()[idx] = basis_combine(parent.basis(), cube.cells()[idx],
                                      parent.cells()[i]);
    // Advance the parent odometer (last dimension fastest, matching the
    // linear layout).
    for (int d = static_cast<int>(n) - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      if (static_cast<std::uint32_t>(++pcoords[du]) < parent_card(du)) break;
      pcoords[du] = 0;
    }
  }
  return cube;
}

std::vector<ViewCube> execute_plan(const FactTable& table,
                                   const MaterializationPlan& plan,
                                   CubeBasis basis, int measure) {
  const auto& dims = table.schema().dimensions();
  std::vector<ViewCube> cubes;
  cubes.reserve(plan.steps.size());
  for (const auto& step : plan.steps) {
    if (step.parent.has_value()) {
      HOLAP_REQUIRE(*step.parent < cubes.size(),
                    "plan parent must precede its child");
      cubes.push_back(
          rollup_view(cubes[*step.parent], dims, step.view));
    } else {
      cubes.push_back(build_view(table, step.view, basis, measure));
    }
  }
  return cubes;
}

}  // namespace holap
