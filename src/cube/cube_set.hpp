// The pre-computed cube ladder of Figure 1.
//
// A hybrid OLAP system keeps several cubes of the same data at different
// resolutions — coarse cubes are tiny and fast, fine ones large and slow.
// Level M in Figure 1 is the finest resolution the CPU's memory can hold;
// queries needing finer data must go to the GPU's fact table. "It is always
// desirable to respond to the query using a cube with lowest possible
// resolution to minimize memory accesses" (§III-C) — CubeSet implements
// exactly that selection, plus the eq.-(3) sub-cube size estimate the
// scheduler's CPU time model consumes.
#pragma once

#include <map>
#include <optional>
#include <variant>

#include "cube/aggregate.hpp"
#include "cube/builder.hpp"
#include "cube/chunked_cube.hpp"
#include "cube/rollup.hpp"

namespace holap {

/// A set of uniform-resolution cubes over one fact table's dimensions.
class CubeSet {
 public:
  explicit CubeSet(std::vector<Dimension> dims);

  const std::vector<Dimension>& dimensions() const { return dims_; }

  /// Materialise a full level: one kSum cube per measure column of
  /// `table`'s schema, one kCount cube, one kMin and kMax cube per measure
  /// when `with_minmax`. Builds from the fact table.
  void add_level_from_table(const FactTable& table, int level, int threads = 0,
                            bool with_minmax = false);

  /// Materialise a coarser level by rolling up an existing finer one
  /// (the smallest existing parent is chosen automatically).
  void add_level_by_rollup(int level, int threads = 0);

  /// Insert one externally built cube.
  void add_cube(DenseCube cube);

  /// Convert every cube at `level` to chunked/compressed storage
  /// (cube/chunked_cube.hpp). Answers are unchanged; memory shrinks in
  /// proportion to the level's sparsity — what makes fine levels
  /// materialisable at all (see bench_ablation_storage).
  void compress_level(int level, int chunk_side = 16,
                      double threshold = kChunkCompressionThreshold);

  /// Is any cube at `level` stored compressed?
  bool level_compressed(int level) const;

  /// Levels present, ascending (coarsest first).
  std::vector<int> levels() const;
  bool has_level(int level) const;

  /// Lowest materialised level that can answer `q` — at least the query's
  /// required resolution R (eq. 2) and holding every basis the operator
  /// needs. nullopt when no cube qualifies (the query must go to the GPU).
  std::optional<int> lowest_level_for(const Query& q) const;

  bool can_answer(const Query& q) const {
    return lowest_level_for(q).has_value();
  }

  /// Eq. (3): bytes the CPU must traverse to answer `q` on the level this
  /// set would choose. Counts all basis cubes the operator touches.
  /// Throws when the set cannot answer `q`.
  std::size_t answer_bytes(const Query& q) const;

  /// Answer `q` on the chosen level. The query must be translated.
  /// `threads`: 0 = sequential engine, n >= 1 = OpenMP engine.
  QueryAnswer answer(const Query& q, int threads = 0) const;

  /// Total memory held by all cubes.
  std::size_t total_bytes() const;

 private:
  using BasisKey = std::pair<CubeBasis, int>;  // (basis, measure)
  using AnyCube = std::variant<DenseCube, ChunkedCube>;
  std::vector<Dimension> dims_;
  std::map<int, std::map<BasisKey, AnyCube>> levels_;

  const AnyCube* find_cube(int level, CubeBasis basis, int measure) const;
  double aggregate_cube(const AnyCube& cube, const CubeRegion& region,
                        int threads) const;
  bool level_supports(int level, const Query& q) const;
  std::vector<BasisKey> required_bases(const Query& q) const;
};

}  // namespace holap
