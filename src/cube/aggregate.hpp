// Sub-cube aggregation — the memory-bandwidth-bound kernel of §III-B.
//
// Aggregating a region of a dense cube reads every cell of the sub-cube
// exactly once, streaming contiguous runs along the last dimension; the
// paper's CPU performance model (eqs. 4–10) is a model of precisely this
// kernel's run time as a function of the sub-cube's size in MB. Both a
// sequential and an OpenMP implementation are provided; Figures 3–5
// benchmark them and perfmodel fits their measurements.
#pragma once

#include "cube/region.hpp"

namespace holap {

struct AggregateResult {
  double value = 0.0;            ///< combined basis value over the region
  std::size_t cells_scanned = 0;
  std::size_t bytes_scanned = 0;  ///< cells * sizeof(double)
};

/// Aggregate `region` of `cube` with the cube's own basis.
///
/// `threads` selects the implementation: 0 = sequential code path (no
/// OpenMP constructs at all, the paper's original single-threaded engine);
/// n >= 1 = OpenMP parallel scan with n threads (the paper's new engine;
/// n may exceed the physical core count, as in any oversubscribed run).
AggregateResult aggregate_region(const DenseCube& cube,
                                 const CubeRegion& region, int threads = 0);

}  // namespace holap
