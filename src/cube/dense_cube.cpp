#include "cube/dense_cube.hpp"

#include <algorithm>
#include <limits>

namespace holap {

const char* to_string(CubeBasis basis) {
  switch (basis) {
    case CubeBasis::kSum:
      return "sum";
    case CubeBasis::kCount:
      return "count";
    case CubeBasis::kMin:
      return "min";
    case CubeBasis::kMax:
      return "max";
  }
  return "?";
}

double basis_identity(CubeBasis basis) {
  switch (basis) {
    case CubeBasis::kSum:
    case CubeBasis::kCount:
      return 0.0;
    case CubeBasis::kMin:
      return std::numeric_limits<double>::infinity();
    case CubeBasis::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double basis_combine(CubeBasis basis, double a, double b) {
  switch (basis) {
    case CubeBasis::kSum:
    case CubeBasis::kCount:
      return a + b;
    case CubeBasis::kMin:
      return std::min(a, b);
    case CubeBasis::kMax:
      return std::max(a, b);
  }
  return a;
}

std::size_t cube_bytes(const std::vector<Dimension>& dims, int level,
                       std::size_t cell_bytes) {
  std::size_t cells = 1;
  for (const auto& dim : dims) {
    cells *= dim.level(level).cardinality;
  }
  return cells * cell_bytes;
}

DenseCube::DenseCube(const std::vector<Dimension>& dims, int level,
                     CubeBasis basis, int measure)
    : level_(level), basis_(basis), measure_(measure) {
  HOLAP_REQUIRE(!dims.empty(), "cube requires at least one dimension");
  HOLAP_REQUIRE(basis != CubeBasis::kCount || measure == -1,
                "count basis takes no measure");
  HOLAP_REQUIRE(basis == CubeBasis::kCount || measure >= 0,
                "sum/min/max basis requires a measure column");
  cards_.reserve(dims.size());
  for (const auto& dim : dims) {
    HOLAP_REQUIRE(level >= 0 && level < dim.level_count(),
                  "cube level out of range for dimension");
    cards_.push_back(dim.level(level).cardinality);
  }
  strides_.assign(cards_.size(), 1);
  for (int d = static_cast<int>(cards_.size()) - 2; d >= 0; --d) {
    strides_[static_cast<std::size_t>(d)] =
        strides_[static_cast<std::size_t>(d) + 1] *
        cards_[static_cast<std::size_t>(d) + 1];
  }
  const std::size_t total = strides_[0] * cards_[0];
  cells_.assign(total, basis_identity(basis));
}

std::uint32_t DenseCube::cardinality(int d) const {
  HOLAP_REQUIRE(d >= 0 && d < dim_count(), "dimension index out of range");
  return cards_[static_cast<std::size_t>(d)];
}

std::size_t DenseCube::stride(int d) const {
  HOLAP_REQUIRE(d >= 0 && d < dim_count(), "dimension index out of range");
  return strides_[static_cast<std::size_t>(d)];
}

std::size_t DenseCube::linear_index(
    std::span<const std::int32_t> coords) const {
  HOLAP_REQUIRE(coords.size() == cards_.size(),
                "coordinate arity must match dimension count");
  std::size_t idx = 0;
  for (std::size_t d = 0; d < cards_.size(); ++d) {
    HOLAP_REQUIRE(coords[d] >= 0 && static_cast<std::uint32_t>(coords[d]) <
                                        cards_[d],
                  "cube coordinate out of range");
    idx += static_cast<std::size_t>(coords[d]) * strides_[d];
  }
  return idx;
}

}  // namespace holap
