#include "cube/chunked_cube.hpp"

#include <algorithm>
#include <cmath>

namespace holap {
namespace {

// Iterate the cartesian product of [0, extents[d]) incrementally.
bool advance_odometer(std::vector<std::int32_t>& coords,
             std::span<const std::uint32_t> extents) {
  for (int d = static_cast<int>(coords.size()) - 1; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    if (static_cast<std::uint32_t>(++coords[du]) < extents[du]) return true;
    coords[du] = 0;
  }
  return false;
}

}  // namespace

std::size_t ChunkedCube::chunk_cells() const {
  std::size_t cells = 1;
  for (int d = 0; d < dim_count(); ++d) {
    cells *= static_cast<std::size_t>(chunk_side_);
  }
  return cells;
}

std::size_t ChunkedCube::grid_index(
    std::span<const std::int32_t> chunk_coords) const {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < chunk_coords.size(); ++d) {
    idx += static_cast<std::size_t>(chunk_coords[d]) * grid_strides_[d];
  }
  return idx;
}

ChunkedCube ChunkedCube::from_dense(const DenseCube& dense, int chunk_side,
                                    double threshold) {
  HOLAP_REQUIRE(chunk_side >= 1, "chunk side must be positive");
  HOLAP_REQUIRE(threshold >= 0.0 && threshold <= 1.0,
                "threshold must be in [0,1]");
  ChunkedCube cube;
  cube.level_ = dense.level();
  cube.basis_ = dense.basis();
  cube.measure_ = dense.measure();
  cube.chunk_side_ = chunk_side;
  const int n = dense.dim_count();
  for (int d = 0; d < n; ++d) {
    cube.cards_.push_back(dense.cardinality(d));
    cube.chunk_grid_.push_back(
        (dense.cardinality(d) + static_cast<std::uint32_t>(chunk_side) - 1) /
        static_cast<std::uint32_t>(chunk_side));
  }
  cube.grid_strides_.assign(static_cast<std::size_t>(n), 1);
  cube.local_strides_.assign(static_cast<std::size_t>(n), 1);
  for (int d = n - 2; d >= 0; --d) {
    const auto du = static_cast<std::size_t>(d);
    cube.grid_strides_[du] =
        cube.grid_strides_[du + 1] * cube.chunk_grid_[du + 1];
    cube.local_strides_[du] =
        cube.local_strides_[du + 1] * static_cast<std::size_t>(chunk_side);
  }
  std::size_t total_chunks = 1;
  for (const std::uint32_t g : cube.chunk_grid_) total_chunks *= g;
  cube.chunks_.resize(total_chunks);

  const double identity = basis_identity(dense.basis());
  const std::size_t chunk_cells = cube.chunk_cells();

  std::vector<std::int32_t> chunk_coords(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> local(static_cast<std::size_t>(n));
  std::vector<std::int32_t> global(static_cast<std::size_t>(n));
  do {
    // Gather this chunk's cells from the dense cube.
    SparseChunk sparse;
    DenseChunk values(chunk_cells, identity);
    std::size_t filled = 0;
    std::fill(local.begin(), local.end(), 0);
    std::vector<std::uint32_t> extents(static_cast<std::size_t>(n));
    bool any_cell = true;
    for (int d = 0; d < n; ++d) {
      const auto du = static_cast<std::size_t>(d);
      const std::int64_t base =
          static_cast<std::int64_t>(chunk_coords[du]) * chunk_side;
      const std::int64_t extent =
          std::min<std::int64_t>(chunk_side, cube.cards_[du] - base);
      extents[du] = static_cast<std::uint32_t>(extent);
      any_cell = any_cell && extent > 0;
    }
    if (any_cell) {
      do {
        std::uint32_t offset = 0;
        for (int d = 0; d < n; ++d) {
          const auto du = static_cast<std::size_t>(d);
          global[du] = chunk_coords[du] * chunk_side + local[du];
          offset += static_cast<std::uint32_t>(
              static_cast<std::size_t>(local[du]) * cube.local_strides_[du]);
        }
        const double v = dense.cell(dense.linear_index(global));
        values[offset] = v;
        if (v != identity) {
          ++filled;
          sparse.push_back({offset, v});
        }
      } while (advance_odometer(local, extents));
    }

    Chunk& slot = cube.chunks_[cube.grid_index(chunk_coords)];
    const double fill =
        static_cast<double>(filled) / static_cast<double>(chunk_cells);
    if (filled == 0) {
      slot = std::monostate{};
    } else if (fill < threshold) {
      slot = std::move(sparse);  // already offset-sorted by construction
    } else {
      slot = std::move(values);
    }
  } while (advance_odometer(chunk_coords, cube.chunk_grid_));
  return cube;
}

std::uint32_t ChunkedCube::cardinality(int d) const {
  HOLAP_REQUIRE(d >= 0 && d < dim_count(), "dimension index out of range");
  return cards_[static_cast<std::size_t>(d)];
}

std::size_t ChunkedCube::cell_count() const {
  std::size_t cells = 1;
  for (const std::uint32_t c : cards_) cells *= c;
  return cells;
}

std::size_t ChunkedCube::stored_value_count() const {
  std::size_t stored = 0;
  for (const Chunk& chunk : chunks_) {
    if (const auto* dense = std::get_if<DenseChunk>(&chunk)) {
      stored += dense->size();
    } else if (const auto* sparse = std::get_if<SparseChunk>(&chunk)) {
      stored += sparse->size();
    }
  }
  return stored;
}

std::size_t ChunkedCube::size_bytes() const {
  std::size_t bytes = chunks_.size() * sizeof(Chunk);
  for (const Chunk& chunk : chunks_) {
    if (const auto* dense = std::get_if<DenseChunk>(&chunk)) {
      bytes += dense->size() * sizeof(double);
    } else if (const auto* sparse = std::get_if<SparseChunk>(&chunk)) {
      bytes += sparse->size() * sizeof(SparseEntry);
    }
  }
  return bytes;
}

std::size_t ChunkedCube::sparse_chunk_count() const {
  std::size_t n = 0;
  for (const Chunk& chunk : chunks_) {
    n += std::holds_alternative<SparseChunk>(chunk);
  }
  return n;
}

double ChunkedCube::cell(std::span<const std::int32_t> coords) const {
  HOLAP_REQUIRE(static_cast<int>(coords.size()) == dim_count(),
                "coordinate arity must match dimensionality");
  std::vector<std::int32_t> chunk_coords(coords.size());
  std::uint32_t offset = 0;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    HOLAP_REQUIRE(coords[d] >= 0 &&
                      static_cast<std::uint32_t>(coords[d]) < cards_[d],
                  "coordinate out of range");
    chunk_coords[d] = coords[d] / chunk_side_;
    offset += static_cast<std::uint32_t>(
        static_cast<std::size_t>(coords[d] % chunk_side_) *
        local_strides_[d]);
  }
  const Chunk& chunk = chunks_[grid_index(chunk_coords)];
  if (const auto* dense = std::get_if<DenseChunk>(&chunk)) {
    return (*dense)[offset];
  }
  if (const auto* sparse = std::get_if<SparseChunk>(&chunk)) {
    const auto it = std::lower_bound(
        sparse->begin(), sparse->end(), offset,
        [](const SparseEntry& e, std::uint32_t o) { return e.offset < o; });
    if (it != sparse->end() && it->offset == offset) return it->value;
  }
  return basis_identity(basis_);
}

AggregateResult ChunkedCube::aggregate(const CubeRegion& region) const {
  HOLAP_REQUIRE(static_cast<int>(region.dims.size()) == dim_count(),
                "region arity must match cube dimensionality");
  AggregateResult result;
  result.value = basis_identity(basis_);
  result.cells_scanned = region.cell_count();
  result.bytes_scanned = result.cells_scanned * sizeof(double);
  if (region.empty()) return result;
  for (int d = 0; d < dim_count(); ++d) {
    const auto& ivs = region.dims[static_cast<std::size_t>(d)];
    HOLAP_REQUIRE(ivs.front().lo >= 0 &&
                      static_cast<std::uint32_t>(ivs.back().hi) <
                          cardinality(d),
                  "region exceeds cube bounds");
  }

  const int n = dim_count();
  double acc = basis_identity(basis_);

  // Per chunk: intersect the region with the chunk's box (in local
  // coordinates), then stream dense boxes / filter sparse entries.
  std::vector<std::int32_t> chunk_coords(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<Interval>> local_ivs(static_cast<std::size_t>(n));
  std::vector<std::int32_t> local(static_cast<std::size_t>(n));
  do {
    const Chunk& chunk = chunks_[grid_index(chunk_coords)];
    if (std::holds_alternative<std::monostate>(chunk)) continue;
    bool overlaps = true;
    for (int d = 0; d < n && overlaps; ++d) {
      const auto du = static_cast<std::size_t>(d);
      const std::int32_t base = chunk_coords[du] * chunk_side_;
      local_ivs[du].clear();
      for (const Interval& iv : region.dims[du]) {
        const std::int32_t lo = std::max(iv.lo - base, 0);
        const std::int32_t hi =
            std::min<std::int32_t>(iv.hi - base, chunk_side_ - 1);
        if (lo <= hi) local_ivs[du].push_back({lo, hi});
      }
      overlaps = !local_ivs[du].empty();
    }
    if (!overlaps) continue;

    if (const auto* sparse = std::get_if<SparseChunk>(&chunk)) {
      for (const SparseEntry& entry : *sparse) {
        std::size_t rest = entry.offset;
        bool inside = true;
        for (int d = 0; d < n && inside; ++d) {
          const auto du = static_cast<std::size_t>(d);
          const auto coord = static_cast<std::int32_t>(
              rest / local_strides_[du]);
          rest %= local_strides_[du];
          bool in_dim = false;
          for (const Interval& iv : local_ivs[du]) {
            in_dim = in_dim || (coord >= iv.lo && coord <= iv.hi);
          }
          inside = in_dim;
        }
        if (inside) acc = basis_combine(basis_, acc, entry.value);
      }
      continue;
    }

    const DenseChunk& dense = std::get<DenseChunk>(chunk);
    // Walk the cartesian product of the local intervals; runs along the
    // last dimension are contiguous within the chunk.
    std::vector<std::size_t> iv_cursor(static_cast<std::size_t>(n), 0);
    for (std::size_t d = 0; d < static_cast<std::size_t>(n); ++d) {
      local[d] = local_ivs[d][0].lo;
    }
    for (;;) {
      // Accumulate the run along the last dimension.
      std::size_t base = 0;
      for (int d = 0; d < n - 1; ++d) {
        const auto du = static_cast<std::size_t>(d);
        base += static_cast<std::size_t>(local[du]) * local_strides_[du];
      }
      for (const Interval& iv :
           local_ivs[static_cast<std::size_t>(n) - 1]) {
        for (std::int32_t i = iv.lo; i <= iv.hi; ++i) {
          acc = basis_combine(basis_, acc,
                              dense[base + static_cast<std::size_t>(i)]);
        }
      }
      // Advance the outer dimensions across their interval lists.
      int d = n - 2;
      for (; d >= 0; --d) {
        const auto du = static_cast<std::size_t>(d);
        if (++local[du] <= local_ivs[du][iv_cursor[du]].hi) break;
        if (++iv_cursor[du] < local_ivs[du].size()) {
          local[du] = local_ivs[du][iv_cursor[du]].lo;
          break;
        }
        iv_cursor[du] = 0;
        local[du] = local_ivs[du][0].lo;
      }
      if (d < 0) break;
    }
  } while (advance_odometer(chunk_coords, chunk_grid_));

  result.value = acc;
  return result;
}

DenseCube ChunkedCube::to_dense(const std::vector<Dimension>& dims) const {
  DenseCube dense(dims, level_, basis_, measure_);
  HOLAP_REQUIRE(dense.dim_count() == dim_count() &&
                    [&] {
                      for (int d = 0; d < dim_count(); ++d) {
                        if (dense.cardinality(d) != cardinality(d)) {
                          return false;
                        }
                      }
                      return true;
                    }(),
                "dimension list does not match this cube's shape");
  std::vector<std::int32_t> coords(static_cast<std::size_t>(dim_count()), 0);
  do {
    dense.cell(dense.linear_index(coords)) = cell(coords);
  } while (advance_odometer(coords, cards_));
  return dense;
}

}  // namespace holap
