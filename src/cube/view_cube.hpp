// Materialized group-by views (general cuboids).
//
// A ViewCube is the dense array of one lattice view (cube/lattice.hpp):
// per-dimension levels may differ and dimensions may be collapsed. It is
// the executor for materialization plans — build_view() scans the fact
// table, rollup_view() derives a coarser view from any derivable parent —
// and generalises the uniform-level DenseCube that CubeSet serves queries
// from.
#pragma once

#include "cube/dense_cube.hpp"
#include "cube/lattice.hpp"
#include "relational/fact_table.hpp"

namespace holap {

class ViewCube {
 public:
  /// Allocates the identity-filled array for `view`.
  ViewCube(const std::vector<Dimension>& dims, ViewId view, CubeBasis basis,
           int measure);

  const ViewId& view() const { return view_; }
  CubeBasis basis() const { return basis_; }
  int measure() const { return measure_; }
  std::size_t cell_count() const { return cells_.size(); }
  std::span<const double> cells() const { return cells_; }
  std::span<double> cells() { return cells_; }

  /// Linear index from per-dimension member codes; codes of collapsed
  /// dimensions are ignored (pass anything).
  std::size_t linear_index(std::span<const std::int32_t> coords) const;

  /// Grand total under the basis (handy invariant for tests).
  double combined_total() const;

 private:
  ViewId view_;
  CubeBasis basis_;
  int measure_;
  std::vector<std::uint32_t> cards_;   // per dim; 1 when collapsed
  std::vector<std::size_t> strides_;
  std::vector<double> cells_;

  friend ViewCube rollup_view(const ViewCube& parent,
                              const std::vector<Dimension>& dims,
                              const ViewId& child);
};

/// Build `view` by scanning the fact table (plan steps without a parent).
ViewCube build_view(const FactTable& table, const ViewId& view,
                    CubeBasis basis, int measure);

/// Derive `child` from a materialized `parent`; child must be
/// derivable_from(parent.view()).
ViewCube rollup_view(const ViewCube& parent,
                     const std::vector<Dimension>& dims,
                     const ViewId& child);

/// Execute a whole materialization plan (cube/lattice.hpp) over `table`,
/// returning the cubes in plan order. Each step builds from its planned
/// parent or from the fact table, exactly as costed.
std::vector<ViewCube> execute_plan(const FactTable& table,
                                   const MaterializationPlan& plan,
                                   CubeBasis basis, int measure);

}  // namespace holap
