// Chunked cube storage with chunk-offset compression (§II-B, ref. [20]).
//
// Zhao, Deshpande & Naughton's array-based algorithm stores an
// n-dimensional array as same-sized n-dimensional chunks and "compress[es]
// arrays that have less than 40% of their cells filled … using a
// chunk-offset compression". This class is that storage scheme in memory:
// the cube is a grid of axis-aligned chunks, and every chunk is kept
// either dense (a full array of cells) or sparse (a sorted list of
// (offset-within-chunk, value) pairs) depending on its fill factor.
//
// Real OLAP cubes at fine resolutions are mostly empty — a 1600^3-cell
// cube built from 50M rows fills at most ~1.2% of its cells — so the
// compressed form is what makes fine levels storable at all. Aggregation
// results are bit-identical to DenseCube's (tests enforce it);
// bench_ablation_storage quantifies the memory/scan-time trade.
#pragma once

#include <variant>

#include "cube/aggregate.hpp"

namespace holap {

/// The reference fill threshold from [20]: chunks under 40% full compress.
inline constexpr double kChunkCompressionThreshold = 0.4;

class ChunkedCube {
 public:
  /// Compress `dense` into chunks of `chunk_side` cells per dimension.
  /// Chunks whose fill factor (non-identity cells / chunk cells) is below
  /// `threshold` use chunk-offset compression; the rest stay dense.
  static ChunkedCube from_dense(const DenseCube& dense, int chunk_side = 16,
                                double threshold =
                                    kChunkCompressionThreshold);

  int level() const { return level_; }
  CubeBasis basis() const { return basis_; }
  int measure() const { return measure_; }
  int dim_count() const { return static_cast<int>(cards_.size()); }
  std::uint32_t cardinality(int d) const;

  std::size_t cell_count() const;         ///< logical cells
  std::size_t stored_value_count() const; ///< values physically stored
  std::size_t size_bytes() const;         ///< actual storage footprint
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t sparse_chunk_count() const;

  /// Random access; identity value for empty cells.
  double cell(std::span<const std::int32_t> coords) const;

  /// Aggregate a region with this cube's basis; result equals
  /// aggregate_region() on the uncompressed cube. cells_scanned counts the
  /// logical region size (the model's quantity); the physical work can be
  /// far smaller on sparse chunks.
  AggregateResult aggregate(const CubeRegion& region) const;

  /// Decompress back to a dense cube (round-trip tested).
  DenseCube to_dense(const std::vector<Dimension>& dims) const;

 private:
  struct SparseEntry {
    std::uint32_t offset;  // linear offset within the chunk
    double value;
  };
  using DenseChunk = std::vector<double>;
  using SparseChunk = std::vector<SparseEntry>;
  // monostate = entirely empty chunk (stores nothing at all).
  using Chunk = std::variant<std::monostate, DenseChunk, SparseChunk>;

  ChunkedCube() = default;

  int level_ = 0;
  CubeBasis basis_ = CubeBasis::kSum;
  int measure_ = -1;
  int chunk_side_ = 16;
  std::vector<std::uint32_t> cards_;        // per-dim logical cardinality
  std::vector<std::uint32_t> chunk_grid_;   // per-dim number of chunks
  std::vector<std::size_t> grid_strides_;   // strides over the chunk grid
  std::vector<std::size_t> local_strides_;  // strides within a chunk
  std::vector<Chunk> chunks_;

  std::size_t chunk_cells() const;
  std::size_t grid_index(std::span<const std::int32_t> chunk_coords) const;
};

}  // namespace holap
