#include "cube/region.hpp"

#include <algorithm>

namespace holap {

std::vector<Interval> normalize_intervals(std::vector<Interval> intervals) {
  for (const auto& iv : intervals) {
    HOLAP_REQUIRE(iv.lo <= iv.hi, "interval must satisfy lo <= hi");
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const auto& iv : intervals) {
    if (!out.empty() && iv.lo <= out.back().hi + 1) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<Interval> intersect_intervals(const std::vector<Interval>& a,
                                          const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int32_t lo = std::max(a[i].lo, b[j].lo);
    const std::int32_t hi = std::min(a[i].hi, b[j].hi);
    if (lo <= hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

bool CubeRegion::empty() const {
  for (const auto& d : dims) {
    if (d.empty()) return true;
  }
  return dims.empty();
}

std::size_t CubeRegion::cell_count() const {
  if (empty()) return 0;
  std::size_t cells = 1;
  for (const auto& d : dims) {
    std::size_t width = 0;
    for (const auto& iv : d) {
      width += static_cast<std::size_t>(iv.hi - iv.lo + 1);
    }
    cells *= width;
  }
  return cells;
}

CubeRegion region_for_query(const Query& q,
                            const std::vector<Dimension>& dims,
                            int cube_level) {
  HOLAP_REQUIRE(cube_level >= q.required_resolution(),
                "cube resolution too coarse for query");
  HOLAP_REQUIRE(!q.needs_translation(),
                "query must be translated before cube processing");
  CubeRegion region;
  region.dims.resize(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const Dimension& dim = dims[d];
    const auto card =
        static_cast<std::int32_t>(dim.level(cube_level).cardinality);
    region.dims[d] = {{0, card - 1}};
  }
  for (const auto& c : q.conditions) {
    const Dimension& dim = dims[static_cast<std::size_t>(c.dim)];
    const auto fanout =
        static_cast<std::int32_t>(dim.fanout(c.level, cube_level));
    std::vector<Interval> cond;
    if (c.is_text()) {
      for (std::int32_t code : c.codes) {
        if (code < 0) continue;  // string absent from dictionary: no rows
        cond.push_back({code * fanout, (code + 1) * fanout - 1});
      }
    } else {
      cond.push_back({c.from * fanout, (c.to + 1) * fanout - 1});
    }
    auto& slot = region.dims[static_cast<std::size_t>(c.dim)];
    slot = intersect_intervals(slot, normalize_intervals(std::move(cond)));
  }
  return region;
}

}  // namespace holap
