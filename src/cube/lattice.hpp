// The group-by lattice and smallest-parent materialization planning
// (§II-A/B: Gray et al.'s data cube [5], the smallest-parent method, and
// the minimum-size spanning tree of Zhao et al. [20] / Liang & Orlowska
// [10]).
//
// A *view* fixes, per dimension, either a hierarchy level or "collapsed"
// (the dimension is aggregated out — the GROUP BY omits it). With L levels
// per dimension the lattice has (L+1)^N views, ordered by derivability:
// view A is computable from view B iff B is at least as fine in every
// dimension. Computing A from B costs one scan of B, so the classic
// smallest-parent method materialises views coarse-to-fine, each from its
// smallest already-materialised ancestor; because the edge cost into A
// depends only on the chosen parent, the greedy choice yields the
// minimum-cost spanning tree of the lattice.
//
// This module plans; cube/view_cube.hpp executes the plans on real data.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/dimensions.hpp"

namespace holap {

/// Identifies one group-by view: levels[d] is a hierarchy level of
/// dimension d, or kCollapsed when d is aggregated out.
struct ViewId {
  static constexpr int kCollapsed = -1;
  std::vector<int> levels;

  friend bool operator==(const ViewId&, const ViewId&) = default;

  /// Can this view be computed from `parent` (parent at least as fine in
  /// every dimension)? A collapsed dimension derives from any level.
  bool derivable_from(const ViewId& parent) const;

  /// Cells of the view's dense array (collapsed dimensions contribute 1).
  std::size_t cells(const std::vector<Dimension>& dims) const;

  /// "time.month x geography.* x product.(all)" style rendering.
  std::string to_string(const std::vector<Dimension>& dims) const;
};

/// Validate a view against the dimensions; throws InvalidArgument.
void validate_view(const ViewId& view, const std::vector<Dimension>& dims);

/// The base cuboid: every dimension at its finest level.
ViewId base_view(const std::vector<Dimension>& dims);

/// The apex: every dimension collapsed (the grand total).
ViewId apex_view(const std::vector<Dimension>& dims);

/// All (L+1)^N views of the full lattice, coarse-to-fine-ish order
/// (descending total collapse count, then lexicographic).
std::vector<ViewId> enumerate_lattice(const std::vector<Dimension>& dims);

/// One step of a materialization plan.
struct MaterializationStep {
  ViewId view;
  /// Index into the plan of the parent this view rolls up from, or
  /// nullopt when it builds from the fact table (the base cuboid and any
  /// view with no planned ancestor).
  std::optional<std::size_t> parent;
  /// Cells scanned to produce this view: parent's size, or the fact
  /// table's row count for fact-table builds.
  std::size_t scan_cost = 0;
};

struct MaterializationPlan {
  std::vector<MaterializationStep> steps;  ///< topological order
  std::size_t total_cost = 0;              ///< Σ scan_cost
};

/// Smallest-parent plan for materialising `views` over a fact table of
/// `fact_rows` rows. Views may arrive in any order and must be distinct;
/// the plan orders them so every parent precedes its children.
MaterializationPlan plan_smallest_parent(const std::vector<Dimension>& dims,
                                         std::vector<ViewId> views,
                                         std::size_t fact_rows);

/// The naive comparison plan: every view scans the fact table directly
/// (what §II-B's "multiple scans required by a naive algorithm" costs).
MaterializationPlan plan_naive(const std::vector<Dimension>& dims,
                               std::vector<ViewId> views,
                               std::size_t fact_rows);

}  // namespace holap
