// Cube construction from the fact table.
//
// The array-based algorithm of Zhao, Deshpande & Naughton [20]: one pass
// over the fact table scatters each row's measure into the dense cell its
// dimension codes address. The fact table stores a column per (dimension,
// level), so building at any resolution reads the level's own columns —
// no coarsening arithmetic in the hot loop.
//
// The OpenMP build uses per-thread private cubes merged at the end when the
// cube is small enough, and atomic scatter otherwise (sum/count only; dense
// min/max cubes above the privatisation threshold build sequentially, since
// portable atomic FP min/max does not exist — see builder.cpp).
#pragma once

#include "cube/dense_cube.hpp"
#include "relational/fact_table.hpp"

namespace holap {

/// Build one cube over `table` at uniform `level`.
/// `measure` is a schema measure-column index (-1 with kCount).
/// `threads`: 0 = sequential, n >= 1 = OpenMP with n threads.
DenseCube build_cube(const FactTable& table, int level, CubeBasis basis,
                     int measure, int threads = 0);

}  // namespace holap
