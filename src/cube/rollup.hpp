// Roll-up: derive a coarser cube from a finer one.
//
// The "smallest parent" principle [5, 10]: a group-by at a coarse
// resolution is computed from the smallest already-materialised finer cube
// rather than from the fact table. With balanced hierarchies every coarse
// cell is the basis-combination of an axis-aligned block of fine cells, so
// roll-up is a single pass over the fine cube. CubeSet uses this to
// materialise its resolution ladder from one fact-table scan at the finest
// pre-computed level.
#pragma once

#include "cube/dense_cube.hpp"

namespace holap {

/// Aggregate `fine` (over `dims` at its own level) down to `coarse_level`.
/// Requires coarse_level <= fine.level(); equal levels return a copy.
/// `threads`: 0 = sequential, n >= 1 = OpenMP (per-thread partial coarse
/// cubes merged at the end — the coarse cube is the smaller one).
DenseCube rollup(const DenseCube& fine, const std::vector<Dimension>& dims,
                 int coarse_level, int threads = 0);

}  // namespace holap
