#include "olap/async_executor.hpp"

namespace holap {
namespace {

/// Counter slot of a job that never reached a queue.
constexpr std::size_t kNoCounter = static_cast<std::size_t>(-1);

}  // namespace

AsyncHybridExecutor::AsyncHybridExecutor(HybridOlapSystem& system,
                                         AsyncExecutorConfig config)
    : system_(&system),
      config_(config),
      cpu_queue_(config.queue_capacity),
      translation_queue_(config.queue_capacity) {
  PartitionCounters cpu;
  cpu.name = "cpu";
  counters_.push_back(std::move(cpu));
  PartitionCounters trans;
  trans.name = "translation";
  counters_.push_back(std::move(trans));
  for (int i = 0; i < system.device().partition_count(); ++i) {
    gpu_queues_.push_back(
        std::make_unique<BlockingQueue<Job>>(config.queue_capacity));
    PartitionCounters gpu;
    gpu.name = "gpu" + std::to_string(i);
    counters_.push_back(std::move(gpu));
  }
  workers_.emplace_back([this] { cpu_worker(); });
  workers_.emplace_back([this] { translation_worker(); });
  for (int i = 0; i < system.device().partition_count(); ++i) {
    workers_.emplace_back([this, i] { gpu_worker(i); });
  }
}

AsyncHybridExecutor::~AsyncHybridExecutor() { shutdown(); }

void AsyncHybridExecutor::shutdown() {
  if (down_.exchange(true)) {
    return;
  }
  // Close the intake queues first; the translation worker may still push
  // into GPU queues while draining, so those close after it joins.
  cpu_queue_.close();
  translation_queue_.close();
  // Join translation (workers_[1]) before closing the GPU queues.
  if (workers_.size() >= 2 && workers_[1].joinable()) workers_[1].join();
  for (auto& queue : gpu_queues_) queue->close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void AsyncHybridExecutor::set_trace_recorder(TraceRecorder* recorder) {
  recorder_.store(recorder);
  MutexLock lock(scheduler_mutex_);
  scheduler_locked().set_trace_recorder(recorder);
}

void AsyncHybridExecutor::set_fault_injector(FaultInjector* injector) {
  fault_.store(injector);
}

LatencyHistogram AsyncHybridExecutor::latency_histogram() const {
  MutexLock lock(histogram_mutex_);
  return latencies_;
}

std::vector<PartitionCounters> AsyncHybridExecutor::partition_counters()
    const {
  MutexLock lock(counters_mutex_);
  return counters_;
}

std::size_t AsyncHybridExecutor::counter_slot(QueueRef ref,
                                              bool in_translation_queue) {
  if (in_translation_queue) return 1;
  if (ref.kind == QueueRef::kCpu) return 0;
  return 2 + static_cast<std::size_t>(ref.index);
}

Seconds AsyncHybridExecutor::slack_of(const Job& job) const {
  // T_D − T_R with absolute times: how much deadline headroom the
  // placement-time estimate left this job.
  return job.submitted_at + system_->scheduler().deadline() -
         job.placement.response_est;
}

void AsyncHybridExecutor::record_span(std::uint64_t id, SpanKind kind,
                                      Seconds start, Seconds end,
                                      QueueRef queue, Seconds resp_est,
                                      Seconds measured, Seconds slack) {
  TraceRecorder::span_into(recorder_.load(), id, kind)
      .window(start, end)
      .queue(queue)
      .estimated_response(resp_est)
      .measured_response(measured)
      .deadline_slack(slack)
      .commit();
}

void AsyncHybridExecutor::resolve_unrun(Job job, ExecutionOutcome outcome,
                                        std::size_t counter_index) {
  {
    // The placement advanced the queue clocks by its estimates; a job that
    // never runs must roll that back or later estimates carry phantom load.
    MutexLock lock(scheduler_mutex_);
    const Seconds pending_translation =
        (!job.translated && job.placement.translate)
            ? job.placement.translation_est
            : Seconds{};
    scheduler_locked().on_shed(job.placement.queue,
                               job.placement.processing_est,
                               pending_translation);
  }
  const bool is_shed = outcome == ExecutionOutcome::kShedAtAdmission ||
                       outcome == ExecutionOutcome::kShedInQueue;
  if (is_shed) ++shed_;
  if (is_shed && counter_index != kNoCounter) {
    MutexLock lock(counters_mutex_);
    if (outcome == ExecutionOutcome::kShedInQueue) {
      counters_[counter_index].on_shed();
    } else {
      // Turned away at the queue's door: shed work bound for this
      // partition, but it never contributed to the depth gauge.
      ++counters_[counter_index].shed;
    }
  }
  ExecutionReport report;
  report.outcome = outcome;
  report.queue = job.placement.queue;
  report.estimated_processing = job.placement.processing_est;
  report.before_deadline_estimate = job.placement.before_deadline;
  job.promise.set_value(std::move(report));
}

void AsyncHybridExecutor::enqueue(BlockingQueue<Job>& queue, Job job,
                                  std::size_t counter_index,
                                  ExecutionOutcome arrival_shed_outcome) {
  FaultInjector* fault = fault_.load();
  if (fault != nullptr && fault->queue_full()) {
    // Injected capacity exhaustion: behave exactly as a full queue under
    // the reject-newest policy would.
    resolve_unrun(std::move(job), arrival_shed_outcome, counter_index);
    return;
  }
  if (config_.queue_capacity != 0 &&
      config_.overflow == AsyncExecutorConfig::OverflowPolicy::
                              kShedLeastFeasible) {
    auto [result, ejected] = queue.push_displacing(
        std::move(job), [this](const Job& a, const Job& b) {
          return slack_of(a) < slack_of(b);
        });
    switch (result) {
      case QueuePush::kAccepted:
        {
          MutexLock lock(counters_mutex_);
          counters_[counter_index].on_enqueue();
        }
        if (ejected.has_value()) {
          resolve_unrun(std::move(*ejected),
                        ExecutionOutcome::kShedInQueue, counter_index);
        }
        return;
      case QueuePush::kFull:
        resolve_unrun(std::move(*ejected), arrival_shed_outcome,
                      counter_index);
        return;
      case QueuePush::kClosed:
        resolve_unrun(std::move(*ejected), ExecutionOutcome::kFailed,
                      kNoCounter);
        return;
    }
    return;
  }
  // Unbounded, or bounded with reject-newest: never block the submitter.
  switch (queue.try_push(job)) {
    case QueuePush::kAccepted: {
      MutexLock lock(counters_mutex_);
      counters_[counter_index].on_enqueue();
      return;
    }
    case QueuePush::kFull:
      resolve_unrun(std::move(job), arrival_shed_outcome, counter_index);
      return;
    case QueuePush::kClosed:
      // Shutdown raced the submission between scheduling and enqueue; the
      // promise still resolves, typed, instead of being abandoned.
      resolve_unrun(std::move(job), ExecutionOutcome::kFailed, kNoCounter);
      return;
  }
}

std::future<ExecutionReport> AsyncHybridExecutor::submit(Query q) {
  HOLAP_REQUIRE(!down_.load(), "executor is shut down");
  validate_query(q, system_->schema().dimensions(), system_->schema());

  Job job;
  job.query = std::move(q);
  job.id = next_id_.fetch_add(1);
  std::future<ExecutionReport> future = job.promise.get_future();
  {
    MutexLock lock(scheduler_mutex_);
    job.submitted_at = clock_.elapsed();
    job.placement =
        scheduler_locked().schedule(job.query, job.submitted_at, job.id);
  }
  job.stage_enqueued_at = job.submitted_at;
  if (job.placement.shed_at_admission) {
    // Admission control turned the query away before the clocks committed;
    // nothing to roll back, just a typed resolution.
    ++shed_;
    ExecutionReport report;
    report.outcome = ExecutionOutcome::kShedAtAdmission;
    report.queue = job.placement.queue;
    report.estimated_processing = job.placement.processing_est;
    job.promise.set_value(std::move(report));
    return future;
  }
  if (job.placement.rejected) {
    ExecutionReport report;
    report.outcome = ExecutionOutcome::kRejected;
    report.rejected = true;
    job.promise.set_value(std::move(report));
    return future;
  }
  if (FaultInjector* fault = fault_.load()) {
    // The shutdown-race window: after scheduling, before the enqueue.
    try {
      fault->run_submit_hook();
    } catch (const std::exception&) {
      // A throwing hook models a crash between the ledger commit and the
      // enqueue: roll the placement back and resolve typed instead of
      // leaking the commit (and the caller's future) with the exception.
      resolve_unrun(std::move(job), ExecutionOutcome::kFailed, kNoCounter);
      return future;
    }
  }
  route(std::move(job));
  return future;
}

std::vector<std::future<ExecutionReport>> AsyncHybridExecutor::submit_batch(
    std::vector<Query> batch) {
  HOLAP_REQUIRE(!down_.load(), "executor is shut down");
  std::vector<std::future<ExecutionReport>> futures;
  futures.reserve(batch.size());
  std::vector<IngestRequest> requests;
  requests.reserve(batch.size());
  for (Query& q : batch) {
    IngestRequest request;
    request.query = std::move(q);
    futures.push_back(request.promise.get_future());
    requests.push_back(std::move(request));
  }
  admit(std::move(requests));
  return futures;
}

void AsyncHybridExecutor::admit(std::vector<IngestRequest> batch) {
  if (batch.empty()) return;
  // Peel the queries into a contiguous vector for schedule_batch's span; a
  // malformed query resolves typed right here instead of poisoning the
  // batch (the front-end path has no caller to throw to).
  std::vector<Job> jobs;
  jobs.reserve(batch.size());
  std::vector<Query> queries;
  queries.reserve(batch.size());
  for (IngestRequest& request : batch) {
    try {
      validate_query(request.query, system_->schema().dimensions(),
                     system_->schema());
    } catch (const std::exception&) {
      ExecutionReport report;
      report.outcome = ExecutionOutcome::kRejected;
      report.rejected = true;
      request.promise.set_value(std::move(report));
      continue;
    }
    Job job;
    job.promise = std::move(request.promise);
    jobs.push_back(std::move(job));
    queries.push_back(std::move(request.query));
  }
  if (jobs.empty()) return;

  const std::uint64_t first_id =
      next_id_.fetch_add(static_cast<std::uint64_t>(jobs.size()));
  // The whole point: N queries cross the scheduler mutex ONCE, and the
  // Figure-10 decision runs over the staged clocks with ONE ledger commit
  // — decision-equivalent to N serial schedule() calls in order.
  BatchPlacement placed;
  Seconds now{};
  {
    MutexLock lock(scheduler_mutex_);
    now = clock_.elapsed();
    placed = scheduler_locked().schedule_batch(queries, now, first_id);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].query = std::move(queries[i]);
    jobs[i].placement = placed.placements[i];
    jobs[i].id = first_id + i;
    jobs[i].submitted_at = now;
    jobs[i].stage_enqueued_at = now;
  }

  // Admission-shed and rejected placements never committed clocks; they
  // resolve typed immediately, exactly as the serial path does.
  std::vector<Job> admitted;
  admitted.reserve(jobs.size());
  for (Job& job : jobs) {
    if (job.placement.shed_at_admission) {
      ++shed_;
      ExecutionReport report;
      report.outcome = ExecutionOutcome::kShedAtAdmission;
      report.queue = job.placement.queue;
      report.estimated_processing = job.placement.processing_est;
      job.promise.set_value(std::move(report));
      continue;
    }
    if (job.placement.rejected) {
      ExecutionReport report;
      report.outcome = ExecutionOutcome::kRejected;
      report.rejected = true;
      job.promise.set_value(std::move(report));
      continue;
    }
    admitted.push_back(std::move(job));
  }
  if (admitted.empty()) return;

  if (FaultInjector* fault = fault_.load()) {
    // The shutdown-race window: after the batch committed, before routing.
    try {
      fault->run_submit_hook();
    } catch (const std::exception&) {
      // A throwing hook models a crash mid-admission: the batch commit
      // and every admitted promise must still settle.
      fail_admitted(placed, admitted);
      return;
    }
  }
  if (down_.load()) {
    // Shutdown raced the whole batch: return its clocks in ONE motion —
    // rollback_batch subtracts exactly what schedule_batch committed (the
    // admitted placements; shed/rejected never committed) — and resolve
    // every admitted promise typed. No per-job on_shed here: that would
    // subtract the same load twice.
    fail_admitted(placed, admitted);
    return;
  }

  // Amortised translation: ONE dictionary pass per distinct text column
  // across the whole batch (BatchTranslator::translate_all), instead of
  // one trip through the translation partition per query. GPU-bound
  // `translate` placements pay the translation clock schedule_batch
  // committed and post §III-G feedback as an aggregate; CPU-bound text
  // queries pick up their codes in the same pass, turning the cpu
  // worker's inline fallback into a no-op.
  std::vector<Query*> to_translate;
  std::vector<std::size_t> charged;  // admitted[i] with placement.translate
  Seconds estimated_total{};
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    Job& job = admitted[i];
    if (!job.query.needs_translation()) continue;
    to_translate.push_back(&job.query);
    if (job.placement.translate && !job.translated) {
      charged.push_back(i);
      estimated_total += job.placement.translation_est;
    }
  }
  if (!to_translate.empty()) {
    const Seconds trans_start = clock_.elapsed();
    WallTimer timer;
    try {
      system_->translate_batch(to_translate);
    } catch (const std::exception&) {
      // The dictionary pass died after the batch commit: subtract the
      // whole commit in one motion and fail every admitted promise
      // typed — the aggregator thread driving this path has no caller
      // to throw to.
      fail_admitted(placed, admitted);
      return;
    }
    const Seconds took = timer.elapsed();
    const Seconds trans_end = clock_.elapsed();
    if (!charged.empty()) {
      {
        // One aggregate measured-vs-estimated correction for the batch,
        // mirroring the per-job feedback of the translation worker.
        MutexLock lock(scheduler_mutex_);
        scheduler_locked().on_translation_completed(estimated_total, took);
      }
      {
        MutexLock lock(counters_mutex_);
        counters_[1].on_enqueue();
        counters_[1].on_complete(took);
      }
      for (const std::size_t i : charged) {
        Job& job = admitted[i];
        record_span(job.id, SpanKind::kTranslate, trans_start, trans_end,
                    job.placement.queue, job.placement.response_est,
                    Seconds{}, Seconds{});
        // Reports carry this job's measured share of the batch pass,
        // proportional to its estimate (even split when estimates are 0).
        const double share =
            estimated_total > Seconds{}
                ? job.placement.translation_est / estimated_total
                : 1.0 / static_cast<double>(charged.size());
        job.placement.translation_est = took * share;
        job.translated = true;
        job.stage_enqueued_at = trans_end;
      }
    }
  }

  // Translated jobs route straight to their GPU partitions; the serial
  // translation-worker hop is not needed on this path.
  for (Job& job : admitted) route(std::move(job));
}

void AsyncHybridExecutor::fail_admitted(const BatchPlacement& placed,
                                        std::vector<Job>& admitted) {
  // Whole-batch failure between commit and routing: rollback_batch
  // subtracts exactly what schedule_batch committed (shed/rejected
  // placements never committed), and every admitted promise resolves
  // typed. No per-job on_shed here: that would subtract the load twice.
  {
    MutexLock lock(scheduler_mutex_);
    scheduler_locked().rollback_batch(placed);
  }
  for (Job& job : admitted) {
    ExecutionReport report;
    report.outcome = ExecutionOutcome::kFailed;
    report.queue = job.placement.queue;
    report.estimated_processing = job.placement.processing_est;
    report.before_deadline_estimate = job.placement.before_deadline;
    job.promise.set_value(std::move(report));
  }
}

void AsyncHybridExecutor::route(Job job) {
  if (job.placement.queue.kind == QueueRef::kCpu) {
    enqueue(cpu_queue_, std::move(job), 0);
  } else if (job.placement.translate && !job.translated) {
    enqueue(translation_queue_, std::move(job), 1);
  } else {
    const std::size_t slot = counter_slot(job.placement.queue, false);
    auto& queue = *gpu_queues_[static_cast<std::size_t>(
        job.placement.queue.index)];
    enqueue(queue, std::move(job), slot);
  }
}

void AsyncHybridExecutor::sync_health_gauges() {
  PartitionHealthMonitor* monitor = health_monitor_locked();
  if (monitor == nullptr) return;
  MutexLock lock(counters_mutex_);
  counters_[0].health = to_string(monitor->health({QueueRef::kCpu, 0}));
  counters_[0].breaker_transitions =
      monitor->breaker_transitions({QueueRef::kCpu, 0});
  for (int i = 0; i < monitor->gpu_queue_count(); ++i) {
    const QueueRef ref{QueueRef::kGpu, i};
    PartitionCounters& ctr = counters_[counter_slot(ref, false)];
    ctr.health = to_string(monitor->health(ref));
    ctr.breaker_transitions = monitor->breaker_transitions(ref);
  }
}

void AsyncHybridExecutor::resolve_exhausted(Job job) {
  ++exhausted_retries_;
  ExecutionReport report;
  report.outcome = ExecutionOutcome::kExhaustedRetries;
  report.queue = job.placement.queue;
  report.estimated_processing = job.placement.processing_est;
  report.before_deadline_estimate = job.placement.before_deadline;
  report.translated = job.translated;
  report.attempts = job.attempt;
  job.promise.set_value(std::move(report));
}

void AsyncHybridExecutor::fail_over(Job job, QueueRef failed_ref) {
  ++partition_failures_;
  const RetryPolicy* retry = nullptr;
  Seconds now{};
  {
    // Roll the dead placement back exactly as a shed does (the partition
    // will never run it; untranslated jobs also return their translation
    // charge) and report the crash to the health monitor so the breaker
    // removes the partition from the candidate set.
    MutexLock lock(scheduler_mutex_);
    now = clock_.elapsed();
    const Seconds pending_translation =
        (!job.translated && job.placement.translate)
            ? job.placement.translation_est
            : Seconds{};
    scheduler_locked().on_shed(failed_ref, job.placement.processing_est,
                               pending_translation);
    if (PartitionHealthMonitor* monitor = health_monitor_locked()) {
      monitor->on_crash(failed_ref, now);
    }
    retry = scheduler_locked().retry_policy();
    sync_health_gauges();
  }
  {
    MutexLock lock(counters_mutex_);
    counters_[counter_slot(failed_ref, false)].on_failed();
  }
  const int max_attempts = retry != nullptr ? retry->max_attempts : 1;
  if (job.attempt >= max_attempts) {
    resolve_exhausted(std::move(job));
    return;
  }
  // Exponential backoff feeds the deadline gate only: a native worker
  // never sleeps a retry, but the gate sheds any job whose remaining
  // slack could not survive the backoff it would owe.
  const Seconds deadline = system_->scheduler().deadline();
  const Seconds backoff = retry->backoff_for(job.attempt);
  if (job.submitted_at + deadline - (now + backoff) <
      deadline * retry->deadline_slack_gate) {
    resolve_exhausted(std::move(job));
    return;
  }
  ++retries_;
  {
    MutexLock lock(counters_mutex_);
    ++counters_[counter_slot(failed_ref, false)].retried;
  }
  ++job.attempt;
  ScheduleHints hints;
  hints.translation_cached = job.translated;  // failover keeps integers
  {
    MutexLock lock(scheduler_mutex_);
    const Seconds at = clock_.elapsed();
    job.placement =
        scheduler_locked().schedule(job.query, at, job.id, hints);
    job.stage_enqueued_at = at;
  }
  if (job.placement.rejected || job.placement.shed_at_admission) {
    // No live candidate partition took the retry (or admission turned it
    // away). Neither outcome committed any clocks, so no rollback; the
    // job resolves with its typed fault outcome.
    resolve_exhausted(std::move(job));
    return;
  }
  route(std::move(job));
}

RepartitionDecision AsyncHybridExecutor::repartition(
    const RepartitionDecision& decision) {
  HOLAP_REQUIRE(!down_.load(), "executor is shut down");
  std::vector<Job> drained;
  std::vector<std::size_t> old_slots;  ///< counter slot each job left
  RepartitionDecision applied;
  {
    MutexLock lock(scheduler_mutex_);
    SchedulerPolicy& sched = scheduler_locked();
    HOLAP_REQUIRE(sched.device_catalog() != nullptr,
                  "scheduler has no device catalog to repartition");
    const Seconds now = clock_.elapsed();
    for (const int q : {decision.keeper, decision.donor}) {
      HOLAP_REQUIRE(q >= 0 && q < static_cast<int>(gpu_queues_.size()),
                    "repartition names an unknown GPU queue");
      auto jobs = gpu_queues_[static_cast<std::size_t>(q)]->drain();
      for (Job& job : jobs) {
        // Roll the queued placement back exactly as a shed does; an
        // untranslated job also returns its translation charge (jobs in a
        // GPU intake queue are normally translated already, but a breaker
        // probe can route one here directly).
        const Seconds pending_translation =
            (!job.translated && job.placement.translate)
                ? job.placement.translation_est
                : Seconds{};
        sched.on_shed(job.placement.queue, job.placement.processing_est,
                      pending_translation);
        old_slots.push_back(counter_slot(job.placement.queue, false));
        drained.push_back(std::move(job));
      }
    }
    applied = sched.apply_repartition(decision);
    // Re-place against the new widths under the same lock: same attempt
    // (a drain is not a fault), translation preserved via the cached
    // hint, so the drained work is neither lost nor double-charged.
    for (Job& job : drained) {
      ScheduleHints hints;
      hints.translation_cached = job.translated;
      job.placement = sched.schedule(job.query, now, job.id, hints);
      job.stage_enqueued_at = now;
    }
  }
  if (applied.kind == RepartitionDecision::Kind::kMerge) {
    ++repartition_merges_;
  } else {
    ++repartition_splits_;
  }
  repartition_drained_ += drained.size();
  if (!old_slots.empty()) {
    // The drained jobs left their old intake queues unserved; their depth
    // gauges must not keep counting them.
    MutexLock lock(counters_mutex_);
    for (const std::size_t slot : old_slots) counters_[slot].on_drained();
  }
  for (Job& job : drained) {
    if (job.placement.rejected || job.placement.shed_at_admission) {
      // No live candidate partition took the re-placement (rejected
      // placements commit no clocks, so nothing to roll back).
      const bool is_shed = job.placement.shed_at_admission;
      if (is_shed) ++shed_;
      ExecutionReport report;
      report.outcome = is_shed ? ExecutionOutcome::kShedAtAdmission
                               : ExecutionOutcome::kRejected;
      report.queue = job.placement.queue;
      report.estimated_processing = job.placement.processing_est;
      report.before_deadline_estimate = job.placement.before_deadline;
      report.translated = job.translated;
      report.attempts = job.attempt;
      job.promise.set_value(std::move(report));
      continue;
    }
    route(std::move(job));
  }
  return applied;
}

void AsyncHybridExecutor::finish(Job job, ExecutionReport report) {
  // kFailedOver is a success outcome: the answer is valid, it just took
  // more than one placement to get there.
  report.outcome = job.attempt > 1 ? ExecutionOutcome::kFailedOver
                                   : ExecutionOutcome::kCompleted;
  report.attempts = job.attempt;
  {
    MutexLock lock(scheduler_mutex_);
    scheduler_locked().on_completed(job.placement.queue,
                                    report.estimated_processing,
                                    report.measured_processing);
    sync_health_gauges();
  }
  const Seconds done = clock_.elapsed();
  record_span(job.id, SpanKind::kComplete, done, done, job.placement.queue,
              job.placement.response_est, done,
              job.submitted_at + system_->scheduler().deadline() - done);
  {
    MutexLock lock(histogram_mutex_);
    latencies_.add(done - job.submitted_at);
  }
  {
    MutexLock lock(counters_mutex_);
    PartitionCounters& ctr =
        counters_[counter_slot(job.placement.queue, false)];
    ctr.on_complete(report.measured_processing);
    if (job.attempt > 1) ++ctr.failovers;
  }
  if (job.attempt > 1) ++failed_over_;
  ++completed_;
  job.promise.set_value(std::move(report));
}

void AsyncHybridExecutor::cpu_worker() {
  while (auto job = cpu_queue_.pop()) {
    if (FaultInjector* fault = fault_.load()) {
      // Order matters: the gate parks first (tests build a backlog), then
      // the down-check sees faults injected while this worker was parked
      // mid-pop — the crash-during-dequeue race made deterministic.
      fault->at_worker({QueueRef::kCpu, 0});
      if (fault->partition_down({QueueRef::kCpu, 0})) {
        fail_over(std::move(*job), {QueueRef::kCpu, 0});
        continue;
      }
    }
    try {
      ExecutionReport report;
      report.queue = job->placement.queue;
      report.estimated_processing = job->placement.processing_est;
      report.before_deadline_estimate = job->placement.before_deadline;
      // Queue wait between placement and the partition picking the job up.
      record_span(job->id, SpanKind::kDispatch, job->stage_enqueued_at,
                  clock_.elapsed(), job->placement.queue,
                  job->placement.response_est, Seconds{}, Seconds{});
      // CPU-path text parameters translate inline (hashed path), outside
      // the translation partition — §III-F: translation is a GPU-side
      // need. It still costs wall time, so it is timed and traced like
      // any other translation, just after the dispatch span instead of
      // before it.
      if (job->query.needs_translation()) {
        const Seconds trans_start = clock_.elapsed();
        WallTimer trans_timer;
        system_->translate(job->query);
        report.translation_time = trans_timer.elapsed();
        record_span(job->id, SpanKind::kTranslate, trans_start,
                    clock_.elapsed(), job->placement.queue,
                    job->placement.response_est, Seconds{}, Seconds{});
      }
      const Seconds exec_start = clock_.elapsed();
      WallTimer timer;
      report.answer = system_->cubes().answer(
          job->query, system_->config().cpu_threads);
      report.measured_processing = timer.elapsed();
      record_span(job->id, SpanKind::kExecute, exec_start,
                  clock_.elapsed(), job->placement.queue,
                  job->placement.response_est, Seconds{}, Seconds{});
      finish(std::move(*job), std::move(report));
    } catch (const std::exception&) {
      // A data-dependent translation/execution failure must not kill the
      // worker thread (std::terminate would take every in-flight promise
      // with it): debit the depth gauge, roll the placement back, and
      // resolve this one promise typed.
      {
        MutexLock lock(counters_mutex_);
        counters_[0].on_failed();
      }
      resolve_unrun(std::move(*job), ExecutionOutcome::kFailed, kNoCounter);
    }
  }
}

void AsyncHybridExecutor::translation_worker() {
  while (auto job = translation_queue_.pop()) {
    if (FaultInjector* fault = fault_.load()) {
      fault->at_worker({QueueRef::kCpu, 1});
    }
    const Seconds estimated = job->placement.translation_est;
    const Seconds trans_start = clock_.elapsed();
    WallTimer timer;
    try {
      system_->translate(job->query);
    } catch (const std::exception&) {
      // Translation failed on request data: the job never reaches its
      // GPU queue, so return its clocks (processing AND the pending
      // translation share) and resolve typed — the worker keeps serving.
      {
        MutexLock lock(counters_mutex_);
        counters_[1].on_failed();
      }
      resolve_unrun(std::move(*job), ExecutionOutcome::kFailed, kNoCounter);
      continue;
    }
    const Seconds took = timer.elapsed();
    record_span(job->id, SpanKind::kTranslate, trans_start,
                clock_.elapsed(), job->placement.queue,
                job->placement.response_est, Seconds{}, Seconds{});
    {
      // §III-G feedback for the translation clock, mirroring the
      // measured-vs-estimated correction every processing queue gets.
      MutexLock lock(scheduler_mutex_);
      scheduler_locked().on_translation_completed(estimated, took);
    }
    {
      MutexLock lock(counters_mutex_);
      counters_[1].on_complete(took);
    }
    const int queue = job->placement.queue.index;
    const std::size_t slot = counter_slot({QueueRef::kGpu, queue}, false);
    Job forwarded = std::move(*job);
    forwarded.translated = true;
    forwarded.placement.translation_est = took;  // measured, for reports
    forwarded.stage_enqueued_at = clock_.elapsed();
    // The GPU intake is bounded by the same policy; a job displaced here
    // was already queued once, so a turned-away forward is shed_in_queue.
    enqueue(*gpu_queues_[static_cast<std::size_t>(queue)],
            std::move(forwarded), slot, ExecutionOutcome::kShedInQueue);
  }
}

void AsyncHybridExecutor::gpu_worker(int queue) {
  auto& jobs = *gpu_queues_[static_cast<std::size_t>(queue)];
  while (auto job = jobs.pop()) {
    if (FaultInjector* fault = fault_.load()) {
      fault->at_worker({QueueRef::kGpu, queue});
      if (fault->partition_down({QueueRef::kGpu, queue})) {
        // The partition died while the job was queued (or this worker was
        // parked mid-pop): fail over — an already-translated job keeps
        // its integer parameters.
        fail_over(std::move(*job), {QueueRef::kGpu, queue});
        continue;
      }
    }
    try {
      ExecutionReport report;
      report.queue = job->placement.queue;
      report.estimated_processing = job->placement.processing_est;
      report.before_deadline_estimate = job->placement.before_deadline;
      report.translated = job->placement.translate;
      report.translation_time = job->placement.translate
                                    ? job->placement.translation_est
                                    : Seconds{};
      record_span(job->id, SpanKind::kDispatch, job->stage_enqueued_at,
                  clock_.elapsed(), job->placement.queue,
                  job->placement.response_est, Seconds{}, Seconds{});
      const Seconds exec_start = clock_.elapsed();
      const GpuExecution exec =
          system_->device().execute(queue, job->query);
      report.answer = exec.answer;
      report.measured_processing = exec.modeled_seconds;
      record_span(job->id, SpanKind::kExecute, exec_start,
                  clock_.elapsed(), job->placement.queue,
                  job->placement.response_est, Seconds{}, Seconds{});
      finish(std::move(*job), std::move(report));
    } catch (const std::exception&) {
      // Same contract as the CPU worker: a throwing execution resolves
      // one promise typed instead of terminating the process.
      {
        MutexLock lock(counters_mutex_);
        counters_[counter_slot({QueueRef::kGpu, queue}, false)].on_failed();
      }
      resolve_unrun(std::move(*job), ExecutionOutcome::kFailed, kNoCounter);
    }
  }
}

}  // namespace holap
