#include "olap/async_executor.hpp"

namespace holap {

AsyncHybridExecutor::AsyncHybridExecutor(HybridOlapSystem& system)
    : system_(&system) {
  for (int i = 0; i < system.device().partition_count(); ++i) {
    gpu_queues_.push_back(std::make_unique<BlockingQueue<Job>>());
  }
  workers_.emplace_back([this] { cpu_worker(); });
  workers_.emplace_back([this] { translation_worker(); });
  for (int i = 0; i < system.device().partition_count(); ++i) {
    workers_.emplace_back([this, i] { gpu_worker(i); });
  }
}

AsyncHybridExecutor::~AsyncHybridExecutor() { shutdown(); }

void AsyncHybridExecutor::shutdown() {
  if (down_.exchange(true)) {
    return;
  }
  // Close the intake queues first; the translation worker may still push
  // into GPU queues while draining, so those close after it joins.
  cpu_queue_.close();
  translation_queue_.close();
  // Join translation (workers_[1]) before closing the GPU queues.
  if (workers_.size() >= 2 && workers_[1].joinable()) workers_[1].join();
  for (auto& queue : gpu_queues_) queue->close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void AsyncHybridExecutor::set_trace_recorder(TraceRecorder* recorder) {
  recorder_.store(recorder);
  const std::lock_guard lock(scheduler_mutex_);
  system_->scheduler_mutable().set_trace_recorder(recorder);
}

LatencyHistogram AsyncHybridExecutor::latency_histogram() const {
  const std::lock_guard lock(histogram_mutex_);
  return latencies_;
}

void AsyncHybridExecutor::record_span(std::uint64_t id, SpanKind kind,
                                      Seconds start, Seconds end,
                                      QueueRef queue, Seconds resp_est,
                                      Seconds measured, Seconds slack) {
  TraceRecorder* rec = recorder_.load();
  if (rec == nullptr) return;
  TraceSpan span;
  span.query_id = id;
  span.kind = kind;
  span.start = start;
  span.end = end;
  span.queue = queue;
  span.estimated_response = resp_est;
  span.measured_response = measured;
  span.deadline_slack = slack;
  rec->record(span);
}

std::future<ExecutionReport> AsyncHybridExecutor::submit(Query q) {
  HOLAP_REQUIRE(!down_.load(), "executor is shut down");
  validate_query(q, system_->schema().dimensions(), system_->schema());

  Job job;
  job.query = std::move(q);
  job.id = next_id_.fetch_add(1);
  std::future<ExecutionReport> future = job.promise.get_future();
  {
    const std::lock_guard lock(scheduler_mutex_);
    job.submitted_at = clock_.elapsed();
    job.placement = system_->scheduler_mutable().schedule(
        job.query, job.submitted_at, job.id);
  }
  job.stage_enqueued_at = job.submitted_at;
  if (job.placement.rejected) {
    ExecutionReport report;
    report.rejected = true;
    job.promise.set_value(report);
    return future;
  }
  bool accepted = false;
  if (job.placement.queue.kind == QueueRef::kCpu) {
    accepted = cpu_queue_.push(std::move(job));
  } else if (job.placement.translate) {
    accepted = translation_queue_.push(std::move(job));
  } else {
    accepted = gpu_queues_[static_cast<std::size_t>(
                               job.placement.queue.index)]
                   ->push(std::move(job));
  }
  HOLAP_REQUIRE(accepted, "executor is shut down");
  return future;
}

void AsyncHybridExecutor::finish(Job job, ExecutionReport report) {
  {
    const std::lock_guard lock(scheduler_mutex_);
    system_->scheduler_mutable().on_completed(
        job.placement.queue, report.estimated_processing,
        report.measured_processing);
  }
  const Seconds done = clock_.elapsed();
  record_span(job.id, SpanKind::kComplete, done, done, job.placement.queue,
              job.placement.response_est, done,
              job.submitted_at + system_->scheduler().deadline() - done);
  {
    const std::lock_guard lock(histogram_mutex_);
    latencies_.add(done - job.submitted_at);
  }
  ++completed_;
  job.promise.set_value(std::move(report));
}

void AsyncHybridExecutor::cpu_worker() {
  while (auto job = cpu_queue_.pop()) {
    ExecutionReport report;
    report.queue = job->placement.queue;
    report.estimated_processing = job->placement.processing_est;
    report.before_deadline_estimate = job->placement.before_deadline;
    // Queue wait between placement and the partition picking the job up.
    record_span(job->id, SpanKind::kDispatch, job->stage_enqueued_at,
                clock_.elapsed(), job->placement.queue,
                job->placement.response_est, Seconds{}, Seconds{});
    // CPU-path text parameters translate inline (hashed path), outside
    // the translation partition — §III-F: translation is a GPU-side need.
    if (job->query.needs_translation()) {
      system_->translate(job->query);
    }
    const Seconds exec_start = clock_.elapsed();
    WallTimer timer;
    report.answer = system_->cubes().answer(job->query,
                                            system_->config().cpu_threads);
    report.measured_processing = timer.elapsed();
    record_span(job->id, SpanKind::kExecute, exec_start, clock_.elapsed(),
                job->placement.queue, job->placement.response_est, Seconds{},
                Seconds{});
    finish(std::move(*job), std::move(report));
  }
}

void AsyncHybridExecutor::translation_worker() {
  while (auto job = translation_queue_.pop()) {
    const Seconds trans_start = clock_.elapsed();
    WallTimer timer;
    system_->translate(job->query);
    const Seconds took = timer.elapsed();
    record_span(job->id, SpanKind::kTranslate, trans_start,
                clock_.elapsed(), job->placement.queue,
                job->placement.response_est, Seconds{}, Seconds{});
    const int queue = job->placement.queue.index;
    Job forwarded = std::move(*job);
    forwarded.placement.translation_est = took;  // measured, for reports
    forwarded.stage_enqueued_at = clock_.elapsed();
    if (!gpu_queues_[static_cast<std::size_t>(queue)]->push(
            std::move(forwarded))) {
      // Shutdown raced us; the job's promise is abandoned deliberately
      // only during teardown after shutdown() — which joins us first, so
      // this cannot happen in practice. Keep the invariant explicit:
      HOLAP_ASSERT(false, "GPU queue closed while translation ran");
    }
  }
}

void AsyncHybridExecutor::gpu_worker(int queue) {
  auto& jobs = *gpu_queues_[static_cast<std::size_t>(queue)];
  while (auto job = jobs.pop()) {
    ExecutionReport report;
    report.queue = job->placement.queue;
    report.estimated_processing = job->placement.processing_est;
    report.before_deadline_estimate = job->placement.before_deadline;
    report.translated = job->placement.translate;
    report.translation_time = job->placement.translate
                                  ? job->placement.translation_est
                                  : Seconds{};
    record_span(job->id, SpanKind::kDispatch, job->stage_enqueued_at,
                clock_.elapsed(), job->placement.queue,
                job->placement.response_est, Seconds{}, Seconds{});
    const Seconds exec_start = clock_.elapsed();
    const GpuExecution exec = system_->device().execute(queue, job->query);
    report.answer = exec.answer;
    report.measured_processing = exec.modeled_seconds;
    record_span(job->id, SpanKind::kExecute, exec_start, clock_.elapsed(),
                job->placement.queue, job->placement.response_est, Seconds{},
                Seconds{});
    finish(std::move(*job), std::move(report));
  }
}

}  // namespace holap
