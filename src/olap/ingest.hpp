// Batch-aggregated sharded ingestion front-end — §III-A's "queries arrive
// continuously" made a first-class intake stage.
//
// One scheduler decision per query means one scheduler-mutex acquisition
// and one clock-ledger commit per query; under a many-producer arrival
// storm that lock is the front door everyone queues at. The front-end
// inverts the cost: producers enqueue into per-source admission shards
// (bounded MPMC BlockingQueues — the arrival path never takes the
// scheduler lock), and per-shard aggregator threads gather requests into
// batches that flush when the batch fills (`batch_capacity`) or when its
// FIRST request has waited `flush_timeout` — so a trickle pays one
// timeout, never an unbounded wait. A flushed batch goes to a
// BatchAdmitter (the async executor), which runs the Figure-10 choose()
// decision over the whole batch under ONE lock acquisition and ONE
// clock-ledger commit, and amortises text-to-integer translation with one
// dictionary pass per distinct column across the batch.
//
// Overload discipline matches the executor's queues: a full shard
// displaces the queued request nearest its deadline (oldest accepted_at —
// every request shares T_C, so the oldest has the least slack left), or
// turns the arrival away when IT is the least feasible. Either way the
// victim's promise resolves typed (kShedAtAdmission) immediately.
//
// Shutdown closes every shard, and each aggregator drains its queue —
// BlockingQueue hands out buffered items after close() — then flushes the
// partial batch it was building. No request is ever dropped untyped: it
// either reaches admit() (whose contract is to resolve every promise) or
// is resolved right here.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/mutex.hpp"
#include "common/timer.hpp"
#include "obs/ingest_counters.hpp"
#include "olap/hybrid_system.hpp"

namespace holap {

/// One in-flight submission travelling shard → batch → admit().
struct IngestRequest {
  Query query;
  std::promise<ExecutionReport> promise;
  Seconds accepted_at{};  ///< front-end clock at submit(); displacement rank
};

/// Consumer of flushed batches (AsyncHybridExecutor implements this).
///
/// Contract: admit() resolves EVERY request's promise with a typed
/// ExecutionOutcome — scheduled work runs or sheds through the executor's
/// own rollback paths; a batch caught by shutdown rolls back as one unit
/// and resolves kFailed. A promise must never be abandoned.
class BatchAdmitter {
 public:
  virtual ~BatchAdmitter() = default;
  virtual void admit(std::vector<IngestRequest> batch) = 0;
};

class ShardedIngestFrontEnd {
 public:
  /// Spawns one aggregator thread per shard. `admitter` must outlive the
  /// front-end (or its shutdown()).
  explicit ShardedIngestFrontEnd(BatchAdmitter& admitter,
                                 IngestConfig config = {});

  /// Shuts down: drains shards, flushes partial batches, joins.
  ~ShardedIngestFrontEnd();

  ShardedIngestFrontEnd(const ShardedIngestFrontEnd&) = delete;
  ShardedIngestFrontEnd& operator=(const ShardedIngestFrontEnd&) = delete;

  /// Enqueue `q` on a round-robin shard. Non-blocking; the future always
  /// resolves with a typed outcome (a full shard sheds, typed, here).
  /// Throws after shutdown() has been observed.
  std::future<ExecutionReport> submit(Query q);

  /// Enqueue on a specific source shard (per-source affinity keeps one
  /// chatty producer's overload from displacing everyone else's work).
  std::future<ExecutionReport> submit(Query q, int shard);

  /// Stop intake, drain every shard, flush partial batches, join the
  /// aggregators. Idempotent; also runs on destruction. The admitter may
  /// still receive flushes while this drains.
  void shutdown();

  /// Counter snapshot (consistent under the stats mutex).
  IngestStats stats() const;

  const IngestConfig& config() const { return config_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  enum class FlushReason : std::uint8_t { kCapacity, kTimeout, kClose };

  void aggregator(int shard);

  /// Account the flush and hand the batch to the admitter (outside the
  /// stats lock — admit() does real scheduling work).
  void flush(std::vector<IngestRequest> batch, FlushReason reason);

  /// Resolve a request the front-end itself turned away (displacement,
  /// full shard, closed shard) — typed, immediately.
  static void resolve_unadmitted(IngestRequest request,
                                 ExecutionOutcome outcome);

  BatchAdmitter* admitter_;
  IngestConfig config_;
  WallTimer clock_;
  std::atomic<bool> down_{false};
  std::atomic<std::uint64_t> next_shard_{0};

  /// Counters and their mutex travel together; the guard relationship
  /// lives on GuardedIngestStats where both static analyses see it.
  GuardedIngestStats stats_;

  std::vector<std::unique_ptr<BlockingQueue<IngestRequest>>> shards_;
  std::vector<std::thread> aggregators_;
};

}  // namespace holap
