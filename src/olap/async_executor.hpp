// Asynchronous execution over the hybrid system — the online service of
// §III-A with real threads.
//
// The paper's system is interactive: queries arrive continuously, the
// scheduler places them, and partitions work their queues concurrently.
// AsyncHybridExecutor realises that on the host: one worker thread per
// GPU partition queue, one for the CPU processing partition, and one for
// the translation partition, all fed by BlockingQueues. submit() is
// non-blocking and returns a std::future for the answer; the Figure-10
// scheduler (shared state, mutex-protected) makes every placement and
// receives measured-time feedback exactly as in the synchronous path.
//
// GPU-bound text queries flow translation-worker -> partition-worker,
// preserving the system invariant that the device never sees text.
//
// Overload robustness: intake queues may be bounded
// (AsyncExecutorConfig::queue_capacity) and admission control may gate
// submissions (HybridSystemConfig::admission). Every submitted promise
// resolves with a typed ExecutionOutcome — completed, rejected,
// shed_at_admission, shed_in_queue or failed — never abandoned, never an
// assert. When a bounded queue overflows, the overflow policy either
// turns the arrival away or evicts the least-feasible queued job (the
// one with the smallest deadline slack), and the scheduler's queue clocks
// are rolled back for whatever was shed so later estimates do not carry
// phantom load.
#pragma once

#include <future>
#include <thread>

#include "common/blocking_queue.hpp"
#include "common/mutex.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "olap/hybrid_system.hpp"
#include "olap/ingest.hpp"
#include "sim/fault_injector.hpp"

namespace holap {

/// Overload-robustness knobs of the async executor.
struct AsyncExecutorConfig {
  /// Per-partition intake queue bound; 0 = unbounded (legacy behaviour).
  std::size_t queue_capacity = 0;
  enum class OverflowPolicy : std::uint8_t {
    /// Full queue: the arriving job is shed (typed shed_at_admission).
    kRejectNewest,
    /// Full queue: the least-feasible job — smallest deadline slack,
    /// counting the arrival itself — is shed (typed shed_in_queue for
    /// evicted queued work).
    kShedLeastFeasible,
  };
  OverflowPolicy overflow = OverflowPolicy::kRejectNewest;
};

class AsyncHybridExecutor : public BatchAdmitter {
 public:
  /// Spawns the worker threads over `system`'s components. The system
  /// must outlive the executor. The executor drives `system`'s scheduler
  /// through its own mutex; do not call system.execute() concurrently.
  explicit AsyncHybridExecutor(HybridOlapSystem& system,
                               AsyncExecutorConfig config = {});

  /// Drains queues and joins all workers.
  ~AsyncHybridExecutor();

  AsyncHybridExecutor(const AsyncHybridExecutor&) = delete;
  AsyncHybridExecutor& operator=(const AsyncHybridExecutor&) = delete;

  /// Schedule `q` and enqueue it on its partition. The future always
  /// resolves with a typed ExecutionReport::outcome (completed, rejected,
  /// shed_at_admission, shed_in_queue or failed — a submission racing
  /// shutdown resolves kFailed rather than abandoning the promise).
  /// Throws after shutdown() has been observed.
  std::future<ExecutionReport> submit(Query q);

  /// Batched admission: schedule ALL of `batch` under one scheduler-mutex
  /// acquisition and one clock-ledger commit (SchedulerPolicy::
  /// schedule_batch), batch-translate the text parameters with one
  /// dictionary pass per distinct column across the batch, then route
  /// each admitted job to its partition queue. Decision-equivalent to
  /// submitting the queries one by one in order; the amortisation is the
  /// point. Throws after shutdown() has been observed.
  std::vector<std::future<ExecutionReport>> submit_batch(
      std::vector<Query> batch);

  /// BatchAdmitter hook for ShardedIngestFrontEnd: same batched admission
  /// over pre-built requests. EVERY promise resolves typed — a batch that
  /// observes shutdown after scheduling is rolled back as one unit
  /// (rollback_batch) and resolved kFailed. Safe to call concurrently
  /// from multiple aggregator shards.
  void admit(std::vector<IngestRequest> batch) override;

  /// Stop accepting work, finish everything in flight, join workers.
  /// Idempotent; also runs on destruction.
  void shutdown();

  /// Completed query count (for monitoring/tests).
  std::size_t completed() const { return completed_.load(); }

  /// Jobs resolved with a shed outcome (admission, queue-full or
  /// eviction) since construction.
  std::size_t shed() const { return shed_.load(); }

  /// Fault-tolerance gauges: jobs that hit a down partition, retry
  /// re-submissions performed, jobs resolved kExhaustedRetries, and jobs
  /// completed kFailedOver (attempt > 1).
  std::size_t partition_failures() const { return partition_failures_.load(); }
  std::size_t retries() const { return retries_.load(); }
  std::size_t exhausted_retries() const { return exhausted_retries_.load(); }
  std::size_t failed_over() const { return failed_over_.load(); }

  /// Apply one elastic merge/split to the shared scheduler (which must
  /// model a device catalog). Under ONE scheduler-mutex acquisition the
  /// two affected partitions' intake queues are drained, each drained
  /// job's placement is rolled back through on_shed(), the operation is
  /// applied, and every drained job is re-scheduled against the new
  /// widths — same attempt, translation preserved — then re-routed. Jobs
  /// a worker already pulled finish on the old widths (stragglers).
  /// Returns the decision with derived widths resolved.
  RepartitionDecision repartition(const RepartitionDecision& decision);

  /// Elastic repartitioning gauges: operations applied and jobs drained
  /// and re-placed by them.
  std::size_t repartition_merges() const { return repartition_merges_.load(); }
  std::size_t repartition_splits() const { return repartition_splits_.load(); }
  std::size_t repartition_drained() const {
    return repartition_drained_.load();
  }

  /// Attach a span sink: the scheduler records kEnqueue at placement, the
  /// workers record translate/dispatch/execute/complete on the executor's
  /// wall clock. Call before submitting; nullptr detaches.
  void set_trace_recorder(TraceRecorder* recorder);

  /// Test-only fault injection (queue-full overrides, worker gates, the
  /// shutdown-race submit hook). Call before submitting; nullptr
  /// detaches. The injector must outlive the executor.
  void set_fault_injector(FaultInjector* injector);

  /// End-to-end latency distribution of completed queries (mergeable).
  LatencyHistogram latency_histogram() const;

  /// Per-partition intake gauges in fixed order: cpu, translation,
  /// gpu0..gpuN (enqueued/completed/shed/depth high-water marks).
  std::vector<PartitionCounters> partition_counters() const;

  const AsyncExecutorConfig& config() const { return config_; }

 private:
  struct Job {
    Query query;
    Placement placement;
    std::promise<ExecutionReport> promise;
    std::uint64_t id = 0;            ///< trace query id (submission order)
    Seconds submitted_at{};       ///< executor-clock submission time
    Seconds stage_enqueued_at{};  ///< entry time of the current queue
    bool translated = false;  ///< passed the translation partition already
    int attempt = 1;          ///< placements tried (fault-tolerance retry)
  };

  void cpu_worker();
  void translation_worker();
  void gpu_worker(int queue);
  void finish(Job job, ExecutionReport report);

  /// Enqueue a scheduled job on the queue its placement names (the tail
  /// of submit(), shared with the retry path).
  void route(Job job);

  /// A worker pulled `job` off `failed_ref`'s queue and found the
  /// partition down: roll the placement back, report the crash to the
  /// health monitor, then either re-schedule the job under the retry
  /// policy (failover — translation is never repeated) or resolve it
  /// kExhaustedRetries.
  void fail_over(Job job, QueueRef failed_ref);

  /// Resolve a faulted job whose placement was already rolled back (or
  /// never committed): typed kExhaustedRetries, no clock changes.
  void resolve_exhausted(Job job);

  /// Copy the monitor's health/breaker gauges into counters_. Call with
  /// the scheduler lock held (the monitor shares its domain).
  void sync_health_gauges() HOLAP_REQUIRES(scheduler_mutex_);

  /// Resolve a job that will never run: roll the scheduler clocks back
  /// and fulfil the promise with `outcome`. `counter_index` is the
  /// partition-counter slot to debit, or npos when it never enqueued.
  void resolve_unrun(Job job, ExecutionOutcome outcome,
                     std::size_t counter_index);

  /// Whole-batch failure between schedule_batch()'s commit and routing
  /// (shutdown race, throwing submit hook, failed dictionary pass):
  /// subtract the batch commit in one rollback_batch() and resolve every
  /// admitted promise kFailed.
  void fail_admitted(const BatchPlacement& placed,
                     std::vector<Job>& admitted);

  /// Enqueue under the configured capacity/overflow policy; resolves the
  /// displaced or rejected job itself. `counter_index` is the counter
  /// slot of `queue`; `arrival_shed_outcome` types a turned-away arrival
  /// (shed_at_admission at intake, shed_in_queue when the translation
  /// worker forwards a job that was already queued once).
  void enqueue(BlockingQueue<Job>& queue, Job job, std::size_t counter_index,
               ExecutionOutcome arrival_shed_outcome =
                   ExecutionOutcome::kShedAtAdmission);

  /// Deadline slack of a queued job: submitted_at + T_C − T_R estimate.
  Seconds slack_of(const Job& job) const;

  void record_span(std::uint64_t id, SpanKind kind, Seconds start,
                   Seconds end, QueueRef queue, Seconds resp_est,
                   Seconds measured, Seconds slack);

  /// Counter slot for a queue: 0 = cpu, 1 = translation, 2 + i = gpu i.
  static std::size_t counter_slot(QueueRef ref, bool in_translation_queue);

  /// The scheduler shared with the synchronous plane; every call crosses
  /// scheduler_mutex_, which the analysis enforces via this accessor.
  SchedulerPolicy& scheduler_locked() HOLAP_REQUIRES(scheduler_mutex_) {
    return system_->scheduler_mutable();
  }

  /// The scheduler-owned health monitor (may be null). The monitor is
  /// not thread-safe (see PartitionHealthMonitor's contract): the
  /// scheduler mutex is its capability here, and this accessor makes
  /// that requirement checkable instead of a comment at each call site.
  PartitionHealthMonitor* health_monitor_locked()
      HOLAP_REQUIRES(scheduler_mutex_) {
    return scheduler_locked().health_monitor();
  }

  HybridOlapSystem* system_;
  AsyncExecutorConfig config_;
  Mutex scheduler_mutex_;
  WallTimer clock_;
  std::atomic<bool> down_{false};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> partition_failures_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> exhausted_retries_{0};
  std::atomic<std::size_t> failed_over_{0};
  std::atomic<std::size_t> repartition_merges_{0};
  std::atomic<std::size_t> repartition_splits_{0};
  std::atomic<std::size_t> repartition_drained_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<TraceRecorder*> recorder_{nullptr};
  std::atomic<FaultInjector*> fault_{nullptr};
  mutable Mutex histogram_mutex_;
  LatencyHistogram latencies_ HOLAP_GUARDED_BY(histogram_mutex_);
  mutable Mutex counters_mutex_;
  std::vector<PartitionCounters> counters_ HOLAP_GUARDED_BY(counters_mutex_);

  BlockingQueue<Job> cpu_queue_;
  BlockingQueue<Job> translation_queue_;
  std::vector<std::unique_ptr<BlockingQueue<Job>>> gpu_queues_;

  std::vector<std::thread> workers_;
};

}  // namespace holap
