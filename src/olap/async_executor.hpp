// Asynchronous execution over the hybrid system — the online service of
// §III-A with real threads.
//
// The paper's system is interactive: queries arrive continuously, the
// scheduler places them, and partitions work their queues concurrently.
// AsyncHybridExecutor realises that on the host: one worker thread per
// GPU partition queue, one for the CPU processing partition, and one for
// the translation partition, all fed by BlockingQueues. submit() is
// non-blocking and returns a std::future for the answer; the Figure-10
// scheduler (shared state, mutex-protected) makes every placement and
// receives measured-time feedback exactly as in the synchronous path.
//
// GPU-bound text queries flow translation-worker -> partition-worker,
// preserving the system invariant that the device never sees text.
#pragma once

#include <future>
#include <thread>

#include "common/blocking_queue.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "olap/hybrid_system.hpp"

namespace holap {

class AsyncHybridExecutor {
 public:
  /// Spawns the worker threads over `system`'s components. The system
  /// must outlive the executor. The executor drives `system`'s scheduler
  /// through its own mutex; do not call system.execute() concurrently.
  explicit AsyncHybridExecutor(HybridOlapSystem& system);

  /// Drains queues and joins all workers.
  ~AsyncHybridExecutor();

  AsyncHybridExecutor(const AsyncHybridExecutor&) = delete;
  AsyncHybridExecutor& operator=(const AsyncHybridExecutor&) = delete;

  /// Schedule `q` and enqueue it on its partition. The future resolves
  /// when the partition finishes (with ExecutionReport::rejected set when
  /// no partition can process the query). Throws after shutdown().
  std::future<ExecutionReport> submit(Query q);

  /// Stop accepting work, finish everything in flight, join workers.
  /// Idempotent; also runs on destruction.
  void shutdown();

  /// Completed query count (for monitoring/tests).
  std::size_t completed() const { return completed_.load(); }

  /// Attach a span sink: the scheduler records kEnqueue at placement, the
  /// workers record translate/dispatch/execute/complete on the executor's
  /// wall clock. Call before submitting; nullptr detaches.
  void set_trace_recorder(TraceRecorder* recorder);

  /// End-to-end latency distribution of completed queries (mergeable).
  LatencyHistogram latency_histogram() const;

 private:
  struct Job {
    Query query;
    Placement placement;
    std::promise<ExecutionReport> promise;
    std::uint64_t id = 0;            ///< trace query id (submission order)
    Seconds submitted_at{};       ///< executor-clock submission time
    Seconds stage_enqueued_at{};  ///< entry time of the current queue
  };

  void cpu_worker();
  void translation_worker();
  void gpu_worker(int queue);
  void finish(Job job, ExecutionReport report);

  void record_span(std::uint64_t id, SpanKind kind, Seconds start,
                   Seconds end, QueueRef queue, Seconds resp_est,
                   Seconds measured, Seconds slack);

  HybridOlapSystem* system_;
  std::mutex scheduler_mutex_;
  WallTimer clock_;
  std::atomic<bool> down_{false};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<TraceRecorder*> recorder_{nullptr};
  mutable std::mutex histogram_mutex_;
  LatencyHistogram latencies_;

  BlockingQueue<Job> cpu_queue_;
  BlockingQueue<Job> translation_queue_;
  std::vector<std::unique_ptr<BlockingQueue<Job>>> gpu_queues_;

  std::vector<std::thread> workers_;
};

}  // namespace holap
