#include "olap/ingest.hpp"

#include <chrono>
#include <tuple>

#include "common/error.hpp"

namespace holap {
namespace {

/// Displacement rank: the request nearest its deadline is worst. Every
/// request shares the same T_C, so "nearest deadline" is simply "oldest
/// accepted_at" — and queued items win ties (push_displacing requires a
/// STRICTLY worse victim), so an arrival never displaces its own cohort.
bool nearer_deadline(const IngestRequest& a, const IngestRequest& b) {
  return a.accepted_at < b.accepted_at;
}

}  // namespace

ShardedIngestFrontEnd::ShardedIngestFrontEnd(BatchAdmitter& admitter,
                                             IngestConfig config)
    : admitter_(&admitter), config_(config) {
  HOLAP_REQUIRE(config_.shards > 0, "ingest front-end needs >= 1 shard");
  HOLAP_REQUIRE(config_.batch_capacity > 0,
                "ingest batch capacity must be >= 1");
  {
    // No aggregator is running yet, but locked() demands its capability
    // unconditionally — an uncontended acquisition is cheaper than an
    // analysis exception.
    MutexLock lock(stats_.mutex());
    stats_.locked().shards.resize(static_cast<std::size_t>(config_.shards));
    for (int i = 0; i < config_.shards; ++i) {
      stats_.locked().shards[static_cast<std::size_t>(i)].name =
          "shard" + std::to_string(i);
    }
  }
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<BlockingQueue<IngestRequest>>(
        config_.shard_queue_capacity));
  }
  for (int i = 0; i < config_.shards; ++i) {
    aggregators_.emplace_back([this, i] { aggregator(i); });
  }
}

ShardedIngestFrontEnd::~ShardedIngestFrontEnd() { shutdown(); }

void ShardedIngestFrontEnd::shutdown() {
  if (down_.exchange(true)) return;
  // Closing wakes parked aggregators; BlockingQueue keeps handing out
  // buffered items after close(), so each aggregator drains its shard and
  // flushes whatever batch it was building before exiting.
  for (auto& shard : shards_) shard->close();
  for (auto& thread : aggregators_) {
    if (thread.joinable()) thread.join();
  }
}

void ShardedIngestFrontEnd::resolve_unadmitted(IngestRequest request,
                                               ExecutionOutcome outcome) {
  ExecutionReport report;
  report.outcome = outcome;
  request.promise.set_value(std::move(report));
}

std::future<ExecutionReport> ShardedIngestFrontEnd::submit(Query q) {
  const auto shard = next_shard_.fetch_add(1) %
                     static_cast<std::uint64_t>(shards_.size());
  return submit(std::move(q), static_cast<int>(shard));
}

std::future<ExecutionReport> ShardedIngestFrontEnd::submit(Query q,
                                                           int shard) {
  HOLAP_REQUIRE(!down_.load(), "ingest front-end is shut down");
  HOLAP_REQUIRE(shard >= 0 && shard < shard_count(),
                "ingest shard index out of range");
  IngestRequest request;
  request.query = std::move(q);
  request.accepted_at = clock_.elapsed();
  std::future<ExecutionReport> future = request.promise.get_future();

  // The push and its gauge update form ONE stats critical section: the
  // aggregator decrements depth only after its own pop, under this same
  // mutex, so the +1 for an item always lands before the -1 for popping
  // it. (Lock order is stats -> queue here; the aggregator takes them
  // strictly one at a time, so the pair can never deadlock.)
  QueuePush result{};
  std::optional<IngestRequest> ejected;
  {
    MutexLock lock(stats_.mutex());
    std::tie(result, ejected) =
        shards_[static_cast<std::size_t>(shard)]->push_displacing(
            std::move(request), nearer_deadline);
    IngestStats& stats = stats_.locked();
    IngestShardCounters& ctr = stats.shards[static_cast<std::size_t>(shard)];
    ++stats.submitted;
    switch (result) {
      case QueuePush::kAccepted:
        // Eviction precedes insertion inside push_displacing, so the
        // gauge follows the same order and never reads above the true
        // occupancy.
        if (ejected.has_value()) ctr.on_displaced();
        ctr.on_enqueue();
        break;
      case QueuePush::kFull:
        // The arrival itself was the least feasible; it bounces.
        ++ctr.bounced;
        break;
      case QueuePush::kClosed:
        break;
    }
  }
  if (ejected.has_value()) {
    // Displaced queued request or bounced arrival: shed at the intake
    // door, before the scheduler ever saw it — nothing to roll back.
    resolve_unadmitted(std::move(*ejected),
                       result == QueuePush::kClosed
                           ? ExecutionOutcome::kFailed
                           : ExecutionOutcome::kShedAtAdmission);
  }
  return future;
}

void ShardedIngestFrontEnd::aggregator(int shard) {
  BlockingQueue<IngestRequest>& queue =
      *shards_[static_cast<std::size_t>(shard)];
  const auto drop_depth = [&] {
    MutexLock lock(stats_.mutex());
    stats_.locked().shards[static_cast<std::size_t>(shard)].on_dequeue();
  };
  for (;;) {
    // Block (indefinitely) for the request that OPENS a batch; the flush
    // timer starts from its arrival, not from the previous flush.
    std::optional<IngestRequest> first = queue.pop();
    if (!first.has_value()) return;  // closed and fully drained
    drop_depth();
    std::vector<IngestRequest> batch;
    batch.reserve(config_.batch_capacity);
    batch.push_back(std::move(*first));

    const Seconds deadline = clock_.elapsed() + config_.flush_timeout;
    FlushReason reason = FlushReason::kCapacity;
    while (batch.size() < config_.batch_capacity) {
      const Seconds remaining = deadline - clock_.elapsed();
      if (remaining <= Seconds{}) {
        reason = FlushReason::kTimeout;
        break;
      }
      std::optional<IngestRequest> next =
          queue.pop_for(std::chrono::duration<double>(remaining.value()));
      if (next.has_value()) {
        drop_depth();
        batch.push_back(std::move(*next));
        continue;
      }
      // nullopt from pop_for is either a timeout or closed-and-drained;
      // both flush the batch. Neither ends the aggregator here: only the
      // outer pop() may exit, so a request racing a close() between this
      // timeout and the closed() check is still drained next iteration
      // (pop/pop_for on a closed queue hand out buffered items instantly).
      reason = queue.closed() ? FlushReason::kClose : FlushReason::kTimeout;
      break;
    }
    flush(std::move(batch), reason);
  }
}

void ShardedIngestFrontEnd::flush(std::vector<IngestRequest> batch,
                                  FlushReason reason) {
  {
    MutexLock lock(stats_.mutex());
    IngestStats& stats = stats_.locked();
    ++stats.flushes;
    switch (reason) {
      case FlushReason::kCapacity:
        ++stats.flush_by_capacity;
        break;
      case FlushReason::kTimeout:
        ++stats.flush_by_timeout;
        break;
      case FlushReason::kClose:
        ++stats.flush_on_close;
        break;
    }
    stats.batch_sizes.add(batch.size());
    if (batch.size() == 1) {
      ++stats.immediate;
    } else {
      stats.aggregated += batch.size();
    }
  }
  admitter_->admit(std::move(batch));
}

IngestStats ShardedIngestFrontEnd::stats() const { return stats_.snapshot(); }

}  // namespace holap
