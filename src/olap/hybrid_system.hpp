// HybridOlapSystem — the library's top-level façade (native plane).
//
// Owns the full §III system: the relational fact table, the pre-computed
// cube ladder, the per-column dictionaries, the (simulated) GPU device
// with its partitioning, and the Figure-10 scheduler. `execute()` runs a
// query end-to-end exactly as the paper's system would: estimate →
// schedule → (translate if GPU-bound) → process on the chosen partition →
// feed measured time back into the scheduler.
//
// Execution is synchronous (this is the correctness/API plane; throughput
// experiments use sim/simulator.hpp), but every scheduling decision — queue
// choice, deadline feasibility, translation routing — is made by the same
// scheduler code the simulation drives.
#pragma once

#include <memory>
#include <span>

#include "common/timer.hpp"
#include "gpusim/gpu_device.hpp"
#include "obs/trace.hpp"
#include "olap/adapters.hpp"
#include "query/batch_translator.hpp"
#include "sched/baselines.hpp"

namespace holap {

/// Sharded, batch-aggregated ingestion front-end (olap/ingest.hpp):
/// per-source admission shards aggregate small requests into batches that
/// flush by capacity or timeout, so the scheduler decides — and the batch
/// translator amortises — whole batches instead of single queries.
struct IngestConfig {
  /// Admission shards (per-source MPMC queues); each owns one aggregator.
  int shards = 4;
  /// Flush a shard's batch as soon as it holds this many requests.
  std::size_t batch_capacity = 16;
  /// Flush a partial batch this long after its FIRST request arrived, so
  /// a trickle never waits for a full batch.
  Seconds flush_timeout{0.002};
  /// Bound of each shard's intake queue; an arrival at a full shard
  /// displaces the queued request closest to its deadline (or sheds
  /// itself when it is the least feasible) — always typed, never blocked.
  std::size_t shard_queue_capacity = 256;
};

struct HybridSystemConfig {
  /// OpenMP threads of the CPU processing partition (0 = sequential).
  int cpu_threads = 4;
  /// Cube levels to pre-compute on the CPU side.
  std::vector<int> cube_levels = {0, 1};
  /// Also build min/max basis cubes (enables kMin/kMax on the CPU side).
  bool minmax_cubes = false;
  /// GPU partitioning (SM counts, slow queues first).
  std::vector<int> gpu_partitions = {1, 1, 2, 2, 4, 4};
  /// Disable the accelerator entirely (CPU-only deployment).
  bool enable_gpu = true;
  /// A Hybrid OLAP system answers from cubes AND relational tables
  /// (§III-A). When no pre-computed cube covers a query and no GPU can
  /// take it, fall back to a host-side scan of the relational fact table
  /// instead of rejecting.
  bool cpu_table_scan_fallback = true;
  DeviceSpec device = DeviceSpec::tesla_c2070();
  /// T_C per-query deadline for the scheduler.
  Seconds deadline{0.25};
  /// Live translation algorithm: the paper's per-parameter linear scan,
  /// the hashed fast path, or the Aho–Corasick batch pass (future work).
  enum class TranslationAlgorithm : std::uint8_t {
    kLinearScan,
    kHashed,
    kBatchAhoCorasick,
  };
  TranslationAlgorithm translation = TranslationAlgorithm::kHashed;
  /// Scheduling policy name (see make_policy).
  std::string policy = "figure10";
  bool feedback = true;
  /// Overload robustness: admission control over the scheduler's own
  /// feasibility signal (kNone = the paper's always-place behaviour).
  AdmissionControl admission{};
  /// Partition fault tolerance: health tracking, per-partition circuit
  /// breakers and the deadline-aware retry policy (sched/health.hpp).
  /// Disabled keeps the paper's always-alive-partitions behaviour.
  FaultTolerance fault_tolerance{};
  /// Elastic multi-device catalog (sched/devices.hpp): prices off-home
  /// transfers into T_R and enables AsyncHybridExecutor::repartition().
  /// `gpu_table_mb` is overridden from the actual fact-table size at
  /// build time. Disabled keeps the distance-blind scheduler bit-for-bit.
  DeviceTopology topology{};
  /// Device owning each GPU queue; empty = device 0 owns all of them.
  std::vector<int> gpu_queue_device;
  /// Record per-query lifecycle spans (enqueue/translate/dispatch/execute/
  /// complete) into the system's TraceRecorder, timestamped on the
  /// system's wall clock.
  bool record_trace = false;
  /// Batch-aggregated ingestion front-end defaults, consumed by
  /// ShardedIngestFrontEnd (olap/ingest.hpp). The synchronous execute()
  /// path ignores it.
  IngestConfig ingest{};
};

/// How one submission ended. Every submitted query resolves to exactly
/// one of these — overloaded executors shed with a typed outcome instead
/// of hanging a promise or asserting.
enum class ExecutionOutcome : std::uint8_t {
  kCompleted,        ///< processed; `answer` is valid
  kRejected,         ///< no partition can process the query at all
  kShedAtAdmission,  ///< turned away before queueing (admission control
                     ///< or a full intake queue)
  kShedInQueue,      ///< queued, then evicted by load shedding
  kFailed,           ///< executor could not run it (shutdown race)
  kFailedOver,       ///< completed after a partition fault; `answer` is
                     ///< valid (a success outcome, like kCompleted)
  kExhaustedRetries,  ///< lost to partition faults: retry budget or
                      ///< deadline slack ran out before a live partition
                      ///< could finish it
};

const char* to_string(ExecutionOutcome outcome);

/// Where and how one query was processed.
struct ExecutionReport {
  QueryAnswer answer;
  QueueRef queue;               ///< partition that processed the query
  ExecutionOutcome outcome = ExecutionOutcome::kCompleted;
  bool rejected = false;        ///< outcome == kRejected (kept for callers)
  bool via_table_scan = false;  ///< answered by the CPU relational fallback
  bool translated = false;
  Seconds estimated_processing{};  ///< scheduler's model estimate
  Seconds measured_processing{};   ///< wall time (CPU) / modeled (GPU)
  Seconds translation_time{};      ///< measured translation wall time
  bool before_deadline_estimate = false;
  /// Placements this query went through (1 = no faults; > 1 means the
  /// outcome is kFailedOver or kExhaustedRetries).
  int attempts = 1;
};

class HybridOlapSystem {
 public:
  /// Builds the full system from a fact table: dictionaries from its text
  /// columns, the cube ladder at `config.cube_levels`, a device-resident
  /// copy of the table, and the scheduler wired to all of it.
  HybridOlapSystem(FactTable table, HybridSystemConfig config);

  /// Schedule and execute one query end-to-end.
  ExecutionReport execute(const Query& q);

  /// Translate `q`'s text parameters in place with the configured
  /// algorithm. Thread-safe (dictionaries are immutable after build).
  TranslationReport translate(Query& q) const;

  /// Translate a whole batch's text parameters in place, amortised: one
  /// dictionary pass per distinct text column ACROSS the batch
  /// (BatchTranslator::translate_all), regardless of the configured
  /// per-query algorithm. Thread-safe; null entries are skipped.
  TranslationReport translate_batch(std::span<Query* const> batch) const;

  /// Reference answers for cross-checking (bypass the scheduler).
  QueryAnswer answer_on_cpu(Query q) const;  ///< cube engine; throws if no cube
  QueryAnswer answer_on_gpu(Query q) const;  ///< full-device table scan

  const TableSchema& schema() const { return table_.schema(); }
  const FactTable& table() const { return table_; }
  const CubeSet& cubes() const { return cubes_; }
  const DictionarySet& dictionaries() const { return dicts_; }
  const GpuDevice& device() const { return device_; }
  const SchedulerPolicy& scheduler() const { return *policy_; }
  /// Mutable scheduler access for external executors (AsyncHybridExecutor
  /// serialises calls through its own mutex).
  SchedulerPolicy& scheduler_mutable() { return *policy_; }
  const HybridSystemConfig& config() const { return config_; }

  /// Span sink of the observability layer. Filled by execute() when
  /// `config.record_trace` is set (or by an AsyncHybridExecutor pointed at
  /// it); always accessible so callers can snapshot/clear.
  TraceRecorder& recorder() { return recorder_; }
  const TraceRecorder& recorder() const { return recorder_; }

 private:
  HybridSystemConfig config_;
  FactTable table_;
  DictionarySet dicts_;
  CubeSet cubes_;
  GpuDevice device_;
  Translator translator_;
  BatchTranslator batch_translator_;
  CubeSetWorkModel cpu_work_;
  DictionaryTranslationModel translation_work_;
  std::unique_ptr<SchedulerPolicy> policy_;
  WallTimer clock_;  ///< system time: "now" for the scheduler
  TraceRecorder recorder_;
  std::uint64_t next_query_id_ = 0;  ///< trace ids, execute() order
};

}  // namespace holap
