// Native-plane adapters: real engines behind the scheduler interfaces.
//
// These are the counterparts of sched/catalog.hpp's virtual catalogs: the
// CpuWorkModel answers from a real CubeSet (materialised cubes), and the
// TranslationWorkModel consults real per-column dictionaries. Estimation
// therefore sees exactly what execution will touch.
#pragma once

#include "cube/cube_set.hpp"
#include "query/translator.hpp"
#include "sched/interfaces.hpp"

namespace holap {

class CubeSetWorkModel final : public CpuWorkModel {
 public:
  explicit CubeSetWorkModel(const CubeSet* cubes) : cubes_(cubes) {
    HOLAP_REQUIRE(cubes != nullptr, "work model requires a cube set");
  }

  bool can_answer(const Query& q) const override {
    return cubes_->can_answer(q);
  }
  Megabytes answer_mb(const Query& q) const override {
    return bytes_to_mb(cubes_->answer_bytes(q));
  }

 private:
  const CubeSet* cubes_;
};

class DictionaryTranslationModel final : public TranslationWorkModel {
 public:
  explicit DictionaryTranslationModel(const Translator* translator)
      : translator_(translator) {
    HOLAP_REQUIRE(translator != nullptr,
                  "work model requires a translator");
  }

  std::vector<std::size_t> dictionary_lengths(const Query& q) const override {
    return translator_->dictionary_lengths(q);
  }

 private:
  const Translator* translator_;
};

}  // namespace holap
