#include "olap/hybrid_system.hpp"

#include <algorithm>

namespace holap {
namespace {

CubeSet build_cube_ladder(const FactTable& table,
                          const HybridSystemConfig& config) {
  CubeSet cubes(table.schema().dimensions());
  if (config.cube_levels.empty()) return cubes;
  // Build the finest requested level from the table, coarser ones by
  // roll-up from their smallest parent.
  std::vector<int> levels = config.cube_levels;
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  cubes.add_level_from_table(table, levels.back(), config.cpu_threads,
                             config.minmax_cubes);
  for (auto it = levels.rbegin() + 1; it != levels.rend(); ++it) {
    cubes.add_level_by_rollup(*it, config.cpu_threads);
  }
  return cubes;
}

}  // namespace

const char* to_string(ExecutionOutcome outcome) {
  switch (outcome) {
    case ExecutionOutcome::kCompleted:
      return "completed";
    case ExecutionOutcome::kRejected:
      return "rejected";
    case ExecutionOutcome::kShedAtAdmission:
      return "shed_at_admission";
    case ExecutionOutcome::kShedInQueue:
      return "shed_in_queue";
    case ExecutionOutcome::kFailed:
      return "failed";
    case ExecutionOutcome::kFailedOver:
      return "failed_over";
    case ExecutionOutcome::kExhaustedRetries:
      return "exhausted_retries";
  }
  return "unknown";
}

HybridOlapSystem::HybridOlapSystem(FactTable table, HybridSystemConfig config)
    : config_(std::move(config)),
      table_(std::move(table)),
      dicts_(DictionarySet::build_from_table(table_)),
      cubes_(build_cube_ladder(table_, config_)),
      device_(config_.device),
      translator_(table_.schema(), dicts_,
                  config_.translation ==
                          HybridSystemConfig::TranslationAlgorithm::
                              kLinearScan
                      ? DictSearch::kLinearScan
                      : DictSearch::kHashed),
      batch_translator_(table_.schema(), dicts_),
      cpu_work_(&cubes_),
      translation_work_(&translator_) {
  if (config_.enable_gpu) {
    device_.upload_table(table_);
    device_.set_partitions(config_.gpu_partitions);
  } else {
    config_.gpu_partitions.clear();
  }

  SchedulerConfig sched;
  sched.gpu_partitions = config_.gpu_partitions;
  sched.enable_gpu = config_.enable_gpu;
  sched.deadline = config_.deadline;
  sched.feedback = config_.feedback;
  sched.admission = config_.admission;
  sched.fault_tolerance = config_.fault_tolerance;
  sched.gpu_queue_device = config_.gpu_queue_device;
  sched.topology = config_.topology;
  if (sched.topology.enabled) {
    // Repartitioned GPU models must rescale to the table actually
    // resident on the device, not the config default.
    sched.topology.gpu_table_mb = bytes_to_mb(table_.size_bytes());
  }
  policy_ = make_policy(
      config_.policy, sched,
      make_paper_estimator(config_.gpu_partitions,
                           std::max(1, config_.cpu_threads),
                           bytes_to_mb(table_.size_bytes()),
                           table_.schema().column_count(), &cpu_work_,
                           &translation_work_));
  if (config_.record_trace) policy_->set_trace_recorder(&recorder_);
}

ExecutionReport HybridOlapSystem::execute(const Query& q) {
  validate_query(q, table_.schema().dimensions(), table_.schema());
  const Seconds now = clock_.elapsed();
  const std::uint64_t query_id = next_query_id_++;
  const bool tracing = config_.record_trace;
  auto record = [&](SpanKind kind, Seconds start, Seconds end,
                    QueueRef queue, Seconds resp_est, Seconds measured,
                    Seconds slack) {
    TraceRecorder::span_into(tracing ? &recorder_ : nullptr, query_id, kind)
        .window(start, end)
        .queue(queue)
        .estimated_response(resp_est)
        .measured_response(measured)
        .deadline_slack(slack)
        .commit();
  };
  Query working = q;

  // Untranslated queries cannot be estimated against the cube region until
  // translation, but scheduling happens first (the scheduler works from
  // dictionary lengths, not codes). Text queries bound for the CPU also
  // get translated — the cube engine needs codes too, but via the fast
  // hashed path outside the translation partition's accounting.
  const Placement placement = policy_->schedule(working, now, query_id);
  ExecutionReport report;
  report.rejected = placement.rejected;
  if (placement.shed_at_admission) {
    // Admission control turned the query away: a deliberate, typed shed —
    // the hybrid fallback is for *unanswerable* queries, not overload.
    report.outcome = ExecutionOutcome::kShedAtAdmission;
    report.queue = placement.queue;
    report.estimated_processing = placement.processing_est;
    return report;
  }
  if (placement.rejected) {
    report.outcome = ExecutionOutcome::kRejected;
    if (!config_.cpu_table_scan_fallback) return report;
    // Hybrid fallback: no cube covers the resolution and no GPU can take
    // it — answer from the relational fact table on the host.
    report.rejected = false;
    report.outcome = ExecutionOutcome::kCompleted;
    report.via_table_scan = true;
    report.queue = {QueueRef::kCpu, 0};
    if (working.needs_translation()) {
      WallTimer t;
      translate(working);
      report.translation_time = t.elapsed();
    }
    WallTimer t;
    report.answer =
        gpu_scan(table_, working, std::max(1, config_.cpu_threads)).answer;
    report.measured_processing = t.elapsed();
    return report;
  }
  report.queue = placement.queue;
  report.estimated_processing = placement.processing_est;
  report.before_deadline_estimate = placement.before_deadline;

  if (working.needs_translation()) {
    const Seconds trans_start = clock_.elapsed();
    WallTimer t;
    try {
      translate(working);
    } catch (const std::exception&) {
      // schedule() committed clocks for work that now cannot run: roll
      // the whole placement back (processing plus any pending
      // translation share) before the error escapes, or later
      // placements carry phantom load.
      policy_->on_shed(placement.queue, placement.processing_est,
                       placement.translate ? placement.translation_est
                                           : Seconds{});
      throw;
    }
    report.translation_time = t.elapsed();
    report.translated = placement.translate;
    record(SpanKind::kTranslate, trans_start, clock_.elapsed(),
           placement.queue, placement.response_est, Seconds{}, Seconds{});
  }

  // The synchronous plane hands the query straight to its partition; the
  // dispatch span is the zero-duration handoff marker.
  const Seconds exec_start = clock_.elapsed();
  record(SpanKind::kDispatch, exec_start, exec_start, placement.queue,
         placement.response_est, Seconds{}, Seconds{});
  try {
    if (placement.queue.kind == QueueRef::kCpu) {
      WallTimer t;
      report.answer = cubes_.answer(working, config_.cpu_threads);
      report.measured_processing = t.elapsed();
    } else {
      const GpuExecution exec =
          device_.execute(placement.queue.index, working);
      report.answer = exec.answer;
      report.measured_processing = exec.modeled_seconds;
    }
  } catch (const std::exception&) {
    // Translation (if any) already happened; only the processing commit
    // is phantom load now.
    policy_->on_shed(placement.queue, placement.processing_est, Seconds{});
    throw;
  }
  record(SpanKind::kExecute, exec_start, clock_.elapsed(),
         placement.queue, placement.response_est, Seconds{}, Seconds{});
  policy_->on_completed(placement.queue, report.estimated_processing,
                        report.measured_processing);
  const Seconds done = clock_.elapsed();
  record(SpanKind::kComplete, done, done, placement.queue,
         placement.response_est, done,
         now + config_.deadline - done);
  return report;
}

TranslationReport HybridOlapSystem::translate(Query& q) const {
  if (config_.translation ==
      HybridSystemConfig::TranslationAlgorithm::kBatchAhoCorasick) {
    return batch_translator_.translate(q);
  }
  return translator_.translate(q);
}

TranslationReport HybridOlapSystem::translate_batch(
    std::span<Query* const> batch) const {
  return batch_translator_.translate_all(batch);
}

QueryAnswer HybridOlapSystem::answer_on_cpu(Query q) const {
  if (q.needs_translation()) translate(q);
  return cubes_.answer(q, config_.cpu_threads);
}

QueryAnswer HybridOlapSystem::answer_on_gpu(Query q) const {
  if (q.needs_translation()) translate(q);
  // The device copy and the host table are identical; scan whichever
  // exists (GPU-disabled systems have no device copy).
  const FactTable& table =
      device_.has_table() ? device_.table() : table_;
  return gpu_scan(table, q, device_.spec().sm_count).answer;
}

}  // namespace holap
