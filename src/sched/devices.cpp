#include "sched/devices.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace holap {

DeviceCatalog::DeviceCatalog(DeviceTopology topology,
                             std::vector<int> partitions,
                             std::vector<int> queue_device)
    : topology_(std::move(topology)),
      configured_(std::move(partitions)),
      width_(configured_),
      queue_device_(std::move(queue_device)) {
  HOLAP_REQUIRE(!configured_.empty(), "catalog requires GPU queues");
  HOLAP_REQUIRE(queue_device_.size() == configured_.size(),
                "queue_device must have one entry per GPU queue");
  for (const int w : configured_) {
    HOLAP_REQUIRE(w >= 1, "partition widths must be positive");
  }
  for (const int d : queue_device_) {
    HOLAP_REQUIRE(d >= 0, "device ids must be non-negative");
    device_count_ = std::max(device_count_, d + 1);
  }
  HOLAP_REQUIRE(topology_.home_device >= 0 &&
                    topology_.home_device < device_count_,
                "home device must exist in the catalog");
  HOLAP_REQUIRE(topology_.transfer_unit >= Seconds{0.0},
                "transfer unit must be non-negative");
  if (!topology_.distance.empty()) {
    HOLAP_REQUIRE(static_cast<int>(topology_.distance.size()) ==
                      device_count_,
                  "distance matrix must have one row per device");
    for (const auto& row : topology_.distance) {
      HOLAP_REQUIRE(static_cast<int>(row.size()) == device_count_,
                    "distance matrix must be square");
      for (const double hop : row) {
        HOLAP_REQUIRE(hop >= 0.0, "distances must be non-negative");
      }
    }
  }
}

int DeviceCatalog::device_of(int queue) const {
  HOLAP_REQUIRE(queue >= 0 && queue < queue_count(),
                "GPU queue index out of range");
  return queue_device_[static_cast<std::size_t>(queue)];
}

std::vector<int> DeviceCatalog::queues_on(int device) const {
  std::vector<int> queues;
  for (int q = 0; q < queue_count(); ++q) {
    if (queue_device_[static_cast<std::size_t>(q)] == device) {
      queues.push_back(q);
    }
  }
  return queues;
}

double DeviceCatalog::distance(int from, int to) const {
  HOLAP_REQUIRE(from >= 0 && from < device_count_ && to >= 0 &&
                    to < device_count_,
                "device index out of range");
  if (topology_.distance.empty()) {
    return from == to ? 0.0 : 1.0;  // single-hop default
  }
  return topology_.distance[static_cast<std::size_t>(from)]
                           [static_cast<std::size_t>(to)];
}

Seconds DeviceCatalog::transfer_seconds(int queue) const {
  return topology_.transfer_unit *
         distance(topology_.home_device, device_of(queue));
}

bool DeviceCatalog::active(int queue) const { return width(queue) > 0; }

int DeviceCatalog::width(int queue) const {
  HOLAP_REQUIRE(queue >= 0 && queue < queue_count(),
                "GPU queue index out of range");
  return width_[static_cast<std::size_t>(queue)];
}

int DeviceCatalog::configured_width(int queue) const {
  HOLAP_REQUIRE(queue >= 0 && queue < queue_count(),
                "GPU queue index out of range");
  return configured_[static_cast<std::size_t>(queue)];
}

int DeviceCatalog::active_queues_on(int device) const {
  int n = 0;
  for (const int q : queues_on(device)) {
    if (active(q)) ++n;
  }
  return n;
}

std::optional<RepartitionDecision> DeviceCatalog::plan_merge(
    int device) const {
  // The two narrowest equal-width active siblings: merging 1+1 -> 2
  // before 2+2 -> 4 keeps the ladder shape as long as possible.
  int best_keeper = -1;
  int best_donor = -1;
  for (const int q : queues_on(device)) {
    if (!active(q)) continue;
    for (const int r : queues_on(device)) {
      if (r <= q || !active(r) || width(r) != width(q)) continue;
      if (best_keeper < 0 || width(q) < width(best_keeper)) {
        best_keeper = q;
        best_donor = r;
      }
      break;  // lowest-index partner of q
    }
  }
  if (best_keeper < 0) return std::nullopt;
  RepartitionDecision d;
  d.kind = RepartitionDecision::Kind::kMerge;
  d.device = device;
  d.keeper = best_keeper;
  d.donor = best_donor;
  d.keeper_width = width(best_keeper) + width(best_donor);
  d.donor_width = 0;
  return d;
}

std::optional<RepartitionDecision> DeviceCatalog::plan_split(
    int device) const {
  // Undo the most recent merge on the device still standing, so repeated
  // splits walk back to the configured ladder in reverse order.
  for (auto it = merge_history_.rbegin(); it != merge_history_.rend();
       ++it) {
    if (it->device != device) continue;
    RepartitionDecision d;
    d.kind = RepartitionDecision::Kind::kSplit;
    d.device = device;
    d.keeper = it->keeper;
    d.donor = it->donor;
    d.donor_width = configured_[static_cast<std::size_t>(it->donor)];
    d.keeper_width = width(it->keeper) - d.donor_width;
    return d;
  }
  return std::nullopt;
}

RepartitionDecision DeviceCatalog::apply(
    const RepartitionDecision& decision) {
  RepartitionDecision d = decision;
  HOLAP_REQUIRE(d.keeper >= 0 && d.keeper < queue_count() && d.donor >= 0 &&
                    d.donor < queue_count() && d.keeper != d.donor,
                "repartition names two distinct GPU queues");
  HOLAP_REQUIRE(device_of(d.keeper) == d.device &&
                    device_of(d.donor) == d.device,
                "repartition queues must share the named device");
  const auto keeper = static_cast<std::size_t>(d.keeper);
  const auto donor = static_cast<std::size_t>(d.donor);
  if (d.kind == RepartitionDecision::Kind::kMerge) {
    HOLAP_REQUIRE(active(d.keeper) && active(d.donor),
                  "merge requires two active partitions");
    if (d.keeper_width == 0) {
      d.keeper_width = width_[keeper] + width_[donor];
    }
    HOLAP_REQUIRE(d.keeper_width == width_[keeper] + width_[donor] &&
                      d.donor_width == 0,
                  "merge must conserve SMs into the keeper");
    width_[keeper] = d.keeper_width;
    width_[donor] = 0;
    merge_history_.push_back(d);
    ++merges_;
    return d;
  }
  HOLAP_REQUIRE(active(d.keeper) && !active(d.donor),
                "split reactivates a merged-away partition");
  if (d.donor_width == 0) d.donor_width = configured_[donor];
  if (d.keeper_width == 0) d.keeper_width = width_[keeper] - d.donor_width;
  HOLAP_REQUIRE(d.keeper_width >= 1 && d.donor_width >= 1 &&
                    d.keeper_width + d.donor_width == width_[keeper],
                "split must conserve the keeper's SMs");
  width_[keeper] = d.keeper_width;
  width_[donor] = d.donor_width;
  // Retire the matching merge record (newest first) so plan_split keeps
  // walking back through whatever merges still stand.
  for (auto it = merge_history_.rbegin(); it != merge_history_.rend();
       ++it) {
    if (it->keeper == d.keeper && it->donor == d.donor) {
      merge_history_.erase(std::next(it).base());
      break;
    }
  }
  ++splits_;
  return d;
}

ElasticPartitioner::ElasticPartitioner(ElasticPolicy policy,
                                       const DeviceCatalog* catalog)
    : policy_(policy), catalog_(catalog) {
  HOLAP_REQUIRE(catalog_ != nullptr, "partitioner requires a catalog");
  HOLAP_REQUIRE(policy_.check_interval > Seconds{0.0},
                "check interval must be positive");
  HOLAP_REQUIRE(policy_.sustain_checks >= 1,
                "sustain_checks must be at least 1");
  HOLAP_REQUIRE(policy_.cooldown_checks >= 0,
                "cooldown_checks must be non-negative");
  HOLAP_REQUIRE(policy_.merge_backlog > policy_.split_backlog,
                "merge threshold must exceed the split threshold");
  const auto devices = static_cast<std::size_t>(catalog_->device_count());
  merge_streak_.assign(devices, 0);
  split_streak_.assign(devices, 0);
  cooldown_.assign(devices, 0);
}

std::optional<RepartitionDecision> ElasticPartitioner::evaluate(
    const std::vector<Seconds>& backlog, const std::vector<bool>& healthy) {
  HOLAP_REQUIRE(static_cast<int>(backlog.size()) ==
                        catalog_->queue_count() &&
                    healthy.size() == backlog.size(),
                "one backlog/health sample per GPU queue");
  for (int dev = 0; dev < catalog_->device_count(); ++dev) {
    const auto slot = static_cast<std::size_t>(dev);
    if (cooldown_[slot] > 0) {
      --cooldown_[slot];
      continue;
    }
    Seconds total{};
    int active = 0;
    for (const int q : catalog_->queues_on(dev)) {
      if (!catalog_->active(q)) continue;
      total += backlog[static_cast<std::size_t>(q)];
      ++active;
    }
    if (active == 0) continue;
    const Seconds mean = total / static_cast<double>(active);
    if (mean >= policy_.merge_backlog) {
      split_streak_[slot] = 0;
      if (++merge_streak_[slot] < policy_.sustain_checks) continue;
      const auto plan = catalog_->plan_merge(dev);
      // Only fold HEALTHY siblings together: merging into a degraded or
      // probing partition would concentrate load on the partition least
      // able to take it.
      if (plan.has_value() &&
          healthy[static_cast<std::size_t>(plan->keeper)] &&
          healthy[static_cast<std::size_t>(plan->donor)]) {
        return plan;
      }
      merge_streak_[slot] = 0;  // re-arm: wait out another full streak
    } else if (mean <= policy_.split_backlog) {
      merge_streak_[slot] = 0;
      if (++split_streak_[slot] < policy_.sustain_checks) continue;
      const auto plan = catalog_->plan_split(dev);
      if (plan.has_value() &&
          healthy[static_cast<std::size_t>(plan->keeper)]) {
        return plan;
      }
      split_streak_[slot] = 0;
    } else {
      merge_streak_[slot] = 0;
      split_streak_[slot] = 0;
    }
  }
  return std::nullopt;
}

void ElasticPartitioner::on_applied(const RepartitionDecision& decision) {
  const auto slot = static_cast<std::size_t>(decision.device);
  HOLAP_REQUIRE(slot < cooldown_.size(), "decision names an unknown device");
  merge_streak_[slot] = 0;
  split_streak_[slot] = 0;
  cooldown_[slot] = policy_.cooldown_checks;
}

}  // namespace holap
