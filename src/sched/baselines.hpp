// Baseline scheduling policies for comparison with Figure 10.
//
// MET and MCT are the fast heuristic co-schedulers the paper's related-work
// section positions itself against (§II-D, citing Siegel & Ali [15] and
// Braun et al. [2]):
//   - MET (minimum execution time): place each query on the partition with
//     the smallest processing time, ignoring queue load entirely;
//   - MCT (minimum completion time): place each query on the partition
//     with the earliest completion (response) time.
// Round-robin is the no-information control. CPU-only and GPU-only system
// modes are expressed through SchedulerConfig::enable_{cpu,gpu} rather
// than separate policies.
#pragma once

#include "sched/scheduler.hpp"

namespace holap {

/// MET [15]: minimal execution time, load-blind.
class MetScheduler final : public QueueingScheduler {
 public:
  using QueueingScheduler::QueueingScheduler;
  const char* name() const override { return "MET"; }

 protected:
  std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds deadline) const override;
};

/// MCT [2]: minimal completion time.
class MctScheduler final : public QueueingScheduler {
 public:
  using QueueingScheduler::QueueingScheduler;
  const char* name() const override { return "MCT"; }

 protected:
  std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds deadline) const override;
};

/// Round-robin over partition queues, skipping partitions that cannot
/// process the query (e.g. the CPU when no cube covers the resolution).
class RoundRobinScheduler final : public QueueingScheduler {
 public:
  using QueueingScheduler::QueueingScheduler;
  const char* name() const override { return "round-robin"; }

 protected:
  std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds deadline) const override;

 private:
  mutable std::size_t cursor_ = 0;
};

/// Construct a policy by name: "figure10", "MET", "MCT", "round-robin".
std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name,
                                             SchedulerConfig config,
                                             CostEstimator estimator);

}  // namespace holap
