#include "sched/catalog.hpp"

#include <algorithm>
#include <map>

#include "cube/dense_cube.hpp"
#include "query/query.hpp"

namespace holap {

VirtualCubeCatalog::VirtualCubeCatalog(std::vector<Dimension> dims,
                                       std::vector<int> levels,
                                       std::size_t cell_bytes)
    : dims_(std::move(dims)), levels_(std::move(levels)),
      cell_bytes_(cell_bytes) {
  HOLAP_REQUIRE(!dims_.empty(), "catalog requires dimensions");
  HOLAP_REQUIRE(cell_bytes_ > 0, "cell size must be positive");
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  for (int level : levels_) {
    for (const auto& dim : dims_) {
      HOLAP_REQUIRE(level >= 0 && level < dim.level_count(),
                    "catalog level out of range for dimension");
    }
  }
}

std::optional<int> VirtualCubeCatalog::lowest_level_for(
    const Query& q) const {
  const int required = q.required_resolution();
  for (int level : levels_) {
    if (level >= required) return level;
  }
  return std::nullopt;
}

bool VirtualCubeCatalog::can_answer(const Query& q) const {
  return lowest_level_for(q).has_value();
}

Megabytes VirtualCubeCatalog::answer_mb(const Query& q) const {
  const auto level = lowest_level_for(q);
  HOLAP_REQUIRE(level.has_value(), "catalog cannot answer this query");
  return bytes_to_mb(subcube_bytes(q, dims_, *level, cell_bytes_));
}

std::size_t VirtualCubeCatalog::total_bytes() const {
  std::size_t bytes = 0;
  for (int level : levels_) bytes += cube_bytes(dims_, level, cell_bytes_);
  return bytes;
}

VirtualTranslationModel::VirtualTranslationModel(TableSchema schema,
                                                 double length_multiplier)
    : schema_(std::move(schema)), multiplier_(length_multiplier) {
  HOLAP_REQUIRE(multiplier_ > 0.0, "length multiplier must be positive");
}

std::size_t VirtualTranslationModel::column_length(const Condition& c) const {
  const int col = schema_.dimension_column(c.dim, c.level);
  if (schema_.column(col).encoding != ValueEncoding::kDictEncodedText) {
    return 0;
  }
  const Dimension& dim =
      schema_.dimensions()[static_cast<std::size_t>(c.dim)];
  return static_cast<std::size_t>(
      static_cast<double>(dim.level(c.level).cardinality) * multiplier_);
}

std::vector<std::size_t> VirtualTranslationModel::dictionary_lengths(
    const Query& q) const {
  std::vector<std::size_t> lengths;
  for (const auto& c : q.conditions) {
    if (!c.is_text()) continue;
    const std::size_t len = column_length(c);
    if (len == 0) continue;
    for (std::size_t i = 0; i < c.text_values.size(); ++i) {
      lengths.push_back(len);
    }
  }
  return lengths;
}

std::vector<std::size_t> VirtualTranslationModel::unique_dictionary_lengths(
    const Query& q) const {
  std::map<int, std::size_t> by_column;
  for (const auto& c : q.conditions) {
    if (!c.is_text()) continue;
    const std::size_t len = column_length(c);
    if (len == 0) continue;
    by_column[schema_.dimension_column(c.dim, c.level)] = len;
  }
  std::vector<std::size_t> lengths;
  lengths.reserve(by_column.size());
  for (const auto& [col, len] : by_column) lengths.push_back(len);
  return lengths;
}

}  // namespace holap
