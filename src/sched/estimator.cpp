#include "sched/estimator.hpp"

#include "common/error.hpp"

namespace holap {

CostEstimator::CostEstimator(CpuPerfModel cpu_model,
                             std::vector<GpuPerfModel> gpu_by_queue,
                             DictPerfModel dict_model,
                             const CpuWorkModel* cpu_work,
                             const TranslationWorkModel* translation_work,
                             int gpu_total_columns)
    : cpu_model_(std::move(cpu_model)),
      gpu_models_(std::move(gpu_by_queue)),
      dict_model_(dict_model),
      cpu_work_(cpu_work),
      translation_work_(translation_work),
      gpu_total_columns_(gpu_total_columns) {
  HOLAP_REQUIRE(cpu_work_ != nullptr, "estimator requires a CPU work model");
  HOLAP_REQUIRE(translation_work_ != nullptr,
                "estimator requires a translation work model");
  HOLAP_REQUIRE(gpu_total_columns_ > 0, "C_TOTAL must be positive");
  gpu_degradation_.assign(gpu_models_.size(), 1.0);
  gpu_transfer_.assign(gpu_models_.size(), Seconds{});
}

CostEstimate CostEstimator::estimate(const Query& q) const {
  CostEstimate est;
  if (cpu_work_->can_answer(q)) {
    est.subcube_mb = cpu_work_->answer_mb(q);
    est.cpu = cpu_model_.seconds(est.subcube_mb) * cpu_degradation_;
  }
  est.column_fraction =
      std::min(1.0, static_cast<double>(q.gpu_columns_accessed()) /
                        static_cast<double>(gpu_total_columns_));
  est.gpu.reserve(gpu_models_.size());
  for (std::size_t i = 0; i < gpu_models_.size(); ++i) {
    // The transfer term prices data movement onto a non-home device; it
    // scales with the columns touched, not with the partition's speed, so
    // it stays outside the degradation multiplier.
    est.gpu.push_back(gpu_models_[i].seconds(est.column_fraction) *
                          gpu_degradation_[i] +
                      gpu_transfer_[i] * est.column_fraction);
  }
  const auto lengths = translation_work_->dictionary_lengths(q);
  est.needs_translation = !lengths.empty();
  switch (translation_costing_) {
    case TranslationCosting::kPerParameter:
      est.translation = dict_model_.translation_seconds(lengths);
      break;
    case TranslationCosting::kBatchPerColumn:
      est.translation = dict_model_.translation_seconds(
          translation_work_->unique_dictionary_lengths(q));
      break;
    case TranslationCosting::kHashed:
      est.translation =
          hashed_seconds_ * static_cast<double>(lengths.size());
      break;
  }
  return est;
}

void CostEstimator::set_translation_costing(TranslationCosting costing,
                                            Seconds hashed_seconds) {
  HOLAP_REQUIRE(hashed_seconds > Seconds{0.0},
                "hashed lookup cost must be positive");
  translation_costing_ = costing;
  hashed_seconds_ = hashed_seconds;
}

void CostEstimator::set_gpu_transfer(int queue, Seconds per_fraction) {
  HOLAP_REQUIRE(queue >= 0 &&
                    queue < static_cast<int>(gpu_transfer_.size()),
                "GPU queue index out of range");
  HOLAP_REQUIRE(per_fraction >= Seconds{0.0},
                "transfer cost must be non-negative");
  gpu_transfer_[static_cast<std::size_t>(queue)] = per_fraction;
}

Seconds CostEstimator::gpu_transfer(int queue) const {
  HOLAP_REQUIRE(queue >= 0 &&
                    queue < static_cast<int>(gpu_transfer_.size()),
                "GPU queue index out of range");
  return gpu_transfer_[static_cast<std::size_t>(queue)];
}

void CostEstimator::set_gpu_model(int queue, GpuPerfModel model) {
  HOLAP_REQUIRE(queue >= 0 && queue < static_cast<int>(gpu_models_.size()),
                "GPU queue index out of range");
  gpu_models_[static_cast<std::size_t>(queue)] = std::move(model);
}

void CostEstimator::set_degradation(QueueRef ref, double multiplier) {
  HOLAP_REQUIRE(multiplier >= 1.0,
                "degradation must not make a partition look faster");
  if (ref.kind == QueueRef::kCpu) {
    HOLAP_REQUIRE(ref.index == 0,
                  "degradation applies to processing partitions only");
    cpu_degradation_ = multiplier;
    return;
  }
  HOLAP_REQUIRE(ref.index >= 0 &&
                    ref.index < static_cast<int>(gpu_degradation_.size()),
                "GPU queue index out of range");
  gpu_degradation_[static_cast<std::size_t>(ref.index)] = multiplier;
}

double CostEstimator::degradation(QueueRef ref) const {
  if (ref.kind == QueueRef::kCpu) return cpu_degradation_;
  HOLAP_REQUIRE(ref.index >= 0 &&
                    ref.index < static_cast<int>(gpu_degradation_.size()),
                "GPU queue index out of range");
  return gpu_degradation_[static_cast<std::size_t>(ref.index)];
}

CostEstimator make_paper_estimator(
    const std::vector<int>& gpu_partitions, int cpu_threads,
    Megabytes gpu_table_mb, int gpu_total_columns,
    const CpuWorkModel* cpu_work,
    const TranslationWorkModel* translation_work) {
  std::vector<GpuPerfModel> gpu_models;
  gpu_models.reserve(gpu_partitions.size());
  for (int n_sms : gpu_partitions) {
    gpu_models.push_back(
        GpuPerfModel::paper_c2070_scaled(n_sms, gpu_table_mb));
  }
  return CostEstimator(CpuPerfModel::paper_for_threads(cpu_threads),
                       std::move(gpu_models), DictPerfModel::paper(),
                       cpu_work, translation_work, gpu_total_columns);
}

}  // namespace holap
