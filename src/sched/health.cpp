#include "sched/health.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace holap {

const char* to_string(PartitionHealth health) {
  switch (health) {
    case PartitionHealth::kHealthy:
      return "healthy";
    case PartitionHealth::kDegraded:
      return "degraded";
    case PartitionHealth::kFailed:
      return "failed";
    case PartitionHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Seconds RetryPolicy::backoff_for(int failed_attempt) const {
  HOLAP_REQUIRE(failed_attempt >= 1,
                "backoff applies to a failed attempt (>= 1)");
  HOLAP_REQUIRE(max_backoff_doublings >= 0,
                "backoff doubling cap must be non-negative");
  const int doublings = std::min(failed_attempt - 1, max_backoff_doublings);
  Seconds backoff = backoff_base;
  for (int k = 0; k < doublings; ++k) backoff += backoff;
  return backoff;
}

CircuitBreaker::CircuitBreaker(const HealthPolicy& policy)
    : window_(policy.breaker_window),
      failure_threshold_(policy.breaker_failures),
      cooldown_(policy.breaker_cooldown),
      half_open_successes_(policy.half_open_successes) {
  HOLAP_REQUIRE(window_ >= 1, "breaker window must be at least 1");
  HOLAP_REQUIRE(failure_threshold_ >= 1 && failure_threshold_ <= window_,
                "breaker failure threshold must be in [1, window]");
  HOLAP_REQUIRE(cooldown_ > Seconds{0.0},
                "breaker cool-down must be positive");
  HOLAP_REQUIRE(half_open_successes_ >= 1,
                "breaker needs at least one half-open success to close");
}

void CircuitBreaker::transition(State next) {
  if (state_ == next) return;
  state_ = next;
  ++transitions_;
}

bool CircuitBreaker::refresh(Seconds now) {
  if (state_ != State::kOpen || now < opened_at_ + cooldown_) return false;
  transition(State::kHalfOpen);
  probe_successes_ = 0;
  return true;
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case State::kClosed:
      outcomes_.push_back(false);
      while (static_cast<int>(outcomes_.size()) > window_) {
        outcomes_.pop_front();
      }
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= half_open_successes_) {
        transition(State::kClosed);
        outcomes_.clear();
      }
      break;
    case State::kOpen:
      // An in-flight query beat the trip; it says nothing about now.
      break;
  }
}

void CircuitBreaker::record_failure(Seconds now) {
  switch (state_) {
    case State::kClosed: {
      outcomes_.push_back(true);
      while (static_cast<int>(outcomes_.size()) > window_) {
        outcomes_.pop_front();
      }
      int failures = 0;
      for (const bool failed : outcomes_) failures += failed ? 1 : 0;
      if (failures >= failure_threshold_) {
        transition(State::kOpen);
        opened_at_ = now;
        outcomes_.clear();
      }
      break;
    }
    case State::kHalfOpen:
      // The probe failed: back to open, cool-down restarts.
      transition(State::kOpen);
      opened_at_ = now;
      probe_successes_ = 0;
      break;
    case State::kOpen:
      break;  // already open; stragglers do not extend the cool-down
  }
}

void CircuitBreaker::trip(Seconds now) {
  transition(State::kOpen);
  opened_at_ = now;
  probe_successes_ = 0;
  outcomes_.clear();
}

void CircuitBreaker::begin_probe() {
  if (state_ != State::kOpen) return;
  transition(State::kHalfOpen);
  probe_successes_ = 0;
}

PartitionHealthMonitor::PartitionHealthMonitor(int gpu_queues,
                                               HealthPolicy policy)
    : policy_(policy) {
  HOLAP_REQUIRE(gpu_queues >= 0, "GPU queue count must be non-negative");
  HOLAP_REQUIRE(policy_.degrade_streak >= 1 && policy_.restore_streak >= 1,
                "health streak thresholds must be at least 1");
  HOLAP_REQUIRE(policy_.error_ratio >= 1.0,
                "overrun ratio below 1 would flag on-estimate completions");
  HOLAP_REQUIRE(policy_.degraded_multiplier >= 1.0,
                "degradation must not make a partition look faster");
  entries_.reserve(static_cast<std::size_t>(gpu_queues) + 1);
  for (int i = 0; i <= gpu_queues; ++i) entries_.emplace_back(policy_);
}

PartitionHealthMonitor::Entry& PartitionHealthMonitor::entry(QueueRef ref) {
  if (ref.kind == QueueRef::kCpu) {
    HOLAP_REQUIRE(ref.index == 0,
                  "health is tracked for processing partitions only");
    return entries_[0];
  }
  HOLAP_REQUIRE(ref.index >= 0 &&
                    ref.index < static_cast<int>(entries_.size()) - 1,
                "GPU queue index out of range");
  return entries_[static_cast<std::size_t>(ref.index) + 1];
}

const PartitionHealthMonitor::Entry& PartitionHealthMonitor::entry(
    QueueRef ref) const {
  return const_cast<PartitionHealthMonitor*>(this)->entry(ref);
}

void PartitionHealthMonitor::set_health(Entry& e, PartitionHealth next) {
  e.health = next;
}

void PartitionHealthMonitor::on_measured(QueueRef ref, Seconds estimated,
                                         Seconds actual) {
  Entry& e = entry(ref);
  const bool overrun =
      actual > estimated * policy_.error_ratio + policy_.error_slack;
  switch (e.health) {
    case PartitionHealth::kHealthy:
      if (overrun) {
        e.good_streak = 0;
        if (++e.overrun_streak >= policy_.degrade_streak) {
          set_health(e, PartitionHealth::kDegraded);
        }
      } else {
        e.overrun_streak = 0;
      }
      break;
    case PartitionHealth::kDegraded:
      if (overrun) {
        e.good_streak = 0;
        ++e.overrun_streak;
      } else if (++e.good_streak >= policy_.restore_streak) {
        set_health(e, PartitionHealth::kHealthy);
        e.overrun_streak = 0;
        e.good_streak = 0;
      }
      break;
    case PartitionHealth::kRecovering:
      if (overrun) {
        // Completed but slow: not a breaker failure, yet no evidence of
        // recovery either.
        e.good_streak = 0;
        break;
      }
      e.breaker.record_success();
      if (e.breaker.state() == CircuitBreaker::State::kClosed) {
        set_health(e, PartitionHealth::kHealthy);
        e.overrun_streak = 0;
        e.good_streak = 0;
      }
      break;
    case PartitionHealth::kFailed:
      // In-flight work that beat the crash; the breaker stays open.
      break;
  }
}

void PartitionHealthMonitor::on_fault(QueueRef ref, Seconds now) {
  Entry& e = entry(ref);
  ++e.faults;
  e.good_streak = 0;
  e.breaker.refresh(now);
  e.breaker.record_failure(now);
  if (e.breaker.state() == CircuitBreaker::State::kOpen) {
    set_health(e, PartitionHealth::kFailed);
  }
}

void PartitionHealthMonitor::on_crash(QueueRef ref, Seconds now) {
  Entry& e = entry(ref);
  ++e.faults;
  e.breaker.trip(now);
  e.overrun_streak = 0;
  e.good_streak = 0;
  set_health(e, PartitionHealth::kFailed);
}

void PartitionHealthMonitor::on_recovered(QueueRef ref, Seconds now) {
  (void)now;
  Entry& e = entry(ref);
  e.breaker.begin_probe();
  if (e.health == PartitionHealth::kFailed) {
    set_health(e, PartitionHealth::kRecovering);
  }
  e.overrun_streak = 0;
  e.good_streak = 0;
}

bool PartitionHealthMonitor::schedulable(QueueRef ref, Seconds now) {
  Entry& e = entry(ref);
  e.breaker.refresh(now);
  if (e.health == PartitionHealth::kFailed &&
      e.breaker.state() != CircuitBreaker::State::kOpen) {
    // The cool-down elapsed without an explicit recovery event: probe.
    set_health(e, PartitionHealth::kRecovering);
    e.overrun_streak = 0;
    e.good_streak = 0;
  }
  return e.health != PartitionHealth::kFailed;
}

PartitionHealth PartitionHealthMonitor::health(QueueRef ref) const {
  return entry(ref).health;
}

double PartitionHealthMonitor::multiplier(QueueRef ref) const {
  return entry(ref).health == PartitionHealth::kHealthy
             ? 1.0
             : policy_.degraded_multiplier;
}

std::size_t PartitionHealthMonitor::breaker_transitions(QueueRef ref) const {
  return entry(ref).breaker.transitions();
}

std::size_t PartitionHealthMonitor::fault_count(QueueRef ref) const {
  return entry(ref).faults;
}

}  // namespace holap
