// Partition fault tolerance: health state machine, circuit breakers and
// the retry policy the executor/simulator replay failed queries under.
//
// The Figure-10 machinery assumes every partition queue is permanently
// alive; a crashed or degraded partition would silently absorb queries
// and blow every deadline. This layer tracks a health state per
// processing partition (the CPU queue and each GPU partition queue — the
// translation partition is CPU-side and restartable, so it is assumed
// reliable):
//
//     kHealthy ──(degrade_streak overruns)──▶ kDegraded
//     kHealthy/kDegraded ──(crash / breaker opens)──▶ kFailed
//     kDegraded ──(restore_streak good completions)──▶ kHealthy
//     kFailed ──(cool-down elapses / explicit recovery)──▶ kRecovering
//     kRecovering ──(half_open_successes completions)──▶ kHealthy
//     kRecovering ──(any failure)──▶ kFailed
//
// kDegraded and kRecovering partitions stay schedulable but honestly
// slower: the estimator inflates their estimates by degraded_multiplier,
// so the Figure-10 feasibility test routes around them when it can.
// kFailed partitions are removed from the choose() candidate set entirely
// by the per-partition circuit breaker (failure-rate window over recent
// outcomes; open/half-open/closed with a deterministic cool-down on the
// caller's clock — wall time in the executor, sim time in the simulator).
//
// Everything here is an explicit counter or threshold: no wall clock, no
// randomness (this header sits inside the determinism lint's include
// closure via sched/scheduler.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.hpp"
#include "sched/interfaces.hpp"

namespace holap {

/// Health of one processing partition (see the state machine above).
enum class PartitionHealth : std::uint8_t {
  kHealthy,     ///< estimates track reality; full candidate
  kDegraded,    ///< persistent overruns; schedulable at inflated cost
  kFailed,      ///< breaker open; removed from the candidate set
  kRecovering,  ///< breaker half-open; probing at inflated cost
};

const char* to_string(PartitionHealth health);

/// Thresholds of the health state machine and the circuit breaker.
struct HealthPolicy {
  /// Consecutive overruns (actual > estimated * error_ratio + error_slack)
  /// that demote a kHealthy partition to kDegraded.
  int degrade_streak = 4;
  /// Measured-vs-estimated ratio above which a completion counts as an
  /// overrun...
  double error_ratio = 2.0;
  /// ...plus this absolute slack, so constant per-query overheads (e.g.
  /// the GPU dispatch cost folded into measured times) never read as
  /// degradation on fast queries.
  Seconds error_slack{0.02};
  /// Consecutive good completions that restore kDegraded to kHealthy.
  int restore_streak = 4;
  /// Estimate inflation applied to kDegraded/kRecovering partitions
  /// (>= 1): still schedulable, honestly slower.
  double degraded_multiplier = 2.0;
  /// Circuit breaker: outcomes kept in the sliding failure-rate window.
  int breaker_window = 8;
  /// Failures within the window that open the breaker.
  int breaker_failures = 4;
  /// Open -> half-open once this much time has passed on the caller's
  /// clock since the breaker opened.
  Seconds breaker_cooldown{0.5};
  /// Consecutive half-open successes that close the breaker again.
  int half_open_successes = 3;
};

/// Bounded, deadline-aware replay of failed queries.
struct RetryPolicy {
  /// Total attempts per query, the first included. 1 disables retries.
  int max_attempts = 3;
  /// Delay before attempt k is re-submitted:
  /// backoff_base * 2^min(k-2, max_backoff_doublings).
  /// (The simulator sleeps on the sim clock; the native executor does not
  /// block a worker and applies the backoff to the slack gate only.)
  Seconds backoff_base{0.01};
  /// Clamp on the backoff exponent: without it a large max_attempts grows
  /// backoff_base * 2^(k-2) without bound — past any deadline slack gate
  /// and, eventually, past what Seconds can represent. 16 doublings keep
  /// the default base at a ~655 s ceiling while leaving every small
  /// attempt count bit-identical to the unclamped series.
  int max_backoff_doublings = 16;
  /// A retry is shed (kExhaustedRetries) unless the deadline slack left
  /// after the backoff, (submit + T_C) - (now + backoff), is at least
  /// this fraction of T_C. 0 demands the re-submission happen before the
  /// deadline; negative values allow late retries.
  double deadline_slack_gate = 0.0;

  /// Backoff owed after attempt `failed_attempt` (>= 1) failed, i.e.
  /// before attempt failed_attempt + 1 is re-submitted, with the doubling
  /// exponent clamped to max_backoff_doublings.
  Seconds backoff_for(int failed_attempt) const;
};

/// Fault-tolerance configuration, carried by SchedulerConfig. Disabled by
/// default: the scheduler then behaves bit-identically to the paper's.
struct FaultTolerance {
  bool enabled = false;
  HealthPolicy health;
  RetryPolicy retry;
};

/// Per-partition circuit breaker: closed (normal), open (partition
/// removed from the candidate set), half-open (probing). Deterministic —
/// the cool-down runs on whatever clock the caller passes as `now`.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const HealthPolicy& policy);

  State state() const { return state_; }

  /// Promote kOpen to kHalfOpen once the cool-down has elapsed at `now`.
  /// Returns true when that transition happened.
  bool refresh(Seconds now);

  /// A completion. Half-open successes accumulate toward kClosed.
  void record_success();

  /// A failure. Closed: enters the window and opens the breaker at the
  /// threshold. Half-open: the probe failed; re-open with a fresh
  /// cool-down. Open: ignored (stragglers from before the trip).
  void record_failure(Seconds now);

  /// An explicit partition crash: open immediately from any state, with
  /// the cool-down restarting at `now`.
  void trip(Seconds now);

  /// An explicit recovery signal: start probing (kOpen -> kHalfOpen)
  /// without waiting out the cool-down.
  void begin_probe();

  /// State changes since construction (an obs gauge).
  std::size_t transitions() const { return transitions_; }

 private:
  void transition(State next);

  int window_;
  int failure_threshold_;
  Seconds cooldown_;
  int half_open_successes_;
  State state_ = State::kClosed;
  Seconds opened_at_{};
  std::deque<bool> outcomes_;  ///< newest at back; true = failure
  int probe_successes_ = 0;
  std::size_t transitions_ = 0;
};

/// Health state machine over the CPU processing partition and every GPU
/// partition queue, driven by measured-vs-estimated error streaks
/// (on_measured), explicit fault events (on_fault/on_crash) and timed
/// recoveries (on_recovered). Not thread-safe: the scheduler owns it and
/// every caller already serialises on the scheduler (the executor's
/// scheduler mutex, the simulator's single thread). The executor makes
/// that contract checkable instead of a comment: its
/// health_monitor_locked() accessor carries
/// HOLAP_REQUIRES(scheduler_mutex_), so both clang Thread Safety
/// Analysis and the repo concurrency analyzer see the monitor reached
/// only with the scheduler capability held. Deliberately no mutex of
/// its own here — a second lock under the scheduler mutex would add a
/// lock-order edge for zero protection.
class PartitionHealthMonitor {
 public:
  PartitionHealthMonitor(int gpu_queues, HealthPolicy policy);

  /// Completion feedback: estimated vs actual processing time on `ref`.
  /// Overrun streaks demote to kDegraded; good streaks restore and, in
  /// kRecovering, count toward closing the breaker.
  void on_measured(QueueRef ref, Seconds estimated, Seconds actual);

  /// A query failed on `ref` (one event per failed query). Enters the
  /// breaker's failure-rate window; at the threshold the partition fails.
  void on_fault(QueueRef ref, Seconds now);

  /// `ref`'s partition crashed outright: trip the breaker, fail the
  /// partition immediately.
  void on_crash(QueueRef ref, Seconds now);

  /// Explicit recovery signal for `ref`: begin probing (kRecovering)
  /// without waiting out the breaker cool-down.
  void on_recovered(QueueRef ref, Seconds now);

  /// Candidate filter for schedule(): false removes `ref` from the
  /// choose() candidate set. Promotes kFailed to kRecovering when the
  /// breaker cool-down has elapsed at `now`.
  bool schedulable(QueueRef ref, Seconds now);

  PartitionHealth health(QueueRef ref) const;

  /// Estimate inflation for `ref`: 1 when healthy, the policy's
  /// degraded_multiplier otherwise.
  double multiplier(QueueRef ref) const;

  /// Breaker state changes on `ref` since construction.
  std::size_t breaker_transitions(QueueRef ref) const;

  /// Fault events (on_fault + on_crash) recorded against `ref`.
  std::size_t fault_count(QueueRef ref) const;

  const HealthPolicy& policy() const { return policy_; }
  int gpu_queue_count() const {
    return static_cast<int>(entries_.size()) - 1;
  }

 private:
  struct Entry {
    explicit Entry(const HealthPolicy& policy) : breaker(policy) {}
    PartitionHealth health = PartitionHealth::kHealthy;
    CircuitBreaker breaker;
    int overrun_streak = 0;
    int good_streak = 0;
    std::size_t faults = 0;
  };

  Entry& entry(QueueRef ref);
  const Entry& entry(QueueRef ref) const;
  void set_health(Entry& e, PartitionHealth next);

  HealthPolicy policy_;
  std::vector<Entry> entries_;  ///< slot 0 = CPU, slot 1 + i = GPU queue i
};

}  // namespace holap
