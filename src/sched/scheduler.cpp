#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace holap {

BatchPlacement SchedulerPolicy::schedule_batch(
    std::span<const Query> batch, Seconds now, std::uint64_t first_query_id,
    std::span<const ScheduleHints> hints) {
  HOLAP_REQUIRE(hints.empty() || hints.size() == batch.size(),
                "hints must be empty or one per batched query");
  // Reference semantics for every policy: a batch decides exactly as N
  // serial schedule() calls sharing one arrival time.
  BatchPlacement out;
  out.placements.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ScheduleHints h = hints.empty() ? ScheduleHints{} : hints[i];
    Placement p = schedule(batch[i], now, first_query_id + i, h);
    if (!p.rejected && !p.shed_at_admission) ++out.admitted;
    out.placements.push_back(p);
  }
  return out;
}

void SchedulerPolicy::rollback_batch(const BatchPlacement& batch) {
  // Base policies committed per query, so they roll back per query.
  for (const Placement& p : batch.placements) {
    if (p.rejected || p.shed_at_admission) continue;
    on_shed(p.queue, p.processing_est,
            p.translate ? p.translation_est : Seconds{});
  }
}

QueueingScheduler::QueueingScheduler(SchedulerConfig config,
                                     CostEstimator estimator)
    : config_(std::move(config)), estimator_(std::move(estimator)) {
  HOLAP_REQUIRE(config_.deadline > Seconds{0.0},
                "deadline T_C must be positive");
  HOLAP_REQUIRE(config_.enable_cpu || config_.enable_gpu,
                "at least one resource must be enabled");
  if (config_.enable_gpu) {
    HOLAP_REQUIRE(!config_.gpu_partitions.empty(),
                  "GPU enabled but no partitions configured");
    HOLAP_REQUIRE(estimator_.gpu_queue_count() ==
                      static_cast<int>(config_.gpu_partitions.size()),
                  "estimator must hold one GPU model per partition queue");
  }
  gpu_clocks_.assign(config_.gpu_partitions.size(), Seconds{});
  HOLAP_REQUIRE(config_.modeled_gpu_dispatch >= Seconds{0.0},
                "modeled dispatch must be non-negative");
  HOLAP_REQUIRE(config_.admission.slack_factor >= 0.0,
                "admission slack factor must be non-negative");
  queue_device_ = config_.gpu_queue_device;
  if (queue_device_.empty()) {
    queue_device_.assign(gpu_clocks_.size(), 0);
  }
  HOLAP_REQUIRE(queue_device_.size() == gpu_clocks_.size(),
                "gpu_queue_device must have one entry per GPU queue");
  int devices = 1;
  for (const int d : queue_device_) {
    HOLAP_REQUIRE(d >= 0, "device ids must be non-negative");
    devices = std::max(devices, d + 1);
  }
  dispatch_clocks_.assign(static_cast<std::size_t>(devices), Seconds{});
  counters_.gpu_placements.assign(gpu_clocks_.size(), 0);
  if (config_.fault_tolerance.enabled) {
    health_ = std::make_unique<PartitionHealthMonitor>(
        static_cast<int>(gpu_clocks_.size()), config_.fault_tolerance.health);
  }
  if (config_.topology.enabled) {
    HOLAP_REQUIRE(config_.enable_gpu,
                  "device topology requires GPU partitions");
    catalog_ = std::make_unique<DeviceCatalog>(
        config_.topology, config_.gpu_partitions, queue_device_);
    // Price data movement onto non-home devices into every estimate: the
    // transfer term rides inside T_GPUj, so the unchanged Figure-10
    // choose() sees topology through T_R without learning about devices.
    for (int i = 0; i < static_cast<int>(gpu_clocks_.size()); ++i) {
      estimator_.set_gpu_transfer(i, catalog_->transfer_seconds(i));
    }
    if (config_.elastic.enabled) {
      elastic_ = std::make_unique<ElasticPartitioner>(config_.elastic,
                                                      catalog_.get());
    }
  } else {
    HOLAP_REQUIRE(!config_.elastic.enabled,
                  "elastic repartitioning requires topology.enabled");
  }
}

Seconds QueueingScheduler::gpu_clock(int queue) const {
  HOLAP_REQUIRE(queue >= 0 &&
                    queue < static_cast<int>(gpu_clocks_.size()),
                "GPU queue index out of range");
  return gpu_clocks_[static_cast<std::size_t>(queue)];
}

Seconds& QueueingScheduler::clock_for(QueueRef ref) {
  if (ref.kind == QueueRef::kCpu) return cpu_clock_;
  HOLAP_REQUIRE(ref.index >= 0 &&
                    ref.index < static_cast<int>(gpu_clocks_.size()),
                "GPU queue index out of range");
  return gpu_clocks_[static_cast<std::size_t>(ref.index)];
}

QueueingScheduler::StagedClocks QueueingScheduler::stage_clocks() const {
  StagedClocks staged;
  staged.cpu = cpu_clock_;
  staged.translation = trans_clock_;
  staged.gpu = gpu_clocks_;
  staged.dispatch = dispatch_clocks_;
  return staged;
}

Placement QueueingScheduler::decide(const Query& q, Seconds now,
                                    std::uint64_t query_id,
                                    ScheduleHints hints,
                                    StagedClocks& staged) {
  if (health_ != nullptr) sync_degradation();
  CostEstimate est = estimator_.estimate(q);
  if (hints.translation_cached) {
    // Failover re-submission: the integer parameters survived the failed
    // attempt, so no translation work — and no translation-clock commit —
    // is due on this placement.
    est.needs_translation = false;
    est.translation = Seconds{};
  }
  const Seconds deadline = now + config_.deadline;  // T_D = T_Q + T_C

  // Step 3: response times for every partition that can process the query.
  // Partitions whose circuit breaker is open (kFailed) are not candidates.
  std::vector<PartitionResponse> candidates;
  if (config_.enable_cpu && est.cpu.has_value() &&
      partition_schedulable({QueueRef::kCpu, 0}, now)) {
    PartitionResponse r;
    r.ref = {QueueRef::kCpu, 0};
    r.processing = *est.cpu;
    r.response = std::max(staged.cpu, now) + r.processing;
    // The paper's feasible set is T_R <= T_D: a response landing exactly
    // on the deadline is met, not missed.
    r.before_deadline = r.response <= deadline;
    candidates.push_back(r);
  }
  if (config_.enable_gpu) {
    const Seconds trans_done = est.needs_translation
                                   ? std::max(staged.translation, now) +
                                         est.translation
                                   : Seconds{};
    for (std::size_t i = 0; i < staged.gpu.size(); ++i) {
      PartitionResponse r;
      r.ref = {QueueRef::kGpu, static_cast<int>(i)};
      // A merged-away partition owns no SMs until a split reactivates it.
      if (catalog_ != nullptr && !catalog_->active(static_cast<int>(i))) {
        continue;
      }
      if (!partition_schedulable(r.ref, now)) continue;
      r.processing = est.gpu[i];
      Seconds ready = std::max(staged.gpu[i], now);
      if (est.needs_translation) ready = std::max(ready, trans_done);
      if (config_.modeled_gpu_dispatch > Seconds{0.0}) {
        // The launch stage is a shared serial resource per device,
        // handled exactly like the translation queue: cross it after
        // translation, before the partition can start.
        Seconds launch = std::max(
            staged.dispatch[static_cast<std::size_t>(queue_device_[i])],
            now);
        if (est.needs_translation) launch = std::max(launch, trans_done);
        r.dispatch_done = launch + config_.modeled_gpu_dispatch;
        ready = std::max(ready, r.dispatch_done);
      }
      r.response = ready + r.processing;
      r.before_deadline = r.response <= deadline;  // T_R <= T_D
      candidates.push_back(r);
    }
  }

  if (catalog_ != nullptr) {
    // Under repartitioning the configured slow-first queue order no longer
    // reflects live widths, so restore the "slowest feasible GPU first"
    // meaning by sorting GPU candidates slowest-processing first. Stable,
    // and only when the catalog is enabled: disabled configurations keep
    // the paper's configured order bit-for-bit. The CPU candidate, when
    // present, is always at the front and stays there.
    auto gpu_begin = candidates.begin();
    if (gpu_begin != candidates.end() &&
        gpu_begin->ref.kind == QueueRef::kCpu) {
      ++gpu_begin;
    }
    std::stable_sort(gpu_begin, candidates.end(),
                     [](const PartitionResponse& a,
                        const PartitionResponse& b) {
                       return a.processing > b.processing;
                     });
  }

  if (candidates.empty()) {
    Placement p;
    // CPU cannot answer and the GPU is disabled — or every partition that
    // could process the query has a tripped circuit breaker.
    p.rejected = true;
    ++counters_.rejected;
    return p;
  }

  const auto choice = choose(candidates, deadline);
  HOLAP_ASSERT(choice.has_value(), "policy failed to choose a queue");
  const auto chosen = std::find_if(
      candidates.begin(), candidates.end(),
      [&](const PartitionResponse& r) { return r.ref == *choice; });
  HOLAP_ASSERT(chosen != candidates.end(), "policy chose a non-candidate");

  // Admission control: when even the chosen partition's response estimate
  // is beyond the deadline plus the tolerated slack, shed the query now —
  // no clock advances, no queue absorbs doomed work.
  if (config_.admission.mode == AdmissionControl::Mode::kReject &&
      chosen->response >
          deadline + config_.deadline * config_.admission.slack_factor) {
    Placement p;
    p.shed_at_admission = true;
    p.queue = chosen->ref;
    p.processing_est = chosen->processing;
    p.response_est = chosen->response;
    p.before_deadline = false;
    ++counters_.shed_at_admission;
    return p;
  }

  // Stage the commitment: advance the staged clocks to this query's
  // completion. The caller turns the staged view into the ledger.
  Placement p;
  p.queue = chosen->ref;
  p.processing_est = chosen->processing;
  p.response_est = chosen->response;
  p.before_deadline = chosen->before_deadline;
  if (chosen->ref.kind == QueueRef::kGpu && est.needs_translation) {
    p.translate = true;
    p.translation_est = est.translation;
    staged.translation = std::max(staged.translation, now) + est.translation;
  }
  if (chosen->ref.kind == QueueRef::kGpu &&
      config_.modeled_gpu_dispatch > Seconds{0.0}) {
    staged.dispatch[static_cast<std::size_t>(
        queue_device_[static_cast<std::size_t>(chosen->ref.index)])] =
        chosen->dispatch_done;
  }
  if (chosen->ref.kind == QueueRef::kCpu) {
    staged.cpu = chosen->response;
  } else {
    staged.gpu[static_cast<std::size_t>(chosen->ref.index)] =
        chosen->response;
  }

  ++counters_.scheduled;
  if (!p.before_deadline) ++counters_.missed_at_placement;
  if (p.translate) ++counters_.translations;
  if (p.queue.kind == QueueRef::kCpu) {
    ++counters_.cpu_placements;
  } else {
    ++counters_.gpu_placements[static_cast<std::size_t>(p.queue.index)];
  }
  TraceRecorder::span_into(recorder_, query_id, SpanKind::kEnqueue)
      .window(now, now)  // the decision itself is instantaneous
      .queue(p.queue)
      .estimated_response(p.response_est)
      .deadline_slack(deadline - p.response_est)
      .commit();
  return p;
}

Placement QueueingScheduler::schedule(const Query& q, Seconds now,
                                      std::uint64_t query_id,
                                      ScheduleHints hints) {
  StagedClocks staged = stage_clocks();
  Placement p = decide(q, now, query_id, hints, staged);
  // Commit: the staged view becomes the ledger.
  cpu_clock_ = staged.cpu;
  trans_clock_ = staged.translation;
  gpu_clocks_ = std::move(staged.gpu);
  dispatch_clocks_ = std::move(staged.dispatch);
  return p;
}

BatchPlacement QueueingScheduler::schedule_batch(
    std::span<const Query> batch, Seconds now, std::uint64_t first_query_id,
    std::span<const ScheduleHints> hints) {
  HOLAP_REQUIRE(hints.empty() || hints.size() == batch.size(),
                "hints must be empty or one per batched query");
  StagedClocks staged = stage_clocks();
  BatchPlacement out;
  out.placements.reserve(batch.size());
  // Decision equivalence: query i's decide() sees the staged clock load of
  // queries 0..i-1, exactly as serial schedule() calls at the same `now`.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ScheduleHints h = hints.empty() ? ScheduleHints{} : hints[i];
    Placement p = decide(batch[i], now, first_query_id + i, h, staged);
    if (!p.rejected && !p.shed_at_admission) ++out.admitted;
    out.placements.push_back(p);
  }
  // Record the per-family movement so rollback_batch() can subtract it.
  out.cpu_delta = staged.cpu - cpu_clock_;
  out.trans_delta = staged.translation - trans_clock_;
  out.gpu_deltas.resize(staged.gpu.size());
  for (std::size_t i = 0; i < staged.gpu.size(); ++i) {
    out.gpu_deltas[i] = staged.gpu[i] - gpu_clocks_[i];
  }
  out.dispatch_deltas.resize(staged.dispatch.size());
  for (std::size_t d = 0; d < staged.dispatch.size(); ++d) {
    out.dispatch_deltas[d] = staged.dispatch[d] - dispatch_clocks_[d];
  }
  // ONE ledger commit for the whole batch.
  cpu_clock_ = staged.cpu;
  trans_clock_ = staged.translation;
  gpu_clocks_ = std::move(staged.gpu);
  dispatch_clocks_ = std::move(staged.dispatch);
  ++counters_.batch_commits;
  counters_.batched_queries += batch.size();
  return out;
}

void QueueingScheduler::rollback_batch(const BatchPlacement& batch) {
  HOLAP_REQUIRE(batch.gpu_deltas.size() == gpu_clocks_.size() &&
                    batch.dispatch_deltas.size() == dispatch_clocks_.size(),
                "batch deltas must come from this scheduler's "
                "schedule_batch()");
  // Exact inverse of the batch commit: the recorded per-family deltas are
  // subtracted in one place, so the ledger balances even when decide()
  // jumped a clock forward over an idle gap (max(clock, now)).
  cpu_clock_ -= batch.cpu_delta;
  trans_clock_ -= batch.trans_delta;
  for (std::size_t i = 0; i < gpu_clocks_.size(); ++i) {
    gpu_clocks_[i] -= batch.gpu_deltas[i];
  }
  for (std::size_t d = 0; d < dispatch_clocks_.size(); ++d) {
    dispatch_clocks_[d] -= batch.dispatch_deltas[d];
  }
  ++counters_.batch_rollbacks;
}

void QueueingScheduler::on_completed(QueueRef ref, Seconds estimated,
                                     Seconds actual) {
  ++counters_.feedback_events;
  counters_.feedback_abs_error += abs(actual - estimated);
  // Health watches the same measured-vs-estimated stream feedback uses,
  // whether or not feedback is applied to the clocks.
  if (health_ != nullptr) health_->on_measured(ref, estimated, actual);
  if (!config_.feedback) return;
  // Estimation error shifts everything queued behind the finished query.
  clock_for(ref) += actual - estimated;
}

void QueueingScheduler::on_shed(QueueRef ref, Seconds processing_est,
                                Seconds pending_translation_est) {
  ++counters_.shed_in_queue;
  // schedule() advanced the clocks unconditionally, so the rollback is
  // unconditional too (independent of the feedback flag): the queue will
  // never do this work.
  clock_for(ref) -= processing_est;
  trans_clock_ -= pending_translation_est;
  if (ref.kind == QueueRef::kGpu &&
      config_.modeled_gpu_dispatch > Seconds{0.0}) {
    // The commit also crossed the device's launch stage; a shed query
    // never launches, so its dispatch share rolls back under the same
    // subtract-the-estimate approximation the translation clock uses.
    // (Surfaced by the clock-ledger pairing rule in scripts/analyze/:
    // every clock schedule() commits must be reachable from a rollback.)
    dispatch_clocks_[static_cast<std::size_t>(
        queue_device_[static_cast<std::size_t>(ref.index)])] -=
        config_.modeled_gpu_dispatch;
  }
}

void QueueingScheduler::on_translation_completed(Seconds estimated,
                                                 Seconds actual) {
  ++counters_.translation_feedback_events;
  counters_.feedback_abs_error += abs(actual - estimated);
  if (!config_.feedback) return;
  trans_clock_ += actual - estimated;
}

void QueueingScheduler::sync_degradation() {
  estimator_.set_degradation({QueueRef::kCpu, 0},
                             health_->multiplier({QueueRef::kCpu, 0}));
  for (std::size_t i = 0; i < gpu_clocks_.size(); ++i) {
    const QueueRef ref{QueueRef::kGpu, static_cast<int>(i)};
    estimator_.set_degradation(ref, health_->multiplier(ref));
  }
}

bool QueueingScheduler::partition_schedulable(QueueRef ref, Seconds now) {
  return health_ == nullptr || health_->schedulable(ref, now);
}

std::optional<RepartitionDecision> QueueingScheduler::evaluate_repartition(
    Seconds now) {
  if (elastic_ == nullptr) return std::nullopt;
  // Backlog gauge per GPU queue: how far its clock runs ahead of `now`.
  // Reads the ledger, never writes it.
  std::vector<Seconds> backlog(gpu_clocks_.size());
  std::vector<bool> healthy(gpu_clocks_.size(), true);
  for (std::size_t i = 0; i < gpu_clocks_.size(); ++i) {
    const Seconds clock = gpu_clocks_[i];
    backlog[i] = clock > now ? clock - now : Seconds{};
    if (health_ != nullptr) {
      healthy[i] = health_->health({QueueRef::kGpu, static_cast<int>(i)}) ==
                   PartitionHealth::kHealthy;
    }
  }
  return elastic_->evaluate(backlog, healthy);
}

RepartitionDecision QueueingScheduler::apply_repartition(
    const RepartitionDecision& decision) {
  HOLAP_REQUIRE(catalog_ != nullptr,
                "policy has no device catalog to repartition");
  // Catalog + estimator state only: the clock ledger is untouched. The
  // caller drains the affected queues through on_shed() (the blessed
  // rollback path) before calling this, then re-schedules the drained
  // work against the new widths.
  const RepartitionDecision applied = catalog_->apply(decision);
  if (elastic_ != nullptr) elastic_->on_applied(applied);
  const auto rebuild = [&](int queue, int width) {
    if (width <= 0) return;  // merged away: not a candidate, no model
    estimator_.set_gpu_model(queue, GpuPerfModel::paper_c2070_scaled(
                                        width, config_.topology.gpu_table_mb));
  };
  rebuild(applied.keeper, applied.keeper_width);
  rebuild(applied.donor, applied.donor_width);
  if (applied.kind == RepartitionDecision::Kind::kMerge) {
    ++counters_.repartition_merges;
  } else {
    ++counters_.repartition_splits;
  }
  return applied;
}

std::optional<QueueRef> FigureTenScheduler::choose(
    const std::vector<PartitionResponse>& candidates,
    Seconds deadline) const {
  const PartitionResponse* cpu = nullptr;
  Seconds fastest_gpu_processing{std::numeric_limits<double>::infinity()};
  bool any_feasible = false;
  for (const auto& r : candidates) {
    if (r.ref.kind == QueueRef::kCpu) cpu = &r;
    if (r.ref.kind == QueueRef::kGpu) {
      fastest_gpu_processing = std::min(fastest_gpu_processing, r.processing);
    }
    any_feasible = any_feasible || r.before_deadline;
  }

  if (any_feasible) {
    // Step 5. CPU preference: in P_BD and faster than the fastest GPU
    // partition (T_CPU < T_GPU3).
    if (cpu != nullptr && cpu->before_deadline &&
        cpu->processing < fastest_gpu_processing) {
      return cpu->ref;
    }
    // Slowest feasible GPU queue — queues are configured slow-first, so
    // the first (or, under the ablation flag, last) feasible one wins.
    const PartitionResponse* pick = nullptr;
    for (const auto& r : candidates) {
      if (r.ref.kind != QueueRef::kGpu || !r.before_deadline) continue;
      pick = &r;
      if (!config().prefer_fastest_feasible_gpu) break;
    }
    if (pick != nullptr) return pick->ref;
    // P_BD held only the CPU but the CPU lost the speed comparison; the
    // paper's FOR loop would fall through without placing the query, so we
    // take the only feasible partition (the CPU) — the sane completion of
    // Figure 10's step 5.
    if (cpu != nullptr && cpu->before_deadline) return cpu->ref;
  }

  // Step 6: no partition meets the deadline; minimise |T_D − T_R|, i.e.
  // answer as soon as possible.
  const PartitionResponse* best = nullptr;
  for (const auto& r : candidates) {
    if (best == nullptr || abs(deadline - r.response) <
                               abs(deadline - best->response)) {
      best = &r;
    }
  }
  return best->ref;
}

}  // namespace holap
