#include "sched/baselines.hpp"

#include "common/error.hpp"

namespace holap {

std::optional<QueueRef> MetScheduler::choose(
    const std::vector<PartitionResponse>& candidates,
    Seconds /*deadline*/) const {
  const PartitionResponse* best = nullptr;
  for (const auto& r : candidates) {
    if (best == nullptr || r.processing < best->processing) best = &r;
  }
  return best->ref;
}

std::optional<QueueRef> MctScheduler::choose(
    const std::vector<PartitionResponse>& candidates,
    Seconds /*deadline*/) const {
  const PartitionResponse* best = nullptr;
  for (const auto& r : candidates) {
    if (best == nullptr || r.response < best->response) best = &r;
  }
  return best->ref;
}

std::optional<QueueRef> RoundRobinScheduler::choose(
    const std::vector<PartitionResponse>& candidates,
    Seconds /*deadline*/) const {
  const std::size_t pick = cursor_ % candidates.size();
  ++cursor_;
  return candidates[pick].ref;
}

std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name,
                                             SchedulerConfig config,
                                             CostEstimator estimator) {
  if (name == "figure10") {
    return std::make_unique<FigureTenScheduler>(std::move(config),
                                                std::move(estimator));
  }
  if (name == "MET") {
    return std::make_unique<MetScheduler>(std::move(config),
                                          std::move(estimator));
  }
  if (name == "MCT") {
    return std::make_unique<MctScheduler>(std::move(config),
                                          std::move(estimator));
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinScheduler>(std::move(config),
                                                 std::move(estimator));
  }
  throw InvalidArgument("unknown scheduling policy: " + name);
}

}  // namespace holap
