// Elastic multi-GPU device catalog: topology-aware placement costs and
// online SM repartitioning.
//
// The paper fixes one Tesla C2070 carved into six static {1,1,2,2,4,4}
// partitions. Real multi-accelerator systems (PG-Strom's device model,
// Theseus-style data-movement-aware scheduling) enumerate N devices, each
// with its own partition set and its own link back to wherever the data
// lives. This header models both extensions on top of the unchanged
// Figure-10 machinery:
//
//   - DeviceCatalog: N simulated GPUs, each owning a slice of the global
//     GPU queue list, plus a device-distance matrix. Placing a query on a
//     non-home device pays a transfer term in its T_R —
//     distance(home, device) * transfer_unit * column_fraction — fed into
//     the estimator, so choose() ranks candidates across ALL devices with
//     placement-aware estimates while the Figure-10 algorithm itself
//     stays untouched.
//
//   - Online repartitioning: sibling partitions on one device MERGE into
//     a double-width partition (halved service times drain a sustained
//     backlog) and previously merged slots SPLIT back to the configured
//     ladder when load subsides. The global queue-slot list never
//     resizes; a merged-away slot deactivates (leaves the candidate set)
//     and reactivates on split, so every queue clock, counter and health
//     entry keeps its identity across operations.
//
//   - ElasticPartitioner: the deterministic trigger. Per-device mean
//     backlog (seconds of committed clock work per active queue) must
//     stay beyond a threshold for `sustain_checks` consecutive checks
//     before an operation fires, and only kHealthy siblings merge; a
//     cooldown separates successive operations per device.
//
// Everything here is explicit state driven by the caller's clock — no
// wall time, no randomness (this header sits inside the determinism
// lint's include closure via sched/scheduler.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace holap {

/// Static device topology: how many GPUs, where the data lives, and what
/// crossing the interconnect costs. Disabled (the default) keeps the
/// scheduler bit-identical to the single-device, distance-blind paper
/// behaviour.
struct DeviceTopology {
  bool enabled = false;
  /// Device holding the resident working set; transfers price from here.
  int home_device = 0;
  /// Seconds to stage the FULL resident column set across one unit of
  /// distance. A query placed on device d pays
  /// distance(home_device, d) * transfer_unit * column_fraction in T_R.
  Seconds transfer_unit{};
  /// Distance matrix [from][to]. Empty derives the single-hop default:
  /// 0 on the diagonal, 1 between distinct devices.
  std::vector<std::vector<double>> distance;
  /// Table size the repartitioned GPU models are rescaled to.
  Megabytes gpu_table_mb{4096.0};
};

/// Trigger thresholds for online repartitioning.
struct ElasticPolicy {
  bool enabled = false;
  /// Sim-clock cadence of trigger evaluations.
  Seconds check_interval{0.05};
  /// Consecutive checks a threshold must hold before an operation fires.
  int sustain_checks = 3;
  /// Mean backlog per active queue at or above which siblings merge.
  Seconds merge_backlog{0.5};
  /// Mean backlog at or below which merged slots split back apart.
  Seconds split_backlog{0.05};
  /// Checks skipped on a device after one of its operations applied.
  int cooldown_checks = 4;
};

/// One merge/split operation on one device's partition set.
struct RepartitionDecision {
  enum class Kind : std::uint8_t {
    kMerge,  ///< donor's SMs fold into keeper; donor deactivates
    kSplit,  ///< keeper returns donor's configured SMs; donor reactivates
  };
  Kind kind = Kind::kMerge;
  int device = 0;
  int keeper = 0;  ///< global GPU queue index that stays active
  int donor = 0;   ///< global GPU queue index merged away / reactivated
  /// Post-operation SM widths. 0 asks DeviceCatalog::apply() to derive
  /// them (merge: keeper absorbs everything; split: donor returns to its
  /// configured width) — the form timed test scenarios use.
  int keeper_width = 0;
  int donor_width = 0;
};

/// A repartition forced at a sim-clock instant (FaultInjector-style),
/// bypassing the ElasticPartitioner trigger — how tests pin an operation
/// to the middle of a burst.
struct TimedRepartition {
  Seconds at{};
  RepartitionDecision decision;
};

/// The device inventory: queue->device ownership, distances, transfer
/// costs and the mutable SM-width state online repartitioning edits.
class DeviceCatalog {
 public:
  /// `partitions` is the global queue ladder (SMs per queue, all devices
  /// concatenated); `queue_device` the owning device per queue, ids dense
  /// from 0 and covering every device in `topology.distance` when given.
  DeviceCatalog(DeviceTopology topology, std::vector<int> partitions,
                std::vector<int> queue_device);

  const DeviceTopology& topology() const { return topology_; }
  int device_count() const { return device_count_; }
  int queue_count() const { return static_cast<int>(width_.size()); }
  int device_of(int queue) const;
  std::vector<int> queues_on(int device) const;

  /// Hop cost between devices (the derived default when no matrix given).
  double distance(int from, int to) const;
  /// T_R transfer term for `queue`, per unit column fraction: 0 on the
  /// home device, distance-scaled elsewhere.
  Seconds transfer_seconds(int queue) const;

  /// false once a merge folded the slot away (out of the candidate set).
  bool active(int queue) const;
  /// Current SM width of `queue` (0 while inactive).
  int width(int queue) const;
  /// Width the queue was constructed with.
  int configured_width(int queue) const;
  int active_queues_on(int device) const;

  /// The next merge the catalog would perform on `device`: the two
  /// narrowest equal-width active siblings, keeper = lower index. Empty
  /// when no such pair exists.
  std::optional<RepartitionDecision> plan_merge(int device) const;
  /// The inverse of the most recent un-split merge on `device`; empty
  /// when the device is at its configured ladder.
  std::optional<RepartitionDecision> plan_split(int device) const;

  /// Validate and apply one operation (deriving widths where the
  /// decision left them 0). Throws InvalidArgument on conservation or
  /// activity violations. Returns the decision with widths resolved.
  RepartitionDecision apply(const RepartitionDecision& decision);

  std::size_t merges() const { return merges_; }
  std::size_t splits() const { return splits_; }

 private:
  DeviceTopology topology_;
  std::vector<int> configured_;   ///< construction-time ladder widths
  std::vector<int> width_;        ///< current widths; 0 = inactive
  std::vector<int> queue_device_;
  int device_count_ = 0;
  /// Applied merges not yet undone by a split, in application order.
  std::vector<RepartitionDecision> merge_history_;
  std::size_t merges_ = 0;
  std::size_t splits_ = 0;
};

/// Deterministic merge/split trigger over backlog and health signals.
class ElasticPartitioner {
 public:
  /// `catalog` must outlive the partitioner.
  ElasticPartitioner(ElasticPolicy policy, const DeviceCatalog* catalog);

  /// One trigger check: `backlog` is the committed clock work per GPU
  /// queue (clamped >= 0), `healthy` whether each queue's partition is
  /// kHealthy. Returns the operation to apply when a device's sustained
  /// signal crossed a threshold; at most one operation per check.
  std::optional<RepartitionDecision> evaluate(
      const std::vector<Seconds>& backlog, const std::vector<bool>& healthy);

  /// An operation was applied: reset the device's streaks, start its
  /// cooldown.
  void on_applied(const RepartitionDecision& decision);

  const ElasticPolicy& policy() const { return policy_; }

 private:
  ElasticPolicy policy_;
  const DeviceCatalog* catalog_;
  std::vector<int> merge_streak_;  ///< per device
  std::vector<int> split_streak_;
  std::vector<int> cooldown_;
};

}  // namespace holap
