// Virtual catalogs: the simulation plane's work models.
//
// The paper's own evaluation runs against "a system model … based on
// characteristics extracted from performance measurements" (§IV), i.e. the
// cube ladder and dictionaries exist as *sizes*, not allocations. These
// classes provide exactly that: a VirtualCubeCatalog says which resolutions
// are pre-computed and how many bytes eq. (3) would touch — a 32 GB cube is
// a number here, which is how the paper's Table 2 can include one — and a
// VirtualTranslationModel supplies dictionary lengths per text column
// (a column's dictionary length equals its level cardinality).
#pragma once

#include "relational/schema.hpp"
#include "sched/interfaces.hpp"

namespace holap {

class VirtualCubeCatalog : public CpuWorkModel {
 public:
  /// `levels`: uniform resolutions pre-computed on the CPU (any order).
  /// `cell_bytes` is E_size of eq. (3).
  VirtualCubeCatalog(std::vector<Dimension> dims, std::vector<int> levels,
                     std::size_t cell_bytes = sizeof(double));

  bool can_answer(const Query& q) const override;
  Megabytes answer_mb(const Query& q) const override;

  /// Lowest pre-computed level that satisfies the query's resolution R.
  std::optional<int> lowest_level_for(const Query& q) const;

  const std::vector<int>& levels() const { return levels_; }
  /// Total bytes the ladder would occupy (Figure 1's size axis).
  std::size_t total_bytes() const;

 private:
  std::vector<Dimension> dims_;
  std::vector<int> levels_;  // sorted ascending
  std::size_t cell_bytes_;
};

class VirtualTranslationModel : public TranslationWorkModel {
 public:
  /// Dictionary length of a text column is its level cardinality times
  /// `length_multiplier`. The multiplier models real text dictionaries
  /// (TPC-DS streets, customer names) holding far more distinct strings
  /// than the hierarchy has members — the regime where Figure 9's
  /// millisecond-scale searches and the ~7% GPU translation cost arise.
  /// Owns a copy of the schema, so the catalog is freely movable.
  explicit VirtualTranslationModel(TableSchema schema,
                                   double length_multiplier = 1.0);

  std::vector<std::size_t> dictionary_lengths(const Query& q) const override;
  std::vector<std::size_t> unique_dictionary_lengths(
      const Query& q) const override;

 private:
  TableSchema schema_;
  double multiplier_;

  std::size_t column_length(const Condition& c) const;
};

}  // namespace holap
