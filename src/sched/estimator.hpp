// Per-query cost estimation (Figure 10, step 2).
//
// For every incoming query the scheduler estimates:
//   T_CPU      — eq. (7)/(10) applied to the eq.-(3) sub-cube size,
//   T_GPUj     — eq. (14) applied to the eq.-(12) column fraction, one per
//                GPU queue (its SM count selects the model),
//   T_TRANS    — eq. (18) over the query's dictionary lengths.
#pragma once

#include <optional>

#include "perfmodel/cpu_model.hpp"
#include "perfmodel/dict_model.hpp"
#include "perfmodel/gpu_model.hpp"
#include "sched/interfaces.hpp"

namespace holap {

struct CostEstimate {
  /// nullopt when no pre-computed cube can answer (query must go to GPU).
  std::optional<Seconds> cpu;
  /// Estimated processing time per GPU queue, in queue order.
  std::vector<Seconds> gpu;
  Seconds translation{};
  bool needs_translation = false;
  Megabytes subcube_mb{};        ///< eq. (3) input, when cpu has a value
  double column_fraction = 0.0;  ///< eq. (12)/(13) input
};

/// How the translation partition's time is costed (§III-F and the
/// future-work algorithms implemented in this library):
///   kPerParameter — eq. (18): one full dictionary scan per parameter
///                   (the paper's linear-scan implementation);
///   kBatchPerColumn — the Aho–Corasick batch algorithm: one dictionary
///                   pass per distinct text column;
///   kHashed — hash-indexed lookup: a small constant per parameter.
enum class TranslationCosting : std::uint8_t {
  kPerParameter,
  kBatchPerColumn,
  kHashed,
};

class CostEstimator {
 public:
  /// `gpu_by_queue` holds one model per GPU queue (slow queues first, the
  /// paper's {1,1,2,2,4,4}-SM order). `gpu_total_columns` is C_TOTAL.
  CostEstimator(CpuPerfModel cpu_model, std::vector<GpuPerfModel> gpu_by_queue,
                DictPerfModel dict_model, const CpuWorkModel* cpu_work,
                const TranslationWorkModel* translation_work,
                int gpu_total_columns);

  CostEstimate estimate(const Query& q) const;

  /// Select the translation algorithm being costed (default: the paper's
  /// per-parameter linear scan). `hashed_seconds` is the per-lookup cost
  /// used by kHashed.
  void set_translation_costing(TranslationCosting costing,
                               Seconds hashed_seconds = Seconds{2e-7});

  /// Topology-aware placement: additive transfer cost for GPU queue
  /// `queue`, charged per unit column fraction — the data-movement term a
  /// device catalog prices into T_R for queues off the home device
  /// (sched/devices.hpp). The default 0 keeps estimates bit-identical to
  /// the distance-blind behaviour.
  void set_gpu_transfer(int queue, Seconds per_fraction);
  Seconds gpu_transfer(int queue) const;

  /// Elastic repartitioning: replace `queue`'s performance model after an
  /// online SM-width change.
  void set_gpu_model(int queue, GpuPerfModel model);

  /// Fault-tolerance degradation: inflate `ref`'s estimates by
  /// `multiplier` (>= 1; 1 restores the model). A kDegraded partition
  /// stays schedulable but honestly slower, so the Figure-10 feasibility
  /// test routes around it whenever a healthy partition can still meet
  /// the deadline. estimate() is monotone in the multiplier.
  void set_degradation(QueueRef ref, double multiplier);
  double degradation(QueueRef ref) const;

  int gpu_queue_count() const { return static_cast<int>(gpu_models_.size()); }
  const CpuPerfModel& cpu_model() const { return cpu_model_; }
  const DictPerfModel& dict_model() const { return dict_model_; }

 private:
  CpuPerfModel cpu_model_;
  std::vector<GpuPerfModel> gpu_models_;
  DictPerfModel dict_model_;
  const CpuWorkModel* cpu_work_;
  const TranslationWorkModel* translation_work_;
  int gpu_total_columns_;
  TranslationCosting translation_costing_ = TranslationCosting::kPerParameter;
  Seconds hashed_seconds_{2e-7};
  double cpu_degradation_ = 1.0;
  std::vector<double> gpu_degradation_;  ///< one per GPU queue, >= 1
  std::vector<Seconds> gpu_transfer_;    ///< per-fraction transfer term
};

/// Estimator wired with the paper's published models: the CPU model for
/// `cpu_threads` OpenMP threads, one C2070 model per entry of
/// `gpu_partitions` (scaled to `gpu_table_mb`), and the eq.-(17) dictionary
/// constant. The work models must outlive the estimator.
CostEstimator make_paper_estimator(const std::vector<int>& gpu_partitions,
                                   int cpu_threads, Megabytes gpu_table_mb,
                                   int gpu_total_columns,
                                   const CpuWorkModel* cpu_work,
                                   const TranslationWorkModel* translation_work);

}  // namespace holap
