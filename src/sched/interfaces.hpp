// Scheduler-facing abstractions.
//
// The scheduler never touches cubes, tables or dictionaries directly — it
// consumes three things per query: whether/at what cost the CPU partition
// could answer it (CpuWorkModel), which dictionary lengths translation
// would search (TranslationWorkModel), and the performance models that
// turn those quantities into seconds. Both the native plane (real CubeSet,
// real dictionaries) and the simulation plane (virtual catalogs) implement
// these interfaces, so the scheduling code under test is byte-for-byte the
// code that runs the real engines.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "query/query.hpp"

namespace holap {

/// What the CPU partition's pre-computed cubes can do for a query.
class CpuWorkModel {
 public:
  virtual ~CpuWorkModel() = default;
  /// Can any pre-computed cube answer `q` (resolution and bases)?
  virtual bool can_answer(const Query& q) const = 0;
  /// Eq. (3): MB the CPU would traverse; only called when can_answer.
  virtual Megabytes answer_mb(const Query& q) const = 0;
};

/// What translating a query's text parameters would cost.
class TranslationWorkModel {
 public:
  virtual ~TranslationWorkModel() = default;
  /// Dictionary length per text parameter of `q` (eq. 16/18 inputs);
  /// empty when the query needs no translation.
  virtual std::vector<std::size_t> dictionary_lengths(
      const Query& q) const = 0;
  /// Dictionary length per DISTINCT text column of `q` — the batch
  /// translation algorithm's cost input (one dictionary pass per column).
  /// Defaults to the per-parameter lengths, which is conservative.
  virtual std::vector<std::size_t> unique_dictionary_lengths(
      const Query& q) const {
    return dictionary_lengths(q);
  }
};

/// Identity of a partition queue.
struct QueueRef {
  enum Kind : std::uint8_t { kCpu, kGpu } kind = kCpu;
  int index = 0;  ///< GPU queue index (0-based); 0 for the CPU queue

  friend bool operator==(const QueueRef&, const QueueRef&) = default;
};

/// Per-call scheduling hints, used by fault-tolerance re-submissions.
struct ScheduleHints {
  /// The query's text parameters were already translated on an earlier
  /// attempt — failover keeps the integer parameters — so the placement
  /// must not charge the translation partition again.
  bool translation_cached = false;
};

/// Outcome of scheduling one query.
struct Placement {
  bool rejected = false;  ///< no partition can process the query at all
  /// Admission control turned the query away: the best response estimate
  /// exceeded the deadline by more than the configured slack. The queue
  /// fields below still describe the best (rejected) candidate.
  bool shed_at_admission = false;
  QueueRef queue;
  bool translate = false;        ///< also enqueued on the translation queue
  Seconds processing_est{};  ///< estimated processing time on `queue`
  Seconds translation_est{};
  Seconds response_est{};  ///< estimated absolute completion time T_R
  bool before_deadline = false;  ///< T_R <= T_D at scheduling time
};

}  // namespace holap
