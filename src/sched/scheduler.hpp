// The scheduling algorithm of Figure 10, plus the queueing machinery every
// policy shares.
//
// The machine is a set of partition queues: one CPU processing queue
// (Q_CPU), one CPU translation queue (Q_TRANS) and one queue per GPU
// partition (Q_G1..Q_G6 in the paper's {1,1,2,2,4,4}-SM configuration).
// Each queue keeps a clock T_Q — the absolute time at which everything
// already submitted to it will have finished. Scheduling a query:
//
//   1. deadline T_D = T_Q(arrival) + T_C;
//   2. estimate T_CPU, T_GPU(per queue), T_TRANS (CostEstimator);
//   3. per-partition response times — for a GPU queue with translation,
//      T_R = max(T_Q|Gi, T_Q|TRANS + T_TRANS) + T_GPUj;
//   4. P_BD = partitions with T_D − T_R > 0;
//   5. if P_BD is non-empty: prefer the CPU when it is in P_BD and beats
//      the fastest GPU partition; otherwise take the SLOWEST feasible GPU
//      queue ("task the slower queues first so that GPU has resources
//      available for the computationally expensive queries that might be
//      submitted later");
//   6. otherwise: the partition minimising |T_D − T_R| — miss the deadline
//      by as little as possible.
//
// Completion feedback (§III-G, last paragraph): when a query finishes, the
// difference between measured and estimated processing time adjusts the
// owning queue's clock, so estimation error does not accumulate.
#pragma once

#include <memory>
#include <span>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "sched/devices.hpp"
#include "sched/estimator.hpp"
#include "sched/health.hpp"

namespace holap {

/// Admission control over the paper's own feasibility signal (Figure 10,
/// step 6): instead of best-effort-placing a query whose every response
/// estimate is past the deadline, an overloaded system can turn it away
/// at submission — shedding load while the estimate is still cheap to
/// give up, rather than after it has clogged a queue.
struct AdmissionControl {
  enum class Mode : std::uint8_t {
    kNone,    ///< the paper's behaviour: always place (step 6 fallback)
    kReject,  ///< shed at admission when T_R > T_D + slack_factor * T_C
  };
  Mode mode = Mode::kNone;
  /// Tolerated lateness as a fraction of the deadline T_C: a query is
  /// admitted while its best T_R <= T_D + slack_factor * T_C. 0 admits
  /// only feasible queries; 0.5 tolerates misses up to half a deadline.
  double slack_factor = 0.0;
};

struct SchedulerConfig {
  /// SM count per GPU queue, slow queues first. The paper's C2070 layout.
  std::vector<int> gpu_partitions = {1, 1, 2, 2, 4, 4};
  /// T_C: every query must be answered within this time of submission.
  Seconds deadline{0.1};
  bool enable_cpu = true;
  bool enable_gpu = true;
  /// Apply measured-vs-estimated feedback to queue clocks.
  bool feedback = true;
  /// Ablation: pick the FASTEST feasible GPU queue in step 5 instead of
  /// the paper's slowest-first rule (bench_ablation_queue_order).
  bool prefer_fastest_feasible_gpu = false;
  /// Extension: model the per-device serialised kernel-launch stage the
  /// same way Figure 10 models the shared translation queue — a clock per
  /// device; every GPU-bound query crosses it for this long before its
  /// partition can start. 0 = unmodeled (the paper's behaviour).
  Seconds modeled_gpu_dispatch{};
  /// Device owning each GPU queue (for the dispatch clocks). Empty = one
  /// device owns all queues.
  std::vector<int> gpu_queue_device;
  /// Overload robustness: reject queries whose best response estimate is
  /// beyond the deadline plus slack (kNone keeps the paper's behaviour).
  AdmissionControl admission;
  /// Partition fault tolerance: health states, per-partition circuit
  /// breakers and the retry policy (sched/health.hpp). Disabled by
  /// default — the scheduler then behaves exactly as the paper's.
  FaultTolerance fault_tolerance;
  /// Elastic multi-device catalog (sched/devices.hpp): device distances
  /// feed a transfer term into every GPU queue's T_R, and the candidate
  /// set is re-ordered slowest-processing-first so the unchanged
  /// Figure-10 choose() keeps its "slowest feasible first" meaning when
  /// online repartitioning changes queue widths. Disabled by default —
  /// the scheduler is then bit-identical to the distance-blind behaviour.
  DeviceTopology topology;
  /// Online SM repartitioning trigger (requires topology.enabled).
  ElasticPolicy elastic;
};

/// Step-3 output for one partition queue.
struct PartitionResponse {
  QueueRef ref;
  Seconds processing{};     ///< T_CPU or T_GPUj for this query
  Seconds response{};       ///< absolute T_R
  Seconds dispatch_done{};  ///< launch-stage exit (modeled dispatch)
  bool before_deadline = false;
};

/// One batched admission: per-query placements in input order, plus the
/// exact ledger movement the single batch commit applied per clock
/// family. The deltas exist so rollback_batch() can undo the WHOLE batch
/// in one call (batch-granular rollback) when the executor cannot run any
/// of it — e.g. shutdown between admission and routing — without
/// reconstructing per-query estimates.
struct BatchPlacement {
  std::vector<Placement> placements;  ///< one per input query, in order
  /// Placements neither rejected nor shed at admission (they committed
  /// clock time and must be run, individually shed, or batch-rolled-back).
  std::size_t admitted = 0;
  Seconds cpu_delta{};
  Seconds trans_delta{};
  std::vector<Seconds> gpu_deltas;       ///< one per GPU partition queue
  std::vector<Seconds> dispatch_deltas;  ///< one per GPU device
};

/// What a policy did, counted per partition queue — the observability
/// layer's view of the decision loop (placements, deadline misses already
/// known at placement time, and how hard §III-G feedback had to correct
/// the clocks).
struct SchedulerCounters {
  std::size_t scheduled = 0;   ///< accepted placements
  std::size_t rejected = 0;    ///< no partition could process the query
  std::size_t missed_at_placement = 0;  ///< placed past the deadline (step 6)
  std::size_t translations = 0;         ///< placements routed via Q_TRANS
  std::size_t cpu_placements = 0;
  std::vector<std::size_t> gpu_placements;  ///< one entry per GPU queue
  std::size_t feedback_events = 0;
  /// Σ|actual − estimated| over feedback events: cumulative model error
  /// the queue clocks absorbed.
  Seconds feedback_abs_error{};
  /// Queries turned away by admission control (AdmissionControl::kReject).
  std::size_t shed_at_admission = 0;
  /// Queued placements later evicted by load shedding (on_shed feedback).
  std::size_t shed_in_queue = 0;
  /// Translation-clock feedback events (on_translation_completed).
  std::size_t translation_feedback_events = 0;
  /// Batched admissions: schedule_batch() calls that committed the ledger
  /// once, queries decided inside them, and whole-batch rollbacks.
  std::size_t batch_commits = 0;
  std::size_t batched_queries = 0;
  std::size_t batch_rollbacks = 0;
  /// Elastic repartitioning: merge/split operations applied.
  std::size_t repartition_merges = 0;
  std::size_t repartition_splits = 0;
};

/// Abstract scheduling policy over partition queues.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Place query `q` arriving at absolute time `now`; updates queue clocks.
  /// `query_id` only labels the trace span (0 when untraced). `hints`
  /// carries fault-tolerance re-submission context (a failed-over query's
  /// translation is already done and must not be charged again).
  virtual Placement schedule(const Query& q, Seconds now,
                             std::uint64_t query_id = 0,
                             ScheduleHints hints = {}) = 0;

  /// Batched admission: decide every query of `batch` (all sharing arrival
  /// time `now`) exactly as back-to-back schedule() calls would — query i
  /// sees the clock load committed by queries 0..i-1 — and return the
  /// per-query placements plus the ledger deltas of the whole batch.
  /// `hints` is per-query when non-empty (same length as `batch`).
  ///
  /// The base implementation IS that serial loop, so every policy is
  /// batch-decision-equivalent by construction; QueueingScheduler
  /// overrides it with a staged path that commits the clock ledger once
  /// per batch instead of once per query.
  virtual BatchPlacement schedule_batch(
      std::span<const Query> batch, Seconds now,
      std::uint64_t first_query_id = 0,
      std::span<const ScheduleHints> hints = {});

  /// Undo one whole batch: every clock second schedule_batch() committed
  /// for `batch` is returned to the ledger. For use when NONE of the
  /// batch's admitted placements will run (shutdown or failure between
  /// admission and routing); partially-run batches shed per query through
  /// on_shed() instead. Must be fed a BatchPlacement produced by this
  /// policy's own schedule_batch().
  virtual void rollback_batch(const BatchPlacement& batch);

  /// Attach a span sink; the policy records one kEnqueue span per accepted
  /// placement. nullptr (the default) disables tracing.
  virtual void set_trace_recorder(TraceRecorder*) {}

  /// Completion feedback: `estimated`/`actual` processing time of a query
  /// that ran on `ref`.
  virtual void on_completed(QueueRef ref, Seconds estimated,
                            Seconds actual) = 0;

  /// Shed feedback: a query previously placed on `ref` was evicted before
  /// running (executor load shedding). The placement advanced the queue
  /// clocks by its estimates; shedding must roll that work back out, or
  /// every later estimate inherits phantom load. `pending_translation_est`
  /// is the translation estimate still outstanding (0 once translated).
  virtual void on_shed(QueueRef ref, Seconds processing_est,
                       Seconds pending_translation_est) {
    (void)ref;
    (void)processing_est;
    (void)pending_translation_est;
  }

  /// Translation feedback (mirror of on_completed for Q_TRANS): measured
  /// vs estimated translation time of a query that crossed the
  /// translation partition, so the translation clock does not drift under
  /// sustained load while every processing clock self-corrects.
  virtual void on_translation_completed(Seconds estimated, Seconds actual) {
    (void)estimated;
    (void)actual;
  }

  /// Partition health monitor, when fault tolerance is enabled; nullptr
  /// otherwise. The monitor shares the policy's synchronisation domain:
  /// callers serialise access exactly as they do for schedule().
  virtual PartitionHealthMonitor* health_monitor() { return nullptr; }

  /// Retry policy for failed queries, when fault tolerance is enabled;
  /// nullptr otherwise (one attempt, no replay).
  virtual const RetryPolicy* retry_policy() const { return nullptr; }

  /// Elastic device catalog when the policy models one; nullptr
  /// otherwise. Shares the policy's synchronisation domain.
  virtual const DeviceCatalog* device_catalog() const { return nullptr; }

  /// The repartitioning trigger configuration, when enabled; nullptr
  /// otherwise. Callers (the simulator) use it to pace trigger checks.
  virtual const ElasticPolicy* elastic_policy() const { return nullptr; }

  /// Evaluate the elastic trigger at `now`: non-empty when sustained
  /// imbalance wants a merge/split applied. Reads the clock ledger, never
  /// writes it.
  virtual std::optional<RepartitionDecision> evaluate_repartition(
      Seconds now) {
    (void)now;
    return std::nullopt;
  }

  /// Apply a merge/split: updates the catalog's active set and the
  /// estimator's per-queue models. Never touches the clock ledger — the
  /// caller drains affected queues through on_shed()/rollback_batch()
  /// and re-schedules the drained work itself. Returns the decision with
  /// derived widths resolved.
  virtual RepartitionDecision apply_repartition(
      const RepartitionDecision& decision) {
    HOLAP_ASSERT(false, "policy has no device catalog to repartition");
    return decision;
  }

  /// T_C: the per-query time constraint this policy schedules against.
  virtual Seconds deadline() const = 0;

  /// Number of GPU partition queues the policy manages.
  virtual int gpu_queue_count() const = 0;

  virtual const char* name() const = 0;
};

/// Shared queue-clock machinery; concrete policies implement choose().
class QueueingScheduler : public SchedulerPolicy {
 public:
  QueueingScheduler(SchedulerConfig config, CostEstimator estimator);

  Placement schedule(const Query& q, Seconds now, std::uint64_t query_id = 0,
                     ScheduleHints hints = {}) final;
  BatchPlacement schedule_batch(
      std::span<const Query> batch, Seconds now,
      std::uint64_t first_query_id = 0,
      std::span<const ScheduleHints> hints = {}) final;
  void rollback_batch(const BatchPlacement& batch) final;
  void on_completed(QueueRef ref, Seconds estimated, Seconds actual) override;
  void on_shed(QueueRef ref, Seconds processing_est,
               Seconds pending_translation_est) override;
  void on_translation_completed(Seconds estimated, Seconds actual) override;
  PartitionHealthMonitor* health_monitor() override { return health_.get(); }
  const RetryPolicy* retry_policy() const override {
    return config_.fault_tolerance.enabled ? &config_.fault_tolerance.retry
                                           : nullptr;
  }
  const DeviceCatalog* device_catalog() const override {
    return catalog_.get();
  }
  const ElasticPolicy* elastic_policy() const override {
    return elastic_ != nullptr ? &config_.elastic : nullptr;
  }
  std::optional<RepartitionDecision> evaluate_repartition(
      Seconds now) override;
  RepartitionDecision apply_repartition(
      const RepartitionDecision& decision) override;
  Seconds deadline() const override { return config_.deadline; }
  int gpu_queue_count() const override {
    return static_cast<int>(gpu_clocks_.size());
  }
  void set_trace_recorder(TraceRecorder* recorder) override {
    recorder_ = recorder;
  }

  const SchedulerConfig& config() const { return config_; }
  Seconds cpu_clock() const { return cpu_clock_; }
  Seconds translation_clock() const { return trans_clock_; }
  Seconds gpu_clock(int queue) const;
  /// Decision/feedback counters since construction.
  const SchedulerCounters& counters() const { return counters_; }

 protected:
  /// Pick a queue among `candidates` (every partition that can process the
  /// query). Never called with an empty list. `deadline` is T_D.
  virtual std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds deadline) const = 0;

  const CostEstimator& estimator() const { return estimator_; }

 private:
  /// A working copy of the clock ledger. decide() reads and advances a
  /// staged view; schedule()/schedule_batch() assign it back to the member
  /// clocks in one place — ONE ledger commit per call, whether the call
  /// decided one query or a whole batch.
  struct StagedClocks {
    Seconds cpu{};
    Seconds translation{};
    std::vector<Seconds> gpu;
    std::vector<Seconds> dispatch;
  };

  SchedulerConfig config_;
  CostEstimator estimator_;
  Seconds cpu_clock_{};
  Seconds trans_clock_{};
  std::vector<Seconds> gpu_clocks_;
  std::vector<Seconds> dispatch_clocks_;  // one per GPU device
  std::vector<int> queue_device_;
  TraceRecorder* recorder_ = nullptr;
  SchedulerCounters counters_;
  /// Non-null iff config_.fault_tolerance.enabled; with it null the
  /// scheduler is bit-identical to the pre-fault-tolerance behaviour.
  std::unique_ptr<PartitionHealthMonitor> health_;
  /// Non-null iff config_.topology.enabled; with it null the candidate
  /// set keeps the paper's configured order and zero transfer terms.
  std::unique_ptr<DeviceCatalog> catalog_;
  /// Non-null iff config_.elastic.enabled (which requires the catalog).
  std::unique_ptr<ElasticPartitioner> elastic_;

  Seconds& clock_for(QueueRef ref);
  /// Snapshot the ledger into a staged view for decide() to work against.
  StagedClocks stage_clocks() const;
  /// The Figure-10 decision loop (steps 1-6 + admission control) against
  /// `staged`: reads the staged clocks, writes the chosen placement's
  /// commitment back into them. Counters, health and trace spans update
  /// directly — only the clock ledger is staged.
  Placement decide(const Query& q, Seconds now, std::uint64_t query_id,
                   ScheduleHints hints, StagedClocks& staged);
  /// Push the monitor's degradation multipliers into the estimator so the
  /// next estimate() call prices kDegraded partitions honestly. Does not
  /// touch the ledger clocks.
  void sync_degradation();
  /// Candidate-set gate: kFailed partitions (breaker open) are excluded
  /// from choose(). Does not touch the ledger clocks.
  bool partition_schedulable(QueueRef ref, Seconds now);
};

/// The paper's scheduler (Figure 10).
class FigureTenScheduler final : public QueueingScheduler {
 public:
  using QueueingScheduler::QueueingScheduler;
  const char* name() const override { return "figure10"; }

 protected:
  std::optional<QueueRef> choose(
      const std::vector<PartitionResponse>& candidates,
      Seconds deadline) const override;
};

}  // namespace holap
